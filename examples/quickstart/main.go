// Quickstart: generate a synthetic SUPReMM workload, train the paper's
// SVM application classifier, and classify a few jobs with probability
// thresholds -- the whole pipeline in one small program.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/rng"
)

func main() {
	// 1. Generate 3,000 jobs through the full pipeline: batch scheduler ->
	//    TACC_Stats node collectors -> Lariat labeling -> SUPReMM summaries.
	res, err := core.RunPipeline(core.DefaultPipelineConfig(7, 3000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d jobs (%d in the warehouse)\n", len(res.Records), res.Store.Len())

	// 2. Build a labeled dataset from the community-labeled jobs using the
	//    full SUPReMM attribute set (means + COV + derived attributes).
	ds, err := core.BuildDataset(res.Records, core.LabelByLariat, core.DefaultFeatures())
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(rng.New(1), 0.7)
	// The paper trains on an application-balanced mixture: balance the
	// training split (oversampling rare applications) and leave the
	// native-mix test split untouched.
	train = train.Balanced(rng.New(2), 60)
	fmt.Printf("dataset: %d labeled jobs, %d attributes, %d applications\n",
		ds.Len(), ds.NumFeatures(), ds.NumClasses())

	// 3. Train the paper's classifier (RBF SVM, gamma=0.1, C=1000, with
	//    Platt-calibrated probabilities).
	model, err := core.TrainJobClassifier(train, core.PaperSVM(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test accuracy: %.1f%%\n", 100*model.Accuracy(test))

	// 4. Classify individual jobs with a probability threshold: jobs whose
	//    best-class probability falls below it stay "not classified".
	const threshold = 0.8
	classified := 0
	for i := 0; i < 5 && i < test.Len(); i++ {
		label, prob, ok := model.Classify(test.X[i], threshold)
		status := "NOT CLASSIFIED"
		if ok {
			status = "classified"
			classified++
		}
		fmt.Printf("  job %d: true=%-12s predicted=%-12s p=%.2f  %s\n",
			i, test.Label(i), label, prob, status)
	}
}
