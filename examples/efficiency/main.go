// Efficiency triage and the exit-code negative result (paper Section II).
//
// Part 1 labels jobs efficient/inefficient with the paper's deterministic
// rule (low CPU user, catastrophic mid-run collapse, or severe across-node
// imbalance) and compares naive Bayes, SVM and random forest: the rule is
// a disjunction of attribute thresholds, so the problem is completely
// separable and SVM/RF approach 100% while NB lags badly.
//
// Part 2 tries to predict job success/failure from the script exit code
// and shows it does not generalize: the exit code usually reflects the
// last operation in the batch script, not the application.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func main() {
	res, err := core.RunPipeline(core.DefaultPipelineConfig(11, 3000))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- part 1: efficient vs inefficient (separable rule labels) --")
	rule := core.DefaultEfficiencyRule()
	effDS, err := core.BuildDataset(res.Records, core.LabelByEfficiency(rule), core.DefaultFeatures())
	if err != nil {
		log.Fatal(err)
	}
	compare(effDS, 21)

	fmt.Println("\n-- part 2: success vs failure from exit codes (negative result) --")
	exitDS, err := core.BuildDataset(res.Records, core.LabelByExit, core.DefaultFeatures())
	if err != nil {
		log.Fatal(err)
	}
	compare(exitDS, 22)
	fmt.Println("\nnote how exit-code models reach high TRAIN accuracy yet stay near")
	fmt.Println("chance on withheld jobs: the labels are not in the performance data.")
}

// compare balances the classes, splits, and prints train/test accuracy
// for the three classifier families.
func compare(ds *dataset.Dataset, seed uint64) {
	minCount := 0
	for _, c := range ds.ClassCounts() {
		if c > 0 && (minCount == 0 || c < minCount) {
			minCount = c
		}
	}
	balanced := ds.Balanced(rng.New(seed), minCount)
	train, test := balanced.Split(rng.New(seed+1), 0.6)
	fmt.Printf("classes %v, %d balanced rows\n", balanced.ClassNames, balanced.Len())
	for _, cfg := range []core.ClassifierConfig{
		{Algo: core.AlgoBayes},
		core.PaperSVM(seed + 2),
		core.PaperForest(seed + 3),
	} {
		model, err := core.TrainJobClassifier(train, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s train %5.1f%%  test %5.1f%%\n",
			cfg.Algo, 100*model.Accuracy(train), 100*model.Accuracy(test))
	}
}
