// Attribute importance and the predictor sweep (paper Figures 5 and 6):
// train a random forest, rank the SUPReMM attributes by permutation
// importance, then retrain with progressively fewer predictors and watch
// accuracy degrade gracefully until only a handful remain.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rng"
)

func main() {
	balanced := append([]apps.App(nil), apps.Table2Apps()...)
	for i := range balanced {
		balanced[i].MixWeight = 1
	}
	cfg := core.DefaultPipelineConfig(41, 2400)
	cfg.Cluster = cluster.DefaultConfig(41)
	cfg.Cluster.UncategorizedFrac, cfg.Cluster.NAFrac = 0, 0
	cfg.Cluster.Community = balanced
	res, err := core.RunPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := core.BuildDataset(res.Records, core.LabelByLariat, core.DefaultFeatures())
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(rng.New(42), 0.7)

	model, err := core.TrainJobClassifier(train, core.PaperForest(43))
	if err != nil {
		log.Fatal(err)
	}
	imp, err := model.Importance()
	if err != nil {
		log.Fatal(err)
	}
	ranked := core.RankFeatures(train.FeatureNames, imp)

	fmt.Println("attribute importance (mean decrease in accuracy), Figure 5:")
	for i, f := range ranked {
		marker := ""
		if i < 4 {
			marker = "  <- top tier"
		}
		fmt.Printf("%2d. %-24s %8.5f%s\n", i+1, f.Name, f.Importance, marker)
		if i >= 14 {
			fmt.Printf("    ... and %d more\n", len(ranked)-i-1)
			break
		}
	}

	fmt.Println("\naccuracy vs number of predictors, Figure 6:")
	counts := []int{len(ranked), 20, 10, 5, 3, 1}
	pts, err := core.PredictorSweep(train, test, ranked, core.PaperForest(44), counts)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("  %2d predictors -> %.1f%%\n", p.NumFeatures, 100*p.Accuracy)
	}
	fmt.Println("\nthe paper's finding: accuracy stays at or above ~90% until fewer")
	fmt.Println("than five attributes remain, and the survivors are CPU/memory")
	fmt.Println("attributes -- not filesystem or network I/O.")
}
