// Application classification following the paper's Table 2 / Figure 1
// methodology: train the RBF SVM on an application-balanced mixture of
// the 20 community applications, evaluate on a native-mix test set, print
// the confusion matrix in the paper's layout and the probability-threshold
// trade-off curve.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml/eval"
)

func main() {
	// Balanced training mixture: every Table 2 application equally likely.
	t2 := apps.Table2Apps()
	balanced := append([]apps.App(nil), t2...)
	for i := range balanced {
		balanced[i].MixWeight = 1
	}
	trainRun := generate(1, 2000, balanced)
	testRun := generate(2, 2000, t2) // native mix: VASP dominates

	train := mustDataset(trainRun)
	test := mustDataset(testRun)

	model, err := core.TrainJobClassifier(train, core.PaperSVM(3))
	if err != nil {
		log.Fatal(err)
	}

	// Score the native-mix test set; note the class vocabularies match
	// because both runs draw from the same 20 applications.
	preds := model.Score(test)
	cm := eval.NewConfusionMatrix(test.ClassNames, preds)
	fmt.Printf("test accuracy: %.1f%% over %d jobs\n\n", 100*cm.Accuracy(), test.Len())
	fmt.Println("confusion matrix (Table 2 layout):")
	fmt.Print(cm.String())

	fmt.Println("\nlargest misclassification flows (the paper's Table 2 reading):")
	for _, p := range cm.TopConfusions(5) {
		fmt.Printf("  %-12s -> %-12s %3d jobs (%.1f%%)\n", p.True, p.Pred, p.Count, 100*p.Rate)
	}

	fmt.Println("\nprobability-threshold curve (Figure 1):")
	fmt.Printf("%-10s %12s %22s\n", "threshold", "classified", "correctly classified")
	for _, p := range eval.ThresholdCurve(preds, []float64{0.95, 0.9, 0.8, 0.6, 0.4, 0.2}) {
		fmt.Printf("%-10.2f %11.1f%% %21.1f%%\n",
			p.Threshold, 100*p.Classified, 100*p.CorrectlyClassified)
	}
}

func generate(seed uint64, jobs int, community []apps.App) *core.PipelineResult {
	cfg := core.DefaultPipelineConfig(seed, jobs)
	cfg.Cluster = cluster.DefaultConfig(seed)
	cfg.Cluster.UncategorizedFrac = 0
	cfg.Cluster.NAFrac = 0
	cfg.Cluster.Community = community
	res, err := core.RunPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func mustDataset(run *core.PipelineResult) *dataset.Dataset {
	ds, err := core.BuildDataset(run.Records, core.LabelByLariat, core.DefaultFeatures())
	if err != nil {
		log.Fatal(err)
	}
	return ds
}
