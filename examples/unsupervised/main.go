// Unsupervised structure discovery (paper Section II lists clustering and
// dimensionality reduction among the techniques suited to SUPReMM data):
// cluster the job mixture without labels and check how well the clusters
// align with the true application categories, then look at the PCA
// variance spectrum of the attribute space.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ml/kmeans"
	"repro/internal/ml/pca"
	"repro/internal/stats"
)

func main() {
	res, err := core.RunPipeline(core.DefaultPipelineConfig(61, 2500))
	if err != nil {
		log.Fatal(err)
	}
	ds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
	if err != nil {
		log.Fatal(err)
	}

	// Standardize (k-means and PCA are distance/variance based).
	rows := make([][]float64, ds.Len())
	for i, row := range ds.X {
		rows[i] = append([]float64(nil), row...)
	}
	stats.FitScaler(rows).TransformAll(rows)

	km, err := kmeans.Fit(rows, kmeans.Config{K: ds.NumClasses(), Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means with k=%d on %d unlabeled jobs:\n", ds.NumClasses(), ds.Len())
	fmt.Printf("  purity vs true category: %.3f (converged in %d iterations)\n",
		kmeans.Purity(km.Labels, ds.Y), km.Iters)

	// Which categories dominate each cluster?
	fmt.Println("\ncluster composition (majority category, share):")
	for c := 0; c < ds.NumClasses(); c++ {
		counts := map[string]int{}
		total := 0
		for i, l := range km.Labels {
			if l == c {
				counts[ds.Label(i)]++
				total++
			}
		}
		bestName, bestN := "-", 0
		for name, n := range counts {
			if n > bestN {
				bestName, bestN = name, n
			}
		}
		if total == 0 {
			continue
		}
		fmt.Printf("  cluster %2d: %4d jobs, %5.1f%% %s\n",
			c, total, 100*float64(bestN)/float64(total), bestName)
	}

	model, err := pca.Fit(rows, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPCA cumulative explained variance:")
	for _, c := range []int{1, 2, 3, 5, 10} {
		fmt.Printf("  %2d components: %5.1f%%\n", c, 100*model.ExplainedVariance(c))
	}
	fmt.Println("\nthe signature structure the paper's classifiers exploit is visible")
	fmt.Println("without any labels: clusters align with application families.")
}
