// Application kernels (paper Section I + the Section IV regression
// extension): simulate the periodic QoS benchmark runs, calibrate CUSUM
// process-control detectors on healthy history, inject a filesystem
// regression and watch the ior stream alarm, then fit SVR and RF
// regressors of kernel wall time.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/appkernel"
	"repro/internal/rng"
)

func main() {
	r := rng.New(51)
	kernels := appkernel.DefaultKernels()

	// Healthy history calibrates the detectors.
	var history []appkernel.Run
	for i, k := range kernels {
		history = append(history, k.Simulate(r.Split(uint64(i)), 40, nil)...)
	}
	mon, err := appkernel.NewMonitor(history)
	if err != nil {
		log.Fatal(err)
	}

	// Live stream: the scratch filesystem degrades at submission 25,
	// slowing the I/O-bound kernel by 60%.
	fmt.Println("live monitoring (ior degrades 1.6x from submission 25):")
	for i, k := range kernels {
		var degs []appkernel.Degradation
		if k.Name == "ior" {
			degs = []appkernel.Degradation{{StartSeq: 25, Factor: 1.6}}
		}
		for _, run := range k.Simulate(r.Split(uint64(100+i)), 50, degs) {
			if mon.Observe(run) {
				fmt.Printf("  ALERT %-12s submission %2d wall %.0fs\n",
					appkernel.StreamKey(run.Kernel, run.Nodes), run.Seq, run.Wall)
			}
		}
	}
	streams := make([]string, 0, len(mon.Alarms))
	for k := range mon.Alarms {
		streams = append(streams, k)
	}
	sort.Strings(streams)
	fmt.Printf("alarmed streams: %v\n\n", streams)

	// Wall-time regression (paper Section IV future work).
	var test []appkernel.Run
	for i, k := range kernels {
		test = append(test, k.Simulate(r.Split(uint64(200+i)), 12, nil)...)
	}
	xTr, yTr, _, err := appkernel.RegressionData(kernels, history)
	if err != nil {
		log.Fatal(err)
	}
	xTe, yTe, _, err := appkernel.RegressionData(kernels, test)
	if err != nil {
		log.Fatal(err)
	}
	rf, err := appkernel.TrainRF(xTr, yTr, 52)
	if err != nil {
		log.Fatal(err)
	}
	svr, err := appkernel.TrainSVR(xTr, yTr, 53)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wall-time regression R^2 on withheld runs: rf %.3f  svr %.3f\n",
		appkernel.R2(rf, xTe, yTe), appkernel.R2(svr, xTe, yTe))
	for _, probe := range []struct {
		kernel string
		nodes  int
	}{{"namd", 4}, {"hpcc", 8}, {"ior", 2}} {
		row := probeRow(kernels, probe.kernel, probe.nodes)
		fmt.Printf("  predicted wall %s@%d nodes: rf %.0fs svr %.0fs\n",
			probe.kernel, probe.nodes, rf.Predict(row), svr.Predict(row))
	}
}

func probeRow(kernels []appkernel.Kernel, name string, nodes int) []float64 {
	x, _, _, err := appkernel.RegressionData(kernels, []appkernel.Run{{Kernel: name, Nodes: nodes, Wall: 0}})
	if err != nil {
		log.Fatal(err)
	}
	return x[0]
}
