// Classifying the unclassifiable (paper Figures 3 and 4): train the
// application SVM on known community codes, then apply it to the
// "Uncategorized" (unknown executables) and "NA" (no Lariat record) job
// populations. Only a small fraction classifies at a high probability
// threshold -- these populations are genuinely unlike the community mix.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ml/eval"
)

func main() {
	// Train on balanced community jobs.
	balanced := append([]apps.App(nil), apps.Table2Apps()...)
	for i := range balanced {
		balanced[i].MixWeight = 1
	}
	trainRun := run(31, 1500, func(c *cluster.Config) {
		c.UncategorizedFrac, c.NAFrac, c.Community = 0, 0, balanced
	})
	train, err := core.BuildDataset(trainRun.Records, core.LabelByLariat, core.DefaultFeatures())
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.TrainJobClassifier(train, core.PaperSVM(32))
	if err != nil {
		log.Fatal(err)
	}

	// Score three populations: known community jobs, Uncategorized, NA.
	knownRun := run(33, 800, func(c *cluster.Config) {
		c.UncategorizedFrac, c.NAFrac, c.Community = 0, 0, apps.Table2Apps()
	})
	uncatRun := run(34, 800, func(c *cluster.Config) { c.UncategorizedFrac, c.NAFrac = 1, 0 })
	naRun := run(35, 800, func(c *cluster.Config) { c.UncategorizedFrac, c.NAFrac = 0, 1 })

	ths := []float64{0.95, 0.9, 0.8, 0.6, 0.4, 0.2}
	fmt.Printf("%-10s %10s %14s %10s\n", "threshold", "known", "uncategorized", "na")
	known := curve(model, knownRun, ths)
	uncat := curve(model, uncatRun, ths)
	na := curve(model, naRun, ths)
	for i, t := range ths {
		fmt.Printf("%-10.2f %9.1f%% %13.1f%% %9.1f%%\n",
			t, 100*known[i].Classified, 100*uncat[i].Classified, 100*na[i].Classified)
	}
	fmt.Println("\nthe gap between the known column and the other two is the paper's")
	fmt.Println("central Figure 1 vs Figure 3 contrast: community codes classify with")
	fmt.Println("high confidence; user-compiled codes mostly do not.")
}

func run(seed uint64, jobs int, mod func(*cluster.Config)) *core.PipelineResult {
	cfg := core.DefaultPipelineConfig(seed, jobs)
	cc := cluster.DefaultConfig(seed)
	mod(&cc)
	cfg.Cluster = cc
	res, err := core.RunPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func curve(model *core.JobClassifier, res *core.PipelineResult, ths []float64) []eval.ThresholdPoint {
	rows := core.FeaturizeAll(res.Records, core.DefaultFeatures())
	return eval.ThresholdCurve(model.ScoreRows(rows), ths)
}
