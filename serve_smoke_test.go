//go:build servesmoke

// End-to-end smoke for the serving path, run by `make serve-batch-smoke`
// (and the serve-smoke CI job): builds and boots the real supremm-serve
// binary, exercises single + batch classification, checks batch/single
// parity on live HTTP responses, hot-swaps the model through the admin
// endpoint and SIGHUP, and fails on any non-2xx or divergence. The
// server binds 127.0.0.1:0 and the harness learns the real port from
// the "serving api" log line, so parallel CI jobs cannot collide.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestServeBatchSmoke(t *testing.T) {
	bin := buildServe(t, false)
	snapshot := filepath.Join(t.TempDir(), "model.bin")
	// -log-level info: the address discovery in startServe reads the
	// info-level "serving api" line.
	base, srv := startServe(t, bin, "-jobs", "400", "-seed", "7",
		"-model-snapshot", snapshot, "-batch-workers", "4", "-log-level", "info")
	defer stopServe(t, srv)

	getJSON := func(path string, out any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	post := func(path string, v any) (int, []byte) {
		t.Helper()
		body, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	var meta struct {
		Features   []string `json:"features"`
		Generation uint64   `json:"generation"`
	}
	getJSON("/api/features", &meta)
	if len(meta.Features) == 0 || meta.Generation != 1 {
		t.Fatalf("features meta = %+v", meta)
	}

	// Three distinct full-coverage rows.
	rows := make([]map[string]float64, 3)
	for i := range rows {
		m := map[string]float64{}
		for j, name := range meta.Features {
			m[name] = float64((i*5+j)%7) / 6
		}
		rows[i] = m
	}

	singles := make([][]byte, len(rows))
	for i, features := range rows {
		code, body := post("/api/classify", map[string]any{"features": features, "threshold": 0.5})
		if code != 200 {
			t.Fatalf("single classify %d: status %d: %s", i, code, body)
		}
		singles[i] = bytes.TrimSpace(body)
	}

	code, body := post("/api/classify/batch", map[string]any{"rows": rows, "threshold": 0.5})
	if code != 200 {
		t.Fatalf("batch classify: status %d: %s", code, body)
	}
	var batch struct {
		Results    []json.RawMessage `json:"results"`
		Generation uint64            `json:"generation"`
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(rows) || batch.Generation != 1 {
		t.Fatalf("batch reply: %d results, generation %d", len(batch.Results), batch.Generation)
	}
	for i, raw := range batch.Results {
		if !bytes.Equal(bytes.TrimSpace(raw), singles[i]) {
			t.Fatalf("batch/single parity divergence at row %d:\n batch:  %s\n single: %s", i, raw, singles[i])
		}
	}

	// Admin hot-swap from the boot snapshot: the restored model must
	// classify byte-identically to the original.
	code, body = post("/admin/model/reload", map[string]string{"path": snapshot})
	if code != 200 {
		t.Fatalf("admin reload: status %d: %s", code, body)
	}
	getJSON("/api/features", &meta)
	if meta.Generation != 2 {
		t.Fatalf("post-reload generation = %d, want 2", meta.Generation)
	}
	code, body = post("/api/classify", map[string]any{"features": rows[0], "threshold": 0.5})
	if code != 200 || !bytes.Equal(bytes.TrimSpace(body), singles[0]) {
		t.Fatalf("reloaded snapshot diverges (status %d):\n before: %s\n after:  %s", code, singles[0], body)
	}

	// SIGHUP drives the same swap path from the configured snapshot.
	if err := srv.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for meta.Generation != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP reload never landed (generation %d)", meta.Generation)
		}
		time.Sleep(100 * time.Millisecond)
		getJSON("/api/features", &meta)
	}

	// The swap and batch metrics made it to the exposition.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"model_generation 3",
		`model_swap_total{outcome="ok"} 3`,
		"classify_batch_rows_count 1",
		"classify_batch_rows_sum 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	fmt.Println("serve-batch-smoke: batch parity, admin reload, and SIGHUP swap all verified")
}
