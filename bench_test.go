// Package repro's top-level benchmarks regenerate every table and figure
// of the paper at benchmark scale (one reduced-size experiment per
// iteration, key result reported as a custom metric), plus ablation
// benches for the design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Paper-scale numbers come from cmd/supremm-paper; these benches exist to
// (a) regression-track the experiment runtimes and (b) verify the headline
// result of each artifact survives at reduced scale.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ml/eval"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/rng"
)

// benchConfig is the reduced scale used by the per-artifact benches.
func benchConfig(seed uint64) experiments.Config {
	return experiments.Config{
		Seed:          seed,
		TrainPerClass: 40,
		TestJobs:      600,
		UnknownJobs:   300,
		SweepCounts:   []int{36, 10, 5, 1},
	}
}

// runExperiment drives one experiment per iteration and reports a metric.
func runExperiment(b *testing.B, id, metric string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchConfig(uint64(100 + i)))
		driver, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		res, err := driver(env)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := res.Metrics[metric]; ok {
			b.ReportMetric(v, metric)
		}
	}
}

func BenchmarkExpE1Efficiency(b *testing.B)     { runExperiment(b, "e1", "rf_test") }
func BenchmarkExpE2ExitCode(b *testing.B)       { runExperiment(b, "e2", "rf_test") }
func BenchmarkExpTable2Confusion(b *testing.B)  { runExperiment(b, "table2", "test_accuracy") }
func BenchmarkExpFig1Threshold(b *testing.B)    { runExperiment(b, "fig1", "classified@0.80") }
func BenchmarkExpFig2ROC(b *testing.B)          { runExperiment(b, "fig2", "svm_auc_like") }
func BenchmarkExpFig3Unknown(b *testing.B)      { runExperiment(b, "fig3", "uncat@0.80") }
func BenchmarkExpTable3Categories(b *testing.B) { runExperiment(b, "table3", "overall_accuracy") }
func BenchmarkExpFig4UnknownCat(b *testing.B)   { runExperiment(b, "fig4", "na@0.80") }
func BenchmarkExpFig5Importance(b *testing.B)   { runExperiment(b, "fig5", "imp:MEM_USED") }
func BenchmarkExpFig6Sweep(b *testing.B)        { runExperiment(b, "fig6", "acc:5") }
func BenchmarkExpX1TimeDependent(b *testing.B)  { runExperiment(b, "x1", "segment_accuracy") }
func BenchmarkExpX2KernelRegression(b *testing.B) {
	runExperiment(b, "x2", "svr_r2")
}
func BenchmarkExpX3CrossPlatform(b *testing.B) { runExperiment(b, "x3", "time-shape_cross") }
func BenchmarkExpX4Unsupervised(b *testing.B)  { runExperiment(b, "x4", "category_purity") }

// benchAppData builds a small balanced train / native test pair once.
func benchAppData(b *testing.B, seed uint64, features core.FeatureOptions) (train, test *dataset.Dataset) {
	b.Helper()
	balanced := append([]apps.App(nil), apps.Table2Apps()...)
	for i := range balanced {
		balanced[i].MixWeight = 1
	}
	mk := func(s uint64, jobs int, community []apps.App) *dataset.Dataset {
		cfg := core.DefaultPipelineConfig(s, jobs)
		cc := cluster.DefaultConfig(s)
		cc.UncategorizedFrac, cc.NAFrac = 0, 0
		cc.Community = community
		cfg.Cluster = cc
		res, err := core.RunPipeline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := core.BuildDataset(res.Records, core.LabelByLariat, features)
		if err != nil {
			b.Fatal(err)
		}
		return ds
	}
	return mk(seed, 800, balanced), mk(seed+1, 600, apps.Table2Apps())
}

// alignTo relabels test onto the training vocabulary.
func alignTo(b *testing.B, test *dataset.Dataset, classes []string) *dataset.Dataset {
	b.Helper()
	index := map[string]int{}
	for i, c := range classes {
		index[c] = i
	}
	y := make([]int, test.Len())
	for i := range test.Y {
		j, ok := index[test.Label(i)]
		if !ok {
			b.Fatalf("class %q missing from training vocabulary", test.Label(i))
		}
		y[i] = j
	}
	return &dataset.Dataset{FeatureNames: test.FeatureNames, ClassNames: classes, X: test.X, Y: y}
}

// BenchmarkAblationCoupling compares the SVM's pairwise-coupled
// probability prediction against raw one-vs-one voting: coupling is what
// enables the paper's threshold analysis, at a prediction-time cost.
func BenchmarkAblationCoupling(b *testing.B) {
	train, test := benchAppData(b, 7, core.DefaultFeatures())
	test = alignTo(b, test, train.ClassNames)
	model, err := core.TrainJobClassifier(train, core.PaperSVM(7))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("voting", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			correct := 0
			for j, row := range test.X {
				cls, _ := model.PredictProb(row)
				if cls == test.Y[j] {
					correct++
				}
			}
			b.ReportMetric(float64(correct)/float64(test.Len()), "accuracy")
		}
	})
	b.Run("coupled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			correct, classified := 0, 0
			for j, row := range test.X {
				label, _, ok := model.Classify(row, 0.5)
				if !ok {
					continue
				}
				classified++
				if label == test.ClassNames[test.Y[j]] {
					correct++
				}
			}
			if classified > 0 {
				b.ReportMetric(float64(correct)/float64(classified), "accuracy@0.5")
			}
		}
	})
}

// BenchmarkAblationCOV measures what the across-node COV attributes buy:
// the paper added them and found they made "a real contribution".
func BenchmarkAblationCOV(b *testing.B) {
	for _, tc := range []struct {
		name string
		opt  core.FeatureOptions
	}{
		{"with-cov", core.DefaultFeatures()},
		{"no-cov", core.FeatureOptions{COV: false, Derived: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				train, test := benchAppData(b, uint64(11+i), tc.opt)
				test = alignTo(b, test, train.ClassNames)
				model, err := core.TrainJobClassifier(train, core.PaperForest(11))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(model.Accuracy(test), "accuracy")
			}
		})
	}
}

// BenchmarkAblationBalance compares application-balanced training (the
// paper's choice) against native-mix training, which over-serves VASP and
// starves rare applications.
func BenchmarkAblationBalance(b *testing.B) {
	for _, balancedTrain := range []bool{true, false} {
		name := "balanced"
		if !balancedTrain {
			name = "native"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				community := apps.Table2Apps()
				if balancedTrain {
					community = append([]apps.App(nil), community...)
					for j := range community {
						community[j].MixWeight = 1
					}
				}
				cfg := core.DefaultPipelineConfig(uint64(21+i), 800)
				cc := cluster.DefaultConfig(uint64(21 + i))
				cc.UncategorizedFrac, cc.NAFrac = 0, 0
				cc.Community = community
				cfg.Cluster = cc
				res, err := core.RunPipeline(cfg)
				if err != nil {
					b.Fatal(err)
				}
				train, err := core.BuildDataset(res.Records, core.LabelByLariat, core.DefaultFeatures())
				if err != nil {
					b.Fatal(err)
				}
				_, test := benchAppData(b, uint64(31+i), core.DefaultFeatures())
				test = alignTo(b, test, train.ClassNames)
				model, err := core.TrainJobClassifier(train, core.PaperForest(21))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(model.Accuracy(test), "accuracy")
			}
		})
	}
}

// BenchmarkAblationClassWeights tests the paper's suggestion that
// weighting the classes could ameliorate mixture-share-driven
// misclassification: up-weighting the rare applications against VASP.
func BenchmarkAblationClassWeights(b *testing.B) {
	train, test := benchAppData(b, 71, core.DefaultFeatures())
	test = alignTo(b, test, train.ClassNames)
	for _, weighted := range []bool{false, true} {
		name := "plain"
		weights := map[string]float64(nil)
		if weighted {
			name = "weighted"
			// Up-weight everything against the dominant VASP/NAMD pair.
			weights = map[string]float64{"VASP": 0.5, "NAMD": 0.7}
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := svm.PaperConfig()
				cfg.Probability = false
				cfg.Seed = uint64(i)
				cfg.ClassWeights = weights
				model, err := core.TrainJobClassifier(train, core.ClassifierConfig{Algo: core.AlgoSVM, SVM: cfg})
				if err != nil {
					b.Fatal(err)
				}
				// Report recall on the non-dominant classes.
				minor, correct := 0, 0
				for j, row := range test.X {
					lbl := test.ClassNames[test.Y[j]]
					if lbl == "VASP" || lbl == "NAMD" {
						continue
					}
					minor++
					if model.Predict(row) == test.Y[j] {
						correct++
					}
				}
				if minor > 0 {
					b.ReportMetric(float64(correct)/float64(minor), "minor-class-recall")
				}
			}
		})
	}
}

// BenchmarkAblationForestSize sweeps the ensemble size.
func BenchmarkAblationForestSize(b *testing.B) {
	train, test := benchAppData(b, 41, core.DefaultFeatures())
	test = alignTo(b, test, train.ClassNames)
	for _, trees := range []int{25, 100, 400} {
		b.Run(fmt.Sprintf("trees=%d", trees), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model, err := core.TrainJobClassifier(train, core.ClassifierConfig{
					Algo:   core.AlgoForest,
					Forest: forest.Config{Trees: trees, Seed: uint64(41 + i)},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(model.Accuracy(test), "accuracy")
			}
		})
	}
}

// BenchmarkPipelineThroughput measures end-to-end job generation +
// collection + summarization rate.
func BenchmarkPipelineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunPipeline(core.DefaultPipelineConfig(uint64(i), 300)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(300*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkSVMTrainPaperConfig measures training cost of the paper's SVM
// on a balanced 20-class mixture.
func BenchmarkSVMTrainPaperConfig(b *testing.B) {
	train, _ := benchAppData(b, 51, core.DefaultFeatures())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := svm.PaperConfig()
		cfg.Seed = uint64(i)
		if _, err := core.TrainJobClassifier(train, core.ClassifierConfig{Algo: core.AlgoSVM, SVM: cfg}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelPipeline compares the end-to-end pipeline at one
// worker against the full pool — the tentpole speedup the parallel
// harness exists for, with bit-identical output either way.
func BenchmarkParallelPipeline(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=all", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultPipelineConfig(uint64(i), 300)
				cfg.Workers = tc.workers
				if _, err := core.RunPipeline(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(300*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkParallelCrossValidate compares fold-serial against
// fold-parallel cross-validation of a forest.
func BenchmarkParallelCrossValidate(b *testing.B) {
	train, _ := benchAppData(b, 81, core.DefaultFeatures())
	trainFn := func(workers int) eval.TrainFunc {
		return func(d *dataset.Dataset) (eval.ProbClassifier, error) {
			return forest.TrainClassifier(d, forest.Config{Trees: 50, Seed: 81, Workers: workers})
		}
	}
	var serialAcc float64
	b.Run("workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc, err := eval.CrossValidateWorkers(train, 4, 81, 1, trainFn(1))
			if err != nil {
				b.Fatal(err)
			}
			serialAcc = acc
			b.ReportMetric(acc, "cv-accuracy")
		}
	})
	b.Run("workers=all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acc, err := eval.CrossValidateWorkers(train, 4, 81, 0, trainFn(0))
			if err != nil {
				b.Fatal(err)
			}
			if serialAcc != 0 && acc != serialAcc {
				b.Fatalf("parallel CV accuracy %v diverged from serial %v", acc, serialAcc)
			}
			b.ReportMetric(acc, "cv-accuracy")
		}
	})
}

// BenchmarkParallelForestImportance compares serial and pooled
// permutation-importance computation on one trained forest.
func BenchmarkParallelForestImportance(b *testing.B) {
	train, _ := benchAppData(b, 91, core.DefaultFeatures())
	for _, tc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=all", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			model, err := forest.TrainClassifier(train, forest.Config{Trees: 100, Seed: 91, Workers: tc.workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if imp := model.Importance(); len(imp) == 0 {
					b.Fatal("no importance returned")
				}
			}
		})
	}
}

// BenchmarkParallelSuite compares the experiment runner at one worker
// against the concurrent fan-out over a representative subset.
func BenchmarkParallelSuite(b *testing.B) {
	ids := []string{"e1", "e2", "table2", "fig1"}
	for _, tc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=all", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env := experiments.NewEnv(benchConfig(uint64(200 + i)))
				if _, err := experiments.RunSelected(env, ids, tc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClassifyLatency measures per-job classification latency of the
// production Classify path (scale + 190 pair decisions + coupling).
func BenchmarkClassifyLatency(b *testing.B) {
	train, test := benchAppData(b, 61, core.DefaultFeatures())
	model, err := core.TrainJobClassifier(train, core.PaperSVM(61))
	if err != nil {
		b.Fatal(err)
	}
	rows := test.X
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = model.Classify(rows[r.Intn(len(rows))], 0.8)
	}
}
