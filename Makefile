# Single source of truth for the commands CI runs, so humans and the
# workflow in .github/workflows/ci.yml exercise the repo identically.

GO ?= go
BENCH_OUT ?= .

# Coverage may only ratchet upward: raise this floor when coverage
# improves, never lower it to make a failing build pass.
COVER_FLOOR ?= 90.0

FUZZTIME ?= 10s

# Only test binaries that link internal/testkit define the -update flag,
# so the regeneration sweep is scoped to these packages.
TESTKIT_PKGS = ./internal/testkit ./internal/ml/bayes ./internal/ml/forest \
	./internal/ml/svm ./internal/ml/eval ./internal/core ./internal/experiments

# package:FuzzTarget pairs for the CI fuzz smoke.
FUZZ_TARGETS = \
	./internal/taccstats:FuzzDecode \
	./internal/pcp:FuzzImport \
	./internal/lariat:FuzzMatch \
	./internal/warehouse:FuzzIngest \
	./internal/dataset:FuzzReadCSV \
	./internal/core:FuzzLoadJobClassifier \
	./internal/loadgen:FuzzLoadConfig

# Knobs for the soak harness (see soak_test.go).
SOAK_DUR ?= 30s
SOAK_RPS ?= 200
SOAK_OUT ?= soak-report.json

.PHONY: all build test vet fmt-check race bench bench-smoke paper trace serve-debug clean \
	testkit testkit-update test-shuffle cover fuzz-smoke serve-batch-smoke chaos soak

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-clean (gofmt -l prints offenders).
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Race-detect the packages the parallel harness, the observability
# layer, and the resilience layer touch.
race:
	$(GO) test -race ./internal/parallel ./internal/ml/... ./internal/core \
		./internal/experiments ./internal/obs ./internal/server \
		./internal/resilience ./internal/loadgen

# The full correctness harness: golden corpus, metamorphic invariants,
# edge-case/equivalence suites, and fuzz seed-corpus replay. -count=1
# defeats the test cache so the goldens are genuinely recompared.
testkit:
	$(GO) test -count=1 ./internal/...

# Regenerate the golden corpus under internal/*/testdata/golden/. On an
# unchanged tree this is byte-identical (check with git diff); see
# EXPERIMENTS.md "Regenerating the golden corpus" before committing a diff.
testkit-update:
	$(GO) test -count=1 $(TESTKIT_PKGS) -update

# Shake out inter-test ordering dependencies.
test-shuffle:
	$(GO) test -shuffle=on ./...

# Coverage profile plus the ratchet gate: fails when total statement
# coverage drops below COVER_FLOOR percent.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./internal/...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total statement coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% ratchet"; exit 1; }

# Run every fuzz target for a short budget; any crasher fails the build.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "==> $$fn ($$pkg, $(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$fn$$" -fuzztime $(FUZZTIME) $$pkg; \
	done

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The CI correctness gate: a small fixed seeded workload through the
# serial and parallel paths; exits non-zero on any divergence and writes
# BENCH_<rev>.json to $(BENCH_OUT).
bench-smoke:
	$(GO) run ./cmd/supremm-bench -jobs 800 -exp e1,e2,table2,fig1 \
		-train 25 -test 400 -unknown 200 -trees 60 -out $(BENCH_OUT)

paper:
	$(GO) run ./cmd/supremm-paper

# Run a reduced suite with span tracing on; writes trace.json and prints
# the per-stage timing summary to stderr.
trace:
	$(GO) run ./cmd/supremm-paper -exp e1,e2,table2,fig1 \
		-train 25 -test 400 -unknown 200 -trace trace.json

# Serve the API with /metrics, /debug/pprof and debug logging enabled.
serve-debug:
	$(GO) run ./cmd/supremm-serve -pprof -log-level debug

# End-to-end serving smoke: boots the real supremm-serve binary,
# checks batch/single classify parity on live responses, and hot-swaps
# the model via /admin/model/reload and SIGHUP. Fails on any non-2xx
# response or parity divergence. Gated behind the servesmoke build tag
# so plain `go test ./...` stays fast.
serve-batch-smoke:
	$(GO) test -count=1 -tags servesmoke -run TestServeBatchSmoke -v .

# The in-process chaos suite under the race detector: fault-injected
# reloads under live traffic (no torn models), breaker open/recover,
# deadline all-or-nothing, panic isolation, shed parity at batch
# workers 1 vs 4, and exact shed/timeout counter reconciliation.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestShedTimeout' -v ./internal/server

# The out-of-process soak: builds supremm-serve WITH -race, boots it
# with fault injection armed, drives it with the seeded open-loop
# generator (cmd/supremm-load's engine) for SOAK_DUR while SIGHUP
# reloads hammer the breaker, then reconciles client-observed counts
# against /metrics exactly. The JSON report lands at SOAK_OUT.
soak:
	SOAK_DUR=$(SOAK_DUR) SOAK_RPS=$(SOAK_RPS) SOAK_OUT=$(SOAK_OUT) \
		$(GO) test -count=1 -tags soak -run TestSoakServeUnderFaults -v -timeout 10m .

clean:
	rm -f BENCH_*.json trace.json coverage.out soak-report.json
