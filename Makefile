# Single source of truth for the commands CI runs, so humans and the
# workflow in .github/workflows/ci.yml exercise the repo identically.

GO ?= go
BENCH_OUT ?= .

# Coverage may only ratchet upward: raise this floor when coverage
# improves, never lower it to make a failing build pass.
COVER_FLOOR ?= 90.0

FUZZTIME ?= 10s

# Only test binaries that link internal/testkit define the -update flag,
# so the regeneration sweep is scoped to these packages.
TESTKIT_PKGS = ./internal/testkit ./internal/ml/bayes ./internal/ml/forest \
	./internal/ml/svm ./internal/ml/eval ./internal/core ./internal/experiments \
	./internal/lifecycle

# package:FuzzTarget pairs for the CI fuzz smoke.
FUZZ_TARGETS = \
	./internal/taccstats:FuzzDecode \
	./internal/pcp:FuzzImport \
	./internal/lariat:FuzzMatch \
	./internal/warehouse:FuzzIngest \
	./internal/dataset:FuzzReadCSV \
	./internal/core:FuzzLoadJobClassifier \
	./internal/loadgen:FuzzLoadConfig \
	./internal/ml/compile:FuzzCompileParity \
	./internal/ingest:FuzzIngestFrame \
	./internal/lifecycle:FuzzLifecycleConfig

# Knobs for `make bench` (forwarded to go test): repeat each benchmark
# BENCH_COUNT times for BENCH_TIME each, e.g.
#   make bench BENCH_COUNT=10 > new.txt && benchstat old.txt new.txt
BENCH_COUNT ?= 1
BENCH_TIME ?= 1s

# Compiled-engine CI ratchet (see bench-gate): allowed relative speedup
# regression vs BENCH_baseline.json and the absolute per-algorithm
# speedup floor. The tolerance is wider than the in-flag 15% default
# because the checked-in baseline and the CI runner are different
# machines; the ratio is portable, but not perfectly so.
BENCH_TOLERANCE ?= 0.25
BENCH_MIN_SPEEDUP ?= 1.5

# staticcheck is pinned so CI results are reproducible; bump deliberately.
STATICCHECK_VERSION ?= 2025.1.1

# Knobs for the soak harness (see soak_test.go).
SOAK_DUR ?= 30s
SOAK_RPS ?= 200
SOAK_OUT ?= soak-report.json

# Knobs for the ingest soak harness (see soak_ingest_test.go).
SOAK_INGEST_DUR ?= 30s
SOAK_INGEST_JOBS ?= 48
SOAK_INGEST_OUT ?= soak-ingest-report.json

.PHONY: all build test vet fmt-check race bench bench-smoke bench-gate alloc-gate \
	flight-overhead-gate staticcheck paper trace serve-debug clean \
	testkit testkit-update test-shuffle cover fuzz-smoke serve-batch-smoke chaos soak \
	soak-ingest lifecycle-sim

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-clean (gofmt -l prints offenders).
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Race-detect the packages the parallel harness, the observability
# layer (including the flight recorder's concurrent ring), and the
# resilience layer touch.
race:
	$(GO) test -race ./internal/parallel ./internal/ml/... ./internal/core \
		./internal/experiments ./internal/obs ./internal/obs/flight \
		./internal/server ./internal/resilience ./internal/loadgen \
		./internal/ingest ./internal/warehouse ./internal/lifecycle

# The full correctness harness: golden corpus, metamorphic invariants,
# edge-case/equivalence suites, and fuzz seed-corpus replay. -count=1
# defeats the test cache so the goldens are genuinely recompared.
testkit:
	$(GO) test -count=1 ./internal/...

# Regenerate the golden corpus under internal/*/testdata/golden/. On an
# unchanged tree this is byte-identical (check with git diff); see
# EXPERIMENTS.md "Regenerating the golden corpus" before committing a diff.
testkit-update:
	$(GO) test -count=1 $(TESTKIT_PKGS) -update

# Shake out inter-test ordering dependencies.
test-shuffle:
	$(GO) test -shuffle=on ./...

# Coverage profile plus the ratchet gate: fails when total statement
# coverage drops below COVER_FLOOR percent.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./internal/...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total statement coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% ratchet"; exit 1; }

# Run every fuzz target for a short budget; any crasher fails the build.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "==> $$fn ($$pkg, $(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$fn$$" -fuzztime $(FUZZTIME) $$pkg; \
	done

# Run every Go microbenchmark in the tree (the old form only benched the
# root package, silently skipping internal/...). BENCH_COUNT/BENCH_TIME
# feed benchstat workflows; see EXPERIMENTS.md "Benchmarking".
bench:
	$(GO) test -bench=. -benchmem -run=^$$ -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) ./...

# The CI correctness gate: a small fixed seeded workload through the
# serial and parallel paths; exits non-zero on any divergence and writes
# BENCH_<rev>.json to $(BENCH_OUT).
bench-smoke:
	$(GO) run ./cmd/supremm-bench -jobs 800 -exp e1,e2,table2,fig1 \
		-train 25 -test 400 -unknown 200 -trees 60 -out $(BENCH_OUT)

# The compiled-inference perf ratchet: re-measures the compiled-vs-
# interpreted speedup per algorithm and fails when any ratio regresses
# beyond BENCH_TOLERANCE against the checked-in BENCH_baseline.json or
# drops below BENCH_MIN_SPEEDUP outright. Regenerate the baseline with
#   go run ./cmd/supremm-bench -jobs 800 -trees 60 -skip-suite -rev baseline -out .
# (see EXPERIMENTS.md before committing a new baseline).
bench-gate:
	$(GO) run ./cmd/supremm-bench -jobs 800 -trees 60 -skip-suite \
		-compare BENCH_baseline.json -tolerance $(BENCH_TOLERANCE) \
		-min-speedup $(BENCH_MIN_SPEEDUP) -out $(BENCH_OUT)

# The zero-allocation gate: every TestAlloc* test asserts
# testing.AllocsPerRun == 0 on a compiled-engine serving call (RF, SVM
# and NB predictors, single and batch rows, plus JobClassifier.Classify
# through the scratch pool).
alloc-gate:
	$(GO) test -count=1 -run 'TestAlloc' -v ./internal/ml/compile ./internal/core

# The flight-recorder overhead ratchet: benchmarks the full serving
# path with the recorder armed vs disarmed and fails when the armed
# ns/request exceeds 1.5x the disarmed path (env-gated so plain
# `go test ./...` never runs benchmarks).
flight-overhead-gate:
	FLIGHT_GATE=1 $(GO) test -count=1 -run TestFlightOverheadGate -v ./internal/server

# Pinned staticcheck over the whole tree; the check set lives in
# staticcheck.conf. Requires network for the first download.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

paper:
	$(GO) run ./cmd/supremm-paper

# Run a reduced suite with span tracing on; writes trace.json and prints
# the per-stage timing summary to stderr.
trace:
	$(GO) run ./cmd/supremm-paper -exp e1,e2,table2,fig1 \
		-train 25 -test 400 -unknown 200 -trace trace.json

# Serve the API with /metrics, /debug/pprof and debug logging enabled.
serve-debug:
	$(GO) run ./cmd/supremm-serve -pprof -log-level debug

# End-to-end serving smoke: boots the real supremm-serve binary,
# checks batch/single classify parity on live responses, and hot-swaps
# the model via /admin/model/reload and SIGHUP. Fails on any non-2xx
# response or parity divergence. Gated behind the servesmoke build tag
# so plain `go test ./...` stays fast.
serve-batch-smoke:
	$(GO) test -count=1 -tags servesmoke -run TestServeBatchSmoke -v .

# The in-process chaos suite under the race detector: fault-injected
# reloads under live traffic (no torn models), breaker open/recover,
# deadline all-or-nothing, panic isolation, shed parity at batch
# workers 1 vs 4, exact shed/timeout counter reconciliation, and the
# lifecycle control-plane faults (failed retrains/promotions never
# disturb the serving champion; shadow faults never reach clients).
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestShedTimeout' -v \
		./internal/server ./internal/lifecycle

# The deterministic lifecycle simulation harness under the race
# detector: seeded traffic with a known injected shift through a real
# champion + loop; asserts drift fires within a bounded window, shadow
# scoring never perturbs served answers (byte parity vs a loop-disabled
# reference), promotion happens iff the McNemar gate passes, ledgers
# reconcile exactly, and the trace is bit-identical at workers 1 vs N.
# The trace artifact lands at LIFECYCLE_SIM_OUT (CI uploads it).
LIFECYCLE_SIM_OUT ?= lifecycle-sim-trace.txt
lifecycle-sim:
	LIFECYCLE_SIM_OUT=$(abspath $(LIFECYCLE_SIM_OUT)) \
		$(GO) test -race -count=1 -run 'TestLifecycleSim' -v ./internal/lifecycle

# The out-of-process soak: builds supremm-serve WITH -race, boots it
# with fault injection armed, drives it with the seeded open-loop
# generator (cmd/supremm-load's engine) for SOAK_DUR while SIGHUP
# reloads hammer the breaker, then reconciles client-observed counts
# against /metrics exactly — including the lifecycle loop's shadow
# ledger against the flight recorder's independently-summed tallies
# (a SIGUSR1 retrain installs the shadow challenger before the load
# starts). The JSON report lands at SOAK_OUT.
soak:
	SOAK_DUR=$(SOAK_DUR) SOAK_RPS=$(SOAK_RPS) SOAK_OUT=$(SOAK_OUT) \
		$(GO) test -count=1 -tags soak -run TestSoakServeUnderFaults -v -timeout 10m .

# The ingest soak: builds supremm-ingestd WITH -race, boots it with
# fault injection armed at every ingest site, replays a seeded firehose,
# and reconciles the conservation ledger against the clients' acks and
# /metrics exactly (received == summarized + dropped, per shard and
# globally). SIGTERM then makes the daemon drain and self-audit; a
# non-zero exit means its own books did not balance. The JSON report
# lands at SOAK_INGEST_OUT.
soak-ingest:
	SOAK_INGEST_DUR=$(SOAK_INGEST_DUR) SOAK_INGEST_JOBS=$(SOAK_INGEST_JOBS) \
	SOAK_INGEST_OUT=$(SOAK_INGEST_OUT) \
		$(GO) test -count=1 -tags soak -run TestSoakIngestConservation -v -timeout 10m .

# BENCH_baseline.json is the checked-in perf-ratchet baseline, not a
# build product — keep it.
clean:
	find . -maxdepth 1 -name 'BENCH_*.json' ! -name BENCH_baseline.json -delete
	rm -f trace.json coverage.out soak-report.json soak-ingest-report.json \
		lifecycle-sim-trace.txt
