# Single source of truth for the commands CI runs, so humans and the
# workflow in .github/workflows/ci.yml exercise the repo identically.

GO ?= go
BENCH_OUT ?= .

.PHONY: all build test vet fmt-check race bench bench-smoke paper trace serve-debug clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file is not gofmt-clean (gofmt -l prints offenders).
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Race-detect the packages the parallel harness and the observability
# layer touch.
race:
	$(GO) test -race ./internal/parallel ./internal/ml/... ./internal/core \
		./internal/experiments ./internal/obs ./internal/server

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The CI correctness gate: a small fixed seeded workload through the
# serial and parallel paths; exits non-zero on any divergence and writes
# BENCH_<rev>.json to $(BENCH_OUT).
bench-smoke:
	$(GO) run ./cmd/supremm-bench -jobs 800 -exp e1,e2,table2,fig1 \
		-train 25 -test 400 -unknown 200 -trees 60 -out $(BENCH_OUT)

paper:
	$(GO) run ./cmd/supremm-paper

# Run a reduced suite with span tracing on; writes trace.json and prints
# the per-stage timing summary to stderr.
trace:
	$(GO) run ./cmd/supremm-paper -exp e1,e2,table2,fig1 \
		-train 25 -test 400 -unknown 200 -trace trace.json

# Serve the API with /metrics, /debug/pprof and debug logging enabled.
serve-debug:
	$(GO) run ./cmd/supremm-serve -pprof -log-level debug

clean:
	rm -f BENCH_*.json trace.json
