// Command supremm-paper regenerates every table and figure of the paper
// from a synthetic Stampede workload.
//
// Usage:
//
//	supremm-paper [-seed N] [-exp id[,id...]] [-train N] [-test N] [-unknown N]
//
// With no -exp it runs the full suite in paper order (e1, e2, table2,
// fig1, fig2, fig3, table3, fig4, fig5, fig6, x1, x2, x3, x4).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 2014, "master random seed")
	exp := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	train := flag.Int("train", 0, "training jobs per class (default 300)")
	test := flag.Int("test", 0, "native-mix test jobs (default 4000)")
	unknown := flag.Int("unknown", 0, "jobs per unknown pool (default 1200)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.DefaultConfig(*seed)
	if *train > 0 {
		cfg.TrainPerClass = *train
	}
	if *test > 0 {
		cfg.TestJobs = *test
	}
	if *unknown > 0 {
		cfg.UnknownJobs = *unknown
	}
	env := experiments.NewEnv(cfg)

	ids := experiments.IDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	var jsonResults []*experiments.Result
	for _, id := range ids {
		driver, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res, err := driver(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		if *jsonOut {
			jsonResults = append(jsonResults, res)
			fmt.Fprintf(os.Stderr, "(%s in %v)\n", res.ID, time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Print(res.String())
		fmt.Printf("(%s in %v)\n\n", res.ID, time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResults); err != nil {
			fmt.Fprintln(os.Stderr, "supremm-paper:", err)
			os.Exit(1)
		}
	}
}
