// Command supremm-paper regenerates every table and figure of the paper
// from a synthetic Stampede workload.
//
// Usage:
//
//	supremm-paper [-seed N] [-exp id[,id...]] [-train N] [-test N] [-unknown N]
//	              [-workers N] [-trace out.json] [-log-level LEVEL]
//
// With no -exp it runs the full suite in paper order (e1, e2, table2,
// fig1, fig2, fig3, table3, fig4, fig5, fig6, x1, x2, x3, x4).
// Independent experiments run concurrently (bounded by -workers); results
// are printed in paper order and are bit-identical at any worker count.
//
// -trace writes a hierarchical span tree (JSON) covering every shared
// dataset build, pipeline stage and experiment, and prints a rendered
// timing summary to stderr. Tracing never touches the experiment RNG
// streams, so traced and untraced runs emit identical results.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parallel"
)

func main() {
	seed := flag.Uint64("seed", 2014, "master random seed")
	exp := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	train := flag.Int("train", 0, "training jobs per class (default 300)")
	test := flag.Int("test", 0, "native-mix test jobs (default 4000)")
	unknown := flag.Int("unknown", 0, "jobs per unknown pool (default 1200)")
	workers := flag.Int("workers", 0, "concurrent experiments (0 = all cores, 1 = serial)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text")
	trace := flag.String("trace", "", "write a span-tree trace of the run to this JSON file")
	logLevel := flag.String("log-level", "warn", "log level: debug, info, warn, error")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supremm-paper:", err)
		os.Exit(2)
	}
	log := obs.NewLogger(os.Stderr, level)
	var root *obs.Span // nil (no-op) unless -trace is set
	if *trace != "" {
		root = obs.NewSpan("suite")
	}

	cfg := experiments.DefaultConfig(*seed)
	cfg.Obs = core.Instrumentation{Span: root, Log: log}
	if *train > 0 {
		cfg.TrainPerClass = *train
	}
	if *test > 0 {
		cfg.TestJobs = *test
	}
	if *unknown > 0 {
		cfg.UnknownJobs = *unknown
	}
	env := experiments.NewEnv(cfg)

	ids := experiments.IDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	for _, id := range ids {
		if _, ok := experiments.ByID(id); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
	}

	// Fan the independent experiments out over the worker pool; results
	// come back in input (paper) order regardless of completion order.
	type timed struct {
		res *experiments.Result
		dur time.Duration
	}
	suiteStart := time.Now()
	out, err := parallel.Map(*workers, len(ids), func(i int) (timed, error) {
		driver, _ := experiments.ByID(ids[i])
		sp := root.Child("exp." + ids[i])
		defer sp.End()
		start := time.Now()
		res, err := driver(env)
		if err != nil {
			return timed{}, fmt.Errorf("experiment %s failed: %w", ids[i], err)
		}
		return timed{res: res, dur: time.Since(start)}, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		results := make([]*experiments.Result, len(out))
		for i, t := range out {
			results[i] = t.res
			fmt.Fprintf(os.Stderr, "(%s in %v)\n", t.res.ID, t.dur.Round(time.Millisecond))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "supremm-paper:", err)
			os.Exit(1)
		}
	} else {
		for _, t := range out {
			fmt.Print(t.res.String())
			fmt.Printf("(%s in %v)\n\n", t.res.ID, t.dur.Round(time.Millisecond))
		}
	}
	fmt.Fprintf(os.Stderr, "(suite: %d experiments in %v on %d workers)\n",
		len(ids), time.Since(suiteStart).Round(time.Millisecond), parallel.Workers(*workers))

	if *trace != "" {
		root.End()
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "supremm-paper: trace:", err)
			os.Exit(1)
		}
		if err := root.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "supremm-paper: trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n%s", *trace, root.Summary())
	}
}
