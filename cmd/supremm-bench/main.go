// Command supremm-bench is the bench-regression and correctness gate for
// the parallel harness. It runs a fixed seeded workload through the
// serial path (one worker, one core) and the parallel path (all cores),
// measures wall time, jobs/sec and speedup, and verifies the two paths
// produce bit-identical results: pipeline feature digests, fold-mean
// cross-validation accuracy, forest OOB error and permutation importance,
// SVM posteriors, and every experiment's metrics and rendered lines.
//
// It writes BENCH_<rev>.json to -out and exits non-zero if any
// serial/parallel pair diverges, which is what CI relies on.
//
// Usage:
//
//	supremm-bench [-seed N] [-jobs N] [-exp id,id,...] [-train N] [-test N]
//	              [-unknown N] [-trees N] [-out DIR] [-rev REV] [-skip-suite]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ml/eval"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// section is one serial-vs-parallel comparison in the report.
type section struct {
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	Parity     bool    `json:"parity"`
	Detail     string  `json:"detail,omitempty"`
}

func (s *section) finish(serial, par time.Duration, parity bool, detail string) {
	s.SerialMS = float64(serial.Microseconds()) / 1000
	s.ParallelMS = float64(par.Microseconds()) / 1000
	if par > 0 {
		s.Speedup = serial.Seconds() / par.Seconds()
	}
	s.Parity = parity
	s.Detail = detail
}

type report struct {
	Rev         string   `json:"rev"`
	Seed        uint64   `json:"seed"`
	GoVersion   string   `json:"go_version"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	NumCPU      int      `json:"num_cpu"`
	Jobs        int      `json:"jobs"`
	JobsPerSec  float64  `json:"jobs_per_sec"`
	Experiments []string `json:"experiments,omitempty"`
	Pipeline    section  `json:"pipeline"`
	CrossVal    section  `json:"crossval"`
	Forest      section  `json:"forest"`
	SVM         section  `json:"svm"`
	Suite       *section `json:"suite,omitempty"`
	// Compiled holds the compiled-vs-interpreted inference engine legs
	// (one per paper algorithm); the CI bench gate ratchets on their
	// Speedup ratios via -compare.
	Compiled []compiledLeg `json:"compiled,omitempty"`
	Obs      *obsDump      `json:"obs,omitempty"`
	OK       bool          `json:"ok"`
}

// obsDump embeds the instrumented parallel legs' observability state:
// per-stage wall timings summed over the trace tree plus every registry
// series (pool gauges/histograms, pipeline stage histograms).
type obsDump struct {
	StageWallMS map[string]float64   `json:"stage_wall_ms"`
	Metrics     []obs.SeriesSnapshot `json:"metrics"`
}

// stageWall sums wall milliseconds by span name across the trace tree.
func stageWall(t *obs.TraceNode) map[string]float64 {
	out := map[string]float64{}
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		out[n.Name] += n.WallMS
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	return out
}

func main() {
	seed := flag.Uint64("seed", 2014, "master random seed")
	jobs := flag.Int("jobs", 2000, "pipeline workload size")
	exp := flag.String("exp", "e1,e2,table2,fig1,fig2", "experiment ids for the suite comparison")
	train := flag.Int("train", 30, "suite training jobs per class")
	test := flag.Int("test", 500, "suite native-mix test jobs")
	unknown := flag.Int("unknown", 250, "suite jobs per unknown pool")
	trees := flag.Int("trees", 100, "forest size for the CV / importance checks")
	out := flag.String("out", ".", "output directory for BENCH_<rev>.json")
	rev := flag.String("rev", "", "revision tag for the output name (default: GITHUB_SHA or 'dev')")
	skipSuite := flag.Bool("skip-suite", false, "skip the experiment-suite comparison")
	comparePath := flag.String("compare", "", "baseline BENCH_*.json to ratchet compiled-engine speedups against")
	tolerance := flag.Float64("tolerance", 0.15, "allowed relative speedup regression vs the -compare baseline")
	minSpeedup := flag.Float64("min-speedup", 1.0, "absolute compiled-vs-interpreted speedup floor per algorithm")
	flag.Parse()

	r := report{
		Rev:        resolveRev(*rev),
		Seed:       *seed,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Jobs:       *jobs,
	}

	// Spans and stage metrics go on the parallel legs only, while the
	// serial baselines run with zero Instrumentation (the process-wide
	// pool gauges see both legs). Every parity check below therefore
	// doubles as proof that instrumentation leaves results bit-identical.
	reg := obs.NewRegistry()
	root := obs.NewSpan("bench")
	parallel.Instrument(reg)

	// --- Pipeline: generation + collection + summarization ---------------
	fmt.Fprintf(os.Stderr, "pipeline: %d jobs, serial...\n", *jobs)
	serialStart := time.Now()
	serialRun := runPipeline(*seed, *jobs, 1, core.Instrumentation{})
	serialDur := time.Since(serialStart)
	fmt.Fprintf(os.Stderr, "pipeline: parallel on %d cores...\n", r.GoMaxProcs)
	psp := root.Child("pipeline")
	parStart := time.Now()
	parRun := runPipeline(*seed, *jobs, 0, core.Instrumentation{Span: psp, Metrics: reg})
	parDur := time.Since(parStart)
	psp.End()
	sd, pd := pipelineDigest(serialRun), pipelineDigest(parRun)
	detail := ""
	if sd != pd {
		detail = fmt.Sprintf("feature digests differ: serial %x vs parallel %x", sd, pd)
	}
	r.Pipeline.finish(serialDur, parDur, sd == pd, detail)
	r.JobsPerSec = float64(*jobs) / parDur.Seconds()

	ds, err := core.BuildDataset(parRun.Records, core.LabelByLariat, core.DefaultFeatures())
	if err != nil {
		fatal("build dataset: %v", err)
	}

	// --- Cross-validation fold fan-out -----------------------------------
	fmt.Fprintln(os.Stderr, "crossval: 4 folds, serial vs parallel...")
	cvTrain := func(workers int) eval.TrainFunc {
		return func(tr *dataset.Dataset) (eval.ProbClassifier, error) {
			return forest.TrainClassifier(tr, forest.Config{Trees: *trees, Seed: *seed, Workers: workers})
		}
	}
	cvSerialStart := time.Now()
	cvSerial, err := eval.CrossValidateWorkers(ds, 4, *seed, 1, cvTrain(1))
	if err != nil {
		fatal("serial crossval: %v", err)
	}
	cvSerialDur := time.Since(cvSerialStart)
	cvsp := root.Child("crossval")
	cvParStart := time.Now()
	cvPar, err := eval.CrossValidateObs(cvsp, ds, 4, *seed, 0, cvTrain(0))
	if err != nil {
		fatal("parallel crossval: %v", err)
	}
	cvParDur := time.Since(cvParStart)
	cvsp.End()
	detail = ""
	if cvSerial != cvPar {
		detail = fmt.Sprintf("fold-mean accuracy diverged: serial %.17g vs parallel %.17g", cvSerial, cvPar)
	}
	r.CrossVal.finish(cvSerialDur, cvParDur, cvSerial == cvPar, detail)

	// --- Forest: per-tree training + permutation importance --------------
	fmt.Fprintln(os.Stderr, "forest: train + importance, serial vs parallel...")
	fSerialStart := time.Now()
	fSerial, err := forest.TrainClassifier(ds, forest.Config{Trees: *trees, Seed: *seed, Workers: 1})
	if err != nil {
		fatal("serial forest: %v", err)
	}
	impSerial := fSerial.Importance()
	fSerialDur := time.Since(fSerialStart)
	fsp := root.Child("forest")
	fParStart := time.Now()
	fPar, err := forest.TrainClassifier(ds, forest.Config{Trees: *trees, Seed: *seed, Span: fsp})
	if err != nil {
		fatal("parallel forest: %v", err)
	}
	impPar := fPar.Importance()
	fParDur := time.Since(fParStart)
	fsp.End()
	detail = compareForest(fSerial, fPar, impSerial, impPar)
	r.Forest.finish(fSerialDur, fParDur, detail == "", detail)

	// --- SVM: one-vs-one pair fan-out + calibrated posteriors ------------
	fmt.Fprintln(os.Stderr, "svm: pair training, serial vs parallel...")
	svmData := sample(ds, 400)
	probe := svmData.X
	if len(probe) > 200 {
		probe = probe[:200]
	}
	svmCfg := svm.PaperConfig()
	svmCfg.Seed = *seed
	sSerialStart := time.Now()
	svmCfg.Workers = 1
	mSerial, err := svm.Train(svmData, svmCfg)
	if err != nil {
		fatal("serial svm: %v", err)
	}
	sSerialDur := time.Since(sSerialStart)
	ssp := root.Child("svm")
	sParStart := time.Now()
	svmCfg.Workers = 0
	svmCfg.Span = ssp
	mPar, err := svm.Train(svmData, svmCfg)
	if err != nil {
		fatal("parallel svm: %v", err)
	}
	sParDur := time.Since(sParStart)
	ssp.End()
	detail = compareSVM(mSerial, mPar, probe)
	r.SVM.finish(sSerialDur, sParDur, detail == "", detail)

	// --- Experiment suite -------------------------------------------------
	if !*skipSuite {
		ids := splitIDs(*exp)
		r.Experiments = ids
		cfg := experiments.Config{
			Seed:          *seed,
			TrainPerClass: *train,
			TestJobs:      *test,
			UnknownJobs:   *unknown,
		}
		// The serial leg is the pre-harness baseline: one experiment at a
		// time on a single core.
		fmt.Fprintf(os.Stderr, "suite [%s]: serial on 1 core...\n", strings.Join(ids, ","))
		old := runtime.GOMAXPROCS(1)
		suiteSerialStart := time.Now()
		serialRes, err := experiments.RunSelected(experiments.NewEnv(cfg), ids, 1)
		suiteSerialDur := time.Since(suiteSerialStart)
		runtime.GOMAXPROCS(old)
		if err != nil {
			fatal("serial suite: %v", err)
		}
		fmt.Fprintf(os.Stderr, "suite: parallel on %d cores...\n", old)
		stsp := root.Child("suite")
		pcfg := cfg
		pcfg.Obs = core.Instrumentation{Span: stsp, Metrics: reg}
		suiteParStart := time.Now()
		parRes, err := experiments.RunSelected(experiments.NewEnv(pcfg), ids, 0)
		suiteParDur := time.Since(suiteParStart)
		stsp.End()
		if err != nil {
			fatal("parallel suite: %v", err)
		}
		detail = compareSuites(serialRes, parRes)
		s := &section{}
		s.finish(suiteSerialDur, suiteParDur, detail == "", detail)
		r.Suite = s
	}

	// --- Compiled inference engine ----------------------------------------
	r.Compiled = runCompiledLegs(ds, *seed, *trees)

	r.OK = r.Pipeline.Parity && r.CrossVal.Parity && r.Forest.Parity && r.SVM.Parity &&
		(r.Suite == nil || r.Suite.Parity)
	for _, leg := range r.Compiled {
		r.OK = r.OK && leg.Parity
	}

	root.End()
	tree := root.Tree()
	r.Obs = &obsDump{StageWallMS: stageWall(tree), Metrics: reg.Snapshot()}
	tracePath := filepath.Join(*out, "BENCH_TRACE_"+r.Rev+".json")
	tf, err := os.Create(tracePath)
	if err != nil {
		fatal("write trace: %v", err)
	}
	if err := root.WriteJSON(tf); err != nil {
		fatal("write trace: %v", err)
	}
	if err := tf.Close(); err != nil {
		fatal("write trace: %v", err)
	}
	fmt.Fprintf(os.Stderr, "trace written to %s\n", tracePath)

	path := filepath.Join(*out, "BENCH_"+r.Rev+".json")
	buf, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		fatal("marshal report: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fatal("write report: %v", err)
	}
	os.Stdout.Write(buf)
	if !r.OK {
		fmt.Fprintln(os.Stderr, "supremm-bench: serial and parallel paths diverged")
		os.Exit(1)
	}
	if *comparePath != "" {
		if failures := compareBaseline(r.Compiled, *comparePath, *tolerance, *minSpeedup); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "supremm-bench: bench gate: %s\n", f)
			}
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "supremm-bench: all parity checks passed, report at %s\n", path)
}

func runPipeline(seed uint64, jobs, workers int, ins core.Instrumentation) *core.PipelineResult {
	cfg := core.DefaultPipelineConfig(seed, jobs)
	cfg.Workers = workers
	cfg.Obs = ins
	res, err := core.RunPipeline(cfg)
	if err != nil {
		fatal("pipeline (workers=%d): %v", workers, err)
	}
	return res
}

// pipelineDigest hashes every job's id, label and featurized summary, so
// any numeric divergence between runs shows up as a digest mismatch.
func pipelineDigest(res *core.PipelineResult) uint64 {
	h := fnv.New64a()
	rows := core.FeaturizeAll(res.Records, core.DefaultFeatures())
	var b [8]byte
	for i, rec := range res.Records {
		h.Write([]byte(rec.Job.ID))
		h.Write([]byte(rec.Label))
		for _, v := range rows[i] {
			bits := math.Float64bits(v)
			for k := 0; k < 8; k++ {
				b[k] = byte(bits >> (8 * k))
			}
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

func compareForest(a, b *forest.Classifier, impA, impB []float64) string {
	if ea, eb := a.OOBError(), b.OOBError(); ea != eb {
		return fmt.Sprintf("OOB error diverged: %.17g vs %.17g", ea, eb)
	}
	for f := range impA {
		if impA[f] != impB[f] {
			return fmt.Sprintf("importance[%d] diverged: %.17g vs %.17g", f, impA[f], impB[f])
		}
	}
	return ""
}

func compareSVM(a, b *svm.Model, rows [][]float64) string {
	for i, row := range rows {
		ca, pa := a.PredictProb(row)
		cb, pb := b.PredictProb(row)
		if ca != cb {
			return fmt.Sprintf("row %d: predicted class diverged: %d vs %d", i, ca, cb)
		}
		for c := range pa {
			if pa[c] != pb[c] {
				return fmt.Sprintf("row %d: posterior[%d] diverged: %.17g vs %.17g", i, c, pa[c], pb[c])
			}
		}
	}
	return ""
}

func compareSuites(a, b []*experiments.Result) string {
	for i := range a {
		if a[i].ID != b[i].ID {
			return fmt.Sprintf("result order diverged at %d: %s vs %s", i, a[i].ID, b[i].ID)
		}
		if len(a[i].Metrics) != len(b[i].Metrics) {
			return fmt.Sprintf("%s: metric count diverged: %d vs %d", a[i].ID, len(a[i].Metrics), len(b[i].Metrics))
		}
		for k, va := range a[i].Metrics {
			vb, ok := b[i].Metrics[k]
			if !ok {
				return fmt.Sprintf("%s: metric %q missing from parallel run", a[i].ID, k)
			}
			if va != vb {
				return fmt.Sprintf("%s: metric %q diverged: %.17g vs %.17g", a[i].ID, k, va, vb)
			}
		}
		if la, lb := strings.Join(a[i].Lines, "\n"), strings.Join(b[i].Lines, "\n"); la != lb {
			return fmt.Sprintf("%s: rendered lines diverged", a[i].ID)
		}
	}
	return ""
}

// sample returns an up-to-n row stride sample preserving class coverage.
func sample(d *dataset.Dataset, n int) *dataset.Dataset {
	if d.Len() <= n {
		return d
	}
	stride := (d.Len() + n - 1) / n
	var idx []int
	for i := 0; i < d.Len(); i += stride {
		idx = append(idx, i)
	}
	return d.Subset(idx)
}

func splitIDs(s string) []string {
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

func resolveRev(flagRev string) string {
	if flagRev != "" {
		return flagRev
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	return "dev"
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "supremm-bench: "+format+"\n", args...)
	os.Exit(1)
}
