package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml/forest"
)

// compiledLeg is one algorithm's compiled-vs-interpreted comparison:
// single-row classification latency through the serving entry point
// (JobClassifier.Classify) on both engines, plus a bitwise parity sweep
// over every probe row. Speedup (interpreted ns / compiled ns) is the
// machine-portable number the CI ratchet gates on; the absolute
// nanoseconds are informational.
type compiledLeg struct {
	Algo        string  `json:"algo"`
	TrainRows   int     `json:"train_rows"`
	ProbeRows   int     `json:"probe_rows"`
	InterpNs    float64 `json:"interpreted_ns_per_row"`
	CompiledNs  float64 `json:"compiled_ns_per_row"`
	Speedup     float64 `json:"speedup"`
	InterpRPS   float64 `json:"interpreted_rows_per_sec"`
	CompiledRPS float64 `json:"compiled_rows_per_sec"`
	Parity      bool    `json:"parity"`
	Detail      string  `json:"detail,omitempty"`
}

// timeClassify measures steady-state ns per classified row: one warm-up
// pass (fills the scratch pool, faults code and data in), then repeated
// passes until the target duration is covered.
func timeClassify(rows [][]float64, target time.Duration, fn func(row []float64)) float64 {
	pass := func() {
		for _, r := range rows {
			fn(r)
		}
	}
	pass()
	start := time.Now()
	pass()
	est := time.Since(start)
	reps := 1
	if est > 0 && est < target {
		reps = int(target/est) + 1
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		pass()
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(reps*len(rows))
}

// compiledParity sweeps every probe row through both engines and
// reports the first bitwise divergence (empty string = parity holds).
func compiledParity(c *core.JobClassifier, rows [][]float64) string {
	for ri, row := range rows {
		if got, want := c.Predict(row), c.PredictInterpreted(row); got != want {
			return fmt.Sprintf("row %d: Predict %d vs interpreted %d", ri, got, want)
		}
		gotCls, gotProbs := c.PredictProb(row)
		wantCls, wantProbs := c.PredictProbInterpreted(row)
		if gotCls != wantCls {
			return fmt.Sprintf("row %d: class %d vs interpreted %d", ri, gotCls, wantCls)
		}
		for i := range wantProbs {
			if math.Float64bits(gotProbs[i]) != math.Float64bits(wantProbs[i]) {
				return fmt.Sprintf("row %d: posterior[%d] %.17g vs interpreted %.17g",
					ri, i, gotProbs[i], wantProbs[i])
			}
		}
		gl, gp, gok := c.Classify(row, 0.5)
		wl, wp, wok := c.ClassifyInterpreted(row, 0.5)
		if gl != wl || gok != wok || math.Float64bits(gp) != math.Float64bits(wp) {
			return fmt.Sprintf("row %d: Classify (%q,%.17g,%v) vs interpreted (%q,%.17g,%v)",
				ri, gl, gp, gok, wl, wp, wok)
		}
	}
	return ""
}

// runCompiledLegs trains one classifier per paper algorithm and
// measures the compiled engine against the interpreted reference.
func runCompiledLegs(ds *dataset.Dataset, seed uint64, trees int) []compiledLeg {
	train := sample(ds, 300)
	probe := sample(ds, 200).X
	const target = 150 * time.Millisecond

	configs := []struct {
		algo core.Algorithm
		cfg  core.ClassifierConfig
	}{
		{core.AlgoForest, core.ClassifierConfig{Algo: core.AlgoForest,
			Forest: forest.Config{Trees: trees, Seed: seed}}},
		{core.AlgoSVM, core.PaperSVM(seed)},
		{core.AlgoBayes, core.ClassifierConfig{Algo: core.AlgoBayes}},
	}
	legs := make([]compiledLeg, 0, len(configs))
	for _, c := range configs {
		fmt.Fprintf(os.Stderr, "compiled: %s, train %d rows, probe %d rows...\n",
			c.algo, train.Len(), len(probe))
		model, err := core.TrainJobClassifier(train, c.cfg)
		if err != nil {
			fatal("compiled leg %s: train: %v", c.algo, err)
		}
		leg := compiledLeg{Algo: string(c.algo), TrainRows: train.Len(), ProbeRows: len(probe)}
		if !model.IsCompiled() {
			leg.Detail = "model did not compile"
			legs = append(legs, leg)
			continue
		}
		leg.Detail = compiledParity(model, probe)
		leg.Parity = leg.Detail == ""
		leg.InterpNs = timeClassify(probe, target, func(row []float64) {
			_, _, _ = model.ClassifyInterpreted(row, 0.5)
		})
		leg.CompiledNs = timeClassify(probe, target, func(row []float64) {
			_, _, _ = model.Classify(row, 0.5)
		})
		if leg.CompiledNs > 0 {
			leg.Speedup = leg.InterpNs / leg.CompiledNs
			leg.CompiledRPS = 1e9 / leg.CompiledNs
		}
		if leg.InterpNs > 0 {
			leg.InterpRPS = 1e9 / leg.InterpNs
		}
		legs = append(legs, leg)
	}
	return legs
}

// compareBaseline gates the current compiled-engine speedups against a
// checked-in baseline report: per algorithm the speedup ratio must not
// fall below baseline*(1-tolerance) nor below minSpeedup. Ratios, not
// absolute nanoseconds, are compared, so the gate is portable across
// the (different) machines that produced the baseline and run CI. The
// delta table goes to stdout and, when $GITHUB_STEP_SUMMARY is set, to
// the job summary; the returned failures fail the run.
func compareBaseline(legs []compiledLeg, path string, tolerance, minSpeedup float64) []string {
	raw, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("read baseline %s: %v", path, err)}
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return []string{fmt.Sprintf("parse baseline %s: %v", path, err)}
	}
	baseBy := map[string]compiledLeg{}
	for _, l := range base.Compiled {
		baseBy[l.Algo] = l
	}

	var failures []string
	var b strings.Builder
	fmt.Fprintf(&b, "### Compiled-engine speedup vs `%s` (tolerance %.0f%%, floor %.2fx)\n\n", path, tolerance*100, minSpeedup)
	b.WriteString("| algo | baseline speedup | current speedup | delta | current ns/row | status |\n")
	b.WriteString("|------|-----------------:|----------------:|------:|---------------:|--------|\n")
	for _, l := range legs {
		bl, ok := baseBy[l.Algo]
		status := "ok"
		switch {
		case !l.Parity:
			status = "PARITY BROKEN"
			failures = append(failures, fmt.Sprintf("%s: compiled/interpreted parity broken: %s", l.Algo, l.Detail))
		case !ok:
			status = "no baseline"
			failures = append(failures, fmt.Sprintf("%s: baseline %s has no entry for this algorithm", l.Algo, path))
		case l.Speedup < minSpeedup:
			status = "BELOW FLOOR"
			failures = append(failures, fmt.Sprintf("%s: speedup %.2fx below the %.2fx floor", l.Algo, l.Speedup, minSpeedup))
		case l.Speedup < bl.Speedup*(1-tolerance):
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: speedup %.2fx regressed beyond tolerance (baseline %.2fx, floor after tolerance %.2fx)",
				l.Algo, l.Speedup, bl.Speedup, bl.Speedup*(1-tolerance)))
		}
		baseStr, delta := "-", "-"
		if ok {
			baseStr = fmt.Sprintf("%.2fx", bl.Speedup)
			delta = fmt.Sprintf("%+.1f%%", (l.Speedup/bl.Speedup-1)*100)
		}
		fmt.Fprintf(&b, "| %s | %s | %.2fx | %s | %.0f | %s |\n",
			l.Algo, baseStr, l.Speedup, delta, l.CompiledNs, status)
	}
	table := b.String()
	fmt.Println(table)
	if summary := os.Getenv("GITHUB_STEP_SUMMARY"); summary != "" {
		if f, err := os.OpenFile(summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
			fmt.Fprintln(f, table)
			f.Close()
		}
	}
	return failures
}
