// Command supremm-load is a seeded open-loop load generator for
// supremm-serve: it fires classification traffic (a configurable
// batch/single mix) at a target rate with an optional linear ramp,
// classifies every response against the serving status-code contract
// (200 OK / 429 shed / 504 deadline / 503 unavailable), and writes a
// JSON report with latency percentiles and shed/timeout counts. The
// soak CI job and `make soak` drive it against the real binary; it is
// equally usable for manual capacity runs.
//
// Usage:
//
//	supremm-load -url http://127.0.0.1:8080 -rps 200 -dur 30s
//	             [-ramp 5s] [-mix 0.25] [-dmix 0.1] [-rmix 0.1]
//	             [-batch 64] [-threshold 0.5]
//	             [-seed 7] [-timeout 10s] [-inflight 512]
//	             [-spec k=v,...] [-out report.json] [-reconcile]
//
// -dmix and -rmix route a fraction of arrivals to the discovery
// assignment (/api/discover/assign) and runtime-class
// (/api/runtime-class) endpoints; the target must have the matching
// model fitted or the run refuses to start.
//
// -spec takes a full load spec (see internal/loadgen.ParseSpec) and
// overrides the individual flags; the report embeds the canonical spec
// either way, so any run can be reproduced from its artifact.
//
// -reconcile cross-checks the run against the target's flight recorder
// (/debug/requests): the recorder's per-status classify counts must
// match the client's exactly, its ledger must balance, and every
// error-class response must be retrievable from the ring. The result is
// embedded in the report; mismatches are contract violations when the
// client saw every response (no client-side errors).
//
// Exit status: 0 when the run completed and the serving contract held
// (every 429 carried Retry-After; -reconcile found no drift), 1 on
// configuration or target errors, 2 on contract violations.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "target server base URL")
	rps := flag.Float64("rps", 100, "steady-state arrival rate (requests/second)")
	dur := flag.Duration("dur", 10*time.Second, "run length")
	ramp := flag.Duration("ramp", 0, "linear ramp from 0 to -rps over this prefix of the run")
	mix := flag.Float64("mix", 0.2, "fraction of arrivals sent as batch requests")
	dmix := flag.Float64("dmix", 0, "fraction of arrivals sent to /api/discover/assign")
	rmix := flag.Float64("rmix", 0, "fraction of arrivals sent to /api/runtime-class")
	batch := flag.Int("batch", 32, "rows per batch request")
	threshold := flag.Float64("threshold", 0.5, "classification threshold")
	seed := flag.Uint64("seed", 1, "seed for request bodies and the batch/single dice")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request client timeout")
	inflight := flag.Int("inflight", 512, "client-side cap on outstanding requests (arrivals beyond it are counted dropped)")
	spec := flag.String("spec", "", "full load spec (k=v,... -- overrides the individual flags)")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	reconcile := flag.Bool("reconcile", false, "cross-check client-observed counts against the target's flight recorder after the run")
	flag.Parse()

	var cfg loadgen.Config
	var err error
	if *spec != "" {
		cfg, err = loadgen.ParseSpec(*spec)
	} else {
		cfg, err = loadgen.ParseSpec(strings.Join([]string{
			"url=" + *url,
			fmt.Sprintf("rps=%g", *rps),
			"dur=" + dur.String(),
			"ramp=" + ramp.String(),
			fmt.Sprintf("mix=%g", *mix),
			fmt.Sprintf("dmix=%g", *dmix),
			fmt.Sprintf("rmix=%g", *rmix),
			fmt.Sprintf("batch=%d", *batch),
			fmt.Sprintf("threshold=%g", *threshold),
			fmt.Sprintf("seed=%d", *seed),
			"timeout=" + timeout.String(),
			fmt.Sprintf("inflight=%d", *inflight),
		}, ","))
	}
	if err != nil {
		fatal(1, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "supremm-load: %s\n", cfg.Spec())
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fatal(1, err)
	}
	if *reconcile {
		chk, err := loadgen.ReconcileRecorder(ctx, cfg.BaseURL, rep)
		if err != nil {
			fatal(1, err)
		}
		fmt.Fprintf(os.Stderr,
			"supremm-load: recorder ledger observed=%d kept=%d sampledOut=%d evicted=%d mismatches=%d\n",
			chk.Observed, chk.Kept, chk.SampledOut, chk.Evicted, len(chk.Mismatches))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(1, err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(1, err)
		}
		fmt.Fprintf(os.Stderr, "supremm-load: report written to %s\n", *out)
	} else {
		os.Stdout.Write(enc)
	}

	fmt.Fprintf(os.Stderr,
		"supremm-load: sent=%d ok=%d shed=%d timeouts=%d unavailable=%d serverErrors=%d clientErrors=%d dropped=%d p99=%.1fms\n",
		rep.Sent, rep.OK, rep.Shed, rep.Timeouts, rep.Unavailable,
		rep.ServerErrors, rep.ClientErrors, rep.Dropped, rep.LatencyMS.P99)
	if rep.ShedWithoutRetryAfter > 0 {
		fatal(2, fmt.Errorf("contract violation: %d shed responses missing Retry-After", rep.ShedWithoutRetryAfter))
	}
	if rep.Recorder != nil && rep.ClientErrors == 0 && len(rep.Recorder.Mismatches) > 0 {
		fatal(2, fmt.Errorf("recorder reconciliation failed: %s", strings.Join(rep.Recorder.Mismatches, "; ")))
	}
}

func fatal(code int, err error) {
	fmt.Fprintln(os.Stderr, "supremm-load:", err)
	os.Exit(code)
}
