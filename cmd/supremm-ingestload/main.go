// Command supremm-ingestload replays a seeded firehose against a
// running supremm-ingestd and, when given the daemon's HTTP address,
// reconciles the run to the record: the client-side acked count, the
// daemon's conservation ledger, and the /metrics counters must agree
// exactly.
//
// Usage:
//
//	supremm-ingestload -addr 127.0.0.1:9301 [-http http://127.0.0.1:9302]
//	                   [-jobs 32] [-conns 4] [-hosts 4] [-wall 4000]
//	                   [-dur 2s] [-chunk 4] [-seed 1] [-out report.json]
//
// or equivalently with a single spec string:
//
//	supremm-ingestload -spec addr=127.0.0.1:9301,jobs=64,dur=10s,seed=7
//
// The JSON report is printed to stdout (and to -out when given). Exit
// status: 0 when the run completed and every reconciliation join is
// exact, 2 when the run completed but the books do not balance, 1 on
// any other failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "", "ingest daemon TCP address (required unless -spec)")
	httpBase := flag.String("http", "", "daemon HTTP base URL, e.g. http://127.0.0.1:9302; enables exact reconciliation")
	jobs := flag.Int("jobs", 0, "cluster jobs to generate and stream")
	conns := flag.Int("conns", 0, "client connections (simulated collector hosts)")
	hosts := flag.Int("hosts", 0, "max nodes per job")
	wall := flag.Float64("wall", 0, "wall-seconds cap per job")
	dur := flag.Duration("dur", 0, "replay window the send schedule is compressed into")
	chunk := flag.Int("chunk", 0, "samples per data frame")
	seed := flag.Uint64("seed", 1, "workload seed; one seed reproduces the exact frame sequence")
	spec := flag.String("spec", "", "full load spec (overrides the individual flags)")
	out := flag.String("out", "", "also write the JSON report to this file")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall run deadline")
	flag.Parse()

	cfg, err := buildConfig(*spec, *addr, *jobs, *conns, *hosts, *wall, *dur, *chunk, *seed)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	rep, runErr := loadgen.RunIngest(ctx, cfg)
	if rep == nil {
		fatal(runErr)
	}
	if *httpBase != "" {
		chk, err := loadgen.ReconcileIngest(ctx, *httpBase, rep)
		if err != nil {
			emit(rep, *out)
			fatal(err)
		}
		rep.Reconcile = chk
	}
	emit(rep, *out)

	switch {
	case runErr != nil:
		fatal(runErr)
	case rep.Reconcile != nil && len(rep.Reconcile.Mismatches) > 0:
		fmt.Fprintln(os.Stderr, "supremm-ingestload: reconciliation mismatches:")
		for _, m := range rep.Reconcile.Mismatches {
			fmt.Fprintln(os.Stderr, "  -", m)
		}
		os.Exit(2)
	}
}

// buildConfig resolves the spec-vs-flags precedence: -spec wins whole;
// otherwise flags overlay the spec defaults.
func buildConfig(spec, addr string, jobs, conns, hosts int, wall float64, dur time.Duration, chunk int, seed uint64) (loadgen.IngestConfig, error) {
	if spec != "" {
		return loadgen.ParseIngestSpec(spec)
	}
	if addr == "" {
		return loadgen.IngestConfig{}, fmt.Errorf("either -addr or -spec is required")
	}
	cfg, err := loadgen.ParseIngestSpec("addr=" + addr)
	if err != nil {
		return loadgen.IngestConfig{}, err
	}
	if jobs != 0 {
		cfg.Jobs = jobs
	}
	if conns != 0 {
		cfg.Conns = conns
	}
	if hosts != 0 {
		cfg.MaxHosts = hosts
	}
	if wall != 0 {
		cfg.WallCap = wall
	}
	if dur != 0 {
		cfg.Duration = dur
	}
	if chunk != 0 {
		cfg.ChunkSize = chunk
	}
	cfg.Seed = seed
	return cfg, cfg.Validate()
}

// emit writes the report to stdout and optionally to a file.
func emit(rep *loadgen.IngestReport, out string) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "supremm-ingestload:", err)
	os.Exit(1)
}
