// Command supremm-report generates a synthetic workload year and prints
// XDMoD-style warehouse reports: job counts, CPU hours, wall and wait
// times broken down by a chosen dimension.
//
// Usage:
//
//	supremm-report [-seed N] [-jobs N] [-by application|category|user|population|jobsize|month]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/warehouse"
)

func main() {
	seed := flag.Uint64("seed", 2014, "random seed")
	jobs := flag.Int("jobs", 5000, "number of jobs to generate")
	by := flag.String("by", "application", "grouping dimension: application, category, user, population, jobsize, month")
	top := flag.Int("top", 25, "show at most this many groups")
	sched := flag.Bool("sched", false, "run the workload through the batch-scheduler simulation (emergent waits)")
	backfill := flag.Bool("backfill", true, "with -sched, enable EASY backfill")
	util := flag.Bool("util", false, "print the monthly utilization timeseries instead of a group-by report")
	flag.Parse()

	dim := warehouse.Dimension(*by)
	switch dim {
	case warehouse.ByApplication, warehouse.ByCategory, warehouse.ByUser,
		warehouse.ByPopulation, warehouse.ByJobSize, warehouse.ByMonth:
	default:
		fmt.Fprintf(os.Stderr, "supremm-report: unknown dimension %q\n", *by)
		os.Exit(2)
	}

	cfg := core.DefaultPipelineConfig(*seed, *jobs)
	cfg.UseScheduler = *sched
	cfg.Backfill = *backfill
	res, err := core.RunPipeline(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supremm-report:", err)
		os.Exit(1)
	}

	totals := res.Store.Totals()
	fmt.Printf("workload: %d jobs, %.0f CPU hours, %.0f wall hours\n\n",
		totals.Jobs, totals.CPUHours, totals.WallHours)

	if *util {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "month\tjobs\tnode hours\tutilization\tavg wait (h)\n")
		for _, p := range res.Store.Utilization(cfg.Machine.TotalNodes()) {
			fmt.Fprintf(w, "%s\t%d\t%.0f\t%.2f%%\t%.2f\n",
				p.Month, p.Jobs, p.NodeHours, 100*p.Utilization, p.AvgWaitHours)
		}
		w.Flush()
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s\tjobs\t%% mix\tcpu hours\tavg nodes\tavg wait (h)\tavg cpu user\n", dim)
	for i, g := range res.Store.GroupBy(dim) {
		if i >= *top {
			break
		}
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.0f\t%.1f\t%.2f\t%.3f\n",
			g.Key, g.Jobs, g.MixPercent, g.CPUHours, g.AvgNodes, g.AvgWaitHrs, g.AvgCPUUser)
	}
	w.Flush()
}
