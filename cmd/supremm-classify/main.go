// Command supremm-classify trains a classifier on a SUPReMM CSV dataset
// (as produced by supremm-gen) and evaluates it on a withheld split or a
// second dataset, printing accuracy, the confusion matrix, and the
// probability-threshold curve.
//
// Usage:
//
//	supremm-classify -data train.csv [-testdata test.csv] [-algo svm|rf|nb]
//	                 [-gamma 0.1] [-C 1000] [-trees 200] [-threshold 0.8]
//	                 [-save model.bin]
//	supremm-classify -load model.bin -testdata test.csv [-threshold 0.8]
//
// With -save the trained model is written to disk; with -load a saved
// model is evaluated on -testdata without retraining. With -tune the tool
// grid-searches (gamma, C) by cross-validation before training.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml/eval"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/rng"
)

func main() {
	dataPath := flag.String("data", "", "training CSV (required)")
	testPath := flag.String("testdata", "", "test CSV (default: 30% withheld from -data)")
	algo := flag.String("algo", "svm", "classifier: svm, rf, or nb")
	gamma := flag.Float64("gamma", 0.1, "SVM RBF gamma")
	c := flag.Float64("C", 1000, "SVM cost parameter")
	trees := flag.Int("trees", 200, "random forest size")
	threshold := flag.Float64("threshold", 0.8, "probability threshold for the classified fraction report")
	seed := flag.Uint64("seed", 1, "random seed for splits and training")
	savePath := flag.String("save", "", "write the trained model to this file")
	loadPath := flag.String("load", "", "load a saved model instead of training")
	tune := flag.Bool("tune", false, "grid-search (gamma, C) by cross-validation before training the SVM")
	flag.Parse()

	if *loadPath != "" {
		if *testPath == "" {
			fatal(fmt.Errorf("-load requires -testdata"))
		}
		model, err := loadModel(*loadPath)
		if err != nil {
			fatal(err)
		}
		test, err := readCSV(*testPath)
		if err != nil {
			fatal(err)
		}
		report(model, test, *threshold)
		return
	}

	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	train, err := readCSV(*dataPath)
	if err != nil {
		fatal(err)
	}
	var test *dataset.Dataset
	if *testPath != "" {
		if test, err = readCSV(*testPath); err != nil {
			fatal(err)
		}
	} else {
		train, test = train.Split(rng.New(*seed), 0.7)
	}

	if *tune && *algo == "svm" {
		results, err := svm.Tune(train, svm.Grid{}, 3, *seed)
		if err != nil {
			fatal(err)
		}
		best := results[0]
		fmt.Printf("tuned: gamma=%v C=%v (CV accuracy %.4f)\n", best.Gamma, best.C, best.Accuracy)
		*gamma, *c = best.Gamma, best.C
	}

	var cfg core.ClassifierConfig
	switch *algo {
	case "svm":
		cfg = core.ClassifierConfig{Algo: core.AlgoSVM, SVM: svm.Config{
			Kernel: svm.RBF{Gamma: *gamma}, C: *c, Probability: true, Seed: *seed,
		}}
	case "rf":
		cfg = core.ClassifierConfig{Algo: core.AlgoForest, Forest: forest.Config{Trees: *trees, Seed: *seed}}
	case "nb":
		cfg = core.ClassifierConfig{Algo: core.AlgoBayes}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	model, err := core.TrainJobClassifier(train, cfg)
	if err != nil {
		fatal(err)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := model.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved model to %s\n", *savePath)
	}
	fmt.Printf("algorithm: %s; train %d rows, %d features, %d classes\n",
		*algo, train.Len(), train.NumFeatures(), train.NumClasses())
	report(model, test, *threshold)
}

// loadModel reads a saved classifier from disk.
func loadModel(path string) (*core.JobClassifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadJobClassifier(f)
}

// report prints the evaluation for a model on a test set.
func report(model *core.JobClassifier, test *dataset.Dataset, threshold float64) {
	preds := model.Score(test)
	cm := eval.NewConfusionMatrix(test.ClassNames, preds)
	fmt.Printf("test rows: %d\n", test.Len())
	fmt.Printf("test accuracy: %.4f\n\n", cm.Accuracy())
	fmt.Println("confusion matrix (correct count in parentheses, then misclassifications):")
	fmt.Print(cm.String())

	curve := eval.ThresholdCurve(preds, []float64{threshold})
	fmt.Printf("\nat probability threshold %.2f: %.1f%% classified, %.1f%% correctly classified\n",
		threshold, 100*curve[0].Classified, 100*curve[0].CorrectlyClassified)
}

func readCSV(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "supremm-classify:", err)
	os.Exit(1)
}
