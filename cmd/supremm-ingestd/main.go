// Command supremm-ingestd is the streaming ingest daemon: compute nodes
// ship TACC_Stats records as length-framed chunks over TCP, a router
// hashes each job to a shard, per-shard summarizers finalize jobs on
// epilog (or idle timeout), and finalized summaries land in a
// concurrent sharded warehouse with time-bucketed rollups.
//
// Usage:
//
//	supremm-ingestd [-listen 127.0.0.1:9301] [-http 127.0.0.1:9302]
//	                [-shards N] [-queue-depth N] [-idle-timeout 30s]
//	                [-max-payload N] [-warehouse-shards N] [-rollup 1h]
//	                [-faults SPEC] [-fault-seed N]
//	                [-flight] [-flight-capacity N]
//	                [-log-level debug|info|warn|error]
//
// Endpoints (on -http):
//
//	GET /metrics          Prometheus text exposition
//	GET /healthz          liveness (always 200 while serving)
//	GET /readyz           readiness (200 once both listeners are up)
//	GET /debug/ingest     conservation ledger + gauges (JSON)
//	GET /debug/requests   flight-recorder query over finalized jobs
//	GET /api/warehouse/groupby?dim=application|category|user|population|jobsize|month
//	GET /api/warehouse/rollup
//	GET /api/warehouse/totals
//
// The daemon's headline contract is exact record conservation: every
// record a client delivers is summarized exactly once or dropped under
// a named reason, and after a drain
//
//	ingest_records_total{outcome="received"} ==
//	  {outcome="summarized"} + Σ {outcome="dropped",reason=...}
//
// holds exactly, per shard and globally. supremm-ingestload replays a
// seeded firehose and reconciles this equation to the record; the soak
// and chaos suites do the same with -faults armed (sites: ingest.conn,
// ingest.shard, ingest.finalize).
//
// Both listen addresses may end in :0 to pick free ports; the chosen
// addresses are printed in the "serving ingest" log line (addr=... and
// http=...), which test harnesses parse.
//
// On SIGINT/SIGTERM the daemon drains: the wire stops, queued records
// are applied, every open job finalizes, and the process exits with the
// books balanced.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/resilience"
	"repro/internal/warehouse"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9301", "ingest TCP listen address (port 0 picks a free port, logged as addr=...)")
	httpAddr := flag.String("http", "127.0.0.1:9302", "HTTP listen address for metrics and queries (port 0 picks a free port, logged as http=...)")
	shards := flag.Int("shards", 4, "ingest shard count (a job's records are owned by exactly one shard)")
	queueDepth := flag.Int("queue-depth", 1024, "per-shard queue depth; overflow sheds records as dropped{queue_full}")
	idleTimeout := flag.Duration("idle-timeout", 30*time.Second, "finalize a job whose stream has gone quiet without an epilog (0 disables)")
	maxPayload := flag.Int("max-payload", ingest.DefaultMaxPayload, "maximum frame payload bytes")
	whShards := flag.Int("warehouse-shards", 4, "warehouse partition count")
	rollup := flag.Duration("rollup", time.Hour, "warehouse rollup bucket width")
	faultSpec := flag.String("faults", "", "arm fault injection: site=kind:rate[:latency],... (sites: ingest.conn, ingest.shard, ingest.finalize)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the deterministic fault-injection dice")
	flightOn := flag.Bool("flight", true, "record one flight-recorder wide event per finalized job (/debug/requests)")
	flightCapacity := flag.Int("flight-capacity", 2048, "flight-recorder ring capacity in events")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	log := obs.NewLogger(os.Stderr, level)
	reg := obs.NewRegistry()

	faults, err := resilience.ParseFaults(*faultSeed, *faultSpec)
	if err != nil {
		fatal(err)
	}
	if faults != nil {
		log.Warn("fault injection armed", "sites", fmt.Sprint(faults.Sites()), "spec", faults.String(), "seed", *faultSeed)
	}

	var rec *flight.Recorder
	if *flightOn {
		fcfg := flight.DefaultConfig()
		fcfg.Capacity = *flightCapacity
		rec = flight.NewRecorder(fcfg)
	}

	sink := warehouse.NewSharded(warehouse.ShardedConfig{
		Shards:        *whShards,
		RollupSeconds: int64(*rollup / time.Second),
	})
	srv, err := ingest.NewServer(ingest.Config{
		Shards:      *shards,
		QueueDepth:  *queueDepth,
		IdleTimeout: *idleTimeout,
		MaxPayload:  *maxPayload,
		Sink:        sink,
		Obs:         reg,
		Log:         log,
		Faults:      faults,
		Flight:      rec,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	hln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		rec.Export(reg)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePrometheus(w); err != nil {
			log.Warn("metrics write failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/debug/ingest", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, log, srv.Status())
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		limit := 100
		if s := r.URL.Query().Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil {
				limit = n
			}
		}
		events, matched := rec.Query(flight.Filter{Outcome: r.URL.Query().Get("outcome"), Limit: limit})
		writeJSON(w, log, map[string]any{"matched": matched, "events": events})
	})
	mux.HandleFunc("/api/warehouse/groupby", func(w http.ResponseWriter, r *http.Request) {
		dim := warehouse.Dimension(r.URL.Query().Get("dim"))
		switch dim {
		case warehouse.ByApplication, warehouse.ByCategory, warehouse.ByUser,
			warehouse.ByPopulation, warehouse.ByJobSize, warehouse.ByMonth:
		default:
			http.Error(w, fmt.Sprintf("unknown dim %q", dim), http.StatusBadRequest)
			return
		}
		writeJSON(w, log, sink.Snapshot().GroupBy(dim))
	})
	mux.HandleFunc("/api/warehouse/rollup", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, log, sink.Snapshot().Rollup)
	})
	mux.HandleFunc("/api/warehouse/totals", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, log, sink.Snapshot().Totals())
	})
	hsrv := &http.Server{Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 2)
	go func() {
		log.Info("serving ingest", "addr", ln.Addr().String(), "http", hln.Addr().String(),
			"shards", *shards, "queue-depth", *queueDepth, "idle-timeout", idleTimeout.String())
		errCh <- srv.Serve(ln)
	}()
	go func() { errCh <- hsrv.Serve(hln) }()

	select {
	case <-ctx.Done():
		log.Info("signal received, draining")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}

	// Drain: stop the wire, flush every shard, finalize every open job.
	// After this the ledger balances exactly; log it as the parting
	// self-audit.
	srv.Drain()
	st := srv.Status()
	if err := st.Ledger.Check(0); err != nil {
		log.Error("LEDGER IMBALANCE AT SHUTDOWN", "err", err)
	} else {
		log.Info("drained with books balanced",
			"received", st.Ledger.Received, "summarized", st.Ledger.Summarized,
			"dropped", st.Ledger.DroppedSum, "jobs", sink.Len())
	}
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hsrv.Shutdown(shctx)
	if err := st.Ledger.Check(0); err != nil {
		os.Exit(1)
	}
}

// writeJSON encodes v, logging (not masking) encode failures.
func writeJSON(w http.ResponseWriter, log *obs.Logger, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Warn("json encode failed", "err", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "supremm-ingestd:", err)
	os.Exit(1)
}
