// Command supremm-serve runs the XDMoD-style metrics and classification
// API over a freshly generated workload: warehouse queries (overview,
// group-by, drill-down, monthly utilization) plus an online job
// classification endpoint backed by a trained (or loaded) model.
//
// Usage:
//
//	supremm-serve [-addr :8080] [-jobs N] [-seed N] [-model saved.bin]
//
// Endpoints:
//
//	GET  /api/overview
//	GET  /api/groupby?dim=application|category|user|population|jobsize|month
//	GET  /api/drilldown?outer=DIM&inner=DIM
//	GET  /api/utilization[?nodes=N]
//	GET  /api/features
//	POST /api/classify   {"features": {"MEM_USED": ..., ...}, "threshold": 0.8}
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("jobs", 2000, "workload size to generate and serve")
	seed := flag.Uint64("seed", 2014, "random seed")
	modelPath := flag.String("model", "", "load a saved classifier (default: train a category RF on the workload)")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "generating %d-job workload...\n", *jobs)
	cfg := core.DefaultPipelineConfig(*seed, *jobs)
	res, err := core.RunPipeline(cfg)
	if err != nil {
		fatal(err)
	}

	var model *core.JobClassifier
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		model, err = core.LoadJobClassifier(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s model from %s\n", model.Algo, *modelPath)
	} else {
		ds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
		if err != nil {
			fatal(err)
		}
		model, err = core.TrainJobClassifier(ds, core.PaperForest(*seed))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "trained a category random forest on the generated workload")
	}

	srv := server.New(res.Store, model, cfg.Machine.TotalNodes())
	fmt.Fprintf(os.Stderr, "serving on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "supremm-serve:", err)
	os.Exit(1)
}
