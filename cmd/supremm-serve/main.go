// Command supremm-serve runs the XDMoD-style metrics and classification
// API over a freshly generated workload: warehouse queries (overview,
// group-by, drill-down, monthly utilization) plus online job
// classification endpoints (single-row and batch) backed by a trained
// (or loaded) model that can be hot-swapped without a restart.
//
// Usage:
//
//	supremm-serve [-addr :8080] [-jobs N] [-seed N] [-model saved.bin]
//	              [-model-snapshot out.bin] [-batch-workers N]
//	              [-discover] [-discover-k N] [-discover-components N]
//	              [-discover-restarts N]
//	              [-request-timeout 30s] [-max-concurrent N] [-max-queue N]
//	              [-breaker-threshold N] [-breaker-open-for 30s]
//	              [-faults SPEC] [-fault-seed N]
//	              [-lifecycle] [-lifecycle-spec window=256,algo=stack,...]
//	              [-flight] [-flight-capacity N] [-flight-sample N] [-flight-topk N]
//	              [-slo-availability 0.999] [-slo-latency-target 0.99] [-slo-latency 500ms]
//	              [-slo-burn-threshold 10] [-bundle-dir DIR] [-bundle-profile heap|cpu|off]
//	              [-bundle-min-interval 5m]
//	              [-pprof] [-log-level debug|info|warn|error]
//
// Endpoints:
//
//	GET  /api/overview
//	GET  /api/groupby?dim=application|category|user|population|jobsize|month
//	GET  /api/drilldown?outer=DIM&inner=DIM
//	GET  /api/utilization[?nodes=N]
//	GET  /api/features
//	POST /api/classify        {"features": {"MEM_USED": ..., ...}, "threshold": 0.8}
//	POST /api/classify/batch  {"rows": [{...}, ...], "threshold": 0.8}
//	                          or {"columns": {"CPU_USER": [...], ...}, "threshold": 0.8}
//	GET  /api/discover        serving discovery fit: clusters over the Uncategorized/NA jobs
//	POST /api/discover        refit discovery {"k": 8, "components": 5, "restarts": 8, "seed": 1}
//	POST /api/discover/assign {"features": {...}} -> cluster + distance + anomaly flags
//	GET  /api/runtime-class/features
//	POST /api/runtime-class   {"features": {...}, "threshold": 0.8, "thresholds": {"short": 0.9}}
//	POST /admin/model/reload  {"path": "saved.bin"} (path optional once configured)
//	GET  /api/lifecycle       closed-loop state: drift stats, shadow ledger, transitions
//	POST /admin/lifecycle/retrain   force a challenger retrain (shadow-scored, never serving)
//	POST /admin/lifecycle/promote   run the significance-gated promotion decision now
//	POST /admin/lifecycle/rollback  swap the pre-promotion champion back in
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness (always 200 while serving)
//	GET  /readyz              readiness (503 until a model is published, or while the reload breaker is open)
//	GET  /debug/requests      flight-recorder query (?status=&route=&outcome=&min-ms=&since=&limit=)
//	GET  /debug/slo           multi-window SLO burn-rate status
//	GET  /debug/bundle        capture a diagnostic bundle now (needs -bundle-dir)
//	GET  /debug/pprof/*       (with -pprof)
//
// Observability: every request lands one wide event in the in-process
// flight recorder (-flight, on by default): identity, route, status,
// outcome, queue/handler/row timings, batch size, model generation,
// fault hits. The ring tail-samples -- errors, timeouts, sheds, panics
// and the rolling latency top-K are always kept; healthy traffic is
// 1-in--flight-sample counter-sampled. An SLO burn-rate engine watches
// availability (-slo-availability) and latency (-slo-latency-target
// within -slo-latency) over multiple windows, and when the short-window
// burn crosses -slo-burn-threshold (or the reload breaker opens) a
// diagnostic bundle -- ring snapshot, SLO state, metrics dump, runtime
// profile -- is captured into -bundle-dir, rate-limited to one per
// -bundle-min-interval.
//
// Resilience: the model-serving endpoints (classification, discovery
// assignment, runtime-class) carry a per-request deadline
// (-request-timeout, 504 on overrun) and, when -max-concurrent is set, a
// bounded admission queue that sheds overload with 429 + Retry-After
// instead of queueing unboundedly. Model reloads (admin endpoint and
// SIGHUP alike) run behind a circuit breaker: -breaker-threshold
// consecutive failures open it, reloads then fail fast (503) until a
// half-open probe succeeds after -breaker-open-for. -faults arms the
// deterministic fault-injection registry (sites: reload, classify.row,
// discover.fit, discover.assign, runtime.row; see internal/resilience)
// for chaos and soak runs -- never in default builds.
//
// Lifecycle: -lifecycle arms the closed loop over the serving model
// (see internal/lifecycle): per-feature and posterior PSI drift
// monitors over live classify traffic, shadow retraining of a
// challenger on drift (or on demand via POST /admin/lifecycle/retrain
// or SIGUSR1), and champion-challenger promotion gated on a McNemar
// paired test -- all through the same schema-validated swap and
// circuit breaker as model reloads. -lifecycle-spec tunes the loop
// (key=value,... -- window, bins, min, every, drift, pdrift,
// shadowmin, alpha, margin, cooldown, train, algo, seed, auto).
//
// The listen address may end in :0 to pick a free port; the chosen
// address is printed in the "serving api" log line (addr=...), which
// test harnesses parse.
//
// SIGHUP atomically reloads the model from the configured path (the
// -model flag, -model-snapshot, or the last successful reload) without
// dropping a request. The server shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight requests for up to
// -shutdown-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/parallel"
	"repro/internal/resilience"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (port 0 picks a free port, logged as addr=...)")
	jobs := flag.Int("jobs", 2000, "workload size to generate and serve")
	seed := flag.Uint64("seed", 2014, "random seed")
	modelPath := flag.String("model", "", "load a saved classifier (default: train a category RF on the workload)")
	snapshotPath := flag.String("model-snapshot", "", "write the boot model to this file (becomes the SIGHUP reload path when -model is unset)")
	batchWorkers := flag.Int("batch-workers", 0, "worker goroutines per batch classify request (0 = GOMAXPROCS)")
	discoverOn := flag.Bool("discover", true, "fit the unknown-app discovery model (PCA + k-means over Uncategorized/NA jobs) at boot")
	discoverK := flag.Int("discover-k", 0, "discovery cluster count (0 = module default)")
	discoverComponents := flag.Int("discover-components", 0, "discovery PCA components (0 = module default)")
	discoverRestarts := flag.Int("discover-restarts", 0, "discovery k-means restarts (0 = module default)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline on classification endpoints (0 disables; overruns answer 504)")
	maxConcurrent := flag.Int("max-concurrent", 0, "classification requests allowed to execute at once (0 = unlimited, admission control off)")
	maxQueue := flag.Int("max-queue", 64, "classification requests allowed to wait beyond -max-concurrent before shedding with 429")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive model reload failures that open the reload circuit breaker")
	breakerOpenFor := flag.Duration("breaker-open-for", 30*time.Second, "how long the reload breaker stays open before a half-open probe")
	faultSpec := flag.String("faults", "", "arm fault injection: site=kind:rate[:latency],... (sites: reload, classify.row, discover.fit, discover.assign, runtime.row, lifecycle.retrain, lifecycle.promote, lifecycle.shadow; kinds: error, latency, panic)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the deterministic fault-injection dice")
	lifecycleOn := flag.Bool("lifecycle", false, "arm the closed-loop model lifecycle: drift monitors, shadow retraining, gated champion-challenger promotion")
	lifecycleSpec := flag.String("lifecycle-spec", "", "lifecycle loop tuning: key=value,... (window, bins, min, every, drift, pdrift, shadowmin, alpha, margin, cooldown, train, algo, seed, auto; empty = defaults)")
	flightOn := flag.Bool("flight", true, "arm the serving-path flight recorder (/debug/requests, /debug/slo)")
	flightCapacity := flag.Int("flight-capacity", 2048, "flight-recorder ring capacity in events (half reserved for errors)")
	flightSample := flag.Int("flight-sample", 16, "keep 1 in N healthy requests outside the latency top-K (1 = all, 0 = none)")
	flightTopK := flag.Int("flight-topk", 64, "healthy requests kept because they rank in the rolling latency top-K")
	sloAvailability := flag.Float64("slo-availability", 0.999, "availability SLO target on /api/classify* (fraction of requests not failing 5xx; 0 disables)")
	sloLatencyTarget := flag.Float64("slo-latency-target", 0.99, "latency SLO target (fraction of 200s within -slo-latency; 0 disables)")
	sloLatency := flag.Duration("slo-latency", 500*time.Millisecond, "latency SLO threshold")
	sloBurnThreshold := flag.Float64("slo-burn-threshold", 10, "short-window burn rate that triggers an automatic diagnostic bundle (0 disables)")
	bundleDir := flag.String("bundle-dir", "", "directory for diagnostic bundles (empty disables capture)")
	bundleProfile := flag.String("bundle-profile", "heap", "runtime profile captured into bundles: heap, cpu, off")
	bundleMinInterval := flag.Duration("bundle-min-interval", 5*time.Minute, "minimum spacing between automatic bundle captures")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof endpoints")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	log := obs.NewLogger(os.Stderr, level)
	reg := obs.NewRegistry()
	parallel.Instrument(reg)

	faults, err := resilience.ParseFaults(*faultSeed, *faultSpec)
	if err != nil {
		fatal(err)
	}
	if faults != nil {
		log.Warn("fault injection armed", "sites", fmt.Sprint(faults.Sites()), "spec", faults.String(), "seed", *faultSeed)
	}

	log.Info("generating workload", "jobs", *jobs, "seed", *seed)
	cfg := core.DefaultPipelineConfig(*seed, *jobs)
	cfg.Obs = core.Instrumentation{Metrics: reg, Log: log}
	res, err := core.RunPipeline(cfg)
	if err != nil {
		fatal(err)
	}

	models := core.NewModelManager(reg)
	if *modelPath != "" {
		if _, err := models.ReloadFromFile(*modelPath); err != nil {
			fatal(err)
		}
		log.Info("loaded classifier", "algo", models.View().Model.Algo, "path", *modelPath)
	} else {
		ds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
		if err != nil {
			fatal(err)
		}
		model, err := core.TrainJobClassifier(ds, core.PaperForest(*seed))
		if err != nil {
			fatal(err)
		}
		if _, err := models.Swap(model); err != nil {
			fatal(err)
		}
		log.Info("trained category random forest on the generated workload")
	}
	if *snapshotPath != "" {
		f, err := os.Create(*snapshotPath)
		if err != nil {
			fatal(err)
		}
		if err := models.View().Model.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if models.Path() == "" {
			models.SetPath(*snapshotPath)
		}
		log.Info("wrote model snapshot", "path", *snapshotPath)
	}

	// The runtime-class model predicts a job's runtime/outcome bucket at
	// submit time; it always trains on the generated workload since no
	// snapshot format carries it yet.
	runtimeModels := core.NewNamedModelManager(reg, "runtime_class")
	rtModel, err := core.TrainRuntimeClassifier(res.Records, core.PaperForest(*seed))
	if err != nil {
		fatal(err)
	}
	if _, err := runtimeModels.Swap(rtModel); err != nil {
		fatal(err)
	}
	log.Info("trained runtime-class random forest", "classes", fmt.Sprint(rtModel.Classes()))

	// The discovery fit covers the population the supervised model cannot
	// name. A thin unlabeled population is a warning, not a boot failure:
	// POST /api/discover refits once more data lands in the warehouse.
	discovery := core.NewDiscoveryManager(reg)
	if *discoverOn {
		dm, err := core.FitDiscovery(
			core.UnlabeledRows(res.Store, core.DefaultFeatures()),
			core.FeatureNames(core.DefaultFeatures()),
			core.DiscoveryConfig{
				K: *discoverK, Components: *discoverComponents,
				Restarts: *discoverRestarts, Seed: *seed, Workers: *batchWorkers,
			})
		if err != nil {
			log.Warn("discovery fit skipped", "err", err)
		} else if _, err := discovery.Swap(dm); err != nil {
			fatal(err)
		} else {
			log.Info("fitted unknown-app discovery model",
				"rows", dm.Rows, "k", dm.K, "inertia", fmt.Sprintf("%.3f", dm.Inertia))
		}
	}

	opts := []server.Option{
		server.WithMetrics(reg), server.WithLogger(log),
		server.WithModelManager(models), server.WithBatchWorkers(*batchWorkers),
		server.WithRuntimeManager(runtimeModels), server.WithDiscovery(discovery),
		server.WithResilience(server.ResilienceConfig{
			RequestTimeout: *requestTimeout,
			MaxConcurrent:  *maxConcurrent,
			MaxQueue:       *maxQueue,
		}),
		server.WithReloadBreaker(resilience.BreakerConfig{
			FailureThreshold: *breakerThreshold,
			OpenFor:          *breakerOpenFor,
		}),
	}
	if faults != nil {
		opts = append(opts, server.WithFaults(faults))
	}
	if *lifecycleOn {
		lcCfg, err := lifecycle.ParseSpec(*lifecycleSpec)
		if err != nil {
			fatal(err)
		}
		if lcCfg.Seed == 0 {
			lcCfg.Seed = *seed
		}
		// The labeled corpus the loop retrains challengers on and
		// freezes its drift baseline from: the warehouse's records under
		// the same featurization the champion serves.
		ds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
		if err != nil {
			fatal(err)
		}
		champ := models.View().Model
		if !slices.Equal(champ.Features, ds.FeatureNames) {
			fatal(fmt.Errorf("lifecycle: loaded model's features %v do not match the warehouse featurization %v",
				champ.Features, ds.FeatureNames))
		}
		base, err := lifecycle.BaselineFor(ds, champ, lcCfg.Bins)
		if err != nil {
			fatal(err)
		}
		trainer := func() (lifecycle.TrainResult, error) {
			// Re-featurize the warehouse at retrain time, so the sliding
			// window covers whatever the record corpus holds when drift
			// fires, not a snapshot frozen at boot. Today supremm-serve
			// never ingests labeled rows after boot (live classify traffic
			// carries no ground truth), so until a warehouse reload or
			// ingest path lands, retrains refit the boot corpus: the loop's
			// serve-mode value is drift visibility plus the shadow and
			// promotion machinery, while the simulation harness exercises
			// the fully adaptive arc against a moving corpus.
			wds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
			if err != nil {
				return lifecycle.TrainResult{}, err
			}
			labels := make([]string, wds.Len())
			for i := range labels {
				labels[i] = wds.Label(i)
			}
			// Sliding window: the most recent TrainWindow labeled rows.
			n, w := wds.Len(), lcCfg.TrainWindow
			if w > n {
				w = n
			}
			return lifecycle.TrainChallenger(wds.FeatureNames, wds.X[n-w:], labels[n-w:], lcCfg)
		}
		opts = append(opts, server.WithLifecycle(lcCfg, lifecycle.Options{
			Trainer: trainer, Baseline: base,
		}))
		log.Info("lifecycle loop armed", "spec", lcCfg.Spec())
	}
	if *flightOn {
		fcfg := flight.Config{
			Capacity:    *flightCapacity,
			SampleEvery: *flightSample,
			TopK:        *flightTopK,
			SLO: flight.SLOConfig{
				AvailabilityTarget: *sloAvailability,
				LatencyTarget:      *sloLatencyTarget,
				LatencyThreshold:   *sloLatency,
				BurnThreshold:      *sloBurnThreshold,
			},
			Bundle: flight.BundleConfig{
				Dir:         *bundleDir,
				Profile:     *bundleProfile,
				MinInterval: *bundleMinInterval,
				Registry:    reg,
			},
		}
		opts = append(opts, server.WithFlightRecorder(flight.NewRecorder(fcfg)))
		log.Info("flight recorder armed",
			"capacity", *flightCapacity, "sample", *flightSample, "topk", *flightTopK,
			"slo", fcfg.SLO.String(), "bundle-dir", *bundleDir)
	}
	if *pprofOn {
		opts = append(opts, server.WithPprof())
	}
	api := server.New(res.Store, nil, cfg.Machine.TotalNodes(), opts...)

	// SIGHUP hot-swaps the model from the configured path through the
	// same breaker as the admin endpoint; a failed reload logs and keeps
	// the old model serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			gen, err := api.ReloadModel("")
			if err != nil {
				log.Warn("SIGHUP model reload failed", "err", err)
				continue
			}
			log.Info("SIGHUP model reload complete", "generation", gen, "path", models.Path())
		}
	}()

	// The lifecycle loop's actions run off the serving goroutines: a
	// drain goroutine answers the loop's pokes (drift fired, shadow
	// window filled) with Step, and SIGUSR1 forces a challenger retrain
	// the way SIGHUP forces a model reload.
	if loop := api.Lifecycle(); loop != nil {
		if ch := api.LifecycleNotify(); ch != nil {
			go func() {
				for range ch {
					loop.Step()
				}
			}()
		}
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		go func() {
			for range usr1 {
				if err := loop.Retrain(); err != nil {
					log.Warn("SIGUSR1 lifecycle retrain failed", "err", err)
					continue
				}
				log.Info("SIGUSR1 lifecycle retrain complete: challenger shadowing")
			}
		}()
	}

	// Bind before announcing, so the logged addr is the real one even
	// when -addr ends in :0 (test harnesses parse this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: api}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Info("serving api", "addr", ln.Addr().String(), "pprof", *pprofOn,
			"request-timeout", *requestTimeout, "max-concurrent", *maxConcurrent)
		errCh <- srv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal handling so a second ^C kills us
		log.Info("shutting down", "grace", *shutdownTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Warn("shutdown incomplete", "err", err)
			_ = srv.Close()
		}
		log.Info("stopped")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "supremm-serve:", err)
	os.Exit(1)
}
