// Command supremm-collect runs the raw side of the SUPReMM pipeline on
// disk, the way production deployments do: a collection stage writes raw
// per-host node archives into a spool directory (TACC_Stats text format or
// PCP-style JSON lines), and a summarization stage later scans the spool,
// reduces each job to its SUPReMM summary, and emits the labeled feature
// CSV that the classifiers consume.
//
// Usage:
//
//	supremm-collect -spool DIR [-jobs N] [-seed N] [-format tacc|pcp]   # stage 1
//	supremm-collect -spool DIR -summarize -o data.csv                   # stage 2
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lariat"
	"repro/internal/pcp"
	"repro/internal/rng"
	"repro/internal/summarize"
	"repro/internal/taccstats"
)

func main() {
	spool := flag.String("spool", "", "spool directory (required)")
	jobs := flag.Int("jobs", 500, "jobs to collect (stage 1)")
	seed := flag.Uint64("seed", 2014, "random seed")
	format := flag.String("format", "tacc", "raw archive format: tacc or pcp")
	doSummarize := flag.Bool("summarize", false, "run stage 2: summarize the spool to CSV")
	out := flag.String("o", "", "stage 2 output CSV (default stdout)")
	flag.Parse()

	if *spool == "" {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if *doSummarize {
		err = summarizeSpool(*spool, *out)
	} else {
		err = collect(*spool, *jobs, *seed, *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "supremm-collect:", err)
		os.Exit(1)
	}
}

// labelsFile records the Lariat label per job next to the raw data.
const labelsFile = "labels.csv"

// collect generates a workload and writes raw archives into the spool.
func collect(spool string, jobs int, seed uint64, format string) error {
	if format != "tacc" && format != "pcp" {
		return fmt.Errorf("unknown format %q", format)
	}
	if err := os.MkdirAll(spool, 0o755); err != nil {
		return err
	}
	gen := cluster.NewGenerator(cluster.Stampede(), cluster.DefaultConfig(seed))
	matcher := lariat.NewMatcher(apps.Catalog())
	root := rng.New(seed ^ 0xc011ec7)
	cfg := taccstats.DefaultConfig()

	lf, err := os.Create(filepath.Join(spool, labelsFile))
	if err != nil {
		return err
	}
	defer lf.Close()
	lw := csv.NewWriter(lf)
	if err := lw.Write([]string{"jobid", "label"}); err != nil {
		return err
	}

	for i := 0; i < jobs; i++ {
		j := gen.Next()
		arch := taccstats.Collect(cfg, taccstats.JobInfo{ID: j.ID, Start: j.Start, Hosts: j.Hosts}, j.Draw, root.Split(uint64(i)))
		switch format {
		case "tacc":
			if err := taccstats.WriteSpool(spool, arch); err != nil {
				return err
			}
		case "pcp":
			if err := writePCP(spool, arch); err != nil {
				return err
			}
		}
		label := lariat.NA
		if j.App.ExecPath != "" {
			label = matcher.Match(&lariat.Record{JobID: j.ID, ExecPath: j.App.ExecPath})
		}
		if err := lw.Write([]string{j.ID, label}); err != nil {
			return err
		}
	}
	lw.Flush()
	if err := lw.Error(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "collected %d jobs into %s (%s format)\n", jobs, spool, format)
	return nil
}

func writePCP(spool string, a *taccstats.Archive) error {
	dir := filepath.Join(spool, a.JobID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "archive.pcp.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pcp.Export(a, f); err != nil {
		return err
	}
	return f.Close()
}

// summarizeSpool scans the spool, summarizes every job, joins the labels
// file, and writes the feature CSV.
func summarizeSpool(spool, out string) error {
	labels, err := readLabels(filepath.Join(spool, labelsFile))
	if err != nil {
		return err
	}
	jobIDs, err := taccstats.ListSpool(spool)
	if err != nil {
		return err
	}
	cfg := taccstats.DefaultConfig()
	opt := core.DefaultFeatures()
	var rows [][]float64
	var rowLabels []string
	summarized := 0
	for _, id := range jobIDs {
		arch, err := readJob(spool, id)
		if err != nil {
			return fmt.Errorf("job %s: %w", id, err)
		}
		sum, err := summarize.Summarize(arch, cfg, summarize.Options{})
		if err != nil {
			return fmt.Errorf("job %s: %w", id, err)
		}
		label, ok := labels[id]
		if !ok {
			label = lariat.NA
		}
		rows = append(rows, core.Featurize(sum, opt))
		rowLabels = append(rowLabels, label)
		summarized++
	}
	ds, err := dataset.New(core.FeatureNames(opt), rows, rowLabels)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "summarized %d jobs from %s\n", summarized, spool)
	return nil
}

// readJob loads a job's archive in whichever format the spool holds.
func readJob(spool, id string) (*taccstats.Archive, error) {
	pcpPath := filepath.Join(spool, id, "archive.pcp.json")
	if f, err := os.Open(pcpPath); err == nil {
		defer f.Close()
		return pcp.Import(f)
	}
	return taccstats.ReadSpool(spool, id)
}

func readLabels(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for i, rec := range recs {
		if i == 0 || len(rec) < 2 {
			continue
		}
		out[rec[0]] = rec[1]
	}
	return out, nil
}
