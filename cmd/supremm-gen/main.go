// Command supremm-gen generates a synthetic SUPReMM job dataset -- the
// full pipeline of workload generation, TACC_Stats collection, Lariat
// labeling and summarization -- and writes it as CSV (label column first,
// then the SUPReMM attributes).
//
// Usage:
//
//	supremm-gen [-seed N] [-jobs N] [-label lariat|category|exit] [-o file]
//
// Jobs labeled by Lariat as Uncategorized or NA appear with those labels
// when -include-unknown is set; otherwise only community jobs are emitted.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	seed := flag.Uint64("seed", 2014, "random seed")
	jobs := flag.Int("jobs", 10000, "number of jobs to generate")
	label := flag.String("label", "lariat", "label column: lariat, category, or exit")
	out := flag.String("o", "", "output file (default stdout)")
	includeUnknown := flag.Bool("include-unknown", false, "keep Uncategorized and NA jobs")
	segments := flag.Int("segments", 0, "also compute per-time-slice features with this many slices")
	flag.Parse()

	cfg := core.DefaultPipelineConfig(*seed, *jobs)
	cfg.Segments = *segments
	res, err := core.RunPipeline(cfg)
	if err != nil {
		fatal(err)
	}

	var labelFn core.LabelFunc
	switch *label {
	case "lariat":
		labelFn = core.LabelByLariat
		if *includeUnknown {
			labelFn = func(r *core.JobRecord) (string, bool) { return r.Label, true }
		}
	case "category":
		labelFn = core.LabelByCategory
		if *includeUnknown {
			labelFn = func(r *core.JobRecord) (string, bool) {
				if c, ok := core.LabelByCategory(r); ok {
					return c, true
				}
				return r.Label, true
			}
		}
	case "exit":
		labelFn = core.LabelByExit
	default:
		fatal(fmt.Errorf("unknown label mode %q", *label))
	}

	opt := core.DefaultFeatures()
	if *segments > 0 {
		opt.Segments = *segments
	}
	ds, err := core.BuildDataset(res.Records, labelFn, opt)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d jobs (%d features, %d classes); %d of %d generated jobs labeled\n",
		ds.Len(), ds.NumFeatures(), ds.NumClasses(), ds.Len(), len(res.Records))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "supremm-gen:", err)
	os.Exit(1)
}
