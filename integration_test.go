package repro

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lariat"
	"repro/internal/rng"
	"repro/internal/warehouse"
)

// TestPipelineToCSVToClassifier exercises the full user workflow across
// module boundaries: generate -> featurize -> serialize -> reload ->
// train -> evaluate, verifying the CSV round trip preserves the learning
// problem exactly.
func TestPipelineToCSVToClassifier(t *testing.T) {
	res, err := core.RunPipeline(core.DefaultPipelineConfig(777, 600))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := dataset.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	trainA, testA := ds.Split(rng.New(5), 0.7)
	trainB, testB := reloaded.Split(rng.New(5), 0.7)

	modelA, err := core.TrainJobClassifier(trainA, core.PaperForest(9))
	if err != nil {
		t.Fatal(err)
	}
	modelB, err := core.TrainJobClassifier(trainB, core.PaperForest(9))
	if err != nil {
		t.Fatal(err)
	}
	accA, accB := modelA.Accuracy(testA), modelB.Accuracy(testB)
	if math.Abs(accA-accB) > 1e-12 {
		t.Errorf("CSV round trip changed results: %v vs %v", accA, accB)
	}
	if accA < 0.6 {
		t.Errorf("category accuracy = %v", accA)
	}
}

// TestWarehouseConsistentWithRecords cross-checks the warehouse aggregates
// against the raw pipeline records.
func TestWarehouseConsistentWithRecords(t *testing.T) {
	res, err := core.RunPipeline(core.DefaultPipelineConfig(778, 400))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]int{}
	for _, r := range res.Records {
		byLabel[r.Label]++
	}
	for _, g := range res.Store.GroupBy(warehouse.ByApplication) {
		if g.Jobs != byLabel[g.Key] {
			t.Errorf("warehouse %s = %d jobs, records say %d", g.Key, g.Jobs, byLabel[g.Key])
		}
	}
	totals := res.Store.Totals()
	if totals.Jobs != len(res.Records) {
		t.Errorf("warehouse totals %d != %d records", totals.Jobs, len(res.Records))
	}
}

// TestPopulationLabelContract verifies the Lariat three-way labeling
// matches the generated populations across the whole pipeline.
func TestPopulationLabelContract(t *testing.T) {
	res, err := core.RunPipeline(core.DefaultPipelineConfig(779, 500))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		switch r.Job.Population {
		case cluster.PopNA:
			if r.Label != lariat.NA {
				t.Fatalf("NA job labeled %q", r.Label)
			}
		case cluster.PopUncategorized:
			if r.Label != lariat.Uncategorized {
				t.Fatalf("uncategorized job labeled %q", r.Label)
			}
		default:
			if r.Label == lariat.NA || r.Label == lariat.Uncategorized {
				t.Fatalf("community job labeled %q", r.Label)
			}
		}
	}
}

// TestThresholdClassifyContract checks the production Classify API:
// threshold 0 classifies everything, threshold >1 classifies nothing, and
// the returned probability matches PredictProb's maximum.
func TestThresholdClassifyContract(t *testing.T) {
	res, err := core.RunPipeline(core.DefaultPipelineConfig(780, 500))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.TrainJobClassifier(ds, core.PaperForest(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && i < ds.Len(); i++ {
		row := ds.X[i]
		_, prob, ok := model.Classify(row, 0)
		if !ok {
			t.Fatal("threshold 0 must classify")
		}
		if _, _, ok := model.Classify(row, 1.01); ok {
			t.Fatal("threshold > 1 must not classify")
		}
		cls, probs := model.PredictProb(row)
		if math.Abs(prob-probs[cls]) > 1e-12 {
			t.Fatal("Classify probability disagrees with PredictProb")
		}
	}
}

// TestSegmentsFlowThroughPipeline verifies segment summarization reaches
// the feature layer through the public pipeline config.
func TestSegmentsFlowThroughPipeline(t *testing.T) {
	cfg := core.DefaultPipelineConfig(781, 120)
	cfg.Segments = 3
	res, err := core.RunPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.FeatureOptions{COV: true, Derived: true, Segments: 3}
	ds, err := core.BuildDataset(res.Records, core.LabelByLariat, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFeatures() != len(core.FeatureNames(opt)) {
		t.Fatal("segment feature count mismatch")
	}
	for _, rec := range res.Records {
		if len(rec.Summary.SegmentMeans) != 3 {
			t.Fatal("summary missing segments")
		}
	}
}
