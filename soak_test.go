//go:build soak

// Soak harness, run by `make soak` and the soak CI job: builds the real
// supremm-serve binary WITH the race detector, boots it with fault
// injection armed (per-row latency faults plus reload error faults),
// drives it with the seeded open-loop generator while SIGHUP reloads
// hammer the breaker, and then reconciles the client-observed outcome
// counts against the server's own /metrics counters. The JSON report
// lands where SOAK_OUT points (CI uploads it as an artifact).
//
// Tunables (env): SOAK_DUR (default 10s), SOAK_RPS (default 200),
// SOAK_OUT (default <tmp>/soak-report.json).
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/loadgen"
)

func soakEnv(name, def string) string {
	if v := os.Getenv(name); v != "" {
		return v
	}
	return def
}

func TestSoakServeUnderFaults(t *testing.T) {
	dur, err := time.ParseDuration(soakEnv("SOAK_DUR", "10s"))
	if err != nil {
		t.Fatalf("SOAK_DUR: %v", err)
	}
	rps := soakEnv("SOAK_RPS", "200")
	out := soakEnv("SOAK_OUT", filepath.Join(t.TempDir(), "soak-report.json"))

	bin := buildServe(t, true)
	snapshot := filepath.Join(t.TempDir(), "model.bin")
	base, srv := startServe(t, bin,
		"-jobs", "400", "-seed", "7",
		"-model-snapshot", snapshot,
		"-batch-workers", "2",
		"-request-timeout", "250ms",
		"-max-concurrent", "2", "-max-queue", "4",
		"-breaker-threshold", "3", "-breaker-open-for", "2s",
		"-faults", "classify.row=latency:1.0:10ms,reload=error:0.3",
		"-fault-seed", "42",
		// Lifecycle loop armed in manual mode: a SIGUSR1 below installs
		// a shadow challenger, so every classify row the soak drives is
		// also shadow-scored and the two shadow books must reconcile.
		"-lifecycle", "-lifecycle-spec", "algo=rf,auto=false,shadowmin=100000",
		// Flight recorder armed with a ring big enough that nothing is
		// evicted during the run, so the reconciliation below can demand
		// every error event be retrievable, not just counted.
		"-flight-capacity", "20000",
	)
	defer stopServe(t, srv)

	// Install a shadow challenger before the load starts: SIGUSR1 is
	// the operator's forced-retrain path (the trainer refits on the
	// warehouse window), and the loop must report the challenger ready
	// before shadow scoring can begin.
	srv.Process.Signal(syscall.SIGUSR1)
	waitChallenger(t, base)

	// SIGHUP storm in the background: reload error faults fail ~30% of
	// them, walking the breaker through open/half-open/closed while the
	// classify traffic runs. Reload failures must never disturb serving.
	hupDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-hupDone:
				return
			case <-tick.C:
				srv.Process.Signal(syscall.SIGHUP)
			}
		}
	}()

	ramp := 2 * time.Second
	if ramp > dur {
		ramp = 0
	}
	spec := fmt.Sprintf("url=%s,rps=%s,dur=%s,ramp=%s,mix=0.2,batch=16,seed=9,timeout=5s,inflight=256",
		base, rps, dur, ramp)
	cfg, err := loadgen.ParseSpec(spec)
	if err != nil {
		t.Fatalf("soak spec %q: %v", spec, err)
	}
	t.Logf("soak: %s", cfg.Spec())
	rep, err := loadgen.Run(context.Background(), cfg)
	close(hupDone)
	if err != nil {
		t.Fatalf("load run failed: %v", err)
	}

	// Cross-check the flight recorder's ledger against the client's view
	// before persisting, so the report artifact carries the result. The
	// recorder counts per route and status independently of tail
	// sampling, so with zero client-side errors the join must be exact.
	chk, err := loadgen.ReconcileRecorder(context.Background(), base, rep)
	if err != nil {
		t.Errorf("recorder reconciliation unavailable: %v", err)
	}

	// Persist the artifact before asserting, so a failing soak still
	// leaves its evidence behind.
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("soak report: %s", out)
	t.Logf("soak: sent=%d ok=%d shed=%d timeouts=%d unavailable=%d serverErrors=%d dropped=%d p99=%.1fms",
		rep.Sent, rep.OK, rep.Shed, rep.Timeouts, rep.Unavailable, rep.ServerErrors, rep.Dropped, rep.LatencyMS.P99)

	// Invariants. The server must answer everything it was sent (never
	// hang or drop a connection), keep the shedding contract, and stay
	// free of 5xx: the only armed classify fault is latency, which can
	// shed or time requests out but never error them.
	if rep.OK == 0 {
		t.Error("soak completed zero successful classifications")
	}
	if rep.ClientErrors != 0 {
		t.Errorf("%d transport errors: the server hung or dropped connections", rep.ClientErrors)
	}
	if rep.ShedWithoutRetryAfter != 0 {
		t.Errorf("%d shed responses missing Retry-After", rep.ShedWithoutRetryAfter)
	}
	if rep.ServerErrors != 0 {
		t.Errorf("%d unexpected 5xx responses (latency faults must not produce errors)", rep.ServerErrors)
	}
	if rep.BadRequests != 0 {
		t.Errorf("%d 4xx responses to well-formed generated requests", rep.BadRequests)
	}
	if got := rep.Answered(); got != rep.Sent {
		t.Errorf("answered %d of %d sent requests", got, rep.Sent)
	}

	// The server survived and still serves ungoverned reads.
	resp, err := http.Get(base + "/api/features")
	if err != nil {
		t.Fatalf("server unreachable after soak: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/api/features after soak: status %d", resp.StatusCode)
	}

	// Reconcile the client's view against the server's counters: the
	// generator is the only traffic source, so the counts must agree
	// exactly.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	if got, want := metricSum(text, "http_shed_total"), float64(rep.Shed); got != want {
		t.Errorf("server http_shed_total = %v, client saw %v 429s", got, want)
	}
	if got, want := metricSum(text, "http_timeouts_total"), float64(rep.Timeouts); got != want {
		t.Errorf("server http_timeouts_total = %v, client saw %v 504s", got, want)
	}
	if !strings.Contains(text, "model_breaker_state") {
		t.Error("/metrics missing model_breaker_state")
	}
	if rep.Shed == 0 {
		t.Logf("note: this run shed nothing (rps below capacity?); the contract checks were vacuous")
	}

	// Flight-recorder reconciliation: ledger balanced, per-status counts
	// joined exactly against the client, every 429/504 retrievable.
	if chk != nil {
		t.Logf("soak recorder: observed=%d kept=%d sampledOut=%d evicted=%d",
			chk.Observed, chk.Kept, chk.SampledOut, chk.Evicted)
		for _, m := range chk.Mismatches {
			t.Errorf("recorder reconciliation: %s", m)
		}
		if chk.Evicted != 0 {
			t.Errorf("recorder evicted %d events; the soak ring (-flight-capacity 20000) should hold the whole run", chk.Evicted)
		}
		// Shadow reconciliation must have been exercised, not skipped:
		// the challenger was shadowing for the whole run, so rows were
		// scored, and the loop's ledger agreed with the recorder's
		// tallies (any disagreement is already in Mismatches above).
		if chk.Lifecycle == nil {
			t.Error("reconciliation found no lifecycle loop despite -lifecycle")
		} else if chk.Lifecycle.Scored == 0 {
			t.Error("no rows were shadow-scored during the soak; the shadow reconciliation was vacuous")
		} else {
			t.Logf("soak shadow: eligible=%d scored=%d agree=%d disagree=%d errors=%d",
				chk.Lifecycle.Eligible, chk.Lifecycle.Scored, chk.Lifecycle.Agree,
				chk.Lifecycle.Disagree, chk.Lifecycle.Errors)
		}
	}
}

// waitChallenger polls /api/lifecycle until the loop reports a shadow
// challenger installed (the SIGUSR1 retrain runs asynchronously).
func waitChallenger(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/api/lifecycle")
		if err != nil {
			t.Fatalf("GET /api/lifecycle: %v", err)
		}
		var st struct {
			ChallengerReady bool `json:"challengerReady"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil && st.ChallengerReady {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("lifecycle challenger never became ready after SIGUSR1")
}
