//go:build servesmoke || soak

// Shared plumbing for the end-to-end harnesses that run the real
// supremm-serve binary (serve_smoke_test.go, soak_test.go): build the
// binary, boot it on an ephemeral port, and learn the actual listen
// address from the server's own "serving api" log line. Binding :0 and
// parsing addr= removes the reserve-then-rebind port race the smoke
// test used to carry.
package repro

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildServe compiles cmd/supremm-serve into the test's temp dir.
// withRace adds the race detector (the soak harness wants the server
// itself racing-checked, not just the packages).
func buildServe(t *testing.T, withRace bool) string {
	t.Helper()
	bin := t.TempDir() + "/supremm-serve"
	args := []string{"build"}
	if withRace {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "./cmd/supremm-serve")
	build := exec.Command("go", args...)
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building supremm-serve: %v", err)
	}
	return bin
}

// startServe boots the binary with -addr 127.0.0.1:0 plus the given
// flags and waits for the "serving api" line, teeing all server logs
// through to the test's stderr. The server binds its listener before
// logging that line, so once the address is known the API is up (the
// log level must allow info lines). Returns the base URL.
func startServe(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	srv := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	srv.Stdout = os.Stderr
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, line)
			if strings.Contains(line, `msg="serving api"`) {
				for _, tok := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(tok, "addr="); ok {
						select {
						case addrCh <- v:
						default:
						}
					}
				}
			}
		}
	}()

	// Workload generation (and -race instrumentation) happens before the
	// bind, so allow a generous startup window.
	select {
	case addr := <-addrCh:
		return "http://" + addr, srv
	case <-time.After(120 * time.Second):
		srv.Process.Kill()
		t.Fatal("server never logged its serving address")
		return "", nil
	}
}

// stopServe terminates the server gracefully, escalating to SIGKILL.
func stopServe(t *testing.T, srv *exec.Cmd) {
	t.Helper()
	srv.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { srv.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Error("server ignored SIGTERM; killing")
		srv.Process.Kill()
		<-done
	}
}

// metricValues extracts every sample of one metric family from a
// Prometheus text exposition, keyed by the full label part ("" for an
// unlabelled sample).
func metricValues(text, family string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		var labels string
		switch {
		case strings.HasPrefix(rest, "{"):
			end := strings.Index(rest, "} ")
			if end < 0 {
				continue
			}
			labels, rest = rest[:end+1], rest[end+1:]
		case strings.HasPrefix(rest, " "):
			// unlabelled sample
		default:
			continue // a longer family name sharing the prefix
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			continue
		}
		out[labels] = v
	}
	return out
}

// metricSum totals every sample of a family.
func metricSum(text, family string) float64 {
	sum := 0.0
	for _, v := range metricValues(text, family) {
		sum += v
	}
	return sum
}
