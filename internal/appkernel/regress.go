package appkernel

import (
	"fmt"
	"math"

	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/stats"
)

// RegressionData converts runs into a (features, target) regression
// problem: predict wall time from kernel identity and node count. Kernel
// identity is one-hot encoded over the provided kernel order.
func RegressionData(kernels []Kernel, runs []Run) (x [][]float64, y []float64, names []string, err error) {
	index := map[string]int{}
	for i, k := range kernels {
		index[k.Name] = i
		names = append(names, "kernel_"+k.Name)
	}
	names = append(names, "nodes", "log_nodes")
	for _, r := range runs {
		ki, ok := index[r.Kernel]
		if !ok {
			return nil, nil, nil, fmt.Errorf("appkernel: run references unknown kernel %q", r.Kernel)
		}
		row := make([]float64, len(kernels)+2)
		row[ki] = 1
		row[len(kernels)] = float64(r.Nodes)
		row[len(kernels)+1] = math.Log(float64(r.Nodes))
		x = append(x, row)
		y = append(y, r.Wall)
	}
	return x, y, names, nil
}

// Regressor predicts application-kernel wall time.
type Regressor interface {
	Predict(x []float64) float64
}

// svrRegressor adapts the epsilon-SVR with feature scaling.
type svrRegressor struct {
	model  *svm.Regressor
	scaler *stats.Scaler
}

func (s *svrRegressor) Predict(x []float64) float64 {
	row := append([]float64(nil), x...)
	s.scaler.Transform(row)
	return s.model.Predict(row)
}

// TrainSVR fits an epsilon-SVR (RBF kernel) on the regression data.
func TrainSVR(x [][]float64, y []float64, seed uint64) (Regressor, error) {
	work := make([][]float64, len(x))
	for i := range x {
		work[i] = append([]float64(nil), x[i]...)
	}
	scaler := stats.FitScaler(work)
	scaler.TransformAll(work)
	m, err := svm.TrainRegressor(work, y, svm.RegressorConfig{
		Kernel: svm.RBF{Gamma: 0.5}, C: 100, Epsilon: epsilonFor(y),
	})
	if err != nil {
		return nil, err
	}
	return &svrRegressor{model: m, scaler: scaler}, nil
}

// epsilonFor picks the SVR tube width as a small fraction of the target
// spread.
func epsilonFor(y []float64) float64 {
	var a stats.Accumulator
	for _, v := range y {
		a.Add(v)
	}
	return 0.05 * a.StdDev()
}

// TrainRF fits a random-forest regressor on the regression data.
func TrainRF(x [][]float64, y []float64, seed uint64) (Regressor, error) {
	return forest.TrainRegressor(x, y, forest.Config{Trees: 100, Seed: seed})
}

// R2 computes the coefficient of determination of a regressor over a
// dataset.
func R2(m Regressor, x [][]float64, y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		pred := m.Predict(x[i])
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - mean) * (y[i] - mean)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
