package appkernel

import (
	"fmt"
	"math"
)

// Detector is a process-control change detector over a wall-time stream.
// Observe feeds one measurement and reports whether the detector alarms.
// The XDMoD application-kernel subsystem runs such detectors over every
// (kernel, node-count) stream to flag quality-of-service regressions.
type Detector interface {
	Observe(wall float64) bool
	// Value returns the current test statistic, in detector-specific units.
	Value() float64
}

// Detector constructors calibrate from a healthy baseline sample.
type DetectorFactory func(baseline []float64) (Detector, error)

// NewCUSUMDetector adapts the one-sided CUSUM to the Detector interface.
func NewCUSUMDetector(baseline []float64) (Detector, error) {
	return NewCUSUM(baseline)
}

// EWMA is an exponentially weighted moving-average control chart: the
// smoothed statistic alarms when it exceeds Target + L*sigma_ewma. It
// reacts faster than CUSUM to moderate shifts and is robust to single
// outliers.
type EWMA struct {
	Target float64
	Sigma  float64
	// Lambda is the smoothing weight (default 0.2).
	Lambda float64
	// L is the control-limit width in asymptotic-sigma units (default 3).
	L float64

	value float64
	n     int
}

// NewEWMA calibrates an EWMA chart from a healthy baseline.
func NewEWMA(baseline []float64) (Detector, error) {
	mean, sigma, err := baselineStats(baseline)
	if err != nil {
		return nil, err
	}
	return &EWMA{Target: mean, Sigma: sigma, Lambda: 0.2, L: 3, value: mean}, nil
}

// Observe feeds one wall time; true means the chart alarms (slow side
// only: QoS cares about regressions, not improvements). The statistic
// resets to target on alarm.
func (e *EWMA) Observe(wall float64) bool {
	e.n++
	e.value = e.Lambda*wall + (1-e.Lambda)*e.value
	// Exact control-limit variance for finite n.
	lam := e.Lambda
	varFactor := lam / (2 - lam) * (1 - math.Pow(1-lam, 2*float64(e.n)))
	limit := e.Target + e.L*e.Sigma*math.Sqrt(varFactor)
	if e.value > limit {
		e.value = e.Target
		e.n = 0
		return true
	}
	return false
}

// Value returns the current smoothed statistic.
func (e *EWMA) Value() float64 { return e.value }

// Shewhart is the classic individual-observation control chart: alarm when
// a single measurement exceeds Target + K*sigma. Fast on large shifts,
// blind to small sustained drifts.
type Shewhart struct {
	Target float64
	Sigma  float64
	// K is the limit width in sigma units (default 3).
	K float64

	last float64
}

// NewShewhart calibrates a Shewhart chart from a healthy baseline.
func NewShewhart(baseline []float64) (Detector, error) {
	mean, sigma, err := baselineStats(baseline)
	if err != nil {
		return nil, err
	}
	return &Shewhart{Target: mean, Sigma: sigma, K: 3}, nil
}

// Observe feeds one wall time; true when it breaches the upper limit.
func (s *Shewhart) Observe(wall float64) bool {
	s.last = wall
	return wall > s.Target+s.K*s.Sigma
}

// Value returns the last observation's z-score.
func (s *Shewhart) Value() float64 {
	if s.Sigma == 0 {
		return 0
	}
	return (s.last - s.Target) / s.Sigma
}

// baselineStats computes mean and (floored) standard deviation.
func baselineStats(baseline []float64) (mean, sigma float64, err error) {
	if len(baseline) < 2 {
		return 0, 0, fmt.Errorf("appkernel: need at least 2 baseline runs")
	}
	var m2 float64
	for i, v := range baseline {
		delta := v - mean
		mean += delta / float64(i+1)
		m2 += delta * (v - mean)
	}
	sigma = math.Sqrt(m2 / float64(len(baseline)))
	if sigma == 0 {
		sigma = mean * 0.01
		if sigma == 0 {
			sigma = 1e-9
		}
	}
	return mean, sigma, nil
}

// interface checks
var (
	_ Detector = (*CUSUM)(nil)
	_ Detector = (*EWMA)(nil)
	_ Detector = (*Shewhart)(nil)
)
