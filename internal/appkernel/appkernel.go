// Package appkernel implements the XDMoD application-kernel QoS subsystem
// the paper describes: computationally lightweight benchmark applications
// submitted periodically through the normal batch queue, whose wall times
// are tracked by process-control algorithms that alert support staff when
// a kernel starts under-performing. It also implements the paper's Section
// IV extension: SVM and random-forest regression of application-kernel
// wall time from run parameters.
package appkernel

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Kernel is one application-kernel definition: a fixed benchmark run
// repeatedly with identical inputs at several node counts.
type Kernel struct {
	Name       string
	NodeCounts []int
	// BaseWall is the healthy mean wall time (seconds) on one node.
	BaseWall float64
	// ScalingExp is the strong-scaling exponent: wall(n) =
	// BaseWall / n^ScalingExp (1 = perfect scaling).
	ScalingExp float64
	// Noise is the run-to-run lognormal sigma of wall time.
	Noise float64
}

// DefaultKernels returns a kernel suite resembling the XDMoD set (NWChem,
// NAMD, GROMACS, HPCC, IOR, Graph500 application kernels).
func DefaultKernels() []Kernel {
	return []Kernel{
		{"nwchem", []int{1, 2, 4, 8}, 1800, 0.85, 0.05},
		{"namd", []int{1, 2, 4, 8}, 1200, 0.90, 0.04},
		{"gromacs", []int{1, 2, 4, 8}, 900, 0.88, 0.04},
		{"hpcc", []int{1, 2, 4, 8}, 600, 0.70, 0.06},
		{"ior", []int{1, 2, 4}, 300, 0.30, 0.12},
		{"graph500", []int{1, 2, 4, 8}, 700, 0.55, 0.07},
	}
}

// Run is one completed application-kernel job.
type Run struct {
	Kernel   string
	Nodes    int
	Seq      int // submission sequence number
	Wall     float64
	Degraded bool // generation-side truth: run during a degraded period
}

// ExpectedWall returns the healthy mean wall time at a node count.
func (k Kernel) ExpectedWall(nodes int) float64 {
	return k.BaseWall / math.Pow(float64(nodes), k.ScalingExp)
}

// Degradation describes a performance regression injected into the
// simulated stream (e.g. a failing filesystem or misconfigured fabric).
type Degradation struct {
	StartSeq int     // first affected submission
	EndSeq   int     // last affected submission (inclusive; <=0 = open)
	Factor   float64 // wall-time multiplier (>1 = slower)
}

func (d Degradation) active(seq int) bool {
	if seq < d.StartSeq {
		return false
	}
	return d.EndSeq <= 0 || seq <= d.EndSeq
}

// Simulate generates runs sequential submissions of the kernel at each of
// its node counts, applying any active degradations.
func (k Kernel) Simulate(r *rng.Rand, runs int, degs []Degradation) []Run {
	var out []Run
	for seq := 0; seq < runs; seq++ {
		factor := 1.0
		degraded := false
		for _, d := range degs {
			if d.active(seq) {
				factor *= d.Factor
				degraded = true
			}
		}
		for _, n := range k.NodeCounts {
			wall := k.ExpectedWall(n) * factor * r.LogNormal(0, k.Noise)
			out = append(out, Run{Kernel: k.Name, Nodes: n, Seq: seq, Wall: wall, Degraded: degraded})
		}
	}
	return out
}

// CUSUM is a one-sided cumulative-sum change detector on wall times, the
// process-control algorithm that flags under-performing kernels.
type CUSUM struct {
	// Target is the in-control mean (healthy wall time).
	Target float64
	// Slack is the allowance k in standard-deviation units (default 0.5).
	Slack float64
	// Threshold is the alarm level h in standard-deviation units
	// (default 5).
	Threshold float64
	// Sigma is the in-control standard deviation.
	Sigma float64

	sum float64
}

// NewCUSUM calibrates a detector from a healthy baseline sample.
func NewCUSUM(baseline []float64) (*CUSUM, error) {
	if len(baseline) < 2 {
		return nil, fmt.Errorf("appkernel: need at least 2 baseline runs")
	}
	var mean, m2 float64
	for i, v := range baseline {
		delta := v - mean
		mean += delta / float64(i+1)
		m2 += delta * (v - mean)
	}
	sigma := math.Sqrt(m2 / float64(len(baseline)))
	if sigma == 0 {
		sigma = mean * 0.01
	}
	return &CUSUM{Target: mean, Slack: 0.5, Threshold: 5, Sigma: sigma}, nil
}

// Observe feeds one wall time; it returns true when the detector alarms
// (the kernel is consistently slower than baseline). The statistic resets
// on alarm.
func (c *CUSUM) Observe(wall float64) bool {
	z := (wall - c.Target) / c.Sigma
	c.sum += z - c.Slack
	if c.sum < 0 {
		c.sum = 0
	}
	if c.sum > c.Threshold {
		c.sum = 0
		return true
	}
	return false
}

// Value returns the current CUSUM statistic (in sigma units).
func (c *CUSUM) Value() float64 { return c.sum }

// Monitor runs a change detector per (kernel, node-count) stream and
// collects alarms. The default detector is CUSUM; NewMonitorWith accepts
// any DetectorFactory (EWMA, Shewhart).
type Monitor struct {
	detectors map[string]Detector
	// Alarms maps stream key -> sequence numbers that alarmed.
	Alarms map[string][]int
}

// StreamKey identifies a (kernel, nodes) series.
func StreamKey(kernel string, nodes int) string {
	return fmt.Sprintf("%s/%d", kernel, nodes)
}

// NewMonitor calibrates one CUSUM detector per stream from baseline runs
// (healthy history).
func NewMonitor(baseline []Run) (*Monitor, error) {
	return NewMonitorWith(baseline, NewCUSUMDetector)
}

// NewMonitorWith calibrates one detector per stream using the factory.
func NewMonitorWith(baseline []Run, factory DetectorFactory) (*Monitor, error) {
	byStream := map[string][]float64{}
	for _, r := range baseline {
		k := StreamKey(r.Kernel, r.Nodes)
		byStream[k] = append(byStream[k], r.Wall)
	}
	m := &Monitor{detectors: map[string]Detector{}, Alarms: map[string][]int{}}
	for k, walls := range byStream {
		det, err := factory(walls)
		if err != nil {
			return nil, fmt.Errorf("stream %s: %w", k, err)
		}
		m.detectors[k] = det
	}
	return m, nil
}

// Observe feeds one run; returns true if that stream alarmed.
func (m *Monitor) Observe(r Run) bool {
	key := StreamKey(r.Kernel, r.Nodes)
	det, ok := m.detectors[key]
	if !ok {
		return false
	}
	if det.Observe(r.Wall) {
		m.Alarms[key] = append(m.Alarms[key], r.Seq)
		return true
	}
	return false
}
