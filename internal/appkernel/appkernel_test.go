package appkernel

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestExpectedWallScaling(t *testing.T) {
	k := Kernel{Name: "x", BaseWall: 1000, ScalingExp: 1}
	if k.ExpectedWall(1) != 1000 {
		t.Error("1-node wall")
	}
	if math.Abs(k.ExpectedWall(4)-250) > 1e-9 {
		t.Errorf("perfect scaling: %v", k.ExpectedWall(4))
	}
	sub := Kernel{Name: "y", BaseWall: 1000, ScalingExp: 0.5}
	if math.Abs(sub.ExpectedWall(4)-500) > 1e-9 {
		t.Errorf("sublinear scaling: %v", sub.ExpectedWall(4))
	}
}

func TestSimulateShape(t *testing.T) {
	k := DefaultKernels()[0]
	runs := k.Simulate(rng.New(1), 50, nil)
	if len(runs) != 50*len(k.NodeCounts) {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		if r.Wall <= 0 || r.Degraded {
			t.Fatalf("bad healthy run %+v", r)
		}
	}
}

func TestSimulateDegradation(t *testing.T) {
	k := Kernel{Name: "k", NodeCounts: []int{1}, BaseWall: 100, ScalingExp: 1, Noise: 0.02}
	runs := k.Simulate(rng.New(2), 100, []Degradation{{StartSeq: 50, Factor: 1.5}})
	var healthy, degraded float64
	var nh, nd int
	for _, r := range runs {
		if r.Seq < 50 {
			if r.Degraded {
				t.Fatal("early run marked degraded")
			}
			healthy += r.Wall
			nh++
		} else {
			if !r.Degraded {
				t.Fatal("late run not marked degraded")
			}
			degraded += r.Wall
			nd++
		}
	}
	ratio := (degraded / float64(nd)) / (healthy / float64(nh))
	if math.Abs(ratio-1.5) > 0.1 {
		t.Errorf("degradation ratio = %v, want ~1.5", ratio)
	}
}

func TestDegradationWindow(t *testing.T) {
	d := Degradation{StartSeq: 10, EndSeq: 20, Factor: 2}
	if d.active(9) || !d.active(10) || !d.active(20) || d.active(21) {
		t.Error("window bounds wrong")
	}
	open := Degradation{StartSeq: 5, Factor: 2}
	if !open.active(1000) {
		t.Error("open-ended window should stay active")
	}
}

func TestCUSUMDetectsShift(t *testing.T) {
	r := rng.New(3)
	baseline := make([]float64, 50)
	for i := range baseline {
		baseline[i] = 100 * r.LogNormal(0, 0.03)
	}
	det, err := NewCUSUM(baseline)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy stream: no alarm over 100 observations.
	for i := 0; i < 100; i++ {
		if det.Observe(100 * r.LogNormal(0, 0.03)) {
			t.Fatal("false alarm on healthy stream")
		}
	}
	// 20% regression: alarm within a handful of observations.
	alarmed := -1
	for i := 0; i < 30; i++ {
		if det.Observe(120 * r.LogNormal(0, 0.03)) {
			alarmed = i
			break
		}
	}
	if alarmed < 0 {
		t.Fatal("no alarm on 20% regression")
	}
	if alarmed > 15 {
		t.Errorf("alarm too slow: %d observations", alarmed)
	}
}

func TestCUSUMErrors(t *testing.T) {
	if _, err := NewCUSUM([]float64{1}); err == nil {
		t.Error("single baseline should error")
	}
	det, err := NewCUSUM([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if det.Sigma <= 0 {
		t.Error("zero-variance baseline needs sigma floor")
	}
}

func TestMonitorEndToEnd(t *testing.T) {
	r := rng.New(4)
	kernels := DefaultKernels()
	var baseline []Run
	for i, k := range kernels {
		baseline = append(baseline, k.Simulate(r.Split(uint64(i)), 40, nil)...)
	}
	mon, err := NewMonitor(baseline)
	if err != nil {
		t.Fatal(err)
	}
	// Live stream: ior degrades at seq 20 (filesystem problem).
	alarmsBefore := 0
	for i, k := range kernels {
		var degs []Degradation
		if k.Name == "ior" {
			degs = []Degradation{{StartSeq: 20, Factor: 2.0}}
		}
		for _, run := range k.Simulate(r.Split(uint64(100+i)), 60, degs) {
			if mon.Observe(run) && run.Seq < 20 {
				alarmsBefore++
			}
		}
	}
	iorAlarms := 0
	for key, seqs := range mon.Alarms {
		if len(seqs) > 0 && key[:3] == "ior" {
			iorAlarms += len(seqs)
		}
	}
	if iorAlarms == 0 {
		t.Error("monitor missed the ior degradation")
	}
	if alarmsBefore > 2 {
		t.Errorf("%d alarms before the fault", alarmsBefore)
	}
}

func TestRegressionDataLayout(t *testing.T) {
	kernels := DefaultKernels()[:2]
	runs := []Run{{Kernel: kernels[1].Name, Nodes: 4, Wall: 123}}
	x, y, names, err := RegressionData(kernels, runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 || names[2] != "nodes" {
		t.Fatalf("names = %v", names)
	}
	if x[0][0] != 0 || x[0][1] != 1 || x[0][2] != 4 {
		t.Errorf("row = %v", x[0])
	}
	if y[0] != 123 {
		t.Error("target wrong")
	}
	if _, _, _, err := RegressionData(kernels, []Run{{Kernel: "nope"}}); err == nil {
		t.Error("unknown kernel not caught")
	}
}

func TestWallTimeRegression(t *testing.T) {
	r := rng.New(5)
	kernels := DefaultKernels()
	var train, test []Run
	for i, k := range kernels {
		train = append(train, k.Simulate(r.Split(uint64(i)), 30, nil)...)
		test = append(test, k.Simulate(r.Split(uint64(50+i)), 10, nil)...)
	}
	xTr, yTr, _, err := RegressionData(kernels, train)
	if err != nil {
		t.Fatal(err)
	}
	xTe, yTe, _, err := RegressionData(kernels, test)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := TrainRF(xTr, yTr, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := R2(rf, xTe, yTe); r2 < 0.88 {
		t.Errorf("RF wall-time R2 = %v", r2)
	}
	svr, err := TrainSVR(xTr, yTr, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := R2(svr, xTe, yTe); r2 < 0.88 {
		t.Errorf("SVR wall-time R2 = %v", r2)
	}
}

func BenchmarkCUSUMObserve(b *testing.B) {
	det, _ := NewCUSUM([]float64{100, 101, 99, 100, 102})
	for i := 0; i < b.N; i++ {
		det.Observe(100.5)
	}
}
