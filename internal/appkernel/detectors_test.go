package appkernel

import (
	"testing"

	"repro/internal/rng"
)

// detectorBench runs a detector over healthy then shifted data, returning
// (false alarms in healthy phase, observations until first alarm after
// the shift; -1 if never).
func detectorBench(t *testing.T, mk DetectorFactory, shift float64, seed uint64) (falseAlarms, delay int) {
	t.Helper()
	r := rng.New(seed)
	baseline := make([]float64, 60)
	for i := range baseline {
		baseline[i] = 100 * r.LogNormal(0, 0.04)
	}
	det, err := mk(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if det.Observe(100 * r.LogNormal(0, 0.04)) {
			falseAlarms++
		}
	}
	delay = -1
	for i := 0; i < 60; i++ {
		if det.Observe(100 * shift * r.LogNormal(0, 0.04)) {
			delay = i
			break
		}
	}
	return falseAlarms, delay
}

func TestAllDetectorsCatchLargeShift(t *testing.T) {
	for name, mk := range map[string]DetectorFactory{
		"cusum":    NewCUSUMDetector,
		"ewma":     NewEWMA,
		"shewhart": NewShewhart,
	} {
		fa, delay := detectorBench(t, mk, 1.5, 11)
		if delay < 0 {
			t.Errorf("%s missed a 50%% regression", name)
		}
		if delay > 10 {
			t.Errorf("%s took %d observations on a 50%% regression", name, delay)
		}
		if fa > 3 {
			t.Errorf("%s raised %d false alarms on healthy data", name, fa)
		}
	}
}

func TestCUSUMAndEWMACatchSmallDrift(t *testing.T) {
	// 8% drift (~2 sigma at 4% noise): accumulating detectors must catch
	// it; the Shewhart chart is expected to be much slower or miss it,
	// which is exactly why production QoS monitoring layers detectors.
	for name, mk := range map[string]DetectorFactory{
		"cusum": NewCUSUMDetector,
		"ewma":  NewEWMA,
	} {
		_, delay := detectorBench(t, mk, 1.08, 13)
		if delay < 0 || delay > 30 {
			t.Errorf("%s delay on 8%% drift = %d", name, delay)
		}
	}
}

func TestShewhartSingleSpikeOnly(t *testing.T) {
	baseline := []float64{100, 101, 99, 100, 102, 98}
	det, err := NewShewhart(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if det.Observe(101) {
		t.Error("in-control point alarmed")
	}
	if !det.Observe(200) {
		t.Error("gross outlier missed")
	}
	if det.Value() < 3 {
		t.Errorf("z-score = %v after outlier", det.Value())
	}
}

func TestEWMAFiniteSampleLimits(t *testing.T) {
	// Early observations have tighter limits (finite-n variance factor);
	// a moderate early excursion must not alarm spuriously on n=1 but the
	// statistic must track upward.
	baseline := []float64{100, 100.5, 99.5, 100, 100.2, 99.8}
	det, err := NewEWMA(baseline)
	if err != nil {
		t.Fatal(err)
	}
	e := det.(*EWMA)
	v0 := e.Value()
	if det.Observe(100.3) {
		t.Error("sub-sigma excursion should not alarm")
	}
	if e.Value() <= v0 {
		t.Error("EWMA statistic did not move toward the observation")
	}
}

func TestDetectorBaselineErrors(t *testing.T) {
	for name, mk := range map[string]DetectorFactory{
		"cusum":    NewCUSUMDetector,
		"ewma":     NewEWMA,
		"shewhart": NewShewhart,
	} {
		if _, err := mk([]float64{1}); err == nil {
			t.Errorf("%s accepted a single-point baseline", name)
		}
	}
}

func TestZeroVarianceBaselines(t *testing.T) {
	for name, mk := range map[string]DetectorFactory{
		"ewma":     NewEWMA,
		"shewhart": NewShewhart,
	} {
		det, err := mk([]float64{5, 5, 5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Sigma floored: a clear regression must still alarm.
		alarmed := false
		for i := 0; i < 10; i++ {
			if det.Observe(6) {
				alarmed = true
				break
			}
		}
		if !alarmed {
			t.Errorf("%s never alarmed on a 20%% regression from a flat baseline", name)
		}
	}
}

func TestMonitorWithAlternateDetectors(t *testing.T) {
	r := rng.New(21)
	kernels := DefaultKernels()[:2]
	var baseline []Run
	for i, k := range kernels {
		baseline = append(baseline, k.Simulate(r.Split(uint64(i)), 40, nil)...)
	}
	for name, factory := range map[string]DetectorFactory{
		"ewma":     NewEWMA,
		"shewhart": NewShewhart,
	} {
		mon, err := NewMonitorWith(baseline, factory)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		degs := []Degradation{{StartSeq: 10, Factor: 1.8}}
		hits := 0
		for _, run := range kernels[0].Simulate(r.Split(100), 30, degs) {
			if mon.Observe(run) && run.Degraded {
				hits++
			}
		}
		if hits == 0 {
			t.Errorf("%s monitor missed a 1.8x regression", name)
		}
	}
}
