package lifecycle

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/testkit"
)

// driftWorld builds a small labeled reference set plus identity
// predictions (the pretend champion predicts the truth), the raw
// material for a Baseline.
func driftWorld(t *testing.T, seed uint64) (*dataset.Dataset, []string, []string) {
	t.Helper()
	d, err := simBootSet(seed, 50)
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]string, simClasses)
	for k := range classes {
		classes[k] = fmt.Sprintf("class%02d", k)
	}
	preds := make([]string, d.Len())
	for i := range preds {
		preds[i] = d.Label(i)
	}
	return d, preds, classes
}

// driftRows draws n fresh window rows from the same world, every
// feature offset by shift.
func driftRows(seed uint64, n int, shift float64) [][]float64 {
	root := rng.New(seed)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = simRow(root.Split(uint64(i)), i%simClasses, shift)
	}
	return rows
}

// Metamorphic: a window holding exactly the baseline's own row multiset
// yields PSI == 0 exactly, on every feature and on the posterior —
// both sides smooth with the identical counts-plus-one rule, so equal
// counts give bitwise-equal proportions and every PSI term vanishes.
func TestDriftExactZeroOnIdenticalMultiset(t *testing.T) {
	d, preds, classes := driftWorld(t, 3)
	b, err := NewBaseline(d, preds, classes, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the baseline's own rows back, in a scrambled order.
	perm := testkit.RandPerm(7, d.Len())
	rows := make([][]float64, d.Len())
	counts := make([]int, len(classes))
	for i, j := range perm {
		rows[i] = d.X[j]
		ci, ok := b.ClassIndex(preds[j])
		if !ok {
			t.Fatalf("baseline prediction %q not in vocabulary", preds[j])
		}
		counts[ci]++
	}
	for f, v := range b.FeaturePSI(rows) {
		if v != 0 {
			t.Errorf("feature %d PSI = %v on the identical multiset, want exactly 0", f, v)
		}
	}
	if v := b.PosteriorPSI(counts, len(rows)); v != 0 {
		t.Errorf("posterior PSI = %v on the identical class mix, want exactly 0", v)
	}
}

// Metamorphic: PSI is a pure function of bin counts, so permuting the
// window rows changes nothing, bit for bit.
func TestDriftPermutationInvariance(t *testing.T) {
	d, preds, classes := driftWorld(t, 4)
	b, err := NewBaseline(d, preds, classes, 8)
	if err != nil {
		t.Fatal(err)
	}
	rows := driftRows(11, 97, 0.8)
	want := testkit.HashFloats(b.FeaturePSI(rows))
	for _, permSeed := range []uint64{1, 2, 3} {
		perm := testkit.RandPerm(permSeed, len(rows))
		shuffled := make([][]float64, len(rows))
		for i, j := range perm {
			shuffled[i] = rows[j]
		}
		if got := testkit.HashFloats(b.FeaturePSI(shuffled)); got != want {
			t.Fatalf("perm seed %d: PSI changed under row permutation: %s vs %s", permSeed, got, want)
		}
	}
}

// Metamorphic: larger mean shifts move more mass across the frozen
// quantile bins, so the max feature PSI must increase monotonically
// with the injected shift — up to saturation (once every row is past
// the last edge, PSI plateaus), so the ladder stays inside the
// sensitive range.
func TestDriftMonotoneUnderShift(t *testing.T) {
	d, preds, classes := driftWorld(t, 5)
	b, err := NewBaseline(d, preds, classes, 10)
	if err != nil {
		t.Fatal(err)
	}
	maxPSI := func(shift float64) float64 {
		var m float64
		for _, v := range b.FeaturePSI(driftRows(13, 200, shift)) {
			if v > m {
				m = v
			}
		}
		return m
	}
	shifts := []float64{0, 0.2, 0.4, 0.8, 1.6}
	prev := -1.0
	for _, s := range shifts {
		got := maxPSI(s)
		if got <= prev {
			t.Fatalf("max PSI not monotone: shift %g gives %v after %v", s, got, prev)
		}
		prev = got
	}
}

func TestDriftBinOfEdges(t *testing.T) {
	edges := []float64{1, 2, 3}
	cases := []struct {
		x    float64
		want int
	}{{0.5, 0}, {1, 1}, {1.5, 1}, {2, 2}, {2.9, 2}, {3, 3}, {99, 3}}
	for _, tc := range cases {
		if got := binOf(edges, tc.x); got != tc.want {
			t.Errorf("binOf(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestNewBaselineRejects(t *testing.T) {
	d, preds, classes := driftWorld(t, 6)
	if _, err := NewBaseline(d, preds[:1], classes, 10); err == nil {
		t.Error("accepted a prediction slice shorter than the dataset")
	}
	if _, err := NewBaseline(d, preds, classes, 1); err == nil {
		t.Error("accepted bins < 2")
	}
	if _, err := NewBaseline(d, preds, nil, 10); err == nil {
		t.Error("accepted an empty class vocabulary")
	}
	bad := append([]string(nil), preds...)
	bad[0] = "classXX"
	if _, err := NewBaseline(d, bad, classes, 10); err == nil {
		t.Error("accepted a prediction outside the class vocabulary")
	}
}

func TestPosteriorPSIDetectsMixShift(t *testing.T) {
	d, preds, classes := driftWorld(t, 8)
	b, err := NewBaseline(d, preds, classes, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A window predicted entirely as one class is maximal concept drift.
	skew := make([]int, len(classes))
	skew[0] = 200
	if v := b.PosteriorPSI(skew, 200); v <= 0.5 {
		t.Fatalf("posterior PSI %v too small for a fully-skewed class mix", v)
	}
	if v := b.PosteriorPSI(make([]int, len(classes)), 0); v != 0 {
		t.Fatalf("posterior PSI over an empty window should be 0, got %v", v)
	}
}
