package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml/eval"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/resilience"
)

// Loop states. The machine is strictly ordered per cycle:
// stable -> drifting (alarm) -> shadowing (challenger live in shadow)
// -> promoting (decision window full) -> stable (promoted or demoted).
const (
	StateStable    = "stable"
	StateDrifting  = "drifting"
	StateShadowing = "shadowing"
	StatePromoting = "promoting"
)

// stateOrdinal maps states onto the lifecycle_state gauge.
func stateOrdinal(s string) float64 {
	switch s {
	case StateDrifting:
		return 1
	case StateShadowing:
		return 2
	case StatePromoting:
		return 3
	}
	return 0
}

// Fault-injection site names the loop consults when a resilience.Faults
// registry is wired in (same -faults flag as the serving sites).
const (
	// FaultRetrain fires inside the guarded challenger retrain, before
	// the trainer runs: error faults fail the retrain (driving the
	// shared control-plane breaker), latency faults wedge it.
	FaultRetrain = "lifecycle.retrain"
	// FaultPromote fires inside the guarded promotion swap, before the
	// manager is touched: error faults fail the promotion, leaving the
	// champion serving.
	FaultPromote = "lifecycle.promote"
	// FaultShadow fires once per shadow-scored row, after the served
	// answer is already decided: error faults count in the ledger's
	// error column, panic faults prove the shadow path's isolation
	// (a shadow panic must never fail the serving request).
	FaultShadow = "lifecycle.shadow"
)

// Sentinel errors the admin endpoints map onto HTTP statuses.
var (
	// ErrNoTrainer means the loop was built without a Trainer.
	ErrNoTrainer = errors.New("lifecycle: no trainer configured")
	// ErrNoChallenger means Decide was called with nothing shadowing.
	ErrNoChallenger = errors.New("lifecycle: no challenger to decide on")
	// ErrNoHistory means Rollback was called with no prior champion.
	ErrNoHistory = errors.New("lifecycle: no previous champion to roll back to")
)

// TrainResult is what a Trainer hands back: the challenger, the labeled
// evaluation window the promotion gate scores both models on, and a
// fresh drift baseline to install if the challenger is promoted (nil
// keeps the old baseline).
type TrainResult struct {
	Model    *core.JobClassifier
	Eval     *dataset.Dataset
	Baseline *Baseline
}

// Trainer retrains a challenger on the most recent TrainWindow of
// warehouse rows. It runs under the control-plane guard (breaker), off
// the per-row path.
type Trainer func() (TrainResult, error)

// Options wires a Loop into its host process.
type Options struct {
	// Manager is the champion's model manager; promotion goes through
	// its schema-validated Swap. Required.
	Manager *core.ModelManager
	// Trainer builds challengers. Required for retraining; a loop
	// without one only monitors drift.
	Trainer Trainer
	// Baseline is the training-time drift reference. Required.
	Baseline *Baseline
	// Registry receives lifecycle_* and drift_* metrics; may be nil.
	Registry *obs.Registry
	// Log may be nil (the obs logger is nil-safe).
	Log *obs.Logger
	// Guard wraps the control-plane mutations (retrain, promote,
	// rollback); the server points it at the shared reload breaker.
	// Nil runs them unguarded.
	Guard func(op func() error) error
	// Faults arms the lifecycle.* injection sites; may be nil.
	Faults *resilience.Faults
	// Notify is poked (if non-nil) whenever the loop wants a Step() —
	// drift fired or the shadow window filled. It must not block; the
	// server points it at a buffered channel its lifecycle goroutine
	// drains, and the simulation drives Step itself.
	Notify func()
}

// Ledger is the shadow-scoring conservation ledger. Every row admitted
// while a challenger is installed lands in exactly one disposition:
//
//	Eligible == Scored + Errors, and Scored == Agree + Disagree
//
// so shadow activity reconciles exactly against lifecycle_* metrics and
// the flight recorder's shadow tallies.
type Ledger struct {
	Eligible uint64 `json:"eligible"`
	Scored   uint64 `json:"scored"`
	Errors   uint64 `json:"errors"`
	Agree    uint64 `json:"agree"`
	Disagree uint64 `json:"disagree"`
}

// Decision is one promotion gate evaluation: both models scored on the
// labeled evaluation window, a McNemar paired test over their
// disagreements, and the paper's threshold sweep for the winner.
type Decision struct {
	EvalRows int     `json:"evalRows"`
	ChampAcc float64 `json:"championAccuracy"`
	ChallAcc float64 `json:"challengerAccuracy"`
	// B counts rows the champion got right and the challenger wrong;
	// C the reverse. The test statistic only sees disagreements.
	B int `json:"b"`
	C int `json:"c"`
	// ChiSq is the continuity-corrected McNemar statistic; P its
	// chi-squared(1) tail probability.
	ChiSq float64 `json:"chiSq"`
	P     float64 `json:"p"`
	// Promoted records the verdict; Reason says why in one line.
	Promoted bool   `json:"promoted"`
	Reason   string `json:"reason"`
	// Sweep is the paper's threshold sweep (Figures 1/3/4) for the
	// challenger on the evaluation window — the live rendition of the
	// offline threshold analysis the promotion criterion descends from.
	Sweep []eval.ThresholdPoint `json:"sweep,omitempty"`
}

// Status is the /api/lifecycle snapshot.
type Status struct {
	State           string  `json:"state"`
	Auto            bool    `json:"auto"`
	Generation      uint64  `json:"generation"`
	RowsObserved    uint64  `json:"rowsObserved"`
	WindowRows      int     `json:"windowRows"`
	CooldownLeft    int     `json:"cooldownLeft"`
	DriftEvents     uint64  `json:"driftEvents"`
	MaxFeaturePSI   float64 `json:"maxFeaturePSI"`
	DriftFeature    string  `json:"driftFeature,omitempty"`
	PosteriorPSI    float64 `json:"posteriorPSI"`
	ChallengerReady bool    `json:"challengerReady"`
	ShadowScored    uint64  `json:"shadowScored"`
	Retrains        uint64  `json:"retrains"`
	Promotions      uint64  `json:"promotions"`
	Demotions       uint64  `json:"demotions"`
	Rollbacks       uint64  `json:"rollbacks"`
	RollbackReady   bool    `json:"rollbackReady"`
	Ledger          Ledger  `json:"ledger"`
	// Transitions since boot, oldest first (bounded).
	Transitions  []Transition `json:"transitions,omitempty"`
	LastDecision *Decision    `json:"lastDecision,omitempty"`
	Spec         string       `json:"spec"`
}

// Transition is one state-machine edge, stamped with the observed-row
// counter (the loop's deterministic clock).
type Transition struct {
	Row    uint64 `json:"row"`
	From   string `json:"from"`
	To     string `json:"to"`
	Reason string `json:"reason"`
}

// maxTransitions bounds the transition log kept for /api/lifecycle.
const maxTransitions = 64

// window is the sliding drift window: a fixed-capacity ring of raw
// feature rows plus the champion's predicted class for each.
type window struct {
	rows  [][]float64
	cls   []int
	next  int
	n     int
	extra int // predictions outside the class vocabulary (counted, unbinned)
}

func newWindow(capacity int) *window {
	return &window{rows: make([][]float64, capacity), cls: make([]int, capacity)}
}

func (w *window) add(row []float64, cls int) {
	w.rows[w.next] = append([]float64(nil), row...)
	w.cls[w.next] = cls
	w.next = (w.next + 1) % len(w.rows)
	if w.n < len(w.rows) {
		w.n++
	}
}

func (w *window) reset() {
	w.next, w.n = 0, 0
}

// snapshot returns the live rows and per-class counts. Row order is
// irrelevant to the (permutation-invariant) statistics.
func (w *window) snapshot(numClasses int) ([][]float64, []int) {
	rows := make([][]float64, 0, w.n)
	counts := make([]int, numClasses)
	start := w.next - w.n
	for i := 0; i < w.n; i++ {
		j := (start + i + len(w.rows)) % len(w.rows)
		rows = append(rows, w.rows[j])
		if c := w.cls[j]; c >= 0 {
			counts[c]++
		}
	}
	return rows, counts
}

// Loop is the closed-loop lifecycle controller. Observe is the per-row
// hot hook: a short locked ring append, with any shadow inference run
// off the lock so concurrent requests never serialize behind a model
// evaluation. The state actions (retrain, decide, promote, rollback)
// run through Step or the admin methods, serialized by opMu and
// guarded by the shared control-plane breaker.
type Loop struct {
	cfg     Config
	mgr     *core.ModelManager
	trainer Trainer
	guard   func(op func() error) error
	faults  *resilience.Faults
	log     *obs.Logger
	notify  func()

	// opMu serializes the control-plane operations (Retrain, Decide,
	// Rollback) end to end. Each one reads loop state, runs a guarded
	// multi-step mutation off the row path, then writes state back;
	// interleaving two of them (an admin endpoint racing the auto Step
	// goroutine) could double-promote one challenger or silently discard
	// a freshly trained one. mu stays the short-hold lock shared with
	// Observe; opMu is always acquired first and never touched by the
	// per-row path.
	opMu sync.Mutex

	mu          sync.Mutex
	base        *Baseline
	state       string
	win         *window
	rowsSeen    uint64
	sinceEval   int
	cooldown    int
	driftEvents uint64
	maxFeatPSI  float64
	driftFeat   string
	postPSI     float64

	challenger *core.JobClassifier
	// challengerEpoch bumps whenever challenger is installed or cleared,
	// so a shadow verdict computed off-lock can detect that its
	// challenger was promoted or demoted mid-flight and drop itself
	// instead of landing in the wrong ledger.
	challengerEpoch uint64
	evalSet         *dataset.Dataset
	pendingBase     *Baseline // installed as the drift reference on promotion
	shadowScored    uint64    // scored rows since the current challenger installed
	prev            *core.JobClassifier
	prevBase        *Baseline // the outgoing baseline, restored on rollback
	prevReady       bool

	ledger      Ledger
	retrains    uint64
	promotions  uint64
	demotions   uint64
	rollbacks   uint64
	transitions []Transition
	lastDec     *Decision

	mState       *obs.Gauge
	mFeatPSI     *obs.Gauge
	mPostPSI     *obs.Gauge
	mDriftEvents *obs.Counter
	mEligible    *obs.Counter
	mScored      *obs.Counter
	mAgree       *obs.Counter
	mDisagree    *obs.Counter
	mErrors      *obs.Counter
	mRetrainOK   *obs.Counter
	mRetrainErr  *obs.Counter
	mPromoteOK   *obs.Counter
	mPromoteRej  *obs.Counter
	mPromoteErr  *obs.Counter
	mRollbackOK  *obs.Counter
	mRollbackErr *obs.Counter
	mDemotions   *obs.Counter
}

// New builds a Loop in the stable state. cfg must Validate.
func New(cfg Config, opts Options) (*Loop, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Manager == nil {
		return nil, errors.New("lifecycle: a model manager is required")
	}
	if opts.Baseline == nil {
		return nil, errors.New("lifecycle: a drift baseline is required")
	}
	guard := opts.Guard
	if guard == nil {
		guard = func(op func() error) error { return op() }
	}
	l := &Loop{
		cfg:     cfg,
		mgr:     opts.Manager,
		trainer: opts.Trainer,
		guard:   guard,
		faults:  opts.Faults,
		log:     opts.Log,
		notify:  opts.Notify,
		base:    opts.Baseline,
		state:   StateStable,
		win:     newWindow(cfg.Window),
	}
	reg := opts.Registry
	reg.Help("lifecycle_state", "Lifecycle state machine: 0 stable, 1 drifting, 2 shadowing, 3 promoting.")
	reg.Help("drift_feature_psi_max", "Largest per-feature PSI at the last drift evaluation.")
	reg.Help("drift_posterior_psi", "PSI of the predicted-class mix vs the training baseline at the last drift evaluation.")
	reg.Help("drift_events_total", "Drift alarms fired (feature or posterior PSI over threshold).")
	reg.Help("lifecycle_shadow_rows_total", "Shadow-scoring ledger by disposition (eligible == scored + error; scored == agree + disagree).")
	reg.Help("lifecycle_retrain_total", "Challenger retrains by outcome.")
	reg.Help("lifecycle_promote_total", "Promotion attempts by outcome (ok, rejected by the gate, error).")
	reg.Help("lifecycle_rollback_total", "Rollbacks to the pre-promotion champion by outcome.")
	reg.Help("lifecycle_demotions_total", "Challengers discarded by a failed promotion gate.")
	l.mState = reg.Gauge("lifecycle_state")
	l.mFeatPSI = reg.Gauge("drift_feature_psi_max")
	l.mPostPSI = reg.Gauge("drift_posterior_psi")
	l.mDriftEvents = reg.Counter("drift_events_total")
	l.mEligible = reg.Counter("lifecycle_shadow_rows_total", "disposition", "eligible")
	l.mScored = reg.Counter("lifecycle_shadow_rows_total", "disposition", "scored")
	l.mAgree = reg.Counter("lifecycle_shadow_rows_total", "disposition", "agree")
	l.mDisagree = reg.Counter("lifecycle_shadow_rows_total", "disposition", "disagree")
	l.mErrors = reg.Counter("lifecycle_shadow_rows_total", "disposition", "error")
	l.mRetrainOK = reg.Counter("lifecycle_retrain_total", "outcome", "ok")
	l.mRetrainErr = reg.Counter("lifecycle_retrain_total", "outcome", "error")
	l.mPromoteOK = reg.Counter("lifecycle_promote_total", "outcome", "ok")
	l.mPromoteRej = reg.Counter("lifecycle_promote_total", "outcome", "rejected")
	l.mPromoteErr = reg.Counter("lifecycle_promote_total", "outcome", "error")
	l.mRollbackOK = reg.Counter("lifecycle_rollback_total", "outcome", "ok")
	l.mRollbackErr = reg.Counter("lifecycle_rollback_total", "outcome", "error")
	l.mDemotions = reg.Counter("lifecycle_demotions_total")
	return l, nil
}

// transitionLocked records a state edge. Caller holds l.mu.
func (l *Loop) transitionLocked(to, reason string) {
	if l.state == to {
		return
	}
	t := Transition{Row: l.rowsSeen, From: l.state, To: to, Reason: reason}
	l.transitions = append(l.transitions, t)
	if len(l.transitions) > maxTransitions {
		l.transitions = l.transitions[len(l.transitions)-maxTransitions:]
	}
	l.state = to
	l.mState.Set(stateOrdinal(to))
	l.log.Info("lifecycle transition", "from", t.From, "to", t.To, "row", t.Row, "reason", reason)
}

// runOp executes one control-plane operation with panics contained: a
// panic inside retraining or promotion degrades to an error the
// guard's breaker can record; it must never crash the host process.
func runOp(op func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("lifecycle: control-plane panic: %v", r)
		}
	}()
	return op()
}

// poke wakes the host's Step driver; safe with a nil notifier.
func (l *Loop) poke() {
	if l.notify != nil {
		l.notify()
	}
}

// Observe is the per-row serving hook: every admitted classify row
// lands here with the champion's predicted label. It appends to the
// drift window, shadow-scores the challenger when one is installed
// (never touching the served answer — an injected shadow panic is
// swallowed here), and periodically evaluates the drift statistics.
// The ctx carries the request's wide event (nil-safe), which receives
// shadow tallies and fault hits.
func (l *Loop) Observe(ctx context.Context, row []float64, predLabel string) {
	if l == nil {
		return
	}
	fe := flight.From(ctx)
	l.mu.Lock()
	l.rowsSeen++
	cls, ok := l.base.ClassIndex(predLabel)
	if !ok {
		cls = -1
	}
	l.win.add(row, cls)
	if l.cooldown > 0 {
		l.cooldown--
	}
	var chall *core.JobClassifier
	var epoch uint64
	if l.challenger != nil && (l.state == StateShadowing || l.state == StatePromoting) {
		chall, epoch = l.challenger, l.challengerEpoch
	}
	l.sinceEval++
	if l.state == StateStable && l.cooldown == 0 && l.win.n >= l.cfg.MinRows && l.sinceEval >= l.cfg.Every {
		l.sinceEval = 0
		l.evaluateDriftLocked()
	}
	l.mu.Unlock()
	if chall == nil {
		return
	}

	// Challenger inference runs off the mutex: the stacked ensemble is
	// far slower than the compiled champion path, and holding the loop
	// lock through it would serialize every concurrent serving request
	// behind one model evaluation. Model prediction is read-only, so
	// concurrent rows may score simultaneously.
	agree, err := l.shadowPredict(fe, chall, row, predLabel)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.challengerEpoch != epoch {
		// The challenger was promoted or demoted while this row was in
		// flight; its verdict belongs to a retired ledger. Drop the row
		// entirely (no Eligible either) so the conservation identity
		// Eligible == Scored + Errors still holds exactly.
		return
	}
	l.recordShadowLocked(fe, agree, err)
	if l.state == StateShadowing && l.shadowScored >= uint64(l.cfg.ShadowMin) {
		l.transitionLocked(StatePromoting, fmt.Sprintf("shadow window full (%d scored)", l.shadowScored))
		l.poke()
	}
}

// shadowPredict scores one row on the challenger, with the
// lifecycle.shadow fault site armed and panics contained: the serving
// answer is already decided, so nothing that happens here may escape.
// Runs off the loop mutex; it touches only immutable loop fields.
func (l *Loop) shadowPredict(fe *flight.Active, chall *core.JobClassifier, row []float64, champLabel string) (agree bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("lifecycle: shadow panic: %v", r)
		}
	}()
	if fired, ferr := l.faults.InjectReport(FaultShadow); fired {
		fe.MarkFault()
		if ferr != nil {
			return false, ferr
		}
	}
	cls := chall.Predict(row)
	return chall.Classes()[cls] == champLabel, nil
}

// recordShadowLocked lands one completed shadow verdict in the ledger.
// Caller holds l.mu and has already checked the challenger epoch.
func (l *Loop) recordShadowLocked(fe *flight.Active, agree bool, err error) {
	l.ledger.Eligible++
	l.mEligible.Inc()
	if err != nil {
		l.ledger.Errors++
		l.mErrors.Inc()
		return
	}
	l.ledger.Scored++
	l.shadowScored++
	l.mScored.Inc()
	if agree {
		l.ledger.Agree++
		l.mAgree.Inc()
	} else {
		l.ledger.Disagree++
		l.mDisagree.Inc()
	}
	fe.AddShadow(agree)
}

// evaluateDriftLocked recomputes the drift statistics over the window
// and fires the alarm when either monitor crosses its threshold.
func (l *Loop) evaluateDriftLocked() {
	rows, classCounts := l.win.snapshot(len(l.base.Classes))
	featPSI := l.base.FeaturePSI(rows)
	l.maxFeatPSI, l.driftFeat = 0, ""
	for f, v := range featPSI {
		if v > l.maxFeatPSI {
			l.maxFeatPSI = v
			l.driftFeat = l.base.Features[f]
		}
	}
	l.postPSI = l.base.PosteriorPSI(classCounts, len(rows))
	l.mFeatPSI.Set(l.maxFeatPSI)
	l.mPostPSI.Set(l.postPSI)
	featAlarm := l.maxFeatPSI >= l.cfg.DriftThreshold
	postAlarm := l.postPSI >= l.cfg.PosteriorThreshold
	if !featAlarm && !postAlarm {
		return
	}
	l.driftEvents++
	l.mDriftEvents.Inc()
	reason := fmt.Sprintf("feature %s PSI %.4f >= %g", l.driftFeat, l.maxFeatPSI, l.cfg.DriftThreshold)
	if !featAlarm {
		reason = fmt.Sprintf("posterior PSI %.4f >= %g", l.postPSI, l.cfg.PosteriorThreshold)
	}
	l.transitionLocked(StateDrifting, reason)
	l.poke()
}

// Step performs at most one pending automatic action: retrain when
// drifting, decide when the shadow window is full. The server's
// lifecycle goroutine calls it on Notify; the simulation calls it at
// tick boundaries, which keeps the whole arc deterministic. Manual
// (Auto=false) loops ignore Step; the admin endpoints drive them.
func (l *Loop) Step() {
	l.mu.Lock()
	state, auto := l.state, l.cfg.Auto
	l.mu.Unlock()
	if !auto {
		return
	}
	switch state {
	case StateDrifting:
		_ = l.Retrain()
	case StatePromoting:
		_ = l.Decide()
	}
}

// Retrain trains a challenger through the control-plane guard and
// installs it in shadow. Callable from any state (the admin endpoint
// forces retrains); on success the loop is shadowing.
func (l *Loop) Retrain() error {
	if l.trainer == nil {
		return ErrNoTrainer
	}
	l.opMu.Lock()
	defer l.opMu.Unlock()
	var res TrainResult
	err := l.guard(func() error {
		return runOp(func() error {
			if err := l.faults.Inject(FaultRetrain); err != nil {
				return err
			}
			var err error
			res, err = l.trainer()
			return err
		})
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.mRetrainErr.Inc()
		l.log.Warn("lifecycle retrain failed", "err", err)
		return err
	}
	if res.Model == nil || res.Eval == nil || res.Eval.Len() == 0 {
		l.mRetrainErr.Inc()
		return errors.New("lifecycle: trainer returned no model or empty evaluation window")
	}
	// The promotion gate compares predictions as string labels, but the
	// challenger's threshold sweep still scores Eval by class index, so
	// the challenger must share the evaluation window's vocabulary.
	if !slices.Equal(res.Model.Classes(), res.Eval.ClassNames) {
		l.mRetrainErr.Inc()
		return fmt.Errorf("lifecycle: challenger classes %v do not match the evaluation window's %v",
			res.Model.Classes(), res.Eval.ClassNames)
	}
	l.retrains++
	l.mRetrainOK.Inc()
	l.challenger = res.Model
	l.challengerEpoch++
	l.evalSet = res.Eval
	l.pendingBase = res.Baseline
	l.shadowScored = 0
	l.transitionLocked(StateShadowing, fmt.Sprintf("challenger trained (%s, %d eval rows)", res.Model.Algo, res.Eval.Len()))
	return nil
}

// Decide runs the promotion gate: score champion and challenger on the
// labeled evaluation window, McNemar over the disagreements, promote
// through the guarded swap iff the challenger wins significantly by
// the configured margin. A failed gate demotes (discards) the
// challenger. Requires an installed challenger.
func (l *Loop) Decide() error {
	l.opMu.Lock()
	defer l.opMu.Unlock()
	l.mu.Lock()
	challenger, evalSet := l.challenger, l.evalSet
	champView := l.mgr.View()
	l.mu.Unlock()
	if challenger == nil || evalSet == nil {
		return ErrNoChallenger
	}
	if champView == nil {
		return errors.New("lifecycle: no champion loaded")
	}
	dec := decide(champView.Model, challenger, evalSet, l.cfg)

	if !dec.Promoted {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.lastDec = &dec
		l.mPromoteRej.Inc()
		l.demotions++
		l.mDemotions.Inc()
		l.challenger, l.evalSet, l.pendingBase = nil, nil, nil
		l.challengerEpoch++
		l.cooldown = l.cfg.Cooldown
		l.transitionLocked(StateStable, "gate failed: "+dec.Reason)
		return nil
	}

	err := l.guard(func() error {
		return runOp(func() error {
			if err := l.faults.Inject(FaultPromote); err != nil {
				return err
			}
			_, err := l.mgr.Swap(challenger)
			return err
		})
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastDec = &dec
	if err != nil {
		l.mPromoteErr.Inc()
		l.log.Warn("lifecycle promotion failed", "err", err)
		// The decision stands but the swap did not happen; the
		// challenger keeps shadowing so a recovered control plane can
		// retry the promotion.
		l.transitionLocked(StateShadowing, "promotion error: "+err.Error())
		return err
	}
	l.promotions++
	l.mPromoteOK.Inc()
	// Exactly one generation of rollback history: the outgoing champion
	// together with the drift baseline it was being judged against, so a
	// rollback restores the whole monitoring regime, not just the model.
	l.prev, l.prevBase, l.prevReady = champView.Model, l.base, true
	if l.pendingBase != nil {
		l.base = l.pendingBase
		l.pendingBase = nil
	}
	l.win.reset()
	l.sinceEval = 0
	l.challenger, l.evalSet = nil, nil
	l.challengerEpoch++
	l.cooldown = l.cfg.Cooldown
	l.transitionLocked(StateStable, "promoted: "+dec.Reason)
	return nil
}

// decide is the pure promotion gate (deterministic; the simulation
// golden pins its outputs bit-for-bit).
func decide(champ, chall *core.JobClassifier, ev *dataset.Dataset, cfg Config) Decision {
	dec := Decision{EvalRows: ev.Len()}
	// Predictions are compared to the truth as string labels, never as
	// class indices: the champion was trained on its own vocabulary,
	// which need not index (or even cover) the same classes as the
	// evaluation window's ClassNames, built from whatever labels the
	// recent sliding window happened to contain. A class the champion
	// has never seen simply counts as a champion miss.
	champClasses, challClasses := champ.Classes(), chall.Classes()
	var champRight, challRight int
	for i, row := range ev.X {
		truth := ev.Label(i)
		cr := champClasses[champ.Predict(row)] == truth
		hr := challClasses[chall.Predict(row)] == truth
		if cr {
			champRight++
		}
		if hr {
			challRight++
		}
		switch {
		case cr && !hr:
			dec.B++
		case !cr && hr:
			dec.C++
		}
	}
	n := float64(ev.Len())
	dec.ChampAcc = float64(champRight) / n
	dec.ChallAcc = float64(challRight) / n
	if dec.B+dec.C > 0 {
		d := math.Abs(float64(dec.B-dec.C)) - 1
		if d < 0 {
			d = 0
		}
		dec.ChiSq = d * d / float64(dec.B+dec.C)
	}
	// Chi-squared(1) tail probability: P(X >= x) = erfc(sqrt(x/2)).
	dec.P = math.Erfc(math.Sqrt(dec.ChiSq / 2))
	dec.Sweep = eval.ThresholdCurve(chall.Score(ev), eval.DefaultThresholds())
	switch {
	case dec.C <= dec.B:
		dec.Promoted = false
		dec.Reason = fmt.Sprintf("challenger does not win the disagreements (b=%d, c=%d)", dec.B, dec.C)
	case dec.ChallAcc-dec.ChampAcc < cfg.Margin:
		dec.Promoted = false
		dec.Reason = fmt.Sprintf("accuracy margin %.4f below required %g", dec.ChallAcc-dec.ChampAcc, cfg.Margin)
	case dec.P > cfg.Alpha:
		dec.Promoted = false
		dec.Reason = fmt.Sprintf("not significant (p=%.4f > alpha=%g)", dec.P, cfg.Alpha)
	default:
		dec.Promoted = true
		dec.Reason = fmt.Sprintf("challenger wins: acc %.4f vs %.4f, p=%.4f <= alpha=%g",
			dec.ChallAcc, dec.ChampAcc, dec.P, cfg.Alpha)
	}
	return dec
}

// Rollback swaps the pre-promotion champion back in through the guard.
// Exactly one generation of history is kept: a second rollback without
// an intervening promotion fails.
func (l *Loop) Rollback() error {
	l.opMu.Lock()
	defer l.opMu.Unlock()
	l.mu.Lock()
	prev, prevBase, ready := l.prev, l.prevBase, l.prevReady
	l.mu.Unlock()
	if !ready {
		return ErrNoHistory
	}
	err := l.guard(func() error {
		return runOp(func() error {
			_, err := l.mgr.Swap(prev)
			return err
		})
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.mRollbackErr.Inc()
		return err
	}
	l.rollbacks++
	l.mRollbackOK.Inc()
	// Drift must be judged against the reinstated champion's own
	// reference, not the baseline the promotion installed for the model
	// just removed.
	if prevBase != nil {
		l.base = prevBase
	}
	l.prev, l.prevBase, l.prevReady = nil, nil, false
	l.challenger, l.evalSet, l.pendingBase = nil, nil, nil
	l.challengerEpoch++
	l.win.reset()
	l.sinceEval = 0
	l.cooldown = l.cfg.Cooldown
	l.transitionLocked(StateStable, "rolled back to previous champion")
	return nil
}

// Status snapshots the loop for /api/lifecycle and the simulation
// trace.
func (l *Loop) Status() Status {
	if l == nil {
		return Status{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Status{
		State:           l.state,
		Auto:            l.cfg.Auto,
		Generation:      l.mgr.Generation(),
		RowsObserved:    l.rowsSeen,
		WindowRows:      l.win.n,
		CooldownLeft:    l.cooldown,
		DriftEvents:     l.driftEvents,
		MaxFeaturePSI:   l.maxFeatPSI,
		DriftFeature:    l.driftFeat,
		PosteriorPSI:    l.postPSI,
		ChallengerReady: l.challenger != nil,
		ShadowScored:    l.shadowScored,
		Retrains:        l.retrains,
		Promotions:      l.promotions,
		Demotions:       l.demotions,
		Rollbacks:       l.rollbacks,
		RollbackReady:   l.prevReady,
		Ledger:          l.ledger,
		Transitions:     append([]Transition(nil), l.transitions...),
		LastDecision:    l.lastDec,
		Spec:            l.cfg.Spec(),
	}
	return st
}

// State returns the current state name.
func (l *Loop) State() string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state
}

// LedgerSnapshot returns the shadow conservation ledger.
func (l *Loop) LedgerSnapshot() Ledger {
	if l == nil {
		return Ledger{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ledger
}
