package lifecycle

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
)

// Drift is measured with the Population Stability Index over quantile
// bins frozen at training time: for baseline proportions q and window
// proportions p, PSI = sum_i (p_i - q_i) * ln(p_i / q_i). Both sides
// are Laplace-smoothed with the same counts-plus-one rule, so a window
// holding exactly the baseline's row multiset yields PSI == 0 exactly
// (every p_i equals its q_i bit-for-bit), and the statistic is a pure
// function of bin counts — permutation-invariant by construction.

// Baseline freezes the training-time reference the drift monitors
// compare live traffic against: per-feature quantile bin edges and
// smoothed bin proportions, plus the champion's predicted-class mix
// over the training rows (the posterior-drift reference).
type Baseline struct {
	Features []string
	Classes  []string
	Bins     int

	// Rows is the training row count the proportions were computed
	// over (the smoothing denominator).
	Rows int

	// Edges[f] holds Bins-1 ascending interior edges for feature f;
	// values below Edges[f][0] land in bin 0, values at or above the
	// last edge land in bin Bins-1.
	Edges [][]float64

	// FeatProp[f] and ClassProp are the Laplace-smoothed baseline
	// proportions ((count+1) / (n+bins)) per feature bin and per
	// predicted class.
	FeatProp  [][]float64
	ClassProp []float64

	classIdx map[string]int
}

// NewBaseline builds the drift reference from the (raw, unscaled)
// training dataset and the champion's predicted class labels for its
// rows. classes is the champion's class vocabulary; preds must use it.
func NewBaseline(d *dataset.Dataset, preds []string, classes []string, bins int) (*Baseline, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("lifecycle: empty baseline dataset")
	}
	if len(preds) != d.Len() {
		return nil, fmt.Errorf("lifecycle: %d baseline predictions for %d rows", len(preds), d.Len())
	}
	if bins < 2 {
		return nil, fmt.Errorf("lifecycle: need at least 2 bins, got %d", bins)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("lifecycle: empty class vocabulary")
	}
	b := &Baseline{
		Features: append([]string(nil), d.FeatureNames...),
		Classes:  append([]string(nil), classes...),
		Bins:     bins,
		Rows:     d.Len(),
		classIdx: make(map[string]int, len(classes)),
	}
	for i, c := range classes {
		b.classIdx[c] = i
	}

	n := d.Len()
	col := make([]float64, n)
	for f := range b.Features {
		for i, row := range d.X {
			col[i] = row[f]
		}
		sort.Float64s(col)
		edges := make([]float64, 0, bins-1)
		for j := 1; j < bins; j++ {
			edges = append(edges, col[j*n/bins])
		}
		b.Edges = append(b.Edges, edges)
	}

	// Baseline proportions come from rebinning the training rows with
	// the frozen edges (quantile ties make them unequal; what matters
	// is that the window side bins identically).
	featCounts := make([][]int, len(b.Features))
	for f := range featCounts {
		featCounts[f] = make([]int, bins)
	}
	classCounts := make([]int, len(classes))
	for i, row := range d.X {
		for f, x := range row {
			featCounts[f][binOf(b.Edges[f], x)]++
		}
		ci, ok := b.classIdx[preds[i]]
		if !ok {
			return nil, fmt.Errorf("lifecycle: baseline prediction %q not in class vocabulary", preds[i])
		}
		classCounts[ci]++
	}
	b.FeatProp = make([][]float64, len(b.Features))
	for f := range b.FeatProp {
		b.FeatProp[f] = smooth(featCounts[f], n)
	}
	b.ClassProp = smooth(classCounts, n)
	return b, nil
}

// binOf places x into a bin: the number of interior edges <= x, i.e.
// sort.SearchFloat64s for the first edge strictly greater than x. A
// pure function of (edges, x), so identical rows always rebin
// identically regardless of window order.
func binOf(edges []float64, x float64) int {
	return sort.Search(len(edges), func(i int) bool { return edges[i] > x })
}

// smooth converts counts over n observations into Laplace-smoothed
// proportions: (count+1) / (n + len(counts)). Smoothing keeps every
// log ratio finite, and because both baseline and window use the same
// rule, equal counts give exactly equal proportions.
func smooth(counts []int, n int) []float64 {
	out := make([]float64, len(counts))
	den := float64(n + len(counts))
	for i, c := range counts {
		out[i] = float64(c+1) / den
	}
	return out
}

// psi computes the Population Stability Index between two smoothed
// proportion vectors of equal length. Identical vectors give exactly 0:
// every term is (p-q)*ln(p/q) with p == q bit-for-bit.
func psi(p, q []float64) float64 {
	var s float64
	for i := range p {
		if p[i] == q[i] {
			continue
		}
		s += (p[i] - q[i]) * math.Log(p[i]/q[i])
	}
	return s
}

// FeaturePSI computes per-feature PSI for a window of raw rows.
func (b *Baseline) FeaturePSI(rows [][]float64) []float64 {
	out := make([]float64, len(b.Features))
	if len(rows) == 0 {
		return out
	}
	counts := make([]int, b.Bins)
	for f := range b.Features {
		for i := range counts {
			counts[i] = 0
		}
		for _, row := range rows {
			counts[binOf(b.Edges[f], row[f])]++
		}
		out[f] = psi(smooth(counts, len(rows)), b.FeatProp[f])
	}
	return out
}

// PosteriorPSI computes PSI between the window's predicted-class counts
// and the baseline class mix. classCounts is indexed by ClassIndex.
func (b *Baseline) PosteriorPSI(classCounts []int, rows int) float64 {
	if rows == 0 {
		return 0
	}
	return psi(smooth(classCounts, rows), b.ClassProp)
}

// ClassIndex resolves a predicted label to its position in the
// baseline's class vocabulary.
func (b *Baseline) ClassIndex(label string) (int, bool) {
	i, ok := b.classIdx[label]
	return i, ok
}
