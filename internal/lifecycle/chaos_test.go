package lifecycle

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
)

// The lifecycle chaos suite (picked up by `make chaos` alongside the
// server's): every lifecycle.* fault site crossed with every fault
// kind, proving that a failed or wedged retrain/promotion never
// disturbs the serving champion, that control-plane failures trip the
// shared breaker, and that the state machine recovers once faults
// clear.

// armed builds a fault registry with one site armed at rate 1.
func armed(t *testing.T, site string, spec resilience.FaultSpec) *resilience.Faults {
	t.Helper()
	f := resilience.NewFaults(1)
	if err := f.Set(site, spec); err != nil {
		t.Fatal(err)
	}
	return f
}

// breakerGuard reproduces the server's control-plane guard: Allow,
// run, Record — so consecutive lifecycle failures open the same kind
// of breaker the model-reload path uses.
func breakerGuard(b *resilience.Breaker) func(op func() error) error {
	return func(op func() error) error {
		if err := b.Allow(); err != nil {
			return err
		}
		err := op()
		b.Record(err)
		return err
	}
}

func TestChaosLifecycleRetrainErrorNeverDisturbsChampion(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	calls := 0
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { calls++; return res, nil },
		Faults:  armed(t, FaultRetrain, resilience.FaultSpec{Kind: resilience.FaultError, Rate: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := w.mgr.Generation()
	for i := 0; i < 3; i++ {
		if err := l.Retrain(); err == nil {
			t.Fatal("retrain succeeded with an error fault armed at rate 1")
		}
	}
	if calls != 0 {
		t.Fatalf("the fault fires before the trainer, but the trainer ran %d times", calls)
	}
	st := l.Status()
	if w.mgr.Generation() != gen0 || st.ChallengerReady || st.State != StateStable {
		t.Fatalf("failed retrains disturbed the loop: gen=%d st=%+v", w.mgr.Generation(), st)
	}
}

func TestChaosLifecycleRetrainPanicContained(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
		Faults:  armed(t, FaultRetrain, resilience.FaultSpec{Kind: resilience.FaultPanic, Rate: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = l.Retrain() // must degrade to an error, never crash
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("retrain panic fault: err = %v, want contained panic", err)
	}
	if st := l.Status(); st.ChallengerReady || st.State != StateStable {
		t.Fatalf("panicked retrain mutated the loop: %+v", st)
	}
}

func TestChaosLifecycleRetrainLatencyCompletes(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
		Faults: armed(t, FaultRetrain, resilience.FaultSpec{
			Kind: resilience.FaultLatency, Rate: 1, Latency: 30 * time.Millisecond,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := l.Retrain(); err != nil {
		t.Fatalf("a slow retrain must still land: %v", err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Fatalf("latency fault did not wedge the retrain (took %v)", took)
	}
	if st := l.Status(); st.State != StateShadowing || !st.ChallengerReady {
		t.Fatalf("after slow retrain: %+v", st)
	}
}

func TestChaosLifecyclePromoteErrorLeavesChampionServing(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	faults := resilience.NewFaults(1)
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
		Faults:  faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Retrain(); err != nil {
		t.Fatal(err)
	}
	gen0 := w.mgr.Generation()
	if err := faults.Set(FaultPromote, resilience.FaultSpec{Kind: resilience.FaultError, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Decide(); err == nil {
		t.Fatal("promotion succeeded with an error fault armed at rate 1")
	}
	st := l.Status()
	if w.mgr.Generation() != gen0 {
		t.Fatal("a failed promotion advanced the champion generation")
	}
	if st.State != StateShadowing || !st.ChallengerReady {
		t.Fatalf("failed promotion must keep the challenger shadowing for retry: %+v", st)
	}
	// Recovery: disarm, decide again, promotion lands.
	if err := faults.Set(FaultPromote, resilience.FaultSpec{Kind: resilience.FaultError, Rate: 0}); err != nil {
		t.Fatal(err)
	}
	if err := l.Decide(); err != nil {
		t.Fatal(err)
	}
	if w.mgr.Generation() != gen0+1 || l.Status().Promotions != 1 {
		t.Fatal("promotion did not land after the fault cleared")
	}
}

func TestChaosLifecyclePromotePanicContained(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	faults := resilience.NewFaults(1)
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
		Faults:  faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Retrain(); err != nil {
		t.Fatal(err)
	}
	if err := faults.Set(FaultPromote, resilience.FaultSpec{Kind: resilience.FaultPanic, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	gen0 := w.mgr.Generation()
	err = l.Decide()
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("promote panic fault: err = %v, want contained panic", err)
	}
	if w.mgr.Generation() != gen0 || l.State() != StateShadowing {
		t.Fatal("panicked promotion disturbed the champion or lost the challenger")
	}
}

func TestChaosLifecycleShadowFaultsNeverReachServing(t *testing.T) {
	kinds := []resilience.FaultSpec{
		{Kind: resilience.FaultError, Rate: 1},
		{Kind: resilience.FaultPanic, Rate: 1},
		{Kind: resilience.FaultLatency, Rate: 1, Latency: time.Microsecond},
	}
	for _, spec := range kinds {
		t.Run(string(spec.Kind), func(t *testing.T) {
			w := newTestWorld(t)
			res := w.shiftedTrainResult(t)
			l, err := New(smallCfg(), Options{
				Manager: w.mgr, Baseline: w.base,
				Trainer: func() (TrainResult, error) { return res, nil },
				Faults:  armed(t, FaultShadow, spec),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Retrain(); err != nil {
				t.Fatal(err)
			}
			// Observe must never panic or fail the serving path, whatever
			// the shadow site injects.
			rows, _ := shiftedTraffic(51, 40)
			w.observeAll(context.Background(), l, rows)
			lg := l.LedgerSnapshot()
			checkLedger(t, lg)
			if lg.Eligible != uint64(len(rows)) {
				t.Fatalf("eligible %d for %d observed rows", lg.Eligible, len(rows))
			}
			switch spec.Kind {
			case resilience.FaultError, resilience.FaultPanic:
				if lg.Errors != uint64(len(rows)) || lg.Scored != 0 {
					t.Fatalf("%s faults at rate 1 should error every row: %+v", spec.Kind, lg)
				}
				if st := l.State(); st != StateShadowing {
					t.Fatalf("errored shadow rows advanced the state to %s", st)
				}
			case resilience.FaultLatency:
				if lg.Scored != uint64(len(rows)) || lg.Errors != 0 {
					t.Fatalf("latency faults must still score: %+v", lg)
				}
			}
		})
	}
}

// TestChaosLifecycleBreakerTrips drives repeated failed retrains
// through a real breaker wired as the loop's guard (the server's
// shape) and proves open-state fail-fast: the trainer and fault site
// are not even consulted while the breaker is open, and the loop
// recovers through the half-open probe once faults clear.
func TestChaosLifecycleBreakerTrips(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	br := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 3, OpenFor: time.Minute, Now: clock,
	})
	faults := resilience.NewFaults(1)
	if err := faults.Set(FaultRetrain, resilience.FaultSpec{Kind: resilience.FaultError, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { calls++; return res, nil },
		Faults:  faults,
		Guard:   breakerGuard(br),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Retrain(); err == nil {
			t.Fatal("faulted retrain succeeded")
		}
	}
	// Breaker open: fail fast without touching the control plane.
	if err := l.Retrain(); err != resilience.ErrBreakerOpen {
		t.Fatalf("retrain with open breaker: err = %v, want ErrBreakerOpen", err)
	}
	// Recover: clear the fault, advance past OpenFor, half-open probe
	// succeeds and the challenger installs.
	if err := faults.Set(FaultRetrain, resilience.FaultSpec{Kind: resilience.FaultError, Rate: 0}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if err := l.Retrain(); err != nil {
		t.Fatalf("post-recovery retrain: %v", err)
	}
	if calls != 1 {
		t.Fatalf("trainer ran %d times, want exactly the recovery run", calls)
	}
	if st := l.Status(); st.State != StateShadowing || st.Retrains != 1 {
		t.Fatalf("recovered loop: %+v", st)
	}
}
