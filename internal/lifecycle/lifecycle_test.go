package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml/forest"
	"repro/internal/obs/flight"
	"repro/internal/rng"
)

// testWorld is the shared unit-test fixture: a real champion trained on
// the simulation's unshifted world, installed in a real manager, with
// the drift baseline frozen from its own training predictions.
type testWorld struct {
	mgr   *core.ModelManager
	champ *core.JobClassifier
	base  *Baseline
	names []string
}

func newTestWorld(t *testing.T) *testWorld {
	t.Helper()
	train, err := simBootSet(7, 40)
	if err != nil {
		t.Fatal(err)
	}
	champ, err := core.TrainJobClassifier(train, core.ClassifierConfig{
		Algo: core.AlgoForest, Forest: forest.Config{Trees: 30, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := core.NewModelManager(nil)
	if _, err := mgr.Swap(champ); err != nil {
		t.Fatal(err)
	}
	base, err := BaselineFor(train, champ, 10)
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{mgr: mgr, champ: champ, base: base, names: train.FeatureNames}
}

// smallCfg is a loop config sized for unit tests: tiny window, fast
// evaluation cadence, no initial cooldown.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Window = 64
	cfg.MinRows = 64
	cfg.Every = 16
	cfg.DriftThreshold = 0.5
	cfg.PosteriorThreshold = 0.5
	cfg.ShadowMin = 32
	cfg.Cooldown = 64
	cfg.TrainWindow = 320
	cfg.Algo = "rf"
	return cfg
}

// shiftedTrainResult builds a genuinely better challenger: trained on
// the rotated+offset world the champion has never seen.
func (w *testWorld) shiftedTrainResult(t *testing.T) TrainResult {
	t.Helper()
	rows, labels := shiftedTraffic(99, 400)
	res, err := TrainChallenger(w.names, rows, labels, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// shiftedTraffic draws n rows of the post-shift world (class k at class
// k+1's old center, +1.5 everywhere) with their true labels.
func shiftedTraffic(seed uint64, n int) ([][]float64, []string) {
	rows, labels := make([][]float64, n), make([]string, n)
	root := rng.New(seed)
	for i := range rows {
		k := i % simClasses
		rows[i] = simRow(root.Split(uint64(i)), (k+1)%simClasses, 1.5)
		labels[i] = fmt.Sprintf("class%02d", k)
	}
	return rows, labels
}

// stableTraffic draws n rows of the unshifted boot world.
func stableTraffic(seed uint64, n int) [][]float64 {
	rows := make([][]float64, n)
	root := rng.New(seed)
	for i := range rows {
		rows[i] = simRow(root.Split(uint64(i)), i%simClasses, 0)
	}
	return rows
}

// observeAll feeds rows through the loop with the champion's own
// predictions, the way the serving path does.
func (w *testWorld) observeAll(ctx context.Context, l *Loop, rows [][]float64) {
	classes := w.champ.Classes()
	for _, row := range rows {
		l.Observe(ctx, row, classes[w.champ.Predict(row)])
	}
}

func checkLedger(t *testing.T, lg Ledger) {
	t.Helper()
	if lg.Eligible != lg.Scored+lg.Errors {
		t.Fatalf("ledger leaks rows: eligible=%d != scored=%d + errors=%d", lg.Eligible, lg.Scored, lg.Errors)
	}
	if lg.Scored != lg.Agree+lg.Disagree {
		t.Fatalf("ledger leaks verdicts: scored=%d != agree=%d + disagree=%d", lg.Scored, lg.Agree, lg.Disagree)
	}
}

func TestNewValidatesOptions(t *testing.T) {
	w := newTestWorld(t)
	bad := smallCfg()
	bad.Window = 1
	if _, err := New(bad, Options{Manager: w.mgr, Baseline: w.base}); err == nil {
		t.Error("accepted an invalid config")
	}
	if _, err := New(smallCfg(), Options{Baseline: w.base}); err == nil {
		t.Error("accepted a nil manager")
	}
	if _, err := New(smallCfg(), Options{Manager: w.mgr}); err == nil {
		t.Error("accepted a nil baseline")
	}
}

func TestNilLoopIsInert(t *testing.T) {
	var l *Loop
	l.Observe(context.Background(), []float64{1}, "x") // must not panic
	if st := l.Status(); st.State != "" {
		t.Fatalf("nil loop status: %+v", st)
	}
	if l.State() != "" || l.LedgerSnapshot() != (Ledger{}) {
		t.Fatal("nil loop is not inert")
	}
}

func TestDriftFiresOnShiftedTraffic(t *testing.T) {
	w := newTestWorld(t)
	pokes := 0
	l, err := New(smallCfg(), Options{Manager: w.mgr, Baseline: w.base, Notify: func() { pokes++ }})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := shiftedTraffic(21, 96)
	w.observeAll(context.Background(), l, rows)
	st := l.Status()
	if st.State != StateDrifting {
		t.Fatalf("state = %s after shifted traffic, want drifting (maxPSI %v)", st.State, st.MaxFeaturePSI)
	}
	if st.DriftEvents == 0 || st.MaxFeaturePSI < 0.5 {
		t.Fatalf("drift not recorded: %+v", st)
	}
	if pokes == 0 {
		t.Fatal("drift did not poke the notifier")
	}
	if len(st.Transitions) != 1 || st.Transitions[0].To != StateDrifting {
		t.Fatalf("transitions: %+v", st.Transitions)
	}
}

func TestNoDriftOnStableTraffic(t *testing.T) {
	w := newTestWorld(t)
	l, err := New(smallCfg(), Options{Manager: w.mgr, Baseline: w.base})
	if err != nil {
		t.Fatal(err)
	}
	w.observeAll(context.Background(), l, stableTraffic(22, 256))
	st := l.Status()
	if st.State != StateStable || st.DriftEvents != 0 {
		t.Fatalf("stable traffic alarmed: state=%s events=%d maxPSI=%v", st.State, st.DriftEvents, st.MaxFeaturePSI)
	}
}

func TestRetrainInstallsChallengerAndShadowScores(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Retrain(); err != nil {
		t.Fatal(err)
	}
	st := l.Status()
	if st.State != StateShadowing || !st.ChallengerReady || st.Retrains != 1 {
		t.Fatalf("after retrain: %+v", st)
	}

	// Shadow-score through a wide event; the flight tallies must match
	// the ledger exactly.
	fa := flight.NewActive("req-1", "POST", "/api/classify", time.Now())
	ctx := flight.With(context.Background(), fa)
	rows, _ := shiftedTraffic(23, smallCfg().ShadowMin)
	w.observeAll(ctx, l, rows)
	fa.Finalize(200, time.Millisecond)

	st = l.Status()
	if st.State != StatePromoting {
		t.Fatalf("shadow window full but state = %s", st.State)
	}
	checkLedger(t, st.Ledger)
	if st.Ledger.Eligible != uint64(len(rows)) || st.Ledger.Errors != 0 {
		t.Fatalf("ledger: %+v for %d rows", st.Ledger, len(rows))
	}
	if fa.ShadowRows != int64(st.Ledger.Scored) || fa.ShadowAgree != int64(st.Ledger.Agree) {
		t.Fatalf("flight event (rows=%d agree=%d) does not reconcile with ledger %+v",
			fa.ShadowRows, fa.ShadowAgree, st.Ledger)
	}
}

func TestRetrainErrorKeepsState(t *testing.T) {
	w := newTestWorld(t)
	boom := errors.New("warehouse unavailable")
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return TrainResult{}, boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Retrain(); !errors.Is(err, boom) {
		t.Fatalf("retrain error = %v, want %v", err, boom)
	}
	st := l.Status()
	if st.State != StateStable || st.ChallengerReady || st.Retrains != 0 {
		t.Fatalf("failed retrain mutated the loop: %+v", st)
	}

	// A trainer without a loop-wired Trainer must refuse outright.
	l2, err := New(smallCfg(), Options{Manager: w.mgr, Baseline: w.base})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Retrain(); err == nil {
		t.Fatal("retrain without a trainer succeeded")
	}
}

func TestDecidePromotesThenRollback(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := w.mgr.Generation()
	if err := l.Retrain(); err != nil {
		t.Fatal(err)
	}
	if err := l.Decide(); err != nil {
		t.Fatal(err)
	}
	st := l.Status()
	if st.Promotions != 1 || st.State != StateStable || !st.RollbackReady {
		t.Fatalf("after promotion: %+v", st)
	}
	if w.mgr.Generation() != gen0+1 {
		t.Fatalf("generation %d after promotion, want %d", w.mgr.Generation(), gen0+1)
	}
	d := st.LastDecision
	if d == nil || !d.Promoted || d.C <= d.B || d.P > smallCfg().Alpha {
		t.Fatalf("promotion decision does not satisfy the gate: %+v", d)
	}
	if len(d.Sweep) == 0 {
		t.Fatal("promotion decision is missing the threshold sweep")
	}
	if st.CooldownLeft != smallCfg().Cooldown {
		t.Fatalf("cooldown %d after promotion, want %d", st.CooldownLeft, smallCfg().Cooldown)
	}

	// Rollback restores the prior champion; exactly one generation of
	// history is kept.
	if err := l.Rollback(); err != nil {
		t.Fatal(err)
	}
	st = l.Status()
	if st.Rollbacks != 1 || st.RollbackReady {
		t.Fatalf("after rollback: %+v", st)
	}
	if w.mgr.Generation() != gen0+2 {
		t.Fatalf("generation %d after rollback, want %d", w.mgr.Generation(), gen0+2)
	}
	if w.mgr.View().Model != w.champ {
		t.Fatal("rollback did not restore the original champion")
	}
	if err := l.Rollback(); err == nil {
		t.Fatal("second rollback without an intervening promotion succeeded")
	}
}

func TestDecideDemotesOnTie(t *testing.T) {
	w := newTestWorld(t)
	// The "challenger" is the champion itself: zero disagreements, so
	// the gate must refuse and demote.
	_, labels := shiftedTraffic(31, 100)
	rows := stableTraffic(31, 100)
	res, err := TrainChallenger(w.names, rows, labels, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	res.Model = w.champ
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := w.mgr.Generation()
	if err := l.Retrain(); err != nil {
		t.Fatal(err)
	}
	if err := l.Decide(); err != nil {
		t.Fatal(err)
	}
	st := l.Status()
	if st.Demotions != 1 || st.Promotions != 0 || st.State != StateStable || st.ChallengerReady {
		t.Fatalf("after tied gate: %+v", st)
	}
	if w.mgr.Generation() != gen0 {
		t.Fatal("a demotion must not touch the champion")
	}
	if d := st.LastDecision; d == nil || d.Promoted || d.B != 0 || d.C != 0 {
		t.Fatalf("tie decision: %+v", d)
	}
}

func TestPromotionGuardErrorKeepsChallengerShadowing(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	guardErr := error(nil)
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
		Guard: func(op func() error) error {
			if guardErr != nil {
				return guardErr
			}
			return op()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := w.mgr.Generation()
	if err := l.Retrain(); err != nil {
		t.Fatal(err)
	}
	guardErr = errors.New("breaker open")
	if err := l.Decide(); err == nil {
		t.Fatal("promotion through a failing guard succeeded")
	}
	st := l.Status()
	if st.State != StateShadowing || !st.ChallengerReady || st.Promotions != 0 {
		t.Fatalf("after guarded promotion failure: %+v", st)
	}
	if w.mgr.Generation() != gen0 {
		t.Fatal("a failed promotion must not advance the champion generation")
	}
	// The control plane recovers: the same challenger promotes.
	guardErr = nil
	if err := l.Decide(); err != nil {
		t.Fatal(err)
	}
	if w.mgr.Generation() != gen0+1 || l.Status().Promotions != 1 {
		t.Fatal("recovered promotion did not land")
	}
}

func TestStepHonorsAutoFlag(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	manual := smallCfg()
	manual.Auto = false
	l, err := New(manual, Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := shiftedTraffic(41, 96)
	w.observeAll(context.Background(), l, rows)
	if st := l.State(); st != StateDrifting {
		t.Fatalf("state %s, want drifting", st)
	}
	l.Step()
	if st := l.Status(); st.Retrains != 0 || st.State != StateDrifting {
		t.Fatalf("manual loop acted on Step: %+v", st)
	}

	auto, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	w.observeAll(context.Background(), auto, rows)
	auto.Step()
	if st := auto.Status(); st.Retrains != 1 || st.State != StateShadowing {
		t.Fatalf("auto loop did not retrain on Step: %+v", st)
	}
}

// TestDecideScoresAcrossVocabularies pins the promotion gate's label
// (not index) comparison: an evaluation window drawn from only two of
// the champion's four classes builds ClassNames that index differently
// from the champion's own vocabulary — the expected situation under
// drift, where the recent sliding window need not contain every class.
// The champion classifies this unshifted traffic near-perfectly, and
// the gate must see that rather than mis-scoring it through misaligned
// indices (which would wrongly promote the challenger).
func TestDecideScoresAcrossVocabularies(t *testing.T) {
	w := newTestWorld(t)
	n := 200
	rows, labels := make([][]float64, n), make([]string, n)
	root := rng.New(51)
	for i := range rows {
		k := 1 + i%2 // classes 1 and 2 only: eval vocab is a shifted subset
		rows[i] = simRow(root.Split(uint64(i)), k, 0)
		labels[i] = fmt.Sprintf("class%02d", k)
	}
	res, err := TrainChallenger(w.names, rows, labels, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Eval.ClassNames) != 2 {
		t.Fatalf("eval vocabulary %v, want the two window classes", res.Eval.ClassNames)
	}
	dec := decide(w.champ, res.Model, res.Eval, smallCfg())
	if dec.ChampAcc < 0.9 {
		t.Fatalf("champion accuracy %v on its own unshifted classes: the gate is comparing class indices across vocabularies", dec.ChampAcc)
	}
	if dec.Promoted {
		t.Fatalf("a challenger no better than the champion was promoted: %+v", dec)
	}
}

// TestRetrainRejectsMismatchedEvalVocabulary pins the Retrain-time
// invariant the threshold sweep relies on: the challenger must share
// the evaluation window's class vocabulary.
func TestRetrainRejectsMismatchedEvalVocabulary(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	// Swap in an evaluation window whose vocabulary the challenger was
	// not trained on (two classes instead of four).
	rows, labels := make([][]float64, 40), make([]string, 40)
	root := rng.New(52)
	for i := range rows {
		k := i % 2
		rows[i] = simRow(root.Split(uint64(i)), k, 0)
		labels[i] = fmt.Sprintf("class%02d", k)
	}
	narrow, err := dataset.New(w.names, rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	res.Eval = narrow
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Retrain(); err == nil {
		t.Fatal("retrain accepted a challenger whose classes do not match the evaluation window")
	}
	if st := l.Status(); st.ChallengerReady || st.State != StateStable {
		t.Fatalf("rejected retrain mutated the loop: %+v", st)
	}
}

// TestRollbackRestoresDriftBaseline pins that a rollback reinstates the
// pre-promotion champion's drift baseline along with the model: leaving
// the promoted challenger's baseline in place would measure the
// restored champion against the removed model's reference.
func TestRollbackRestoresDriftBaseline(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	if res.Baseline == nil {
		t.Fatal("fixture challenger carries no baseline")
	}
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Retrain(); err != nil {
		t.Fatal(err)
	}
	if err := l.Decide(); err != nil {
		t.Fatal(err)
	}
	if l.base != res.Baseline {
		t.Fatal("promotion did not install the challenger's baseline")
	}
	if err := l.Rollback(); err != nil {
		t.Fatal(err)
	}
	if l.base != w.base {
		t.Fatal("rollback kept the promoted challenger's drift baseline")
	}
}

// TestConcurrentDecideCannotDoublePromote pins the control-plane
// serialization: an admin promotion racing the auto Step goroutine
// (here, two concurrent Decide calls under live shadow traffic) must
// promote the challenger exactly once, and the shadow ledger must still
// conserve every row.
func TestConcurrentDecideCannotDoublePromote(t *testing.T) {
	w := newTestWorld(t)
	res := w.shiftedTrainResult(t)
	l, err := New(smallCfg(), Options{
		Manager: w.mgr, Baseline: w.base,
		Trainer: func() (TrainResult, error) { return res, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := w.mgr.Generation()
	if err := l.Retrain(); err != nil {
		t.Fatal(err)
	}
	rows, _ := shiftedTraffic(61, 128)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		w.observeAll(context.Background(), l, rows)
	}()
	errs := make([]error, 2)
	for i := range errs {
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Decide()
		}(i)
	}
	wg.Wait()
	okCount := 0
	for _, err := range errs {
		switch {
		case err == nil:
			okCount++
		case !errors.Is(err, ErrNoChallenger):
			t.Fatalf("concurrent decide failed unexpectedly: %v", err)
		}
	}
	if okCount != 1 {
		t.Fatalf("%d of 2 concurrent decides promoted, want exactly 1", okCount)
	}
	st := l.Status()
	if st.Promotions != 1 || st.Demotions != 0 {
		t.Fatalf("after racing decides: %+v", st)
	}
	if g := w.mgr.Generation(); g != gen0+1 {
		t.Fatalf("generation %d after racing decides, want %d", g, gen0+1)
	}
	checkLedger(t, st.Ledger)
}

func TestWindowRingWrapsAndCounts(t *testing.T) {
	win := newWindow(4)
	for i := 0; i < 6; i++ {
		cls := i % 2
		if i == 5 {
			cls = -1 // outside the vocabulary: kept, not counted
		}
		win.add([]float64{float64(i)}, cls)
	}
	rows, counts := win.snapshot(2)
	if len(rows) != 4 || rows[0][0] != 2 || rows[3][0] != 5 {
		t.Fatalf("ring contents: %v", rows)
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("class counts: %v", counts)
	}
	win.reset()
	if rows, _ := win.snapshot(2); len(rows) != 0 {
		t.Fatalf("reset ring still holds %d rows", len(rows))
	}
}
