// Package lifecycle closes the serving loop: it watches live classify
// traffic for feature and posterior drift against a training-time
// baseline, retrains a challenger on drift (or operator demand), scores
// the challenger in shadow behind the serving champion, and promotes it
// through the schema-validated ModelManager swap when a paired
// significance test over a labeled evaluation window says the
// challenger wins. The state machine is
//
//	stable -> drifting -> shadowing -> promoting -> stable
//
// and every edge is observable (lifecycle_* metrics, /api/lifecycle)
// and fault-injectable (lifecycle.retrain / lifecycle.promote /
// lifecycle.shadow). A deterministic simulation harness (sim.go)
// replays the whole arc bit-identically at any worker count.
package lifecycle

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Config parameterizes the loop. The canonical wire form is the spec
// string (ParseSpec / Spec) the -lifecycle flag compiles down to; the
// round-trip ParseSpec(c.Spec()) == c is fuzz-pinned.
type Config struct {
	// Window is the sliding drift window: the most recent Window
	// admitted classify rows (and the champion's predicted classes for
	// them) are what drift is measured over.
	Window int
	// Bins is the quantile bin count of the PSI statistic.
	Bins int
	// MinRows is how full the window must be before drift is evaluated.
	MinRows int
	// Every evaluates drift once per this many observed rows (amortizes
	// the O(Window x Features) statistic off the per-row path).
	Every int
	// DriftThreshold is the per-feature PSI alarm level: drift fires
	// when any feature's PSI meets it.
	DriftThreshold float64
	// PosteriorThreshold is the alarm level for PSI over the predicted
	// class mix (concept drift the feature marginals can miss).
	PosteriorThreshold float64
	// ShadowMin is how many shadow-scored rows must accumulate before
	// the loop moves from shadowing to the promotion decision.
	ShadowMin int
	// Alpha is the significance level of the McNemar paired test the
	// promotion gate runs over champion/challenger disagreements.
	Alpha float64
	// Margin is the minimum evaluation-accuracy margin (challenger
	// minus champion) promotion additionally requires.
	Margin float64
	// Cooldown is how many observed rows drift stays disarmed after a
	// promotion, demotion, or rollback (the window refills with traffic
	// scored by the new regime before it is judged again).
	Cooldown int
	// TrainWindow is the sliding window of most-recent warehouse rows
	// the retrainer fits the challenger on.
	TrainWindow int
	// Algo is the challenger family: nb, rf, svm, or stack (the
	// NB+RF+SVM ensemble under a softmax meta-learner).
	Algo string
	// Seed drives retraining and the simulation harness.
	Seed uint64
	// Auto lets the loop act on its own: retrain when drift fires and
	// decide promotion when the shadow window fills. When false the
	// loop only observes; retrain/promote wait for the admin endpoints.
	Auto bool
}

// Defaults for spec keys the caller omits.
const (
	defWindow    = 256
	defBins      = 10
	defEvery     = 32
	defDrift     = 0.2
	defShadowMin = 200
	defAlpha     = 0.05
	defCooldown  = 256
	defTrain     = 4096
	defAlgo      = "stack"
)

// DefaultConfig returns the serving defaults (Auto on).
func DefaultConfig() Config {
	return Config{
		Window:             defWindow,
		Bins:               defBins,
		MinRows:            defWindow,
		Every:              defEvery,
		DriftThreshold:     defDrift,
		PosteriorThreshold: defDrift,
		ShadowMin:          defShadowMin,
		Alpha:              defAlpha,
		Margin:             0,
		Cooldown:           defCooldown,
		TrainWindow:        defTrain,
		Algo:               defAlgo,
		Auto:               true,
	}
}

// validAlgo matches core's Algorithm vocabulary (plus the stack).
func validAlgo(a string) bool {
	switch a {
	case "nb", "rf", "svm", "stack":
		return true
	}
	return false
}

// Validate checks a config for use by New.
func (c Config) Validate() error {
	switch {
	case c.Window < 8 || c.Window > 1<<20:
		return fmt.Errorf("lifecycle: window %d outside [8, 1048576]", c.Window)
	case c.Bins < 2 || c.Bins > 1024:
		return fmt.Errorf("lifecycle: bins %d outside [2, 1024]", c.Bins)
	case c.MinRows < c.Bins || c.MinRows > c.Window:
		return fmt.Errorf("lifecycle: min %d outside [bins=%d, window=%d]", c.MinRows, c.Bins, c.Window)
	case c.Every < 1 || c.Every > c.Window:
		return fmt.Errorf("lifecycle: every %d outside [1, window=%d]", c.Every, c.Window)
	case math.IsNaN(c.DriftThreshold) || c.DriftThreshold <= 0 || c.DriftThreshold > 100:
		return fmt.Errorf("lifecycle: drift %v outside (0, 100]", c.DriftThreshold)
	case math.IsNaN(c.PosteriorThreshold) || c.PosteriorThreshold <= 0 || c.PosteriorThreshold > 100:
		return fmt.Errorf("lifecycle: pdrift %v outside (0, 100]", c.PosteriorThreshold)
	case c.ShadowMin < 1 || c.ShadowMin > 1<<20:
		return fmt.Errorf("lifecycle: shadowmin %d outside [1, 1048576]", c.ShadowMin)
	case math.IsNaN(c.Alpha) || c.Alpha <= 0 || c.Alpha >= 1:
		return fmt.Errorf("lifecycle: alpha %v outside (0, 1)", c.Alpha)
	case math.IsNaN(c.Margin) || c.Margin < 0 || c.Margin > 1:
		return fmt.Errorf("lifecycle: margin %v outside [0, 1]", c.Margin)
	case c.Cooldown < 0 || c.Cooldown > 1<<20:
		return fmt.Errorf("lifecycle: cooldown %d outside [0, 1048576]", c.Cooldown)
	case c.TrainWindow < 8 || c.TrainWindow > 1<<24:
		return fmt.Errorf("lifecycle: train %d outside [8, 16777216]", c.TrainWindow)
	case !validAlgo(c.Algo):
		return fmt.Errorf("lifecycle: algo %q not one of nb, rf, svm, stack", c.Algo)
	}
	return nil
}

// ParseSpec parses a lifecycle spec: comma- or whitespace-separated k=v
// pairs, e.g.
//
//	window=256,bins=10,drift=0.2,shadowmin=200,alpha=0.05,algo=stack,auto=true
//
// Keys: window, bins, min, every, drift, pdrift, shadowmin, alpha,
// margin, cooldown, train, algo, seed, auto. Every key defaults sanely;
// an empty spec is the default config. The returned config always
// passes Validate.
func ParseSpec(s string) (Config, error) {
	cfg := DefaultConfig()
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n'
	})
	seen := map[string]bool{}
	minSet := false
	for _, field := range fields {
		key, val, ok := strings.Cut(field, "=")
		if !ok || key == "" || val == "" {
			return Config{}, fmt.Errorf("lifecycle: spec entry %q is not key=value", field)
		}
		if seen[key] {
			return Config{}, fmt.Errorf("lifecycle: spec key %q given twice", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "window":
			cfg.Window, err = parseInt(key, val)
		case "bins":
			cfg.Bins, err = parseInt(key, val)
		case "min":
			cfg.MinRows, err = parseInt(key, val)
			minSet = true
		case "every":
			cfg.Every, err = parseInt(key, val)
		case "drift":
			cfg.DriftThreshold, err = parseFloat(key, val)
		case "pdrift":
			cfg.PosteriorThreshold, err = parseFloat(key, val)
		case "shadowmin":
			cfg.ShadowMin, err = parseInt(key, val)
		case "alpha":
			cfg.Alpha, err = parseFloat(key, val)
		case "margin":
			cfg.Margin, err = parseFloat(key, val)
		case "cooldown":
			cfg.Cooldown, err = parseInt(key, val)
		case "train":
			cfg.TrainWindow, err = parseInt(key, val)
		case "algo":
			cfg.Algo = val
		case "seed":
			cfg.Seed, err = parseUint(key, val)
		case "auto":
			cfg.Auto, err = strconv.ParseBool(val)
			if err != nil {
				err = fmt.Errorf("lifecycle: bad auto %q: not a bool", val)
			}
		default:
			return Config{}, fmt.Errorf("lifecycle: unknown spec key %q", key)
		}
		if err != nil {
			return Config{}, err
		}
	}
	if !minSet {
		// The min default tracks the configured window, not the default
		// window: "evaluate once the window is full" unless overridden.
		cfg.MinRows = cfg.Window
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Spec renders the config canonically; ParseSpec(c.Spec()) returns an
// identical config (keys sorted, floats in shortest form).
func (c Config) Spec() string {
	pairs := map[string]string{
		"window":    strconv.Itoa(c.Window),
		"bins":      strconv.Itoa(c.Bins),
		"min":       strconv.Itoa(c.MinRows),
		"every":     strconv.Itoa(c.Every),
		"drift":     strconv.FormatFloat(c.DriftThreshold, 'g', -1, 64),
		"pdrift":    strconv.FormatFloat(c.PosteriorThreshold, 'g', -1, 64),
		"shadowmin": strconv.Itoa(c.ShadowMin),
		"alpha":     strconv.FormatFloat(c.Alpha, 'g', -1, 64),
		"margin":    strconv.FormatFloat(c.Margin, 'g', -1, 64),
		"cooldown":  strconv.Itoa(c.Cooldown),
		"train":     strconv.Itoa(c.TrainWindow),
		"algo":      c.Algo,
		"seed":      strconv.FormatUint(c.Seed, 10),
		"auto":      strconv.FormatBool(c.Auto),
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+pairs[k])
	}
	return strings.Join(parts, ",")
}

func parseFloat(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("lifecycle: bad %s %q: %v", key, val, err)
	}
	return f, nil
}

func parseInt(key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("lifecycle: bad %s %q: %v", key, val, err)
	}
	return n, nil
}

func parseUint(key, val string) (uint64, error) {
	n, err := strconv.ParseUint(val, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("lifecycle: bad %s %q: %v", key, val, err)
	}
	return n, nil
}
