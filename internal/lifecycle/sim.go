package lifecycle

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml/ensemble"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/testkit"
)

// Simulation modes: how much of the loop is armed. The parity contract
// is ModeShadow == ModeOff on every served byte — monitoring and
// shadow scoring must be invisible to clients; only ModeFull (which
// can promote) may change served answers, and only after promotion.
const (
	// ModeFull arms the whole loop: drift -> retrain -> shadow ->
	// promotion decision.
	ModeFull = "full"
	// ModeShadow retrains and shadow-scores on drift but never runs
	// the promotion decision: the serving champion is immutable.
	ModeShadow = "shadow"
	// ModeOff runs no loop at all: the byte-parity reference.
	ModeOff = "off"
)

// SimConfig drives one deterministic lifecycle simulation: a seeded
// traffic schedule over synthetic Gaussian-blob classes with a
// distribution shift injected at a known tick. The shift is built to
// exercise both halves of the loop: every feature gains a uniform
// offset (so the frozen-bin PSI monitors see the marginals move), and
// each class's rows relocate to its neighbor's old region (so the
// frozen champion's answers become genuinely wrong and a retrained
// challenger can win the promotion gate rather than merely tie it).
type SimConfig struct {
	Seed        uint64
	Ticks       int     // total ticks (default 24)
	RowsPerTick int     // classify rows per tick (default 120)
	ShiftTick   int     // first tick serving shifted traffic (default Ticks/3)
	Shift       float64 // uniform offset added to every feature after the shift (default 1.5)
	Workers     int     // inference fan-out width (default 1)
	Threshold   float64 // classify threshold (default 0.5)
	Mode        string  // ModeFull | ModeShadow | ModeOff (default ModeFull)
	Lifecycle   Config  // loop config (zero value = SimLifecycleConfig)
}

// SimLifecycleConfig is the loop config the simulation defaults to:
// small windows so the whole arc fits in a few thousand rows, a drift
// threshold comfortably above small-window sampling noise (the
// injected shift lands around PSI 3), and a random-forest challenger
// (fast to retrain; TestLifecycleSimStack covers the stacked
// ensemble).
func SimLifecycleConfig() Config {
	cfg := DefaultConfig()
	cfg.Window = 240
	cfg.MinRows = 240
	cfg.Every = 40
	cfg.DriftThreshold = 0.5
	cfg.PosteriorThreshold = 0.5
	cfg.ShadowMin = 240
	cfg.Cooldown = 240
	cfg.TrainWindow = 960
	cfg.Algo = "rf"
	return cfg
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Ticks <= 0 {
		c.Ticks = 24
	}
	if c.RowsPerTick <= 0 {
		c.RowsPerTick = 120
	}
	if c.ShiftTick <= 0 {
		c.ShiftTick = c.Ticks / 3
	}
	if c.Shift == 0 {
		c.Shift = 1.5
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	if c.Mode == "" {
		c.Mode = ModeFull
	}
	if c.Lifecycle == (Config{}) {
		c.Lifecycle = SimLifecycleConfig()
	}
	return c
}

// SimResult is everything a simulation proves, pinned by the golden
// corpus and the parity tests.
type SimResult struct {
	// Trace is the deterministic human-readable arc (the golden
	// artifact): per-tick state lines, transitions, the promotion
	// decision, and the ledgers.
	Trace string
	// ServedDigest hashes every served (label, probability) pair in
	// arrival order — the byte-parity handle.
	ServedDigest string
	// TickDigests is the per-tick prefix of ServedDigest, for
	// prefix-parity against a promoting run.
	TickDigests []string
	// DriftTick is the first tick whose end saw a non-stable state
	// (-1: drift never fired). PromoteTick is the tick whose end
	// performed a promotion (-1: none).
	DriftTick   int
	PromoteTick int
	// FinalGeneration is the champion generation after the last tick
	// (1 = the boot model, untouched).
	FinalGeneration uint64
	Ledger          Ledger
	FlightStats     flight.Stats
	Status          Status
	Decision        *Decision
}

// simClasses / simFeatures shape the synthetic traffic.
const (
	simClasses  = 4
	simFeatures = 6
	simSpread   = 0.35
)

// simCenter lays out the class centers the boot training set and the
// live traffic both draw from. The modulus layout keeps every pair of
// classes apart on most features by at least a unit (vs spread 0.35),
// so the world is genuinely learnable and accuracy swings in the arc
// are attributable to the injected shift, not to class collisions.
func simCenter(k, f int) float64 {
	return float64((5*k+3*f)%11) + 0.5*float64(k)
}

// simRow draws one traffic row for class k from stream r, shifted by
// shift on every feature.
func simRow(r *rng.Rand, k int, shift float64) []float64 {
	row := make([]float64, simFeatures)
	for f := range row {
		row[f] = simCenter(k, f) + simSpread*r.Normal() + shift
	}
	return row
}

// simBootSet generates the champion's (unshifted) training set from
// the same world as the live traffic: rowsPerClass rows per class,
// one split stream per class.
func simBootSet(seed uint64, rowsPerClass int) (*dataset.Dataset, error) {
	root := rng.New(seed + 0xb007)
	var rows [][]float64
	var labels []string
	for k := 0; k < simClasses; k++ {
		r := root.Split(uint64(k))
		for i := 0; i < rowsPerClass; i++ {
			rows = append(rows, simRow(r, k, 0))
			labels = append(labels, fmt.Sprintf("class%02d", k))
		}
	}
	names := make([]string, simFeatures)
	for f := range names {
		names[f] = fmt.Sprintf("feat%02d", f)
	}
	return dataset.New(names, rows, labels)
}

// challengerConfig maps the loop's algo name onto a trainer config.
func challengerConfig(algo string, seed uint64) core.ClassifierConfig {
	switch algo {
	case "nb":
		return core.ClassifierConfig{Algo: core.AlgoBayes}
	case "svm":
		return core.PaperSVM(seed)
	case "stack":
		// A lighter SVM base than the paper's C=1000: the stack retrains
		// inside the serving loop, so fit time matters more than the
		// last fraction of a percent the huge C buys offline.
		return core.ClassifierConfig{Algo: core.AlgoStack, Stack: ensemble.Config{
			Seed:   seed,
			Forest: forest.Config{Trees: 40, Seed: seed},
			SVM:    svm.Config{Kernel: svm.RBF{Gamma: 0.1}, C: 10, Probability: true, Seed: seed},
		}}
	default:
		return core.ClassifierConfig{Algo: core.AlgoForest, Forest: forest.Config{Trees: 50, Seed: seed}}
	}
}

// RunSim replays the seeded traffic schedule through a fresh champion
// + loop and returns the full deterministic record. Per-tick inference
// fans out over cfg.Workers with ordered results, then the loop
// observes rows serially in arrival order — so every artifact is
// bit-identical at any worker count.
func RunSim(cfg SimConfig) (*SimResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Lifecycle.Validate(); err != nil {
		return nil, err
	}

	// Boot world: train the champion on unshifted data, freeze the
	// drift baseline from its own training-set predictions.
	train, err := simBootSet(cfg.Seed, 60)
	if err != nil {
		return nil, fmt.Errorf("lifecycle sim: boot set: %w", err)
	}
	champion, err := core.TrainJobClassifier(train, challengerConfig("rf", cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("lifecycle sim: champion: %w", err)
	}
	reg := obs.NewRegistry()
	mgr := core.NewModelManager(reg)
	if _, err := mgr.Swap(champion); err != nil {
		return nil, fmt.Errorf("lifecycle sim: boot swap: %w", err)
	}
	base, err := BaselineFor(train, champion, cfg.Lifecycle.Bins)
	if err != nil {
		return nil, err
	}

	// The labeled history the trainer's sliding window draws from.
	var histRows [][]float64
	var histLabels []string
	lcCfg := cfg.Lifecycle
	lcCfg.Seed = cfg.Seed
	trainer := func() (TrainResult, error) {
		n := len(histRows)
		w := lcCfg.TrainWindow
		if w > n {
			w = n
		}
		return TrainChallenger(train.FeatureNames, histRows[n-w:], histLabels[n-w:], lcCfg)
	}

	var loop *Loop
	if cfg.Mode != ModeOff {
		loop, err = New(lcCfg, Options{
			Manager:  mgr,
			Trainer:  trainer,
			Baseline: base,
			Registry: reg,
		})
		if err != nil {
			return nil, err
		}
	}

	rec := flight.NewRecorder(flight.Config{Capacity: 64, SampleEvery: 1})
	root := rng.New(cfg.Seed + 0x5eed)
	res := &SimResult{DriftTick: -1, PromoteTick: -1}
	var trace, served strings.Builder
	testkit.Section(&trace, "lifecycle simulation")
	// Workers deliberately do not appear in the trace: the record must
	// be byte-identical at any fan-out width.
	fmt.Fprintf(&trace, "mode=%s ticks=%d rows/tick=%d shift@%d=%s\n",
		cfg.Mode, cfg.Ticks, cfg.RowsPerTick, cfg.ShiftTick, testkit.Float(cfg.Shift))
	fmt.Fprintf(&trace, "spec=%s\n", lcCfg.Spec())
	testkit.Section(&trace, "ticks")

	type answer struct {
		label string
		prob  float64
	}
	for t := 0; t < cfg.Ticks; t++ {
		// Generate the tick's rows deterministically: class round-robin,
		// one split RNG stream per row, mean shift after ShiftTick.
		tickStream := root.Split(uint64(t))
		rows := make([][]float64, cfg.RowsPerTick)
		labels := make([]string, cfg.RowsPerTick)
		shifted := t >= cfg.ShiftTick
		for i := range rows {
			k := (t*cfg.RowsPerTick + i) % simClasses
			ck, shift := k, 0.0
			if shifted {
				// The shifted world: class k's rows now live at class
				// k+1's old center plus a uniform offset. The offset
				// moves the marginals (PSI fires); the rotation makes
				// the frozen champion answer the old tenant's label.
				ck, shift = (k+1)%simClasses, cfg.Shift
			}
			rows[i] = simRow(tickStream.Split(uint64(i)), ck, shift)
			labels[i] = fmt.Sprintf("class%02d", k)
		}

		// Serve the tick: parallel inference with ordered results (the
		// batch endpoint's shape), one view for the whole tick (swaps
		// only land at tick boundaries).
		view := mgr.View()
		fa := flight.NewActive(fmt.Sprintf("tick-%03d", t), "POST", "/sim/classify", time.Now())
		ctx := flight.With(context.Background(), fa)
		answers, err := parallel.Map(cfg.Workers, len(rows), func(i int) (answer, error) {
			label, prob, _ := view.Model.Classify(rows[i], cfg.Threshold)
			return answer{label, prob}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("lifecycle sim: tick %d: %w", t, err)
		}
		// Observe serially in arrival order: window contents and shadow
		// tallies are order-defined, never scheduling-defined.
		for i, a := range answers {
			loop.Observe(ctx, rows[i], a.label)
			fmt.Fprintf(&served, "%s:%s\n", a.label, testkit.Float(a.prob))
		}
		fa.Finalize(200, time.Millisecond)
		rec.Record(fa)
		histRows = append(histRows, rows...)
		histLabels = append(histLabels, labels...)

		// Tick boundary: the loop acts (mode-dependent).
		if loop != nil {
			switch cfg.Mode {
			case ModeFull:
				loop.Step()
			case ModeShadow:
				if loop.State() == StateDrifting {
					_ = loop.Retrain()
				}
			}
		}

		st := loop.Status()
		if cfg.Mode == ModeOff {
			st = Status{State: StateStable, Generation: mgr.Generation()}
		}
		if res.DriftTick < 0 && (st.State != StateStable || st.DriftEvents > 0) {
			res.DriftTick = t
		}
		if res.PromoteTick < 0 && st.Promotions > 0 {
			res.PromoteTick = t
		}
		res.TickDigests = append(res.TickDigests, testkit.HashBytes([]byte(served.String())))
		fmt.Fprintf(&trace, "tick %03d state=%-9s gen=%d drift_events=%d maxPSI=%s postPSI=%s scored=%d agree=%d\n",
			t, st.State, st.Generation, st.DriftEvents,
			testkit.Float(st.MaxFeaturePSI), testkit.Float(st.PosteriorPSI),
			st.Ledger.Scored, st.Ledger.Agree)
	}

	res.Status = loop.Status()
	if cfg.Mode == ModeOff {
		res.Status = Status{State: StateStable, Generation: mgr.Generation()}
	}
	res.Decision = res.Status.LastDecision
	res.Ledger = res.Status.Ledger
	res.FinalGeneration = mgr.Generation()
	res.FlightStats = rec.Stats()
	res.ServedDigest = testkit.HashBytes([]byte(served.String()))

	testkit.Section(&trace, "transitions")
	for _, tr := range res.Status.Transitions {
		fmt.Fprintf(&trace, "row %05d %s -> %s (%s)\n", tr.Row, tr.From, tr.To, tr.Reason)
	}
	if d := res.Decision; d != nil {
		testkit.Section(&trace, "decision")
		fmt.Fprintf(&trace, "evalRows=%d champAcc=%s challAcc=%s b=%d c=%d chiSq=%s p=%s promoted=%v\n",
			d.EvalRows, testkit.Float(d.ChampAcc), testkit.Float(d.ChallAcc),
			d.B, d.C, testkit.Float(d.ChiSq), testkit.Float(d.P), d.Promoted)
		fmt.Fprintf(&trace, "reason=%s\n", d.Reason)
		for _, p := range d.Sweep {
			if p.Threshold == 0.5 || p.Threshold == 0.9 {
				fmt.Fprintf(&trace, "sweep t=%s classified=%s correct=%s\n",
					testkit.Float(p.Threshold), testkit.Float(p.Classified), testkit.Float(p.CorrectlyClassified))
			}
		}
	}
	testkit.Section(&trace, "ledger")
	fmt.Fprintf(&trace, "eligible=%d scored=%d errors=%d agree=%d disagree=%d\n",
		res.Ledger.Eligible, res.Ledger.Scored, res.Ledger.Errors, res.Ledger.Agree, res.Ledger.Disagree)
	fmt.Fprintf(&trace, "flight shadowRows=%d shadowAgree=%d\n",
		res.FlightStats.ShadowRows, res.FlightStats.ShadowAgree)
	testkit.Section(&trace, "result")
	fmt.Fprintf(&trace, "driftTick=%d promoteTick=%d finalGen=%d servedDigest=%s\n",
		res.DriftTick, res.PromoteTick, res.FinalGeneration, res.ServedDigest)
	res.Trace = trace.String()
	return res, nil
}

// BaselineFor freezes a drift baseline from a model's own predictions
// over its (raw) training rows.
func BaselineFor(d *dataset.Dataset, model *core.JobClassifier, bins int) (*Baseline, error) {
	preds := make([]string, d.Len())
	classes := model.Classes()
	for i, row := range d.X {
		preds[i] = classes[model.Predict(row)]
	}
	return NewBaseline(d, preds, classes, bins)
}

// TrainChallenger fits a challenger on a labeled sliding window,
// holding out every fifth row as the promotion gate's evaluation
// window, and rebuilds the drift baseline from the challenger's view
// of its own training rows.
func TrainChallenger(featNames []string, rows [][]float64, labels []string, cfg Config) (TrainResult, error) {
	if len(rows) < 16 {
		return TrainResult{}, fmt.Errorf("lifecycle: %d window rows is too few to retrain", len(rows))
	}
	full, err := dataset.New(featNames, rows, labels)
	if err != nil {
		return TrainResult{}, fmt.Errorf("lifecycle: challenger window: %w", err)
	}
	var trainIdx, evalIdx []int
	for i := 0; i < full.Len(); i++ {
		if i%5 == 4 {
			evalIdx = append(evalIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	trainDS, evalDS := full.Subset(trainIdx), full.Subset(evalIdx)
	model, err := core.TrainJobClassifier(trainDS, challengerConfig(cfg.Algo, cfg.Seed))
	if err != nil {
		return TrainResult{}, fmt.Errorf("lifecycle: challenger train: %w", err)
	}
	base, err := BaselineFor(trainDS, model, cfg.Bins)
	if err != nil {
		return TrainResult{}, err
	}
	return TrainResult{Model: model, Eval: evalDS, Baseline: base}, nil
}
