package lifecycle

import (
	"strings"
	"testing"
)

func TestParseSpecEmptyIsDefault(t *testing.T) {
	cfg, err := ParseSpec("")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if cfg != DefaultConfig() {
		t.Fatalf("empty spec is not the default config:\n got:  %+v\n want: %+v", cfg, DefaultConfig())
	}
}

func TestParseSpecOverrides(t *testing.T) {
	cfg, err := ParseSpec("window=512,bins=8,every=64,drift=0.4,pdrift=0.3,shadowmin=100,alpha=0.01,margin=0.02,cooldown=0,train=2048,algo=rf,seed=9,auto=false")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Window: 512, Bins: 8, MinRows: 512, Every: 64,
		DriftThreshold: 0.4, PosteriorThreshold: 0.3,
		ShadowMin: 100, Alpha: 0.01, Margin: 0.02, Cooldown: 0,
		TrainWindow: 2048, Algo: "rf", Seed: 9, Auto: false,
	}
	if cfg != want {
		t.Fatalf("parsed config:\n got:  %+v\n want: %+v", cfg, want)
	}
}

// The min default tracks the configured window ("evaluate once full"),
// not the default window; an explicit min wins.
func TestParseSpecMinTracksWindow(t *testing.T) {
	cfg, err := ParseSpec("window=512")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MinRows != 512 {
		t.Fatalf("min should default to the configured window: got %d", cfg.MinRows)
	}
	cfg, err = ParseSpec("window=512,min=64")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MinRows != 64 {
		t.Fatalf("explicit min should win: got %d", cfg.MinRows)
	}
}

func TestParseSpecSeparators(t *testing.T) {
	a, err := ParseSpec("window=64,algo=nb")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("window=64 algo=nb")
	if err != nil {
		t.Fatal(err)
	}
	c, err := ParseSpec("window=64\talgo=nb\n")
	if err != nil {
		t.Fatal(err)
	}
	if a != b || b != c {
		t.Fatalf("separator forms diverged: %+v vs %+v vs %+v", a, b, c)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		spec string
		frag string // expected error fragment
	}{
		{"window", "not key=value"},
		{"window=", "not key=value"},
		{"=64", "not key=value"},
		{"window=64,window=128", "given twice"},
		{"windw=64", "unknown spec key"},
		{"window=abc", "bad window"},
		{"drift=NaN", "outside (0, 100]"},
		{"alpha=1", "outside (0, 1)"},
		{"alpha=0", "outside (0, 1)"},
		{"margin=2", "outside [0, 1]"},
		{"window=4", "outside [8, 1048576]"},
		{"bins=1", "outside [2, 1024]"},
		{"min=4", "outside [bins=10"},
		{"every=0", "outside [1"},
		{"shadowmin=0", "outside [1, 1048576]"},
		{"cooldown=-1", "outside [0, 1048576]"},
		{"train=4", "outside [8, 16777216]"},
		{"algo=knn", "not one of nb, rf, svm, stack"},
		{"seed=-1", "bad seed"},
		{"auto=maybe", "not a bool"},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("spec %q: accepted, want error containing %q", tc.spec, tc.frag)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("spec %q: error %q does not contain %q", tc.spec, err, tc.frag)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"",
		"window=512,bins=8,min=64,every=64,drift=0.4,algo=svm,seed=3,auto=false",
		"shadowmin=1000,alpha=0.001,margin=0.05",
	} {
		cfg, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		canon := cfg.Spec()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q does not re-parse: %v", canon, err)
		}
		if back != cfg {
			t.Fatalf("round trip diverged for %q:\n cfg:  %+v\n back: %+v", spec, cfg, back)
		}
		if back.Spec() != canon {
			t.Fatalf("canonical render unstable: %q vs %q", canon, back.Spec())
		}
	}
}

func TestValidateRejects(t *testing.T) {
	mut := []struct {
		name string
		f    func(*Config)
	}{
		{"window too small", func(c *Config) { c.Window = 4 }},
		{"bins too big", func(c *Config) { c.Bins = 2048 }},
		{"min above window", func(c *Config) { c.MinRows = c.Window + 1 }},
		{"every above window", func(c *Config) { c.Every = c.Window + 1 }},
		{"drift zero", func(c *Config) { c.DriftThreshold = 0 }},
		{"pdrift negative", func(c *Config) { c.PosteriorThreshold = -1 }},
		{"alpha one", func(c *Config) { c.Alpha = 1 }},
		{"margin negative", func(c *Config) { c.Margin = -0.1 }},
		{"bad algo", func(c *Config) { c.Algo = "perceptron" }},
	}
	for _, tc := range mut {
		cfg := DefaultConfig()
		tc.f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	if err := SimLifecycleConfig().Validate(); err != nil {
		t.Fatalf("sim config must validate: %v", err)
	}
}
