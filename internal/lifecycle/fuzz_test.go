package lifecycle

import (
	"strings"
	"testing"
)

// FuzzLifecycleConfig drives the -lifecycle spec parser with arbitrary
// input. Properties: the parser never panics; any accepted config
// passes Validate; and the canonical render re-parses to the identical
// config with a stable render (parse -> Spec -> parse is a fixed
// point). Same shape as the repo's other codec fuzzers: rejection is
// always acceptable, acceptance must be self-consistent.
func FuzzLifecycleConfig(f *testing.F) {
	f.Add("")
	f.Add("window=256,bins=10,drift=0.2,shadowmin=200,alpha=0.05,algo=stack,auto=true")
	f.Add("window=512 min=64\tevery=32\ntrain=2048")
	f.Add("drift=1e-3,pdrift=100,margin=1,cooldown=0,seed=18446744073709551615")
	f.Add("window=64,window=128")
	f.Add("algo=knn")
	f.Add("alpha=NaN")
	f.Add("auto=0")
	f.Add("min=9,bins=9,window=9")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			return // rejection is always acceptable; panics are not
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted a config failing Validate: %v", spec, verr)
		}
		canon := cfg.Spec()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if back != cfg {
			t.Fatalf("round trip diverged for %q:\n cfg:  %+v\n back: %+v", spec, cfg, back)
		}
		if back.Spec() != canon {
			t.Fatalf("canonical render unstable for %q: %q vs %q", spec, canon, back.Spec())
		}
		if strings.TrimSpace(canon) == "" {
			t.Fatalf("accepted config rendered an empty spec from %q", spec)
		}
	})
}
