package lifecycle

import (
	"os"
	"testing"

	"repro/internal/testkit"
)

// The deterministic lifecycle simulation harness: seeded traffic with a
// known injected shift, replayed through a real champion + loop. These
// tests are the ISSUE's proof obligations — drift fires within a
// bounded window of the shift, shadow scoring never perturbs served
// answers, promotion happens iff the significance gate passes, the
// ledgers reconcile exactly, and the whole arc is bit-identical at any
// worker count.

func runSim(t *testing.T, cfg SimConfig) *SimResult {
	t.Helper()
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLifecycleSimArc(t *testing.T) {
	res := runSim(t, SimConfig{Seed: 42})

	// Drift must alarm within a bounded window of the injected shift:
	// the shift lands at tick 8, the drift window is two ticks deep.
	const shiftTick = 8
	if res.DriftTick < shiftTick || res.DriftTick > shiftTick+2 {
		t.Fatalf("drift fired at tick %d, want within [%d, %d]", res.DriftTick, shiftTick, shiftTick+2)
	}
	if res.PromoteTick < res.DriftTick || res.PromoteTick > res.DriftTick+4 {
		t.Fatalf("promotion at tick %d after drift at %d, want within 4 ticks", res.PromoteTick, res.DriftTick)
	}
	if res.FinalGeneration < 2 {
		t.Fatalf("final generation %d: the challenger never promoted", res.FinalGeneration)
	}
	if res.Status.Promotions < 1 || res.Status.Retrains < 1 {
		t.Fatalf("arc incomplete: %+v", res.Status)
	}

	// The gate is honest: every promotion recorded a decision that
	// passes it, and the last decision is internally consistent.
	d := res.Decision
	if d == nil {
		t.Fatal("no decision recorded")
	}
	if d.Promoted && (d.C <= d.B || d.P > SimLifecycleConfig().Alpha) {
		t.Fatalf("promoted decision violates the gate: %+v", d)
	}
	if !d.Promoted && d.C > d.B && d.P <= SimLifecycleConfig().Alpha &&
		d.ChallAcc-d.ChampAcc >= SimLifecycleConfig().Margin {
		t.Fatalf("gate-passing decision was not promoted: %+v", d)
	}
	if len(d.Sweep) == 0 {
		t.Fatal("decision is missing the paper's threshold sweep")
	}

	// Conservation: the shadow ledger balances, and the flight
	// recorder's shadow tallies reconcile against it exactly.
	lg := res.Ledger
	if lg.Eligible != lg.Scored+lg.Errors || lg.Scored != lg.Agree+lg.Disagree {
		t.Fatalf("ledger does not balance: %+v", lg)
	}
	if lg.Scored == 0 {
		t.Fatal("no rows were shadow-scored")
	}
	if res.FlightStats.ShadowRows != lg.Scored || res.FlightStats.ShadowAgree != lg.Agree {
		t.Fatalf("flight recorder (rows=%d agree=%d) does not reconcile with ledger %+v",
			res.FlightStats.ShadowRows, res.FlightStats.ShadowAgree, lg)
	}

	// The loop's spec renders canonically (the /api/lifecycle contract).
	if _, err := ParseSpec(res.Status.Spec); err != nil {
		t.Fatalf("status spec %q does not re-parse: %v", res.Status.Spec, err)
	}

	// CI uploads the trace as a build artifact when asked.
	if out := os.Getenv("LIFECYCLE_SIM_OUT"); out != "" {
		if err := os.WriteFile(out, []byte(res.Trace), 0o644); err != nil {
			t.Fatalf("write sim trace artifact: %v", err)
		}
		t.Logf("wrote lifecycle sim trace to %s (%d bytes)", out, len(res.Trace))
	}
}

// The golden trace pins the entire arc — tick states, PSI values,
// transitions, the promotion decision, and both ledgers — byte for
// byte. Regenerate with `make testkit-update` (see EXPERIMENTS.md).
func TestLifecycleSimGolden(t *testing.T) {
	res := runSim(t, SimConfig{Seed: 42})
	testkit.GoldenString(t, "lifecycle.golden", res.Trace)
}

// Bit-parity at any fan-out width: the trace, the served digest, and
// every per-tick prefix digest are identical at workers 1 vs N.
func TestLifecycleSimWorkerParity(t *testing.T) {
	one := runSim(t, SimConfig{Seed: 42, Workers: 1})
	for _, workers := range []int{2, 8} {
		n := runSim(t, SimConfig{Seed: 42, Workers: workers})
		if n.Trace != one.Trace {
			t.Fatalf("trace diverged at %d workers", workers)
		}
		if n.ServedDigest != one.ServedDigest {
			t.Fatalf("served digest diverged at %d workers: %s vs %s", workers, n.ServedDigest, one.ServedDigest)
		}
		for i := range one.TickDigests {
			if n.TickDigests[i] != one.TickDigests[i] {
				t.Fatalf("tick %d digest diverged at %d workers", i, workers)
			}
		}
	}
}

// Shadow scoring must be invisible to clients: a run with the loop
// monitoring and shadow-scoring (but never promoting) serves exactly
// the same bytes as a run with no loop at all.
func TestLifecycleSimShadowNeverPerturbsServing(t *testing.T) {
	shadow := runSim(t, SimConfig{Seed: 42, Mode: ModeShadow})
	off := runSim(t, SimConfig{Seed: 42, Mode: ModeOff})
	if shadow.ServedDigest != off.ServedDigest {
		t.Fatalf("shadow scoring perturbed served answers: %s vs %s", shadow.ServedDigest, off.ServedDigest)
	}
	if shadow.Ledger.Scored == 0 {
		t.Fatal("shadow mode scored nothing — the parity check proved nothing")
	}
	if shadow.FinalGeneration != 1 || off.FinalGeneration != 1 {
		t.Fatalf("non-promoting modes advanced the generation: shadow=%d off=%d",
			shadow.FinalGeneration, off.FinalGeneration)
	}
}

// Promotion — and only promotion — may change served answers: the full
// loop matches the loop-disabled reference byte-for-byte on every tick
// before the promotion lands, and diverges after.
func TestLifecycleSimPromotionIsTheOnlyDivergence(t *testing.T) {
	full := runSim(t, SimConfig{Seed: 42, Mode: ModeFull})
	off := runSim(t, SimConfig{Seed: 42, Mode: ModeOff})
	if full.PromoteTick < 0 {
		t.Fatal("full mode never promoted")
	}
	for i := 0; i < full.PromoteTick; i++ {
		if full.TickDigests[i] != off.TickDigests[i] {
			t.Fatalf("served bytes diverged at tick %d, before the promotion at tick %d", i, full.PromoteTick)
		}
	}
	last := len(full.TickDigests) - 1
	if full.TickDigests[last] == off.TickDigests[last] {
		t.Fatal("promotion never changed served answers — the divergence check proved nothing")
	}
}

// The same arc with the stacked-ensemble challenger (NB+RF+SVM under a
// softmax meta-learner): shorter, because the stack retrains three base
// families per drift event, but the same conservation and parity
// obligations hold.
func TestLifecycleSimStackChallenger(t *testing.T) {
	lc := SimLifecycleConfig()
	lc.Algo = "stack"
	lc.TrainWindow = 480
	cfg := SimConfig{Seed: 42, Ticks: 14, Lifecycle: lc}
	res := runSim(t, cfg)
	if res.DriftTick < 4 {
		t.Fatalf("drift fired at tick %d, before the shift at tick 4", res.DriftTick)
	}
	if res.Status.Retrains < 1 {
		t.Fatal("the stack challenger never retrained")
	}
	lg := res.Ledger
	if lg.Eligible != lg.Scored+lg.Errors || lg.Scored != lg.Agree+lg.Disagree || lg.Scored == 0 {
		t.Fatalf("stack ledger does not balance: %+v", lg)
	}
	// Determinism with the heavier challenger, tick digests included.
	again := runSim(t, cfg)
	if again.Trace != res.Trace || again.ServedDigest != res.ServedDigest {
		t.Fatal("stack simulation is not deterministic across runs")
	}
}
