package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/testkit"
)

// TestSweepAccuracyMonotone checks the Figure-6 property on a separable
// synthetic dataset: retraining on more top-ranked predictors never costs
// accuracy beyond float-level slack, and the full feature set beats the
// single best predictor outright.
func TestSweepAccuracyMonotone(t *testing.T) {
	train, test := synthCoreData(t)
	cfg := core.PaperForest(7)
	cfg.Forest.Trees = 40
	c, err := core.TrainJobClassifier(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := c.Importance()
	if err != nil {
		t.Fatal(err)
	}
	ranked := core.RankFeatures(c.Features, imp)
	sweep, err := core.PredictorSweep(train, test, ranked, cfg, nil) // full descending grid
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != train.NumFeatures() {
		t.Fatalf("sweep has %d points, want %d", len(sweep), train.NumFeatures())
	}
	// Points come sorted by descending feature count.
	full, single := sweep[0], sweep[len(sweep)-1]
	if full.Accuracy < single.Accuracy {
		t.Errorf("full feature set (%v) underperforms single predictor (%v)",
			full.Accuracy, single.Accuracy)
	}
	const slack = 0.05 // small-sample retraining noise, far below any real regression
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Accuracy > sweep[i-1].Accuracy+slack {
			t.Errorf("accuracy rose from %v to %v when dropping from %d to %d predictors",
				sweep[i-1].Accuracy, sweep[i].Accuracy, sweep[i-1].NumFeatures, sweep[i].NumFeatures)
		}
	}
}

// TestClassifyThresholdConsistency checks the threshold semantics used by
// the Figure 1-4 analyses: threshold 0 accepts everything, a threshold
// above 1 accepts nothing, and the accept decision equals prob >= t.
func TestClassifyThresholdConsistency(t *testing.T) {
	train, test := synthCoreData(t)
	c, err := core.TrainJobClassifier(train, core.ClassifierConfig{Algo: core.AlgoBayes})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range test.X {
		label0, prob, ok := c.Classify(row, 0)
		if !ok {
			t.Fatalf("row %d: threshold 0 rejected a prediction", i)
		}
		if _, _, ok := c.Classify(row, 1.0000001); ok {
			t.Fatalf("row %d: threshold >1 accepted a prediction", i)
		}
		labelT, probT, okT := c.Classify(row, 0.8)
		if labelT != label0 || probT != prob {
			t.Fatalf("row %d: threshold changed the predicted label or probability", i)
		}
		if okT != (prob >= 0.8) {
			t.Fatalf("row %d: ok=%v but prob=%v vs threshold 0.8", i, okT, prob)
		}
		testkit.CheckProbRow(t, probsOf(c, row), 1e-6, fmt.Sprintf("core row %d", i))
	}
}

func probsOf(c *core.JobClassifier, row []float64) []float64 {
	_, probs := c.PredictProb(row)
	return probs
}
