// Package core is the paper's contribution as a library: the end-to-end
// SUPReMM machine-learning pipeline. It drives the substrates (workload
// generation, TACC_Stats collection, Lariat labeling, summarization, the
// warehouse) to produce labeled job datasets, wraps the three classifier
// families behind one JobClassifier API with probability-threshold
// classification, and provides the attribute-importance and
// predictor-count-sweep analyses of the paper's Figures 5 and 6.
package core

import (
	"repro/internal/apps"
	"repro/internal/summarize"
)

// FeatureOptions selects which SUPReMM attributes become model features.
type FeatureOptions struct {
	// COV includes the across-node coefficient-of-variation attributes
	// (the paper added these and found they made "a real contribution").
	COV bool
	// Derived includes NODES, CATASTROPHE and CPU_USER_IMBALANCE.
	Derived bool
	// Segments > 0 replaces the whole-job means with per-time-slice means
	// (the paper's time-dependent-attribute extension). Requires
	// summaries produced with at least that many segments.
	Segments int
	// SegmentShape (with Segments > 0) emits scale-free time-shape
	// attributes instead of absolute segment means: per metric, the ratio
	// of each later segment's mean to the first segment's. Because a
	// hardware change rescales a code's rates but not its temporal shape,
	// these attributes are the basis for cross-platform classification
	// (paper Section IV).
	SegmentShape bool
}

// DefaultFeatures returns the paper's full attribute set: means + COVs +
// derived attributes.
func DefaultFeatures() FeatureOptions { return FeatureOptions{COV: true, Derived: true} }

// covEligible reports whether a metric gets a COV attribute. CPU idle is
// excluded (it is determined by user+system and its COV is dominated by
// near-zero means).
func covEligible(m apps.MetricID) bool { return m != apps.CPUIdle }

// FeatureNames returns the feature vector layout for the options.
func FeatureNames(opt FeatureOptions) []string {
	var names []string
	switch {
	case opt.Segments > 0 && opt.SegmentShape:
		for seg := 1; seg < opt.Segments; seg++ {
			for m := apps.MetricID(0); m < apps.NumMetrics; m++ {
				names = append(names, m.String()+"_SHAPE"+string(rune('1'+seg)))
			}
		}
	case opt.Segments > 0:
		for seg := 0; seg < opt.Segments; seg++ {
			for m := apps.MetricID(0); m < apps.NumMetrics; m++ {
				names = append(names, m.String()+"_SEG"+string(rune('1'+seg)))
			}
		}
	default:
		for m := apps.MetricID(0); m < apps.NumMetrics; m++ {
			names = append(names, m.String())
		}
	}
	if opt.COV {
		for m := apps.MetricID(0); m < apps.NumMetrics; m++ {
			if covEligible(m) {
				names = append(names, m.String()+"_COV")
			}
		}
	}
	if opt.Derived {
		names = append(names, "NODES", "CATASTROPHE", "CPU_USER_IMBALANCE")
	}
	return names
}

// segMeans returns segment seg's means, degrading to whole-job means when
// the summary carries fewer segments.
func segMeans(s *summarize.Summary, seg int) [apps.NumMetrics]float64 {
	if seg < len(s.SegmentMeans) {
		return s.SegmentMeans[seg]
	}
	return s.Means
}

// Featurize converts a job summary into a feature vector matching
// FeatureNames(opt).
func Featurize(s *summarize.Summary, opt FeatureOptions) []float64 {
	var row []float64
	switch {
	case opt.Segments > 0 && opt.SegmentShape:
		first := segMeans(s, 0)
		for seg := 1; seg < opt.Segments; seg++ {
			cur := segMeans(s, seg)
			for m := apps.MetricID(0); m < apps.NumMetrics; m++ {
				base := first[m]
				if base == 0 {
					row = append(row, 1)
					continue
				}
				row = append(row, cur[m]/base)
			}
		}
	case opt.Segments > 0:
		for seg := 0; seg < opt.Segments; seg++ {
			sm := segMeans(s, seg)
			row = append(row, sm[:]...)
		}
	default:
		row = append(row, s.Means[:]...)
	}
	if opt.COV {
		for m := apps.MetricID(0); m < apps.NumMetrics; m++ {
			if covEligible(m) {
				row = append(row, s.COVs[m])
			}
		}
	}
	if opt.Derived {
		row = append(row, float64(s.Nodes), s.Catastrophe, s.CPUUserImbalance)
	}
	return row
}
