package core

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/testkit"
)

// synthModel trains a fast NB classifier on a synthetic dataset.
func synthModel(t *testing.T, seed uint64, features int) *JobClassifier {
	t.Helper()
	ds := testkit.SynthClassification(testkit.SynthConfig{Seed: seed, Features: features, RowsPerCls: 20})
	m, err := TrainJobClassifier(ds, ClassifierConfig{Algo: AlgoBayes})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelManagerEmpty(t *testing.T) {
	mm := NewModelManager(nil)
	if mm.View() != nil {
		t.Fatal("empty manager has a view")
	}
	if mm.Generation() != 0 {
		t.Fatalf("empty generation = %d", mm.Generation())
	}
	if _, err := mm.ReloadFromFile(""); err == nil {
		t.Fatal("reload with no path configured succeeded")
	}
}

func TestModelManagerSwapAndIndex(t *testing.T) {
	reg := obs.NewRegistry()
	mm := NewModelManager(reg)
	m := synthModel(t, 1, 6)
	gen, err := mm.Swap(m)
	if err != nil || gen != 1 {
		t.Fatalf("first swap: gen=%d err=%v", gen, err)
	}
	v := mm.View()
	if v.Model != m || v.Generation != 1 {
		t.Fatalf("view = {%p gen %d}, want {%p gen 1}", v.Model, v.Generation, m)
	}
	if v.NumFeatures() != len(m.Features) {
		t.Fatalf("NumFeatures = %d", v.NumFeatures())
	}
	for i, name := range m.Features {
		got, ok := v.FeatureIndex(name)
		if !ok || got != i {
			t.Fatalf("FeatureIndex(%q) = (%d,%v), want (%d,true)", name, got, ok, i)
		}
	}
	if _, ok := v.FeatureIndex("NOPE"); ok {
		t.Fatal("unknown feature resolved")
	}
	if got := reg.Gauge("model_generation").Value(); got != 1 {
		t.Errorf("model_generation = %v", got)
	}
	if got := reg.Counter("model_swap_total", "outcome", "ok").Value(); got != 1 {
		t.Errorf("swap ok counter = %d", got)
	}

	// A compatible retrain bumps the generation; old view stays usable.
	if gen, err = mm.Swap(synthModel(t, 2, 6)); err != nil || gen != 2 {
		t.Fatalf("second swap: gen=%d err=%v", gen, err)
	}
	if v.Generation != 1 || mm.View().Generation != 2 {
		t.Fatalf("old view gen %d / new view gen %d", v.Generation, mm.View().Generation)
	}
}

func TestModelManagerSchemaMismatchKeepsOldModel(t *testing.T) {
	reg := obs.NewRegistry()
	mm := NewModelManager(reg)
	if _, err := mm.Swap(synthModel(t, 1, 6)); err != nil {
		t.Fatal(err)
	}
	old := mm.View()
	gen, err := mm.Swap(synthModel(t, 2, 4)) // different feature width
	if !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("mismatched swap err = %v, want ErrSchemaMismatch", err)
	}
	if gen != 1 || mm.View() != old {
		t.Fatalf("rejected swap disturbed the serving model (gen %d)", gen)
	}
	if got := reg.Counter("model_swap_total", "outcome", "rejected").Value(); got != 1 {
		t.Errorf("rejected counter = %d", got)
	}
	if got := reg.Gauge("model_generation").Value(); got != 1 {
		t.Errorf("model_generation = %v after rejection", got)
	}
}

func TestModelManagerSwapValidation(t *testing.T) {
	mm := NewModelManager(nil)
	if _, err := mm.Swap(nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := mm.Swap(&JobClassifier{}); err == nil {
		t.Error("featureless model accepted")
	}
	if _, err := mm.Swap(&JobClassifier{Features: []string{"A", "B", "A"}}); err == nil {
		t.Error("duplicate feature names accepted")
	}
	if _, err := mm.Swap(&JobClassifier{Features: []string{"A", ""}}); err == nil {
		t.Error("empty feature name accepted")
	}
	if mm.View() != nil || mm.Generation() != 0 {
		t.Error("failed swaps left state behind")
	}
}

func TestModelManagerReloadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	m := synthModel(t, 3, 6)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	mm := NewModelManager(nil)
	gen, err := mm.ReloadFromFile(path)
	if err != nil || gen != 1 {
		t.Fatalf("reload: gen=%d err=%v", gen, err)
	}
	if mm.Path() != path {
		t.Fatalf("path not remembered: %q", mm.Path())
	}
	// A bare reload repeats the remembered path.
	if gen, err = mm.ReloadFromFile(""); err != nil || gen != 2 {
		t.Fatalf("bare reload: gen=%d err=%v", gen, err)
	}
	// A missing file fails without disturbing the serving model or path.
	if _, err := mm.ReloadFromFile(filepath.Join(dir, "nope.bin")); err == nil {
		t.Fatal("reload from missing file succeeded")
	}
	if mm.Generation() != 2 || mm.Path() != path {
		t.Fatalf("failed reload disturbed state: gen=%d path=%q", mm.Generation(), mm.Path())
	}
	// Garbage on disk is a load error, not a crash.
	bad := filepath.Join(dir, "garbage.bin")
	if err := os.WriteFile(bad, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mm.ReloadFromFile(bad); err == nil {
		t.Fatal("garbage model accepted")
	}
	if mm.Path() != path {
		t.Fatalf("failed reload replaced the default path: %q", mm.Path())
	}
}

// TestModelManagerConcurrentSwap hammers View from many goroutines while
// models swap underneath: run under -race, every observed view must be
// internally consistent (generation matches the installed model).
func TestModelManagerConcurrentSwap(t *testing.T) {
	mm := NewModelManager(nil)
	a, b := synthModel(t, 1, 6), synthModel(t, 2, 6)
	if _, err := mm.Swap(a); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			row := make([]float64, 6)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := mm.View()
				if v == nil {
					t.Error("view went nil mid-swap")
					return
				}
				want := a
				if v.Generation%2 == 0 {
					want = b
				}
				if v.Model != want {
					t.Errorf("torn view: generation %d paired with wrong model", v.Generation)
					return
				}
				v.Model.Classify(row, 0.5)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		next := b
		if i%2 == 1 {
			next = a
		}
		if _, err := mm.Swap(next); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if mm.Generation() != 51 {
		t.Fatalf("generation = %d, want 51", mm.Generation())
	}
}
