package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/lariat"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/summarize"
	"repro/internal/taccstats"
	"repro/internal/warehouse"
)

// Instrumentation carries optional observability hooks through the
// pipeline and training layers. The zero value is a valid no-op: all obs
// types are nil-safe, so uninstrumented callers pay near-zero cost and no
// RNG stream is ever touched by instrumentation.
type Instrumentation struct {
	Span    *obs.Span
	Metrics *obs.Registry
	Log     *obs.Logger
}

// enabled reports whether any timing work should happen at all, so the
// uninstrumented hot path skips even the time.Now calls.
func (ins Instrumentation) enabled() bool { return ins.Span != nil || ins.Metrics != nil }

// JobRecord is one fully processed job: scheduler metadata, the SUPReMM
// summary, and the Lariat-derived label (which is what a production
// classifier would see; Job.App.Name is generation-side ground truth kept
// for evaluation).
type JobRecord struct {
	Job     *cluster.Job
	Summary *summarize.Summary
	// Label is the Lariat classification: a community application name,
	// lariat.Uncategorized, or lariat.NA.
	Label string
}

// TrueApp returns the generating application's name.
func (r *JobRecord) TrueApp() string { return r.Job.App.Name }

// TrueCategory returns the generating application's broad category.
func (r *JobRecord) TrueCategory() string { return string(r.Job.App.Category) }

// PipelineConfig configures an end-to-end dataset generation run.
type PipelineConfig struct {
	Seed    uint64
	NumJobs int

	Machine   cluster.Machine
	Cluster   cluster.Config
	Collector taccstats.Config

	// Segments enables per-time-slice summarization (needed for
	// time-dependent features).
	Segments int

	// Workers bounds concurrent collection+summarization (default
	// GOMAXPROCS).
	Workers int

	// UseScheduler routes the workload through the event-driven batch
	// scheduler (FCFS, optionally EASY backfill) so start times, node
	// placements and queue waits are emergent instead of sampled.
	UseScheduler bool
	Backfill     bool
	// WallEstimateFactor models users over-requesting wall time; the
	// backfill reservation logic reasons about these estimates (default
	// 1.5 when UseScheduler is set).
	WallEstimateFactor float64

	// Obs carries optional metrics/tracing/logging; the zero value is a
	// no-op and leaves the run bit-identical to an uninstrumented one.
	Obs Instrumentation
}

// DefaultPipelineConfig mirrors the paper's Stampede 2014 setting at a
// configurable job count.
func DefaultPipelineConfig(seed uint64, numJobs int) PipelineConfig {
	return PipelineConfig{
		Seed:      seed,
		NumJobs:   numJobs,
		Machine:   cluster.Stampede(),
		Cluster:   cluster.DefaultConfig(seed),
		Collector: taccstats.DefaultConfig(),
	}
}

// PipelineResult is the output of RunPipeline.
type PipelineResult struct {
	Records []*JobRecord
	Store   *warehouse.Store
}

// RunPipeline generates jobs, runs the simulated TACC_Stats collector on
// every node of every job, labels jobs through Lariat path matching,
// summarizes the raw archives into SUPReMM job summaries, and ingests
// everything into a warehouse. The whole run is deterministic in
// cfg.Seed.
func RunPipeline(cfg PipelineConfig) (*PipelineResult, error) {
	if cfg.NumJobs <= 0 {
		return nil, fmt.Errorf("core: NumJobs must be positive")
	}
	if cfg.Machine.TotalNodes() == 0 {
		cfg.Machine = cluster.Stampede()
	}
	if cfg.Collector.Period <= 0 {
		cfg.Collector = taccstats.DefaultConfig()
	}
	cfg.Cluster.Seed = cfg.Seed

	sp := cfg.Obs.Span
	cfg.Obs.Log.Debug("pipeline: generating workload", "jobs", cfg.NumJobs, "seed", cfg.Seed)

	gsp := sp.Child("generate")
	gen := cluster.NewGenerator(cfg.Machine, cfg.Cluster)
	jobs := gen.Generate(cfg.NumJobs)
	if cfg.UseScheduler {
		estFactor := cfg.WallEstimateFactor
		if estFactor <= 0 {
			estFactor = 1.5
		}
		ssp := gsp.Child("schedule")
		err := cluster.ScheduleWorkload(cfg.Machine, jobs, cfg.Backfill, estFactor)
		ssp.End()
		if err != nil {
			return nil, err
		}
	}
	gsp.SetAttr("jobs", len(jobs))
	gsp.End()

	matcher := lariat.NewMatcher(apps.Catalog())
	launches := lariat.NewStore()
	for _, j := range jobs {
		if j.App.ExecPath != "" { // NA jobs launched outside ibrun
			launches.Add(&lariat.Record{JobID: j.ID, ExecPath: j.App.ExecPath, User: j.User})
		}
	}

	// Collection and summarization are fused per job, so the stage span
	// covers both; the per-phase split is recovered from worker-summed
	// busy time (AddTimed children) and the per-job latency histograms.
	timed := cfg.Obs.enabled()
	var collectNS, summarizeNS atomic.Int64
	var collectHist, summarizeHist *obs.Histogram
	if reg := cfg.Obs.Metrics; reg != nil {
		reg.Help("pipeline_collect_seconds", "Per-job TACC_Stats collection latency.")
		reg.Help("pipeline_summarize_seconds", "Per-job SUPReMM summarization latency.")
		collectHist = reg.Histogram("pipeline_collect_seconds", nil)
		summarizeHist = reg.Histogram("pipeline_summarize_seconds", nil)
	}
	csp := sp.Child("collect+summarize")

	// Job i's collection noise comes from Split(i), so the archives are
	// identical at any worker count.
	root := rng.New(cfg.Seed ^ 0xc011ec7)
	records, err := parallel.MapSeeded(root, cfg.Workers, len(jobs), func(i int, r *rng.Rand) (*JobRecord, error) {
		j := jobs[i]
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		arch := taccstats.Collect(cfg.Collector, taccstats.JobInfo{
			ID: j.ID, Start: j.Start, Hosts: j.Hosts,
		}, j.Draw, r)
		if timed {
			d := time.Since(t0)
			collectNS.Add(int64(d))
			collectHist.Observe(d.Seconds())
			t0 = time.Now()
		}
		sum, err := summarize.Summarize(arch, cfg.Collector, summarize.Options{Segments: cfg.Segments})
		if timed {
			d := time.Since(t0)
			summarizeNS.Add(int64(d))
			summarizeHist.Observe(d.Seconds())
		}
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", j.ID, err)
		}
		return &JobRecord{Job: j, Summary: sum, Label: launches.Label(matcher, j.ID)}, nil
	})
	if err != nil {
		csp.End()
		return nil, err
	}
	if timed {
		csp.AddTimed("collect", time.Duration(collectNS.Load())).SetAttr("timing", "worker-summed busy")
		csp.AddTimed("summarize", time.Duration(summarizeNS.Load())).SetAttr("timing", "worker-summed busy")
	}
	csp.SetAttr("jobs", len(jobs))
	csp.End()

	isp := sp.Child("ingest")
	store := warehouse.NewStore()
	for _, rec := range records {
		cat := "Unknown"
		if a, ok := apps.ByName(rec.Label); ok {
			cat = string(a.Category)
		}
		if err := store.Ingest(&warehouse.Record{
			JobID:       rec.Job.ID,
			User:        rec.Job.User,
			AppLabel:    rec.Label,
			Category:    cat,
			Pop:         rec.Job.Population,
			Nodes:       rec.Summary.Nodes,
			Cores:       rec.Summary.Nodes * cfg.Collector.CoresPerNode,
			Submit:      rec.Job.Submit,
			Start:       rec.Job.Start,
			WallSeconds: rec.Summary.WallSeconds,
			ExitCode:    rec.Job.ExitCode,
			Summary:     rec.Summary,
		}); err != nil {
			return nil, err
		}
	}
	isp.SetAttr("records", len(records))
	isp.End()
	cfg.Obs.Log.Debug("pipeline: complete", "jobs", len(records))
	return &PipelineResult{Records: records, Store: store}, nil
}

// LabelFunc maps a job record to a training label; returning false skips
// the record.
type LabelFunc func(*JobRecord) (string, bool)

// LabelByLariat labels jobs with their Lariat application name, skipping
// Uncategorized and NA jobs -- exactly the labeled population the paper
// trains on.
func LabelByLariat(r *JobRecord) (string, bool) {
	if r.Label == lariat.Uncategorized || r.Label == lariat.NA {
		return "", false
	}
	return r.Label, true
}

// LabelByCategory labels jobs with the broad category of their Lariat
// application, skipping unlabeled jobs.
func LabelByCategory(r *JobRecord) (string, bool) {
	name, ok := LabelByLariat(r)
	if !ok {
		return "", false
	}
	a, found := apps.ByName(name)
	if !found {
		return "", false
	}
	return string(a.Category), true
}

// LabelByExit labels jobs "success"/"failure" from the script exit code.
func LabelByExit(r *JobRecord) (string, bool) {
	if r.Job.ExitCode == 0 {
		return "success", true
	}
	return "failure", true
}

// BuildDataset featurizes records under a labeling function.
func BuildDataset(records []*JobRecord, label LabelFunc, opt FeatureOptions) (*dataset.Dataset, error) {
	names := FeatureNames(opt)
	var rows [][]float64
	var labels []string
	for _, r := range records {
		l, ok := label(r)
		if !ok {
			continue
		}
		rows = append(rows, Featurize(r.Summary, opt))
		labels = append(labels, l)
	}
	return dataset.New(names, rows, labels)
}

// FilterPopulation returns the records of one population.
func FilterPopulation(records []*JobRecord, pop cluster.Population) []*JobRecord {
	var out []*JobRecord
	for _, r := range records {
		if r.Job.Population == pop {
			out = append(out, r)
		}
	}
	return out
}

// FeaturizeAll returns raw feature rows for records (for unlabeled
// populations scored with eval.ScoreUnlabeled).
func FeaturizeAll(records []*JobRecord, opt FeatureOptions) [][]float64 {
	rows := make([][]float64, len(records))
	for i, r := range records {
		rows[i] = Featurize(r.Summary, opt)
	}
	return rows
}

// BuildDatasetObs is BuildDataset wrapped in a "featurize" stage span.
func BuildDatasetObs(ins Instrumentation, records []*JobRecord, label LabelFunc, opt FeatureOptions) (*dataset.Dataset, error) {
	sp := ins.Span.Child("featurize")
	ds, err := BuildDataset(records, label, opt)
	if err == nil && sp != nil {
		sp.SetAttr("rows", ds.Len())
		sp.SetAttr("features", len(ds.FeatureNames))
	}
	sp.End()
	return ds, err
}

// FeaturizeAllObs is FeaturizeAll wrapped in a "featurize" stage span.
func FeaturizeAllObs(ins Instrumentation, records []*JobRecord, opt FeatureOptions) [][]float64 {
	sp := ins.Span.Child("featurize")
	rows := FeaturizeAll(records, opt)
	sp.SetAttr("rows", len(rows))
	sp.End()
	return rows
}
