package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/testkit"
)

// trainCompiledTrio trains one JobClassifier per algorithm on a shared
// synthetic dataset and returns them with held-out probe rows.
func trainCompiledTrio(t *testing.T) (map[Algorithm]*JobClassifier, [][]float64) {
	t.Helper()
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 91, Classes: 3, Features: 5, RowsPerCls: 20})
	probe := testkit.SynthClassification(testkit.SynthConfig{Seed: 92, Classes: 3, Features: 5, RowsPerCls: 6})
	out := make(map[Algorithm]*JobClassifier, 3)
	for _, cfg := range []ClassifierConfig{
		{Algo: AlgoForest, Forest: forest.Config{Trees: 30, Seed: 91}},
		{Algo: AlgoSVM, SVM: svm.Config{Kernel: svm.RBF{Gamma: 0.1}, C: 10, Probability: true, Seed: 91}},
		{Algo: AlgoBayes},
	} {
		c, err := TrainJobClassifier(d, cfg)
		if err != nil {
			t.Fatalf("train %s: %v", cfg.Algo, err)
		}
		out[cfg.Algo] = c
	}
	return out, probe.X
}

// assertServingParity checks every public prediction entry point of the
// classifier bit-for-bit against its *Interpreted reference.
func assertServingParity(t *testing.T, c *JobClassifier, rows [][]float64) {
	t.Helper()
	for ri, row := range rows {
		if got, want := c.Predict(row), c.PredictInterpreted(row); got != want {
			t.Fatalf("row %d: Predict %d, interpreted %d", ri, got, want)
		}
		gotCls, gotProbs := c.PredictProb(row)
		wantCls, wantProbs := c.PredictProbInterpreted(row)
		if gotCls != wantCls {
			t.Fatalf("row %d: PredictProb class %d, interpreted %d", ri, gotCls, wantCls)
		}
		for i := range wantProbs {
			if math.Float64bits(gotProbs[i]) != math.Float64bits(wantProbs[i]) {
				t.Fatalf("row %d: posterior[%d] = %g, interpreted %g", ri, i, gotProbs[i], wantProbs[i])
			}
		}
		for _, thr := range []float64{0, 0.5, 0.9} {
			gl, gp, gok := c.Classify(row, thr)
			wl, wp, wok := c.ClassifyInterpreted(row, thr)
			if gl != wl || gok != wok || math.Float64bits(gp) != math.Float64bits(wp) {
				t.Fatalf("row %d thr %g: Classify (%q, %g, %v), interpreted (%q, %g, %v)",
					ri, thr, gl, gp, gok, wl, wp, wok)
			}
		}
	}
}

func TestCompiledServingParity(t *testing.T) {
	trio, rows := trainCompiledTrio(t)
	for algo, c := range trio {
		if !c.IsCompiled() {
			t.Fatalf("%s: freshly trained classifier is not compiled", algo)
		}
		assertServingParity(t, c, rows)
	}
}

func TestCompiledSurvivesSaveLoad(t *testing.T) {
	trio, rows := trainCompiledTrio(t)
	for algo, c := range trio {
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", algo, err)
		}
		restored, err := LoadJobClassifier(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", algo, err)
		}
		if !restored.IsCompiled() {
			t.Fatalf("%s: restored classifier is not compiled", algo)
		}
		assertServingParity(t, restored, rows)
		// Restored and original must also agree with each other.
		for ri, row := range rows {
			_, a := c.PredictProb(row)
			_, b := restored.PredictProb(row)
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("%s row %d: restored posterior[%d] %g, original %g", algo, ri, i, b[i], a[i])
				}
			}
		}
	}
}

func TestManagerSwapPublishesCompiledView(t *testing.T) {
	trio, _ := trainCompiledTrio(t)
	m := NewModelManager(nil)
	if _, err := m.Swap(trio[AlgoForest]); err != nil {
		t.Fatal(err)
	}
	v := m.View()
	if v == nil || !v.Compiled() {
		t.Fatal("swapped view does not report the compiled engine")
	}
}

// TestAllocCompiledClassify gates the serving hot path at the
// JobClassifier layer: Classify (scratch pool + compiled engine) must
// not allocate per call for any model family.
func TestAllocCompiledClassify(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector allocations; the alloc gate runs without -race")
	}
	trio, rows := trainCompiledTrio(t)
	for algo, c := range trio {
		row := rows[0]
		if avg := testing.AllocsPerRun(200, func() {
			_, _, _ = c.Classify(row, 0.5)
		}); avg != 0 {
			t.Errorf("%s: Classify allocates %.2f per run, want 0", algo, avg)
		}
		if avg := testing.AllocsPerRun(50, func() {
			for _, r := range rows {
				_, _, _ = c.Classify(r, 0.5)
			}
		}); avg != 0 {
			t.Errorf("%s: batch Classify allocates %.2f per run, want 0", algo, avg)
		}
	}
}
