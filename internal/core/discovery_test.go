package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/summarize"
	"repro/internal/testkit"
)

// discoveryRows builds well-separated synthetic blobs so the k-means fit
// converges (Iters < MaxIter) and assignments are unambiguous.
func discoveryRows(seed uint64, k, perCluster, p int) [][]float64 {
	r := rng.New(seed)
	rows := make([][]float64, 0, k*perCluster)
	for c := 0; c < k; c++ {
		center := make([]float64, p)
		for j := range center {
			center[j] = float64((c+j)%k) * 10
		}
		for i := 0; i < perCluster; i++ {
			row := make([]float64, p)
			for j := range row {
				row[j] = center[j] + r.Normal()
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func discoveryFeatures(p int) []string {
	names := make([]string, p)
	for j := range names {
		names[j] = fmt.Sprintf("F%02d", j)
	}
	return names
}

func TestFitDiscoveryErrors(t *testing.T) {
	rows := discoveryRows(1, 2, 10, 4)
	feats := discoveryFeatures(4)
	if _, err := FitDiscovery(rows, nil, DiscoveryConfig{}); err == nil {
		t.Error("empty feature schema not rejected")
	}
	if _, err := FitDiscovery(rows[:1], feats, DiscoveryConfig{}); err == nil {
		t.Error("single row not rejected")
	}
	ragged := [][]float64{{1, 2, 3, 4}, {1, 2}}
	if _, err := FitDiscovery(ragged, feats, DiscoveryConfig{K: 2}); err == nil {
		t.Error("ragged rows not rejected")
	}
	if _, err := FitDiscovery(rows[:4], feats, DiscoveryConfig{K: 9}); err == nil {
		t.Error("k > rows not rejected")
	}
}

// TestFitDiscoveryWorkerParity: the fit must be bit-identical at any
// restart concurrency — the acceptance criterion for deterministic
// serving refits.
func TestFitDiscoveryWorkerParity(t *testing.T) {
	rows := discoveryRows(7, 4, 40, 6)
	feats := discoveryFeatures(6)
	digest := func(workers int) string {
		m, err := FitDiscovery(rows, feats, DiscoveryConfig{K: 4, Restarts: 6, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var flat []float64
		for _, ctr := range m.Centers {
			flat = append(flat, ctr...)
		}
		flat = append(flat, m.Inertia, m.AnomalyDistance)
		flat = append(flat, m.ExplainedVariance...)
		for _, l := range m.Labels {
			flat = append(flat, float64(l))
		}
		return testkit.HashFloats(flat)
	}
	want := digest(1)
	for _, w := range []int{2, 4, 8} {
		if got := digest(w); got != want {
			t.Fatalf("workers=%d digest %s != workers=1 digest %s", w, got, want)
		}
	}
}

// TestAssignMatchesTrainingLabels: on a converged fit, scoring a
// training row reproduces its training assignment exactly (the same
// standardize/project/nearest arithmetic runs in both paths).
func TestAssignMatchesTrainingLabels(t *testing.T) {
	rows := discoveryRows(3, 3, 50, 5)
	feats := discoveryFeatures(5)
	m, err := FitDiscovery(rows, feats, DiscoveryConfig{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m.Iters >= 100 {
		t.Fatalf("fit did not converge (%d iters); pick better-separated data", m.Iters)
	}
	for i, row := range rows {
		a, err := m.Assign(row)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cluster != m.Labels[i] {
			t.Fatalf("row %d: Assign cluster %d != training label %d", i, a.Cluster, m.Labels[i])
		}
	}
	// Wrong widths error, never panic (the serving 400 path).
	if _, err := m.Assign(rows[0][:3]); err == nil {
		t.Error("short row not rejected")
	}
	if _, err := m.Assign(append([]float64(nil), append(rows[0], 1)...)); err == nil {
		t.Error("long row not rejected")
	}
	// A far outlier must be flagged anomalous.
	far := make([]float64, 5)
	for j := range far {
		far[j] = 1e6
	}
	a, err := m.Assign(far)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Anomalous {
		t.Error("extreme outlier not flagged anomalous")
	}
}

func TestDiscoveryClusterSummaries(t *testing.T) {
	rows := discoveryRows(5, 3, 30, 4)
	feats := discoveryFeatures(4)
	m, err := FitDiscovery(rows, feats, DiscoveryConfig{K: 3, Seed: 4, TopFeatures: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	var share float64
	for _, c := range m.Clusters {
		total += c.Size
		share += c.Share
		if c.Size == 0 {
			continue
		}
		if len(c.TopDeviations) != 2 {
			t.Fatalf("cluster %d: %d top deviations, want 2", c.ID, len(c.TopDeviations))
		}
		if math.Abs(c.TopDeviations[0].Z) < math.Abs(c.TopDeviations[1].Z) {
			t.Fatalf("cluster %d: deviations not sorted by |z|", c.ID)
		}
		if len(c.Center) != len(feats) {
			t.Fatalf("cluster %d: center has %d features", c.ID, len(c.Center))
		}
	}
	if total != len(rows) {
		t.Fatalf("cluster sizes sum to %d, want %d", total, len(rows))
	}
	if math.Abs(share-1) > 1e-9 {
		t.Fatalf("cluster shares sum to %v, want 1", share)
	}
	if len(m.ExplainedVariance) == 0 || m.ExplainedVariance[0] <= 0 {
		t.Fatal("explained variance curve missing")
	}
	for i := 1; i < len(m.ExplainedVariance); i++ {
		if m.ExplainedVariance[i] < m.ExplainedVariance[i-1] {
			t.Fatal("explained variance curve not monotone")
		}
	}
}

// TestGoldenDiscovery pins the full discovery artifact — cluster table,
// spectrum, anomaly threshold — so refactors of the fit path cannot
// silently move the served numbers.
func TestGoldenDiscovery(t *testing.T) {
	rows := discoveryRows(11, 4, 35, 6)
	feats := discoveryFeatures(6)
	m, err := FitDiscovery(rows, feats, DiscoveryConfig{K: 4, Restarts: 6, Seed: 2015, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	testkit.Section(&b, "core.FitDiscovery / blobs seed 11, fit seed 2015")
	b.WriteString(testkit.KeyVals(map[string]float64{
		"rows":             float64(m.Rows),
		"k":                float64(m.K),
		"inertia":          m.Inertia,
		"anomaly_distance": m.AnomalyDistance,
	}))
	testkit.Section(&b, "explained variance")
	for c, ev := range m.ExplainedVariance {
		fmt.Fprintf(&b, "c=%d %s\n", c+1, testkit.Float(ev))
	}
	testkit.Section(&b, "clusters")
	for _, c := range m.Clusters {
		fmt.Fprintf(&b, "cluster %d size=%d share=%s anomalous=%v meanDist=%s\n",
			c.ID, c.Size, testkit.Float(c.Share), c.Anomalous, testkit.Float(c.MeanDistance))
		names := make([]string, 0, len(c.Center))
		for name := range c.Center {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  center[%s] = %s\n", name, testkit.Float(c.Center[name]))
		}
		for _, d := range c.TopDeviations {
			fmt.Fprintf(&b, "  dev %s z=%s\n", d.Feature, testkit.Float(d.Z))
		}
	}
	testkit.Section(&b, "labels")
	fmt.Fprintf(&b, "labels = %s\n", testkit.HashInts(m.Labels))
	testkit.GoldenString(t, "discovery.golden", b.String())
}

func TestDiscoveryManagerSwap(t *testing.T) {
	reg := obs.NewRegistry()
	dm := NewDiscoveryManager(reg)
	if dm.View() != nil || dm.Generation() != 0 {
		t.Fatal("empty manager not empty")
	}
	rows := discoveryRows(2, 2, 20, 4)
	feats := discoveryFeatures(4)
	m1, err := FitDiscovery(rows, feats, DiscoveryConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := dm.Swap(m1)
	if err != nil || gen != 1 {
		t.Fatalf("first swap: gen=%d err=%v", gen, err)
	}
	v := dm.View()
	if v.Model != m1 || v.Generation != 1 || v.NumFeatures() != 4 {
		t.Fatal("view does not reflect the swap")
	}
	if i, ok := v.FeatureIndex("F02"); !ok || i != 2 {
		t.Fatalf("FeatureIndex(F02) = (%d,%v)", i, ok)
	}

	// A refit with a different K but the same schema installs.
	m2, err := FitDiscovery(rows, feats, DiscoveryConfig{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if gen, err = dm.Swap(m2); err != nil || gen != 2 {
		t.Fatalf("refit swap: gen=%d err=%v", gen, err)
	}

	// A schema change is rejected and leaves the serving view untouched.
	alien, err := FitDiscovery(discoveryRows(2, 2, 20, 3), discoveryFeatures(3), DiscoveryConfig{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dm.Swap(alien); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
	if _, err := dm.Swap(nil); err == nil {
		t.Fatal("nil model accepted")
	}
	if got := dm.View(); got.Model != m2 || got.Generation != 2 {
		t.Fatal("rejected swaps perturbed the serving view")
	}
	if g := reg.Gauge("discover_generation").Value(); g != 2 {
		t.Fatalf("discover_generation = %v", g)
	}
	if c := reg.Counter("discover_swap_total", "outcome", "ok").Value(); c != 2 {
		t.Fatalf("swap ok counter = %d", c)
	}
	if c := reg.Counter("discover_swap_total", "outcome", "rejected").Value(); c != 1 {
		t.Fatalf("swap rejected counter = %d", c)
	}
	if c := reg.Counter("discover_swap_total", "outcome", "error").Value(); c != 1 {
		t.Fatalf("swap error counter = %d", c)
	}
}

func TestLabelByRuntimeClass(t *testing.T) {
	rec := func(exit int, wall float64) *JobRecord {
		return &JobRecord{
			Job:     &cluster.Job{ExitCode: exit},
			Summary: &summarize.Summary{WallSeconds: wall},
		}
	}
	cases := []struct {
		exit int
		wall float64
		want string
	}{
		{1, 100, "failed"},
		{0, RuntimeShortMax - 1, "short"},
		{0, RuntimeShortMax, "medium"},
		{0, RuntimeLongMin - 1, "medium"},
		{0, RuntimeLongMin, "long"},
	}
	for _, c := range cases {
		got, ok := LabelByRuntimeClass(rec(c.exit, c.wall))
		if !ok || got != c.want {
			t.Errorf("exit=%d wall=%v: got (%q,%v), want %q", c.exit, c.wall, got, ok, c.want)
		}
	}
}
