package core

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/ml/bayes"
	"repro/internal/ml/compile"
	"repro/internal/ml/ensemble"
	"repro/internal/ml/eval"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Algorithm selects a classifier family.
type Algorithm string

// The three classifier families the paper evaluates, plus the stacked
// ensemble (NB + RF + SVM under a softmax meta-learner) the lifecycle
// loop trains as a challenger.
const (
	AlgoSVM    Algorithm = "svm"
	AlgoForest Algorithm = "rf"
	AlgoBayes  Algorithm = "nb"
	AlgoStack  Algorithm = "stack"
)

// ClassifierConfig configures JobClassifier training.
type ClassifierConfig struct {
	Algo   Algorithm
	SVM    svm.Config
	Forest forest.Config
	Stack  ensemble.Config

	// Span, when set, receives a "train.<algo>" child span covering the
	// fit (with model-internal sub-spans); nil is a no-op.
	Span *obs.Span
}

// PaperSVM returns the paper's SVM setup (RBF gamma=0.1, C=1000).
func PaperSVM(seed uint64) ClassifierConfig {
	cfg := svm.PaperConfig()
	cfg.Seed = seed
	return ClassifierConfig{Algo: AlgoSVM, SVM: cfg}
}

// PaperForest returns a randomForest-like setup.
func PaperForest(seed uint64) ClassifierConfig {
	return ClassifierConfig{Algo: AlgoForest, Forest: forest.Config{Trees: 200, Seed: seed}}
}

// JobClassifier is a trained application classifier with standardized
// features and probability outputs, the production artifact the paper
// proposes (SUPReMM summary in, application label + confidence out).
type JobClassifier struct {
	Algo     Algorithm
	Features []string

	model  eval.ProbClassifier
	scaler *stats.Scaler
	rf     *forest.Classifier // retained for importance analysis

	// compiled is the flat zero-allocation serving form (see
	// internal/ml/compile), built once by EnsureCompiled; nil keeps the
	// interpreted path. Predictions are bit-identical either way.
	compiled compile.Model
	scratch  sync.Pool // of *classifyScratch
}

// classifyScratch carries the per-request buffers of the compiled
// serving path: the scaled feature row plus the compiled model's own
// working memory.
type classifyScratch struct {
	row []float64
	cs  *compile.Scratch
}

// TrainJobClassifier standardizes a copy of the training features and fits
// the selected model. The input dataset is not mutated.
func TrainJobClassifier(train *dataset.Dataset, cfg ClassifierConfig) (*JobClassifier, error) {
	if train.Len() == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	sp := cfg.Span.Child("train." + string(cfg.Algo))
	defer sp.End()
	sp.SetAttr("rows", train.Len())
	sp.SetAttr("classes", len(train.ClassNames))
	work := train.Subset(indexRange(train.Len())) // deep copy
	scaler := work.Standardize()
	c := &JobClassifier{Algo: cfg.Algo, Features: train.FeatureNames, scaler: scaler}
	switch cfg.Algo {
	case AlgoSVM:
		cfg.SVM.Span = sp
		m, err := svm.Train(work, cfg.SVM)
		if err != nil {
			return nil, err
		}
		c.model = m
	case AlgoForest:
		cfg.Forest.Span = sp
		m, err := forest.TrainClassifier(work, cfg.Forest)
		if err != nil {
			return nil, err
		}
		c.model = m
		c.rf = m
	case AlgoBayes:
		m, err := bayes.Train(work)
		if err != nil {
			return nil, err
		}
		c.model = m
	case AlgoStack:
		cfg.Stack.Span = sp
		m, err := ensemble.Train(work, cfg.Stack)
		if err != nil {
			return nil, err
		}
		c.model = m
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", cfg.Algo)
	}
	// A freshly trained model of any known family always compiles; the
	// error path only exists for exotic or malformed models, which keep
	// serving interpreted.
	_ = c.EnsureCompiled()
	return c, nil
}

// EnsureCompiled lowers the model into its zero-allocation serving form
// (idempotent; see internal/ml/compile). It is not safe to call
// concurrently with itself — build the classifier fully before
// publishing it to readers, as ModelManager.Swap does. On error the
// classifier keeps serving through the interpreted path, which is
// behaviourally identical.
func (c *JobClassifier) EnsureCompiled() error {
	if c.compiled != nil {
		return nil
	}
	cm, err := compile.Compile(c.model)
	if err != nil {
		return err
	}
	c.compiled = cm
	p := len(c.Features)
	c.scratch.New = func() any {
		return &classifyScratch{row: make([]float64, p), cs: cm.NewScratch()}
	}
	return nil
}

// IsCompiled reports whether the classifier serves through the compiled
// zero-allocation engine.
func (c *JobClassifier) IsCompiled() bool { return c.compiled != nil }

// compiledScratch returns a pooled scratch when the compiled path is
// usable for a row of len(x) raw features (the row buffer is sized to
// the model schema, so other widths fall back to the interpreted path
// and fail exactly as they always did).
func (c *JobClassifier) compiledScratch(x []float64) (*classifyScratch, bool) {
	if c.compiled == nil || len(x) != len(c.Features) {
		return nil, false
	}
	s := c.scratch.Get().(*classifyScratch)
	copy(s.row, x)
	c.scaler.Transform(s.row)
	return s, true
}

func indexRange(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// Classes returns the class vocabulary.
func (c *JobClassifier) Classes() []string { return c.model.Classes() }

// PredictProb scales a raw feature row and returns the winning class index
// and the posterior vector (satisfies eval.ProbClassifier). The compiled
// and interpreted paths return byte-identical results; the returned
// slice is always caller-owned.
func (c *JobClassifier) PredictProb(x []float64) (int, []float64) {
	if s, ok := c.compiledScratch(x); ok {
		cls, probs := c.compiled.PredictProb(s.row, s.cs)
		out := append([]float64(nil), probs...)
		c.scratch.Put(s)
		return cls, out
	}
	return c.PredictProbInterpreted(x)
}

// PredictProbInterpreted is PredictProb through the original
// pointer-walking model, bypassing the compiled engine. It exists as
// the parity reference: tests and supremm-bench compare it bit-for-bit
// against the compiled path.
func (c *JobClassifier) PredictProbInterpreted(x []float64) (int, []float64) {
	row := append([]float64(nil), x...)
	c.scaler.Transform(row)
	return c.model.PredictProb(row)
}

// predictor is the plain (uncalibrated) prediction every model family
// provides: SVM one-vs-one voting, forest majority vote, NB max posterior.
type predictor interface {
	Predict(x []float64) int
}

// Predict scales a raw feature row and returns the plain predicted class
// index, bypassing probability calibration. Use this for accuracy;
// PredictProb/Classify for threshold analyses.
func (c *JobClassifier) Predict(x []float64) int {
	if s, ok := c.compiledScratch(x); ok {
		cls := c.compiled.Predict(s.row, s.cs)
		c.scratch.Put(s)
		return cls
	}
	return c.PredictInterpreted(x)
}

// PredictInterpreted is Predict through the original model, bypassing
// the compiled engine (the parity reference for tests and benches).
func (c *JobClassifier) PredictInterpreted(x []float64) int {
	row := append([]float64(nil), x...)
	c.scaler.Transform(row)
	if p, ok := c.model.(predictor); ok {
		return p.Predict(row)
	}
	cls, _ := c.model.PredictProb(row)
	return cls
}

// Classify applies a probability threshold: it returns the predicted label
// and its probability, with ok=false when the confidence falls below the
// threshold (the job is "not classified", as for the paper's
// Uncategorized/NA analysis). On the compiled path this is the serving
// hot call: the pooled scratch makes it allocation-free per row.
func (c *JobClassifier) Classify(x []float64, threshold float64) (label string, prob float64, ok bool) {
	if s, ok := c.compiledScratch(x); ok {
		cls, probs := c.compiled.PredictProb(s.row, s.cs)
		label := c.model.Classes()[cls]
		prob := probs[cls]
		c.scratch.Put(s)
		return label, prob, prob >= threshold
	}
	return c.ClassifyInterpreted(x, threshold)
}

// ClassifyInterpreted is Classify through the original model, bypassing
// the compiled engine (the parity reference for tests and benches).
func (c *JobClassifier) ClassifyInterpreted(x []float64, threshold float64) (label string, prob float64, ok bool) {
	cls, probs := c.PredictProbInterpreted(x)
	label = c.model.Classes()[cls]
	prob = probs[cls]
	return label, prob, prob >= threshold
}

// Score evaluates the classifier over a raw (unscaled) dataset whose class
// vocabulary matches training.
func (c *JobClassifier) Score(d *dataset.Dataset) []eval.Prediction {
	preds := make([]eval.Prediction, d.Len())
	for i, row := range d.X {
		cls, probs := c.PredictProb(row)
		preds[i] = eval.Prediction{True: d.Y[i], Pred: cls, MaxProb: probs[cls]}
	}
	return preds
}

// ScoreRows evaluates unlabeled raw feature rows.
func (c *JobClassifier) ScoreRows(rows [][]float64) []eval.Prediction {
	preds := make([]eval.Prediction, len(rows))
	for i, row := range rows {
		cls, probs := c.PredictProb(row)
		preds[i] = eval.Prediction{True: -1, Pred: cls, MaxProb: probs[cls]}
	}
	return preds
}

// Accuracy is the plain (vote-based) test accuracy on a raw dataset.
func (c *JobClassifier) Accuracy(d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, row := range d.X {
		if c.Predict(row) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// Importance returns per-feature permutation importance. Only available
// for the random-forest algorithm (as the paper notes, the R e1071 SVM
// exposes no importance; randomForest does).
func (c *JobClassifier) Importance() ([]float64, error) {
	if c.rf == nil {
		return nil, fmt.Errorf("core: importance requires the rf algorithm")
	}
	imp := c.rf.Importance()
	if imp == nil {
		return nil, fmt.Errorf("core: importance unavailable on a restored model")
	}
	return imp, nil
}
