package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/apps"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// RankedFeature pairs a feature name with its importance.
type RankedFeature struct {
	Name       string
	Importance float64
}

// RankFeatures sorts feature importances descending (Figure 5's ordering).
func RankFeatures(names []string, importance []float64) []RankedFeature {
	if len(names) != len(importance) {
		panic("core: names/importance length mismatch")
	}
	idx := stats.ArgsortDesc(importance)
	out := make([]RankedFeature, len(idx))
	for i, j := range idx {
		out[i] = RankedFeature{Name: names[j], Importance: importance[j]}
	}
	return out
}

// SweepPoint is one retrained model of the predictor-count sweep.
type SweepPoint struct {
	NumFeatures int
	Features    []string
	Accuracy    float64
}

// PredictorSweep reproduces Figure 6: features are ranked by importance,
// and for each cutoff count a fresh model is trained on the top-k features
// and evaluated on the test set. counts of 0 means every k from all
// features down to 1.
func PredictorSweep(train, test *dataset.Dataset, ranked []RankedFeature, cfg ClassifierConfig, counts []int) ([]SweepPoint, error) {
	if len(counts) == 0 {
		for k := len(ranked); k >= 1; k-- {
			counts = append(counts, k)
		}
	}
	var out []SweepPoint
	for _, k := range counts {
		if k < 1 || k > len(ranked) {
			return nil, fmt.Errorf("core: sweep count %d out of range", k)
		}
		names := make([]string, k)
		for i := 0; i < k; i++ {
			names[i] = ranked[i].Name
		}
		subTrain, err := train.SelectFeatures(names)
		if err != nil {
			return nil, err
		}
		subTest, err := test.SelectFeatures(names)
		if err != nil {
			return nil, err
		}
		model, err := TrainJobClassifier(subTrain, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{NumFeatures: k, Features: names, Accuracy: model.Accuracy(subTest)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NumFeatures > out[j].NumFeatures })
	return out, nil
}

// EfficiencyRule is the paper's Section II manual labeling rule: a job is
// inefficient when any of the listed conditions holds.
type EfficiencyRule struct {
	MaxCPUUser     float64 // inefficient if CPU_USER below this (paper: 0.30)
	MaxCPI         float64 // inefficient if CPI below this (paper: 2)*
	MinCPLD        float64 // inefficient if CPLD above this (paper: 0.1)*
	MaxCatastrophe float64 // inefficient if CATASTROPHE below this (paper: 0.2)
	MinImbalance   float64 // inefficient if CPU_USER_IMBALANCE above this (paper: 1)
}

// *The paper prints "CPI values < 2; CPLD > 0.1" as inefficiency marks;
// the thresholds here are configurable because the printed values read as
// transposed for CPI (low CPI is usually good). DefaultEfficiencyRule uses
// directions that produce a separable, meaningful labeling on this
// generator's scales.

// DefaultEfficiencyRule returns thresholds tuned to this generator's
// metric scales, preserving the paper's property that the labeling is a
// deterministic disjunction of attribute thresholds (hence separable).
func DefaultEfficiencyRule() EfficiencyRule {
	return EfficiencyRule{
		MaxCPUUser:     0.55,
		MaxCPI:         0.75, // the paper's printed "CPI < 2" clause, rescaled
		MinCPLD:        7.5,
		MaxCatastrophe: 0.2,
		MinImbalance:   0.40,
	}
}

// Inefficient applies the rule to a summary-derived feature row.
func (r EfficiencyRule) Inefficient(rec *JobRecord) bool {
	s := rec.Summary
	if s.Means[apps.CPUUser] < r.MaxCPUUser {
		return true
	}
	if r.MaxCPI > 0 && s.Means[apps.CPI] < r.MaxCPI {
		return true
	}
	if r.MinCPLD > 0 && s.Means[apps.CPLD] > r.MinCPLD {
		return true
	}
	if s.Catastrophe < r.MaxCatastrophe {
		return true
	}
	if s.CPUUserImbalance > r.MinImbalance {
		return true
	}
	return false
}

// Margin returns how far a job sits from the rule's nearest decision
// boundary, as a fraction of the threshold value (0 = exactly on a
// boundary). The paper's Section II dataset "were selected to be
// completely separable"; selecting jobs with Margin above a band
// reproduces that selection.
func (r EfficiencyRule) Margin(rec *JobRecord) float64 {
	s := rec.Summary
	margin := math.Inf(1)
	rel := func(value, threshold float64) {
		if threshold <= 0 {
			return
		}
		m := math.Abs(value-threshold) / threshold
		if m < margin {
			margin = m
		}
	}
	rel(s.Means[apps.CPUUser], r.MaxCPUUser)
	if r.MaxCPI > 0 {
		rel(s.Means[apps.CPI], r.MaxCPI)
	}
	if r.MinCPLD > 0 {
		rel(s.Means[apps.CPLD], r.MinCPLD)
	}
	rel(s.Catastrophe, r.MaxCatastrophe)
	rel(s.CPUUserImbalance, r.MinImbalance)
	return margin
}

// LabelByEfficiency returns a LabelFunc applying the rule.
func LabelByEfficiency(rule EfficiencyRule) LabelFunc {
	return func(rec *JobRecord) (string, bool) {
		if rule.Inefficient(rec) {
			return "inefficient", true
		}
		return "efficient", true
	}
}
