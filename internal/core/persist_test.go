package core

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTripAllAlgorithms(t *testing.T) {
	res := runSmall(t, 42, 300)
	d, err := BuildDataset(res.Records, LabelByCategory, DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []ClassifierConfig{
		{Algo: AlgoBayes},
		PaperForest(5),
		PaperSVM(5),
	} {
		orig, err := TrainJobClassifier(d, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Algo, err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatalf("%s save: %v", cfg.Algo, err)
		}
		restored, err := LoadJobClassifier(&buf)
		if err != nil {
			t.Fatalf("%s load: %v", cfg.Algo, err)
		}
		if restored.Algo != cfg.Algo || len(restored.Features) != len(orig.Features) {
			t.Fatalf("%s: header mismatch", cfg.Algo)
		}
		// Predictions and probabilities must match exactly.
		for i := 0; i < 30 && i < d.Len(); i++ {
			c1, p1 := orig.PredictProb(d.X[i])
			c2, p2 := restored.PredictProb(d.X[i])
			if c1 != c2 {
				t.Fatalf("%s: class mismatch on row %d", cfg.Algo, i)
			}
			for k := range p1 {
				if p1[k] != p2[k] {
					t.Fatalf("%s: probability mismatch on row %d", cfg.Algo, i)
				}
			}
			if orig.Predict(d.X[i]) != restored.Predict(d.X[i]) {
				t.Fatalf("%s: plain prediction mismatch", cfg.Algo)
			}
		}
	}
}

func TestRestoredForestHasNoImportance(t *testing.T) {
	res := runSmall(t, 42, 300)
	d, _ := BuildDataset(res.Records, LabelByCategory, DefaultFeatures())
	orig, err := TrainJobClassifier(d, PaperForest(7))
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadJobClassifier(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Importance(); err == nil {
		t.Error("restored forest should refuse importance")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := LoadJobClassifier(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage input should fail")
	}
}
