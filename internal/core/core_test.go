package core

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/lariat"
	"repro/internal/ml/eval"
	"repro/internal/rng"
	"repro/internal/summarize"
)

func rngFor(seed uint64) *rng.Rand { return rng.New(seed) }

// smallPipeline runs a modest end-to-end pipeline once per test binary.
var pipelineCache = map[uint64]*PipelineResult{}

func runSmall(t *testing.T, seed uint64, n int) *PipelineResult {
	t.Helper()
	if r, ok := pipelineCache[seed]; ok {
		return r
	}
	cfg := DefaultPipelineConfig(seed, n)
	res, err := RunPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipelineCache[seed] = res
	return res
}

func TestFeatureNamesAndFeaturizeAgree(t *testing.T) {
	for _, opt := range []FeatureOptions{
		{},
		{COV: true},
		{Derived: true},
		DefaultFeatures(),
		{COV: true, Derived: true, Segments: 3},
	} {
		names := FeatureNames(opt)
		s := &summarize.Summary{Nodes: 2}
		if opt.Segments > 0 {
			s.SegmentMeans = make([][apps.NumMetrics]float64, opt.Segments)
		}
		row := Featurize(s, opt)
		if len(row) != len(names) {
			t.Errorf("opt %+v: %d names but %d features", opt, len(names), len(row))
		}
	}
}

func TestFeatureNamesUnique(t *testing.T) {
	names := FeatureNames(FeatureOptions{COV: true, Derived: true, Segments: 3})
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	res := runSmall(t, 42, 300)
	if len(res.Records) != 300 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if res.Store.Len() != 300 {
		t.Fatalf("warehouse = %d", res.Store.Len())
	}
	pops := map[cluster.Population]int{}
	for _, r := range res.Records {
		pops[r.Job.Population]++
		if r.Summary == nil {
			t.Fatal("record missing summary")
		}
		// Lariat label consistency with population.
		switch r.Job.Population {
		case cluster.PopNA:
			if r.Label != lariat.NA {
				t.Errorf("NA job labeled %q", r.Label)
			}
		case cluster.PopUncategorized:
			if r.Label != lariat.Uncategorized {
				t.Errorf("uncategorized job labeled %q", r.Label)
			}
		case cluster.PopCommunity:
			if r.Label != r.TrueApp() {
				t.Errorf("community job %s labeled %q", r.TrueApp(), r.Label)
			}
		}
	}
	if pops[cluster.PopCommunity] == 0 || pops[cluster.PopNA] == 0 || pops[cluster.PopUncategorized] == 0 {
		t.Errorf("population counts: %v", pops)
	}
}

func TestPipelineDeterminism(t *testing.T) {
	cfg := DefaultPipelineConfig(7, 40)
	r1, err := RunPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Records {
		a, b := r1.Records[i], r2.Records[i]
		if a.Job.ID != b.Job.ID || a.Label != b.Label || a.Summary.Means != b.Summary.Means {
			t.Fatalf("pipeline not deterministic at record %d", i)
		}
	}
}

func TestPipelineRejectsBadConfig(t *testing.T) {
	if _, err := RunPipeline(PipelineConfig{}); err == nil {
		t.Fatal("expected error for zero jobs")
	}
}

func TestBuildDatasetLariat(t *testing.T) {
	res := runSmall(t, 42, 300)
	d, err := BuildDataset(res.Records, LabelByLariat, DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 {
		t.Fatal("empty dataset")
	}
	// Only community labels present.
	for _, c := range d.ClassNames {
		if c == lariat.NA || c == lariat.Uncategorized {
			t.Errorf("unlabeled class %q leaked into dataset", c)
		}
	}
	if d.NumFeatures() != len(FeatureNames(DefaultFeatures())) {
		t.Error("feature count mismatch")
	}
}

func TestLabelFuncs(t *testing.T) {
	res := runSmall(t, 42, 300)
	var rec *JobRecord
	for _, r := range res.Records {
		if r.Job.Population == cluster.PopCommunity {
			rec = r
			break
		}
	}
	name, ok := LabelByLariat(rec)
	if !ok || name != rec.TrueApp() {
		t.Errorf("LabelByLariat = %q, %v", name, ok)
	}
	cat, ok := LabelByCategory(rec)
	if !ok || cat != rec.TrueCategory() {
		t.Errorf("LabelByCategory = %q, %v", cat, ok)
	}
	exit, ok := LabelByExit(rec)
	if !ok || (exit != "success" && exit != "failure") {
		t.Errorf("LabelByExit = %q, %v", exit, ok)
	}
}

func TestTrainJobClassifierSVMvsRFvsNB(t *testing.T) {
	if testing.Short() {
		t.Skip("training is expensive")
	}
	res := runSmall(t, 42, 300)
	d, err := BuildDataset(res.Records, LabelByCategory, DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	// Keep only common categories to make the tiny problem stable.
	train := d.Balanced(rngFor(1), 25)
	for _, algo := range []ClassifierConfig{PaperSVM(1), PaperForest(1), {Algo: AlgoBayes}} {
		c, err := TrainJobClassifier(train, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo.Algo, err)
		}
		acc := c.Accuracy(train)
		if acc < 0.5 {
			t.Errorf("%s train accuracy = %v", algo.Algo, acc)
		}
		// Classify API consistency.
		label, prob, _ := c.Classify(d.X[0], 0.5)
		if prob < 0 || prob > 1 {
			t.Errorf("%s: probability %v", algo.Algo, prob)
		}
		if c.Classes()[0] == "" || label == "" {
			t.Errorf("%s: empty label", algo.Algo)
		}
	}
}

func TestTrainJobClassifierDoesNotMutateInput(t *testing.T) {
	res := runSmall(t, 42, 300)
	d, _ := BuildDataset(res.Records, LabelByCategory, DefaultFeatures())
	before := append([]float64(nil), d.X[0]...)
	if _, err := TrainJobClassifier(d, ClassifierConfig{Algo: AlgoBayes}); err != nil {
		t.Fatal(err)
	}
	for j := range before {
		if d.X[0][j] != before[j] {
			t.Fatal("training mutated the caller's dataset")
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	res := runSmall(t, 42, 300)
	d, _ := BuildDataset(res.Records, LabelByCategory, DefaultFeatures())
	if _, err := TrainJobClassifier(d, ClassifierConfig{Algo: "nope"}); err == nil {
		t.Fatal("expected unknown-algorithm error")
	}
}

func TestImportanceOnlyForRF(t *testing.T) {
	res := runSmall(t, 42, 300)
	d, _ := BuildDataset(res.Records, LabelByCategory, DefaultFeatures())
	nb, _ := TrainJobClassifier(d, ClassifierConfig{Algo: AlgoBayes})
	if _, err := nb.Importance(); err == nil {
		t.Error("NB importance should error")
	}
	rf, err := TrainJobClassifier(d, PaperForest(3))
	if err != nil {
		t.Fatal(err)
	}
	imp, err := rf.Importance()
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != d.NumFeatures() {
		t.Errorf("importance length %d", len(imp))
	}
	ranked := RankFeatures(d.FeatureNames, imp)
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Importance > ranked[i-1].Importance {
			t.Fatal("RankFeatures not descending")
		}
	}
}

func TestPredictorSweep(t *testing.T) {
	res := runSmall(t, 42, 300)
	d, _ := BuildDataset(res.Records, LabelByCategory, DefaultFeatures())
	train, test := d.Split(rngFor(2), 0.7)
	rf, err := TrainJobClassifier(train, PaperForest(4))
	if err != nil {
		t.Fatal(err)
	}
	imp, _ := rf.Importance()
	ranked := RankFeatures(train.FeatureNames, imp)
	pts, err := PredictorSweep(train, test, ranked, PaperForest(5), []int{len(ranked), 5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	if pts[0].NumFeatures != len(ranked) || pts[2].NumFeatures != 1 {
		t.Error("sweep ordering wrong")
	}
	if _, err := PredictorSweep(train, test, ranked, PaperForest(5), []int{0}); err == nil {
		t.Error("count 0 should error")
	}
}

func TestEfficiencyRule(t *testing.T) {
	res := runSmall(t, 42, 300)
	rule := DefaultEfficiencyRule()
	label := LabelByEfficiency(rule)
	nIneff := 0
	for _, r := range res.Records {
		l, ok := label(r)
		if !ok {
			t.Fatal("efficiency labels every job")
		}
		if l == "inefficient" {
			nIneff++
		}
		// Rule consistency: jobs with catastrophic collapse are inefficient.
		if r.Summary.Catastrophe < rule.MaxCatastrophe && l != "inefficient" {
			t.Error("catastrophic job labeled efficient")
		}
	}
	frac := float64(nIneff) / float64(len(res.Records))
	if frac <= 0 || frac >= 0.9 {
		t.Errorf("inefficient fraction = %v, want non-degenerate", frac)
	}
}

func TestScoreRows(t *testing.T) {
	res := runSmall(t, 42, 300)
	d, _ := BuildDataset(res.Records, LabelByCategory, DefaultFeatures())
	c, _ := TrainJobClassifier(d, ClassifierConfig{Algo: AlgoBayes})
	na := FilterPopulation(res.Records, cluster.PopNA)
	rows := FeaturizeAll(na, DefaultFeatures())
	preds := c.ScoreRows(rows)
	if len(preds) != len(na) {
		t.Fatal("prediction count mismatch")
	}
	for _, p := range preds {
		if p.True != -1 {
			t.Fatal("unlabeled prediction has ground truth")
		}
		if math.IsNaN(p.MaxProb) {
			t.Fatal("NaN probability")
		}
	}
	curve := eval.ThresholdCurve(preds, eval.DefaultThresholds())
	if curve[len(curve)-1].Classified != 1 {
		t.Error("at threshold 0.05 nearly everything should classify")
	}
}
