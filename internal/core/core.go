package core
