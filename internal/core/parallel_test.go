package core

import (
	"math"
	"testing"
)

// TestPipelineWorkerParity: the generated records — labels, summaries and
// features — are bit-identical at any collection worker count, because
// each job's collection noise comes from Split(jobIndex) rather than a
// shared advancing stream.
func TestPipelineWorkerParity(t *testing.T) {
	mk := func(workers int) *PipelineResult {
		cfg := DefaultPipelineConfig(77, 120)
		cfg.Workers = workers
		res, err := RunPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := mk(1)
	refRows := FeaturizeAll(ref.Records, DefaultFeatures())
	for _, w := range []int{0, 3, 16} {
		got := mk(w)
		if len(got.Records) != len(ref.Records) {
			t.Fatalf("workers=%d: %d records, want %d", w, len(got.Records), len(ref.Records))
		}
		rows := FeaturizeAll(got.Records, DefaultFeatures())
		for i := range ref.Records {
			if got.Records[i].Job.ID != ref.Records[i].Job.ID {
				t.Fatalf("workers=%d: job order diverged at %d", w, i)
			}
			if got.Records[i].Label != ref.Records[i].Label {
				t.Fatalf("workers=%d: label diverged for job %s", w, got.Records[i].Job.ID)
			}
			for f := range refRows[i] {
				if math.Float64bits(rows[i][f]) != math.Float64bits(refRows[i][f]) {
					t.Fatalf("workers=%d: feature[%d][%d] = %v, want %v",
						w, i, f, rows[i][f], refRows[i][f])
				}
			}
		}
	}
}
