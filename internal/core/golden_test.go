package core_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/testkit"
)

func synthCoreData(t *testing.T) (train, test *dataset.Dataset) {
	t.Helper()
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 83, Classes: 3, RowsPerCls: 30})
	return d.Split(rng.New(83), 0.7)
}

// TestGoldenJobClassifier pins the production classifier artifact across
// all three algorithm families: accuracies, thresholded Classify outcomes,
// the forest importance ranking feeding Table 3 / Figure 5, the Figure 6
// predictor sweep, and the serialized model bytes. Every algorithm also
// round-trips through Save/Load and must predict identically restored.
func TestGoldenJobClassifier(t *testing.T) {
	train, test := synthCoreData(t)
	rfCfg := core.PaperForest(83)
	rfCfg.Forest.Trees = 40 // keep the corpus fast
	configs := map[string]core.ClassifierConfig{
		"nb":  {Algo: core.AlgoBayes},
		"rf":  rfCfg,
		"svm": core.PaperSVM(83),
	}

	var b strings.Builder
	testkit.Section(&b, "core.JobClassifier / synth seed 83")
	for _, algo := range []string{"nb", "rf", "svm"} {
		c, err := core.TrainJobClassifier(train, configs[algo])
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		classes := make([]int, test.Len())
		var below int
		for i, row := range test.X {
			classes[i] = c.Predict(row)
			if _, _, ok := c.Classify(row, 0.8); !ok {
				below++
			}
		}
		blob, err := c.SaveBytes()
		if err != nil {
			t.Fatalf("%s: save: %v", algo, err)
		}
		back, err := core.LoadJobClassifier(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s: load: %v", algo, err)
		}
		// The serialized parameters are pinned through the restored
		// model's full-precision posteriors, not a hash of the gob bytes:
		// gob wire type IDs come from a process-global counter, so the
		// raw stream varies with test execution order.
		var restored []float64
		for i, row := range test.X {
			pred, probs := back.PredictProb(row)
			if pred != classes[i] {
				t.Fatalf("%s: restored model disagrees at row %d", algo, i)
			}
			restored = append(restored, probs...)
		}
		testkit.Section(&b, algo)
		b.WriteString(testkit.KeyVals(map[string]float64{
			"test_accuracy": c.Accuracy(test),
			"below_0.80":    float64(below),
		}))
		fmt.Fprintf(&b, "predictions    = %s\n", testkit.HashInts(classes))
		fmt.Fprintf(&b, "restored_probs = %s\n", testkit.HashFloats(restored))

		if algo == "rf" {
			imp, err := c.Importance()
			if err != nil {
				t.Fatal(err)
			}
			ranked := core.RankFeatures(c.Features, imp)
			testkit.Section(&b, "rf importance ranking")
			for _, r := range ranked {
				fmt.Fprintf(&b, "%s = %s\n", r.Name, testkit.Float(r.Importance))
			}
			sweep, err := core.PredictorSweep(train, test, ranked, configs["rf"], []int{3, 2, 1})
			if err != nil {
				t.Fatal(err)
			}
			testkit.Section(&b, "rf predictor sweep")
			for _, p := range sweep {
				fmt.Fprintf(&b, "k=%d accuracy=%s features=%s\n",
					p.NumFeatures, testkit.Float(p.Accuracy), strings.Join(p.Features, ","))
			}
		}
	}
	testkit.GoldenString(t, "job_classifier.golden", b.String())
}
