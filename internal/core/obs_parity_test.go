package core

import (
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// digestRecords hashes every job id, label and feature row bit-for-bit.
func digestRecords(t *testing.T, res *PipelineResult) uint64 {
	t.Helper()
	h := fnv.New64a()
	rows := FeaturizeAll(res.Records, DefaultFeatures())
	var b [8]byte
	for i, rec := range res.Records {
		h.Write([]byte(rec.Job.ID))
		h.Write([]byte(rec.Label))
		for _, v := range rows[i] {
			bits := math.Float64bits(v)
			for k := 0; k < 8; k++ {
				b[k] = byte(bits >> (8 * k))
			}
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

// TestInstrumentedPipelineParity asserts that full instrumentation —
// stage spans, registry histograms, pool metrics, structured logging —
// leaves the pipeline output bit-identical to an uninstrumented run.
func TestInstrumentedPipelineParity(t *testing.T) {
	const seed, jobs = 417, 250

	plain, err := RunPipeline(DefaultPipelineConfig(seed, jobs))
	if err != nil {
		t.Fatal(err)
	}
	plainDigest := digestRecords(t, plain)

	reg := obs.NewRegistry()
	parallel.Instrument(reg)
	t.Cleanup(func() { parallel.Instrument(nil) })
	root := obs.NewSpan("pipeline")
	cfg := DefaultPipelineConfig(seed, jobs)
	cfg.Obs = Instrumentation{Span: root, Metrics: reg, Log: nil}
	instrumented, err := RunPipeline(cfg)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if got := digestRecords(t, instrumented); got != plainDigest {
		t.Fatalf("instrumented digest %x != uninstrumented %x", got, plainDigest)
	}

	// The trace must cover every pipeline stage.
	tree := root.Tree()
	stages := map[string]bool{}
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		stages[n.Name] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree)
	for _, want := range []string{"generate", "collect+summarize", "collect", "summarize", "ingest"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (have %v)", want, stages)
		}
	}

	// And the metrics must have actually observed the workload.
	if got := reg.Histogram("pipeline_collect_seconds", nil).Count(); got != jobs {
		t.Errorf("collect histogram count = %d, want %d", got, jobs)
	}
	if got := reg.Histogram("pipeline_summarize_seconds", nil).Count(); got != jobs {
		t.Errorf("summarize histogram count = %d, want %d", got, jobs)
	}
	if got := reg.Counter("pool_tasks_done_total").Value(); got < jobs {
		t.Errorf("pool done = %d, want >= %d", got, jobs)
	}
}

// TestBuildDatasetObsParity asserts the traced featurize path returns the
// same dataset as the plain one.
func TestBuildDatasetObsParity(t *testing.T) {
	res, err := RunPipeline(DefaultPipelineConfig(91, 120))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildDataset(res.Records, LabelByLariat, DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	root := obs.NewSpan("r")
	traced, err := BuildDatasetObs(Instrumentation{Span: root}, res.Records, LabelByLariat, DefaultFeatures())
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != traced.Len() || len(plain.FeatureNames) != len(traced.FeatureNames) {
		t.Fatalf("shape diverged: %dx%d vs %dx%d",
			plain.Len(), len(plain.FeatureNames), traced.Len(), len(traced.FeatureNames))
	}
	for i := range plain.X {
		if plain.Y[i] != traced.Y[i] {
			t.Fatalf("row %d label diverged", i)
		}
		for j := range plain.X[i] {
			if plain.X[i][j] != traced.X[i][j] {
				t.Fatalf("row %d feature %d diverged: %v vs %v", i, j, plain.X[i][j], traced.X[i][j])
			}
		}
	}
	if tree := root.Tree(); len(tree.Children) != 1 || tree.Children[0].Name != "featurize" {
		t.Errorf("expected one featurize child span, got %+v", tree.Children)
	}
}
