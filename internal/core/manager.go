package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// ErrSchemaMismatch reports a model swap rejected because the incoming
// model's feature schema is incompatible with the one currently serving.
// Callers (e.g. the admin reload endpoint) can map it to a conflict
// status while other load failures stay bad-request errors.
var ErrSchemaMismatch = errors.New("core: model feature schema mismatch")

// ModelView is one immutable generation of the serving model: the
// classifier, its generation number, and a precomputed feature name ->
// index map so request feature resolution is O(1) per attribute instead
// of a linear scan over Features. Views are never mutated after
// publication, so a request that captures a view once observes a single
// self-consistent model no matter how many swaps land mid-flight.
type ModelView struct {
	Model      *JobClassifier
	Generation uint64

	index map[string]int
}

// FeatureIndex resolves a feature name to its position in the model's
// feature vector.
func (v *ModelView) FeatureIndex(name string) (int, bool) {
	i, ok := v.index[name]
	return i, ok
}

// NumFeatures returns the model's feature vector width.
func (v *ModelView) NumFeatures() int { return len(v.Model.Features) }

// Compiled reports whether the published model serves through the
// compiled zero-allocation engine (see internal/ml/compile). Swap
// compiles at install time, so for the three paper model families this
// is always true; a model that failed to lower serves interpreted.
func (v *ModelView) Compiled() bool { return v.Model.IsCompiled() }

// Annotate stamps the serving model's identity (generation, compiled
// flag, algorithm) onto an in-flight wide event, so a recorded request
// is attributable to the exact model that answered it even across
// hot-swaps. Nil-safe on both sides; single and batch handlers share it
// so the annotation cannot drift between them.
func (v *ModelView) Annotate(a *flight.Active) {
	if v == nil {
		return
	}
	a.SetModel(v.Generation, v.Compiled(), string(v.Model.Algo))
}

// ModelManager publishes a JobClassifier to concurrent readers behind an
// atomic pointer and swaps it without blocking them: readers load the
// current ModelView with one atomic load, writers validate and install a
// fully-built replacement view. The zero manager is not ready; use
// NewModelManager.
type ModelManager struct {
	cur atomic.Pointer[ModelView]

	mu   sync.Mutex // serializes swaps and the default reload path
	gen  uint64     // generation of the last installed view (under mu)
	path string     // default file for ReloadFromFile("") (under mu)

	generation *obs.Gauge
	swapOK     *obs.Counter
	swapRej    *obs.Counter
	swapErr    *obs.Counter
}

// NewModelManager returns an empty manager (View returns nil until the
// first Swap). reg may be nil; when set, the manager exports
// model_generation and model_swap_total{outcome} metrics.
func NewModelManager(reg *obs.Registry) *ModelManager {
	return NewNamedModelManager(reg, "model")
}

// NewNamedModelManager is NewModelManager with a metric-family prefix,
// so a second manager in the same process (e.g. the runtime-class
// model) exports its own <prefix>_generation / <prefix>_swap_total
// series instead of colliding with the primary classifier's.
func NewNamedModelManager(reg *obs.Registry, prefix string) *ModelManager {
	reg.Help(prefix+"_generation", "Generation number of the serving "+prefix+" classifier (0 = none loaded).")
	reg.Help(prefix+"_swap_total", "Hot-swap attempts for the "+prefix+" classifier by outcome.")
	return &ModelManager{
		generation: reg.Gauge(prefix + "_generation"),
		swapOK:     reg.Counter(prefix+"_swap_total", "outcome", "ok"),
		swapRej:    reg.Counter(prefix+"_swap_total", "outcome", "rejected"),
		swapErr:    reg.Counter(prefix+"_swap_total", "outcome", "error"),
	}
}

// View returns the current model view, or nil when no model is loaded.
// The returned view is immutable; hold it for the duration of a request
// to see one consistent generation.
func (m *ModelManager) View() *ModelView {
	if m == nil {
		return nil
	}
	return m.cur.Load()
}

// Generation returns the generation of the serving model (0 before the
// first successful swap).
func (m *ModelManager) Generation() uint64 {
	v := m.View()
	if v == nil {
		return 0
	}
	return v.Generation
}

// buildIndex precomputes the feature name -> index map, rejecting
// duplicate names (which would make name-keyed requests ambiguous).
func buildIndex(features []string) (map[string]int, error) {
	idx := make(map[string]int, len(features))
	for i, f := range features {
		if f == "" {
			return nil, fmt.Errorf("core: model has an empty feature name at index %d", i)
		}
		if j, dup := idx[f]; dup {
			return nil, fmt.Errorf("core: model declares feature %q twice (indexes %d and %d)", f, j, i)
		}
		idx[f] = i
	}
	return idx, nil
}

// validateSwap checks an incoming model intrinsically and, when a model
// is already serving, structurally against it: the feature name sets
// must match (order may differ -- clients address features by name, and
// the prebuilt index absorbs any reordering).
func validateSwap(next *JobClassifier, cur *ModelView) (map[string]int, error) {
	if next == nil {
		return nil, errors.New("core: cannot swap in a nil model")
	}
	if len(next.Features) == 0 {
		return nil, errors.New("core: cannot swap in a model with no features")
	}
	idx, err := buildIndex(next.Features)
	if err != nil {
		return nil, err
	}
	if cur == nil {
		return idx, nil
	}
	if len(cur.Model.Features) != len(next.Features) {
		return nil, fmt.Errorf("%w: serving %d features, incoming %d",
			ErrSchemaMismatch, len(cur.Model.Features), len(next.Features))
	}
	var missing []string
	for _, f := range cur.Model.Features {
		if _, ok := idx[f]; !ok {
			missing = append(missing, f)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("%w: incoming model lacks %v", ErrSchemaMismatch, missing)
	}
	return idx, nil
}

// Swap validates next and atomically installs it as the serving model,
// returning the new generation. On any error the previous model keeps
// serving untouched. In-flight requests holding the old view finish on
// it; new requests observe the new view.
func (m *ModelManager) Swap(next *JobClassifier) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx, err := validateSwap(next, m.cur.Load())
	if err != nil {
		if errors.Is(err, ErrSchemaMismatch) {
			m.swapRej.Inc()
		} else {
			m.swapErr.Inc()
		}
		return m.gen, err
	}
	// Compile once at install time, before the view is published, so no
	// request ever pays the lowering cost and every reader of the view
	// sees the same serving form. Models that cannot compile (exotic
	// types, malformed snapshots) serve interpreted — bit-identical,
	// just slower.
	_ = next.EnsureCompiled()
	m.gen++
	m.cur.Store(&ModelView{Model: next, Generation: m.gen, index: idx})
	m.generation.Set(float64(m.gen))
	m.swapOK.Inc()
	return m.gen, nil
}

// SwapFromReader loads a serialized classifier (as written by Save) and
// swaps it in.
func (m *ModelManager) SwapFromReader(r io.Reader) (uint64, error) {
	next, err := LoadJobClassifier(r)
	if err != nil {
		m.swapErr.Inc()
		return m.Generation(), err
	}
	return m.Swap(next)
}

// SetPath sets the default model file for ReloadFromFile("").
func (m *ModelManager) SetPath(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.path = path
}

// Path returns the default model file, if any.
func (m *ModelManager) Path() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.path
}

// ReloadFromFile loads a saved classifier from path (or, when path is
// empty, from the configured default) and swaps it in. On success the
// path becomes the new default, so a later SIGHUP or bare reload repeats
// it.
func (m *ModelManager) ReloadFromFile(path string) (uint64, error) {
	if path == "" {
		path = m.Path()
	}
	if path == "" {
		return m.Generation(), errors.New("core: no model path configured for reload")
	}
	f, err := os.Open(path)
	if err != nil {
		m.swapErr.Inc()
		return m.Generation(), err
	}
	defer f.Close()
	gen, err := m.SwapFromReader(f)
	if err != nil {
		return gen, err
	}
	m.SetPath(path)
	return gen, nil
}
