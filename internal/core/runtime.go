package core

// Runtime-class decision support: predict at submit time which
// runtime/outcome bucket a job will land in (arXiv 1605.00388 frames the
// same problem for scheduler backfill). The classes are deliberately
// coarse — a scheduler needs "will this finish inside the short-queue
// window, and is it likely to fail" — and reuse the existing
// JobClassifier/ModelManager machinery unchanged.

// Runtime-class wall-clock boundaries in seconds. The workload's
// signatures draw wall time lognormally around 2-20 hours, so 4h/12h
// splits the mass into three populated buckets.
const (
	RuntimeShortMax = 4 * 3600
	RuntimeLongMin  = 12 * 3600
)

// LabelByRuntimeClass buckets every job into a submit-time decision
// class: "failed" when the job script exited non-zero, otherwise
// "short" / "medium" / "long" by measured wall time.
func LabelByRuntimeClass(r *JobRecord) (string, bool) {
	if r.Job.ExitCode != 0 {
		return "failed", true
	}
	switch w := r.Summary.WallSeconds; {
	case w < RuntimeShortMax:
		return "short", true
	case w < RuntimeLongMin:
		return "medium", true
	default:
		return "long", true
	}
}

// TrainRuntimeClassifier trains the runtime-class model over every
// record (unlike app classification, runtime class needs no Lariat
// label, so the Uncategorized/NA population trains too).
func TrainRuntimeClassifier(records []*JobRecord, cfg ClassifierConfig) (*JobClassifier, error) {
	ds, err := BuildDataset(records, LabelByRuntimeClass, DefaultFeatures())
	if err != nil {
		return nil, err
	}
	return TrainJobClassifier(ds, cfg)
}
