package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/ml/bayes"
	"repro/internal/ml/ensemble"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/stats"
)

// classifierSnapshot is the on-disk form of a JobClassifier: feature
// layout, scaler parameters, and the model family's own binary snapshot.
type classifierSnapshot struct {
	Algo     Algorithm
	Features []string
	Means    []float64
	Stds     []float64
	Model    []byte
}

// Save writes a trained classifier to w. The restored classifier predicts
// identically; training-side state (e.g. the forest's OOB bookkeeping
// behind Importance) is not retained.
func (c *JobClassifier) Save(w io.Writer) error {
	var modelBytes []byte
	var err error
	switch m := c.model.(type) {
	case *svm.Model:
		modelBytes, err = m.MarshalBinary()
	case *forest.Classifier:
		modelBytes, err = m.MarshalBinary()
	case *bayes.Model:
		modelBytes, err = m.MarshalBinary()
	case *ensemble.Model:
		modelBytes, err = m.MarshalBinary()
	default:
		return fmt.Errorf("core: cannot serialize model type %T", c.model)
	}
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(classifierSnapshot{
		Algo:     c.Algo,
		Features: c.Features,
		Means:    c.scaler.Means,
		Stds:     c.scaler.Stds,
		Model:    modelBytes,
	})
}

// LoadJobClassifier restores a classifier saved with Save.
func LoadJobClassifier(r io.Reader) (*JobClassifier, error) {
	var snap classifierSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, err
	}
	c := &JobClassifier{
		Algo:     snap.Algo,
		Features: snap.Features,
		scaler:   stats.RestoreScaler(snap.Means, snap.Stds),
	}
	switch snap.Algo {
	case AlgoSVM:
		m := &svm.Model{}
		if err := m.UnmarshalBinary(snap.Model); err != nil {
			return nil, err
		}
		c.model = m
	case AlgoForest:
		m := &forest.Classifier{}
		if err := m.UnmarshalBinary(snap.Model); err != nil {
			return nil, err
		}
		c.model = m
		c.rf = m
	case AlgoBayes:
		m := &bayes.Model{}
		if err := m.UnmarshalBinary(snap.Model); err != nil {
			return nil, err
		}
		c.model = m
	case AlgoStack:
		m := &ensemble.Model{}
		if err := m.UnmarshalBinary(snap.Model); err != nil {
			return nil, err
		}
		c.model = m
	default:
		return nil, fmt.Errorf("core: snapshot has unknown algorithm %q", snap.Algo)
	}
	// Lower the restored model into the compiled serving form. A
	// structurally invalid snapshot (the loader is fuzzed with hostile
	// bytes) fails compilation cleanly and keeps the interpreted path —
	// exactly the pre-compile behaviour.
	_ = c.EnsureCompiled()
	return c, nil
}

// SaveBytes is a convenience wrapper returning the serialized classifier.
func (c *JobClassifier) SaveBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
