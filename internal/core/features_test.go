package core

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/summarize"
)

// mockSummary builds a summary with distinguishable segment values.
func mockSummary(segments int) *summarize.Summary {
	s := &summarize.Summary{Nodes: 4, WallSeconds: 3600, Catastrophe: 0.9, CPUUserImbalance: 0.1}
	for m := apps.MetricID(0); m < apps.NumMetrics; m++ {
		s.Means[m] = float64(m) + 1
		s.COVs[m] = 0.01 * float64(m)
	}
	s.SegmentMeans = make([][apps.NumMetrics]float64, segments)
	for seg := 0; seg < segments; seg++ {
		for m := apps.MetricID(0); m < apps.NumMetrics; m++ {
			s.SegmentMeans[seg][m] = (float64(m) + 1) * float64(seg+1)
		}
	}
	return s
}

func TestSegmentShapeFeatures(t *testing.T) {
	opt := FeatureOptions{Segments: 3, SegmentShape: true}
	names := FeatureNames(opt)
	s := mockSummary(3)
	row := Featurize(s, opt)
	if len(row) != len(names) {
		t.Fatalf("row %d vs names %d", len(row), len(names))
	}
	// Segment means are base*(seg+1), so shape ratios are exactly 2 and 3.
	for i := 0; i < int(apps.NumMetrics); i++ {
		if math.Abs(row[i]-2) > 1e-12 {
			t.Fatalf("shape2 feature %d = %v, want 2", i, row[i])
		}
	}
	for i := int(apps.NumMetrics); i < 2*int(apps.NumMetrics); i++ {
		if math.Abs(row[i]-3) > 1e-12 {
			t.Fatalf("shape3 feature %d = %v, want 3", i, row[i])
		}
	}
	// Names carry the _SHAPE marker.
	if names[0] != apps.MetricID(0).String()+"_SHAPE2" {
		t.Errorf("first shape name = %q", names[0])
	}
}

func TestSegmentShapeZeroBase(t *testing.T) {
	opt := FeatureOptions{Segments: 2, SegmentShape: true}
	s := mockSummary(2)
	s.SegmentMeans[0][apps.Flops] = 0
	row := Featurize(s, opt)
	if row[int(apps.Flops)] != 1 {
		t.Errorf("zero-base ratio should default to 1, got %v", row[int(apps.Flops)])
	}
}

func TestSegmentShapeDegradesWithoutSegments(t *testing.T) {
	// Summary with no segments: shape ratios fall back to mean/mean = 1.
	opt := FeatureOptions{Segments: 3, SegmentShape: true}
	s := mockSummary(0)
	row := Featurize(s, opt)
	for i, v := range row {
		if v != 1 {
			t.Fatalf("feature %d = %v, want 1 under degradation", i, v)
		}
	}
}

func TestSegmentAbsoluteFeatures(t *testing.T) {
	opt := FeatureOptions{Segments: 2}
	s := mockSummary(2)
	row := Featurize(s, opt)
	if row[0] != s.SegmentMeans[0][0] || row[int(apps.NumMetrics)] != s.SegmentMeans[1][0] {
		t.Error("absolute segment features misordered")
	}
}

func TestDerivedFeatureValues(t *testing.T) {
	opt := FeatureOptions{Derived: true}
	s := mockSummary(0)
	names := FeatureNames(opt)
	row := Featurize(s, opt)
	find := func(name string) float64 {
		for i, n := range names {
			if n == name {
				return row[i]
			}
		}
		t.Fatalf("feature %q missing", name)
		return 0
	}
	if find("NODES") != 4 || find("CATASTROPHE") != 0.9 || find("CPU_USER_IMBALANCE") != 0.1 {
		t.Error("derived feature values wrong")
	}
}

func TestEfficiencyMargin(t *testing.T) {
	rule := DefaultEfficiencyRule()
	s := mockSummary(0)
	s.Means[apps.CPUUser] = rule.MaxCPUUser // exactly on the boundary
	s.Means[apps.CPI] = rule.MaxCPI * 2
	s.Means[apps.CPLD] = rule.MinCPLD / 2
	s.Catastrophe = 0.9
	s.CPUUserImbalance = 0.05
	rec := &JobRecord{Summary: s}
	if m := rule.Margin(rec); m != 0 {
		t.Errorf("on-boundary margin = %v, want 0", m)
	}
	s.Means[apps.CPUUser] = rule.MaxCPUUser * 1.5
	if m := rule.Margin(rec); m <= 0 {
		t.Errorf("off-boundary margin = %v, want positive", m)
	}
	// Disabled clauses (threshold <= 0) must not contribute.
	norule := EfficiencyRule{MaxCatastrophe: 0.2, MinImbalance: 0.4, MaxCPUUser: 0.5}
	if m := norule.Margin(rec); math.IsInf(m, 1) {
		t.Error("margin should be finite with active clauses")
	}
}

func TestJobClassifierScoreMatchesPredictProb(t *testing.T) {
	res := runSmall(t, 42, 300)
	d, err := BuildDataset(res.Records, LabelByCategory, DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	model, err := TrainJobClassifier(d, ClassifierConfig{Algo: AlgoBayes})
	if err != nil {
		t.Fatal(err)
	}
	preds := model.Score(d)
	for i := 0; i < 10; i++ {
		cls, probs := model.PredictProb(d.X[i])
		if preds[i].Pred != cls || preds[i].MaxProb != probs[cls] || preds[i].True != d.Y[i] {
			t.Fatal("Score disagrees with PredictProb")
		}
	}
}

func TestPredictMatchesModelFamilies(t *testing.T) {
	res := runSmall(t, 42, 300)
	d, err := BuildDataset(res.Records, LabelByCategory, DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []ClassifierConfig{{Algo: AlgoBayes}, PaperForest(3)} {
		model, err := TrainJobClassifier(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Predict must return a valid class index for every row.
		for i := 0; i < 20; i++ {
			cls := model.Predict(d.X[i])
			if cls < 0 || cls >= len(model.Classes()) {
				t.Fatalf("%s: Predict returned %d", cfg.Algo, cls)
			}
		}
	}
}
