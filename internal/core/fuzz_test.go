package core_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/testkit"
)

// fuzzSeedModel builds one small valid serialized classifier so the fuzz
// corpus starts from a structurally correct gob stream.
func fuzzSeedModel() []byte {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 3, Classes: 2, RowsPerCls: 8, Features: 3})
	train, _ := d.Split(rng.New(3), 0.7)
	c, err := core.TrainJobClassifier(train, core.ClassifierConfig{Algo: core.AlgoBayes})
	if err != nil {
		panic(err)
	}
	blob, err := c.SaveBytes()
	if err != nil {
		panic(err)
	}
	return blob
}

// FuzzLoadJobClassifier feeds arbitrary bytes to the model loader. A
// hostile or truncated snapshot must produce an error, never a panic —
// the serving path loads models from disk at startup. Valid models must
// round-trip: saving a loaded model and loading it again must work.
func FuzzLoadJobClassifier(f *testing.F) {
	seed := fuzzSeedModel()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := core.LoadJobClassifier(bytes.NewReader(data))
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("nil classifier with nil error")
		}
		blob, err := c.SaveBytes()
		if err != nil {
			// A decoded-but-unsaveable model is tolerable; crashing is not.
			return
		}
		if _, err := core.LoadJobClassifier(bytes.NewReader(blob)); err != nil {
			t.Fatalf("re-saved model failed to load: %v", err)
		}
	})
}
