package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/lariat"
	"repro/internal/ml/kmeans"
	"repro/internal/ml/pca"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/stats"
	"repro/internal/warehouse"
)

// This file is the reusable unsupervised-discovery module extracted from
// the x4 experiment: standardize -> PCA -> k-means over a job
// population, summarized per cluster. The serving layer uses it to mine
// the Uncategorized/NA population for emergent application signatures
// (the paper's Section IV.A inefficiency rule, learned instead of
// hand-coded); the experiment reuses the same fit for its purity and
// spectrum metrics.

// DiscoveryConfig controls an unsupervised discovery fit. The zero value
// of any field selects its default.
type DiscoveryConfig struct {
	K               int     // clusters (default 8)
	Components      int     // retained principal components (default 5, capped at #features)
	Restarts        int     // k-means restarts, best inertia wins (default 8)
	MaxIter         int     // k-means iteration cap (default 100)
	Seed            uint64  // fit RNG seed; same seed => bit-identical model
	Workers         int     // restart concurrency; <=0 = GOMAXPROCS (result identical at any value)
	TopFeatures     int     // deviating features reported per cluster (default 5)
	AnomalyZ        float64 // |center z-score| that flags a cluster anomalous (default 2)
	AnomalyQuantile float64 // training-distance quantile for the per-job flag (default 0.95)
}

func (cfg DiscoveryConfig) withDefaults(p int) DiscoveryConfig {
	if cfg.K <= 0 {
		cfg.K = 8
	}
	if cfg.Components <= 0 {
		cfg.Components = 5
	}
	if cfg.Components > p {
		cfg.Components = p
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 8
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.TopFeatures <= 0 {
		cfg.TopFeatures = 5
	}
	if cfg.TopFeatures > p {
		cfg.TopFeatures = p
	}
	if cfg.AnomalyZ <= 0 {
		cfg.AnomalyZ = 2
	}
	if cfg.AnomalyQuantile <= 0 || cfg.AnomalyQuantile >= 1 {
		cfg.AnomalyQuantile = 0.95
	}
	return cfg
}

// FeatureDeviation is one feature's standardized displacement of a
// cluster center from the population mean.
type FeatureDeviation struct {
	Feature string  `json:"feature"`
	Z       float64 `json:"z"`
}

// ClusterSummary describes one discovered cluster in decision-support
// terms: how big it is, where it sits in original feature units, which
// features pull it away from the population, and whether that pull is
// strong enough to flag the cluster anomalous.
type ClusterSummary struct {
	ID            int                `json:"id"`
	Size          int                `json:"size"`
	Share         float64            `json:"share"`
	Anomalous     bool               `json:"anomalous"`
	MeanDistance  float64            `json:"meanDistance"` // mean member distance to center, PCA space
	Center        map[string]float64 `json:"center"`       // original (unstandardized) feature units
	TopDeviations []FeatureDeviation `json:"topDeviations"`
}

// DiscoveryModel is one immutable fitted discovery artifact. All slices
// and maps are treated as frozen after FitDiscovery returns; serve it
// through a DiscoveryManager to hot-swap refits atomically.
type DiscoveryModel struct {
	Features []string
	K        int
	Seed     uint64
	Rows     int

	Scaler  *stats.Scaler
	PCA     *pca.Model
	Centers [][]float64 // k-means centers in PCA space
	Labels  []int       // training-row cluster assignment
	Inertia float64
	Iters   int

	// ExplainedVariance[c] is the cumulative variance fraction captured
	// by the first c+1 retained components (the knee of this curve is
	// how many directions the population really spans).
	ExplainedVariance []float64
	Clusters          []ClusterSummary
	// AnomalyDistance is the fitted AnomalyQuantile of training-row
	// distances to their centers; Assign flags rows beyond it.
	AnomalyDistance float64
	AnomalyZ        float64
}

// Assignment scores one job against a fitted discovery model.
type Assignment struct {
	Cluster          int       `json:"cluster"`
	Distance         float64   `json:"distance"`
	Anomalous        bool      `json:"anomalous"`        // beyond the fitted training-distance quantile
	ClusterAnomalous bool      `json:"clusterAnomalous"` // the assigned cluster itself is flagged
	Projection       []float64 `json:"projection"`
}

// FitDiscovery fits the discovery artifact over rows (one feature vector
// per job, all of width len(features)). The fit is deterministic for a
// fixed cfg.Seed at any cfg.Workers setting: k-means restarts own split
// RNG streams keyed by restart index.
func FitDiscovery(rows [][]float64, features []string, cfg DiscoveryConfig) (*DiscoveryModel, error) {
	if len(features) == 0 {
		return nil, errors.New("core: discovery needs a non-empty feature schema")
	}
	p := len(features)
	if len(rows) < 2 {
		return nil, fmt.Errorf("core: discovery needs at least 2 rows, got %d", len(rows))
	}
	for i, row := range rows {
		if len(row) != p {
			return nil, fmt.Errorf("core: discovery row %d has %d features, schema has %d", i, len(row), p)
		}
	}
	cfg = cfg.withDefaults(p)
	if cfg.K > len(rows) {
		return nil, fmt.Errorf("core: discovery k=%d exceeds %d rows", cfg.K, len(rows))
	}

	// Standardize a copy so centers can be reported in original units.
	std := make([][]float64, len(rows))
	for i, row := range rows {
		std[i] = append([]float64(nil), row...)
	}
	scaler := stats.FitScaler(std)
	scaler.TransformAll(std)

	pm, err := pca.Fit(std, cfg.Components)
	if err != nil {
		return nil, fmt.Errorf("core: discovery pca: %w", err)
	}
	proj, err := pm.TransformAll(std)
	if err != nil {
		return nil, fmt.Errorf("core: discovery projection: %w", err)
	}
	km, err := kmeans.Fit(proj, kmeans.Config{
		K: cfg.K, MaxIter: cfg.MaxIter, Restarts: cfg.Restarts,
		Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: discovery kmeans: %w", err)
	}

	m := &DiscoveryModel{
		Features: append([]string(nil), features...),
		K:        cfg.K,
		Seed:     cfg.Seed,
		Rows:     len(rows),
		Scaler:   scaler,
		PCA:      pm,
		Centers:  km.Centers,
		Labels:   km.Labels,
		Inertia:  km.Inertia,
		Iters:    km.Iters,
		AnomalyZ: cfg.AnomalyZ,
	}
	m.ExplainedVariance = make([]float64, cfg.Components)
	for c := range m.ExplainedVariance {
		m.ExplainedVariance[c] = pm.ExplainedVariance(c + 1)
	}

	// Per-cluster aggregates: mean original row (the center in original
	// units), mean standardized row (the z-profile), member distances.
	sumOrig := make([][]float64, cfg.K)
	sumZ := make([][]float64, cfg.K)
	counts := make([]int, cfg.K)
	sumDist := make([]float64, cfg.K)
	for c := range sumOrig {
		sumOrig[c] = make([]float64, p)
		sumZ[c] = make([]float64, p)
	}
	dists := make([]float64, len(rows))
	for i, row := range rows {
		c := km.Labels[i]
		counts[c]++
		for j, v := range row {
			sumOrig[c][j] += v
			sumZ[c][j] += std[i][j]
		}
		d := euclid(proj[i], km.Centers[c])
		dists[i] = d
		sumDist[c] += d
	}
	m.AnomalyDistance = stats.Quantile(dists, cfg.AnomalyQuantile)

	m.Clusters = make([]ClusterSummary, cfg.K)
	for c := 0; c < cfg.K; c++ {
		cs := ClusterSummary{ID: c, Size: counts[c], Center: map[string]float64{}}
		if counts[c] == 0 {
			m.Clusters[c] = cs
			continue
		}
		n := float64(counts[c])
		cs.Share = n / float64(len(rows))
		cs.MeanDistance = sumDist[c] / n
		devs := make([]FeatureDeviation, p)
		for j, name := range features {
			cs.Center[name] = sumOrig[c][j] / n
			devs[j] = FeatureDeviation{Feature: name, Z: sumZ[c][j] / n}
		}
		sort.SliceStable(devs, func(a, b int) bool {
			return math.Abs(devs[a].Z) > math.Abs(devs[b].Z)
		})
		cs.TopDeviations = devs[:cfg.TopFeatures]
		cs.Anomalous = math.Abs(cs.TopDeviations[0].Z) >= cfg.AnomalyZ
		m.Clusters[c] = cs
	}
	return m, nil
}

// Assign scores one job row (original feature units, model feature
// order) against the fitted model. Rows of the wrong width error —
// never panic — so the serving path can map this to a 400.
func (m *DiscoveryModel) Assign(row []float64) (*Assignment, error) {
	if len(row) != len(m.Features) {
		return nil, fmt.Errorf("core: assign row has %d features, model fitted on %d", len(row), len(m.Features))
	}
	std := append([]float64(nil), row...)
	m.Scaler.Transform(std)
	proj, err := m.PCA.Transform(std)
	if err != nil {
		return nil, err
	}
	best, bestD := 0, math.Inf(1)
	for c, ctr := range m.Centers {
		if d := euclid(proj, ctr); d < bestD {
			best, bestD = c, d
		}
	}
	return &Assignment{
		Cluster:          best,
		Distance:         bestD,
		Anomalous:        bestD > m.AnomalyDistance,
		ClusterAnomalous: m.Clusters[best].Anomalous,
		Projection:       proj,
	}, nil
}

func euclid(a, b []float64) float64 {
	var d float64
	for j := range a {
		diff := a[j] - b[j]
		d += diff * diff
	}
	return math.Sqrt(d)
}

// UnlabeledRows featurizes the warehouse's Uncategorized/NA population —
// the jobs the supervised path cannot name, and exactly the ones
// discovery exists for. Store iteration order is ingest order, so the
// same store yields the same rows.
func UnlabeledRows(store *warehouse.Store, opt FeatureOptions) [][]float64 {
	recs := store.Filter(func(r *warehouse.Record) bool {
		return (r.AppLabel == lariat.Uncategorized || r.AppLabel == lariat.NA) && r.Summary != nil
	})
	rows := make([][]float64, len(recs))
	for i, rec := range recs {
		rows[i] = Featurize(rec.Summary, opt)
	}
	return rows
}

// DiscoveryView is one immutable generation of the serving discovery
// model, mirroring ModelView: capture it once per request and every
// read within the request observes a single self-consistent fit.
type DiscoveryView struct {
	Model      *DiscoveryModel
	Generation uint64

	index map[string]int
}

// FeatureIndex resolves a feature name to its position in the model's
// feature vector.
func (v *DiscoveryView) FeatureIndex(name string) (int, bool) {
	i, ok := v.index[name]
	return i, ok
}

// NumFeatures returns the model's feature vector width.
func (v *DiscoveryView) NumFeatures() int { return len(v.Model.Features) }

// Annotate stamps the serving discovery fit's identity onto an in-flight
// wide event. Nil-safe on both sides.
func (v *DiscoveryView) Annotate(a *flight.Active) {
	if v == nil {
		return
	}
	a.SetModel(v.Generation, false, "pca+kmeans")
}

// DiscoveryManager publishes a DiscoveryModel behind an atomic pointer
// with the same swap discipline as ModelManager: readers load the
// current view with one atomic load; refits install a fully-built
// replacement after schema validation.
type DiscoveryManager struct {
	cur atomic.Pointer[DiscoveryView]

	mu  sync.Mutex
	gen uint64

	generation *obs.Gauge
	swapOK     *obs.Counter
	swapRej    *obs.Counter
	swapErr    *obs.Counter
}

// NewDiscoveryManager returns an empty manager (View returns nil until
// the first Swap). reg may be nil; when set, the manager exports
// discover_generation and discover_swap_total{outcome}.
func NewDiscoveryManager(reg *obs.Registry) *DiscoveryManager {
	reg.Help("discover_generation", "Generation number of the serving discovery fit (0 = none loaded).")
	reg.Help("discover_swap_total", "Discovery refit hot-swap attempts by outcome.")
	return &DiscoveryManager{
		generation: reg.Gauge("discover_generation"),
		swapOK:     reg.Counter("discover_swap_total", "outcome", "ok"),
		swapRej:    reg.Counter("discover_swap_total", "outcome", "rejected"),
		swapErr:    reg.Counter("discover_swap_total", "outcome", "error"),
	}
}

// View returns the current discovery view, or nil when no fit is loaded.
func (m *DiscoveryManager) View() *DiscoveryView {
	if m == nil {
		return nil
	}
	return m.cur.Load()
}

// Generation returns the serving fit's generation (0 before the first
// successful swap).
func (m *DiscoveryManager) Generation() uint64 {
	v := m.View()
	if v == nil {
		return 0
	}
	return v.Generation
}

// Swap validates and atomically installs a refit. Like ModelManager, a
// refit may change K freely but must keep the feature name set of the
// fit it replaces — clients address features by name and a silent schema
// change would misroute every in-flight request body.
func (m *DiscoveryManager) Swap(next *DiscoveryModel) (uint64, error) {
	if next == nil {
		m.swapErr.Inc()
		return 0, errors.New("core: cannot swap in a nil discovery model")
	}
	idx, err := buildIndex(next.Features)
	if err != nil {
		m.swapErr.Inc()
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur := m.cur.Load(); cur != nil {
		if len(cur.Model.Features) != len(next.Features) {
			m.swapRej.Inc()
			return 0, fmt.Errorf("%w: serving discovery fit has %d features, incoming has %d",
				ErrSchemaMismatch, len(cur.Model.Features), len(next.Features))
		}
		var missing []string
		for _, f := range cur.Model.Features {
			if _, ok := idx[f]; !ok {
				missing = append(missing, f)
			}
		}
		if len(missing) > 0 {
			m.swapRej.Inc()
			return 0, fmt.Errorf("%w: incoming discovery fit lacks %v", ErrSchemaMismatch, missing)
		}
	}
	m.gen++
	m.cur.Store(&DiscoveryView{Model: next, Generation: m.gen, index: idx})
	m.generation.Set(float64(m.gen))
	m.swapOK.Inc()
	return m.gen, nil
}
