// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used by the synthetic SUPReMM
// workload generators.
//
// Reproducibility is a hard requirement for the experiment harness: every
// table and figure must regenerate identically for a given seed. The
// generator is a PCG-XSH-RR 64/32 variant extended to 64-bit output, with a
// cheap Split operation that derives statistically independent sub-streams
// (one per node, per job, per application) so that changing how many samples
// one component draws does not perturb any other component.
package rng

import "math"

// mult is the PCG default LCG multiplier.
const mult = 6364136223846793005

// Rand is a deterministic random number generator. It is not safe for
// concurrent use; derive one per goroutine with Split.
type Rand struct {
	state uint64
	inc   uint64 // stream selector; always odd

	// cached spare normal variate (Marsaglia polar method)
	haveSpare bool
	spare     float64
}

// New returns a generator seeded with seed on the default stream.
func New(seed uint64) *Rand {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a generator with an explicit stream selector, allowing
// many independent sequences from the same seed.
func NewStream(seed, stream uint64) *Rand {
	r := &Rand{inc: stream<<1 | 1}
	r.state = 0
	r.Uint64()
	r.state += seed
	r.Uint64()
	return r
}

// Split derives a new, statistically independent generator keyed by id.
// Splitting with the same id always yields the same child stream, so
// components can be re-run independently of each other.
func (r *Rand) Split(id uint64) *Rand {
	// Mix the child id through splitmix64 so adjacent ids land far apart.
	h := mix64(r.inc>>1 ^ id)
	s := mix64(r.state ^ h)
	return NewStream(s, h)
}

// mix64 is the splitmix64 finalizer, a strong 64-bit mixer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	// Two PCG-XSH-RR 32-bit outputs concatenated.
	return uint64(r.next32())<<32 | uint64(r.next32())
}

func (r *Rand) next32() uint32 {
	old := r.state
	r.state = old*mult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 { return r.next32() }

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul128(x, bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul128(x, bound)
		}
	}
	return int(hi)
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	c = t >> 32
	m := t & mask
	t = a0*b1 + m
	lo |= (t & mask) << 32
	hi = a1*b1 + c + (t >> 32)
	return hi, lo
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Normal returns a standard normal variate (mean 0, stddev 1) using the
// Marsaglia polar method with spare caching.
func (r *Rand) Normal() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// NormalAt returns a normal variate with the given mean and stddev.
func (r *Rand) NormalAt(mean, stddev float64) float64 {
	return mean + stddev*r.Normal()
}

// LogNormal returns exp(N(mu, sigma)). mu and sigma are the parameters of
// the underlying normal, i.e. the log-space location and scale.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormalAt(mu, sigma))
}

// Exponential returns an exponential variate with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Gamma returns a gamma variate with the given shape and scale, using the
// Marsaglia-Tsang method (with Johnk boost for shape < 1).
func (r *Rand) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Normal()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Beta returns a beta variate with parameters a, b.
func (r *Rand) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	return x / (x + y)
}

// Poisson returns a Poisson variate with the given mean, using inversion for
// small means and the PTRS transformed-rejection method threshold fallback
// of normal approximation for large means.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction; adequate for the
	// arrival-count use cases here.
	v := r.NormalAt(mean, math.Sqrt(mean))
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Categorical samples an index in [0, len(weights)) proportionally to
// weights. Weights need not be normalized; non-positive weights are treated
// as zero. It panics if no weight is positive.
func (r *Rand) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Categorical with no positive weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating point slack: return last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("unreachable")
}

// Sampler draws from a fixed categorical distribution in O(1) per sample
// using Walker's alias method. Build once, sample many times.
type Sampler struct {
	prob  []float64
	alias []int
}

// NewSampler builds an alias table for the given (unnormalized) weights.
func NewSampler(weights []float64) *Sampler {
	n := len(weights)
	if n == 0 {
		panic("rng: NewSampler with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: NewSampler with no positive weight")
	}
	s := &Sampler{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, g := range large {
		s.prob[g] = 1
	}
	for _, l := range small {
		s.prob[l] = 1
	}
	return s
}

// Sample draws one index from the distribution using r.
func (s *Sampler) Sample(r *Rand) int {
	i := r.Intn(len(s.prob))
	if r.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}

// Len returns the number of categories.
func (s *Sampler) Len() int { return len(s.prob) }
