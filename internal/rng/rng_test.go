package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split(1)
	c2 := r.Split(2)
	c1again := r.Split(1)
	for i := 0; i < 100; i++ {
		v1 := c1.Uint64()
		if v1 != c1again.Uint64() {
			t.Fatal("Split with same id is not reproducible")
		}
		if v1 == c2.Uint64() {
			t.Fatal("Split with different ids produced identical output")
		}
	}
}

func TestSplitDoesNotPerturbParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(123) // splitting must not consume parent state
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split perturbed parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v]++
	}
	for k := 0; k < 10; k++ {
		if seen[k] < 700 {
			t.Errorf("Intn(10) value %d underrepresented: %d/10000", k, seen[k])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(6)
	n := 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(2, 0.5)
	}
	// median of lognormal is exp(mu)
	count := 0
	for _, v := range vals {
		if v < math.Exp(2) {
			count++
		}
	}
	frac := float64(count) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("lognormal median fraction = %v, want ~0.5", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(8)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(3.5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-3.5) > 0.1 {
		t.Errorf("exponential mean = %v, want ~3.5", mean)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(10)
	for _, tc := range []struct{ shape, scale float64 }{{0.5, 2}, {1, 1}, {3, 2}, {9, 0.5}} {
		n := 100000
		var sum float64
		for i := 0; i < n; i++ {
			v := r.Gamma(tc.shape, tc.scale)
			if v < 0 {
				t.Fatalf("gamma produced negative value %v", v)
			}
			sum += v
		}
		mean := sum / float64(n)
		want := tc.shape * tc.scale
		if math.Abs(mean-want) > 0.05*want+0.02 {
			t.Errorf("gamma(%v,%v) mean = %v, want ~%v", tc.shape, tc.scale, mean, want)
		}
	}
}

func TestBetaRange(t *testing.T) {
	r := New(11)
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		v := r.Beta(2, 5)
		if v < 0 || v > 1 {
			t.Fatalf("beta out of [0,1]: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.0/7.0) > 0.01 {
		t.Errorf("beta(2,5) mean = %v, want ~%v", mean, 2.0/7.0)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(12)
	for _, mean := range []float64{0.5, 4, 25, 100} {
		n := 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestCategoricalRespectWeights(t *testing.T) {
	r := New(14)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 60000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
	frac := float64(counts[2]) / float64(n)
	if math.Abs(frac-0.75) > 0.01 {
		t.Errorf("category 2 fraction = %v, want ~0.75", frac)
	}
}

func TestSamplerMatchesWeights(t *testing.T) {
	r := New(15)
	w := []float64{5, 1, 0, 4}
	s := NewSampler(w)
	counts := make([]int, len(w))
	n := 100000
	for i := 0; i < n; i++ {
		counts[s.Sample(r)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[2])
	}
	for i, want := range []float64{0.5, 0.1, 0, 0.4} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d fraction = %v, want ~%v", i, got, want)
		}
	}
}

func TestSamplerSingleCategory(t *testing.T) {
	s := NewSampler([]float64{2.5})
	r := New(16)
	for i := 0; i < 100; i++ {
		if s.Sample(r) != 0 {
			t.Fatal("single-category sampler returned nonzero index")
		}
	}
}

func TestMul128Property(t *testing.T) {
	// hi:lo must equal a*b for small operands where the product fits 64 bits.
	f := func(a, b uint32) bool {
		hi, lo := mul128(uint64(a), uint64(b))
		return hi == 0 && lo == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMul128HighBits(t *testing.T) {
	hi, lo := mul128(math.MaxUint64, math.MaxUint64)
	// (2^64-1)^2 = 2^128 - 2^65 + 1
	if hi != math.MaxUint64-1 || lo != 1 {
		t.Errorf("mul128(max,max) = (%x,%x)", hi, lo)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	n := 100000
	c := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			c++
		}
	}
	frac := float64(c) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) fraction = %v", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal()
	}
}

func BenchmarkSamplerSample(b *testing.B) {
	w := make([]float64, 128)
	for i := range w {
		w[i] = float64(i + 1)
	}
	s := NewSampler(w)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(r)
	}
}

func TestUint32Int63(t *testing.T) {
	r := New(20)
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint32()] = true
		if v := r.Int63(); v < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
	if len(seen) < 95 {
		t.Errorf("Uint32 produced only %d distinct values of 100", len(seen))
	}
}

func TestSamplerLen(t *testing.T) {
	if NewSampler([]float64{1, 2, 3}).Len() != 3 {
		t.Error("Len wrong")
	}
}

func TestNewSamplerRejectsBadWeights(t *testing.T) {
	for _, w := range [][]float64{{}, {0, 0}, {-1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSampler(%v) should panic", w)
				}
			}()
			NewSampler(w)
		}()
	}
}

func TestSamplerNegativeWeightTreatedAsZero(t *testing.T) {
	s := NewSampler([]float64{-5, 1})
	r := New(21)
	for i := 0; i < 1000; i++ {
		if s.Sample(r) == 0 {
			t.Fatal("negative-weight category sampled")
		}
	}
}

func TestCategoricalPanicsWithoutPositiveWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(22).Categorical([]float64{0, -1})
}

func TestCategoricalSingle(t *testing.T) {
	r := New(23)
	for i := 0; i < 50; i++ {
		if r.Categorical([]float64{0, 3, 0}) != 1 {
			t.Fatal("only positive category must be chosen")
		}
	}
}

func TestPoissonZeroAndNegativeMean(t *testing.T) {
	r := New(24)
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(25).Gamma(0, 1)
}

func TestIntnLargeBound(t *testing.T) {
	r := New(26)
	const n = 1 << 40
	for i := 0; i < 1000; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}
