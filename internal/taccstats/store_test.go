package taccstats

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/rng"
)

func spoolArchive(t *testing.T, jobID string, seed uint64) *Archive {
	t.Helper()
	a, _ := apps.ByName("NAMD")
	d := a.Sig.Draw(rng.New(seed))
	hosts := make([]string, d.Nodes)
	for i := range hosts {
		hosts[i] = Hostname(0, i)
	}
	return Collect(DefaultConfig(), JobInfo{ID: jobID, Start: 1_400_000_000, Hosts: hosts}, d, rng.New(seed+1))
}

func TestSpoolRoundTrip(t *testing.T) {
	dir := t.TempDir()
	arch := spoolArchive(t, "j100", 1)
	if err := WriteSpool(dir, arch); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpool(dir, "j100")
	if err != nil {
		t.Fatal(err)
	}
	// Hosts come back lexically ordered; compare content per host.
	byHost := map[string]*NodeArchive{}
	for i := range arch.Nodes {
		byHost[arch.Nodes[i].Host] = &arch.Nodes[i]
	}
	if len(got.Nodes) != len(arch.Nodes) {
		t.Fatalf("nodes = %d, want %d", len(got.Nodes), len(arch.Nodes))
	}
	for i := range got.Nodes {
		want := byHost[got.Nodes[i].Host]
		if want == nil {
			t.Fatalf("unexpected host %s", got.Nodes[i].Host)
		}
		if len(got.Nodes[i].Samples) != len(want.Samples) {
			t.Fatalf("host %s sample counts differ", got.Nodes[i].Host)
		}
		for j := range want.Samples {
			ws, gs := want.Samples[j], got.Nodes[i].Samples[j]
			if ws.Time != gs.Time || ws.Marker != gs.Marker {
				t.Fatal("sample header mismatch")
			}
			for _, rec := range ws.Records {
				grec := gs.Find(rec.Device)
				if grec == nil || !reflect.DeepEqual(grec.Values, rec.Values) {
					t.Fatalf("device %s mismatch", rec.Device)
				}
			}
		}
	}
}

func TestSpoolCompressionActuallyShrinks(t *testing.T) {
	dir := t.TempDir()
	arch := spoolArchive(t, "j101", 2)
	if err := WriteSpool(dir, arch); err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := arch.Encode(&raw); err != nil {
		t.Fatal(err)
	}
	var onDisk int64
	err := filepath.Walk(filepath.Join(dir, "j101"), func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			onDisk += info.Size()
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if onDisk >= int64(raw.Len()) {
		t.Errorf("spool %d bytes not smaller than raw %d", onDisk, raw.Len())
	}
}

func TestSpoolListAndRemove(t *testing.T) {
	dir := t.TempDir()
	for i, id := range []string{"j3", "j1", "j2"} {
		if err := WriteSpool(dir, spoolArchive(t, id, uint64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	jobs, err := ListSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, []string{"j1", "j2", "j3"}) {
		t.Fatalf("jobs = %v", jobs)
	}
	if err := RemoveJob(dir, "j2"); err != nil {
		t.Fatal(err)
	}
	jobs, _ = ListSpool(dir)
	if !reflect.DeepEqual(jobs, []string{"j1", "j3"}) {
		t.Fatalf("after remove: %v", jobs)
	}
}

func TestSpoolErrors(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSpool(dir, &Archive{}); err == nil {
		t.Error("missing job id not rejected")
	}
	if _, err := ReadSpool(dir, "nope"); err == nil {
		t.Error("missing job not rejected")
	}
	// Empty job dir (no host files).
	os.MkdirAll(filepath.Join(dir, "empty"), 0o755)
	if _, err := ReadSpool(dir, "empty"); err == nil {
		t.Error("empty job dir not rejected")
	}
	// Corrupt gzip.
	os.MkdirAll(filepath.Join(dir, "bad"), 0o755)
	os.WriteFile(filepath.Join(dir, "bad", "c0"+archiveExt), []byte("not gzip"), 0o644)
	if _, err := ReadSpool(dir, "bad"); err == nil {
		t.Error("corrupt archive not rejected")
	}
}
