package taccstats

import (
	"bytes"
	"fmt"
)

// Chunk is the unit the streaming ingest path ships over the wire: a run
// of consecutive samples one node collected for one job. It is the
// single-node slice of an Archive, so the wire payload reuses the
// archive text format verbatim (%jobid / %host directives followed by
// sample blocks) and the existing Decode path — including its fuzz
// hardening — does the parsing.
type Chunk struct {
	JobID   string
	Host    string
	Samples []Sample
}

// EncodeChunk renders a chunk in the archive text format. The result is
// exactly what Archive.Encode writes for a one-node archive holding
// these samples.
func EncodeChunk(c *Chunk) ([]byte, error) {
	if c.JobID == "" {
		return nil, fmt.Errorf("taccstats: chunk without job id")
	}
	if c.Host == "" {
		return nil, fmt.Errorf("taccstats: chunk without host")
	}
	a := &Archive{JobID: c.JobID, Nodes: []NodeArchive{{
		Host: c.Host, JobID: c.JobID, Samples: c.Samples,
	}}}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeChunk parses a payload written by EncodeChunk. It rejects
// payloads that do not describe exactly one node of one job, or that
// carry no samples — a record-bearing wire frame must bear records.
func DecodeChunk(b []byte) (*Chunk, error) {
	a, err := Decode(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	if a.JobID == "" {
		return nil, fmt.Errorf("taccstats: chunk without job id")
	}
	if len(a.Nodes) != 1 {
		return nil, fmt.Errorf("taccstats: chunk carries %d nodes, want exactly 1", len(a.Nodes))
	}
	n := &a.Nodes[0]
	if n.Host == "" {
		return nil, fmt.Errorf("taccstats: chunk without host")
	}
	if len(n.Samples) == 0 {
		return nil, fmt.Errorf("taccstats: chunk carries no samples")
	}
	return &Chunk{JobID: a.JobID, Host: n.Host, Samples: n.Samples}, nil
}
