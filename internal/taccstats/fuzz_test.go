package taccstats_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/taccstats"
)

// FuzzDecode feeds arbitrary bytes through the TACC_Stats text decoder.
// The decoder must never panic; when it accepts an input, the archive
// must re-encode, and the canonical encoding must be a fixed point
// (Encode∘Decode∘Encode == Encode).
func FuzzDecode(f *testing.F) {
	f.Add([]byte("%jobid 123\n%host c123-456\n1000 begin\ncpu 1 2 3\nmem 4 5\n1030\ncpu 2 3 4\n"))
	f.Add([]byte("%jobid j\n%host h\n1 end\n"))
	f.Add([]byte(""))
	f.Add([]byte("%jobid only\n"))
	f.Add([]byte("9 early-sample-without-host\n"))
	f.Add([]byte("%host h\ndevice-before-sample 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := taccstats.Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 strings.Builder
		if err := a.Encode(&enc1); err != nil {
			t.Fatalf("decoded archive failed to encode: %v", err)
		}
		b, err := taccstats.Decode(strings.NewReader(enc1.String()))
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\n%q", err, enc1.String())
		}
		var enc2 strings.Builder
		if err := b.Encode(&enc2); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if enc1.String() != enc2.String() {
			t.Fatalf("encoding is not a fixed point:\nfirst:  %q\nsecond: %q", enc1.String(), enc2.String())
		}
	})
}
