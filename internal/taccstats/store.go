package taccstats

import (
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The on-disk spool mirrors production TACC_Stats: one directory per job,
// one gzip-compressed archive file per host. The summarization pipeline
// scans the spool, reassembles per-job archives, and deletes or retains
// raw data by policy.

// archiveExt is the per-host archive file suffix.
const archiveExt = ".dat.gz"

// WriteSpool writes one job's raw archive under dir/<jobid>/, one
// compressed file per host.
func WriteSpool(dir string, a *Archive) error {
	if a.JobID == "" {
		return fmt.Errorf("taccstats: archive has no job id")
	}
	jobDir := filepath.Join(dir, a.JobID)
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		return err
	}
	for i := range a.Nodes {
		node := &a.Nodes[i]
		if err := writeHostFile(jobDir, a.JobID, node); err != nil {
			return err
		}
	}
	return nil
}

func writeHostFile(jobDir, jobID string, node *NodeArchive) error {
	path := filepath.Join(jobDir, node.Host+archiveExt)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	single := &Archive{JobID: jobID, Nodes: []NodeArchive{*node}}
	if err := single.Encode(zw); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return f.Close()
}

// ReadSpool reassembles one job's archive from dir/<jobid>/. Hosts are
// ordered lexically.
func ReadSpool(dir, jobID string) (*Archive, error) {
	jobDir := filepath.Join(dir, jobID)
	entries, err := os.ReadDir(jobDir)
	if err != nil {
		return nil, err
	}
	var hostFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), archiveExt) {
			hostFiles = append(hostFiles, e.Name())
		}
	}
	if len(hostFiles) == 0 {
		return nil, fmt.Errorf("taccstats: no host archives for job %s in %s", jobID, dir)
	}
	sort.Strings(hostFiles)

	out := &Archive{JobID: jobID}
	for _, name := range hostFiles {
		a, err := readHostFile(filepath.Join(jobDir, name))
		if err != nil {
			return nil, fmt.Errorf("taccstats: %s: %w", name, err)
		}
		if a.JobID != jobID {
			return nil, fmt.Errorf("taccstats: %s carries job %q, want %q", name, a.JobID, jobID)
		}
		out.Nodes = append(out.Nodes, a.Nodes...)
	}
	return out, nil
}

func readHostFile(path string) (*Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return Decode(zr)
}

// ListSpool returns the job ids present in a spool directory, sorted.
func ListSpool(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var jobs []string
	for _, e := range entries {
		if e.IsDir() {
			jobs = append(jobs, e.Name())
		}
	}
	sort.Strings(jobs)
	return jobs, nil
}

// RemoveJob deletes one job's raw data from the spool.
func RemoveJob(dir, jobID string) error {
	return os.RemoveAll(filepath.Join(dir, jobID))
}
