// Package taccstats simulates the TACC_Stats node-level resource-usage
// collector that feeds the SUPReMM pipeline. TACC_Stats runs on every
// compute node, invoked by the batch scheduler's prolog and epilog scripts
// and by cron every ten minutes, and appends one timestamped record per
// device to a per-node archive. Most device values are monotonically
// increasing counters read from the kernel or from hardware performance
// counter MSRs; a few (memory footprint) are gauges.
//
// The simulation reproduces the properties the summarizer must cope with:
// counters start from arbitrary per-node bases (nodes boot long before the
// job), hardware performance counters are 48 bits wide and roll over every
// couple of hours at Stampede-era rates, cron samples are aligned to wall
// clock (so the first interval of a job is usually shorter than the sample
// period), and values for a collection interval reflect bursty, phased
// application behaviour.
package taccstats

// CounterWidth is the bit width of hardware performance-counter registers
// (cycles, instructions, cache loads, flops). Kernel-maintained counters
// are effectively 64-bit; the PMC MSRs are 48-bit and roll over regularly
// on long jobs, which the summarizer must unwrap.
const CounterWidth = 48

// pmcMask masks a value to CounterWidth bits.
const pmcMask = (uint64(1) << CounterWidth) - 1

// Key identifies one field of a device schema.
type Key struct {
	Name string
	// Event marks a monotonically increasing counter; false means gauge.
	Event bool
	// PMC marks a 48-bit hardware counter subject to rollover.
	PMC bool
}

// Schema describes the record layout for one device type.
type Schema struct {
	Device string
	Keys   []Key
}

// KeyIndex returns the index of the named key, or -1.
func (s *Schema) KeyIndex(name string) int {
	for i, k := range s.Keys {
		if k.Name == name {
			return i
		}
	}
	return -1
}

// Device names used by the default schema set.
const (
	DevCPU   = "cpu"   // kernel CPU accounting (USER_HZ ticks)
	DevPMC   = "pmc"   // hardware performance counters
	DevMem   = "mem"   // memory footprint and bandwidth
	DevNet   = "net"   // ethernet device
	DevIB    = "ib"    // InfiniBand HCA
	DevNFS   = "nfs"   // $HOME filesystem client
	DevLLite = "llite" // Lustre client ($SCRATCH)
	DevLNet  = "lnet"  // Lustre network driver
	DevBlock = "block" // local disk
)

// DefaultSchemas returns the schema set the simulated collector emits,
// modelled on the TACC_Stats Stampede configuration.
func DefaultSchemas() []Schema {
	return []Schema{
		{DevCPU, []Key{
			{Name: "user", Event: true},
			{Name: "system", Event: true},
			{Name: "idle", Event: true},
		}},
		{DevPMC, []Key{
			{Name: "cycles", Event: true, PMC: true},
			{Name: "instructions", Event: true, PMC: true},
			{Name: "l1d_loads", Event: true, PMC: true},
			{Name: "flops", Event: true, PMC: true},
		}},
		{DevMem, []Key{
			{Name: "used", Event: false},
			{Name: "bandwidth_bytes", Event: true},
		}},
		{DevNet, []Key{
			{Name: "tx_bytes", Event: true},
			{Name: "rx_bytes", Event: true},
		}},
		{DevIB, []Key{
			{Name: "rx_bytes", Event: true},
			{Name: "tx_bytes", Event: true},
		}},
		{DevNFS, []Key{
			{Name: "write_bytes", Event: true},
			{Name: "read_bytes", Event: true},
		}},
		{DevLLite, []Key{
			{Name: "write_bytes", Event: true},
			{Name: "read_bytes", Event: true},
		}},
		{DevLNet, []Key{
			{Name: "tx_bytes", Event: true},
			{Name: "rx_bytes", Event: true},
		}},
		{DevBlock, []Key{
			{Name: "rd_ios", Event: true},
			{Name: "rd_bytes", Event: true},
			{Name: "wr_bytes", Event: true},
		}},
	}
}

// SchemaSet indexes schemas by device name.
type SchemaSet map[string]*Schema

// NewSchemaSet builds the index for a schema list.
func NewSchemaSet(schemas []Schema) SchemaSet {
	set := make(SchemaSet, len(schemas))
	for i := range schemas {
		set[schemas[i].Device] = &schemas[i]
	}
	return set
}
