package taccstats

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Record is the values read from one device at one sample.
type Record struct {
	Device string
	Values []uint64
}

// Sample is everything the collector read on one node at one instant.
type Sample struct {
	Time    int64 // unix seconds
	Marker  string
	Records []Record
}

// Sample markers, mirroring TACC_Stats' begin/end/rotate annotations.
const (
	MarkerBegin = "begin" // batch prolog, job start
	MarkerCron  = ""      // periodic collection
	MarkerEnd   = "end"   // batch epilog, job end
)

// NodeArchive is the time-ordered sequence of samples one node recorded for
// one job.
type NodeArchive struct {
	Host    string
	JobID   string
	Samples []Sample
}

// Archive is the full raw data for one job: one node archive per host.
type Archive struct {
	JobID string
	Nodes []NodeArchive
}

// Encode writes the archive in the TACC_Stats-like text format:
//
//	%jobid <id>
//	%host <hostname>
//	<unix-time> [marker]
//	<device> <v0> <v1> ...
//
// Device lines repeat per sample; a new %host section starts each node.
func (a *Archive) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%%jobid %s\n", a.JobID)
	for _, n := range a.Nodes {
		fmt.Fprintf(bw, "%%host %s\n", n.Host)
		for _, s := range n.Samples {
			if s.Marker != "" {
				fmt.Fprintf(bw, "%d %s\n", s.Time, s.Marker)
			} else {
				fmt.Fprintf(bw, "%d\n", s.Time)
			}
			// Deterministic device order for reproducible output.
			recs := append([]Record(nil), s.Records...)
			sort.Slice(recs, func(i, j int) bool { return recs[i].Device < recs[j].Device })
			for _, rec := range recs {
				bw.WriteString(rec.Device)
				for _, v := range rec.Values {
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatUint(v, 10))
				}
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// Decode parses an archive previously written by Encode.
func Decode(r io.Reader) (*Archive, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	a := &Archive{}
	var node *NodeArchive
	var sample *Sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		// An empty id/host encodes as "%jobid \n", which arrives here
		// trimmed to the bare directive; accept both forms.
		case line == "%jobid" || strings.HasPrefix(line, "%jobid "):
			a.JobID = strings.TrimPrefix(strings.TrimPrefix(line, "%jobid"), " ")
		case line == "%host" || strings.HasPrefix(line, "%host "):
			a.Nodes = append(a.Nodes, NodeArchive{
				Host:  strings.TrimPrefix(strings.TrimPrefix(line, "%host"), " "),
				JobID: a.JobID,
			})
			node = &a.Nodes[len(a.Nodes)-1]
			sample = nil
		case line[0] >= '0' && line[0] <= '9':
			if node == nil {
				return nil, fmt.Errorf("taccstats: line %d: sample before %%host", lineNo)
			}
			fields := strings.Fields(line)
			t, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("taccstats: line %d: bad timestamp %q", lineNo, fields[0])
			}
			marker := ""
			if len(fields) > 1 {
				marker = fields[1]
			}
			node.Samples = append(node.Samples, Sample{Time: t, Marker: marker})
			sample = &node.Samples[len(node.Samples)-1]
		default:
			if sample == nil {
				return nil, fmt.Errorf("taccstats: line %d: record before sample header", lineNo)
			}
			fields := strings.Fields(line)
			rec := Record{Device: fields[0], Values: make([]uint64, 0, len(fields)-1)}
			for _, f := range fields[1:] {
				v, err := strconv.ParseUint(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("taccstats: line %d: bad value %q", lineNo, f)
				}
				rec.Values = append(rec.Values, v)
			}
			sample.Records = append(sample.Records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return a, nil
}

// Find returns the record for the named device within a sample, or nil.
func (s *Sample) Find(device string) *Record {
	for i := range s.Records {
		if s.Records[i].Device == device {
			return &s.Records[i]
		}
	}
	return nil
}

// CounterDelta computes cur-prev for a counter that may have rolled over.
// pmc marks 48-bit hardware counters; 64-bit kernel counters are assumed
// never to wrap within a job.
func CounterDelta(prev, cur uint64, pmc bool) uint64 {
	if pmc {
		prev &= pmcMask
		cur &= pmcMask
		return (cur - prev) & pmcMask
	}
	return cur - prev
}
