package taccstats

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/apps"
	"repro/internal/rng"
)

func testDraw(t *testing.T, name string, seed uint64) *apps.JobDraw {
	t.Helper()
	a, ok := apps.ByName(name)
	if !ok {
		t.Fatalf("app %s missing", name)
	}
	return a.Sig.Draw(rng.New(seed))
}

func TestSampleTimes(t *testing.T) {
	// start 1000, end 2500, period 600 -> ticks at 1200, 1800, 2400
	got := sampleTimes(1000, 2500, 600)
	want := []int64{1000, 1200, 1800, 2400, 2500}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sampleTimes = %v, want %v", got, want)
	}
}

func TestSampleTimesShortJob(t *testing.T) {
	// Job shorter than one period and not crossing a tick: begin+end only.
	got := sampleTimes(100, 300, 600)
	want := []int64{100, 300}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sampleTimes = %v, want %v", got, want)
	}
}

func TestSampleTimesTickAtEnd(t *testing.T) {
	// End exactly on a tick must not duplicate the final sample.
	got := sampleTimes(0, 1200, 600)
	want := []int64{0, 600, 1200}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sampleTimes = %v, want %v", got, want)
	}
}

func TestCollectShape(t *testing.T) {
	d := testDraw(t, "WRF", 1)
	hosts := make([]string, d.Nodes)
	for i := range hosts {
		hosts[i] = Hostname(i/24, i%24)
	}
	a := Collect(DefaultConfig(), JobInfo{ID: "123", Start: 1_400_000_000, Hosts: hosts}, d, rng.New(2))
	if len(a.Nodes) != d.Nodes {
		t.Fatalf("archive has %d nodes, want %d", len(a.Nodes), d.Nodes)
	}
	for _, n := range a.Nodes {
		if len(n.Samples) < 2 {
			t.Fatalf("node %s has %d samples", n.Host, len(n.Samples))
		}
		if n.Samples[0].Marker != MarkerBegin {
			t.Error("first sample not marked begin")
		}
		if n.Samples[len(n.Samples)-1].Marker != MarkerEnd {
			t.Error("last sample not marked end")
		}
		for i := 1; i < len(n.Samples); i++ {
			if n.Samples[i].Time <= n.Samples[i-1].Time {
				t.Fatal("samples not strictly increasing in time")
			}
		}
		for _, s := range n.Samples {
			if len(s.Records) != len(DefaultSchemas()) {
				t.Fatalf("sample has %d records, want %d", len(s.Records), len(DefaultSchemas()))
			}
		}
	}
}

func TestCollectCountersMonotonicExceptPMC(t *testing.T) {
	d := testDraw(t, "VASP", 3)
	a := Collect(DefaultConfig(), JobInfo{ID: "1", Start: 1_400_000_000, Hosts: []string{"c0"}}, d, rng.New(4))
	n := a.Nodes[0]
	set := NewSchemaSet(DefaultSchemas())
	for i := 1; i < len(n.Samples); i++ {
		for _, rec := range n.Samples[i].Records {
			prev := n.Samples[i-1].Find(rec.Device)
			sch := set[rec.Device]
			for k, key := range sch.Keys {
				if !key.Event || key.PMC {
					continue
				}
				if rec.Values[k] < prev.Values[k] {
					t.Fatalf("counter %s.%s decreased: %d -> %d", rec.Device, key.Name, prev.Values[k], rec.Values[k])
				}
			}
		}
	}
}

func TestCounterDelta(t *testing.T) {
	if CounterDelta(100, 250, false) != 150 {
		t.Error("plain delta")
	}
	// 48-bit rollover: prev near max, cur wrapped.
	prev := pmcMask - 10
	cur := uint64(20)
	if CounterDelta(prev, cur, true) != 31 {
		t.Errorf("rollover delta = %d, want 31", CounterDelta(prev, cur, true))
	}
	if CounterDelta(5, 5, true) != 0 {
		t.Error("identical values should delta to 0")
	}
}

func TestCounterDeltaProperty(t *testing.T) {
	// Property: for any base and any non-negative advance < 2^48,
	// CounterDelta recovers the advance across the masking.
	f := func(base uint64, adv uint32) bool {
		prev := base & pmcMask
		cur := (base + uint64(adv)) & pmcMask
		return CounterDelta(prev, cur, true) == uint64(adv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPMCRolloverOccursOnLongJobs(t *testing.T) {
	// A 16-core 2.7GHz node accumulates ~4.3e10 cycles/s; 2^48 wraps in
	// ~1.8 hours. A 12-hour HPL-like job must observe at least one wrap.
	a, _ := apps.ByName("HPL")
	sig := a.Sig
	sig.WallLogMu = math.Log(12 * 3600)
	sig.WallLogSigma = 0.01
	d := sig.Draw(rng.New(5))
	arch := Collect(DefaultConfig(), JobInfo{ID: "9", Start: 1_400_000_000, Hosts: []string{"c0"}}, d, rng.New(6))
	n := arch.Nodes[0]
	wraps := 0
	for i := 1; i < len(n.Samples); i++ {
		cur := n.Samples[i].Find(DevPMC).Values[0]
		prev := n.Samples[i-1].Find(DevPMC).Values[0]
		if cur < prev {
			wraps++
		}
	}
	if wraps == 0 {
		t.Error("expected at least one PMC rollover on a 12h compute-bound job")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := testDraw(t, "NAMD", 7)
	hosts := []string{"c001-001", "c001-002"}
	if d.Nodes < 2 {
		hosts = hosts[:1]
	}
	a := Collect(DefaultConfig(), JobInfo{ID: "42", Start: 1_400_000_123, Hosts: hosts}, d, rng.New(8))
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.JobID != a.JobID || len(got.Nodes) != len(a.Nodes) {
		t.Fatalf("round trip mismatch: %v nodes", len(got.Nodes))
	}
	for i := range a.Nodes {
		if got.Nodes[i].Host != a.Nodes[i].Host {
			t.Fatal("host mismatch")
		}
		if len(got.Nodes[i].Samples) != len(a.Nodes[i].Samples) {
			t.Fatal("sample count mismatch")
		}
		for j := range a.Nodes[i].Samples {
			ws, gs := a.Nodes[i].Samples[j], got.Nodes[i].Samples[j]
			if ws.Time != gs.Time || ws.Marker != gs.Marker {
				t.Fatal("sample header mismatch")
			}
			for _, rec := range ws.Records {
				grec := gs.Find(rec.Device)
				if grec == nil || !reflect.DeepEqual(grec.Values, rec.Values) {
					t.Fatalf("record %s mismatch", rec.Device)
				}
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"%jobid 1\n1234 begin\ncpu 1 2 3\n",       // sample before %host
		"%jobid 1\n%host c0\ncpu 1 2 3\n",         // record before sample
		"%jobid 1\n%host c0\n12x34\n",             // bad timestamp handled as record before sample
		"%jobid 1\n%host c0\n1234\ncpu 1 2 bad\n", // bad value
	}
	for i, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
}

func TestCatastropheCollapsesCPU(t *testing.T) {
	a, _ := apps.ByName("NAMD")
	sig := a.Sig
	sig.CatastropheProb = 1
	sig.WallLogMu = math.Log(6 * 3600)
	sig.WallLogSigma = 0.01
	d := sig.Draw(rng.New(9))
	if !d.Catastrophe {
		t.Fatal("draw should be catastrophic")
	}
	arch := Collect(DefaultConfig(), JobInfo{ID: "7", Start: 1_400_000_000, Hosts: []string{"c0"}}, d, rng.New(10))
	n := arch.Nodes[0]
	// Per-interval CPU user rate: first interval vs last interval.
	rate := func(i int) float64 {
		cur := n.Samples[i].Find(DevCPU)
		prev := n.Samples[i-1].Find(DevCPU)
		dt := float64(n.Samples[i].Time - n.Samples[i-1].Time)
		return float64(cur.Values[0]-prev.Values[0]) / dt
	}
	first := rate(1)
	last := rate(len(n.Samples) - 1)
	if last > first*0.2 {
		t.Errorf("catastrophe: last-interval CPU rate %v not collapsed vs first %v", last, first)
	}
}

func TestCollectDeterminism(t *testing.T) {
	d1 := testDraw(t, "LAMMPS", 11)
	d2 := testDraw(t, "LAMMPS", 11)
	job := JobInfo{ID: "5", Start: 1_400_000_000, Hosts: []string{"c0", "c1"}}
	a1 := Collect(DefaultConfig(), job, d1, rng.New(12))
	a2 := Collect(DefaultConfig(), job, d2, rng.New(12))
	var b1, b2 bytes.Buffer
	a1.Encode(&b1)
	a2.Encode(&b2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("Collect is not deterministic")
	}
}

func TestSchemaSet(t *testing.T) {
	set := NewSchemaSet(DefaultSchemas())
	cpu, ok := set[DevCPU]
	if !ok || cpu.KeyIndex("system") != 1 {
		t.Fatal("schema lookup failed")
	}
	if cpu.KeyIndex("nope") != -1 {
		t.Error("KeyIndex should return -1 for unknown keys")
	}
	pmc := set[DevPMC]
	for _, k := range pmc.Keys {
		if !k.PMC || !k.Event {
			t.Errorf("pmc key %s should be a PMC event counter", k.Name)
		}
	}
}

func BenchmarkCollect(b *testing.B) {
	a, _ := apps.ByName("VASP")
	d := a.Sig.Draw(rng.New(1))
	hosts := make([]string, d.Nodes)
	for i := range hosts {
		hosts[i] = Hostname(0, i)
	}
	job := JobInfo{ID: "1", Start: 1_400_000_000, Hosts: hosts}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Collect(DefaultConfig(), job, d, rng.New(uint64(i)))
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	a, _ := apps.ByName("WRF")
	d := a.Sig.Draw(rng.New(1))
	hosts := make([]string, d.Nodes)
	for i := range hosts {
		hosts[i] = Hostname(0, i)
	}
	arch := Collect(DefaultConfig(), JobInfo{ID: "1", Start: 1_400_000_000, Hosts: hosts}, d, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		arch.Encode(&buf)
		if _, err := Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
