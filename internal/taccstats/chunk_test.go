package taccstats

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/rng"
)

// collectOneNode produces a realistic single-node sample run.
func collectOneNode(t *testing.T) *NodeArchive {
	t.Helper()
	app := apps.Catalog()[0]
	draw := app.Sig.Draw(rng.New(11))
	draw.WallSeconds = 3000
	a := Collect(DefaultConfig(), JobInfo{ID: "777", Start: 1000, Hosts: []string{"c1"}}, draw, rng.New(12))
	return &a.Nodes[0]
}

func TestChunkRoundTrip(t *testing.T) {
	node := collectOneNode(t)
	c := &Chunk{JobID: node.JobID, Host: node.Host, Samples: node.Samples}
	b, err := EncodeChunk(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeChunk(b)
	if err != nil {
		t.Fatal(err)
	}
	// Encode canonicalizes device order within each sample, so compare
	// at the fixed point: re-encoding the decoded chunk must reproduce
	// the payload byte for byte, and a second decode must be identity.
	b2, err := EncodeChunk(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("encode/decode/encode is not a fixed point")
	}
	again, err := DecodeChunk(b2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatal("decode of canonical form is not identity")
	}
	if got.JobID != c.JobID || got.Host != c.Host || len(got.Samples) != len(c.Samples) {
		t.Fatalf("round trip lost identity: %s/%s %d samples", got.JobID, got.Host, len(got.Samples))
	}
	for i := range c.Samples {
		if got.Samples[i].Time != c.Samples[i].Time || got.Samples[i].Marker != c.Samples[i].Marker {
			t.Fatalf("sample %d time/marker changed", i)
		}
		if len(got.Samples[i].Records) != len(c.Samples[i].Records) {
			t.Fatalf("sample %d record count changed", i)
		}
	}
	// The wire payload is exactly the one-node archive encoding, so the
	// streamed and spooled representations of a node are bit-identical.
	var buf bytes.Buffer
	a := &Archive{JobID: c.JobID, Nodes: []NodeArchive{{Host: c.Host, JobID: c.JobID, Samples: c.Samples}}}
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, buf.Bytes()) {
		t.Fatal("chunk encoding diverged from the archive text format")
	}
}

func TestChunkEncodeErrors(t *testing.T) {
	node := collectOneNode(t)
	if _, err := EncodeChunk(&Chunk{Host: "c1", Samples: node.Samples}); err == nil {
		t.Fatal("chunk without job id must fail")
	}
	if _, err := EncodeChunk(&Chunk{JobID: "1", Samples: node.Samples}); err == nil {
		t.Fatal("chunk without host must fail")
	}
}

func TestChunkDecodeErrors(t *testing.T) {
	node := collectOneNode(t)
	two := &Archive{JobID: "1", Nodes: []NodeArchive{
		{Host: "c1", JobID: "1", Samples: node.Samples},
		{Host: "c2", JobID: "1", Samples: node.Samples},
	}}
	var buf bytes.Buffer
	if err := two.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeChunk(buf.Bytes()); err == nil {
		t.Fatal("two-node payload must fail")
	}
	if _, err := DecodeChunk([]byte("%jobid 1\n%host c1\n")); err == nil {
		t.Fatal("sample-free payload must fail")
	}
	if _, err := DecodeChunk([]byte("not an archive")); err == nil {
		t.Fatal("garbage payload must fail")
	}
}
