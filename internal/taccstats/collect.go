package taccstats

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/rng"
)

// Config holds the collector and machine parameters. The defaults mirror
// TACC Stampede: 16-core Sandy Bridge nodes at 2.7 GHz, 10-minute cron
// collection, USER_HZ 100 kernel CPU accounting.
type Config struct {
	Period       int64   // collection period in seconds
	CoresPerNode int     // cores per compute node
	ClockHz      float64 // core clock frequency
	UserHz       float64 // kernel CPU accounting ticks per second
}

// DefaultConfig returns the Stampede-like configuration.
func DefaultConfig() Config {
	return Config{Period: 600, CoresPerNode: 16, ClockHz: 2.7e9, UserHz: 100}
}

// JobInfo identifies the job being collected.
type JobInfo struct {
	ID    string
	Start int64 // unix seconds
	Hosts []string
}

// Collect simulates the collector on every node of a job and returns the
// raw archive: a begin sample at the prolog, wall-clock-aligned cron
// samples, and an end sample at the epilog. Counters begin from arbitrary
// per-node bases and hardware counters wrap at 48 bits, exactly the
// conditions the summarizer must handle.
func Collect(cfg Config, job JobInfo, d *apps.JobDraw, r *rng.Rand) *Archive {
	if cfg.Period <= 0 {
		cfg = DefaultConfig()
	}
	end := job.Start + int64(d.WallSeconds)
	if end <= job.Start {
		end = job.Start + 1
	}
	times := sampleTimes(job.Start, end, cfg.Period)

	// Catastrophe: CPU activity collapses on every node at a point in the
	// second half-ish of the run and never recovers (a hung MPI job).
	collapseAt := int64(-1)
	if d.Catastrophe {
		frac := 0.3 + 0.6*r.Float64()
		collapseAt = job.Start + int64(frac*float64(end-job.Start))
	}

	a := &Archive{JobID: job.ID, Nodes: make([]NodeArchive, len(job.Hosts))}
	for ni, host := range job.Hosts {
		nr := r.Split(uint64(ni))
		node := d.NodeRates(nr)
		counters := newCounterState(nr)
		na := NodeArchive{Host: host, JobID: job.ID, Samples: make([]Sample, 0, len(times))}
		prev := job.Start
		for si, t := range times {
			marker := MarkerCron
			switch si {
			case 0:
				marker = MarkerBegin
			case len(times) - 1:
				marker = MarkerEnd
			}
			if si > 0 {
				dt := float64(t - prev)
				cpuScale := 1.0
				if collapseAt >= 0 && prev >= collapseAt {
					cpuScale = 0.02
				} else if collapseAt >= 0 && t > collapseAt {
					// interval straddles the collapse: pro-rate
					healthy := float64(collapseAt-prev) / float64(t-prev)
					cpuScale = healthy + 0.02*(1-healthy)
				}
				progress := (float64(prev+t)/2 - float64(job.Start)) / float64(end-job.Start)
				iv := d.PerturbInterval(nr.Split(uint64(si)), node, cpuScale, progress)
				counters.advance(cfg, iv, dt)
			}
			na.Samples = append(na.Samples, Sample{Time: t, Marker: marker, Records: counters.records(cfg, node, d)})
			prev = t
		}
		a.Nodes[ni] = na
	}
	return a
}

// sampleTimes returns start, then cron ticks aligned to multiples of period
// strictly inside (start, end), then end.
func sampleTimes(start, end, period int64) []int64 {
	times := []int64{start}
	tick := (start/period + 1) * period
	for ; tick < end; tick += period {
		times = append(times, tick)
	}
	times = append(times, end)
	return times
}

// counterState holds one node's cumulative counters. Fractional parts are
// accumulated in float64 and truncated at read time, matching how real
// counters integrate continuous rates.
type counterState struct {
	cpuUser, cpuSys, cpuIdle              float64
	cycles, instructions, l1dLoads, flops float64
	memBW                                 float64
	netTx, netRx                          float64
	ibRx, ibTx                            float64
	nfsW, nfsR                            float64
	lliteW, lliteR                        float64
	lnetTx, lnetRx                        float64
	rdIOs, rdBytes, wrBytes               float64
	memGauge                              uint64
}

// newCounterState seeds the counters with arbitrary bases: the node has
// been up for days and its counters carry history from earlier jobs.
func newCounterState(r *rng.Rand) *counterState {
	base := func(scale float64) float64 { return r.Float64() * scale }
	return &counterState{
		cpuUser: base(1e10), cpuSys: base(1e9), cpuIdle: base(1e10),
		cycles: base(float64(pmcMask)), instructions: base(float64(pmcMask)),
		l1dLoads: base(float64(pmcMask)), flops: base(float64(pmcMask)),
		memBW: base(1e15), netTx: base(1e12), netRx: base(1e12),
		ibRx: base(1e13), ibTx: base(1e13),
		nfsW: base(1e10), nfsR: base(1e10),
		lliteW: base(1e12), lliteR: base(1e12),
		lnetTx: base(1e12), lnetRx: base(1e12),
		rdIOs: base(1e8), rdBytes: base(1e12), wrBytes: base(1e12),
	}
}

// advance integrates the interval rates iv over dt seconds.
func (c *counterState) advance(cfg Config, iv [apps.NumMetrics]float64, dt float64) {
	cores := float64(cfg.CoresPerNode)
	totalTicks := cores * cfg.UserHz * dt
	c.cpuUser += iv[apps.CPUUser] * totalTicks
	c.cpuSys += iv[apps.CPUSystem] * totalTicks
	c.cpuIdle += iv[apps.CPUIdle] * totalTicks

	active := iv[apps.CPUUser] + iv[apps.CPUSystem]
	cyc := cfg.ClockHz * cores * active * dt
	c.cycles += cyc
	c.instructions += cyc / iv[apps.CPI]
	c.l1dLoads += cyc / iv[apps.CPLD]
	c.flops += iv[apps.Flops] * dt

	c.memBW += iv[apps.MemBW] * dt
	c.memGauge = uint64(iv[apps.MemUsed])
	c.netTx += iv[apps.EthTx] * dt
	c.netRx += iv[apps.EthTx] * 0.9 * dt
	c.ibRx += iv[apps.IBRx] * dt
	c.ibTx += iv[apps.IBTx] * dt
	c.nfsW += iv[apps.HomeWrite] * dt
	c.nfsR += iv[apps.HomeWrite] * 0.3 * dt
	c.lliteW += iv[apps.ScratchWrite] * dt
	c.lliteR += iv[apps.ScratchWrite] * 0.4 * dt
	c.lnetTx += iv[apps.LustreTx] * dt
	c.lnetRx += iv[apps.LustreTx] * 0.8 * dt
	c.rdIOs += iv[apps.DiskReadIOPS] * dt
	c.rdBytes += iv[apps.DiskReadBytes] * dt
	c.wrBytes += iv[apps.DiskWriteBytes] * dt
}

// records renders the current counter state as device records. Hardware
// performance counters are masked to 48 bits (rollover happens here).
func (c *counterState) records(cfg Config, node [apps.NumMetrics]float64, d *apps.JobDraw) []Record {
	u := func(f float64) uint64 { return uint64(f) }
	pmc := func(f float64) uint64 { return uint64(f) & pmcMask }
	memGauge := c.memGauge
	if memGauge == 0 {
		memGauge = uint64(node[apps.MemUsed]) // before the first interval
	}
	return []Record{
		{DevCPU, []uint64{u(c.cpuUser), u(c.cpuSys), u(c.cpuIdle)}},
		{DevPMC, []uint64{pmc(c.cycles), pmc(c.instructions), pmc(c.l1dLoads), pmc(c.flops)}},
		{DevMem, []uint64{memGauge, u(c.memBW)}},
		{DevNet, []uint64{u(c.netTx), u(c.netRx)}},
		{DevIB, []uint64{u(c.ibRx), u(c.ibTx)}},
		{DevNFS, []uint64{u(c.nfsW), u(c.nfsR)}},
		{DevLLite, []uint64{u(c.lliteW), u(c.lliteR)}},
		{DevLNet, []uint64{u(c.lnetTx), u(c.lnetRx)}},
		{DevBlock, []uint64{u(c.rdIOs), u(c.rdBytes), u(c.wrBytes)}},
	}
}

// Hostname formats a Stampede-style compute-node hostname.
func Hostname(rack, node int) string {
	return fmt.Sprintf("c%03d-%03d.stampede.tacc.utexas.edu", rack, node)
}
