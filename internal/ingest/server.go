package ingest

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/resilience"
	"repro/internal/taccstats"
)

// Config parameterizes the ingest server.
type Config struct {
	// Shards is the number of job-hash partitions (default 4). A job's
	// records are owned by exactly one shard for their whole life.
	Shards int
	// QueueDepth bounds each shard's message queue (default 1024);
	// routing to a full queue sheds the frame's records as
	// dropped{queue_full} rather than blocking the read loop.
	QueueDepth int
	// IdleTimeout finalizes a job whose stream has gone quiet without a
	// complete epilog (0 disables; drains still flush everything).
	IdleTimeout time.Duration
	// MaxPayload bounds a frame payload (default DefaultMaxPayload).
	MaxPayload int
	// Collector configures the summarizer (zero value = Stampede
	// defaults, matching the batch pipeline).
	Collector taccstats.Config
	// Sink receives finalized job records (required).
	Sink Sink

	Obs    *obs.Registry
	Log    *obs.Logger
	Faults *resilience.Faults
	// Flight, when armed, records one wide event per finalized job.
	Flight *flight.Recorder
	// Now is the shard clock (tests inject; default time.Now).
	Now func() time.Time
}

// clientState tracks one client's highest processed sequence number, so
// frames retried after a connection drop are applied at most once.
type clientState struct {
	mu   sync.Mutex
	last uint64
}

// Server is the streaming ingest daemon core: TCP accept loop, framed
// protocol with cumulative acks and resume, job-hash sharding, and the
// conservation ledger.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	ledger *Ledger
	shards []*shard
	depths []*obs.Gauge

	mu      sync.Mutex
	lis     net.Listener
	conns   map[net.Conn]bool
	connWG  sync.WaitGroup
	clients map[string]*clientState

	pending     atomic.Int64 // records accepted but not yet settled
	openJobs    *obs.Gauge
	connsActive *obs.Gauge
	frames      func(outcome string) *obs.Counter
	closed      atomic.Bool
	drained     atomic.Bool
}

// NewServer builds a server (shard goroutines start immediately; wire
// traffic starts when Serve is called).
func NewServer(cfg Config) (*Server, error) {
	if cfg.Sink == nil {
		return nil, fmt.Errorf("ingest: config requires a Sink")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	if cfg.Collector.Period <= 0 {
		cfg.Collector = taccstats.DefaultConfig()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Obs,
		ledger:  NewLedger(cfg.Shards, cfg.Obs),
		conns:   map[net.Conn]bool{},
		clients: map[string]*clientState{},
	}
	s.reg.Help("ingest_frames_total", "Wire frames handled, by outcome (ok, duplicate, decode_error, meta_shed).")
	s.reg.Help("ingest_jobs_finalized_total", "Jobs finalized, by outcome and trigger.")
	s.reg.Help("ingest_shard_depth", "Queued messages per ingest shard.")
	s.reg.Help("ingest_open_jobs", "Jobs currently open across all shards.")
	s.reg.Help("ingest_connections_active", "Live ingest TCP connections.")
	s.openJobs = s.reg.Gauge("ingest_open_jobs")
	s.connsActive = s.reg.Gauge("ingest_connections_active")
	s.frames = func(outcome string) *obs.Counter {
		return s.reg.Counter("ingest_frames_total", "outcome", outcome)
	}
	s.depths = make([]*obs.Gauge, cfg.Shards)
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.depths[i] = s.reg.Gauge("ingest_shard_depth", "shard", strconv.Itoa(i))
		s.shards[i] = newShard(i, s, cfg.QueueDepth)
		go s.shards[i].run()
	}
	return s, nil
}

func (s *Server) now() time.Time              { return s.cfg.Now() }
func (s *Server) depthGauge(i int) *obs.Gauge { return s.depths[i] }

// Ledger exposes the conservation ledger (tests and /debug/ingest).
func (s *Server) Ledger() *Ledger { return s.ledger }

// Pending reports records accepted but not yet summarized or dropped.
func (s *Server) Pending() int64 { return s.pending.Load() }

// shardFor routes a job id to its owning shard.
func (s *Server) shardFor(jobID string) int {
	return int(fnv64a([]byte(jobID)) % uint64(len(s.shards)))
}

// Serve accepts connections on lis until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = true
		s.connWG.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handleConn(conn)
		}()
	}
}

// handleConn speaks the framed protocol on one connection: hello,
// then data/meta frames each answered with a cumulative ack.
func (s *Server) handleConn(conn net.Conn) {
	s.connsActive.Inc()
	defer s.connsActive.Dec()
	defer conn.Close()
	defer func() {
		if p := recover(); p != nil {
			s.cfg.Log.Error("ingest.conn.panic", "remote", conn.RemoteAddr().String(), "panic", fmt.Sprint(p))
		}
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	hello, err := ReadFrame(br, s.cfg.MaxPayload)
	if err != nil || hello.Type != FrameHello || len(hello.Payload) == 0 || len(hello.Payload) > 256 {
		s.cfg.Log.Warn("ingest.conn.bad_hello", "remote", conn.RemoteAddr().String())
		return
	}
	client := s.client(string(hello.Payload))
	client.mu.Lock()
	last := client.last
	client.mu.Unlock()
	if err := s.writeAck(bw, last); err != nil {
		return
	}

	for {
		f, err := ReadFrame(br, s.cfg.MaxPayload)
		if err != nil {
			if err != io.EOF {
				s.cfg.Log.Debug("ingest.conn.read", "err", err.Error())
			}
			return
		}
		// Chaos site: error severs the connection before the frame is
		// accounted (the client resumes from its last ack, so nothing is
		// lost or double counted); latency stalls the stream; panic is
		// isolated by the deferred recover above.
		if err := s.cfg.Faults.Inject(SiteConn); err != nil {
			s.cfg.Log.Debug("ingest.conn.injected", "err", err.Error())
			return
		}
		s.processFrame(client, f)
		client.mu.Lock()
		last = client.last
		client.mu.Unlock()
		if err := s.writeAck(bw, last); err != nil {
			return
		}
	}
}

// writeAck sends the cumulative ack for a client's last processed seq.
func (s *Server) writeAck(bw *bufio.Writer, seq uint64) error {
	if err := WriteFrame(bw, &Frame{Type: FrameAck, Seq: seq}); err != nil {
		return err
	}
	return bw.Flush()
}

// client returns (creating) the per-client dedup state.
func (s *Server) client(id string) *clientState {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[id]
	if !ok {
		c = &clientState{}
		s.clients[id] = c
	}
	return c
}

// processFrame accounts and routes one data or meta frame, exactly
// once per (client, seq): replays of an already-processed sequence are
// acked but not re-applied.
func (s *Server) processFrame(client *clientState, f *Frame) {
	client.mu.Lock()
	defer client.mu.Unlock()
	if f.Seq <= client.last {
		s.frames("duplicate").Inc()
		return
	}

	switch f.Type {
	case FrameMeta:
		meta, err := ParseJobMeta(f.Payload)
		if err != nil {
			s.frames("decode_error").Inc()
		} else if !s.route(s.shardFor(meta.JobID), message{meta: meta}) {
			// A shed meta frame costs no records; the job finalizes via
			// the idle sweep instead of its epilog.
			s.frames("meta_shed").Inc()
		} else {
			s.frames("ok").Inc()
		}
	case FrameData:
		n := uint64(f.Records)
		chunk, err := taccstats.DecodeChunk(f.Payload)
		if err != nil || uint64(len(chunk.Samples)) != n {
			// The header's claimed count is the ledger truth for a frame
			// whose payload cannot be trusted: received and dropped in
			// the router slot, conserved either way.
			s.frames("decode_error").Inc()
			s.ledger.Received(routerShard, n)
			s.ledger.Dropped(routerShard, ReasonDecode, n)
			break
		}
		shardID := s.shardFor(chunk.JobID)
		s.ledger.Received(shardID, n)
		if s.route(shardID, message{chunk: chunk}) {
			s.frames("ok").Inc()
			s.pending.Add(int64(n))
		} else {
			s.frames("ok").Inc()
			s.ledger.Dropped(shardID, ReasonQueueFull, n)
		}
	default:
		// Hello mid-stream or a stray ack: protocol noise, not records.
		s.frames("decode_error").Inc()
	}
	client.last = f.Seq
}

// route enqueues a message on a shard without ever blocking the read
// loop; false means the queue was full.
func (s *Server) route(shardID int, msg message) bool {
	sh := s.shards[shardID]
	select {
	case sh.q <- msg:
		s.depths[shardID].Set(float64(len(sh.q)))
		return true
	default:
		return false
	}
}

// Drain stops the wire (closing the listener) and flushes every shard:
// queued messages are applied and every open job finalizes. After
// Drain, Pending() is zero and the ledger balances exactly.
func (s *Server) Drain() {
	if !s.drained.CompareAndSwap(false, true) {
		return
	}
	s.closed.Store(true)
	s.mu.Lock()
	lis := s.lis
	for conn := range s.conns {
		conn.Close() // sever: the handler's next read fails
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	// Wait for every connection handler to return before flushing, so
	// no route can land behind a shard's drain barrier.
	s.connWG.Wait()
	for _, sh := range s.shards {
		done := make(chan struct{})
		sh.q <- message{drain: done}
		<-done
	}
}

// Close drains and shuts down (idempotent).
func (s *Server) Close() { s.Drain() }

// Status is the server's point-in-time self-report, served by
// /debug/ingest and consumed by the reconciliation harness.
type Status struct {
	Ledger      Snapshot  `json:"ledger"`
	Pending     int64     `json:"pending"`
	OpenJobs    float64   `json:"openJobs"`
	Connections float64   `json:"connections"`
	ShardDepths []float64 `json:"shardDepths"`
	Shards      int       `json:"shards"`
}

// Status snapshots the ledger and gauges.
func (s *Server) Status() Status {
	st := Status{
		Ledger:      s.ledger.Snapshot(),
		Pending:     s.pending.Load(),
		OpenJobs:    s.openJobs.Value(),
		Connections: s.connsActive.Value(),
		Shards:      len(s.shards),
	}
	for i := range s.shards {
		st.ShardDepths = append(st.ShardDepths, float64(len(s.shards[i].q)))
	}
	return st
}
