package ingest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// JobMeta is the accounting metadata the batch prolog knows about a job
// and ships in a Meta frame: identity, sizing, and the labels the
// warehouse groups by. Nodes is load-bearing — it is how the shard
// knows every host has delivered its epilog and the job can finalize.
type JobMeta struct {
	JobID    string
	User     string
	AppLabel string
	Category string
	Pop      string // population label: community | uncategorized | na
	Nodes    int
	Cores    int
	Submit   int64
	Start    int64
}

// Encode renders the metadata as sorted key=value lines (the meta-frame
// payload). Values are strconv-quoted so ids and labels may contain
// spaces or newlines without breaking the line discipline.
func (m *JobMeta) Encode() ([]byte, error) {
	if m.JobID == "" {
		return nil, fmt.Errorf("ingest: job meta without job id")
	}
	if m.Nodes <= 0 {
		return nil, fmt.Errorf("ingest: job meta %q with non-positive node count %d", m.JobID, m.Nodes)
	}
	pairs := map[string]string{
		"job":      strconv.Quote(m.JobID),
		"user":     strconv.Quote(m.User),
		"app":      strconv.Quote(m.AppLabel),
		"category": strconv.Quote(m.Category),
		"pop":      strconv.Quote(m.Pop),
		"nodes":    strconv.Itoa(m.Nodes),
		"cores":    strconv.Itoa(m.Cores),
		"submit":   strconv.FormatInt(m.Submit, 10),
		"start":    strconv.FormatInt(m.Start, 10),
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(pairs[k])
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

// ParseJobMeta parses a meta-frame payload written by Encode. Unknown
// keys are rejected so a schema drift between collector and daemon is
// loud, not silently lossy.
func ParseJobMeta(b []byte) (*JobMeta, error) {
	m := &JobMeta{}
	for ln, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("ingest: meta line %d is not key=value: %q", ln+1, line)
		}
		var err error
		unq := func() (string, error) { return strconv.Unquote(val) }
		switch key {
		case "job":
			m.JobID, err = unq()
		case "user":
			m.User, err = unq()
		case "app":
			m.AppLabel, err = unq()
		case "category":
			m.Category, err = unq()
		case "pop":
			m.Pop, err = unq()
		case "nodes":
			m.Nodes, err = strconv.Atoi(val)
		case "cores":
			m.Cores, err = strconv.Atoi(val)
		case "submit":
			m.Submit, err = strconv.ParseInt(val, 10, 64)
		case "start":
			m.Start, err = strconv.ParseInt(val, 10, 64)
		default:
			return nil, fmt.Errorf("ingest: meta line %d: unknown key %q", ln+1, key)
		}
		if err != nil {
			return nil, fmt.Errorf("ingest: meta line %d: bad %s: %v", ln+1, key, err)
		}
	}
	if m.JobID == "" {
		return nil, fmt.Errorf("ingest: meta without job id")
	}
	if m.Nodes <= 0 {
		return nil, fmt.Errorf("ingest: meta for job %q with non-positive node count %d", m.JobID, m.Nodes)
	}
	return m, nil
}
