package ingest

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/taccstats"
)

// ClientConfig parameterizes an ingest client (one per collector
// connection).
type ClientConfig struct {
	// Addr is the ingest server's TCP address.
	Addr string
	// ID names the client for server-side resume/dedup. Must be unique
	// per logical stream and stable across reconnects.
	ID string
	// MaxPayload bounds frame payloads (default DefaultMaxPayload).
	MaxPayload int
	// Window bounds unacknowledged frames in flight (default 256);
	// senders block when the window is full.
	Window int
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// RetryBackoff is the pause between reconnect attempts (default
	// 20ms).
	RetryBackoff time.Duration
	Log          *obs.Logger
}

// pendingFrame is an unacknowledged frame the client must be able to
// replay after a reconnect.
type pendingFrame struct {
	seq     uint64
	buf     []byte
	records uint64
	sent    bool // written on the current connection
}

// Client streams frames to an ingest server with exactly-once delivery
// semantics: every frame is retried across reconnects until the
// server's cumulative ack covers it, and the server dedups replays by
// (client, seq). After Flush returns nil, RecordsAcked() records have
// been accepted (and accounted) by the server — the client-side anchor
// of the conservation join.
type Client struct {
	cfg ClientConfig

	mu        sync.Mutex
	conn      net.Conn
	bw        *bufio.Writer
	readerGen int
	nextSeq   uint64
	acked     uint64
	unacked   []pendingFrame
	closed    bool

	framesSent   atomic.Uint64
	recordsSent  atomic.Uint64
	recordsAcked atomic.Uint64
	reconnects   atomic.Uint64
}

// ClientStats is a point-in-time view of the client's counters.
type ClientStats struct {
	FramesSent   uint64 `json:"framesSent"`
	RecordsSent  uint64 `json:"recordsSent"`
	RecordsAcked uint64 `json:"recordsAcked"`
	Reconnects   uint64 `json:"reconnects"`
}

// NewClient returns a client; the first Send dials.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" || cfg.ID == "" {
		return nil, fmt.Errorf("ingest: client requires Addr and ID")
	}
	if len(cfg.ID) > 256 {
		return nil, fmt.Errorf("ingest: client id longer than 256 bytes")
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 20 * time.Millisecond
	}
	return &Client{cfg: cfg}, nil
}

// Stats returns the counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		FramesSent:   c.framesSent.Load(),
		RecordsSent:  c.recordsSent.Load(),
		RecordsAcked: c.recordsAcked.Load(),
		Reconnects:   c.reconnects.Load(),
	}
}

// SendMeta ships a job's accounting metadata.
func (c *Client) SendMeta(ctx context.Context, m *JobMeta) error {
	payload, err := m.Encode()
	if err != nil {
		return err
	}
	return c.send(ctx, FrameMeta, 0, payload)
}

// SendChunk ships a run of one node's samples for one job.
func (c *Client) SendChunk(ctx context.Context, chunk *taccstats.Chunk) error {
	if len(chunk.Samples) == 0 {
		return fmt.Errorf("ingest: refusing to send empty chunk")
	}
	if len(chunk.Samples) > 0xFFFF {
		return fmt.Errorf("ingest: chunk of %d samples exceeds the frame record limit", len(chunk.Samples))
	}
	payload, err := taccstats.EncodeChunk(chunk)
	if err != nil {
		return err
	}
	if len(payload) > c.cfg.MaxPayload {
		return fmt.Errorf("ingest: encoded chunk of %d bytes exceeds max payload %d", len(payload), c.cfg.MaxPayload)
	}
	return c.send(ctx, FrameData, uint16(len(chunk.Samples)), payload)
}

// send enqueues one frame and pumps the connection until the frame is
// at least written (acks drain asynchronously; Flush waits for them).
func (c *Client) send(ctx context.Context, ftype byte, records uint16, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("ingest: client closed")
	}
	// Window backpressure: wait for acks before growing the replay
	// buffer further.
	for len(c.unacked) >= c.cfg.Window {
		if err := c.pumpLocked(ctx); err != nil {
			return err
		}
	}
	c.nextSeq++
	f := Frame{Type: ftype, Records: records, Seq: c.nextSeq, Payload: payload}
	c.unacked = append(c.unacked, pendingFrame{seq: f.Seq, buf: AppendFrame(nil, &f), records: uint64(records)})
	c.recordsSent.Add(uint64(records))
	return c.writeUnsentLocked(ctx)
}

// Flush blocks until every sent frame is acknowledged (retrying across
// reconnects) or ctx expires.
func (c *Client) Flush(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.unacked) > 0 {
		if err := c.writeUnsentLocked(ctx); err != nil {
			return err
		}
		if err := c.pumpLocked(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and tears the connection down.
func (c *Client) Close(ctx context.Context) error {
	err := c.Flush(ctx)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.teardownLocked()
	return err
}

// pumpLocked waits a beat for the reader goroutine to drain acks,
// releasing the lock so it can make progress.
func (c *Client) pumpLocked(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Unlock()
	time.Sleep(2 * time.Millisecond)
	c.mu.Lock()
	return ctx.Err()
}

// writeUnsentLocked connects if needed and writes every frame not yet
// written on the current connection. A write failure tears the
// connection down and retries (after backoff) until ctx expires.
func (c *Client) writeUnsentLocked(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if c.conn == nil {
			if err := c.connectLocked(ctx); err != nil {
				return err
			}
		}
		ok := true
		for i := range c.unacked {
			p := &c.unacked[i]
			if p.sent {
				continue
			}
			if _, err := c.bw.Write(p.buf); err != nil {
				ok = false
				break
			}
			p.sent = true
			c.framesSent.Add(1)
		}
		if ok {
			if err := c.bw.Flush(); err != nil {
				ok = false
			}
		}
		if ok {
			return nil
		}
		c.cfg.Log.Debug("ingest.client.write_failed", "id", c.cfg.ID)
		c.teardownLocked()
		c.backoffLocked(ctx)
	}
}

// connectLocked dials, handshakes, resynchronizes the replay buffer
// from the server's resume ack, and starts the ack reader. Retries
// until ctx expires.
func (c *Client) connectLocked(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
		if err != nil {
			c.cfg.Log.Debug("ingest.client.dial_failed", "addr", c.cfg.Addr, "err", err.Error())
			c.backoffLocked(ctx)
			continue
		}
		bw := bufio.NewWriter(conn)
		if err := WriteFrame(bw, &Frame{Type: FrameHello, Payload: []byte(c.cfg.ID)}); err == nil {
			err = bw.Flush()
		} else {
			_ = bw.Flush()
		}
		br := bufio.NewReader(conn)
		ack, err := ReadFrame(br, c.cfg.MaxPayload)
		if err != nil || ack.Type != FrameAck {
			conn.Close()
			c.backoffLocked(ctx)
			continue
		}
		c.reconnects.Add(1)
		c.conn, c.bw = conn, bw
		c.ackLocked(ack.Seq)
		// Everything surviving the prune must be replayed on this
		// connection.
		for i := range c.unacked {
			c.unacked[i].sent = false
		}
		c.readerGen++
		go c.readAcks(conn, br, c.readerGen)
		return nil
	}
}

// readAcks consumes cumulative acks until the connection dies; it
// owns no frames, only the acked watermark.
func (c *Client) readAcks(conn net.Conn, br *bufio.Reader, gen int) {
	for {
		f, err := ReadFrame(br, c.cfg.MaxPayload)
		c.mu.Lock()
		if c.readerGen != gen {
			c.mu.Unlock()
			return
		}
		if err != nil || f.Type != FrameAck {
			if c.conn == conn {
				c.teardownLocked()
			}
			c.mu.Unlock()
			return
		}
		c.ackLocked(f.Seq)
		c.mu.Unlock()
	}
}

// ackLocked advances the watermark and prunes the replay buffer.
func (c *Client) ackLocked(seq uint64) {
	if seq <= c.acked && c.acked != 0 {
		return
	}
	if seq > c.acked {
		c.acked = seq
	}
	keep := c.unacked[:0]
	for _, p := range c.unacked {
		if p.seq <= c.acked {
			c.recordsAcked.Add(p.records)
		} else {
			keep = append(keep, p)
		}
	}
	c.unacked = keep
}

// teardownLocked closes the connection; the replay buffer survives.
func (c *Client) teardownLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.bw = nil, nil
	}
	c.readerGen++ // orphan any reader still blocked in ReadFrame
}

// backoffLocked sleeps the retry pause without holding the lock.
func (c *Client) backoffLocked(ctx context.Context) {
	c.mu.Unlock()
	select {
	case <-time.After(c.cfg.RetryBackoff):
	case <-ctx.Done():
	}
	c.mu.Lock()
}
