package ingest

import (
	"bytes"
	"testing"

	"repro/internal/taccstats"
)

// FuzzIngestFrame hammers the wire decoder: arbitrary bytes must either
// parse into a frame that re-encodes to the same bytes (a fixed point)
// or fail cleanly — never panic, never read past the frame, and never
// allocate beyond the payload cap. The server feeds ReadFrame straight
// from untrusted TCP peers, so this is the trust boundary.
func FuzzIngestFrame(f *testing.F) {
	f.Add(AppendFrame(nil, &Frame{Type: FrameHello, Payload: []byte("node-c401-001")}))
	f.Add(AppendFrame(nil, &Frame{Type: FrameData, Records: 3, Seq: 9, Payload: []byte("%jobid 1\n%host c1\n1000 begin\ncpu 1 2\n")}))
	f.Add(AppendFrame(nil, &Frame{Type: FrameMeta, Seq: 2, Payload: []byte("job=\"1\"\nnodes=2\n")}))
	f.Add(AppendFrame(nil, &Frame{Type: FrameAck, Seq: 41}))
	f.Add([]byte{})
	f.Add([]byte("SRM1 but not really a frame"))
	f.Add(AppendFrame(nil, &Frame{Type: FrameData})[:headerSize-1]) // truncated header
	corrupt := AppendFrame(nil, &Frame{Type: FrameData, Records: 1, Payload: []byte("xyz")})
	corrupt[len(corrupt)-1] ^= 0xFF // checksum mismatch
	f.Add(corrupt)

	const maxPayload = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		frame, err := ReadFrame(r, maxPayload)
		if err != nil {
			if frame != nil {
				t.Fatal("error with non-nil frame")
			}
			return
		}
		if len(frame.Payload) > maxPayload {
			t.Fatalf("payload %d exceeds cap %d", len(frame.Payload), maxPayload)
		}
		// Exactly one frame consumed: encoded length == bytes read.
		consumed := len(data) - r.Len()
		if consumed != headerSize+len(frame.Payload) {
			t.Fatalf("consumed %d bytes, want %d", consumed, headerSize+len(frame.Payload))
		}
		// Re-encode / re-read fixed point.
		raw := AppendFrame(nil, frame)
		if !bytes.Equal(raw, data[:consumed]) {
			t.Fatal("re-encode does not reproduce the input bytes")
		}
		again, err := ReadFrame(bytes.NewReader(raw), maxPayload)
		if err != nil {
			t.Fatalf("re-read of valid frame failed: %v", err)
		}
		if again.Type != frame.Type || again.Records != frame.Records || again.Seq != frame.Seq || !bytes.Equal(again.Payload, frame.Payload) {
			t.Fatal("re-read frame differs")
		}
		// A data frame's payload flows into the chunk decoder, which
		// must also never panic on wire input.
		if frame.Type == FrameData {
			decodeChunkNoPanic(t, frame.Payload)
		}
	})
}

// decodeChunkNoPanic shields the fuzzer from expected decode errors
// while still catching panics.
func decodeChunkNoPanic(t *testing.T, payload []byte) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("chunk decoder panicked: %v", p)
		}
	}()
	if c, err := taccstats.DecodeChunk(payload); err == nil && c == nil {
		t.Fatal("nil chunk without error")
	}
}
