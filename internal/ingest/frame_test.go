package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameHello, Payload: []byte("node-c401-001")},
		{Type: FrameData, Records: 37, Seq: 12, Payload: []byte("%jobid 1\n")},
		{Type: FrameMeta, Seq: 13, Payload: []byte("job=\"1\"\nnodes=2\n")},
		{Type: FrameAck, Seq: 99},
		{Type: FrameData, Records: 0xFFFF, Seq: 1<<63 + 5, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	var buf bytes.Buffer
	for i := range frames {
		if err := WriteFrame(&buf, &frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != frames[i].Type || got.Records != frames[i].Records || got.Seq != frames[i].Seq {
			t.Fatalf("frame %d header mismatch: %+v vs %+v", i, got, frames[i])
		}
		if !bytes.Equal(got.Payload, frames[i].Payload) {
			t.Fatalf("frame %d payload mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("want clean io.EOF at stream end, got %v", err)
	}
}

// corrupt returns a valid encoded frame with one byte transformed.
func corrupt(t *testing.T, mutate func([]byte)) []byte {
	t.Helper()
	b := AppendFrame(nil, &Frame{Type: FrameData, Records: 2, Seq: 7, Payload: []byte("payload")})
	if mutate != nil {
		mutate(b)
	}
	return b
}

func TestReadFrameErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"bad magic", corrupt(t, func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"bad type", corrupt(t, func(b []byte) { b[4] = 200 }), ErrBadType},
		{"reserved set", corrupt(t, func(b []byte) { b[5] = 1 }), ErrBadReserved},
		{"oversized length", corrupt(t, func(b []byte) {
			binary.BigEndian.PutUint32(b[8:12], 1<<30)
		}), ErrOversized},
		{"checksum mismatch", corrupt(t, func(b []byte) { b[len(b)-1] ^= 0xFF }), ErrChecksum},
		{"truncated header", corrupt(t, nil)[:10], io.ErrUnexpectedEOF},
		{"truncated payload", corrupt(t, nil)[:headerSize+3], io.ErrUnexpectedEOF},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			raw := c.raw
			_, err := ReadFrame(bytes.NewReader(raw), 0)
			if !errors.Is(err, c.want) {
				t.Fatalf("got %v, want %v", err, c.want)
			}
		})
	}
}

func TestReadFrameRespectsMaxPayload(t *testing.T) {
	raw := AppendFrame(nil, &Frame{Type: FrameData, Payload: bytes.Repeat([]byte{1}, 100)})
	if _, err := ReadFrame(bytes.NewReader(raw), 64); !errors.Is(err, ErrOversized) {
		t.Fatalf("payload over the limit must fail, got %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(raw), 100); err != nil {
		t.Fatalf("payload at the limit must pass, got %v", err)
	}
}

// TestReadFrameNeverOverReads pins that ReadFrame consumes exactly one
// frame, leaving trailing bytes untouched.
func TestReadFrameNeverOverReads(t *testing.T) {
	raw := AppendFrame(nil, &Frame{Type: FrameData, Records: 1, Seq: 3, Payload: []byte("abc")})
	trailer := []byte("TRAILER")
	r := bytes.NewReader(append(append([]byte{}, raw...), trailer...))
	if _, err := ReadFrame(r, 0); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(r)
	if !bytes.Equal(rest, trailer) {
		t.Fatalf("ReadFrame over-read: %d trailing bytes left, want %d", len(rest), len(trailer))
	}
}

func TestJobMetaRoundTrip(t *testing.T) {
	m := &JobMeta{
		JobID:    "2895134",
		User:     "user with space",
		AppLabel: "NAMD",
		Category: "Molecular Dynamics",
		Pop:      "community",
		Nodes:    8,
		Cores:    128,
		Submit:   1400000000,
		Start:    1400003600,
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseJobMeta(b)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestJobMetaErrors(t *testing.T) {
	if _, err := (&JobMeta{Nodes: 1}).Encode(); err == nil {
		t.Fatal("encode without job id must fail")
	}
	if _, err := (&JobMeta{JobID: "x"}).Encode(); err == nil {
		t.Fatal("encode without nodes must fail")
	}
	bad := []string{
		"job=\"1\"\nnodes=2\nmystery=3\n", // unknown key
		"job=\"1\"\nnodes=zero\n",         // bad int
		"job=\"1\" nodes=2\n",             // not key=value per line
		"nodes=2\n",                       // missing job
		"job=\"1\"\n",                     // missing nodes
		"job=unquoted\nnodes=2\n",         // unquoted string
	}
	for _, s := range bad {
		if _, err := ParseJobMeta([]byte(s)); err == nil {
			t.Fatalf("ParseJobMeta(%q) must fail", s)
		}
	}
}

func TestLedgerConservation(t *testing.T) {
	l := NewLedger(2, nil)
	l.Received(0, 100)
	l.Received(1, 50)
	l.Received(routerShard, 7)
	l.Summarized(0, 90)
	l.Dropped(0, ReasonShard, 10)
	l.Summarized(1, 50)
	l.Dropped(routerShard, ReasonDecode, 7)
	snap := l.Snapshot()
	if err := snap.Check(0); err != nil {
		t.Fatal(err)
	}
	if snap.Received != 157 || snap.Summarized != 140 || snap.DroppedSum != 17 {
		t.Fatalf("bad totals: %+v", snap)
	}
	if got := snap.Reasons(); len(got) != 2 || got[0] != ReasonDecode || got[1] != ReasonShard {
		t.Fatalf("bad reasons: %v", got)
	}
}

func TestLedgerCheckDetectsImbalance(t *testing.T) {
	l := NewLedger(1, nil)
	l.Received(0, 10)
	l.Summarized(0, 4)
	if err := l.Snapshot().Check(0); err == nil {
		t.Fatal("unbalanced ledger must fail Check")
	}
	if err := l.Snapshot().Check(6); err != nil {
		t.Fatalf("pending should balance the books: %v", err)
	}
	// Globally balanced but per-shard skewed: shard 0 under-settled,
	// shard 1 over-settled. Check(0) must still catch it.
	l2 := NewLedger(2, nil)
	l2.Received(0, 10)
	l2.Summarized(1, 10)
	if err := l2.Snapshot().Check(0); err == nil {
		t.Fatal("per-shard imbalance must fail Check")
	}
}
