package ingest

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Drop reasons. Every record the server accepts is either summarized or
// dropped under exactly one of these, and the reason set is closed so
// the conservation join against /metrics is a total accounting, not a
// sample.
const (
	// ReasonDecode: the frame's payload failed chunk decoding (or its
	// claimed record count disagreed with the decoded chunk). The
	// header's claimed count is what enters the ledger — a frame that
	// lies about its contents is still conserved.
	ReasonDecode = "decode"
	// ReasonQueueFull: the destination shard's queue was full and the
	// router sheds rather than blocking the accept loop.
	ReasonQueueFull = "queue_full"
	// ReasonShard: the shard faulted (injected error or isolated panic)
	// while applying the message.
	ReasonShard = "shard"
	// ReasonFinalize: finalization failed for the whole job — the
	// summarizer rejected every node, or the ingest.finalize fault site
	// fired.
	ReasonFinalize = "finalize"
	// ReasonIncomplete: records of nodes the summarizer had to skip
	// (fewer than two samples at finalize — a node that never delivered
	// its epilog before the idle timeout, mirroring the production
	// pipeline's dropped-node policy).
	ReasonIncomplete = "incomplete"
	// ReasonSink: the summary was computed but the warehouse refused the
	// record.
	ReasonSink = "sink"
)

// routerShard is the ledger slot for drops that happen before a record
// reaches any shard (decode failures, shed frames).
const routerShard = -1

// shardLedger is one shard's account book.
type shardLedger struct {
	mu         sync.Mutex
	received   uint64
	summarized uint64
	dropped    map[string]uint64
}

// Ledger is the per-shard record account book behind the conservation
// proof. The server credits every accepted record exactly once
// (received) and debits it exactly once (summarized, or dropped under
// one reason); Check asserts the books balance. All methods mirror into
// the obs registry so /metrics carries the same numbers the ledger
// does — the reconciliation harness joins the two exactly.
type Ledger struct {
	shards []shardLedger
	reg    *obs.Registry
}

// NewLedger returns a ledger for n shards (plus the router slot),
// mirroring counts into reg (nil disables mirroring).
func NewLedger(n int, reg *obs.Registry) *Ledger {
	l := &Ledger{shards: make([]shardLedger, n+1), reg: reg}
	for i := range l.shards {
		l.shards[i].dropped = map[string]uint64{}
	}
	reg.Help("ingest_records_total", "Records accepted by the ingest server, by outcome (received, summarized, dropped).")
	return l
}

// slot maps a shard index (routerShard for pre-shard drops) to its book.
func (l *Ledger) slot(shard int) *shardLedger {
	if shard == routerShard {
		return &l.shards[len(l.shards)-1]
	}
	return &l.shards[shard]
}

// Received credits n accepted records to a shard.
func (l *Ledger) Received(shard int, n uint64) {
	s := l.slot(shard)
	s.mu.Lock()
	s.received += n
	s.mu.Unlock()
	l.reg.Counter("ingest_records_total", "outcome", "received").Add(n)
}

// Summarized debits n records as summarized-exactly-once.
func (l *Ledger) Summarized(shard int, n uint64) {
	s := l.slot(shard)
	s.mu.Lock()
	s.summarized += n
	s.mu.Unlock()
	l.reg.Counter("ingest_records_total", "outcome", "summarized").Add(n)
}

// Dropped debits n records under a named reason.
func (l *Ledger) Dropped(shard int, reason string, n uint64) {
	s := l.slot(shard)
	s.mu.Lock()
	s.dropped[reason] += n
	s.mu.Unlock()
	l.reg.Counter("ingest_records_total", "outcome", "dropped", "reason", reason).Add(n)
}

// ShardSnapshot is one shard's balances.
type ShardSnapshot struct {
	Shard      int               `json:"shard"` // -1 is the router slot
	Received   uint64            `json:"received"`
	Summarized uint64            `json:"summarized"`
	Dropped    map[string]uint64 `json:"dropped"`
}

// Snapshot is a point-in-time copy of the whole ledger.
type Snapshot struct {
	Received   uint64            `json:"received"`
	Summarized uint64            `json:"summarized"`
	Dropped    map[string]uint64 `json:"dropped"`
	DroppedSum uint64            `json:"droppedSum"`
	PerShard   []ShardSnapshot   `json:"perShard"`
}

// Snapshot copies the ledger. Each shard's book is internally
// consistent (copied under its lock); the totals are exact whenever the
// server is quiescent, which is when conservation is asserted.
func (l *Ledger) Snapshot() Snapshot {
	out := Snapshot{Dropped: map[string]uint64{}}
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		ss := ShardSnapshot{
			Shard:      i,
			Received:   s.received,
			Summarized: s.summarized,
			Dropped:    make(map[string]uint64, len(s.dropped)),
		}
		for reason, n := range s.dropped {
			ss.Dropped[reason] = n
		}
		s.mu.Unlock()
		if i == len(l.shards)-1 {
			ss.Shard = routerShard
		}
		out.Received += ss.Received
		out.Summarized += ss.Summarized
		for reason, n := range ss.Dropped {
			out.Dropped[reason] += n
			out.DroppedSum += n
		}
		out.PerShard = append(out.PerShard, ss)
	}
	return out
}

// Check asserts exact conservation: received == summarized + Σ dropped,
// globally and per shard. pending is the number of records legitimately
// still in flight (open jobs + queued messages); it must be zero after
// a drain.
func (s Snapshot) Check(pending uint64) error {
	if s.Received != s.Summarized+s.DroppedSum+pending {
		return fmt.Errorf("ingest: ledger unbalanced: received %d != summarized %d + dropped %d + pending %d",
			s.Received, s.Summarized, s.DroppedSum, pending)
	}
	if pending != 0 {
		return nil // per-shard split of pending is unknown mid-flight
	}
	for _, ss := range s.PerShard {
		var drops uint64
		for _, n := range ss.Dropped {
			drops += n
		}
		if ss.Received != ss.Summarized+drops {
			return fmt.Errorf("ingest: shard %d unbalanced: received %d != summarized %d + dropped %d",
				ss.Shard, ss.Received, ss.Summarized, drops)
		}
	}
	return nil
}

// Reasons lists the drop reasons present in the snapshot, sorted.
func (s Snapshot) Reasons() []string {
	out := make([]string, 0, len(s.Dropped))
	for r := range s.Dropped {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
