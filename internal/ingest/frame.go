// Package ingest is the streaming write path: compute nodes ship
// TACC_Stats records to supremm-ingestd as length-framed chunks over
// TCP, a router hashes each job to a shard, per-shard summarizers
// finalize jobs on epilog (or idle timeout), and finalized summaries
// flow into the warehouse.
//
// The package's headline contract is exact record conservation: every
// record the server accepts is summarized exactly once or dropped under
// a named reason, and the per-shard ledger proves it —
//
//	received == summarized + Σ dropped{reason}
//
// holds exactly after a drain, under fault injection, at any shard
// count. The wire protocol makes the client side of the join exact too:
// every frame is acknowledged with a cumulative sequence number, frames
// are deduplicated server-side by (client, seq), and a client that
// retries until acked therefore knows that acked == received with no
// double counting.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types. Hello opens a connection and names the client so the
// server can resume its sequence; Data carries a taccstats.Chunk of
// records; Meta carries job accounting metadata; Ack is the server's
// cumulative acknowledgement.
const (
	FrameHello = byte(1)
	FrameData  = byte(2)
	FrameMeta  = byte(3)
	FrameAck   = byte(4)
)

// frameMagic opens every frame ("SRM1": SUPReMM wire, version 1).
const frameMagic = uint32(0x53524D31)

// headerSize is the fixed frame header length in bytes:
// magic(4) type(1) reserved(1) records(2) length(4) seq(8) sum(8).
const headerSize = 28

// DefaultMaxPayload bounds a frame payload. A chunk of a few hundred
// samples encodes in tens of KiB; 1 MiB leaves generous headroom while
// keeping a corrupt length field from provoking a giant allocation.
const DefaultMaxPayload = 1 << 20

// Framing errors. ReadFrame returns these (wrapped with context) so
// the server can distinguish a malformed peer from a dead connection.
var (
	ErrBadMagic    = errors.New("ingest: bad frame magic")
	ErrBadType     = errors.New("ingest: unknown frame type")
	ErrBadReserved = errors.New("ingest: nonzero reserved header byte")
	ErrOversized   = errors.New("ingest: frame payload exceeds limit")
	ErrChecksum    = errors.New("ingest: frame checksum mismatch")
)

// Frame is one wire frame. Records is the sender's claimed record
// (sample) count for Data frames — carried in the header so that even a
// frame whose payload fails to decode can be accounted exactly in the
// conservation ledger.
type Frame struct {
	Type    byte
	Records uint16
	Seq     uint64
	Payload []byte
}

// fnv64a hashes the payload (FNV-1a, the repo's standard digest).
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// AppendFrame appends the encoded frame to dst and returns the result.
func AppendFrame(dst []byte, f *Frame) []byte {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], frameMagic)
	hdr[4] = f.Type
	hdr[5] = 0
	binary.BigEndian.PutUint16(hdr[6:8], f.Records)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(f.Payload)))
	binary.BigEndian.PutUint64(hdr[12:20], f.Seq)
	binary.BigEndian.PutUint64(hdr[20:28], fnv64a(f.Payload))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w io.Writer, f *Frame) error {
	_, err := w.Write(AppendFrame(nil, f))
	return err
}

// ReadFrame reads exactly one frame. It validates the header before
// allocating for the payload (a corrupt length can never provoke an
// oversized read), verifies the payload checksum, and never reads past
// the end of the frame. maxPayload <= 0 means DefaultMaxPayload.
//
// io.EOF is returned unwrapped when the stream ends cleanly between
// frames; any other failure wraps one of the framing errors or the
// underlying read error.
func ReadFrame(r io.Reader, maxPayload int) (*Frame, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("ingest: reading frame header: %w", err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("ingest: reading frame header: %w", errShort(err))
	}
	if got := binary.BigEndian.Uint32(hdr[0:4]); got != frameMagic {
		return nil, fmt.Errorf("%w: 0x%08x", ErrBadMagic, got)
	}
	f := &Frame{Type: hdr[4]}
	switch f.Type {
	case FrameHello, FrameData, FrameMeta, FrameAck:
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, f.Type)
	}
	if hdr[5] != 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadReserved, hdr[5])
	}
	f.Records = binary.BigEndian.Uint16(hdr[6:8])
	length := binary.BigEndian.Uint32(hdr[8:12])
	if int64(length) > int64(maxPayload) {
		return nil, fmt.Errorf("%w: %d > %d", ErrOversized, length, maxPayload)
	}
	f.Seq = binary.BigEndian.Uint64(hdr[12:20])
	sum := binary.BigEndian.Uint64(hdr[20:28])
	if length > 0 {
		f.Payload = make([]byte, length)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return nil, fmt.Errorf("ingest: reading frame payload: %w", errShort(err))
		}
	}
	if got := fnv64a(f.Payload); got != sum {
		return nil, fmt.Errorf("%w: got 0x%016x want 0x%016x", ErrChecksum, got, sum)
	}
	return f, nil
}

// errShort normalizes a mid-frame EOF to ErrUnexpectedEOF so callers
// can't mistake a truncated frame for a clean close.
func errShort(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
