package ingest

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
)

// runChaosFirehose streams a seeded workload through a server with the
// given fault spec armed and returns the post-drain status plus the
// exact client-side delivery count.
func runChaosFirehose(t *testing.T, spec string, seed uint64, cfg Config) (Status, uint64) {
	t.Helper()
	faults, err := resilience.ParseFaults(seed, spec)
	if err != nil {
		t.Fatalf("ParseFaults(%q): %v", spec, err)
	}
	cfg.Faults = faults
	h := newHarness(t, cfg)

	jobs := genTestJobs(t, seed, 6, 3, 3000)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Two clients split the workload, as independent collector hosts
	// would; each retries across injected connection failures until
	// everything is acked.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var acked uint64
	for ci := 0; ci < 2; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := h.dialClient(fmt.Sprintf("chaos-%d", ci))
			for ji, tj := range jobs {
				if ji%2 != ci {
					continue
				}
				sendJob(ctx, t, c, tj, 4)
			}
			if err := c.Close(ctx); err != nil {
				t.Errorf("client %d: %v", ci, err)
				return
			}
			mu.Lock()
			acked += c.Stats().RecordsAcked
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	return h.drainAndCheck(), acked
}

// TestConservationUnderChaos arms every ingest fault site with every
// fault kind (and a few compound specs) and proves the invariant the
// package doc promises: after drain, received == summarized + dropped
// exactly, per shard and globally, and the server's received count
// equals what the clients know was delivered.
func TestConservationUnderChaos(t *testing.T) {
	cases := []struct {
		name string
		spec string
		cfg  Config
		// wantDrops: the spec makes drops possible (not guaranteed); a
		// spec with rate 1 at a dropping site must drop something.
		mustDrop bool
	}{
		{"conn-error", "ingest.conn=error:0.05", Config{Shards: 4}, false},
		{"conn-latency", "ingest.conn=latency:0.1:2ms", Config{Shards: 4}, false},
		{"conn-panic", "ingest.conn=panic:0.03", Config{Shards: 4}, false},
		{"shard-error", "ingest.shard=error:0.1", Config{Shards: 4}, false},
		{"shard-latency", "ingest.shard=latency:0.2:1ms", Config{Shards: 4}, false},
		{"shard-panic", "ingest.shard=panic:0.05", Config{Shards: 4}, false},
		{"finalize-error", "ingest.finalize=error:1", Config{Shards: 4}, true},
		{"finalize-latency", "ingest.finalize=latency:0.5:2ms", Config{Shards: 4}, false},
		{"finalize-panic", "ingest.finalize=panic:1", Config{Shards: 4}, true},
		{"queue-pressure", "ingest.shard=latency:1:2ms", Config{Shards: 2, QueueDepth: 4}, false},
		{"everything", "ingest.conn=error:0.02,ingest.shard=error:0.05,ingest.finalize=panic:0.25", Config{Shards: 4}, false},
		{"single-shard", "ingest.shard=error:0.1,ingest.finalize=error:0.3", Config{Shards: 1}, false},
		{"eight-shard", "ingest.shard=error:0.1,ingest.finalize=error:0.3", Config{Shards: 8}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st, acked := runChaosFirehose(t, c.spec, 0xC0FFEE, c.cfg)
			// drainAndCheck already asserted Check(0); pin the joins the
			// harness narrative promises.
			if st.Ledger.Received != acked {
				t.Fatalf("server received %d, clients delivered %d", st.Ledger.Received, acked)
			}
			if st.Ledger.Summarized+st.Ledger.DroppedSum != st.Ledger.Received {
				t.Fatalf("unbalanced ledger: %+v", st.Ledger)
			}
			if c.mustDrop && st.Ledger.DroppedSum == 0 {
				t.Fatalf("spec %q must drop records, ledger: %+v", c.spec, st.Ledger)
			}
			t.Logf("received=%d summarized=%d dropped=%v", st.Ledger.Received, st.Ledger.Summarized, st.Ledger.Dropped)
		})
	}
}

// TestChaosDropReasonsAreClosed pins that every drop lands under a
// documented reason — an unknown reason means the accounting taxonomy
// leaked.
func TestChaosDropReasonsAreClosed(t *testing.T) {
	known := map[string]bool{
		ReasonDecode: true, ReasonQueueFull: true, ReasonShard: true,
		ReasonFinalize: true, ReasonIncomplete: true, ReasonSink: true,
	}
	st, _ := runChaosFirehose(t, "ingest.shard=error:0.2,ingest.finalize=error:0.5", 7, Config{Shards: 4, QueueDepth: 8})
	if st.Ledger.DroppedSum == 0 {
		t.Fatal("chaos run dropped nothing; the test proves nothing")
	}
	for _, reason := range st.Ledger.Reasons() {
		if !known[reason] {
			t.Fatalf("undocumented drop reason %q", reason)
		}
	}
}

// TestIngestFaultSpecRoundTrip pins the ingest sites through the
// resilience grammar (the exact spec the soak harness arms).
func TestIngestFaultSpecRoundTrip(t *testing.T) {
	spec := "ingest.conn=error:0.01,ingest.finalize=latency:0.3:5ms,ingest.shard=error:0.02"
	f, err := resilience.ParseFaults(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.String(); got != spec {
		t.Fatalf("spec round trip: %q != %q", got, spec)
	}
	sites := f.Sites()
	if len(sites) != 3 {
		t.Fatalf("want 3 armed sites, got %v", sites)
	}
}
