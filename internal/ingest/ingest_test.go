package ingest

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/summarize"
	"repro/internal/taccstats"
	"repro/internal/warehouse"
)

// testJob is one generated job ready to stream: its meta frame, its
// collected archive, and the exact record count the ledger must settle.
type testJob struct {
	meta    *JobMeta
	arch    *taccstats.Archive
	records uint64
}

// genTestJobs builds a deterministic workload from the cluster
// generator, capped so tests stay fast.
func genTestJobs(t *testing.T, seed uint64, n, maxHosts int, wallCap float64) []*testJob {
	t.Helper()
	gen := cluster.NewGenerator(cluster.Stampede(), cluster.DefaultConfig(seed))
	cfg := taccstats.DefaultConfig()
	r := rng.New(seed ^ 0x1A2B3C)
	out := make([]*testJob, 0, n)
	for _, j := range gen.Generate(n) {
		if len(j.Hosts) > maxHosts {
			j.Hosts = j.Hosts[:maxHosts]
		}
		if j.Draw.WallSeconds > wallCap {
			j.Draw.WallSeconds = wallCap
		}
		arch := taccstats.Collect(cfg, taccstats.JobInfo{ID: j.ID, Start: j.Start, Hosts: j.Hosts},
			j.Draw, r.Split(uint64(len(out))))
		var recs uint64
		for i := range arch.Nodes {
			recs += uint64(len(arch.Nodes[i].Samples))
		}
		out = append(out, &testJob{
			meta: &JobMeta{
				JobID:    j.ID,
				User:     j.User,
				AppLabel: j.App.Name,
				Category: string(j.App.Category),
				Pop:      j.Population.String(),
				Nodes:    len(j.Hosts),
				Cores:    len(j.Hosts) * cfg.CoresPerNode,
				Submit:   j.Submit,
				Start:    j.Start,
			},
			arch:    arch,
			records: recs,
		})
	}
	return out
}

// totalRecords sums the workload's exact record count.
func totalRecords(jobs []*testJob) uint64 {
	var n uint64
	for _, tj := range jobs {
		n += tj.records
	}
	return n
}

// refSummary computes the job's summary the way the batch pipeline
// would see it after a spool round trip: canonical text encoding,
// host-sorted node order. The streamed summary must be bit-identical.
func refSummary(t *testing.T, arch *taccstats.Archive, cfg taccstats.Config) *summarize.Summary {
	t.Helper()
	nodes := append([]taccstats.NodeArchive{}, arch.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Host < nodes[j].Host })
	canon := &taccstats.Archive{JobID: arch.JobID, Nodes: nodes}
	var buf bytes.Buffer
	if err := canon.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := taccstats.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := summarize.Summarize(dec, cfg, summarize.Options{SkipBadNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// harness runs an in-process server on a loopback listener.
type harness struct {
	t    *testing.T
	srv  *Server
	sink *warehouse.Sharded
	reg  *obs.Registry
	addr string
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{t: t}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	h.reg = cfg.Obs
	if cfg.Sink == nil {
		h.sink = warehouse.NewSharded(warehouse.ShardedConfig{Shards: 4})
		cfg.Sink = h.sink
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.srv = srv
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h.addr = lis.Addr().String()
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return h
}

// dialClient builds a client against the harness.
func (h *harness) dialClient(id string) *Client {
	h.t.Helper()
	c, err := NewClient(ClientConfig{Addr: h.addr, ID: id})
	if err != nil {
		h.t.Fatal(err)
	}
	return c
}

// sendJob streams one job: meta first, then each node's samples in
// chunks of chunkSize, round-robin across nodes to interleave hosts the
// way independent collectors would.
func sendJob(ctx context.Context, t *testing.T, c *Client, tj *testJob, chunkSize int) {
	t.Helper()
	if err := c.SendMeta(ctx, tj.meta); err != nil {
		t.Fatalf("job %s meta: %v", tj.meta.JobID, err)
	}
	offsets := make([]int, len(tj.arch.Nodes))
	for {
		sent := false
		for ni := range tj.arch.Nodes {
			node := &tj.arch.Nodes[ni]
			off := offsets[ni]
			if off >= len(node.Samples) {
				continue
			}
			end := off + chunkSize
			if end > len(node.Samples) {
				end = len(node.Samples)
			}
			chunk := &taccstats.Chunk{JobID: tj.arch.JobID, Host: node.Host, Samples: node.Samples[off:end]}
			if err := c.SendChunk(ctx, chunk); err != nil {
				t.Fatalf("job %s host %s: %v", tj.arch.JobID, node.Host, err)
			}
			offsets[ni] = end
			sent = true
		}
		if !sent {
			return
		}
	}
}

// drainAndCheck drains the server and asserts the conservation
// invariant exactly.
func (h *harness) drainAndCheck() Status {
	h.t.Helper()
	h.srv.Drain()
	st := h.srv.Status()
	if st.Pending != 0 {
		h.t.Fatalf("pending %d records after drain", st.Pending)
	}
	if st.OpenJobs != 0 {
		h.t.Fatalf("%v jobs still open after drain", st.OpenJobs)
	}
	if err := st.Ledger.Check(0); err != nil {
		h.t.Fatal(err)
	}
	return st
}

func TestEndToEndConservationExact(t *testing.T) {
	h := newHarness(t, Config{Shards: 4})
	jobs := genTestJobs(t, 21, 8, 4, 4000)
	want := totalRecords(jobs)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := h.dialClient("e2e-client")
	for _, tj := range jobs {
		sendJob(ctx, t, c, tj, 3)
	}
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().RecordsAcked; got != want {
		t.Fatalf("client acked %d records, generated %d", got, want)
	}

	st := h.drainAndCheck()
	if st.Ledger.Received != want {
		t.Fatalf("server received %d records, client delivered %d", st.Ledger.Received, want)
	}
	if st.Ledger.Summarized != want || st.Ledger.DroppedSum != 0 {
		t.Fatalf("fault-free run must summarize everything: %+v", st.Ledger)
	}
	// /metrics carries the same numbers the ledger does.
	if got := h.reg.Counter("ingest_records_total", "outcome", "received").Value(); got != want {
		t.Fatalf("metric received %d != %d", got, want)
	}
	if got := h.reg.Counter("ingest_records_total", "outcome", "summarized").Value(); got != want {
		t.Fatalf("metric summarized %d != %d", got, want)
	}

	// Every streamed summary is bit-identical to the batch pipeline's
	// spool-round-trip summary, and meta flowed into the record.
	cfg := taccstats.DefaultConfig()
	for _, tj := range jobs {
		rec, ok := h.sink.Lookup(tj.meta.JobID)
		if !ok {
			t.Fatalf("job %s missing from warehouse", tj.meta.JobID)
		}
		if !reflect.DeepEqual(rec.Summary, refSummary(t, tj.arch, cfg)) {
			t.Fatalf("job %s: streamed summary diverged from batch summary", tj.meta.JobID)
		}
		if rec.User != tj.meta.User || rec.AppLabel != tj.meta.AppLabel || rec.Category != tj.meta.Category {
			t.Fatalf("job %s: meta not joined: %+v", tj.meta.JobID, rec)
		}
		if rec.Submit != tj.meta.Submit || rec.Start != tj.meta.Start || rec.Cores != tj.meta.Cores {
			t.Fatalf("job %s: accounting fields not joined: %+v", tj.meta.JobID, rec)
		}
	}
}

// TestShardCountInvariance streams the same workload at 1 and 8 shards;
// summaries and ledger totals must match exactly.
func TestShardCountInvariance(t *testing.T) {
	jobs := genTestJobs(t, 33, 6, 3, 3000)
	run := func(shards int) (*warehouse.Sharded, Status) {
		h := newHarness(t, Config{Shards: shards})
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		c := h.dialClient(fmt.Sprintf("inv-%d", shards))
		for _, tj := range jobs {
			sendJob(ctx, t, c, tj, 4)
		}
		if err := c.Close(ctx); err != nil {
			t.Fatal(err)
		}
		return h.sink, h.drainAndCheck()
	}
	sink1, st1 := run(1)
	sink8, st8 := run(8)
	if st1.Ledger.Received != st8.Ledger.Received || st1.Ledger.Summarized != st8.Ledger.Summarized {
		t.Fatalf("ledger totals differ across shard counts: %+v vs %+v", st1.Ledger, st8.Ledger)
	}
	for _, tj := range jobs {
		r1, ok1 := sink1.Lookup(tj.meta.JobID)
		r8, ok8 := sink8.Lookup(tj.meta.JobID)
		if !ok1 || !ok8 {
			t.Fatalf("job %s missing (1-shard %v, 8-shard %v)", tj.meta.JobID, ok1, ok8)
		}
		if !reflect.DeepEqual(r1.Summary, r8.Summary) {
			t.Fatalf("job %s: summary depends on shard count", tj.meta.JobID)
		}
	}
}

// validChunkFrame encodes a well-formed data frame for hand-rolled wire
// tests.
func validChunkFrame(t *testing.T, seq uint64, jobID, host string, t0 int64) *Frame {
	t.Helper()
	chunk := &taccstats.Chunk{JobID: jobID, Host: host, Samples: []taccstats.Sample{
		{Time: t0, Marker: taccstats.MarkerBegin, Records: []taccstats.Record{{Device: "cpu", Values: []uint64{1, 2, 3}}}},
		{Time: t0 + 600, Marker: taccstats.MarkerEnd, Records: []taccstats.Record{{Device: "cpu", Values: []uint64{4, 5, 6}}}},
	}}
	payload, err := taccstats.EncodeChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	return &Frame{Type: FrameData, Records: 2, Seq: seq, Payload: payload}
}

// wireConn is a hand-rolled protocol session for dedup/resume tests.
type wireConn struct {
	t    *testing.T
	conn net.Conn
}

func dialWire(t *testing.T, addr, clientID string) *wireConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	w := &wireConn{t: t, conn: conn}
	if err := WriteFrame(conn, &Frame{Type: FrameHello, Payload: []byte(clientID)}); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *wireConn) send(f *Frame) {
	w.t.Helper()
	if err := WriteFrame(w.conn, f); err != nil {
		w.t.Fatal(err)
	}
}

func (w *wireConn) ack() uint64 {
	w.t.Helper()
	w.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := ReadFrame(w.conn, 0)
	if err != nil {
		w.t.Fatal(err)
	}
	if f.Type != FrameAck {
		w.t.Fatalf("want ack, got frame type %d", f.Type)
	}
	return f.Seq
}

// TestDedupAndResume proves the exactly-once accounting across retries:
// a replayed sequence number is acked but never re-enters the ledger,
// and a reconnect resumes from the server's cumulative ack.
func TestDedupAndResume(t *testing.T) {
	h := newHarness(t, Config{Shards: 2})

	w := dialWire(t, h.addr, "resume-client")
	if got := w.ack(); got != 0 {
		t.Fatalf("fresh client must resume at 0, got %d", got)
	}
	f1 := validChunkFrame(t, 1, "900", "c1", 1000)
	w.send(f1)
	if got := w.ack(); got != 1 {
		t.Fatalf("want ack 1, got %d", got)
	}
	w.send(f1) // retry of an acked frame
	if got := w.ack(); got != 1 {
		t.Fatalf("duplicate must re-ack 1, got %d", got)
	}
	w.conn.Close()

	// Reconnect: the hello ack tells the client where to resume.
	w2 := dialWire(t, h.addr, "resume-client")
	if got := w2.ack(); got != 1 {
		t.Fatalf("resume ack must be 1, got %d", got)
	}
	w2.send(f1) // replay across connections: still a duplicate
	if got := w2.ack(); got != 1 {
		t.Fatalf("cross-connection duplicate must re-ack 1, got %d", got)
	}
	w2.send(validChunkFrame(t, 2, "900", "c2", 1000))
	if got := w2.ack(); got != 2 {
		t.Fatalf("want ack 2, got %d", got)
	}

	st := h.drainAndCheck()
	if st.Ledger.Received != 4 {
		t.Fatalf("two unique frames of 2 records each must count 4, got %d", st.Ledger.Received)
	}
	if got := h.reg.Counter("ingest_frames_total", "outcome", "duplicate").Value(); got != 2 {
		t.Fatalf("want 2 duplicate frames, got %d", got)
	}
}

// TestCorruptFrameAccounting: a data frame whose payload fails chunk
// decoding is conserved via its claimed header count.
func TestCorruptFrameAccounting(t *testing.T) {
	h := newHarness(t, Config{Shards: 2})
	w := dialWire(t, h.addr, "corrupt-client")
	w.ack()
	w.send(&Frame{Type: FrameData, Records: 5, Seq: 1, Payload: []byte("not an archive")})
	if got := w.ack(); got != 1 {
		t.Fatalf("corrupt frame still advances the cursor, got ack %d", got)
	}
	st := h.drainAndCheck()
	if st.Ledger.Received != 5 || st.Ledger.Dropped[ReasonDecode] != 5 {
		t.Fatalf("claimed count must be conserved as dropped{decode}: %+v", st.Ledger)
	}
}

// TestIdleTimeoutFinalize: a job whose stream dies without an epilog is
// finalized by the sweep and every record settles.
func TestIdleTimeoutFinalize(t *testing.T) {
	h := newHarness(t, Config{Shards: 2, IdleTimeout: 100 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := h.dialClient("idle-client")
	// Two cron samples, no end marker, no meta: only the sweep can
	// finalize this job.
	chunk := &taccstats.Chunk{JobID: "4242", Host: "c9", Samples: []taccstats.Sample{
		{Time: 1000, Marker: taccstats.MarkerBegin, Records: []taccstats.Record{{Device: "cpu", Values: []uint64{1, 2, 3}}}},
		{Time: 1600, Marker: taccstats.MarkerCron, Records: []taccstats.Record{{Device: "cpu", Values: []uint64{4, 5, 6}}}},
	}}
	if err := c.SendChunk(ctx, chunk); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.srv.Status().OpenJobs != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle sweep never finalized the job")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := h.reg.Counter("ingest_jobs_finalized_total", "outcome", "summarized", "trigger", "idle").Value() +
		h.reg.Counter("ingest_jobs_finalized_total", "outcome", "dropped", "trigger", "idle").Value(); got != 1 {
		t.Fatalf("want exactly one idle finalization, got %d", got)
	}
	st := h.drainAndCheck()
	if st.Ledger.Received != 2 {
		t.Fatalf("want 2 records received, got %d", st.Ledger.Received)
	}
}

// TestMetaAfterData: the epilog condition also fires when meta arrives
// last, and a job with no meta finalizes at drain with defaults.
func TestMetaAfterData(t *testing.T) {
	h := newHarness(t, Config{Shards: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := h.dialClient("late-meta")

	jobs := genTestJobs(t, 5, 2, 2, 2000)
	withMeta, noMeta := jobs[0], jobs[1]
	sendData := func(tj *testJob) {
		for ni := range tj.arch.Nodes {
			node := &tj.arch.Nodes[ni]
			chunk := &taccstats.Chunk{JobID: tj.arch.JobID, Host: node.Host, Samples: node.Samples}
			if err := c.SendChunk(ctx, chunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Epilogs first, meta last: the meta frame itself must trigger
	// finalization.
	sendData(withMeta)
	if err := c.SendMeta(ctx, withMeta.meta); err != nil {
		t.Fatal(err)
	}
	// And a job that never gets a meta frame at all.
	sendData(noMeta)
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// The meta-completed job finalizes on the epilog path before any
	// drain flush.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := h.sink.Lookup(withMeta.meta.JobID); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("late meta never finalized the job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := h.reg.Counter("ingest_jobs_finalized_total", "outcome", "summarized", "trigger", "epilog").Value(); got != 1 {
		t.Fatalf("want 1 epilog finalization before drain, got %d", got)
	}
	st := h.drainAndCheck()
	if st.Ledger.Summarized+st.Ledger.DroppedSum != st.Ledger.Received {
		t.Fatalf("unbalanced: %+v", st.Ledger)
	}
	rec, ok := h.sink.Lookup(noMeta.arch.JobID)
	if !ok {
		t.Fatalf("metaless job %s missing from warehouse", noMeta.arch.JobID)
	}
	if rec.User != "unknown" || rec.AppLabel != "NA" || rec.Category != "Unknown" {
		t.Fatalf("metaless job must carry defaults, got %+v", rec)
	}
}
