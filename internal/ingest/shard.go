package ingest

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs/flight"
	"repro/internal/summarize"
	"repro/internal/taccstats"
	"repro/internal/warehouse"
)

// Fault sites the ingest path exposes to the resilience.Faults registry
// (-faults spec grammar, e.g. "ingest.shard=panic:0.01"). Each site is
// injected before the state mutation it guards, so a fired fault drops
// the unit cleanly into the ledger instead of corrupting shard state.
const (
	// SiteConn fires per received frame in the connection handler:
	// error closes the connection (the client resumes from its last
	// ack), latency stalls the read loop, panic is isolated to the
	// connection.
	SiteConn = "ingest.conn"
	// SiteShard fires per message in the shard loop: error and panic
	// drop the message's records under reason "shard".
	SiteShard = "ingest.shard"
	// SiteFinalize fires when a job finalizes: error and panic drop the
	// whole job's records under reason "finalize", latency delays the
	// summary.
	SiteFinalize = "ingest.finalize"
)

// Sink receives finalized job records. *warehouse.Sharded and
// *warehouse.Store both satisfy it.
type Sink interface {
	Ingest(*warehouse.Record) error
}

// message is one unit of shard work, routed by job id.
type message struct {
	// Exactly one of chunk / meta / drain is set.
	chunk *taccstats.Chunk
	meta  *JobMeta
	drain chan struct{}
}

// records returns how many ledger records the message carries.
func (m *message) records() uint64 {
	if m.chunk == nil {
		return 0
	}
	return uint64(len(m.chunk.Samples))
}

// jobID returns the job the message belongs to ("" for drain).
func (m *message) jobID() string {
	switch {
	case m.chunk != nil:
		return m.chunk.JobID
	case m.meta != nil:
		return m.meta.JobID
	}
	return ""
}

// hostState accumulates one node's samples for an open job.
type hostState struct {
	samples []taccstats.Sample
	ended   bool
}

// jobState is one open job on a shard.
type jobState struct {
	meta    *JobMeta
	hosts   map[string]*hostState
	ended   int    // hosts whose epilog (end marker) arrived
	records uint64 // samples held, pending finalization
	last    time.Time
}

// shard owns a partition of the job-id space: one goroutine, one
// bounded queue, one map of open jobs. Single ownership means a job's
// records are applied and finalized by exactly one goroutine — the
// exactly-once half of the conservation proof.
type shard struct {
	id   int
	srv  *Server
	q    chan message
	jobs map[string]*jobState
	done chan struct{}
}

func newShard(id int, srv *Server, depth int) *shard {
	return &shard{
		id:   id,
		srv:  srv,
		q:    make(chan message, depth),
		jobs: map[string]*jobState{},
		done: make(chan struct{}),
	}
}

// run is the shard loop. The idle ticker finalizes jobs whose stream
// went quiet without an epilog (node crash, lost frames) so records can
// never be held hostage forever.
func (sh *shard) run() {
	defer close(sh.done)
	var tick *time.Ticker
	var tickC <-chan time.Time
	if sh.srv.cfg.IdleTimeout > 0 {
		tick = time.NewTicker(sh.srv.cfg.IdleTimeout / 2)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case msg := <-sh.q:
			sh.srv.depthGauge(sh.id).Set(float64(len(sh.q)))
			if msg.drain != nil {
				sh.drainQueue()
				sh.finalizeAll("drain")
				close(msg.drain)
				return
			}
			sh.handle(msg)
		case <-tickC:
			sh.sweepIdle()
		}
	}
}

// drainQueue applies every message already queued behind the drain
// barrier's enqueue point. The router stops accepting before drain is
// sent, so this empties the queue for good.
func (sh *shard) drainQueue() {
	for {
		select {
		case msg := <-sh.q:
			if msg.drain == nil {
				sh.handle(msg)
			}
		default:
			return
		}
	}
}

// handle applies one message under panic isolation: a shard fault
// (injected or real) drops the message's records into the ledger
// instead of killing the daemon or corrupting open-job state.
func (sh *shard) handle(msg message) {
	n := msg.records()
	defer func() {
		if p := recover(); p != nil {
			sh.srv.cfg.Log.Error("ingest.shard.panic", "shard", sh.id, "job", msg.jobID(), "panic", fmt.Sprint(p))
			sh.dropMessage(n)
		}
	}()
	// The fault site guards the mutation: when it fires, shard state is
	// untouched and the records are accounted dropped, exactly once.
	if err := sh.srv.cfg.Faults.Inject(SiteShard); err != nil {
		sh.dropMessage(n)
		return
	}
	switch {
	case msg.meta != nil:
		js := sh.job(msg.meta.JobID)
		js.meta = msg.meta
		js.last = sh.srv.now()
		sh.maybeFinalize(msg.meta.JobID, js, "epilog")
	case msg.chunk != nil:
		js := sh.job(msg.chunk.JobID)
		hs := js.hosts[msg.chunk.Host]
		if hs == nil {
			hs = &hostState{}
			js.hosts[msg.chunk.Host] = hs
		}
		hs.samples = append(hs.samples, msg.chunk.Samples...)
		js.records += n
		js.last = sh.srv.now()
		for i := range msg.chunk.Samples {
			if msg.chunk.Samples[i].Marker == taccstats.MarkerEnd && !hs.ended {
				hs.ended = true
				js.ended++
			}
		}
		sh.maybeFinalize(msg.chunk.JobID, js, "epilog")
	}
}

// dropMessage accounts a faulted message's records and settles pending.
func (sh *shard) dropMessage(n uint64) {
	if n > 0 {
		sh.srv.ledger.Dropped(sh.id, ReasonShard, n)
		sh.srv.pending.Add(-int64(n))
	}
}

// job returns (creating) the open-job state.
func (sh *shard) job(id string) *jobState {
	js, ok := sh.jobs[id]
	if !ok {
		js = &jobState{hosts: map[string]*hostState{}}
		sh.jobs[id] = js
		sh.srv.openJobs.Inc()
	}
	return js
}

// maybeFinalize fires the epilog condition: metadata present and every
// expected node's end marker delivered.
func (sh *shard) maybeFinalize(id string, js *jobState, trigger string) {
	if js.meta == nil || js.ended < js.meta.Nodes {
		return
	}
	sh.finalize(id, js, trigger)
}

// sweepIdle finalizes jobs idle past the timeout with whatever arrived.
func (sh *shard) sweepIdle() {
	cutoff := sh.srv.now().Add(-sh.srv.cfg.IdleTimeout)
	var stale []string
	for id, js := range sh.jobs {
		if js.last.Before(cutoff) {
			stale = append(stale, id)
		}
	}
	sort.Strings(stale)
	for _, id := range stale {
		sh.finalize(id, sh.jobs[id], "idle")
	}
}

// finalizeAll flushes every open job (drain/shutdown path).
func (sh *shard) finalizeAll(trigger string) {
	ids := make([]string, 0, len(sh.jobs))
	for id := range sh.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sh.finalize(id, sh.jobs[id], trigger)
	}
}

// finalize summarizes one job and settles every one of its records in
// the ledger: summarized for nodes the summary covers, dropped
// otherwise. It is the only place records leave an open job, and it
// always removes the job, so each record is settled exactly once.
func (sh *shard) finalize(id string, js *jobState, trigger string) {
	srv := sh.srv
	start := time.Now()
	var ev *flight.Active
	if srv.cfg.Flight != nil {
		ev = flight.NewActive(id, "INGEST", "/ingest/finalize", start)
	}

	settled := false
	settle := func(status int, errMsg string) {
		// Always runs exactly once, even on a finalize panic: the job
		// leaves the map and its books are closed before we return.
		if settled {
			return
		}
		settled = true
		delete(sh.jobs, id)
		srv.openJobs.Dec()
		srv.pending.Add(-int64(js.records))
		srv.reg.Histogram("ingest_finalize_seconds", nil).ObserveDuration(start)
		outcome := "summarized"
		if status != 200 {
			outcome = "dropped"
		}
		srv.reg.Counter("ingest_jobs_finalized_total", "outcome", outcome, "trigger", trigger).Inc()
		if ev != nil {
			ev.Rows = int64(js.records)
			if errMsg != "" {
				ev.SetErr(errMsg)
			}
			ev.Finalize(status, time.Since(start))
			srv.cfg.Flight.Record(ev)
		}
	}
	defer func() {
		if p := recover(); p != nil {
			srv.cfg.Log.Error("ingest.finalize.panic", "shard", sh.id, "job", id, "panic", fmt.Sprint(p))
			srv.ledger.Dropped(sh.id, ReasonFinalize, js.records)
			settle(500, fmt.Sprint(p))
		}
	}()

	if err := srv.cfg.Faults.Inject(SiteFinalize); err != nil {
		srv.ledger.Dropped(sh.id, ReasonFinalize, js.records)
		settle(500, err.Error())
		return
	}

	// Assemble the archive host-sorted, matching the batch pipeline's
	// spool ordering so a streamed job summarizes bit-identically to the
	// same job summarized from disk.
	hostNames := make([]string, 0, len(js.hosts))
	for h := range js.hosts {
		hostNames = append(hostNames, h)
	}
	sort.Strings(hostNames)
	arch := &taccstats.Archive{JobID: id, Nodes: make([]taccstats.NodeArchive, 0, len(hostNames))}
	perHost := make(map[string]uint64, len(hostNames))
	for _, h := range hostNames {
		hs := js.hosts[h]
		perHost[h] = uint64(len(hs.samples))
		arch.Nodes = append(arch.Nodes, taccstats.NodeArchive{Host: h, JobID: id, Samples: hs.samples})
	}

	sum, err := summarize.Summarize(arch, srv.cfg.Collector, summarize.Options{SkipBadNodes: true})
	if err != nil {
		srv.ledger.Dropped(sh.id, ReasonFinalize, js.records)
		settle(500, err.Error())
		return
	}
	var droppedRecs uint64
	for _, h := range sum.DroppedNodes {
		droppedRecs += perHost[h]
	}
	okRecs := js.records - droppedRecs

	rec := buildRecord(id, js.meta, sum, srv.cfg.Collector.CoresPerNode)
	if err := srv.cfg.Sink.Ingest(rec); err != nil {
		srv.ledger.Dropped(sh.id, ReasonSink, okRecs)
		if droppedRecs > 0 {
			srv.ledger.Dropped(sh.id, ReasonIncomplete, droppedRecs)
		}
		settle(500, err.Error())
		return
	}
	srv.ledger.Summarized(sh.id, okRecs)
	if droppedRecs > 0 {
		srv.ledger.Dropped(sh.id, ReasonIncomplete, droppedRecs)
	}
	settle(200, "")
}

// buildRecord joins the summary with the job's accounting metadata
// (defaults mirror the batch pipeline's unlabeled-job conventions when
// no meta frame arrived before finalization).
func buildRecord(id string, meta *JobMeta, sum *summarize.Summary, coresPerNode int) *warehouse.Record {
	rec := &warehouse.Record{
		JobID:       id,
		User:        "unknown",
		AppLabel:    "NA",
		Category:    "Unknown",
		Pop:         cluster.PopNA,
		Nodes:       sum.Nodes,
		Cores:       sum.Nodes * coresPerNode,
		WallSeconds: sum.WallSeconds,
		Summary:     sum,
	}
	if meta != nil {
		rec.User = meta.User
		if meta.AppLabel != "" {
			rec.AppLabel = meta.AppLabel
		}
		if meta.Category != "" {
			rec.Category = meta.Category
		}
		rec.Pop = popFromString(meta.Pop)
		if meta.Cores > 0 {
			rec.Cores = meta.Cores
		}
		rec.Submit, rec.Start = meta.Submit, meta.Start
	}
	return rec
}

// popFromString maps the wire population label onto the warehouse enum.
func popFromString(s string) cluster.Population {
	switch s {
	case cluster.PopCommunity.String():
		return cluster.PopCommunity
	case cluster.PopUncategorized.String():
		return cluster.PopUncategorized
	}
	return cluster.PopNA
}
