package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// postClassify sends a body to /api/classify and returns status plus the
// decoded error message (empty when the response carries none).
func postClassify(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/api/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&payload)
	msg, _ := payload["error"].(string)
	return resp.StatusCode, msg
}

func TestClassifyMalformedJSON(t *testing.T) {
	srv, reg := obsServer(t)
	for _, body := range []string{
		"",                        // empty body
		"garbage",                 // not JSON
		`{"features":`,            // truncated JSON
		`{"features":"a-string"}`, // wrong type for the features field
		`[1,2,3]`,                 // wrong top-level type
	} {
		status, msg := postClassify(t, srv.URL, body)
		if status != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, status)
		}
		if !strings.Contains(msg, "bad request body") {
			t.Errorf("body %q: error message %q", body, msg)
		}
	}
	if got := reg.Counter("classify_outcomes_total", "outcome", "bad_request").Value(); got != 5 {
		t.Errorf("bad_request counter = %d, want 5", got)
	}
}

func TestClassifyUnknownFeatures(t *testing.T) {
	srv, reg := obsServer(t)
	status, msg := postClassify(t, srv.URL, `{"features":{"NOT_A_FEATURE":1,"ALSO_BOGUS":2},"threshold":0.5}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	if !strings.Contains(msg, "unknown features") ||
		!strings.Contains(msg, "NOT_A_FEATURE") || !strings.Contains(msg, "ALSO_BOGUS") {
		t.Fatalf("error message %q does not name the unknown features", msg)
	}
	if got := reg.Counter("classify_outcomes_total", "outcome", "bad_request").Value(); got != 1 {
		t.Errorf("bad_request counter = %d, want 1", got)
	}
	// A mix of known and unknown features is still rejected — silently
	// dropping unknown attributes would misclassify.
	status, _ = postClassify(t, srv.URL, `{"features":{"CPU_USER":0.5,"NOT_A_FEATURE":1},"threshold":0.5}`)
	if status != http.StatusBadRequest {
		t.Fatalf("mixed known/unknown: status %d, want 400", status)
	}
}

func TestClassifyThresholdOutOfRange(t *testing.T) {
	srv, reg := obsServer(t)
	for _, body := range []string{
		`{"features":{},"threshold":-0.1}`,
		`{"features":{},"threshold":1.5}`,
	} {
		status, msg := postClassify(t, srv.URL, body)
		if status != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, status)
		}
		if !strings.Contains(msg, "threshold") {
			t.Errorf("body %q: error message %q", body, msg)
		}
	}
	if got := reg.Counter("classify_outcomes_total", "outcome", "bad_request").Value(); got != 2 {
		t.Errorf("bad_request counter = %d, want 2", got)
	}
}

func TestClassifyOversizedBody(t *testing.T) {
	srv, reg := obsServer(t)
	// A syntactically valid request whose padding pushes it past the cap:
	// the body limit must trigger, not the JSON parser.
	big := `{"features":{"` + strings.Repeat("x", maxClassifyBody) + `":1},"threshold":0.5}`
	status, msg := postClassify(t, srv.URL, big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", status)
	}
	if !strings.Contains(msg, "exceeds") {
		t.Fatalf("error message %q", msg)
	}
	if got := reg.Counter("classify_outcomes_total", "outcome", "oversized").Value(); got != 1 {
		t.Errorf("oversized counter = %d, want 1", got)
	}
	if got := reg.Counter("classify_outcomes_total", "outcome", "bad_request").Value(); got != 0 {
		t.Errorf("bad_request counter = %d, want 0 (oversized must not double-count)", got)
	}

	// A body just under the cap is parsed normally (and rejected for its
	// unknown feature, not its size).
	under := `{"features":{"` + strings.Repeat("y", 1024) + `":1},"threshold":0.5}`
	status, msg = postClassify(t, srv.URL, under)
	if status != http.StatusBadRequest || !strings.Contains(msg, "unknown features") {
		t.Fatalf("under-cap body: status %d msg %q, want 400 unknown-features", status, msg)
	}
}

func TestClassifySuccessAfterErrors(t *testing.T) {
	// Error handling must not wedge the endpoint: a valid request after a
	// burst of bad ones still classifies.
	srv, reg := obsServer(t)
	postClassify(t, srv.URL, "garbage")
	postClassify(t, srv.URL, `{"features":{"BOGUS":1}}`)
	status, _ := postClassify(t, srv.URL, `{"features":{"CPU_USER":0.5},"threshold":0}`)
	if status != http.StatusOK {
		t.Fatalf("valid request after errors: status %d, want 200", status)
	}
	if got := reg.Counter("classify_outcomes_total", "outcome", "classified").Value(); got != 1 {
		t.Errorf("classified counter = %d, want 1", got)
	}
}
