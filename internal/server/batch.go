package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/core"
	"repro/internal/obs/flight"
	"repro/internal/parallel"
	"repro/internal/resilience"
)

// rowError maps a failed row classification (single or batch) to its
// response: deadline overruns are 504s counted in http_timeouts_total,
// isolated row panics and injected faults are 500s. Nothing has been
// written yet in either caller, so the status always commits cleanly.
// The request's wide event picks up the terminal error (and, for an
// isolated row panic, the panic flag) so /debug/requests can attribute
// the 5xx to its cause.
func (s *Server) rowError(w http.ResponseWriter, r *http.Request, err error) {
	fe := flight.From(r.Context())
	var pe *parallel.PanicError
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.timedOut(w, r, "handler")
	case errors.As(err, &pe):
		fe.MarkPanic()
		fe.SetErr(fmt.Sprintf("row %d inference panicked: %v", pe.Index, pe.Value))
		s.metrics.Counter("classify_row_panics_total").Inc()
		s.log.Error("classify row panic isolated", "task", pe.Index, "panic", pe.Value)
		s.writeError(w, http.StatusInternalServerError,
			"internal error: row %d inference panicked (isolated)", pe.Index)
	default:
		fe.SetErr(err.Error())
		s.writeError(w, http.StatusInternalServerError, "internal error: %v", err)
	}
}

// maxBatchRows caps how many feature rows one batch request may carry.
// Larger workloads should be chunked client-side; the cap keeps a single
// request from monopolizing the worker pool or the response buffer.
const maxBatchRows = 4096

// maxBatchBody caps the batch request body (a full 4096x~40-feature
// request is a few MB of JSON).
const maxBatchBody = 16 << 20

// rowLatencyBuckets spans per-row inference latency, which sits in the
// microsecond-to-millisecond range -- far below the default HTTP
// request buckets.
func rowLatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 0.1,
	}
}

// batchSizeBuckets spans request batch sizes from single rows to the
// maxBatchRows cap.
func batchSizeBuckets() []float64 {
	return []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, float64(maxBatchRows)}
}

// batchRequest is the batch classification body. Exactly one of Rows
// (array-of-maps, one feature map per job) or Columns (column-major, one
// equal-length value array per feature) must be set.
type batchRequest struct {
	Rows      []map[string]float64 `json:"rows"`
	Columns   map[string][]float64 `json:"columns"`
	Threshold float64              `json:"threshold"`
}

// batchSummary aggregates a batch response: row counts by outcome and,
// for classified rows, by predicted label.
type batchSummary struct {
	Rows           int            `json:"rows"`
	Classified     int            `json:"classified"`
	BelowThreshold int            `json:"belowThreshold"`
	ByLabel        map[string]int `json:"byLabel"`
}

// batchResponse is the batch classification reply. Results are in
// request row order and each element is byte-identical to the single
// /api/classify response for that row.
type batchResponse struct {
	Results    []classifyResult `json:"results"`
	Summary    batchSummary     `json:"summary"`
	Generation uint64           `json:"generation"`
}

// batchBadRequest counts and writes a batch-level validation failure.
func (s *Server) batchBadRequest(w http.ResponseWriter, format string, args ...any) {
	s.classifyOutcome("bad_request")
	s.writeError(w, http.StatusBadRequest, format, args...)
}

// resolveColumns validates a column-major batch and materializes it into
// per-row feature vectors. All columns must be known features and share
// one length; features without a column default to zero for every row.
func resolveColumns(v *core.ModelView, cols map[string][]float64) (rows [][]float64, defaulted []string, err error) {
	n := -1
	var unknown []string
	for name, col := range cols {
		if _, ok := v.FeatureIndex(name); !ok {
			unknown = append(unknown, name)
			continue
		}
		if n == -1 {
			n = len(col)
		} else if len(col) != n {
			return nil, nil, fmt.Errorf("column %q has %d values, others have %d", name, len(col), n)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, nil, fmt.Errorf("unknown features: %v", unknown)
	}
	if n <= 0 {
		return nil, nil, errors.New("columns form carries no rows")
	}
	rows = make([][]float64, n)
	flat := make([]float64, n*v.NumFeatures())
	for i := range rows {
		rows[i] = flat[i*v.NumFeatures() : (i+1)*v.NumFeatures()]
	}
	for name, col := range cols {
		idx, _ := v.FeatureIndex(name)
		for i, val := range col {
			rows[i][idx] = val
		}
	}
	defaulted = []string{}
	for _, name := range v.Model.Features {
		if _, ok := cols[name]; !ok {
			defaulted = append(defaulted, name)
		}
	}
	return rows, defaulted, nil
}

// handleClassifyBatch classifies up to maxBatchRows feature rows in one
// request, fanning inference across the worker pool. The model view is
// captured once, so every row in a batch is classified by the same model
// generation even if a hot-swap lands mid-request.
func (s *Server) handleClassifyBatch(w http.ResponseWriter, r *http.Request) {
	v := s.models.View()
	if v == nil {
		s.classifyOutcome("no_model")
		s.writeError(w, http.StatusServiceUnavailable, "no classifier loaded")
		return
	}
	v.Annotate(flight.From(r.Context()))
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.classifyOutcome("oversized")
			s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.batchBadRequest(w, "bad request body: %v", err)
		return
	}
	if req.Threshold < 0 || req.Threshold > 1 {
		s.batchBadRequest(w, "threshold must be in [0,1]")
		return
	}
	if len(req.Rows) > 0 && len(req.Columns) > 0 {
		s.batchBadRequest(w, "request sets both rows and columns; pick one form")
		return
	}

	// Materialize both forms into per-row vectors plus per-row defaulted
	// lists before inference, so validation errors reject the whole batch
	// up front.
	var rows [][]float64
	var defaulted [][]string
	switch {
	case len(req.Rows) > 0:
		if len(req.Rows) > maxBatchRows {
			s.batchBadRequest(w, "batch carries %d rows, limit is %d", len(req.Rows), maxBatchRows)
			return
		}
		rows = make([][]float64, len(req.Rows))
		defaulted = make([][]string, len(req.Rows))
		for i, features := range req.Rows {
			if len(features) == 0 {
				s.batchBadRequest(w, "row %d: empty or missing features map", i)
				return
			}
			row, def, unknown := resolveRow(v, features)
			if len(unknown) > 0 {
				sort.Strings(unknown)
				s.batchBadRequest(w, "row %d: unknown features: %v", i, unknown)
				return
			}
			rows[i], defaulted[i] = row, def
		}
	case len(req.Columns) > 0:
		cols, def, err := resolveColumns(v, req.Columns)
		if err != nil {
			s.batchBadRequest(w, "%v", err)
			return
		}
		if len(cols) > maxBatchRows {
			s.batchBadRequest(w, "batch carries %d rows, limit is %d", len(cols), maxBatchRows)
			return
		}
		rows = cols
		defaulted = make([][]string, len(cols))
		for i := range defaulted {
			defaulted[i] = def
		}
	default:
		s.batchBadRequest(w, "empty batch: set rows or columns")
		return
	}

	s.metrics.Histogram("classify_batch_rows", batchSizeBuckets()).Observe(float64(len(rows)))

	// All-or-nothing fan-out: rows share the request context, so an
	// expired deadline (or an isolated row panic) fails the whole batch
	// with one error response -- a batch never returns partial results.
	// The timed variant sums per-row inference time into the request's
	// wide event across however many goroutines the pool spreads over.
	results := make([]classifyResult, len(rows))
	err := parallel.ForEachCtxTimed(r.Context(), s.batchWorkers, len(rows), flight.From(r.Context()).Timer(), func(ctx context.Context, i int) error {
		res, err := s.classifyRow(ctx, v, rows[i], defaulted[i], req.Threshold)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		s.rowError(w, r, err)
		return
	}

	sum := batchSummary{Rows: len(results), ByLabel: map[string]int{}}
	for _, res := range results {
		if res.Classified {
			sum.Classified++
			sum.ByLabel[res.Label]++
		} else {
			sum.BelowThreshold++
		}
	}
	s.writeJSON(w, http.StatusOK, batchResponse{
		Results:    results,
		Summary:    sum,
		Generation: v.Generation,
	})
}

// reloadRequest is the admin reload body; path may be empty when the
// manager has a configured default (e.g. the -model flag).
type reloadRequest struct {
	Path string `json:"path"`
}

// handleModelReload atomically swaps the serving model for one loaded
// from disk, through the reload circuit breaker. Schema mismatches are
// rejected with 409 and the old model keeps serving; while the breaker
// is open (too many consecutive reload failures) attempts answer 503
// with a Retry-After hint and never touch the manager; in-flight
// requests are never disturbed either way.
func (s *Server) handleModelReload(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxClassifyBody)
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	gen, err := s.ReloadModel(req.Path)
	if err != nil {
		s.log.Warn("model reload failed", "path", req.Path, "err", err)
		switch {
		case errors.Is(err, resilience.ErrBreakerOpen):
			w.Header().Set("Retry-After", retryAfterSeconds(s.breaker.RetryAfter()))
			s.writeError(w, http.StatusServiceUnavailable,
				"model reload breaker open after repeated failures: %v", err)
		case errors.Is(err, core.ErrSchemaMismatch):
			s.writeError(w, http.StatusConflict, "model rejected: %v", err)
		default:
			s.writeError(w, http.StatusBadRequest, "model reload failed: %v", err)
		}
		return
	}
	v := s.models.View()
	s.log.Info("model swapped", "generation", gen, "algo", v.Model.Algo, "path", s.models.Path())
	s.writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen,
		"algorithm":  v.Model.Algo,
		"features":   len(v.Model.Features),
	})
}
