package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/resilience"
)

func flightGet(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body := readAll(t, resp)
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return resp
}

func TestHealthzAlwaysOK(t *testing.T) {
	a := chaosFixture(t)
	c := newChaosServer(t, a)
	var body map[string]string
	if resp := flightGet(t, c.srv.URL+"/healthz", &body); resp.StatusCode != 200 {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	if body["status"] != "ok" {
		t.Errorf("healthz body: %v", body)
	}

	// Liveness must hold even before any model is published: a process
	// that is up but not ready is alive, not dead.
	bare := httptest.NewServer(New(a.store, nil, 6400))
	defer bare.Close()
	if resp := flightGet(t, bare.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Errorf("healthz without a model: status %d, want 200", resp.StatusCode)
	}
}

func TestReadyzTracksModelAndBreaker(t *testing.T) {
	a := chaosFixture(t)

	// No model published: not ready, and the reason says so.
	bare := httptest.NewServer(New(a.store, nil, 6400))
	defer bare.Close()
	var body struct {
		Status     string   `json:"status"`
		Reasons    []string `json:"reasons"`
		Generation uint64   `json:"generation"`
	}
	if resp := flightGet(t, bare.URL+"/readyz", &body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz without a model: status %d, want 503", resp.StatusCode)
	}
	if len(body.Reasons) != 1 || body.Reasons[0] != "no model loaded" {
		t.Errorf("readyz reasons: %v", body.Reasons)
	}

	// Model loaded, breaker closed: ready, reporting the generation.
	c := newChaosServer(t, a, WithReloadBreaker(resilience.BreakerConfig{
		FailureThreshold: 1,
		OpenFor:          time.Minute,
	}))
	if resp := flightGet(t, c.srv.URL+"/readyz", &body); resp.StatusCode != 200 {
		t.Fatalf("readyz with model: status %d", resp.StatusCode)
	}
	if body.Status != "ok" || body.Generation != 1 {
		t.Errorf("readyz body: %+v", body)
	}

	// One failed reload trips the threshold-1 breaker; the instance keeps
	// serving its last good model but must advertise not-ready so a
	// balancer can drain it.
	resp := c.post(t, "/admin/model/reload", []byte(`{"path":"/nonexistent/model.bin"}`))
	readAll(t, resp)
	if resp.StatusCode != 400 {
		t.Fatalf("failing reload: status %d, want 400", resp.StatusCode)
	}
	if resp := flightGet(t, c.srv.URL+"/readyz", &body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open breaker: status %d, want 503", resp.StatusCode)
	}
	found := false
	for _, r := range body.Reasons {
		if r == "model reload breaker open" {
			found = true
		}
	}
	if !found {
		t.Errorf("readyz reasons %v missing the open breaker", body.Reasons)
	}
	// And classify still works: not-ready is a draining signal, not an
	// outage.
	cr := c.post(t, "/api/classify", a.singleBody(0))
	readAll(t, cr)
	if cr.StatusCode != 200 {
		t.Errorf("classify while not-ready: status %d, want 200", cr.StatusCode)
	}
}

// debugEvents queries /debug/requests and returns the decoded events.
func debugEvents(t *testing.T, base, query string) ([]flight.Event, int) {
	t.Helper()
	var out struct {
		Matched int            `json:"matched"`
		Events  []flight.Event `json:"events"`
	}
	if resp := flightGet(t, base+"/debug/requests?"+query, &out); resp.StatusCode != 200 {
		t.Fatalf("/debug/requests?%s: status %d", query, resp.StatusCode)
	}
	return out.Events, out.Matched
}

// waitForClassifyObserved polls the recorder until its classify-route
// observed count reaches want: the wide event is filed after the
// response is written, so a client can observe the response before the
// recorder observes the event.
func waitForClassifyObserved(t *testing.T, rec *flight.Recorder, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got uint64
		for route, byStatus := range rec.Stats().ByRoute {
			if strings.HasPrefix(route, "/api/classify") {
				for _, n := range byStatus {
					got += n
				}
			}
		}
		if got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("recorder observed %d classify events, want %d", got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRequestIDEchoedOnEveryDisposition is the X-Request-Id regression:
// the response header must echo the caller-supplied ID on success, shed
// (429) and timeout (504) alike, and the flight recorder must file the
// wide event under that same ID.
func TestRequestIDEchoedOnEveryDisposition(t *testing.T) {
	a := chaosFixture(t)
	faults := resilience.NewFaults(5)
	if err := faults.Set(FaultClassifyRow, resilience.FaultSpec{
		Kind: resilience.FaultLatency, Rate: 1, Latency: 300 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	rec := flight.NewRecorder(flight.DefaultConfig())
	c := newChaosServer(t, a,
		WithFaults(faults),
		WithFlightRecorder(rec),
		WithResilience(ResilienceConfig{
			RequestTimeout: 100 * time.Millisecond,
			MaxConcurrent:  1,
			MaxQueue:       0,
		}),
	)

	postWithID := func(id string) *http.Response {
		req, err := http.NewRequest("POST", c.srv.URL+"/api/classify", bytes.NewReader(a.singleBody(0)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST with id %s: %v", id, err)
		}
		readAll(t, resp)
		return resp
	}

	// Timeout: the 300ms row fault blows the 100ms deadline -> 504.
	resp := postWithID("flight-test-timeout")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("latency fault under 100ms deadline: status %d, want 504", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "flight-test-timeout" {
		t.Errorf("504 response X-Request-ID = %q, want the caller's", got)
	}

	// Shed: occupy the single slot with a slow request, then a second
	// arrival finds no slot and no queue -> 429.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postWithID("flight-test-occupier")
	}()
	time.Sleep(50 * time.Millisecond) // let the occupier take the slot
	resp = postWithID("flight-test-shed")
	wg.Wait()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second arrival at capacity 1/queue 0: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "flight-test-shed" {
		t.Errorf("429 response X-Request-ID = %q, want the caller's", got)
	}

	// Success: disarm the fault (rate 0 never fires) so the request
	// beats the deadline.
	if err := faults.Set(FaultClassifyRow, resilience.FaultSpec{
		Kind: resilience.FaultLatency, Rate: 0, Latency: time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	resp = postWithID("flight-test-ok")
	if resp.StatusCode != 200 {
		t.Fatalf("classify after clearing the fault: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "flight-test-ok" {
		t.Errorf("200 response X-Request-ID = %q, want the caller's", got)
	}

	// A request without an inbound ID gets a minted, non-empty one.
	plain := c.post(t, "/api/classify", a.singleBody(0))
	readAll(t, plain)
	if plain.Header.Get("X-Request-ID") == "" {
		t.Error("no minted X-Request-ID on a bare request")
	}

	// Every disposition's wide event is filed under the caller's ID with
	// the matching outcome and annotations.
	waitForClassifyObserved(t, rec, 5)
	wantOutcome := map[string]string{
		"flight-test-timeout": flight.OutcomeTimeout,
		"flight-test-shed":    flight.OutcomeShed,
		"flight-test-ok":      flight.OutcomeOK,
	}
	events, _ := debugEvents(t, c.srv.URL, "route=/api/classify&limit=-1")
	seen := map[string]flight.Event{}
	for _, ev := range events {
		seen[ev.ID] = ev
	}
	for id, outcome := range wantOutcome {
		ev, ok := seen[id]
		if !ok {
			t.Errorf("no wide event filed under %q", id)
			continue
		}
		if ev.Outcome != outcome {
			t.Errorf("event %q outcome %q, want %q", id, ev.Outcome, outcome)
		}
	}
	if ev, ok := seen["flight-test-timeout"]; ok {
		if ev.TimeoutStage != "handler" {
			t.Errorf("timeout event stage %q, want handler", ev.TimeoutStage)
		}
		if ev.FaultHits == 0 {
			t.Error("timeout event did not record the fault-site hit")
		}
		if ev.ModelGeneration != 1 {
			t.Errorf("timeout event model generation %d, want 1", ev.ModelGeneration)
		}
	}
	if ev, ok := seen["flight-test-ok"]; ok {
		if ev.Rows != 1 || ev.RowNS <= 0 {
			t.Errorf("ok event rows=%d rowNS=%d, want 1 row with timing", ev.Rows, ev.RowNS)
		}
	}
}

// TestFlightStormReconciliation is the in-process storm gate: a burst of
// concurrent classify traffic against a tiny admission envelope, then a
// three-way exact join of (client-observed statuses) x (recorder ByRoute
// ledger) x (http_requests_total counters) -- and every error-class
// response the clients saw must be individually retrievable from
// /debug/requests by its request ID.
func TestFlightStormReconciliation(t *testing.T) {
	a := chaosFixture(t)
	faults := resilience.NewFaults(17)
	if err := faults.Set(FaultClassifyRow, resilience.FaultSpec{
		Kind: resilience.FaultLatency, Rate: 1, Latency: 5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	// Ring big enough that nothing evicts: the retrievability check below
	// demands every error event, not a sample.
	rec := flight.NewRecorder(flight.Config{Capacity: 4096, SampleEvery: 1, TopK: 8})
	c := newChaosServer(t, a,
		WithBatchWorkers(2),
		WithFaults(faults),
		WithFlightRecorder(rec),
		WithResilience(ResilienceConfig{
			RequestTimeout: 60 * time.Millisecond,
			MaxConcurrent:  2,
			MaxQueue:       2,
		}),
	)

	const clients, perClient = 8, 12
	type outcome struct {
		id     string
		status int
	}
	results := make(chan outcome, clients*perClient)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id := fmt.Sprintf("storm-%d-%d", cl, i)
				path, body := "/api/classify", a.singleBody(i)
				if i%4 == 0 {
					path, body = "/api/classify/batch", a.batchBody(i, 4)
				}
				req, err := http.NewRequest("POST", c.srv.URL+path, bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Request-ID", id)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("storm request %s: %v", id, err)
					return
				}
				readAll(t, resp)
				results <- outcome{id, resp.StatusCode}
			}
		}()
	}
	wg.Wait()
	close(results)

	clientByStatus := map[int]uint64{}
	var errorIDs []string
	for res := range results {
		clientByStatus[res.status]++
		if res.status >= 400 {
			errorIDs = append(errorIDs, res.id)
		}
	}
	var total uint64
	for _, n := range clientByStatus {
		total += n
	}
	if total != clients*perClient {
		t.Fatalf("clients recorded %d outcomes of %d requests", total, clients*perClient)
	}
	waitForClassifyObserved(t, rec, total)

	// Exact join per route and status: recorder ledger vs the metrics
	// counters (same process, same traffic, zero tolerance), and the
	// recorder's classify totals vs the clients' own tally.
	st := rec.Stats()
	var recObserved uint64
	for _, route := range []string{"/api/classify", "/api/classify/batch"} {
		for status, n := range st.ByRoute[route] {
			recObserved += n
			counter := c.reg.Counter("http_requests_total", "path", route, "code", status).Value()
			if counter != n {
				t.Errorf("route %s status %s: recorder observed %d, http_requests_total %d",
					route, status, n, counter)
			}
		}
	}
	if recObserved != total {
		t.Errorf("recorder observed %d classify events, clients saw %d responses", recObserved, total)
	}
	for status, n := range clientByStatus {
		var rec uint64
		code := strconv.Itoa(status)
		for _, route := range []string{"/api/classify", "/api/classify/batch"} {
			rec += st.ByRoute[route][code]
		}
		if rec != n {
			t.Errorf("status %d: clients saw %d, recorder observed %d", status, n, rec)
		}
	}
	if st.Observed != st.Kept+st.SampledOut {
		t.Errorf("ledger unbalanced: observed %d != kept %d + sampledOut %d", st.Observed, st.Kept, st.SampledOut)
	}
	if st.Evicted != 0 {
		t.Fatalf("storm evicted %d events from a 4096 ring; retrievability check would be vacuous", st.Evicted)
	}

	// Every 429/504/5xx the clients saw must come back out of the ring.
	events, _ := debugEvents(t, c.srv.URL, "route=/api/classify&limit=-1")
	inRing := map[string]bool{}
	for _, ev := range events {
		if ev.Status >= 400 {
			inRing[ev.ID] = true
		}
	}
	missing := 0
	for _, id := range errorIDs {
		if !inRing[id] {
			missing++
			if missing <= 5 {
				t.Errorf("error response %s not retrievable from /debug/requests", id)
			}
		}
	}
	if missing > 5 {
		t.Errorf("... and %d more missing error events", missing-5)
	}
	t.Logf("storm: %d requests, statuses %v, %d error events all retrievable", total, clientByStatus, len(errorIDs))
}

func TestRuntimeMetricsExposed(t *testing.T) {
	a := chaosFixture(t)
	c := newChaosServer(t, a, WithFlightRecorder(flight.NewRecorder(flight.DefaultConfig())))
	resp, err := http.Get(c.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readAll(t, resp))
	for _, family := range []string{
		"go_goroutines", "go_heap_bytes", "go_gc_pause_seconds", "go_sched_latency_seconds",
		"flight_events{disposition=", "slo_burn_rate{objective=",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

func TestDebugSLOEndpoint(t *testing.T) {
	a := chaosFixture(t)
	c := newChaosServer(t, a, WithFlightRecorder(flight.NewRecorder(flight.DefaultConfig())))
	// Put one governed request through so the run totals are non-zero.
	resp := c.post(t, "/api/classify", a.singleBody(0))
	readAll(t, resp)

	var st flight.SLOStatus
	if resp := flightGet(t, c.srv.URL+"/debug/slo", &st); resp.StatusCode != 200 {
		t.Fatalf("/debug/slo: status %d", resp.StatusCode)
	}
	if st.Availability == nil || st.Latency == nil {
		t.Fatalf("/debug/slo missing objectives: %+v", st)
	}
	if st.Availability.Target != 0.999 {
		t.Errorf("availability target %v, want default 0.999", st.Availability.Target)
	}
	if len(st.Availability.Windows) == 0 {
		t.Error("availability objective has no burn windows")
	}

	// Unarmed server: the debug surface is not mounted at all.
	bare := newChaosServer(t, a)
	if resp := flightGet(t, bare.srv.URL+"/debug/slo", nil); resp.StatusCode != 404 {
		t.Errorf("/debug/slo without a recorder: status %d, want 404", resp.StatusCode)
	}
}

func TestDebugBundleEndpoint(t *testing.T) {
	a := chaosFixture(t)

	// Bundles not configured: the endpoint answers 503, not 500.
	c := newChaosServer(t, a, WithFlightRecorder(flight.NewRecorder(flight.DefaultConfig())))
	if resp := flightGet(t, c.srv.URL+"/debug/bundle", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/debug/bundle without -bundle-dir: status %d, want 503", resp.StatusCode)
	}

	// Production wiring (cmd/supremm-serve) hands the server's metrics
	// registry to the bundler so captures carry metrics.prom; mirror it.
	dir := t.TempDir()
	reg := obs.NewRegistry()
	models := core.NewModelManager(reg)
	if _, err := models.ReloadFromFile(a.pathA); err != nil {
		t.Fatal(err)
	}
	cfg := flight.DefaultConfig()
	cfg.Bundle = flight.BundleConfig{Dir: dir, Profile: "heap", Registry: reg}
	armed := httptest.NewServer(New(a.store, nil, 6400,
		WithMetrics(reg), WithModelManager(models),
		WithFlightRecorder(flight.NewRecorder(cfg))))
	defer armed.Close()
	resp, err := http.Post(armed.URL+"/api/classify", "application/json", bytes.NewReader(a.singleBody(0)))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)

	var b flight.Bundle
	if resp := flightGet(t, armed.URL+"/debug/bundle?reason=smoke", &b); resp.StatusCode != 200 {
		t.Fatalf("/debug/bundle: status %d", resp.StatusCode)
	}
	if !strings.Contains(filepath.Base(b.Dir), "smoke") {
		t.Errorf("bundle dir %q does not carry the reason", b.Dir)
	}
	for _, name := range []string{"events.json", "slo.json", "metrics.prom", "heap.pprof"} {
		if _, err := os.Stat(filepath.Join(b.Dir, name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}
	// The operator path bypasses the automatic rate limit: asking twice
	// yields two bundles.
	if resp := flightGet(t, armed.URL+"/debug/bundle", nil); resp.StatusCode != 200 {
		t.Errorf("second forced bundle: status %d, want 200 (rate limit is for automatic captures)", resp.StatusCode)
	}
}
