package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/resilience"
)

// discoverServer builds an instrumented server over a small pipeline run
// with a runtime-class model already swapped in. The discovery manager
// starts empty, so tests exercise the refit path over the store's real
// Uncategorized/NA population (91 jobs at seed 91 / 200 total).
func discoverServer(t *testing.T, opts ...Option) (*httptest.Server, *obs.Registry) {
	t.Helper()
	res, err := core.RunPipeline(core.DefaultPipelineConfig(91, 200))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.TrainRuntimeClassifier(res.Records, core.PaperForest(3))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	runtime := core.NewNamedModelManager(reg, "runtime_class")
	if _, err := runtime.Swap(rt); err != nil {
		t.Fatal(err)
	}
	all := append([]Option{WithMetrics(reg), WithRuntimeManager(runtime)}, opts...)
	srv := httptest.NewServer(New(res.Store, nil, 6400, all...))
	t.Cleanup(srv.Close)
	return srv, reg
}

// discoverGetReply mirrors the GET /api/discover body.
type discoverGetReply struct {
	Generation        uint64    `json:"generation"`
	K                 int       `json:"k"`
	Rows              int       `json:"rows"`
	Features          []string  `json:"features"`
	ExplainedVariance []float64 `json:"explainedVariance"`
	AnomalyDistance   float64   `json:"anomalyDistance"`
	Clusters          []struct {
		ID            int                `json:"id"`
		Size          int                `json:"size"`
		Share         float64            `json:"share"`
		Anomalous     bool               `json:"anomalous"`
		Center        map[string]float64 `json:"center"`
		TopDeviations []struct {
			Feature string  `json:"feature"`
			Z       float64 `json:"z"`
		} `json:"topDeviations"`
	} `json:"clusters"`
}

// fullRow builds a feature map covering every name, with deterministic
// values perturbed by variant.
func fullRow(names []string, variant int) map[string]float64 {
	m := make(map[string]float64, len(names))
	for j, name := range names {
		m[name] = float64((variant*5+j*3)%13) / 4
	}
	return m
}

// TestDiscoverLifecycle walks the discovery pack end to end: empty
// manager answers 503, a refit fits the warehouse's unlabeled population
// and hot-swaps generation 1, the cluster report serves, and per-job
// assignment scores against the new fit.
func TestDiscoverLifecycle(t *testing.T) {
	srv, reg := discoverServer(t)

	// Nothing fitted yet: report and assignment both refuse with 503.
	if resp, body := get(t, srv.URL+"/api/discover"); resp.StatusCode != 503 {
		t.Fatalf("GET /api/discover before refit: status %d (%s)", resp.StatusCode, body)
	}
	code, body := postJSON(t, srv.URL+"/api/discover/assign",
		map[string]any{"features": map[string]float64{"x": 1}})
	if code != 503 {
		t.Fatalf("assign before refit: status %d (%s)", code, body)
	}
	if got := reg.Counter("discover_assign_outcomes_total", "outcome", "no_model").Value(); got != 1 {
		t.Errorf("no_model outcomes = %d, want 1", got)
	}

	// Refit over the store's Uncategorized/NA jobs.
	code, body = postJSON(t, srv.URL+"/api/discover",
		map[string]any{"k": 4, "restarts": 3, "seed": 9})
	if code != 200 {
		t.Fatalf("refit: status %d (%s)", code, body)
	}
	var refit struct {
		Generation uint64 `json:"generation"`
		K          int    `json:"k"`
		Rows       int    `json:"rows"`
	}
	if err := json.Unmarshal(body, &refit); err != nil {
		t.Fatal(err)
	}
	if refit.Generation != 1 || refit.K != 4 || refit.Rows == 0 {
		t.Fatalf("refit reply %+v: want generation 1, k 4, rows > 0", refit)
	}
	if got := reg.Counter("discover_swap_total", "outcome", "ok").Value(); got != 1 {
		t.Errorf("discover_swap_total{ok} = %d, want 1", got)
	}
	if got := reg.Gauge("discover_generation").Value(); got != 1 {
		t.Errorf("discover_generation = %v, want 1", got)
	}

	// The cluster report: sizes account for every row, shares sum to 1,
	// the explained-variance curve is monotone, centers are keyed by
	// feature name in original units.
	var rep discoverGetReply
	if code := getJSON(t, srv.URL+"/api/discover", &rep); code != 200 {
		t.Fatalf("GET /api/discover: status %d", code)
	}
	if rep.Generation != 1 || rep.K != 4 || len(rep.Clusters) != 4 {
		t.Fatalf("report generation %d k %d clusters %d", rep.Generation, rep.K, len(rep.Clusters))
	}
	total, share := 0, 0.0
	for _, c := range rep.Clusters {
		total += c.Size
		share += c.Share
		if c.Size > 0 && len(c.TopDeviations) == 0 {
			t.Errorf("cluster %d has no top deviations", c.ID)
		}
		for _, f := range rep.Features {
			if _, ok := c.Center[f]; !ok && c.Size > 0 {
				t.Errorf("cluster %d center missing feature %s", c.ID, f)
			}
		}
	}
	if total != rep.Rows {
		t.Errorf("cluster sizes sum to %d, rows %d", total, rep.Rows)
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", share)
	}
	for i := 1; i < len(rep.ExplainedVariance); i++ {
		if rep.ExplainedVariance[i] < rep.ExplainedVariance[i-1] {
			t.Errorf("explained variance not monotone at %d: %v", i, rep.ExplainedVariance)
		}
	}

	// Assignment lands in one of the k clusters and repeats byte-for-byte.
	code, first := postJSON(t, srv.URL+"/api/discover/assign",
		map[string]any{"features": fullRow(rep.Features, 1)})
	if code != 200 {
		t.Fatalf("assign: status %d (%s)", code, first)
	}
	var a struct {
		Cluster    int     `json:"cluster"`
		Distance   float64 `json:"distance"`
		Generation uint64  `json:"generation"`
	}
	if err := json.Unmarshal(first, &a); err != nil {
		t.Fatal(err)
	}
	if a.Cluster < 0 || a.Cluster >= 4 || a.Generation != 1 || a.Distance < 0 {
		t.Fatalf("assign reply %+v out of contract", a)
	}
	if _, again := postJSON(t, srv.URL+"/api/discover/assign",
		map[string]any{"features": fullRow(rep.Features, 1)}); !bytes.Equal(first, again) {
		t.Errorf("repeated assignment diverges:\n%s\n%s", first, again)
	}
	assigned := reg.Counter("discover_assign_outcomes_total", "outcome", "assigned").Value()
	anomalous := reg.Counter("discover_assign_outcomes_total", "outcome", "anomalous").Value()
	if assigned+anomalous != 2 {
		t.Errorf("assigned %d + anomalous %d outcomes, want 2 total", assigned, anomalous)
	}

	// A second refit hot-swaps generation 2 under the same schema.
	if code, body := postJSON(t, srv.URL+"/api/discover",
		map[string]any{"k": 6, "seed": 10}); code != 200 {
		t.Fatalf("second refit: status %d (%s)", code, body)
	}
	var rep2 discoverGetReply
	getJSON(t, srv.URL+"/api/discover", &rep2)
	if rep2.Generation != 2 || rep2.K != 6 {
		t.Errorf("after second refit: generation %d k %d, want 2/6", rep2.Generation, rep2.K)
	}
}

// TestDiscoverAssignErrors pins the 4xx contract and its outcome
// counters: malformed bodies, empty and unknown features, oversized
// payloads, and invalid refit parameters all answer 4xx -- never a panic,
// never a 500.
func TestDiscoverAssignErrors(t *testing.T) {
	srv, reg := discoverServer(t)
	if code, body := postJSON(t, srv.URL+"/api/discover", map[string]any{"k": 3}); code != 200 {
		t.Fatalf("refit: status %d (%s)", code, body)
	}

	post := func(raw string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/api/discover/assign", "application/json", strings.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	if code, body := post(`{not json`); code != 400 {
		t.Errorf("malformed body: status %d (%s)", code, body)
	}
	if code, body := post(`{}`); code != 400 {
		t.Errorf("empty features: status %d (%s)", code, body)
	}
	if code, body := post(`{"features":{"no_such_feature":1}}`); code != 400 {
		t.Errorf("unknown feature: status %d (%s)", code, body)
	}
	if got := reg.Counter("discover_assign_outcomes_total", "outcome", "bad_request").Value(); got != 3 {
		t.Errorf("bad_request outcomes = %d, want 3", got)
	}
	huge := `{"features":{"` + strings.Repeat("a", maxClassifyBody+64) + `":1}}`
	if code, body := post(huge); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d (%s)", code, body)
	}
	if got := reg.Counter("discover_assign_outcomes_total", "outcome", "oversized").Value(); got != 1 {
		t.Errorf("oversized outcomes = %d, want 1", got)
	}

	// Refit parameter validation: negative knobs are a client error and
	// must not consume a breaker failure.
	if code, body := postJSON(t, srv.URL+"/api/discover", map[string]any{"k": -1}); code != 400 {
		t.Errorf("negative k refit: status %d (%s)", code, body)
	}
	if got := reg.Gauge("model_breaker_state").Value(); got != 0 {
		t.Errorf("breaker state %v after parameter 400, want closed", got)
	}
}

// TestDiscoverRefitWorkerParity is the serving-layer restart-parity
// gate: the same refit request against servers fitting with 1 and 4
// workers produces byte-identical /api/discover reports and byte-
// identical assignments.
func TestDiscoverRefitWorkerParity(t *testing.T) {
	var reports, assigns [][]byte
	for _, workers := range []int{1, 4} {
		srv, _ := discoverServer(t, WithBatchWorkers(workers))
		if code, body := postJSON(t, srv.URL+"/api/discover",
			map[string]any{"k": 5, "restarts": 4, "seed": 17}); code != 200 {
			t.Fatalf("refit (workers=%d): status %d (%s)", workers, code, body)
		}
		resp, report := get(t, srv.URL+"/api/discover")
		if resp.StatusCode != 200 {
			t.Fatalf("GET /api/discover (workers=%d): status %d", workers, resp.StatusCode)
		}
		var rep discoverGetReply
		if err := json.Unmarshal([]byte(report), &rep); err != nil {
			t.Fatal(err)
		}
		_, assign := postJSON(t, srv.URL+"/api/discover/assign",
			map[string]any{"features": fullRow(rep.Features, 2)})
		reports = append(reports, []byte(report))
		assigns = append(assigns, assign)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Error("discovery reports diverge between worker counts 1 and 4")
	}
	if !bytes.Equal(assigns[0], assigns[1]) {
		t.Errorf("assignments diverge between worker counts:\n%s\n%s", assigns[0], assigns[1])
	}
}

// TestRuntimeClassEndpoint exercises the submit-time runtime/outcome
// prediction: schema discovery, the probability vector, global and
// per-class thresholds, and the 4xx validation contract with its
// counters.
func TestRuntimeClassEndpoint(t *testing.T) {
	srv, reg := discoverServer(t)

	var schema struct {
		Features   []string `json:"features"`
		Classes    []string `json:"classes"`
		Generation uint64   `json:"generation"`
	}
	if code := getJSON(t, srv.URL+"/api/runtime-class/features", &schema); code != 200 {
		t.Fatalf("runtime schema: status %d", code)
	}
	if len(schema.Features) == 0 || len(schema.Classes) < 2 || schema.Generation != 1 {
		t.Fatalf("schema %+v: want features, >= 2 classes, generation 1", schema)
	}

	type reply struct {
		Class         string             `json:"class"`
		Probability   float64            `json:"probability"`
		Classified    bool               `json:"classified"`
		Probabilities map[string]float64 `json:"probabilities"`
		Generation    uint64             `json:"generation"`
		Defaulted     []string           `json:"defaulted"`
	}
	predict := func(req map[string]any) (int, reply, []byte) {
		t.Helper()
		code, body := postJSON(t, srv.URL+"/api/runtime-class", req)
		var r reply
		if code == 200 {
			if err := json.Unmarshal(body, &r); err != nil {
				t.Fatal(err)
			}
		}
		return code, r, body
	}

	features := fullRow(schema.Features, 3)
	code, r, body := predict(map[string]any{"features": features})
	if code != 200 {
		t.Fatalf("predict: status %d (%s)", code, body)
	}
	if !r.Classified { // threshold 0: any probability clears it
		t.Error("threshold-0 prediction not classified")
	}
	sum := 0.0
	for _, c := range schema.Classes {
		p, ok := r.Probabilities[c]
		if !ok {
			t.Errorf("probabilities missing class %q", c)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
	if r.Probabilities[r.Class] != r.Probability {
		t.Errorf("probability %v disagrees with probabilities[%s] = %v",
			r.Probability, r.Class, r.Probabilities[r.Class])
	}

	// A per-class threshold overrides the global one for that class only:
	// demanding more confidence than the model has flips classified off.
	over := math.Min(1, r.Probability+1e-9)
	code, r2, _ := predict(map[string]any{
		"features":   features,
		"thresholds": map[string]float64{r.Class: over},
	})
	if code != 200 {
		t.Fatalf("per-class threshold predict: status %d", code)
	}
	if want := r.Probability >= over; r2.Classified != want {
		t.Errorf("classified = %v with threshold %v over probability %v", r2.Classified, over, r.Probability)
	}
	classified := reg.Counter("runtime_class_outcomes_total", "outcome", "classified").Value()
	below := reg.Counter("runtime_class_outcomes_total", "outcome", "below_threshold").Value()
	if classified+below != 2 {
		t.Errorf("classified %d + below_threshold %d, want 2 predictions counted", classified, below)
	}

	// Validation contract: each bad request answers 400 and counts.
	for i, req := range []map[string]any{
		{"features": features, "threshold": 1.5},
		{"features": features, "thresholds": map[string]float64{"no-such-class": 0.5}},
		{"features": features, "thresholds": map[string]float64{schema.Classes[0]: -0.1}},
		{},
		{"features": map[string]float64{"bogus": 1}},
	} {
		if code, _, body := predict(req); code != 400 {
			t.Errorf("bad request %d: status %d (%s)", i, code, body)
		}
	}
	if got := reg.Counter("runtime_class_outcomes_total", "outcome", "bad_request").Value(); got != 5 {
		t.Errorf("bad_request outcomes = %d, want 5", got)
	}

	// Missing features default to zero and are reported back.
	partial := map[string]float64{schema.Features[0]: 1}
	code, r3, _ := predict(map[string]any{"features": partial})
	if code != 200 {
		t.Fatalf("partial predict: status %d", code)
	}
	if len(r3.Defaulted) != len(schema.Features)-1 {
		t.Errorf("defaulted %d features, want %d", len(r3.Defaulted), len(schema.Features)-1)
	}
}

// TestChaosDiscoverGovernance proves the new serving endpoints ride the
// same governance as classify: injected row latency past the request
// deadline answers 504 (handler stage), a burst over capacity sheds 429
// with Retry-After, and the flight recorder files wide events under the
// new routes.
func TestChaosDiscoverGovernance(t *testing.T) {
	rec := flight.NewRecorder(flight.DefaultConfig())
	faults := resilience.NewFaults(12)
	for _, site := range []string{FaultDiscoverAssign, FaultRuntimeRow} {
		if err := faults.Set(site, resilience.FaultSpec{
			Kind: resilience.FaultLatency, Rate: 1, Latency: 300 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv, reg := discoverServer(t,
		WithFaults(faults),
		WithFlightRecorder(rec),
		WithResilience(ResilienceConfig{
			RequestTimeout: 100 * time.Millisecond,
			MaxConcurrent:  1,
			MaxQueue:       0,
			RetryAfter:     2 * time.Second,
		}),
	)
	// The refit is control-plane (breaker-guarded, ungoverned) so it is
	// untouched by the admission limiter or the row-latency faults.
	if code, body := postJSON(t, srv.URL+"/api/discover", map[string]any{"k": 3}); code != 200 {
		t.Fatalf("refit under governance: status %d (%s)", code, body)
	}
	var rep discoverGetReply
	if code := getJSON(t, srv.URL+"/api/discover", &rep); code != 200 {
		t.Fatalf("GET /api/discover: status %d", code)
	}
	assignBody := map[string]any{"features": fullRow(rep.Features, 4)}
	var schema struct {
		Features []string `json:"features"`
	}
	if code := getJSON(t, srv.URL+"/api/runtime-class/features", &schema); code != 200 {
		t.Fatalf("runtime schema: status %d", code)
	}
	runtimeBody := map[string]any{"features": fullRow(schema.Features, 5)}

	// 504: the 300ms row fault blows the 100ms deadline on both routes.
	if code, body := postJSON(t, srv.URL+"/api/discover/assign", assignBody); code != http.StatusGatewayTimeout {
		t.Fatalf("assign under latency fault: status %d, want 504 (%s)", code, body)
	}
	if code, body := postJSON(t, srv.URL+"/api/runtime-class", runtimeBody); code != http.StatusGatewayTimeout {
		t.Fatalf("runtime-class under latency fault: status %d, want 504 (%s)", code, body)
	}
	if got := reg.Counter("http_timeouts_total", "stage", "handler").Value(); got != 2 {
		t.Errorf("http_timeouts_total{handler} = %d, want 2", got)
	}
	if got := reg.Counter("discover_assign_outcomes_total", "outcome", "timeout").Value(); got != 1 {
		t.Errorf("discover timeout outcomes = %d, want 1", got)
	}
	if got := reg.Counter("runtime_class_outcomes_total", "outcome", "timeout").Value(); got != 1 {
		t.Errorf("runtime timeout outcomes = %d, want 1", got)
	}

	// 429: occupy the single slot, then a second arrival finds no queue.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, srv.URL+"/api/discover/assign", assignBody)
	}()
	time.Sleep(50 * time.Millisecond)
	body, _ := json.Marshal(runtimeBody)
	resp, err := http.Post(srv.URL+"/api/runtime-class", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wg.Wait()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("arrival at capacity 1/queue 0: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("429 Retry-After = %q, want 2", got)
	}
	if got := reg.Counter("http_shed_total", "reason", "queue_full").Value(); got == 0 {
		t.Error("http_shed_total{queue_full} = 0 after a shed 429")
	}

	// Every disposition above filed a wide event under its route.
	deadline := time.Now().Add(10 * time.Second)
	for {
		byRoute := rec.Stats().ByRoute
		n := 0
		for _, route := range []string{"/api/discover", "/api/discover/assign", "/api/runtime-class"} {
			for _, c := range byRoute[route] {
				n += int(c)
			}
		}
		if n >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight recorder observed %d events on the new routes, want >= 6 (%v)", n, byRoute)
		}
		time.Sleep(10 * time.Millisecond)
	}
	events, _ := debugEvents(t, srv.URL, "route=/api/discover/assign&limit=-1")
	if len(events) == 0 {
		t.Error("no wide events filed under /api/discover/assign")
	}
}

// TestChaosDiscoverRefitBreaker drives the shared control-plane breaker
// with discovery refits: injected refit failures trip it, further refits
// AND model reloads then fail fast with 503 + Retry-After, and the
// serving discovery fit is never disturbed.
func TestChaosDiscoverRefitBreaker(t *testing.T) {
	faults := resilience.NewFaults(13)
	if err := faults.Set(FaultDiscoverFit, resilience.FaultSpec{
		Kind: resilience.FaultError, Rate: 1,
	}); err != nil {
		t.Fatal(err)
	}
	srv, reg := discoverServer(t,
		WithFaults(faults),
		WithReloadBreaker(resilience.BreakerConfig{FailureThreshold: 3, OpenFor: time.Minute}),
	)

	// Each injected refit failure answers 400 and feeds the breaker.
	for i := 0; i < 3; i++ {
		if code, body := postJSON(t, srv.URL+"/api/discover", map[string]any{"k": 3}); code != 400 {
			t.Fatalf("faulted refit %d: status %d (%s)", i, code, body)
		}
	}
	if got := reg.Gauge("model_breaker_state").Value(); got != 2 {
		t.Fatalf("breaker state %v after threshold failures, want 2 (open)", got)
	}

	// Open: refits fail fast with 503 + Retry-After...
	resp, err := http.Post(srv.URL+"/api/discover", "application/json", strings.NewReader(`{"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("refit while open: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 from open breaker is missing Retry-After")
	}
	// ...and so do model reloads: refit and reload share one breaker.
	resp, err = http.Post(srv.URL+"/admin/model/reload", "application/json", strings.NewReader(`{"path":"/nonexistent"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("reload while refit-tripped breaker open: status %d, want 503", resp.StatusCode)
	}
	if got := reg.Counter("model_breaker_rejections_total").Value(); got != 2 {
		t.Errorf("breaker rejections = %d, want 2", got)
	}
	// The discovery manager never saw a swap attempt.
	if got := reg.Gauge("discover_generation").Value(); got != 0 {
		t.Errorf("discover_generation = %v after failed refits, want 0", got)
	}
}
