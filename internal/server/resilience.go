package server

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs/flight"
	"repro/internal/resilience"
)

// Fault-injection site names the serving path consults when a
// resilience.Faults registry is wired in (the -faults flag, or a test
// hook). Default builds construct no registry, so these sites cost one
// nil check.
const (
	// FaultReload fires inside the guarded model reload, before the
	// manager touches the file: error faults fail the reload (driving
	// the breaker), latency faults wedge it.
	FaultReload = "reload"
	// FaultClassifyRow fires once per classified row, single and batch
	// alike: latency faults slow inference (driving deadlines), error
	// faults fail the row, panic faults prove panic isolation.
	FaultClassifyRow = "classify.row"
	// FaultDiscoverAssign fires once per discovery assignment, after
	// request validation and before scoring — same fault semantics as
	// classify.row for the /api/discover/assign path.
	FaultDiscoverAssign = "discover.assign"
	// FaultRuntimeRow fires once per runtime-class prediction, after
	// request validation and before inference.
	FaultRuntimeRow = "runtime.row"
	// FaultDiscoverFit fires inside the guarded discovery refit before
	// the warehouse is read: error faults fail the refit (driving the
	// shared control-plane breaker), latency faults wedge it.
	FaultDiscoverFit = "discover.fit"
)

// ResilienceConfig tunes the serving path's overload behaviour. The
// zero value disables everything, preserving the unguarded behaviour.
type ResilienceConfig struct {
	// RequestTimeout is the per-request deadline applied to governed
	// endpoints via context; a request that exceeds it answers 504 and
	// counts in http_timeouts_total. 0 disables deadlines.
	RequestTimeout time.Duration
	// MaxConcurrent bounds how many governed requests execute at once;
	// <= 0 disables admission control.
	MaxConcurrent int
	// MaxQueue bounds how many governed requests may wait for a slot
	// beyond MaxConcurrent; arrivals past that are shed with 429.
	MaxQueue int
	// RetryAfter is the hint returned in the Retry-After header of shed
	// (429) responses. 0 defaults to 1s.
	RetryAfter time.Duration
}

// WithResilience enables per-request deadlines and admission control on
// the model-serving endpoints (classification, discovery assignment,
// runtime-class -- the expensive paths; warehouse reads are microsecond
// map lookups and stay ungoverned).
func WithResilience(cfg ResilienceConfig) Option {
	return func(s *Server) { s.resilience = cfg }
}

// WithFaults arms deterministic fault injection at the server's named
// sites. Arm sites before the server starts taking traffic; the
// registry is read-only afterwards.
func WithFaults(f *resilience.Faults) Option {
	return func(s *Server) { s.faults = f }
}

// WithReloadBreaker overrides the circuit breaker configuration guarding
// model reloads (admin endpoint and SIGHUP alike). The server installs a
// default breaker (threshold 5, open 30s) even without this option;
// OnStateChange and Now are reserved for the server's own gauge wiring
// and are overwritten.
func WithReloadBreaker(cfg resilience.BreakerConfig) Option {
	return func(s *Server) { s.breakerCfg = cfg }
}

// initResilience finishes resilience wiring after options ran: builds
// the admission limiter and the reload breaker, and points the breaker's
// transitions at the model_breaker_state gauge.
func (s *Server) initResilience() {
	s.limiter = resilience.NewLimiter(resilience.LimiterConfig{
		MaxConcurrent: s.resilience.MaxConcurrent,
		MaxQueue:      s.resilience.MaxQueue,
	})
	if s.resilience.RetryAfter <= 0 {
		s.resilience.RetryAfter = time.Second
	}
	gauge := s.metrics.Gauge("model_breaker_state")
	s.breakerCfg.OnStateChange = func(st resilience.BreakerState) {
		gauge.Set(float64(st))
		if st == resilience.BreakerOpen {
			// A tripped breaker is exactly the moment diagnostics are
			// worth their cost: snapshot the ring and runtime state.
			// TriggerBundle is asynchronous (and nil-safe), so the
			// breaker's own lock is never held across a capture.
			s.flight.TriggerBundle("breaker_open")
		}
	}
	s.breakerCfg.Now = nil // the breaker defaults to the real clock
	s.breaker = resilience.NewBreaker(s.breakerCfg)
}

// governed reports whether the admission queue and request deadline
// apply to this request: the model-serving endpoints (classification,
// discovery assignment, runtime-class prediction). Control-plane
// mutations (model reload, discovery refit) are guarded by the breaker
// instead, and warehouse reads stay ungoverned.
func governed(r *http.Request) bool {
	p := r.URL.Path
	return p == "/api/classify" || p == "/api/classify/batch" ||
		p == "/api/discover/assign" || p == "/api/runtime-class"
}

// retryAfterSeconds renders a Retry-After header value, always >= 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// shed answers a load-shed request: 429, a Retry-After hint, and the
// http_shed_total{reason} counter. Shedding is immediate -- the contract
// is "never hangs" -- so clients can back off instead of piling on.
func (s *Server) shed(w http.ResponseWriter, reason string) {
	s.metrics.Counter("http_shed_total", "reason", reason).Inc()
	w.Header().Set("Retry-After", retryAfterSeconds(s.resilience.RetryAfter))
	s.writeError(w, http.StatusTooManyRequests,
		"server overloaded, request shed (%s); retry after backoff", reason)
}

// timedOut answers a deadline-exceeded request: 504 plus the
// http_timeouts_total{stage} counter. stage is "queue" (deadline expired
// while waiting for admission) or "handler" (expired mid-inference).
// The stage also lands on the request's wide event, so /debug/requests
// can split queue-side from handler-side overruns.
func (s *Server) timedOut(w http.ResponseWriter, r *http.Request, stage string) {
	fe := flight.From(r.Context())
	fe.SetTimeoutStage(stage)
	fe.SetErr("request deadline exceeded (" + stage + " stage)")
	s.metrics.Counter("http_timeouts_total", "stage", stage).Inc()
	s.writeError(w, http.StatusGatewayTimeout,
		"request deadline exceeded (%s stage)", stage)
}

// govern applies the resilience layer around a governed request: attach
// the deadline, pass admission control, run next with the deadline-bound
// request, release. When admission sheds or the deadline expires in the
// queue, govern answers the request itself and next never runs. The time
// a request spends waiting for an admission slot is stamped onto its
// wide event, so handler time and queue time stay separable per request.
func (s *Server) govern(w http.ResponseWriter, r *http.Request, next func(*http.Request)) {
	if s.resilience.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.resilience.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	enqueued := time.Now()
	release, err := s.limiter.Acquire(r.Context())
	flight.From(r.Context()).SetQueueWait(time.Since(enqueued))
	switch {
	case errors.Is(err, resilience.ErrShed):
		s.shed(w, "queue_full")
		return
	case err != nil:
		// The deadline expired (or the client vanished) while the
		// request sat in the admission queue: it never executed, so the
		// all-or-nothing contract holds trivially.
		s.timedOut(w, r, "queue")
		return
	}
	defer release()
	next(r)
}

// ReloadModel swaps the serving model from path (empty = the remembered
// default) through the reload circuit breaker and the FaultReload
// injection site. Both the admin endpoint and SIGHUP use it, so repeated
// failures from either source trip the same breaker; while open,
// attempts fail fast with resilience.ErrBreakerOpen and never touch the
// manager.
func (s *Server) ReloadModel(path string) (uint64, error) {
	if err := s.breaker.Allow(); err != nil {
		s.metrics.Counter("model_breaker_rejections_total").Inc()
		return s.models.Generation(), err
	}
	gen, err := s.reloadOnce(path)
	s.breaker.Record(err)
	return gen, err
}

func (s *Server) reloadOnce(path string) (uint64, error) {
	if err := s.faults.Inject(FaultReload); err != nil {
		return s.models.Generation(), err
	}
	return s.models.ReloadFromFile(path)
}
