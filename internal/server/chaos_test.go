package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ml/forest"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/warehouse"
)

// chaosAssets is the shared raw material for the chaos suite: one
// generated workload plus two schema-compatible models saved to disk.
// Building the pipeline is the expensive part, so every chaos test
// shares one copy (the assets are read-only after construction).
type chaosAssets struct {
	store    *warehouse.Store
	pathA    string
	pathB    string
	features []string
}

var (
	chaosOnce sync.Once
	chaos     *chaosAssets
	chaosErr  error
)

func chaosFixture(t testing.TB) *chaosAssets {
	t.Helper()
	chaosOnce.Do(func() {
		res, err := core.RunPipeline(core.DefaultPipelineConfig(91, 200))
		if err != nil {
			chaosErr = err
			return
		}
		ds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
		if err != nil {
			chaosErr = err
			return
		}
		train := func(seed uint64, trees int) (*core.JobClassifier, error) {
			return core.TrainJobClassifier(ds, core.ClassifierConfig{
				Algo: core.AlgoForest, Forest: forest.Config{Trees: trees, Seed: seed},
			})
		}
		modelA, err := train(3, 40)
		if err != nil {
			chaosErr = err
			return
		}
		modelB, err := train(7, 50)
		if err != nil {
			chaosErr = err
			return
		}
		// Not t.TempDir: the assets outlive the first test that builds
		// them. The process-scoped temp dir is cleaned with the test run.
		dir, err := os.MkdirTemp("", "chaos-models-")
		if err != nil {
			chaosErr = err
			return
		}
		a := &chaosAssets{
			store:    res.Store,
			pathA:    filepath.Join(dir, "a.bin"),
			pathB:    filepath.Join(dir, "b.bin"),
			features: ds.FeatureNames,
		}
		for path, m := range map[string]*core.JobClassifier{a.pathA: modelA, a.pathB: modelB} {
			f, err := os.Create(path)
			if err != nil {
				chaosErr = err
				return
			}
			if err := m.Save(f); err != nil {
				chaosErr = err
				return
			}
			if err := f.Close(); err != nil {
				chaosErr = err
				return
			}
		}
		chaos = a
	})
	if chaosErr != nil {
		t.Fatalf("building chaos assets: %v", chaosErr)
	}
	return chaos
}

// chaosServer boots a server over the shared assets with model A loaded
// (generation 1) and whatever resilience options the test needs.
type chaosServer struct {
	srv    *httptest.Server
	reg    *obs.Registry
	models *core.ModelManager
}

func newChaosServer(t *testing.T, a *chaosAssets, opts ...Option) *chaosServer {
	t.Helper()
	reg := obs.NewRegistry()
	models := core.NewModelManager(reg)
	if _, err := models.ReloadFromFile(a.pathA); err != nil {
		t.Fatal(err)
	}
	all := append([]Option{WithMetrics(reg), WithModelManager(models)}, opts...)
	srv := httptest.NewServer(New(a.store, nil, 6400, all...))
	t.Cleanup(srv.Close)
	return &chaosServer{srv: srv, reg: reg, models: models}
}

// singleBody renders a deterministic full-coverage single-classify body;
// variant perturbs the values so different requests exercise different
// rows.
func (a *chaosAssets) singleBody(variant int) []byte {
	features := make(map[string]float64, len(a.features))
	for j, name := range a.features {
		features[name] = float64((variant*5+j)%7) / 6
	}
	body, _ := json.Marshal(map[string]any{"features": features, "threshold": 0.1})
	return body
}

// batchBody renders a deterministic batch-classify body of rows rows.
func (a *chaosAssets) batchBody(variant, rows int) []byte {
	rs := make([]map[string]float64, rows)
	for i := range rs {
		m := make(map[string]float64, len(a.features))
		for j, name := range a.features {
			m[name] = float64((variant*11+i*5+j)%9) / 8
		}
		rs[i] = m
	}
	body, _ := json.Marshal(map[string]any{"rows": rs, "threshold": 0.1})
	return body
}

func (c *chaosServer) post(t *testing.T, path string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(c.srv.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosReloadFaultsNeverServeTorn is the tentpole chaos gate for the
// reload path: with error faults injected into half of all reload
// attempts and live classify traffic in flight, every successful
// response must be byte-identical to what model A or model B produces --
// a failed reload must never leave a torn or partially-swapped model
// serving.
func TestChaosReloadFaultsNeverServeTorn(t *testing.T) {
	a := chaosFixture(t)
	faults := resilience.NewFaults(99)
	if err := faults.Set(FaultReload, resilience.FaultSpec{Kind: resilience.FaultError, Rate: 0.5}); err != nil {
		t.Fatal(err)
	}
	c := newChaosServer(t, a,
		WithBatchWorkers(2),
		WithFaults(faults),
		// The breaker must not interfere here; it has its own test.
		WithReloadBreaker(resilience.BreakerConfig{FailureThreshold: 1 << 20}),
	)
	body := a.singleBody(0)

	classify := func() []byte {
		resp := c.post(t, "/api/classify", body)
		got := readAll(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("classify status %d: %s", resp.StatusCode, got)
		}
		return got
	}
	reload := func(path string) int {
		resp := c.post(t, "/admin/model/reload", []byte(`{"path":"`+path+`"}`))
		readAll(t, resp)
		return resp.StatusCode
	}

	// Reference responses for both models, captured quiesced. Priming the
	// swap to B may take a few attempts through the fault dice.
	wantA := classify()
	okReloads := 0
	for reload(a.pathB) != 200 {
		if okReloads++; okReloads > 64 {
			t.Fatal("rate-0.5 fault dice blocked 64 straight reloads; registry broken")
		}
	}
	wantB := classify()
	if bytes.Equal(wantA, wantB) {
		t.Fatal("fixture models classify identically; the torn-model check would be vacuous")
	}

	const clients = 4
	const perClient = 30
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(c.srv.URL+"/api/classify", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err.Error()
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- "status " + resp.Status
					return
				}
				if got := buf.Bytes(); !bytes.Equal(got, wantA) && !bytes.Equal(got, wantB) {
					errs <- "torn response: " + buf.String()
					return
				}
			}
		}()
	}

	// Hammer reloads while the clients classify. Injected failures answer
	// 400 and must leave the serving model untouched; successes swap it.
	succeeded, failed := 0, 0
	paths := [2]string{a.pathA, a.pathB}
	genBefore := c.models.Generation()
	for i := 0; i < 40; i++ {
		switch status := reload(paths[i%2]); status {
		case 200:
			succeeded++
		case 400:
			failed++
		default:
			t.Errorf("reload %d: unexpected status %d", i, status)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	if succeeded == 0 || failed == 0 {
		t.Fatalf("fault dice gave %d successes / %d failures; wanted both", succeeded, failed)
	}
	if got := c.models.Generation(); got != genBefore+uint64(succeeded) {
		t.Errorf("generation %d after %d successful reloads from %d; failed reloads moved the model",
			got, succeeded, genBefore)
	}
	// And the survivor still serves one of the two known models.
	if got := classify(); !bytes.Equal(got, wantA) && !bytes.Equal(got, wantB) {
		t.Errorf("post-chaos response matches neither model: %s", got)
	}
}

// TestChaosBreakerOpensAndRecovers drives the reload breaker through its
// full cycle at the HTTP layer: consecutive real failures open it,
// reloads then fail fast with 503 + Retry-After without touching the
// manager, and after the open window a half-open probe restores service.
func TestChaosBreakerOpensAndRecovers(t *testing.T) {
	a := chaosFixture(t)
	c := newChaosServer(t, a, WithReloadBreaker(resilience.BreakerConfig{
		FailureThreshold: 3,
		OpenFor:          3 * time.Second,
	}))
	reload := func(path string) *http.Response {
		resp := c.post(t, "/admin/model/reload", []byte(`{"path":"`+path+`"}`))
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 3; i++ {
		if resp := reload("/nonexistent/model.bin"); resp.StatusCode != 400 {
			t.Fatalf("failing reload %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if got := c.reg.Gauge("model_breaker_state").Value(); got != 2 {
		t.Fatalf("breaker gauge = %v after threshold failures, want 2 (open)", got)
	}

	// Open: even a valid path fails fast with 503 + Retry-After.
	resp := reload(a.pathB)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("reload while open: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 from open breaker is missing Retry-After")
	}
	if got := c.reg.Counter("model_breaker_rejections_total").Value(); got != 1 {
		t.Errorf("breaker rejections = %d, want 1", got)
	}
	if gen := c.models.Generation(); gen != 1 {
		t.Errorf("open breaker let a reload through (generation %d)", gen)
	}

	// After OpenFor, the half-open probe succeeds and closes the breaker.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if resp := reload(a.pathB); resp.StatusCode == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after its open window")
		}
		time.Sleep(100 * time.Millisecond)
	}
	if got := c.reg.Gauge("model_breaker_state").Value(); got != 0 {
		t.Errorf("breaker gauge = %v after successful probe, want 0 (closed)", got)
	}
	if gen := c.models.Generation(); gen != 2 {
		t.Errorf("generation = %d after recovery reload, want 2", gen)
	}
	resp = c.post(t, "/api/classify", a.singleBody(1))
	readAll(t, resp)
	if resp.StatusCode != 200 {
		t.Errorf("classify after recovery: status %d", resp.StatusCode)
	}
}

// TestChaosDeadlineAllOrNothing proves the batch deadline contract: when
// injected per-row latency pushes a batch past the request deadline, the
// client gets one 504 error body and zero partial results -- never a
// truncated result set.
func TestChaosDeadlineAllOrNothing(t *testing.T) {
	a := chaosFixture(t)
	faults := resilience.NewFaults(5)
	if err := faults.Set(FaultClassifyRow, resilience.FaultSpec{
		Kind: resilience.FaultLatency, Rate: 1, Latency: 30 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	c := newChaosServer(t, a,
		WithBatchWorkers(1),
		WithFaults(faults),
		WithResilience(ResilienceConfig{RequestTimeout: 150 * time.Millisecond}),
	)

	// A single row fits inside the deadline even with the latency fault.
	resp := c.post(t, "/api/classify", a.singleBody(2))
	readAll(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("single classify under latency fault: status %d", resp.StatusCode)
	}

	// Twelve rows at 30ms each on one worker cannot: 504, error only.
	start := time.Now()
	resp = c.post(t, "/api/classify/batch", a.batchBody(0, 12))
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("over-deadline batch: status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline response took %v; the server kept grinding past the deadline", elapsed)
	}
	var payload map[string]json.RawMessage
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("504 body is not JSON: %s", body)
	}
	if _, ok := payload["results"]; ok {
		t.Fatalf("504 body leaked partial results: %s", body)
	}
	if _, ok := payload["error"]; !ok {
		t.Fatalf("504 body has no error field: %s", body)
	}
	if got := c.reg.Counter("http_timeouts_total", "stage", "handler").Value(); got != 1 {
		t.Errorf("http_timeouts_total{stage=handler} = %d, want 1", got)
	}
}

// TestChaosPanicIsolation injects panics into row inference and checks
// both halves of the isolation contract: the request answers 500 (not a
// hung connection or a dead process), and the server keeps serving.
func TestChaosPanicIsolation(t *testing.T) {
	a := chaosFixture(t)
	faults := resilience.NewFaults(6)
	if err := faults.Set(FaultClassifyRow, resilience.FaultSpec{
		Kind: resilience.FaultPanic, Rate: 1,
	}); err != nil {
		t.Fatal(err)
	}
	c := newChaosServer(t, a, WithBatchWorkers(2), WithFaults(faults))

	// Batch: the worker-pool panic is isolated into a per-task error.
	resp := c.post(t, "/api/classify/batch", a.batchBody(1, 4))
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking batch: status %d, want 500 (%s)", resp.StatusCode, body)
	}
	if got := c.reg.Counter("classify_row_panics_total").Value(); got != 1 {
		t.Errorf("classify_row_panics_total = %d, want 1 (one per failed request)", got)
	}

	// Single: the panic unwinds to the middleware recovery.
	resp = c.post(t, "/api/classify", a.singleBody(3))
	readAll(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking single classify: status %d, want 500", resp.StatusCode)
	}
	if got := c.reg.Counter("http_panics_total").Value(); got != 1 {
		t.Errorf("http_panics_total = %d, want 1", got)
	}

	// The process survived both; ungoverned reads still work.
	var meta struct {
		Generation uint64 `json:"generation"`
	}
	if code := getJSON(t, c.srv.URL+"/api/features", &meta); code != 200 || meta.Generation != 1 {
		t.Fatalf("server unhealthy after isolated panics: status %d, generation %d", code, meta.Generation)
	}
}

// TestChaosShedNeverHangs fires a synchronized burst far above capacity
// at a tightly governed server: every request must come back promptly as
// either 200 or 429 + Retry-After. Shedding that queues, hangs, or
// drops connections fails here.
func TestChaosShedNeverHangs(t *testing.T) {
	a := chaosFixture(t)
	faults := resilience.NewFaults(8)
	if err := faults.Set(FaultClassifyRow, resilience.FaultSpec{
		Kind: resilience.FaultLatency, Rate: 1, Latency: 20 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	c := newChaosServer(t, a,
		WithBatchWorkers(1),
		WithFaults(faults),
		WithResilience(ResilienceConfig{
			RequestTimeout: 2 * time.Second,
			MaxConcurrent:  1,
			MaxQueue:       0,
			RetryAfter:     2 * time.Second,
		}),
	)

	const burst = 20
	body := a.singleBody(4)
	start := make(chan struct{})
	type outcome struct {
		status     int
		retryAfter string
		err        error
	}
	results := make(chan outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			client := &http.Client{Timeout: 10 * time.Second}
			resp, err := client.Post(c.srv.URL+"/api/classify", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			results <- outcome{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		}()
	}
	close(start)
	wg.Wait()
	close(results)

	ok, shed := 0, 0
	for res := range results {
		switch {
		case res.err != nil:
			t.Errorf("request failed at the transport: %v", res.err)
		case res.status == 200:
			ok++
		case res.status == http.StatusTooManyRequests:
			shed++
			if res.retryAfter != "2" {
				t.Errorf("429 Retry-After = %q, want %q", res.retryAfter, "2")
			}
		default:
			t.Errorf("unexpected status %d", res.status)
		}
	}
	if ok == 0 {
		t.Error("burst got zero admissions; the limiter is not releasing")
	}
	if shed == 0 {
		t.Errorf("burst of %d against capacity 1 shed nothing", burst)
	}
	if got := c.reg.Counter("http_shed_total", "reason", "queue_full").Value(); got != uint64(shed) {
		t.Errorf("http_shed_total = %d, client saw %d 429s", got, shed)
	}
}
