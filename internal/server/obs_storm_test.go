package server

import (
	"bytes"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
)

// TestShedTimeoutCountersExactUnderStorm storms a tiny admission window
// (1 slot + 2 queued) with requests whose injected inference latency
// always overruns the deadline, then reconciles the server's resilience
// counters against the client-observed outcomes EXACTLY: every 429 the
// clients saw is one http_shed_total tick, every 504 one
// http_timeouts_total tick, no more, no less. Run under -race by `make
// race`, which is where counter increments that are merely "usually
// atomic" die.
func TestShedTimeoutCountersExactUnderStorm(t *testing.T) {
	a := chaosFixture(t)
	faults := resilience.NewFaults(21)
	if err := faults.Set(FaultClassifyRow, resilience.FaultSpec{
		Kind: resilience.FaultLatency, Rate: 1, Latency: 400 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	c := newChaosServer(t, a,
		WithBatchWorkers(1),
		WithFaults(faults),
		WithResilience(ResilienceConfig{
			RequestTimeout: 150 * time.Millisecond,
			MaxConcurrent:  1,
			MaxQueue:       2,
		}),
	)

	const storm = 24
	body := a.singleBody(9)
	start := make(chan struct{})
	var wg sync.WaitGroup
	statuses := make(chan int, storm)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			client := &http.Client{Timeout: 10 * time.Second}
			resp, err := client.Post(c.srv.URL+"/api/classify", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("storm request failed at the transport: %v", err)
				return
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	close(start)
	wg.Wait()
	close(statuses)

	var ok, shed, timedOut, other int
	for status := range statuses {
		switch status {
		case 200:
			ok++
		case http.StatusTooManyRequests:
			shed++
		case http.StatusGatewayTimeout:
			timedOut++
		default:
			other++
		}
	}
	if other != 0 {
		t.Fatalf("storm produced %d responses outside the contract", other)
	}
	// Every admitted request sleeps 400ms against a 150ms deadline, so
	// nothing can legitimately answer 200.
	if ok != 0 {
		t.Errorf("%d requests answered 200 despite a fault guaranteeing deadline overrun", ok)
	}
	if shed == 0 || timedOut == 0 {
		t.Fatalf("storm saw shed=%d timeouts=%d; wanted both nonzero", shed, timedOut)
	}

	// Exact reconciliation, counter by counter.
	if got := c.reg.Counter("http_shed_total", "reason", "queue_full").Value(); got != uint64(shed) {
		t.Errorf("http_shed_total{queue_full} = %d, clients saw %d 429s", got, shed)
	}
	queueTO := c.reg.Counter("http_timeouts_total", "stage", "queue").Value()
	handlerTO := c.reg.Counter("http_timeouts_total", "stage", "handler").Value()
	if queueTO+handlerTO != uint64(timedOut) {
		t.Errorf("http_timeouts_total queue=%d + handler=%d = %d, clients saw %d 504s",
			queueTO, handlerTO, queueTO+handlerTO, timedOut)
	}
	// At least one request reached the handler before its deadline hit.
	if handlerTO == 0 {
		t.Error("no handler-stage timeout; the slot-holder's deadline never fired mid-inference")
	}

	// The same numbers must survive the Prometheus exposition path, which
	// renders concurrently with any late counter writes.
	resp, err := http.Get(c.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readAll(t, resp))
	for _, want := range []string{
		`http_shed_total{reason="queue_full"}`,
		`http_timeouts_total{stage=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
