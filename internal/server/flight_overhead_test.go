package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// flightBenchHandler builds an in-process serving handler over the chaos
// assets; opts arms or omits the flight recorder.
func flightBenchHandler(t testing.TB, a *chaosAssets, opts ...Option) http.Handler {
	t.Helper()
	reg := obs.NewRegistry()
	models := core.NewModelManager(reg)
	if _, err := models.ReloadFromFile(a.pathA); err != nil {
		t.Fatal(err)
	}
	all := append([]Option{WithMetrics(reg), WithModelManager(models)}, opts...)
	return New(a.store, nil, 6400, all...)
}

// serveClassify drives one single-classify request straight through the
// handler (no network), failing the benchmark on any non-200.
func serveClassify(b *testing.B, h http.Handler, body []byte) {
	req := httptest.NewRequest("POST", "/api/classify", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != 200 {
		b.Fatalf("classify status %d: %s", rr.Code, rr.Body.String())
	}
}

// TestFlightOverheadGate is the CI recorder-overhead ratchet (run by
// `make flight-overhead-gate`, env-gated so plain `go test ./...` stays
// fast and benchmark-free): the full serving path with the recorder
// armed must stay within FLIGHT_OVERHEAD_MAX_RATIO of the disarmed
// path. The recorder's per-request cost is one Active allocation, a few
// atomic adds, and a short critical section in Record -- the end-to-end
// request (JSON decode + inference + encode) should dominate it
// completely.
func TestFlightOverheadGate(t *testing.T) {
	if os.Getenv("FLIGHT_GATE") == "" {
		t.Skip("set FLIGHT_GATE=1 to run the recorder-overhead gate (make flight-overhead-gate)")
	}
	const maxRatio = 1.5

	a := chaosFixture(t)
	body := a.singleBody(0)
	disarmedH := flightBenchHandler(t, a)
	armedH := flightBenchHandler(t, a,
		WithFlightRecorder(flight.NewRecorder(flight.DefaultConfig())))

	measure := func(h http.Handler) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				serveClassify(b, h, body)
			}
		})
		return float64(res.NsPerOp())
	}
	// Interleave A/B/A/B and keep each side's best run: min-of-runs is
	// robust against one-sided noise (GC, scheduler) on shared CI boxes.
	disarmed, armed := measure(disarmedH), measure(armedH)
	for i := 0; i < 2; i++ {
		if d := measure(disarmedH); d < disarmed {
			disarmed = d
		}
		if g := measure(armedH); g < armed {
			armed = g
		}
	}

	ratio := armed / disarmed
	t.Logf("classify ns/request: disarmed=%.0f armed=%.0f ratio=%.3f (max %.2f)",
		disarmed, armed, ratio, maxRatio)
	if ratio > maxRatio {
		t.Errorf("flight recorder overhead ratio %.3f exceeds %.2f: recording a wide event costs too much per request",
			ratio, maxRatio)
	}
}

// Benchmarks for `make bench` / benchstat: the same serving path with
// and without the recorder, so the overhead is visible in routine bench
// sweeps, not only when the gate trips.
func BenchmarkClassifyFlightDisarmed(b *testing.B) {
	a := chaosFixture(b)
	h := flightBenchHandler(b, a)
	body := a.singleBody(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveClassify(b, h, body)
	}
}

func BenchmarkClassifyFlightArmed(b *testing.B) {
	a := chaosFixture(b)
	h := flightBenchHandler(b, a,
		WithFlightRecorder(flight.NewRecorder(flight.DefaultConfig())))
	body := a.singleBody(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serveClassify(b, h, body)
	}
}
