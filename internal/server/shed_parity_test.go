package server

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/flight"
	"repro/internal/resilience"
	"repro/internal/testkit"
)

// TestChaosShedParityAcrossWorkers is the admission-parity acceptance
// gate: under shed pressure, every ADMITTED request must return a
// response byte-identical (testkit digest) to an ungoverned reference
// server -- at batch workers 1 and 4 alike -- and every shed request
// must carry 429 + Retry-After. Admission control may refuse work; it
// must never change the answer.
func TestChaosShedParityAcrossWorkers(t *testing.T) {
	a := chaosFixture(t)

	// The reference: same model, no governance, one worker. Its responses
	// define correctness for every admitted request below.
	ref := newChaosServer(t, a, WithBatchWorkers(1))
	const requests = 24
	bodies := make([][]byte, requests)
	paths := make([]string, requests)
	want := make([]string, requests) // testkit digest per request
	for i := range bodies {
		if i%3 == 0 {
			paths[i], bodies[i] = "/api/classify/batch", a.batchBody(i, 8)
		} else {
			paths[i], bodies[i] = "/api/classify", a.singleBody(i)
		}
		resp := ref.post(t, paths[i], bodies[i])
		body := readAll(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("reference request %d: status %d: %s", i, resp.StatusCode, body)
		}
		want[i] = testkit.HashBytes(body)
	}

	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(map[int]string{1: "workers=1", 4: "workers=4"}[workers], func(t *testing.T) {
			faults := resilience.NewFaults(12)
			if err := faults.Set(FaultClassifyRow, resilience.FaultSpec{
				Kind: resilience.FaultLatency, Rate: 1, Latency: 10 * time.Millisecond,
			}); err != nil {
				t.Fatal(err)
			}
			// The flight recorder rides along armed: recording wide events
			// must never change a response byte (the digests below are
			// compared against an unrecorded, ungoverned reference).
			governed := newChaosServer(t, a,
				WithBatchWorkers(workers),
				WithFaults(faults),
				WithFlightRecorder(flight.NewRecorder(flight.DefaultConfig())),
				WithResilience(ResilienceConfig{
					RequestTimeout: 10 * time.Second,
					MaxConcurrent:  2,
					MaxQueue:       2,
				}),
			)

			start := make(chan struct{})
			var wg sync.WaitGroup
			var mu sync.Mutex
			admitted, shed := 0, 0
			for i := 0; i < requests; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					client := &http.Client{Timeout: 30 * time.Second}
					resp, err := client.Post(governed.srv.URL+paths[i], "application/json", bytes.NewReader(bodies[i]))
					if err != nil {
						t.Errorf("request %d transport error: %v", i, err)
						return
					}
					var buf bytes.Buffer
					buf.ReadFrom(resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case 200:
						if got := testkit.HashBytes(buf.Bytes()); got != want[i] {
							t.Errorf("request %d admitted but diverged from the ungoverned reference:\n digest %s want %s\n body: %s",
								i, got, want[i], buf.String())
						}
						mu.Lock()
						admitted++
						mu.Unlock()
					case http.StatusTooManyRequests:
						if resp.Header.Get("Retry-After") == "" {
							t.Errorf("request %d shed without Retry-After", i)
						}
						mu.Lock()
						shed++
						mu.Unlock()
					default:
						t.Errorf("request %d: unexpected status %d: %s", i, resp.StatusCode, buf.String())
					}
				}()
			}
			close(start)
			wg.Wait()

			if admitted == 0 {
				t.Error("no request was admitted")
			}
			if shed == 0 {
				t.Errorf("synchronized burst of %d against capacity 4 shed nothing", requests)
			}
			t.Logf("workers=%d: admitted=%d shed=%d, all admitted responses digest-equal to reference", workers, admitted, shed)
		})
	}
}
