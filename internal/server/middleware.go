package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Option configures optional server subsystems.
type Option func(*Server)

// WithMetrics wires a metrics registry into the request path and exposes
// it at GET /metrics in Prometheus text format.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.metrics = reg }
}

// WithLogger attaches a structured logger; each request is logged at
// debug level and panics at error level.
func WithLogger(log *obs.Logger) Option {
	return func(s *Server) { s.log = log }
}

// WithPprof mounts net/http/pprof under /debug/pprof/.
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithModelManager supplies an externally-owned model manager (for
// boot-time loading and SIGHUP-driven reloads); the model argument to
// New is then ignored. The caller should build it with the same registry
// passed to WithMetrics so swap metrics land in one exposition.
func WithModelManager(mm *core.ModelManager) Option {
	return func(s *Server) { s.models = mm }
}

// WithBatchWorkers bounds the goroutines one batch classify request fans
// out over (<= 0 means GOMAXPROCS).
func WithBatchWorkers(n int) Option {
	return func(s *Server) { s.batchWorkers = n }
}

// WithFlightRecorder arms the serving-path flight recorder: every
// request produces one wide event in rec's tail-sampled ring, and the
// /debug/requests, /debug/slo and /debug/bundle endpoints are mounted
// over it. Build rec with flight.NewRecorder; pass the same registry as
// WithMetrics in rec's bundle config so captured bundles carry the
// server's own metrics.
func WithFlightRecorder(rec *flight.Recorder) Option {
	return func(s *Server) { s.flight = rec }
}

// knownPaths bounds the cardinality of the path label: anything not
// registered on the API is reported as "other".
var knownPaths = map[string]bool{
	"/api/overview": true, "/api/groupby": true, "/api/drilldown": true,
	"/api/utilization": true, "/api/features": true, "/api/classify": true,
	"/api/classify/batch": true, "/admin/model/reload": true,
	"/api/discover": true, "/api/discover/assign": true,
	"/api/runtime-class": true, "/api/runtime-class/features": true,
	"/api/lifecycle": true, "/admin/lifecycle/retrain": true,
	"/admin/lifecycle/promote": true, "/admin/lifecycle/rollback": true,
	"/metrics": true, "/healthz": true, "/readyz": true,
	"/debug/requests": true, "/debug/slo": true, "/debug/bundle": true,
}

func pathLabel(p string) string {
	if knownPaths[p] {
		return p
	}
	if strings.HasPrefix(p, "/debug/pprof") {
		return "/debug/pprof"
	}
	return "other"
}

// statusWriter captures the response status code for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (notably
// /debug/pprof/profile and /debug/pprof/trace) keep working through the
// middleware. Flushing commits the headers, so it pins the status.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		if w.status == 0 {
			w.status = http.StatusOK
		}
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// requestSeq numbers requests process-wide for X-Request-ID generation.
var requestSeq atomic.Uint64

// requestID returns the inbound X-Request-ID or mints one. IDs combine
// the server boot stamp with a process-wide sequence number, so they are
// unique without consuming any randomness the pipeline depends on.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		return id
	}
	return fmt.Sprintf("%x-%06d", s.bootStamp, requestSeq.Add(1))
}

// wrap is the middleware chain applied to every request: request ID ->
// wide-event assembly -> panic recovery -> metrics -> logging ->
// handler. The X-Request-Id response header is set before the handler
// runs, so every disposition -- 200, 429, 504, panic-500 -- echoes the
// ID the flight recorder filed the request's wide event under.
func (s *Server) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.requestID(r)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()

		// The wide event rides the request context so every layer below
		// (admission control, fault sites, the batch row fan-out) can
		// annotate it without new plumbing; when the recorder is not
		// armed this whole block is one nil check.
		var fe *flight.Active
		if s.flight != nil {
			fe = flight.NewActive(id, r.Method, pathLabel(r.URL.Path), start)
			r = r.WithContext(flight.With(r.Context(), fe))
		}

		if s.metrics != nil {
			inFlight := s.metrics.Gauge("http_in_flight_requests")
			inFlight.Inc()
			defer inFlight.Dec()
		}

		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				fe.MarkPanic()
				fe.SetErr(fmt.Sprint(rec))
				s.metrics.Counter("http_panics_total").Inc()
				s.log.Error("handler panic", "id", id, "path", r.URL.Path, "panic", rec)
				if sw.status == 0 {
					s.writeError(sw, http.StatusInternalServerError, "internal error (request %s)", id)
				}
			}
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			if s.metrics != nil {
				pl := pathLabel(r.URL.Path)
				s.metrics.Counter("http_requests_total",
					"path", pl, "code", strconv.Itoa(sw.status)).Inc()
				s.metrics.Histogram("http_request_seconds", nil, "path", pl).
					ObserveDuration(start)
			}
			fe.Finalize(sw.status, time.Since(start))
			s.flight.Record(fe)
			s.log.Debug("request",
				"id", id, "method", r.Method, "path", r.URL.Path,
				"status", sw.status, "dur", time.Since(start).Round(time.Microsecond))
		}()

		// The resilience layer governs the classification endpoints:
		// deadline via context, then bounded admission. Everything else
		// (warehouse reads, /metrics, pprof) bypasses it, so operators
		// can always observe an overloaded server.
		if governed(r) && (s.limiter != nil || s.resilience.RequestTimeout > 0) {
			s.govern(sw, r, func(r *http.Request) { next.ServeHTTP(sw, r) })
			return
		}
		next.ServeHTTP(sw, r)
	})
}

// classifyOutcome counts classification endpoint outcomes: classified,
// below_threshold, bad_request, oversized, no_model.
func (s *Server) classifyOutcome(outcome string) {
	s.metrics.Counter("classify_outcomes_total", "outcome", outcome).Inc()
}

// mountDebug registers the optional /metrics and /debug/pprof routes and
// pre-declares the HTTP metric families so /metrics carries HELP text
// before the first request lands.
func (s *Server) mountDebug() {
	if s.metrics != nil {
		s.metrics.Help("http_requests_total", "HTTP requests by path and status code.")
		s.metrics.Help("http_request_seconds", "HTTP request latency in seconds by path.")
		s.metrics.Help("http_in_flight_requests", "Requests currently being served.")
		s.metrics.Help("http_panics_total", "Requests that panicked in a handler.")
		s.metrics.Help("classify_outcomes_total", "Classification outcomes, counted per row for batch requests.")
		s.metrics.Help("classify_batch_rows", "Rows per batch classification request.")
		s.metrics.Help("classify_row_seconds", "Per-row model inference latency in seconds.")
		s.metrics.Help("http_encode_errors_total", "JSON response bodies that failed to encode after the status was committed.")
		s.metrics.Help("http_shed_total", "Requests rejected by admission control (429), by reason.")
		s.metrics.Help("http_timeouts_total", "Requests that exceeded their deadline (504), by stage (queue or handler).")
		s.metrics.Help("model_breaker_state", "Model-reload circuit breaker position: 0 closed, 1 half-open, 2 open.")
		s.metrics.Help("model_breaker_rejections_total", "Model reload attempts rejected because the breaker was open.")
		s.metrics.Help("classify_row_panics_total", "Row inference panics isolated by the worker pool.")
		s.metrics.Help("discover_assign_outcomes_total", "Discovery assignment outcomes (assigned, anomalous, bad_request, oversized, no_model, timeout, error).")
		s.metrics.Help("discover_assign_seconds", "Per-row discovery assignment latency in seconds.")
		s.metrics.Help("runtime_class_outcomes_total", "Runtime-class prediction outcomes (classified, below_threshold, bad_request, oversized, no_model, timeout, error).")
		s.metrics.Help("runtime_class_row_seconds", "Per-row runtime-class inference latency in seconds.")
		s.metrics.Help("go_goroutines", "Live goroutines (runtime/metrics, sampled per scrape).")
		s.metrics.Help("go_heap_bytes", "Bytes of live heap objects (runtime/metrics, sampled per scrape).")
		s.metrics.Help("go_gc_pause_seconds", "GC pause distribution quantiles (runtime/metrics).")
		s.metrics.Help("go_sched_latency_seconds", "Goroutine scheduling latency quantiles (runtime/metrics).")
		if s.flight != nil {
			s.metrics.Help("flight_events", "Flight-recorder event ledger by disposition (observed = kept + sampled_out; kept = live + evicted).")
			s.metrics.Help("flight_shadow_rows", "Shadow-scored rows recorded on wide events, by disposition (scored, agree); reconciles exactly with lifecycle_shadow_rows_total.")
			s.metrics.Help("flight_live_events", "Wide events currently held in the flight-recorder ring.")
			s.metrics.Help("flight_bundles", "Diagnostic bundle captures by outcome.")
			s.metrics.Help("slo_burn_rate", "Error-budget burn rate per objective and window (1.0 = budget spent exactly at the sustainable pace).")
			s.metrics.Help("slo_target", "Configured SLO target per objective.")
			s.metrics.Help("slo_budget_left", "Fraction of the run's error budget still unspent, per objective.")
		}
		s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			// Scrape-time collection hooks: Go runtime gauges and the
			// flight recorder's ledger/burn gauges refresh here, so the
			// exposition is always current without a background ticker.
			obs.CollectRuntime(s.metrics)
			s.flight.Export(s.metrics)
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = s.metrics.WritePrometheus(w)
		})
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.flight != nil {
		s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
		s.mux.HandleFunc("GET /debug/slo", s.handleDebugSLO)
		s.mux.HandleFunc("GET /debug/bundle", s.handleDebugBundle)
	}
	if s.pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
