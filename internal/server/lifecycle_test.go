package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lifecycle"
	"repro/internal/ml/forest"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/rng"
)

// The lifecycle endpoints over a real HTTP server: the Observe hook on
// the classify path feeds the loop, the admin endpoints drive
// retrain/promote/rollback through the shared control-plane breaker,
// and failures map onto the documented status codes.

const (
	lcClasses  = 4
	lcFeatures = 6
	lcSpread   = 0.35
)

// lcCenter is the same collision-free class layout the lifecycle
// simulation uses (see internal/lifecycle/sim.go).
func lcCenter(k, f int) float64 { return float64((5*k+3*f)%11) + 0.5*float64(k) }

// lcTraffic draws n labeled rows round-robin over the classes. When
// rotate is set the world has shifted: class k's rows live at class
// (k+1)'s old center plus a uniform offset, so a champion trained on
// the unrotated world answers the old tenant's label.
func lcTraffic(seed uint64, n int, rotate bool) ([][]float64, []string) {
	r := rng.New(seed)
	rows := make([][]float64, n)
	labels := make([]string, n)
	for i := range rows {
		k := i % lcClasses
		ck, shift := k, 0.0
		if rotate {
			ck, shift = (k+1)%lcClasses, 1.5
		}
		row := make([]float64, lcFeatures)
		for f := range row {
			row[f] = lcCenter(ck, f) + lcSpread*r.Normal() + shift
		}
		rows[i] = row
		labels[i] = fmt.Sprintf("class%02d", k)
	}
	return rows, labels
}

func lcFeatureNames() []string {
	names := make([]string, lcFeatures)
	for f := range names {
		names[f] = fmt.Sprintf("feat%02d", f)
	}
	return names
}

// lcConfig is a loop config small enough to drive over HTTP in a test.
func lcConfig() lifecycle.Config {
	cfg := lifecycle.DefaultConfig()
	cfg.Window = 64
	cfg.MinRows = 64
	cfg.Every = 16
	cfg.DriftThreshold = 0.5
	cfg.PosteriorThreshold = 0.5
	cfg.ShadowMin = 16
	cfg.Cooldown = 64
	cfg.TrainWindow = 320
	cfg.Algo = "rf"
	cfg.Seed = 5
	cfg.Auto = false
	return cfg
}

type lcFixture struct {
	srv    *httptest.Server
	server *Server
	reg    *obs.Registry
	models *core.ModelManager
	names  []string

	trainErr     error
	trainerCalls int
}

func newLCFixture(t *testing.T, opts ...Option) *lcFixture {
	t.Helper()
	res, err := core.RunPipeline(core.DefaultPipelineConfig(91, 80))
	if err != nil {
		t.Fatal(err)
	}

	fx := &lcFixture{names: lcFeatureNames()}
	rows, labels := lcTraffic(11, 240, false)
	train, err := dataset.New(fx.names, rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	champ, err := core.TrainJobClassifier(train, core.ClassifierConfig{
		Algo: core.AlgoForest, Forest: forest.Config{Trees: 30, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := lcConfig()
	base, err := lifecycle.BaselineFor(train, champ, cfg.Bins)
	if err != nil {
		t.Fatal(err)
	}
	// The trainer retrains on the rotated world: its challenger answers
	// the shifted traffic correctly, so the promotion gate has a real
	// winner whenever live traffic is rotated too.
	trainer := func() (lifecycle.TrainResult, error) {
		fx.trainerCalls++
		if fx.trainErr != nil {
			return lifecycle.TrainResult{}, fx.trainErr
		}
		shiftRows, shiftLabels := lcTraffic(23, cfg.TrainWindow, true)
		return lifecycle.TrainChallenger(fx.names, shiftRows, shiftLabels, cfg)
	}

	fx.reg = obs.NewRegistry()
	fx.models = core.NewModelManager(fx.reg)
	if _, err := fx.models.Swap(champ); err != nil {
		t.Fatal(err)
	}
	all := append([]Option{
		WithMetrics(fx.reg), WithModelManager(fx.models),
		WithLifecycle(cfg, lifecycle.Options{Trainer: trainer, Baseline: base}),
	}, opts...)
	fx.server = New(res.Store, nil, 6400, all...)
	fx.srv = httptest.NewServer(fx.server)
	t.Cleanup(fx.srv.Close)
	return fx
}

// classify POSTs one row and returns the HTTP status.
func (fx *lcFixture) classify(t *testing.T, row []float64) int {
	t.Helper()
	features := make(map[string]float64, len(fx.names))
	for i, n := range fx.names {
		features[n] = row[i]
	}
	body, _ := json.Marshal(map[string]any{"features": features, "threshold": 0.1})
	resp, err := http.Post(fx.srv.URL+"/api/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// post hits a lifecycle admin endpoint and decodes the returned status.
func (fx *lcFixture) post(t *testing.T, path string) (int, lifecycle.Status, http.Header) {
	t.Helper()
	resp, err := http.Post(fx.srv.URL+path, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st lifecycle.Status
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return resp.StatusCode, st, resp.Header
}

func (fx *lcFixture) status(t *testing.T) (int, lifecycle.Status) {
	t.Helper()
	var st lifecycle.Status
	code := getJSON(t, fx.srv.URL+"/api/lifecycle", &st)
	return code, st
}

func TestLifecycleDisabledAnswers503(t *testing.T) {
	res, err := core.RunPipeline(core.DefaultPipelineConfig(91, 80))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(res.Store, nil, 6400))
	defer srv.Close()

	var st lifecycle.Status
	if code := getJSON(t, srv.URL+"/api/lifecycle", &st); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /api/lifecycle without the loop: status %d, want 503", code)
	}
	resp, err := http.Post(srv.URL+"/admin/lifecycle/retrain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("retrain without the loop: status %d, want 503", resp.StatusCode)
	}
}

// The full arc over HTTP: live classify traffic feeds the loop through
// the Observe hook, drift fires on rotated traffic, the admin endpoints
// retrain, shadow-score, promote and roll back, and the ledger the
// status reports balances at every step.
func TestLifecycleArcOverHTTP(t *testing.T) {
	fx := newLCFixture(t)

	code, st := fx.status(t)
	if code != 200 || st.State != "stable" {
		t.Fatalf("boot status %d %q, want 200 stable", code, st.State)
	}
	if _, err := lifecycle.ParseSpec(st.Spec); err != nil {
		t.Fatalf("status spec %q does not re-parse: %v", st.Spec, err)
	}

	// Rotated traffic through the public classify endpoint must fill
	// the drift window and fire the alarm — the Observe hook is the
	// only path from HTTP to the loop.
	rows, _ := lcTraffic(31, lcConfig().Window, true)
	for _, row := range rows {
		if code := fx.classify(t, row); code != 200 {
			t.Fatalf("classify status %d", code)
		}
	}
	if _, st = fx.status(t); st.State != "drifting" {
		t.Fatalf("state %q after a window of rotated traffic, want drifting (maxPSI=%v)", st.State, st.MaxFeaturePSI)
	}
	if st.RowsObserved != uint64(lcConfig().Window) {
		t.Fatalf("loop observed %d rows, want %d", st.RowsObserved, lcConfig().Window)
	}
	select {
	case <-fx.server.LifecycleNotify():
	default:
		t.Fatal("drift fired but the notify channel is empty")
	}

	// Retrain installs the challenger; subsequent classify traffic is
	// shadow-scored and the ledger the status reports must balance.
	code, st, _ = fx.post(t, "/admin/lifecycle/retrain")
	if code != 200 || st.State != "shadowing" || !st.ChallengerReady {
		t.Fatalf("retrain: %d %q ready=%v", code, st.State, st.ChallengerReady)
	}
	if fx.trainerCalls != 1 {
		t.Fatalf("trainer ran %d times, want 1", fx.trainerCalls)
	}
	shadowRows, _ := lcTraffic(37, 2*lcConfig().ShadowMin, true)
	for _, row := range shadowRows {
		fx.classify(t, row)
	}
	_, st = fx.status(t)
	lg := st.Ledger
	if lg.Eligible != uint64(len(shadowRows)) {
		t.Fatalf("ledger eligible %d, want %d", lg.Eligible, len(shadowRows))
	}
	if lg.Eligible != lg.Scored+lg.Errors || lg.Scored != lg.Agree+lg.Disagree {
		t.Fatalf("ledger does not balance: %+v", lg)
	}
	if lg.Scored == 0 {
		t.Fatal("no rows shadow-scored over HTTP")
	}

	// Promote: the challenger wins on rotated traffic, the champion
	// generation advances, and the loop cools down.
	code, st, _ = fx.post(t, "/admin/lifecycle/promote")
	if code != 200 {
		t.Fatalf("promote status %d", code)
	}
	if st.Promotions != 1 || st.LastDecision == nil || !st.LastDecision.Promoted {
		t.Fatalf("promotion did not land: %+v", st.LastDecision)
	}
	if fx.models.Generation() != 2 {
		t.Fatalf("generation %d after promotion, want 2", fx.models.Generation())
	}

	// Rollback restores the pre-promotion champion (a new generation:
	// every swap advances the counter); a second rollback has no
	// history left and conflicts.
	code, st, _ = fx.post(t, "/admin/lifecycle/rollback")
	if code != 200 || st.Rollbacks != 1 {
		t.Fatalf("rollback: %d %+v", code, st)
	}
	if fx.models.Generation() != 3 {
		t.Fatalf("generation %d after rollback, want 3", fx.models.Generation())
	}
	if code, _, _ = fx.post(t, "/admin/lifecycle/rollback"); code != http.StatusConflict {
		t.Fatalf("second rollback status %d, want 409", code)
	}
}

func TestLifecyclePreconditionsAre409(t *testing.T) {
	fx := newLCFixture(t)

	// Promote with no challenger shadowing.
	if code, _, _ := fx.post(t, "/admin/lifecycle/promote"); code != http.StatusConflict {
		t.Fatalf("promote without challenger: %d, want 409", code)
	}
	// Rollback with no promotion history.
	if code, _, _ := fx.post(t, "/admin/lifecycle/rollback"); code != http.StatusConflict {
		t.Fatalf("rollback without history: %d, want 409", code)
	}
}

func TestLifecycleRetrainFailureIs500AndKeepsChampion(t *testing.T) {
	fx := newLCFixture(t)
	fx.trainErr = errors.New("warehouse on fire")

	code, _, _ := fx.post(t, "/admin/lifecycle/retrain")
	if code != http.StatusInternalServerError {
		t.Fatalf("failing retrain status %d, want 500", code)
	}
	if fx.models.Generation() != 1 {
		t.Fatalf("failed retrain moved the champion to generation %d", fx.models.Generation())
	}
	if _, st := fx.status(t); st.ChallengerReady {
		t.Fatal("failed retrain left a challenger installed")
	}
}

// Repeated retrain failures trip the shared control-plane breaker —
// the same one model reloads use — and the endpoint then fails fast
// with 503 + Retry-After without consulting the trainer.
func TestLifecycleBreakerOpens503WithRetryAfter(t *testing.T) {
	fx := newLCFixture(t, WithReloadBreaker(resilience.BreakerConfig{
		FailureThreshold: 2, OpenFor: time.Minute,
	}))
	fx.trainErr = errors.New("persistent failure")

	for i := 0; i < 2; i++ {
		if code, _, _ := fx.post(t, "/admin/lifecycle/retrain"); code != http.StatusInternalServerError {
			t.Fatalf("retrain %d status %d, want 500", i, code)
		}
	}
	calls := fx.trainerCalls
	code, _, hdr := fx.post(t, "/admin/lifecycle/retrain")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open retrain status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("breaker-open response is missing Retry-After")
	}
	if fx.trainerCalls != calls {
		t.Fatal("open breaker still consulted the trainer")
	}
	if got := fx.reg.Counter("model_breaker_rejections_total").Value(); got == 0 {
		t.Fatal("breaker rejection was not counted")
	}
}
