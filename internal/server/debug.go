package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs/flight"
	"repro/internal/resilience"
)

// handleHealthz is pure liveness: the process is up and the mux is
// serving. It never consults the model or the breaker, so orchestrators
// keep a wedged-but-alive process distinguishable from a dead one.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports whether this instance should receive traffic: a
// model must be published and the reload breaker must not be open. An
// open breaker means reloads are failing repeatedly -- the instance
// still serves its last good model, but flagging it not-ready lets a
// balancer drain it before operators rotate it. 503 carries the failing
// conditions so the probe's reason is visible without log access.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.models.View() == nil {
		reasons = append(reasons, "no model loaded")
	}
	if s.breaker != nil && s.breaker.State() == resilience.BreakerOpen {
		reasons = append(reasons, "model reload breaker open")
	}
	if len(reasons) > 0 {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":  "unavailable",
			"reasons": reasons,
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"generation": s.models.Generation(),
	})
}

// debugRequestsDefaultLimit bounds an unqualified /debug/requests reply;
// pass limit=-1 (or any negative) to dump the whole ring.
const debugRequestsDefaultLimit = 100

// handleDebugRequests queries the flight recorder's ring. Filters:
//
//	status=504          exact response code
//	route=/api/classify path-label prefix
//	outcome=shed        derived disposition
//	min-ms=250          minimum request duration in milliseconds
//	since=RFC3339       only requests that started at/after this instant
//	limit=N             most recent N matches (default 100; -1 = all,
//	                    0 = count only)
//
// The reply carries the reconciliation stats alongside the matches, so
// one call answers both "show me the 504s" and "is the ledger balanced".
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := flight.Filter{Route: q.Get("route"), Outcome: q.Get("outcome"), Limit: debugRequestsDefaultLimit}
	if v := q.Get("status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad status parameter %q", v)
			return
		}
		f.Status = n
	}
	if v := q.Get("min-ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			s.writeError(w, http.StatusBadRequest, "bad min-ms parameter %q", v)
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad since parameter %q (want RFC3339)", v)
			return
		}
		f.Since = t
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad limit parameter %q", v)
			return
		}
		f.Limit = n
	}
	events, matched := s.flight.Query(f)
	if events == nil {
		events = []flight.Event{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"stats":   s.flight.Stats(),
		"matched": matched,
		"events":  events,
	})
}

// handleDebugSLO reports the burn-rate engine's current view of every
// objective and window.
func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	st := s.flight.SLOStatus()
	if st == nil {
		s.writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// handleDebugBundle captures a diagnostic bundle on operator demand,
// bypassing the automatic-capture rate limit (an operator asking twice
// means they want two bundles). 503 when bundles are disabled (no
// -bundle-dir), 500 when the capture itself failed.
func (s *Server) handleDebugBundle(w http.ResponseWriter, r *http.Request) {
	reason := r.URL.Query().Get("reason")
	if reason == "" {
		reason = "manual"
	}
	b, err := s.flight.Capture(reason, true)
	switch {
	case errors.Is(err, flight.ErrBundlesDisabled):
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, "bundle capture failed: %v", err)
	default:
		s.writeJSON(w, http.StatusOK, b)
	}
}
