// Package server exposes the warehouse and a trained job classifier over
// HTTP -- the paper's stated destination for this work: "we do plan to
// develop the machine learning technology that was explored in this work
// into production tools for use in XDMoD". The API mirrors the XDMoD
// views: overview totals, dimensional group-bys, drill-downs, monthly
// utilization, and an online classification endpoint that labels a
// SUPReMM summary with a probability threshold.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/warehouse"
)

// Server wires the API handlers to a warehouse store and an optional
// classifier.
type Server struct {
	store        *warehouse.Store
	model        *core.JobClassifier
	machineNodes int
	mux          *http.ServeMux
	handler      http.Handler

	metrics   *obs.Registry
	log       *obs.Logger
	pprof     bool
	bootStamp int64
}

// New builds a server. model may be nil (the classify endpoint then
// returns 503). machineNodes sizes the utilization report. Options add
// metrics (/metrics), structured logging, and pprof endpoints.
func New(store *warehouse.Store, model *core.JobClassifier, machineNodes int, opts ...Option) *Server {
	s := &Server{
		store: store, model: model, machineNodes: machineNodes,
		mux:       http.NewServeMux(),
		bootStamp: time.Now().UnixNano(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /api/overview", s.handleOverview)
	s.mux.HandleFunc("GET /api/groupby", s.handleGroupBy)
	s.mux.HandleFunc("GET /api/drilldown", s.handleDrillDown)
	s.mux.HandleFunc("GET /api/utilization", s.handleUtilization)
	s.mux.HandleFunc("GET /api/features", s.handleFeatures)
	s.mux.HandleFunc("POST /api/classify", s.handleClassify)
	s.mountDebug()
	s.handler = s.wrap(s.mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleOverview(w http.ResponseWriter, r *http.Request) {
	t := s.store.Totals()
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":      t.Jobs,
		"cpuHours":  t.CPUHours,
		"wallHours": t.WallHours,
	})
}

// validDims lists the dimensions the API accepts.
var validDims = map[warehouse.Dimension]bool{
	warehouse.ByApplication: true, warehouse.ByCategory: true,
	warehouse.ByUser: true, warehouse.ByPopulation: true,
	warehouse.ByJobSize: true, warehouse.ByMonth: true,
}

func parseDim(r *http.Request, param string) (warehouse.Dimension, error) {
	d := warehouse.Dimension(r.URL.Query().Get(param))
	if !validDims[d] {
		return "", fmt.Errorf("unknown or missing dimension %q", d)
	}
	return d, nil
}

func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	dim, err := parseDim(r, "dim")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type row struct {
		Key        string  `json:"key"`
		Jobs       int     `json:"jobs"`
		MixPercent float64 `json:"mixPercent"`
		CPUHours   float64 `json:"cpuHours"`
		AvgNodes   float64 `json:"avgNodes"`
		AvgWaitHrs float64 `json:"avgWaitHours"`
	}
	var out []row
	for _, g := range s.store.GroupBy(dim) {
		out = append(out, row{g.Key, g.Jobs, g.MixPercent, g.CPUHours, g.AvgNodes, g.AvgWaitHrs})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDrillDown(w http.ResponseWriter, r *http.Request) {
	outer, err := parseDim(r, "outer")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	inner, err := parseDim(r, "inner")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type innerRow struct {
		Key        string  `json:"key"`
		Jobs       int     `json:"jobs"`
		MixPercent float64 `json:"mixPercent"`
	}
	type group struct {
		Key   string     `json:"key"`
		Jobs  int        `json:"jobs"`
		Inner []innerRow `json:"inner"`
	}
	var out []group
	for _, g := range s.store.DrillDown(outer, inner) {
		gg := group{Key: g.Key, Jobs: g.Jobs}
		for _, in := range g.Inner {
			gg.Inner = append(gg.Inner, innerRow{in.Key, in.Jobs, in.MixPercent})
		}
		out = append(out, gg)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleUtilization(w http.ResponseWriter, r *http.Request) {
	nodes := s.machineNodes
	if q := r.URL.Query().Get("nodes"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad nodes parameter %q", q)
			return
		}
		nodes = n
	}
	if nodes <= 0 {
		writeError(w, http.StatusBadRequest, "machine node count not configured; pass ?nodes=N")
		return
	}
	writeJSON(w, http.StatusOK, s.store.Utilization(nodes))
}

func (s *Server) handleFeatures(w http.ResponseWriter, r *http.Request) {
	if s.model == nil {
		writeError(w, http.StatusServiceUnavailable, "no classifier loaded")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"algorithm": s.model.Algo,
		"features":  s.model.Features,
		"classes":   s.model.Classes(),
	})
}

// classifyRequest is the classification endpoint's body: a feature map
// keyed by attribute name (missing attributes default to 0).
type classifyRequest struct {
	Features  map[string]float64 `json:"features"`
	Threshold float64            `json:"threshold"`
}

// maxClassifyBody caps the classification request body. A legitimate
// request is a small feature map; anything beyond this is hostile or
// misrouted and is rejected before the JSON decoder buffers it.
const maxClassifyBody = 1 << 20

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if s.model == nil {
		s.classifyOutcome("no_model")
		writeError(w, http.StatusServiceUnavailable, "no classifier loaded")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxClassifyBody)
	var req classifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.classifyOutcome("oversized")
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.classifyOutcome("bad_request")
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Threshold < 0 || req.Threshold > 1 {
		s.classifyOutcome("bad_request")
		writeError(w, http.StatusBadRequest, "threshold must be in [0,1]")
		return
	}
	row := make([]float64, len(s.model.Features))
	unknown := []string{}
	for name, v := range req.Features {
		idx := -1
		for i, f := range s.model.Features {
			if f == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			unknown = append(unknown, name)
			continue
		}
		row[idx] = v
	}
	if len(unknown) > 0 {
		s.classifyOutcome("bad_request")
		writeError(w, http.StatusBadRequest, "unknown features: %v", unknown)
		return
	}
	label, prob, ok := s.model.Classify(row, req.Threshold)
	if ok {
		s.classifyOutcome("classified")
	} else {
		s.classifyOutcome("below_threshold")
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"label":       label,
		"probability": prob,
		"classified":  ok,
	})
}
