// Package server exposes the warehouse and a trained job classifier over
// HTTP -- the paper's stated destination for this work: "we do plan to
// develop the machine learning technology that was explored in this work
// into production tools for use in XDMoD". The API mirrors the XDMoD
// views: overview totals, dimensional group-bys, drill-downs, monthly
// utilization, and online classification endpoints (single-row and
// batch) that label SUPReMM summaries with a probability threshold. The
// serving model lives behind a core.ModelManager, so operators can
// retrain and hot-swap it without restarting the server.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/resilience"
	"repro/internal/warehouse"
)

// Server wires the API handlers to a warehouse store and an optional
// classifier.
type Server struct {
	store        *warehouse.Store
	models       *core.ModelManager
	discovery    *core.DiscoveryManager
	runtime      *core.ModelManager
	machineNodes int
	mux          *http.ServeMux
	handler      http.Handler

	metrics      *obs.Registry
	log          *obs.Logger
	pprof        bool
	batchWorkers int
	bootStamp    int64
	flight       *flight.Recorder

	resilience ResilienceConfig
	limiter    *resilience.Limiter
	breakerCfg resilience.BreakerConfig
	breaker    *resilience.Breaker
	faults     *resilience.Faults

	lifecyclePending *lifecycleSetup
	lifecycle        *lifecycle.Loop
	lifecycleCh      chan struct{}
}

// New builds a server. model may be nil (the classify endpoints then
// return 503 until a model is swapped in); it seeds the server's model
// manager unless WithModelManager supplies one. machineNodes sizes the
// utilization report. Options add metrics (/metrics), structured
// logging, and pprof endpoints.
func New(store *warehouse.Store, model *core.JobClassifier, machineNodes int, opts ...Option) *Server {
	s := &Server{
		store: store, machineNodes: machineNodes,
		mux:       http.NewServeMux(),
		bootStamp: time.Now().UnixNano(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.initResilience()
	if s.models == nil {
		s.models = core.NewModelManager(s.metrics)
		if model != nil {
			if _, err := s.models.Swap(model); err != nil {
				s.log.Error("initial model rejected", "err", err)
			}
		}
	}
	if s.discovery == nil {
		s.discovery = core.NewDiscoveryManager(s.metrics)
	}
	if s.runtime == nil {
		s.runtime = core.NewNamedModelManager(s.metrics, "runtime_class")
	}
	s.mux.HandleFunc("GET /api/overview", s.handleOverview)
	s.mux.HandleFunc("GET /api/groupby", s.handleGroupBy)
	s.mux.HandleFunc("GET /api/drilldown", s.handleDrillDown)
	s.mux.HandleFunc("GET /api/utilization", s.handleUtilization)
	s.mux.HandleFunc("GET /api/features", s.handleFeatures)
	s.mux.HandleFunc("POST /api/classify", s.handleClassify)
	s.mux.HandleFunc("POST /api/classify/batch", s.handleClassifyBatch)
	s.mux.HandleFunc("GET /api/discover", s.handleDiscoverGet)
	s.mux.HandleFunc("POST /api/discover", s.handleDiscoverRefit)
	s.mux.HandleFunc("POST /api/discover/assign", s.handleDiscoverAssign)
	s.mux.HandleFunc("GET /api/runtime-class/features", s.handleRuntimeFeatures)
	s.mux.HandleFunc("POST /api/runtime-class", s.handleRuntimeClass)
	s.mux.HandleFunc("POST /admin/model/reload", s.handleModelReload)
	s.initLifecycle()
	s.mux.HandleFunc("GET /api/lifecycle", s.handleLifecycleStatus)
	s.mux.HandleFunc("POST /admin/lifecycle/retrain", s.handleLifecycleRetrain)
	s.mux.HandleFunc("POST /admin/lifecycle/promote", s.handleLifecyclePromote)
	s.mux.HandleFunc("POST /admin/lifecycle/rollback", s.handleLifecycleRollback)
	s.mountDebug()
	s.handler = s.wrap(s.mux)
	return s
}

// Models exposes the server's model manager (for boot-time loading and
// signal-driven reloads).
func (s *Server) Models() *core.ModelManager { return s.models }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// writeJSON encodes v after committing status. Encode failures past that
// point cannot change the response code, so they are logged and counted
// in http_encode_errors_total instead of silently dropped: a truncated
// response body is observable, not invisible.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.metrics.Counter("http_encode_errors_total").Inc()
		s.log.Warn("response encode failed", "status", status, "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleOverview(w http.ResponseWriter, r *http.Request) {
	t := s.store.Totals()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"jobs":      t.Jobs,
		"cpuHours":  t.CPUHours,
		"wallHours": t.WallHours,
	})
}

// validDims lists the dimensions the API accepts.
var validDims = map[warehouse.Dimension]bool{
	warehouse.ByApplication: true, warehouse.ByCategory: true,
	warehouse.ByUser: true, warehouse.ByPopulation: true,
	warehouse.ByJobSize: true, warehouse.ByMonth: true,
}

func parseDim(r *http.Request, param string) (warehouse.Dimension, error) {
	d := warehouse.Dimension(r.URL.Query().Get(param))
	if !validDims[d] {
		return "", fmt.Errorf("unknown or missing dimension %q", d)
	}
	return d, nil
}

func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	dim, err := parseDim(r, "dim")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type row struct {
		Key        string  `json:"key"`
		Jobs       int     `json:"jobs"`
		MixPercent float64 `json:"mixPercent"`
		CPUHours   float64 `json:"cpuHours"`
		AvgNodes   float64 `json:"avgNodes"`
		AvgWaitHrs float64 `json:"avgWaitHours"`
	}
	// Initialized (not declared nil) so an empty warehouse encodes as [],
	// never null.
	out := []row{}
	for _, g := range s.store.GroupBy(dim) {
		out = append(out, row{g.Key, g.Jobs, g.MixPercent, g.CPUHours, g.AvgNodes, g.AvgWaitHrs})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDrillDown(w http.ResponseWriter, r *http.Request) {
	outer, err := parseDim(r, "outer")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	inner, err := parseDim(r, "inner")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type innerRow struct {
		Key        string  `json:"key"`
		Jobs       int     `json:"jobs"`
		MixPercent float64 `json:"mixPercent"`
	}
	type group struct {
		Key   string     `json:"key"`
		Jobs  int        `json:"jobs"`
		Inner []innerRow `json:"inner"`
	}
	out := []group{}
	for _, g := range s.store.DrillDown(outer, inner) {
		gg := group{Key: g.Key, Jobs: g.Jobs, Inner: []innerRow{}}
		for _, in := range g.Inner {
			gg.Inner = append(gg.Inner, innerRow{in.Key, in.Jobs, in.MixPercent})
		}
		out = append(out, gg)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleUtilization(w http.ResponseWriter, r *http.Request) {
	nodes := s.machineNodes
	if q := r.URL.Query().Get("nodes"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			s.writeError(w, http.StatusBadRequest, "bad nodes parameter %q", q)
			return
		}
		nodes = n
	}
	if nodes <= 0 {
		s.writeError(w, http.StatusBadRequest, "machine node count not configured; pass ?nodes=N")
		return
	}
	pts := s.store.Utilization(nodes)
	if pts == nil {
		pts = []warehouse.UtilizationPoint{}
	}
	s.writeJSON(w, http.StatusOK, pts)
}

func (s *Server) handleFeatures(w http.ResponseWriter, r *http.Request) {
	v := s.models.View()
	if v == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no classifier loaded")
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"algorithm":  v.Model.Algo,
		"features":   v.Model.Features,
		"classes":    v.Model.Classes(),
		"generation": v.Generation,
		"compiled":   v.Compiled(),
	})
}

// classifyRequest is the classification endpoint's body: a feature map
// keyed by attribute name. Attributes the model knows but the request
// omits default to 0 and are reported back in the response's "defaulted"
// field; an entirely empty map is rejected.
type classifyRequest struct {
	Features  map[string]float64 `json:"features"`
	Threshold float64            `json:"threshold"`
}

// classifyResult is one row's classification. The single and batch
// endpoints share it, so a batch element is byte-identical to the
// corresponding single-row response.
type classifyResult struct {
	Label       string   `json:"label"`
	Probability float64  `json:"probability"`
	Classified  bool     `json:"classified"`
	Defaulted   []string `json:"defaulted"`
}

// maxClassifyBody caps the classification request body. A legitimate
// request is a small feature map; anything beyond this is hostile or
// misrouted and is rejected before the JSON decoder buffers it.
const maxClassifyBody = 1 << 20

// resolveRow maps a name-keyed feature map onto the model's feature
// vector using the view's prebuilt index: O(F + len(features)) total,
// replacing the old per-attribute linear scan over Features (O(F^2) for
// a full request). defaulted lists model features absent from the
// request (in model feature order); unknown lists request keys the model
// does not recognize.
func resolveRow(v *core.ModelView, features map[string]float64) (row []float64, defaulted, unknown []string) {
	row = make([]float64, v.NumFeatures())
	defaulted = []string{}
	for name, val := range features {
		idx, ok := v.FeatureIndex(name)
		if !ok {
			unknown = append(unknown, name)
			continue
		}
		row[idx] = val
	}
	for _, name := range v.Model.Features {
		if _, ok := features[name]; !ok {
			defaulted = append(defaulted, name)
		}
	}
	return row, defaulted, unknown
}

// classifyRow runs one resolved row through the model, recording the
// per-row outcome counter and latency histogram. It honours the request
// deadline and the classify.row fault site: an expired context aborts
// the row before inference (callers map it to 504), an injected error
// fails it, and an injected panic propagates so the isolation layers
// (pool PanicError for batch, middleware recovery for single) can prove
// they contain it.
func (s *Server) classifyRow(ctx context.Context, v *core.ModelView, row []float64, defaulted []string, threshold float64) (classifyResult, error) {
	if fired, err := s.faults.InjectReport(FaultClassifyRow); fired {
		// Injected latency and errors alike are fault hits the wide
		// event attributes; a fired latency fault falls through to real
		// inference with err == nil.
		flight.From(ctx).MarkFault()
		if err != nil {
			s.classifyOutcome("error")
			return classifyResult{}, err
		}
	}
	if err := ctx.Err(); err != nil {
		s.classifyOutcome("timeout")
		return classifyResult{}, err
	}
	start := time.Now()
	label, prob, ok := v.Model.Classify(row, threshold)
	s.metrics.Histogram("classify_row_seconds", rowLatencyBuckets()).ObserveDuration(start)
	if ok {
		s.classifyOutcome("classified")
	} else {
		s.classifyOutcome("below_threshold")
	}
	// The lifecycle loop observes every successfully inferred row: the
	// served answer above is already final, so drift accounting and
	// shadow scoring cannot perturb it (nil-safe no-op when disabled).
	s.lifecycle.Observe(ctx, row, label)
	return classifyResult{Label: label, Probability: prob, Classified: ok, Defaulted: defaulted}, nil
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	v := s.models.View()
	if v == nil {
		s.classifyOutcome("no_model")
		s.writeError(w, http.StatusServiceUnavailable, "no classifier loaded")
		return
	}
	v.Annotate(flight.From(r.Context()))
	r.Body = http.MaxBytesReader(w, r.Body, maxClassifyBody)
	var req classifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.classifyOutcome("oversized")
			s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.classifyOutcome("bad_request")
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Threshold < 0 || req.Threshold > 1 {
		s.classifyOutcome("bad_request")
		s.writeError(w, http.StatusBadRequest, "threshold must be in [0,1]")
		return
	}
	if len(req.Features) == 0 {
		// An empty map would silently classify an all-zero row; reject it
		// so schema drift on the client shows up as an error, not as a
		// confident nonsense label.
		s.classifyOutcome("bad_request")
		s.writeError(w, http.StatusBadRequest, "empty or missing features map")
		return
	}
	row, defaulted, unknown := resolveRow(v, req.Features)
	if len(unknown) > 0 {
		sort.Strings(unknown)
		s.classifyOutcome("bad_request")
		s.writeError(w, http.StatusBadRequest, "unknown features: %v", unknown)
		return
	}
	// Observe the single row's inference time into the wide event the
	// same way the batch fan-out does, so RowNS/Rows mean one thing.
	rowStart := time.Now()
	res, err := s.classifyRow(r.Context(), v, row, defaulted, req.Threshold)
	flight.From(r.Context()).Timer().Observe(time.Since(rowStart))
	if err != nil {
		s.rowError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}
