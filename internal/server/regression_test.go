package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/warehouse"
)

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}

// emptyStoreServer serves an empty warehouse with no model loaded.
func emptyStoreServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	srv := httptest.NewServer(New(warehouse.NewStore(), nil, 8, WithMetrics(reg)))
	t.Cleanup(srv.Close)
	return srv, reg
}

// TestEmptyResultsEncodeAsArrays pins the nil-slice regression: an empty
// warehouse must answer group-by and drill-down with JSON [] (a nil Go
// slice encodes as null, which breaks array-iterating clients).
func TestEmptyResultsEncodeAsArrays(t *testing.T) {
	srv, _ := emptyStoreServer(t)
	for _, path := range []string{
		"/api/groupby?dim=application",
		"/api/drilldown?outer=population&inner=jobsize",
		"/api/utilization?nodes=5",
	} {
		resp, body := get(t, srv.URL+path)
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
			continue
		}
		if got := strings.TrimSpace(body); got != "[]" {
			t.Errorf("%s: body %q, want []", path, got)
		}
	}
}

// TestDrillDownInnerNeverNull checks the nested slice on a populated
// store: no group may carry "inner": null.
func TestDrillDownInnerNeverNull(t *testing.T) {
	srv, _ := obsServer(t)
	resp, body := get(t, srv.URL+"/api/drilldown?outer=population&inner=jobsize")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if strings.Contains(body, "null") {
		t.Errorf("drilldown body contains null:\n%s", body)
	}
}

// TestClassifyEmptyFeaturesRejected pins the silent-all-zero-row bug: a
// missing or empty features map must be a 400, not a confident label.
func TestClassifyEmptyFeaturesRejected(t *testing.T) {
	srv, reg := obsServer(t)
	for _, body := range []string{
		`{}`,
		`{"threshold":0.5}`,
		`{"features":{},"threshold":0.5}`,
		`{"features":null,"threshold":0.5}`,
	} {
		status, msg := postClassify(t, srv.URL, body)
		if status != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, status)
		}
		if !strings.Contains(msg, "features") {
			t.Errorf("body %q: error %q does not mention features", body, msg)
		}
	}
	if got := reg.Counter("classify_outcomes_total", "outcome", "bad_request").Value(); got != 4 {
		t.Errorf("bad_request counter = %d, want 4", got)
	}
}

// TestClassifyReportsDefaulted checks the schema-drift signal: features
// the model knows but the request omits come back in "defaulted" (model
// feature order), and a complete request reports an empty array, not
// null.
func TestClassifyReportsDefaulted(t *testing.T) {
	srv, _ := obsServer(t)
	names := featureNames(t, srv.URL)

	partial := map[string]float64{names[0]: 0.5, names[2]: 1}
	code, body := postJSON(t, srv.URL+"/api/classify", map[string]any{"features": partial, "threshold": 0})
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var out struct {
		Defaulted []string `json:"defaulted"`
	}
	mustUnmarshal(t, body, &out)
	want := []string{}
	for i, n := range names {
		if i != 0 && i != 2 {
			want = append(want, n)
		}
	}
	if len(out.Defaulted) != len(want) {
		t.Fatalf("defaulted = %v, want %v", out.Defaulted, want)
	}
	for i := range want {
		if out.Defaulted[i] != want[i] {
			t.Fatalf("defaulted[%d] = %q, want %q (model feature order)", i, out.Defaulted[i], want[i])
		}
	}

	full := map[string]float64{}
	for _, n := range names {
		full[n] = 0.5
	}
	code, body = postJSON(t, srv.URL+"/api/classify", map[string]any{"features": full, "threshold": 0})
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(string(body), `"defaulted":[]`) {
		t.Errorf(`complete request must carry "defaulted":[], got %s`, body)
	}
}

// TestWriteJSONEncodeErrorsObservable pins the writeJSON bugfix: encode
// failures after the status is committed are logged and counted instead
// of discarded.
func TestWriteJSONEncodeErrorsObservable(t *testing.T) {
	reg := obs.NewRegistry()
	var buf strings.Builder
	s := New(warehouse.NewStore(), nil, 0, WithMetrics(reg), WithLogger(obs.NewLogger(&buf, obs.LevelWarn)))

	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, make(chan int)) // channels cannot marshal

	if got := reg.Counter("http_encode_errors_total").Value(); got != 1 {
		t.Errorf("http_encode_errors_total = %d, want 1", got)
	}
	if !strings.Contains(buf.String(), "encode") {
		t.Errorf("encode failure not logged: %q", buf.String())
	}
	if rec.Code != http.StatusOK {
		t.Errorf("status %d (already committed before the encode)", rec.Code)
	}

	// A healthy write touches neither the counter nor the log.
	s.writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]int{"ok": 1})
	if got := reg.Counter("http_encode_errors_total").Value(); got != 1 {
		t.Errorf("healthy write bumped the counter to %d", got)
	}
}
