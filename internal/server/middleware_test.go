package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// obsServer builds an instrumented server over a small pipeline run.
func obsServer(t *testing.T, opts ...Option) (*httptest.Server, *obs.Registry) {
	t.Helper()
	res, err := core.RunPipeline(core.DefaultPipelineConfig(91, 200))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.TrainJobClassifier(ds, core.PaperForest(3))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := httptest.NewServer(New(res.Store, model, 6400, append([]Option{WithMetrics(reg)}, opts...)...))
	t.Cleanup(srv.Close)
	return srv, reg
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := obsServer(t)

	// Drive some traffic first so counters and histograms have samples.
	if resp, _ := get(t, srv.URL+"/api/overview"); resp.StatusCode != 200 {
		t.Fatalf("overview status %d", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/api/groupby?dim=bogus"); resp.StatusCode != 400 {
		t.Fatalf("bad groupby status %d", resp.StatusCode)
	}
	body, _ := json.Marshal(map[string]any{"features": map[string]float64{}, "threshold": 0.0})
	resp, err := http.Post(srv.URL+"/api/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, text := get(t, srv.URL+"/metrics")
	if mresp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		`http_requests_total{code="200",path="/api/overview"} 1`,
		`http_requests_total{code="400",path="/api/groupby"} 1`,
		`http_request_seconds_bucket{path="/api/overview",le="+Inf"} 1`,
		`http_request_seconds_count{path="/api/overview"} 1`,
		"# TYPE http_requests_total counter",
		"# TYPE http_request_seconds histogram",
		"# HELP classify_outcomes_total",
		`classify_outcomes_total{outcome="`,
		"http_in_flight_requests 1", // the /metrics request itself
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n--- exposition ---\n%s", want, text)
		}
	}
}

func TestClassifyOutcomeCounters(t *testing.T) {
	srv, reg := obsServer(t)
	post := func(body string) {
		resp, err := http.Post(srv.URL+"/api/classify", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	post("garbage")
	post(`{"features":{"NOPE":1},"threshold":0.5}`)
	post(`{"features":{"CPU_USER":0.9},"threshold":0.0}`)  // classifies (threshold 0 accepts anything)
	post(`{"features":{"CPU_USER":0.9},"threshold":0.99}`) // almost surely below threshold

	if got := reg.Counter("classify_outcomes_total", "outcome", "bad_request").Value(); got != 2 {
		t.Errorf("bad_request = %d, want 2", got)
	}
	cls := reg.Counter("classify_outcomes_total", "outcome", "classified").Value()
	below := reg.Counter("classify_outcomes_total", "outcome", "below_threshold").Value()
	if cls+below != 2 {
		t.Errorf("classified=%d below_threshold=%d, want total 2", cls, below)
	}
}

func TestRequestIDMiddleware(t *testing.T) {
	srv, _ := obsServer(t)

	resp, _ := get(t, srv.URL+"/api/overview")
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no generated X-Request-ID")
	}

	req, _ := http.NewRequest("GET", srv.URL+"/api/overview", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-7")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "caller-supplied-7" {
		t.Errorf("inbound request id not echoed: %q", got)
	}
}

func TestPanicRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	var buf strings.Builder
	s := New(nil, nil, 0, WithMetrics(reg), WithLogger(obs.NewLogger(&buf, obs.LevelError)))
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))

	if rec.Code != http.StatusInternalServerError {
		t.Errorf("panicking handler -> %d, want 500", rec.Code)
	}
	if got := reg.Counter("http_panics_total").Value(); got != 1 {
		t.Errorf("panic counter = %d", got)
	}
	if !strings.Contains(buf.String(), "kaboom") {
		t.Errorf("panic not logged: %q", buf.String())
	}
}

func TestPprofGated(t *testing.T) {
	srv, _ := obsServer(t)
	if resp, _ := get(t, srv.URL+"/debug/pprof/"); resp.StatusCode == 200 {
		t.Error("pprof served without WithPprof")
	}

	srvOn, _ := obsServer(t, WithPprof())
	resp, body := get(t, srvOn.URL+"/debug/pprof/")
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Error("pprof index missing profile listing")
	}
	if resp, _ := get(t, srvOn.URL+"/debug/pprof/symbol"); resp.StatusCode != 200 {
		t.Errorf("pprof symbol status %d", resp.StatusCode)
	}
}

func TestStatusWriterFlushAndUnwrap(t *testing.T) {
	s := New(nil, nil, 0)
	flushed := false
	s.mux.HandleFunc("GET /stream", func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("middleware-wrapped writer does not implement http.Flusher")
			return
		}
		io.WriteString(w, "chunk")
		f.Flush()
		flushed = true
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok || u.Unwrap() == nil {
			t.Error("middleware-wrapped writer does not Unwrap to the underlying writer")
		}
	})

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/stream", nil))
	if !flushed {
		t.Fatal("handler never reached Flush")
	}
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying ResponseWriter")
	}
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d, want 200", rec.Code)
	}
}

func TestUninstrumentedServerStillWorks(t *testing.T) {
	res, err := core.RunPipeline(core.DefaultPipelineConfig(92, 60))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(res.Store, nil, 100))
	defer srv.Close()
	if resp, _ := get(t, srv.URL+"/api/overview"); resp.StatusCode != 200 {
		t.Errorf("overview status %d", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/metrics"); resp.StatusCode == 200 {
		t.Error("/metrics served without WithMetrics")
	}
	// Middleware still assigns request IDs even with no registry/logger.
	resp, _ := get(t, srv.URL+"/api/overview")
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no request id on uninstrumented server")
	}
}
