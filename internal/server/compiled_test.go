package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"repro/internal/core"
)

// TestClassifyServesCompiledEngine proves the HTTP serving path runs on
// the compiled engine with no API change: the features endpoint
// advertises it, and every single-classify response is bit-identical to
// the interpreted reference for the same row (JSON float64 encoding is
// round-trip exact, so the comparison really is bitwise).
func TestClassifyServesCompiledEngine(t *testing.T) {
	srv, res := testServer(t)

	var meta struct {
		Features []string `json:"features"`
		Compiled bool     `json:"compiled"`
	}
	if code := getJSON(t, srv.URL+"/api/features", &meta); code != 200 {
		t.Fatalf("features status %d", code)
	}
	if !meta.Compiled {
		t.Fatal("features endpoint does not advertise the compiled engine")
	}

	// Rebuild the interpreted reference from the same training inputs the
	// harness used.
	ds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.TrainJobClassifier(ds, core.PaperForest(3))
	if err != nil {
		t.Fatal(err)
	}

	checked := 0
	for _, rec := range res.Records {
		if _, ok := core.LabelByCategory(rec); !ok {
			continue
		}
		if checked >= 10 {
			break
		}
		checked++
		row := core.Featurize(rec.Summary, core.DefaultFeatures())
		features := map[string]float64{}
		for i, name := range meta.Features {
			features[name] = row[i]
		}
		body, _ := json.Marshal(map[string]any{"features": features, "threshold": 0.25})
		resp, err := http.Post(srv.URL+"/api/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Label       string  `json:"label"`
			Probability float64 `json:"probability"`
			Classified  bool    `json:"classified"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("classify status %d", resp.StatusCode)
		}
		wantLabel, wantProb, wantOK := ref.ClassifyInterpreted(row, 0.25)
		if out.Label != wantLabel || out.Classified != wantOK ||
			math.Float64bits(out.Probability) != math.Float64bits(wantProb) {
			t.Fatalf("HTTP compiled response (%q, %x, %v) diverges from interpreted (%q, %x, %v)",
				out.Label, math.Float64bits(out.Probability), out.Classified,
				wantLabel, math.Float64bits(wantProb), wantOK)
		}
	}
	if checked == 0 {
		t.Fatal("no labeled records to classify")
	}
}
