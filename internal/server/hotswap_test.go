package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ml/forest"
	"repro/internal/obs"
)

// swapFixture is a server whose manager serves modelA, plus two saved
// compatible models (A and B, same schema, different forests) and one
// incompatible model (narrower feature set) on disk.
type swapFixture struct {
	srv      *httptest.Server
	reg      *obs.Registry
	models   *core.ModelManager
	pathA    string
	pathB    string
	pathBad  string
	features []string
}

func saveModel(t *testing.T, path string, m *core.JobClassifier) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func newSwapFixture(t *testing.T) *swapFixture {
	t.Helper()
	res, err := core.RunPipeline(core.DefaultPipelineConfig(91, 200))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	rf := func(seed uint64, trees int) *core.JobClassifier {
		m, err := core.TrainJobClassifier(ds, core.ClassifierConfig{
			Algo: core.AlgoForest, Forest: forest.Config{Trees: trees, Seed: seed},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	modelA, modelB := rf(3, 40), rf(7, 50)

	// An incompatible schema: same records, narrower feature set.
	dsNarrow, err := core.BuildDataset(res.Records, core.LabelByCategory, core.FeatureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	modelBad, err := core.TrainJobClassifier(dsNarrow, core.ClassifierConfig{Algo: core.AlgoBayes})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	fx := &swapFixture{
		pathA:    filepath.Join(dir, "a.bin"),
		pathB:    filepath.Join(dir, "b.bin"),
		pathBad:  filepath.Join(dir, "bad.bin"),
		features: ds.FeatureNames,
	}
	saveModel(t, fx.pathA, modelA)
	saveModel(t, fx.pathB, modelB)
	saveModel(t, fx.pathBad, modelBad)

	fx.reg = obs.NewRegistry()
	fx.models = core.NewModelManager(fx.reg)
	if _, err := fx.models.ReloadFromFile(fx.pathA); err != nil {
		t.Fatal(err)
	}
	fx.srv = httptest.NewServer(New(res.Store, nil, 6400,
		WithMetrics(fx.reg), WithModelManager(fx.models), WithBatchWorkers(2)))
	t.Cleanup(fx.srv.Close)
	return fx
}

// reload POSTs /admin/model/reload and returns status plus decoded body.
func (fx *swapFixture) reload(t *testing.T, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(fx.srv.URL+"/admin/model/reload", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&payload)
	return resp.StatusCode, payload
}

// classifyBody is a deterministic full-coverage classify request.
func (fx *swapFixture) classifyBody() []byte {
	features := make(map[string]float64, len(fx.features))
	for i, n := range fx.features {
		features[n] = float64(i%5) / 4
	}
	body, _ := json.Marshal(map[string]any{"features": features, "threshold": 0.1})
	return body
}

func TestAdminModelReload(t *testing.T) {
	fx := newSwapFixture(t)

	var meta struct {
		Generation uint64 `json:"generation"`
	}
	if code := getJSON(t, fx.srv.URL+"/api/features", &meta); code != 200 || meta.Generation != 1 {
		t.Fatalf("boot generation = %d (status %d)", meta.Generation, code)
	}

	status, payload := fx.reload(t, `{"path":"`+fx.pathB+`"}`)
	if status != 200 {
		t.Fatalf("reload status %d: %v", status, payload)
	}
	if gen, _ := payload["generation"].(float64); gen != 2 {
		t.Fatalf("reload reported generation %v, want 2", payload["generation"])
	}
	if code := getJSON(t, fx.srv.URL+"/api/features", &meta); code != 200 || meta.Generation != 2 {
		t.Fatalf("post-reload generation = %d", meta.Generation)
	}

	// An empty body reloads the remembered path (now pathB).
	if status, payload = fx.reload(t, ``); status != 200 {
		t.Fatalf("bare reload status %d: %v", status, payload)
	}
	if gen, _ := payload["generation"].(float64); gen != 3 {
		t.Fatalf("bare reload generation %v, want 3", payload["generation"])
	}

	// A missing file is a 400 and leaves the serving model alone.
	if status, _ = fx.reload(t, `{"path":"/nonexistent/model.bin"}`); status != 400 {
		t.Fatalf("missing file reload status %d, want 400", status)
	}
	if fx.models.Generation() != 3 {
		t.Fatalf("failed reload bumped generation to %d", fx.models.Generation())
	}

	resp, err := http.Post(fx.srv.URL+"/api/classify", "application/json", bytes.NewReader(fx.classifyBody()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("classify after reloads: status %d", resp.StatusCode)
	}
}

func TestReloadSchemaMismatchKeepsServing(t *testing.T) {
	fx := newSwapFixture(t)

	status, payload := fx.reload(t, `{"path":"`+fx.pathBad+`"}`)
	if status != http.StatusConflict {
		t.Fatalf("schema-mismatch reload status %d, want 409 (%v)", status, payload)
	}
	if fx.models.Generation() != 1 {
		t.Fatalf("rejected reload bumped generation to %d", fx.models.Generation())
	}
	if got := fx.reg.Counter("model_swap_total", "outcome", "rejected").Value(); got != 1 {
		t.Errorf("rejected swap counter = %d", got)
	}
	// The old model still classifies.
	resp, err := http.Post(fx.srv.URL+"/api/classify", "application/json", bytes.NewReader(fx.classifyBody()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("classify after rejected reload: status %d", resp.StatusCode)
	}
}

// TestHotSwapUnderLoad is the acceptance gate for atomic swap: sustained
// single and batch classify traffic while the model flips between two
// generations must see zero failed requests and zero torn reads -- every
// response byte-equal to what one of the two models produces. Run under
// -race via make race.
func TestHotSwapUnderLoad(t *testing.T) {
	fx := newSwapFixture(t)
	body := fx.classifyBody()

	// Reference responses for each generation, captured with the swap
	// quiesced.
	classify := func() []byte {
		resp, err := http.Post(fx.srv.URL+"/api/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("classify status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.Bytes()
	}
	wantA := classify()
	if status, _ := fx.reload(t, `{"path":"`+fx.pathB+`"}`); status != 200 {
		t.Fatal("priming reload failed")
	}
	wantB := classify()
	if bytes.Equal(wantA, wantB) {
		t.Fatal("fixture models classify identically; the torn-read check would be vacuous")
	}

	const clients = 4
	const perClient = 40
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(fx.srv.URL+"/api/classify", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err.Error()
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- "status " + resp.Status
					return
				}
				if got := buf.Bytes(); !bytes.Equal(got, wantA) && !bytes.Equal(got, wantB) {
					errs <- "torn response: " + buf.String()
					return
				}
			}
		}()
	}

	// Flip the model while the clients hammer it.
	paths := [2]string{fx.pathA, fx.pathB}
	for i := 0; i < 24; i++ {
		if status, payload := fx.reload(t, `{"path":"`+paths[i%2]+`"}`); status != 200 {
			close(stop)
			wg.Wait()
			t.Fatalf("reload %d failed: %v", i, payload)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// 2 priming swaps in the fixture/reference setup + 24 here.
	if got := fx.reg.Counter("model_swap_total", "outcome", "ok").Value(); got != 26 {
		t.Errorf("ok swap counter = %d, want 26", got)
	}
}
