package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// featureNames fetches the serving model's feature layout.
func featureNames(t *testing.T, url string) []string {
	t.Helper()
	var meta struct {
		Features []string `json:"features"`
	}
	if code := getJSON(t, url+"/api/features", &meta); code != 200 {
		t.Fatalf("/api/features status %d", code)
	}
	if len(meta.Features) == 0 {
		t.Fatal("no features")
	}
	return meta.Features
}

// postJSON posts v and returns the status plus raw response body.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

// parityRows builds n deterministic feature maps with varying coverage:
// row i carries a different value pattern, and every third row omits a
// feature so the defaulted field varies too.
func parityRows(names []string, n int) []map[string]float64 {
	rows := make([]map[string]float64, n)
	for i := range rows {
		m := make(map[string]float64, len(names))
		for j, name := range names {
			if i%3 == 2 && j == i%len(names) {
				continue // omitted -> defaulted to zero server-side
			}
			m[name] = float64((i*7+j*3)%11) / 10
		}
		rows[i] = m
	}
	return rows
}

type batchReply struct {
	Results []json.RawMessage `json:"results"`
	Summary struct {
		Rows           int            `json:"rows"`
		Classified     int            `json:"classified"`
		BelowThreshold int            `json:"belowThreshold"`
		ByLabel        map[string]int `json:"byLabel"`
	} `json:"summary"`
	Generation uint64 `json:"generation"`
}

// TestBatchParityWithSingle is the acceptance gate: a batch over N rows
// is byte-identical, row for row, to N single /api/classify calls, at
// batch worker counts 1 and 4.
func TestBatchParityWithSingle(t *testing.T) {
	var bodies [][]byte
	for _, workers := range []int{1, 4} {
		srv, _ := obsServer(t, WithBatchWorkers(workers))
		names := featureNames(t, srv.URL)
		rows := parityRows(names, 9)

		singles := make([][]byte, len(rows))
		for i, features := range rows {
			code, body := postJSON(t, srv.URL+"/api/classify",
				map[string]any{"features": features, "threshold": 0.6})
			if code != 200 {
				t.Fatalf("single classify row %d: status %d: %s", i, code, body)
			}
			singles[i] = bytes.TrimSpace(body)
		}

		code, body := postJSON(t, srv.URL+"/api/classify/batch",
			map[string]any{"rows": rows, "threshold": 0.6})
		if code != 200 {
			t.Fatalf("batch (workers=%d): status %d: %s", workers, code, body)
		}
		var reply batchReply
		if err := json.Unmarshal(body, &reply); err != nil {
			t.Fatal(err)
		}
		if len(reply.Results) != len(rows) {
			t.Fatalf("batch returned %d results for %d rows", len(reply.Results), len(rows))
		}
		for i, raw := range reply.Results {
			if !bytes.Equal(bytes.TrimSpace(raw), singles[i]) {
				t.Errorf("workers=%d row %d diverges:\n batch:  %s\n single: %s",
					workers, i, raw, singles[i])
			}
		}
		if reply.Generation != 1 {
			t.Errorf("generation = %d, want 1", reply.Generation)
		}
		bodies = append(bodies, body)
	}
	// The same batch at worker counts 1 and 4 is byte-identical end to
	// end (identical servers are seeded identically).
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Error("batch response differs between 1 and 4 workers")
	}
}

// TestBatchColumnMajorParity feeds the same batch in both wire forms and
// expects identical per-row results.
func TestBatchColumnMajorParity(t *testing.T) {
	srv, _ := obsServer(t)
	names := featureNames(t, srv.URL)
	const n = 6
	cols := make(map[string][]float64, len(names))
	rows := make([]map[string]float64, n)
	for i := range rows {
		rows[i] = map[string]float64{}
	}
	for j, name := range names {
		col := make([]float64, n)
		for i := range col {
			col[i] = float64((i*5+j)%7) / 6
			rows[i][name] = col[i]
		}
		cols[name] = col
	}

	codeR, bodyR := postJSON(t, srv.URL+"/api/classify/batch", map[string]any{"rows": rows, "threshold": 0.5})
	codeC, bodyC := postJSON(t, srv.URL+"/api/classify/batch", map[string]any{"columns": cols, "threshold": 0.5})
	if codeR != 200 || codeC != 200 {
		t.Fatalf("statuses %d / %d", codeR, codeC)
	}
	if !bytes.Equal(bodyR, bodyC) {
		t.Errorf("row-major and column-major responses differ:\n%s\n%s", bodyR, bodyC)
	}
}

func TestBatchSummaryAndMetrics(t *testing.T) {
	srv, reg := obsServer(t)
	names := featureNames(t, srv.URL)
	rows := parityRows(names, 5)
	code, body := postJSON(t, srv.URL+"/api/classify/batch", map[string]any{"rows": rows, "threshold": 0})
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var reply batchReply
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatal(err)
	}
	// Threshold 0 classifies every row.
	if reply.Summary.Rows != 5 || reply.Summary.Classified != 5 || reply.Summary.BelowThreshold != 0 {
		t.Errorf("summary = %+v", reply.Summary)
	}
	total := 0
	for _, n := range reply.Summary.ByLabel {
		total += n
	}
	if total != 5 {
		t.Errorf("byLabel sums to %d, want 5", total)
	}

	if h := reg.Histogram("classify_batch_rows", nil); h.Count() != 1 || h.Sum() != 5 {
		t.Errorf("classify_batch_rows count=%d sum=%v, want 1/5", h.Count(), h.Sum())
	}
	if h := reg.Histogram("classify_row_seconds", nil); h.Count() != 5 {
		t.Errorf("classify_row_seconds count=%d, want 5", h.Count())
	}
	if got := reg.Counter("classify_outcomes_total", "outcome", "classified").Value(); got != 5 {
		t.Errorf("classified counter = %d, want 5 (one per batch row)", got)
	}
}

func TestBatchValidation(t *testing.T) {
	srv, reg := obsServer(t)
	names := featureNames(t, srv.URL)
	post := func(body string) (int, string) {
		resp, err := http.Post(srv.URL+"/api/classify/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var payload map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&payload)
		msg, _ := payload["error"].(string)
		return resp.StatusCode, msg
	}

	cases := []struct {
		name, body, wantMsg string
	}{
		{"garbage", "not json", "bad request body"},
		{"neither form", `{"threshold":0.5}`, "empty batch"},
		{"both forms", fmt.Sprintf(`{"rows":[{"%s":1}],"columns":{"%s":[1]},"threshold":0.5}`, names[0], names[0]), "both rows and columns"},
		{"bad threshold", fmt.Sprintf(`{"rows":[{"%s":1}],"threshold":2}`, names[0]), "threshold"},
		{"empty row", fmt.Sprintf(`{"rows":[{"%s":1},{}],"threshold":0.5}`, names[0]), "row 1"},
		{"unknown row feature", `{"rows":[{"BOGUS":1}],"threshold":0.5}`, "unknown features"},
		{"unknown column", `{"columns":{"BOGUS":[1,2]},"threshold":0.5}`, "unknown features"},
		{"ragged columns", fmt.Sprintf(`{"columns":{"%s":[1,2],"%s":[1]},"threshold":0.5}`, names[0], names[1]), "values"},
		{"empty columns", fmt.Sprintf(`{"columns":{"%s":[]},"threshold":0.5}`, names[0]), "no rows"},
	}
	for _, tc := range cases {
		status, msg := post(tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
		}
		if !strings.Contains(msg, tc.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", tc.name, msg, tc.wantMsg)
		}
	}
	if got := reg.Counter("classify_outcomes_total", "outcome", "bad_request").Value(); got != uint64(len(cases)) {
		t.Errorf("bad_request counter = %d, want %d", got, len(cases))
	}

	// Over the row cap: 400 before any inference happens.
	var sb strings.Builder
	sb.WriteString(`{"rows":[`)
	for i := 0; i <= maxBatchRows; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"%s":1}`, names[0])
	}
	sb.WriteString(`],"threshold":0.5}`)
	if status, msg := post(sb.String()); status != http.StatusBadRequest || !strings.Contains(msg, "limit") {
		t.Errorf("over-cap batch: status %d msg %q", status, msg)
	}
	if got := reg.Histogram("classify_row_seconds", nil).Count(); got != 0 {
		t.Errorf("rejected batches ran %d rows of inference", got)
	}
}

func TestBatchNoModel(t *testing.T) {
	srv, _ := emptyStoreServer(t)
	code, _ := postJSON(t, srv.URL+"/api/classify/batch", map[string]any{"rows": []map[string]float64{{"X": 1}}})
	if code != http.StatusServiceUnavailable {
		t.Errorf("batch without model -> %d, want 503", code)
	}
}
