package server

import (
	"errors"
	"net/http"

	"repro/internal/lifecycle"
	"repro/internal/resilience"
)

// lifecycleSetup carries the WithLifecycle arguments until New has
// built the pieces the loop plugs into (manager, metrics, breaker,
// fault registry).
type lifecycleSetup struct {
	cfg  lifecycle.Config
	opts lifecycle.Options
}

// WithLifecycle arms the closed-loop model lifecycle: drift monitoring
// over live classify traffic, shadow retraining, and significance-gated
// champion–challenger promotion. Options left nil are wired to the
// server's own pieces: Manager to the serving model manager, Registry
// to /metrics, Faults to the server's registry, and Guard to the shared
// control-plane breaker (the one model reloads trip). The caller
// normally supplies Baseline and Trainer; a loop without a trainer
// only monitors drift.
func WithLifecycle(cfg lifecycle.Config, opts lifecycle.Options) Option {
	return func(s *Server) { s.lifecyclePending = &lifecycleSetup{cfg: cfg, opts: opts} }
}

// initLifecycle finishes the loop's wiring once the server's manager,
// metrics, breaker and faults exist. Called from New, after
// initResilience and manager construction.
func (s *Server) initLifecycle() {
	p := s.lifecyclePending
	if p == nil {
		return
	}
	o := p.opts
	if o.Manager == nil {
		o.Manager = s.models
	}
	if o.Registry == nil {
		o.Registry = s.metrics
	}
	if o.Log == nil {
		o.Log = s.log
	}
	if o.Faults == nil {
		o.Faults = s.faults
	}
	if o.Guard == nil {
		o.Guard = s.controlGuard
	}
	if o.Notify == nil {
		// A buffered poke channel: the host process (cmd/supremm-serve)
		// drains it and calls Step, keeping loop actions off the
		// serving goroutines. Coalescing to one pending poke is fine:
		// Step re-reads the state.
		s.lifecycleCh = make(chan struct{}, 1)
		ch := s.lifecycleCh
		o.Notify = func() {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	}
	loop, err := lifecycle.New(p.cfg, o)
	if err != nil {
		s.log.Error("lifecycle loop rejected", "err", err)
		return
	}
	s.lifecycle = loop
}

// controlGuard is the shared control-plane gate: lifecycle retrains and
// promotions pass through the same breaker as model reloads, so
// repeated failures from any control-plane source fail fast together.
func (s *Server) controlGuard(op func() error) error {
	if err := s.breaker.Allow(); err != nil {
		s.metrics.Counter("model_breaker_rejections_total").Inc()
		return err
	}
	err := op()
	s.breaker.Record(err)
	return err
}

// Lifecycle exposes the loop (nil when WithLifecycle was not used); the
// host process uses it for signal-driven retrains and Step-draining.
func (s *Server) Lifecycle() *lifecycle.Loop { return s.lifecycle }

// LifecycleNotify is the loop's poke channel: a receive means the loop
// wants a Step (drift fired, or the shadow window filled). Nil when the
// lifecycle is disabled or the caller supplied its own Notify.
func (s *Server) LifecycleNotify() <-chan struct{} { return s.lifecycleCh }

// requireLifecycle answers 503 when the loop is not armed.
func (s *Server) requireLifecycle(w http.ResponseWriter) *lifecycle.Loop {
	if s.lifecycle == nil {
		s.writeError(w, http.StatusServiceUnavailable, "lifecycle loop not enabled")
		return nil
	}
	return s.lifecycle
}

// handleLifecycleStatus serves GET /api/lifecycle: the loop's full
// state snapshot (state machine, drift statistics, shadow ledger,
// transitions, last promotion decision).
func (s *Server) handleLifecycleStatus(w http.ResponseWriter, r *http.Request) {
	l := s.requireLifecycle(w)
	if l == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, l.Status())
}

// lifecycleOpError maps a control-plane operation failure onto an HTTP
// status: breaker-open fails fast with Retry-After, precondition
// failures are conflicts, anything else is a 500.
func (s *Server) lifecycleOpError(w http.ResponseWriter, op string, err error) {
	s.log.Warn("lifecycle "+op+" failed", "err", err)
	switch {
	case errors.Is(err, resilience.ErrBreakerOpen):
		w.Header().Set("Retry-After", retryAfterSeconds(s.breaker.RetryAfter()))
		s.writeError(w, http.StatusServiceUnavailable,
			"control-plane breaker open after repeated failures: %v", err)
	case errors.Is(err, lifecycle.ErrNoTrainer),
		errors.Is(err, lifecycle.ErrNoChallenger),
		errors.Is(err, lifecycle.ErrNoHistory):
		s.writeError(w, http.StatusConflict, "lifecycle %s: %v", op, err)
	default:
		s.writeError(w, http.StatusInternalServerError, "lifecycle %s failed: %v", op, err)
	}
}

// handleLifecycleRetrain serves POST /admin/lifecycle/retrain: force a
// challenger retrain (drift need not have fired). On success the loop
// is shadowing the fresh challenger.
func (s *Server) handleLifecycleRetrain(w http.ResponseWriter, r *http.Request) {
	l := s.requireLifecycle(w)
	if l == nil {
		return
	}
	if err := l.Retrain(); err != nil {
		s.lifecycleOpError(w, "retrain", err)
		return
	}
	s.writeJSON(w, http.StatusOK, l.Status())
}

// handleLifecyclePromote serves POST /admin/lifecycle/promote: run the
// promotion gate now. A gate rejection is a successful request — the
// decision (with its reason) comes back in the status; only
// control-plane failures are errors.
func (s *Server) handleLifecyclePromote(w http.ResponseWriter, r *http.Request) {
	l := s.requireLifecycle(w)
	if l == nil {
		return
	}
	if err := l.Decide(); err != nil {
		s.lifecycleOpError(w, "promote", err)
		return
	}
	s.writeJSON(w, http.StatusOK, l.Status())
}

// handleLifecycleRollback serves POST /admin/lifecycle/rollback: swap
// the pre-promotion champion back in (one generation of history).
func (s *Server) handleLifecycleRollback(w http.ResponseWriter, r *http.Request) {
	l := s.requireLifecycle(w)
	if l == nil {
		return
	}
	if err := l.Rollback(); err != nil {
		s.lifecycleOpError(w, "rollback", err)
		return
	}
	s.writeJSON(w, http.StatusOK, l.Status())
}
