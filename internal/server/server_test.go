package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// testServer builds a server over a small real pipeline run.
func testServer(t *testing.T) (*httptest.Server, *core.PipelineResult) {
	t.Helper()
	res, err := core.RunPipeline(core.DefaultPipelineConfig(91, 300))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := core.BuildDataset(res.Records, core.LabelByCategory, core.DefaultFeatures())
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.TrainJobClassifier(ds, core.PaperForest(3))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(res.Store, model, 6400))
	t.Cleanup(srv.Close)
	return srv, res
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestOverview(t *testing.T) {
	srv, res := testServer(t)
	var got struct {
		Jobs     int     `json:"jobs"`
		CPUHours float64 `json:"cpuHours"`
	}
	if code := getJSON(t, srv.URL+"/api/overview", &got); code != 200 {
		t.Fatalf("status %d", code)
	}
	if got.Jobs != len(res.Records) || got.CPUHours <= 0 {
		t.Errorf("overview = %+v", got)
	}
}

func TestGroupBy(t *testing.T) {
	srv, _ := testServer(t)
	var rows []struct {
		Key        string  `json:"key"`
		Jobs       int     `json:"jobs"`
		MixPercent float64 `json:"mixPercent"`
	}
	if code := getJSON(t, srv.URL+"/api/groupby?dim=population", &rows); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(rows) == 0 {
		t.Fatal("no groups")
	}
	var mix float64
	for _, r := range rows {
		mix += r.MixPercent
	}
	if mix < 99.9 || mix > 100.1 {
		t.Errorf("mix percentages sum to %v", mix)
	}
	if code := getJSON(t, srv.URL+"/api/groupby?dim=bogus", nil); code != 400 {
		t.Errorf("bad dimension -> %d, want 400", code)
	}
}

func TestDrillDown(t *testing.T) {
	srv, _ := testServer(t)
	var groups []struct {
		Key   string `json:"key"`
		Jobs  int    `json:"jobs"`
		Inner []struct {
			Key  string `json:"key"`
			Jobs int    `json:"jobs"`
		} `json:"inner"`
	}
	if code := getJSON(t, srv.URL+"/api/drilldown?outer=population&inner=jobsize", &groups); code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, g := range groups {
		total := 0
		for _, in := range g.Inner {
			total += in.Jobs
		}
		if total != g.Jobs {
			t.Errorf("group %s inner jobs %d != %d", g.Key, total, g.Jobs)
		}
	}
	if code := getJSON(t, srv.URL+"/api/drilldown?outer=population", nil); code != 400 {
		t.Errorf("missing inner -> %d", code)
	}
}

func TestUtilization(t *testing.T) {
	srv, _ := testServer(t)
	var pts []struct {
		Month       string  `json:"Month"`
		Utilization float64 `json:"Utilization"`
	}
	if code := getJSON(t, srv.URL+"/api/utilization", &pts); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(pts) == 0 {
		t.Fatal("no utilization points")
	}
	if code := getJSON(t, srv.URL+"/api/utilization?nodes=abc", nil); code != 400 {
		t.Errorf("bad nodes -> %d", code)
	}
}

func TestFeaturesAndClassify(t *testing.T) {
	srv, res := testServer(t)
	var meta struct {
		Features []string `json:"features"`
		Classes  []string `json:"classes"`
	}
	if code := getJSON(t, srv.URL+"/api/features", &meta); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(meta.Features) == 0 || len(meta.Classes) == 0 {
		t.Fatal("empty feature metadata")
	}

	// Classify a real community job's summary through the API.
	var rec *core.JobRecord
	for _, r := range res.Records {
		if _, ok := core.LabelByCategory(r); ok {
			rec = r
			break
		}
	}
	row := core.Featurize(rec.Summary, core.DefaultFeatures())
	features := map[string]float64{}
	for i, name := range meta.Features {
		features[name] = row[i]
	}
	body, _ := json.Marshal(map[string]any{"features": features, "threshold": 0.0})
	resp, err := http.Post(srv.URL+"/api/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("classify status %d", resp.StatusCode)
	}
	var out struct {
		Label       string  `json:"label"`
		Probability float64 `json:"probability"`
		Classified  bool    `json:"classified"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Classified || out.Probability <= 0 || out.Label == "" {
		t.Errorf("classify = %+v", out)
	}
	want, _ := core.LabelByCategory(rec)
	if out.Label != want {
		t.Logf("API label %q vs true %q (misclassification is allowed, just logged)", out.Label, want)
	}
}

func TestClassifyValidation(t *testing.T) {
	srv, _ := testServer(t)
	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/api/classify", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("not json"); code != 400 {
		t.Errorf("garbage body -> %d", code)
	}
	if code := post(`{"features":{"NOPE":1},"threshold":0.5}`); code != 400 {
		t.Errorf("unknown feature -> %d", code)
	}
	if code := post(`{"features":{},"threshold":2}`); code != 400 {
		t.Errorf("bad threshold -> %d", code)
	}
}

func TestNoModelLoaded(t *testing.T) {
	res, err := core.RunPipeline(core.DefaultPipelineConfig(92, 60))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(res.Store, nil, 0))
	defer srv.Close()
	if code := getJSON(t, srv.URL+"/api/features", nil); code != 503 {
		t.Errorf("features without model -> %d", code)
	}
	resp, err := http.Post(srv.URL+"/api/classify", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("classify without model -> %d", resp.StatusCode)
	}
	// Utilization without configured nodes needs the query param.
	if code := getJSON(t, srv.URL+"/api/utilization", nil); code != 400 {
		t.Errorf("utilization without nodes -> %d", code)
	}
	if code := getJSON(t, srv.URL+"/api/utilization?nodes=100", nil); code != 200 {
		t.Errorf("utilization with nodes -> %d", code)
	}
}
