package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/obs/flight"
	"repro/internal/resilience"
)

// This file serves the unknown-app discovery and runtime-class workload
// pack: PCA + k-means over the warehouse's Uncategorized/NA population
// behind GET/POST /api/discover (+ per-job /api/discover/assign
// scoring), and submit-time runtime/outcome class prediction behind
// POST /api/runtime-class. Both artifacts live behind immutable views
// with atomic refit/hot-swap and ride the same admission/deadline/
// breaker governance and flight-recorder middleware as classify.

// WithDiscovery supplies an externally-owned discovery manager (for
// boot-time fitting). Build it with the same registry passed to
// WithMetrics so swap metrics land in one exposition; without this
// option the server builds its own empty manager and /api/discover
// answers 503 until the first refit.
func WithDiscovery(dm *core.DiscoveryManager) Option {
	return func(s *Server) { s.discovery = dm }
}

// WithRuntimeManager supplies an externally-owned manager for the
// runtime-class model. Without it the server builds its own empty
// manager and /api/runtime-class answers 503 until a model is swapped
// in.
func WithRuntimeManager(mm *core.ModelManager) Option {
	return func(s *Server) { s.runtime = mm }
}

// Discovery exposes the server's discovery manager.
func (s *Server) Discovery() *core.DiscoveryManager { return s.discovery }

// RuntimeModels exposes the server's runtime-class model manager.
func (s *Server) RuntimeModels() *core.ModelManager { return s.runtime }

func (s *Server) discoverOutcome(outcome string) {
	s.metrics.Counter("discover_assign_outcomes_total", "outcome", outcome).Inc()
}

func (s *Server) runtimeOutcome(outcome string) {
	s.metrics.Counter("runtime_class_outcomes_total", "outcome", outcome).Inc()
}

// clusterJSON is one served cluster summary; Center keys encode sorted
// (encoding/json orders map keys), so responses are byte-deterministic.
type clusterJSON struct {
	ID            int                     `json:"id"`
	Size          int                     `json:"size"`
	Share         float64                 `json:"share"`
	Anomalous     bool                    `json:"anomalous"`
	MeanDistance  float64                 `json:"meanDistance"`
	Center        map[string]float64      `json:"center"`
	TopDeviations []core.FeatureDeviation `json:"topDeviations"`
}

// handleDiscoverGet reports the serving discovery fit: the cluster
// table, the explained-variance curve (read the knee to see how many
// directions the unlabeled population spans), and the anomaly
// threshold.
func (s *Server) handleDiscoverGet(w http.ResponseWriter, r *http.Request) {
	v := s.discovery.View()
	if v == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no discovery fit loaded")
		return
	}
	v.Annotate(flight.From(r.Context()))
	m := v.Model
	clusters := make([]clusterJSON, len(m.Clusters))
	for i, c := range m.Clusters {
		clusters[i] = clusterJSON{
			ID: c.ID, Size: c.Size, Share: c.Share, Anomalous: c.Anomalous,
			MeanDistance: c.MeanDistance, Center: c.Center, TopDeviations: c.TopDeviations,
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"generation":        v.Generation,
		"k":                 m.K,
		"rows":              m.Rows,
		"seed":              m.Seed,
		"features":          m.Features,
		"explainedVariance": m.ExplainedVariance,
		"anomalyDistance":   m.AnomalyDistance,
		"inertia":           m.Inertia,
		"clusters":          clusters,
	})
}

// refitRequest tunes a discovery refit; zero fields keep the module
// defaults (and Seed 0 is a valid, deterministic seed).
type refitRequest struct {
	K          int    `json:"k"`
	Components int    `json:"components"`
	Restarts   int    `json:"restarts"`
	Seed       uint64 `json:"seed"`
}

// handleDiscoverRefit refits the discovery model over the warehouse's
// current Uncategorized/NA population and atomically hot-swaps it in.
// Refits are control-plane work like model reloads, so they share the
// reload circuit breaker: repeated failures trip it and further
// attempts answer 503 fast without touching the store.
func (s *Server) handleDiscoverRefit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxClassifyBody)
	var req refitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.K < 0 || req.Components < 0 || req.Restarts < 0 {
		s.writeError(w, http.StatusBadRequest, "k, components and restarts must be >= 0")
		return
	}
	gen, err := s.RefitDiscovery(core.DiscoveryConfig{
		K: req.K, Components: req.Components, Restarts: req.Restarts,
		Seed: req.Seed, Workers: s.batchWorkers,
	})
	if err != nil {
		s.log.Warn("discovery refit failed", "err", err)
		switch {
		case errors.Is(err, resilience.ErrBreakerOpen):
			w.Header().Set("Retry-After", retryAfterSeconds(s.breaker.RetryAfter()))
			s.writeError(w, http.StatusServiceUnavailable,
				"refit breaker open after repeated failures: %v", err)
		case errors.Is(err, core.ErrSchemaMismatch):
			s.writeError(w, http.StatusConflict, "refit rejected: %v", err)
		default:
			s.writeError(w, http.StatusBadRequest, "discovery refit failed: %v", err)
		}
		return
	}
	v := s.discovery.View()
	s.log.Info("discovery refit", "generation", gen, "k", v.Model.K, "rows", v.Model.Rows)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen,
		"k":          v.Model.K,
		"rows":       v.Model.Rows,
	})
}

// RefitDiscovery fits PCA + k-means over the warehouse's current
// unlabeled population and swaps the result in, through the shared
// control-plane breaker and the discover.fit fault site. SIGHUP-driven
// refits and the admin endpoint both route here.
func (s *Server) RefitDiscovery(cfg core.DiscoveryConfig) (uint64, error) {
	if err := s.breaker.Allow(); err != nil {
		s.metrics.Counter("model_breaker_rejections_total").Inc()
		return s.discovery.Generation(), err
	}
	gen, err := s.refitOnce(cfg)
	s.breaker.Record(err)
	return gen, err
}

func (s *Server) refitOnce(cfg core.DiscoveryConfig) (uint64, error) {
	if err := s.faults.Inject(FaultDiscoverFit); err != nil {
		return s.discovery.Generation(), err
	}
	opt := core.DefaultFeatures()
	rows := core.UnlabeledRows(s.store, opt)
	m, err := core.FitDiscovery(rows, core.FeatureNames(opt), cfg)
	if err != nil {
		return s.discovery.Generation(), err
	}
	return s.discovery.Swap(m)
}

// assignRequest scores one job against the discovery fit.
type assignRequest struct {
	Features map[string]float64 `json:"features"`
}

// handleDiscoverAssign scores one job row against the serving discovery
// fit: which discovered cluster it belongs to, how far from the center
// it sits, and whether that distance (or the cluster itself) is
// anomalous. Mirrors handleClassify's contract: 503 with no fit, 400
// for malformed/unknown features, 504 past the deadline.
func (s *Server) handleDiscoverAssign(w http.ResponseWriter, r *http.Request) {
	v := s.discovery.View()
	if v == nil {
		s.discoverOutcome("no_model")
		s.writeError(w, http.StatusServiceUnavailable, "no discovery fit loaded")
		return
	}
	v.Annotate(flight.From(r.Context()))
	r.Body = http.MaxBytesReader(w, r.Body, maxClassifyBody)
	var req assignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.discoverOutcome("oversized")
			s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.discoverOutcome("bad_request")
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Features) == 0 {
		s.discoverOutcome("bad_request")
		s.writeError(w, http.StatusBadRequest, "empty or missing features map")
		return
	}
	row := make([]float64, v.NumFeatures())
	defaulted := []string{}
	var unknown []string
	for name, val := range req.Features {
		idx, ok := v.FeatureIndex(name)
		if !ok {
			unknown = append(unknown, name)
			continue
		}
		row[idx] = val
	}
	for _, name := range v.Model.Features {
		if _, ok := req.Features[name]; !ok {
			defaulted = append(defaulted, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		s.discoverOutcome("bad_request")
		s.writeError(w, http.StatusBadRequest, "unknown features: %v", unknown)
		return
	}
	if fired, err := s.faults.InjectReport(FaultDiscoverAssign); fired {
		flight.From(r.Context()).MarkFault()
		if err != nil {
			s.discoverOutcome("error")
			s.rowError(w, r, err)
			return
		}
	}
	if err := r.Context().Err(); err != nil {
		s.discoverOutcome("timeout")
		s.rowError(w, r, err)
		return
	}
	start := time.Now()
	a, err := v.Model.Assign(row)
	s.metrics.Histogram("discover_assign_seconds", rowLatencyBuckets()).ObserveDuration(start)
	flight.From(r.Context()).Timer().Observe(time.Since(start))
	if err != nil {
		s.discoverOutcome("error")
		s.rowError(w, r, err)
		return
	}
	if a.Anomalous {
		s.discoverOutcome("anomalous")
	} else {
		s.discoverOutcome("assigned")
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"cluster":          a.Cluster,
		"distance":         a.Distance,
		"anomalous":        a.Anomalous,
		"clusterAnomalous": a.ClusterAnomalous,
		"projection":       a.Projection,
		"generation":       v.Generation,
		"defaulted":        defaulted,
	})
}

// runtimeRequest asks for a submit-time runtime/outcome class. The
// global Threshold applies to every class; Thresholds overrides it per
// class (e.g. demand 0.9 confidence before promising "short" but accept
// 0.5 for "failed" warnings).
type runtimeRequest struct {
	Features   map[string]float64 `json:"features"`
	Threshold  float64            `json:"threshold"`
	Thresholds map[string]float64 `json:"thresholds"`
}

// handleRuntimeFeatures reports the runtime-class model's schema so
// clients (and the load generator) can build valid request bodies.
func (s *Server) handleRuntimeFeatures(w http.ResponseWriter, r *http.Request) {
	v := s.runtime.View()
	if v == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no runtime-class model loaded")
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"algorithm":  v.Model.Algo,
		"features":   v.Model.Features,
		"classes":    v.Model.Classes(),
		"generation": v.Generation,
		"compiled":   v.Compiled(),
	})
}

// handleRuntimeClass predicts a job's runtime/outcome class at submit
// time from whatever features the client has (missing ones default to 0
// and are reported back). The full per-class probability vector is
// returned so scheduler-side policies can apply their own decision
// rules beyond the thresholded verdict.
func (s *Server) handleRuntimeClass(w http.ResponseWriter, r *http.Request) {
	v := s.runtime.View()
	if v == nil {
		s.runtimeOutcome("no_model")
		s.writeError(w, http.StatusServiceUnavailable, "no runtime-class model loaded")
		return
	}
	v.Annotate(flight.From(r.Context()))
	r.Body = http.MaxBytesReader(w, r.Body, maxClassifyBody)
	var req runtimeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.runtimeOutcome("oversized")
			s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.runtimeOutcome("bad_request")
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Threshold < 0 || req.Threshold > 1 {
		s.runtimeOutcome("bad_request")
		s.writeError(w, http.StatusBadRequest, "threshold must be in [0,1]")
		return
	}
	classes := v.Model.Classes()
	known := make(map[string]bool, len(classes))
	for _, c := range classes {
		known[c] = true
	}
	for name, t := range req.Thresholds {
		if !known[name] {
			s.runtimeOutcome("bad_request")
			s.writeError(w, http.StatusBadRequest, "unknown class %q in thresholds (classes: %v)", name, classes)
			return
		}
		if t < 0 || t > 1 {
			s.runtimeOutcome("bad_request")
			s.writeError(w, http.StatusBadRequest, "thresholds[%q] must be in [0,1]", name)
			return
		}
	}
	if len(req.Features) == 0 {
		s.runtimeOutcome("bad_request")
		s.writeError(w, http.StatusBadRequest, "empty or missing features map")
		return
	}
	row, defaulted, unknownFeats := resolveRow(v, req.Features)
	if len(unknownFeats) > 0 {
		sort.Strings(unknownFeats)
		s.runtimeOutcome("bad_request")
		s.writeError(w, http.StatusBadRequest, "unknown features: %v", unknownFeats)
		return
	}
	if fired, err := s.faults.InjectReport(FaultRuntimeRow); fired {
		flight.From(r.Context()).MarkFault()
		if err != nil {
			s.runtimeOutcome("error")
			s.rowError(w, r, err)
			return
		}
	}
	if err := r.Context().Err(); err != nil {
		s.runtimeOutcome("timeout")
		s.rowError(w, r, err)
		return
	}
	start := time.Now()
	pred, probs := v.Model.PredictProb(row)
	s.metrics.Histogram("runtime_class_row_seconds", rowLatencyBuckets()).ObserveDuration(start)
	flight.From(r.Context()).Timer().Observe(time.Since(start))
	label := classes[pred]
	threshold := req.Threshold
	if t, ok := req.Thresholds[label]; ok {
		threshold = t
	}
	classified := probs[pred] >= threshold
	if classified {
		s.runtimeOutcome("classified")
	} else {
		s.runtimeOutcome("below_threshold")
	}
	probabilities := make(map[string]float64, len(classes))
	for i, c := range classes {
		probabilities[c] = probs[i]
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"class":         label,
		"probability":   probs[pred],
		"classified":    classified,
		"probabilities": probabilities,
		"generation":    v.Generation,
		"defaulted":     defaulted,
	})
}
