package server

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// benchView builds a model view over f synthetic feature names plus a
// full request map touching every feature -- the worst case for the old
// linear scan.
func benchView(b *testing.B, f int) (*core.ModelView, map[string]float64) {
	b.Helper()
	names := make([]string, f)
	features := make(map[string]float64, f)
	for i := range names {
		names[i] = fmt.Sprintf("FEATURE_%03d", i)
		features[names[i]] = float64(i)
	}
	mm := core.NewModelManager(nil)
	if _, err := mm.Swap(&core.JobClassifier{Features: names}); err != nil {
		b.Fatal(err)
	}
	return mm.View(), features
}

// linearResolveRow is the pre-manager implementation (server.go:218-231
// before the fix): each request feature scanned Features front to back,
// O(F) per attribute and O(F^2) for a full request. Kept here so the
// benchmark proves the win.
func linearResolveRow(features []string, req map[string]float64) ([]float64, []string) {
	row := make([]float64, len(features))
	unknown := []string{}
	for name, v := range req {
		idx := -1
		for i, f := range features {
			if f == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			unknown = append(unknown, name)
			continue
		}
		row[idx] = v
	}
	return row, unknown
}

// BenchmarkFeatureResolution compares the prebuilt-index path against
// the old linear scan at F=32 (the acceptance case) and F=128 (where
// quadratic growth is unmistakable: indexed cost grows ~4x, linear
// ~16x).
func BenchmarkFeatureResolution(b *testing.B) {
	for _, f := range []int{32, 128} {
		view, req := benchView(b, f)
		b.Run(fmt.Sprintf("indexed-F%d", f), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				row, _, unknown := resolveRow(view, req)
				if len(unknown) != 0 || len(row) != f {
					b.Fatal("bad resolution")
				}
			}
		})
		b.Run(fmt.Sprintf("linear-F%d", f), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				row, unknown := linearResolveRow(view.Model.Features, req)
				if len(unknown) != 0 || len(row) != f {
					b.Fatal("bad resolution")
				}
			}
		})
	}
}
