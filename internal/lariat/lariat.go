// Package lariat simulates the Lariat/XALT job-launch capture layer. On the
// TACC machines, Lariat wraps the ibrun MPI launcher and records, for every
// launched job, the executable path and loaded environment modules. SUPReMM
// joins these records with accounting data and matches the executable path
// against a table of known community applications, yielding the three-way
// labeling the paper analyzes:
//
//   - a community-application name when the path matches,
//   - "Uncategorized" when a record exists but the executable is unknown
//     (user-compiled codes named a.out, main, data, ...),
//   - "NA" when the job was launched outside ibrun and no record exists.
package lariat

import (
	"path"
	"strings"

	"repro/internal/apps"
)

// Labels for jobs that cannot be matched to a community application.
const (
	Uncategorized = "Uncategorized"
	NA            = "NA"
)

// Record is one Lariat launch capture.
type Record struct {
	JobID    string
	ExecPath string
	Modules  []string
	User     string
}

// Matcher matches executable paths against the community-application table.
type Matcher struct {
	byBase map[string]string // executable basename -> application name
	byPath map[string]string // full path -> application name
}

// NewMatcher builds a matcher from the application catalogue.
func NewMatcher(catalog []apps.App) *Matcher {
	m := &Matcher{byBase: map[string]string{}, byPath: map[string]string{}}
	for _, a := range catalog {
		if a.ExecPath == "" {
			continue
		}
		// Only installed software trees participate in basename matching;
		// a user binary that happens to be called "namd2" must not match.
		if strings.HasPrefix(a.ExecPath, "/opt/apps/") {
			m.byBase[strings.ToLower(path.Base(a.ExecPath))] = a.Name
		}
		m.byPath[a.ExecPath] = a.Name
	}
	return m
}

// Match returns the community-application name for a launch record, or
// Uncategorized if the executable is not recognized.
func (m *Matcher) Match(rec *Record) string {
	if rec == nil || rec.ExecPath == "" {
		return NA
	}
	if name, ok := m.byPath[rec.ExecPath]; ok {
		return name
	}
	if strings.HasPrefix(rec.ExecPath, "/opt/apps/") {
		if name, ok := m.byBase[strings.ToLower(path.Base(rec.ExecPath))]; ok {
			return name
		}
	}
	return Uncategorized
}

// Store holds launch records by job id.
type Store struct {
	records map[string]*Record
}

// NewStore returns an empty record store.
func NewStore() *Store { return &Store{records: map[string]*Record{}} }

// Add inserts (or replaces) a record.
func (s *Store) Add(rec *Record) { s.records[rec.JobID] = rec }

// Lookup returns the record for a job, or nil if the job was launched
// outside ibrun.
func (s *Store) Lookup(jobID string) *Record { return s.records[jobID] }

// Len returns the number of stored records.
func (s *Store) Len() int { return len(s.records) }

// Label classifies a job: the community-application name, Uncategorized,
// or NA when the store has no record for the job.
func (s *Store) Label(m *Matcher, jobID string) string {
	rec := s.Lookup(jobID)
	if rec == nil {
		return NA
	}
	return m.Match(rec)
}
