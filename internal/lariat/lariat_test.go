package lariat

import (
	"testing"

	"repro/internal/apps"
)

func TestMatchCommunityPaths(t *testing.T) {
	m := NewMatcher(apps.Catalog())
	for _, a := range apps.Catalog() {
		if a.ExecPath == "" {
			continue
		}
		got := m.Match(&Record{JobID: "1", ExecPath: a.ExecPath})
		if got != a.Name {
			t.Errorf("Match(%q) = %q, want %q", a.ExecPath, got, a.Name)
		}
	}
}

func TestMatchBasenameOnlyUnderOptApps(t *testing.T) {
	m := NewMatcher(apps.Catalog())
	// A different install of a known code under /opt/apps matches by basename.
	got := m.Match(&Record{ExecPath: "/opt/apps/namd/2.10/bin/namd2"})
	if got != "NAMD" {
		t.Errorf("versioned community install = %q, want NAMD", got)
	}
	// A user binary with the same basename must NOT match.
	got = m.Match(&Record{ExecPath: "/home1/01234/user/bin/namd2"})
	if got != Uncategorized {
		t.Errorf("user-built namd2 = %q, want Uncategorized", got)
	}
}

func TestMatchCaseInsensitiveBasename(t *testing.T) {
	m := NewMatcher(apps.Catalog())
	got := m.Match(&Record{ExecPath: "/opt/apps/namd/2.9/bin/NAMD2"})
	if got != "NAMD" {
		t.Errorf("case-insensitive basename = %q", got)
	}
}

func TestMatchUncategorized(t *testing.T) {
	m := NewMatcher(apps.Catalog())
	for _, p := range []string{"/home1/02044/u/a.out", "/scratch/x/main", "/work/y/data"} {
		if got := m.Match(&Record{ExecPath: p}); got != Uncategorized {
			t.Errorf("Match(%q) = %q, want Uncategorized", p, got)
		}
	}
}

func TestMatchNA(t *testing.T) {
	m := NewMatcher(apps.Catalog())
	if m.Match(nil) != NA {
		t.Error("nil record should be NA")
	}
	if m.Match(&Record{}) != NA {
		t.Error("empty exec path should be NA")
	}
}

func TestStoreLabel(t *testing.T) {
	m := NewMatcher(apps.Catalog())
	s := NewStore()
	vasp, _ := apps.ByName("VASP")
	s.Add(&Record{JobID: "100", ExecPath: vasp.ExecPath})
	s.Add(&Record{JobID: "101", ExecPath: "/home1/x/a.out"})
	if got := s.Label(m, "100"); got != "VASP" {
		t.Errorf("job 100 label = %q", got)
	}
	if got := s.Label(m, "101"); got != Uncategorized {
		t.Errorf("job 101 label = %q", got)
	}
	if got := s.Label(m, "999"); got != NA {
		t.Errorf("missing job label = %q", got)
	}
	if s.Len() != 2 {
		t.Errorf("store len = %d", s.Len())
	}
}

func TestStoreReplace(t *testing.T) {
	s := NewStore()
	s.Add(&Record{JobID: "1", ExecPath: "/a"})
	s.Add(&Record{JobID: "1", ExecPath: "/b"})
	if s.Len() != 1 || s.Lookup("1").ExecPath != "/b" {
		t.Error("Add should replace records with the same job id")
	}
}
