package lariat_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/lariat"
)

// FuzzMatch drives the Lariat matcher and store with arbitrary launch
// records. The matcher must never panic and must only ever answer with a
// catalogue application name, Uncategorized, or NA — and NA exactly when
// there is no usable launch record.
func FuzzMatch(f *testing.F) {
	f.Add("1234", "/opt/apps/vasp/bin/vasp", "user1")
	f.Add("1", "/opt/apps/namd/NAMD2", "u")
	f.Add("2", "/home/u/a.out", "u")
	f.Add("3", "", "u")
	f.Add("", "/opt/apps/../etc/passwd", "")
	f.Fuzz(func(t *testing.T, jobID, execPath, user string) {
		catalog := apps.Catalog()
		known := map[string]bool{lariat.Uncategorized: true, lariat.NA: true}
		for _, a := range catalog {
			known[a.Name] = true
		}
		m := lariat.NewMatcher(catalog)
		rec := &lariat.Record{JobID: jobID, ExecPath: execPath, User: user}
		got := m.Match(rec)
		if !known[got] {
			t.Fatalf("Match returned %q, not a catalogue app or sentinel", got)
		}
		if execPath == "" && got != lariat.NA {
			t.Fatalf("empty exec path matched %q, want NA", got)
		}
		if execPath != "" && got == lariat.NA {
			t.Fatalf("non-empty exec path %q answered NA", execPath)
		}

		s := lariat.NewStore()
		if s.Label(m, jobID) != lariat.NA {
			t.Fatal("empty store must label every job NA")
		}
		s.Add(rec)
		if s.Len() != 1 {
			t.Fatalf("store holds %d records after one Add", s.Len())
		}
		if lbl := s.Label(m, jobID); lbl != got {
			t.Fatalf("Label %q disagrees with Match %q", lbl, got)
		}
	})
}
