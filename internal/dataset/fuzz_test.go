package dataset_test

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

// FuzzReadCSV feeds arbitrary text through the dataset CSV reader. It
// must never panic; accepted inputs must write back out, and one
// write/read pass must canonicalize the data (WriteCSV becomes a fixed
// point), so the on-disk format round-trips losslessly.
func FuzzReadCSV(f *testing.F) {
	f.Add("label,f1,f2\na,1,2\nb,3.5,-4e2\n")
	f.Add("label,x\nweird\"quote,NaN\n")
	f.Add("label,only\n")
	f.Add("not a header\n1,2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		d, err := dataset.ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var w1 strings.Builder
		if err := d.WriteCSV(&w1); err != nil {
			t.Fatalf("accepted dataset failed to write: %v", err)
		}
		d2, err := dataset.ReadCSV(strings.NewReader(w1.String()))
		if err != nil {
			t.Fatalf("written CSV failed to read back: %v\n%q", err, w1.String())
		}
		if d2.Len() != d.Len() || d2.NumFeatures() != d.NumFeatures() || d2.NumClasses() != d.NumClasses() {
			t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
				d.Len(), d.NumFeatures(), d.NumClasses(), d2.Len(), d2.NumFeatures(), d2.NumClasses())
		}
		var w2 strings.Builder
		if err := d2.WriteCSV(&w2); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		if w1.String() != w2.String() {
			t.Fatalf("WriteCSV is not a fixed point:\nfirst:  %q\nsecond: %q", w1.String(), w2.String())
		}
	})
}
