package dataset

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// buildFuzz converts fuzz bytes into a small valid dataset.
func buildFuzz(labels []uint8, seed uint64) *Dataset {
	if len(labels) == 0 {
		labels = []uint8{0}
	}
	r := rng.New(seed)
	rows := make([][]float64, len(labels))
	names := make([]string, 3)
	for j := range names {
		names[j] = fmt.Sprintf("f%d", j)
	}
	strs := make([]string, len(labels))
	for i, l := range labels {
		rows[i] = []float64{r.Normal(), r.Normal(), r.Normal()}
		strs[i] = fmt.Sprintf("c%d", l%4)
	}
	d, err := New(names, rows, strs)
	if err != nil {
		panic(err)
	}
	return d
}

func TestSplitPropertyPartition(t *testing.T) {
	f := func(labels []uint8, seed uint64) bool {
		d := buildFuzz(labels, seed)
		train, test := d.Split(rng.New(seed), 0.7)
		// Partition: sizes add up, and per-class counts add up.
		if train.Len()+test.Len() != d.Len() {
			return false
		}
		tc, sc, dc := train.ClassCounts(), test.ClassCounts(), d.ClassCounts()
		for c := range dc {
			if tc[c]+sc[c] != dc[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBalancedPropertyEqualCounts(t *testing.T) {
	f := func(labels []uint8, seed uint64, perClassRaw uint8) bool {
		d := buildFuzz(labels, seed)
		perClass := int(perClassRaw%20) + 1
		b := d.Balanced(rng.New(seed+1), perClass)
		counts := b.ClassCounts()
		present := map[int]bool{}
		for _, y := range d.Y {
			present[y] = true
		}
		for c, n := range counts {
			if present[c] && n != perClass {
				return false
			}
			if !present[c] && n != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSubsetPropertyPreservesLabels(t *testing.T) {
	f := func(labels []uint8, seed uint64) bool {
		d := buildFuzz(labels, seed)
		idx := rng.New(seed + 2).Perm(d.Len())
		if len(idx) > 5 {
			idx = idx[:5]
		}
		s := d.Subset(idx)
		for i, j := range idx {
			if s.Label(i) != d.Label(j) {
				return false
			}
			for k := range s.X[i] {
				if s.X[i][k] != d.X[j][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
