package dataset

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
)

func sample(t *testing.T) *Dataset {
	t.Helper()
	rows := [][]float64{
		{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50},
		{6, 60}, {7, 70}, {8, 80}, {9, 90}, {10, 100},
	}
	labels := []string{"b", "a", "b", "a", "b", "a", "b", "a", "b", "a"}
	d, err := New([]string{"f1", "f2"}, rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewBasics(t *testing.T) {
	d := sample(t)
	if d.Len() != 10 || d.NumFeatures() != 2 || d.NumClasses() != 2 {
		t.Fatalf("shape: %d rows %d feats %d classes", d.Len(), d.NumFeatures(), d.NumClasses())
	}
	if !reflect.DeepEqual(d.ClassNames, []string{"a", "b"}) {
		t.Errorf("classes %v", d.ClassNames)
	}
	if d.Label(0) != "b" || d.Label(1) != "a" {
		t.Error("labels mismapped")
	}
	if d.ClassIndex("b") != 1 || d.ClassIndex("zz") != -1 {
		t.Error("ClassIndex wrong")
	}
	if !reflect.DeepEqual(d.ClassCounts(), []int{5, 5}) {
		t.Errorf("counts %v", d.ClassCounts())
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New([]string{"f"}, [][]float64{{1}}, []string{"a", "b"}); err == nil {
		t.Error("length mismatch not caught")
	}
	if _, err := New([]string{"f"}, [][]float64{{1, 2}}, []string{"a"}); err == nil {
		t.Error("ragged row not caught")
	}
}

func TestSubsetIsCopy(t *testing.T) {
	d := sample(t)
	s := d.Subset([]int{0, 2})
	s.X[0][0] = 999
	if d.X[0][0] == 999 {
		t.Error("Subset shares backing storage")
	}
	if s.Len() != 2 || s.Label(0) != "b" {
		t.Error("Subset contents wrong")
	}
	if s.NumClasses() != 2 {
		t.Error("Subset must preserve class vocabulary")
	}
}

func TestSelectFeatures(t *testing.T) {
	d := sample(t)
	s, err := d.SelectFeatures([]string{"f2"})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFeatures() != 1 || s.X[3][0] != 40 {
		t.Error("SelectFeatures wrong values")
	}
	// Order respected.
	s2, err := d.SelectFeatures([]string{"f2", "f1"})
	if err != nil {
		t.Fatal(err)
	}
	if s2.X[0][0] != 10 || s2.X[0][1] != 1 {
		t.Error("SelectFeatures order not respected")
	}
	if _, err := d.SelectFeatures([]string{"nope"}); err == nil {
		t.Error("unknown feature not caught")
	}
}

func TestSplitStratified(t *testing.T) {
	d := sample(t)
	train, test := d.Split(rng.New(1), 0.6)
	if train.Len() != 6 || test.Len() != 4 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	tc := train.ClassCounts()
	if tc[0] != 3 || tc[1] != 3 {
		t.Errorf("train not stratified: %v", tc)
	}
	// No row in both sets: check by values.
	seen := map[float64]bool{}
	for _, row := range train.X {
		seen[row[0]] = true
	}
	for _, row := range test.X {
		if seen[row[0]] {
			t.Error("row appears in both train and test")
		}
	}
}

func TestBalancedUndersample(t *testing.T) {
	rows := make([][]float64, 30)
	labels := make([]string, 30)
	for i := range rows {
		rows[i] = []float64{float64(i)}
		if i < 25 {
			labels[i] = "big"
		} else {
			labels[i] = "small"
		}
	}
	d, _ := New([]string{"f"}, rows, labels)
	b := d.Balanced(rng.New(2), 5)
	if b.Len() != 10 {
		t.Fatalf("balanced len = %d", b.Len())
	}
	c := b.ClassCounts()
	if c[0] != 5 || c[1] != 5 {
		t.Errorf("balanced counts %v", c)
	}
}

func TestBalancedOversample(t *testing.T) {
	rows := [][]float64{{1}, {2}, {3}, {4}}
	labels := []string{"a", "a", "a", "b"}
	d, _ := New([]string{"f"}, rows, labels)
	b := d.Balanced(rng.New(3), 10)
	c := b.ClassCounts()
	if c[0] != 10 || c[1] != 10 {
		t.Errorf("oversample counts %v", c)
	}
	// All class-b rows are replicas of the single source row.
	for i := range b.X {
		if b.Label(i) == "b" && b.X[i][0] != 4 {
			t.Error("oversampled row has wrong value")
		}
	}
}

func TestStandardizeAndApply(t *testing.T) {
	d := sample(t)
	test := d.Subset([]int{0, 1})
	sc := d.Standardize()
	var mean float64
	for _, row := range d.X {
		mean += row[0]
	}
	mean /= float64(d.Len())
	if math.Abs(mean) > 1e-12 {
		t.Errorf("standardized mean = %v", mean)
	}
	test.Apply(sc)
	// Row 0 of test was (1,10): same transform as d.X row 0.
	if math.Abs(test.X[0][0]-d.X[0][0]) > 1e-12 {
		t.Error("Apply did not match Standardize transform")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || !reflect.DeepEqual(got.FeatureNames, d.FeatureNames) {
		t.Fatal("round trip shape mismatch")
	}
	for i := range d.X {
		if got.Label(i) != d.Label(i) || !reflect.DeepEqual(got.X[i], d.X[i]) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestReadCSVBadHeader(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("x,y\n1,2\n")); err == nil {
		t.Error("bad header not rejected")
	}
}

func TestReadCSVBadValue(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("label,f\na,notanumber\n")); err == nil {
		t.Error("bad value not rejected")
	}
}
