package dataset

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// build constructs a dataset with the given per-label row counts; extra
// vocabulary-only classes can be injected by listing them with count 0
// via emptyClasses (rows never reference them, but Subset-derived
// datasets carry such classes routinely).
func build(t *testing.T, counts map[string]int) *Dataset {
	t.Helper()
	var rows [][]float64
	var labels []string
	i := 0
	for _, name := range sortedKeys(counts) {
		for k := 0; k < counts[name]; k++ {
			rows = append(rows, []float64{float64(i), float64(i % 3)})
			labels = append(labels, name)
			i++
		}
	}
	d, err := New([]string{"f1", "f2"}, rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// withEmptyClass returns a copy of d whose vocabulary contains one extra
// class that no row belongs to, as produced by Subset after filtering.
func withEmptyClass(d *Dataset, name string) *Dataset {
	classes := append(append([]string(nil), d.ClassNames...), name)
	return &Dataset{FeatureNames: d.FeatureNames, ClassNames: classes, X: d.X, Y: d.Y}
}

func TestSplitEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		counts    map[string]int
		emptyCls  bool
		frac      float64
		wantTrain map[string]int // expected per-class training counts
	}{
		{
			name:      "single-row class goes to train",
			counts:    map[string]int{"solo": 1, "big": 10},
			frac:      0.7,
			wantTrain: map[string]int{"solo": 1, "big": 7},
		},
		{
			name:      "two-row class keeps one per side",
			counts:    map[string]int{"duo": 2, "big": 10},
			frac:      0.7,
			wantTrain: map[string]int{"duo": 1, "big": 7},
		},
		{
			name:      "empty class in vocabulary is harmless",
			counts:    map[string]int{"a": 4, "b": 6},
			emptyCls:  true,
			frac:      0.5,
			wantTrain: map[string]int{"a": 2, "b": 3},
		},
		{
			name:      "remainder truncates per class",
			counts:    map[string]int{"a": 3, "b": 3, "c": 3},
			frac:      0.5,
			wantTrain: map[string]int{"a": 1, "b": 1, "c": 1},
		},
		{
			name:      "exact integral products survive float dust",
			counts:    map[string]int{"a": 10, "b": 20, "c": 30},
			frac:      0.7,
			wantTrain: map[string]int{"a": 7, "b": 14, "c": 21},
		},
		{
			name:      "frac 1 sends everything to train",
			counts:    map[string]int{"a": 3, "b": 1},
			frac:      1.0,
			wantTrain: map[string]int{"a": 3, "b": 1},
		},
		{
			name:      "frac 0 sends everything to test",
			counts:    map[string]int{"a": 3, "b": 1},
			frac:      0.0,
			wantTrain: map[string]int{"a": 0, "b": 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := build(t, tc.counts)
			if tc.emptyCls {
				d = withEmptyClass(d, "zz-empty")
			}
			train, test := d.Split(rng.New(17), tc.frac)
			if train.Len()+test.Len() != d.Len() {
				t.Fatalf("partition lost rows: %d + %d != %d", train.Len(), test.Len(), d.Len())
			}
			for name, want := range tc.wantTrain {
				ci := d.ClassIndex(name)
				if got := train.ClassCounts()[ci]; got != want {
					t.Errorf("class %s: %d training rows, want %d", name, got, want)
				}
				total := tc.counts[name]
				if got := test.ClassCounts()[ci]; got != total-want {
					t.Errorf("class %s: %d test rows, want %d", name, got, total-want)
				}
			}
			if tc.emptyCls {
				ci := d.ClassIndex("zz-empty")
				if ci < 0 {
					t.Fatal("empty class dropped from vocabulary")
				}
				if train.ClassCounts()[ci] != 0 || test.ClassCounts()[ci] != 0 {
					t.Error("empty class gained rows")
				}
				if train.NumClasses() != d.NumClasses() || test.NumClasses() != d.NumClasses() {
					t.Error("split changed the class vocabulary")
				}
			}
			// No duplicated rows across the two sides (values are unique).
			seen := map[float64]bool{}
			for _, row := range train.X {
				seen[row[0]] = true
			}
			for _, row := range test.X {
				if seen[row[0]] {
					t.Fatal("row appears on both sides of the split")
				}
			}
		})
	}
}

func TestSplitCutTable(t *testing.T) {
	cases := []struct {
		n    int
		frac float64
		want int
	}{
		{0, 0.7, 0},
		{1, 0.7, 1},  // the off-by-one this PR fixes: was 0
		{1, 0.01, 1}, // any positive fraction keeps the class trainable
		{2, 0.7, 1},
		{3, 0.7, 2},
		{10, 0.7, 7},
		{10, 0.3, 3},
		{30, 0.7, 21},
		{5, 1.0, 5},
		{5, 0.0, 0},
		{7, 0.5, 3},
	}
	for _, tc := range cases {
		if got := splitCut(tc.n, tc.frac); got != tc.want {
			t.Errorf("splitCut(%d, %v) = %d, want %d", tc.n, tc.frac, got, tc.want)
		}
	}
}

func TestBalancedEdgeCases(t *testing.T) {
	// Oversampling a single-row class replicates it; empty vocabulary
	// classes stay empty rather than being invented.
	d := withEmptyClass(build(t, map[string]int{"solo": 1, "big": 8}), "ghost")
	b := d.Balanced(rng.New(5), 4)
	counts := b.ClassCounts()
	if counts[d.ClassIndex("solo")] != 4 {
		t.Errorf("solo oversampled to %d, want 4", counts[d.ClassIndex("solo")])
	}
	if counts[d.ClassIndex("big")] != 4 {
		t.Errorf("big sampled to %d, want 4", counts[d.ClassIndex("big")])
	}
	if counts[d.ClassIndex("ghost")] != 0 {
		t.Errorf("ghost class gained %d rows", counts[d.ClassIndex("ghost")])
	}
	soloSrc := -1
	for i := range d.X {
		if d.Label(i) == "solo" {
			soloSrc = i
			break
		}
	}
	for i := range b.X {
		if b.Label(i) == "solo" && b.X[i][0] != d.X[soloSrc][0] {
			t.Error("oversampled solo row is not a replica of its source")
		}
	}
}

func TestSplitDeterministicForSeed(t *testing.T) {
	d := build(t, map[string]int{"a": 9, "b": 5, "c": 1})
	tr1, te1 := d.Split(rng.New(99), 0.6)
	tr2, te2 := d.Split(rng.New(99), 0.6)
	if fmt.Sprint(tr1.X) != fmt.Sprint(tr2.X) || fmt.Sprint(te1.X) != fmt.Sprint(te2.X) {
		t.Fatal("same seed produced different splits")
	}
}
