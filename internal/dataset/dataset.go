// Package dataset provides the labeled feature-matrix container shared by
// the classifiers, with the sampling operations the paper's methodology
// needs: stratified train/test splitting, class-balanced training mixtures
// (the paper trains on an "application-balanced mixture"), native-mix
// subsets, feature selection for the predictor-count sweep, and CSV
// round-tripping for the command-line tools.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Dataset is a labeled feature matrix. Rows of X correspond to entries of
// Y; Y[i] indexes ClassNames.
type Dataset struct {
	FeatureNames []string
	ClassNames   []string
	X            [][]float64
	Y            []int
}

// New builds a dataset from rows and string labels. Class names are the
// sorted unique labels.
func New(featureNames []string, rows [][]float64, labels []string) (*Dataset, error) {
	if len(rows) != len(labels) {
		return nil, fmt.Errorf("dataset: %d rows but %d labels", len(rows), len(labels))
	}
	for i, r := range rows {
		if len(r) != len(featureNames) {
			return nil, fmt.Errorf("dataset: row %d has %d features, want %d", i, len(r), len(featureNames))
		}
	}
	uniq := map[string]bool{}
	for _, l := range labels {
		uniq[l] = true
	}
	classNames := make([]string, 0, len(uniq))
	for l := range uniq {
		classNames = append(classNames, l)
	}
	sort.Strings(classNames)
	index := make(map[string]int, len(classNames))
	for i, c := range classNames {
		index[c] = i
	}
	y := make([]int, len(labels))
	for i, l := range labels {
		y[i] = index[l]
	}
	return &Dataset{FeatureNames: featureNames, ClassNames: classNames, X: rows, Y: y}, nil
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the feature count.
func (d *Dataset) NumFeatures() int { return len(d.FeatureNames) }

// NumClasses returns the class count.
func (d *Dataset) NumClasses() int { return len(d.ClassNames) }

// Label returns the string label of row i.
func (d *Dataset) Label(i int) string { return d.ClassNames[d.Y[i]] }

// ClassIndex returns the index for a class name, or -1.
func (d *Dataset) ClassIndex(name string) int {
	for i, c := range d.ClassNames {
		if c == name {
			return i
		}
	}
	return -1
}

// ClassCounts returns per-class row counts.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, len(d.ClassNames))
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Subset returns a view-free copy containing the given rows. The class
// vocabulary is preserved even for classes absent from the subset.
func (d *Dataset) Subset(idx []int) *Dataset {
	x := make([][]float64, len(idx))
	y := make([]int, len(idx))
	for i, j := range idx {
		x[i] = append([]float64(nil), d.X[j]...)
		y[i] = d.Y[j]
	}
	return &Dataset{FeatureNames: d.FeatureNames, ClassNames: d.ClassNames, X: x, Y: y}
}

// SelectFeatures returns a copy restricted to the named feature columns, in
// the given order.
func (d *Dataset) SelectFeatures(names []string) (*Dataset, error) {
	cols := make([]int, len(names))
	for i, n := range names {
		cols[i] = -1
		for j, fn := range d.FeatureNames {
			if fn == n {
				cols[i] = j
				break
			}
		}
		if cols[i] < 0 {
			return nil, fmt.Errorf("dataset: unknown feature %q", n)
		}
	}
	x := make([][]float64, len(d.X))
	for i, row := range d.X {
		nr := make([]float64, len(cols))
		for k, c := range cols {
			nr[k] = row[c]
		}
		x[i] = nr
	}
	return &Dataset{
		FeatureNames: append([]string(nil), names...),
		ClassNames:   d.ClassNames,
		X:            x,
		Y:            append([]int(nil), d.Y...),
	}, nil
}

// Split partitions the dataset into train and test sets with the given
// train fraction, stratified by class so every class keeps its proportion.
// Every class with at least one row contributes at least one training row
// when trainFrac > 0: a vocabulary class with zero training rows degrades
// the classifiers silently (naive Bayes marks it untrained, the SVM gives
// it no votes), so when a 1-row class cannot appear on both sides the
// training side wins.
func (d *Dataset) Split(r *rng.Rand, trainFrac float64) (train, test *Dataset) {
	byClass := make([][]int, len(d.ClassNames))
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	var trainIdx, testIdx []int
	for _, idx := range byClass {
		perm := r.Perm(len(idx))
		cut := splitCut(len(idx), trainFrac)
		for i, p := range perm {
			if i < cut {
				trainIdx = append(trainIdx, idx[p])
			} else {
				testIdx = append(testIdx, idx[p])
			}
		}
	}
	r.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
	r.Shuffle(len(testIdx), func(i, j int) { testIdx[i], testIdx[j] = testIdx[j], testIdx[i] })
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// splitCut returns how many of an n-row class's rows go to the training
// side for trainFrac. The 1e-9 nudge keeps float dust from truncating an
// exactly-integral product (3 * 0.7 evaluates to 2.0999999999999996, but
// some n*frac products land epsilon BELOW their true integer value and
// would lose a row to plain truncation).
func splitCut(n int, trainFrac float64) int {
	if n == 0 || trainFrac <= 0 {
		return 0
	}
	cut := int(float64(n)*trainFrac + 1e-9)
	if cut > n {
		cut = n
	}
	if cut == 0 {
		cut = 1 // non-empty class: at least one training row
	}
	return cut
}

// Balanced returns a class-balanced sample with perClass rows per class,
// sampling with replacement when a class has fewer rows than requested
// (oversampling), as the paper's "application-balanced mixture" requires.
// Classes with no rows at all are skipped.
func (d *Dataset) Balanced(r *rng.Rand, perClass int) *Dataset {
	byClass := make([][]int, len(d.ClassNames))
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	var pick []int
	for _, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		if len(idx) >= perClass {
			perm := r.Perm(len(idx))
			for _, p := range perm[:perClass] {
				pick = append(pick, idx[p])
			}
		} else {
			for k := 0; k < perClass; k++ {
				pick = append(pick, idx[r.Intn(len(idx))])
			}
		}
	}
	r.Shuffle(len(pick), func(i, j int) { pick[i], pick[j] = pick[j], pick[i] })
	return d.Subset(pick)
}

// Standardize fits a scaler on this dataset, transforms it in place, and
// returns the scaler for applying the identical transform to test data.
func (d *Dataset) Standardize() *stats.Scaler {
	s := stats.FitScaler(d.X)
	s.TransformAll(d.X)
	return s
}

// Apply transforms this dataset in place with an existing scaler.
func (d *Dataset) Apply(s *stats.Scaler) { s.TransformAll(d.X) }

// WriteCSV writes the dataset with a header row (label first, then
// feature columns).
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"label"}, d.FeatureNames...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i, row := range d.X {
		rec[0] = d.Label(i)
		for j, v := range row {
			rec[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, err
	}
	if len(header) < 2 || header[0] != "label" {
		return nil, fmt.Errorf("dataset: bad CSV header")
	}
	features := header[1:]
	var rows [][]float64
	var labels []string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		labels = append(labels, rec[0])
		row := make([]float64, len(features))
		for j, f := range rec[1:] {
			row[j], err = strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: bad value %q: %w", f, err)
			}
		}
		rows = append(rows, row)
	}
	return New(features, rows, labels)
}
