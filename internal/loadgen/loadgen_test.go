package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubTarget mimics supremm-serve's surface well enough to drive the
// generator: a features endpoint plus classify endpoints with
// scriptable status behaviour.
func stubTarget(t *testing.T, handler func(w http.ResponseWriter, r *http.Request)) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	schema := func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"features": []string{"A", "B", "C"}})
	}
	mux.HandleFunc("GET /api/features", schema)
	mux.HandleFunc("GET /api/discover", schema)
	mux.HandleFunc("GET /api/runtime-class/features", schema)
	mux.HandleFunc("POST /api/classify", handler)
	mux.HandleFunc("POST /api/classify/batch", handler)
	mux.HandleFunc("POST /api/discover/assign", handler)
	mux.HandleFunc("POST /api/runtime-class", handler)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestRunCountsMatchServer(t *testing.T) {
	var served atomic.Int64
	srv := stubTarget(t, func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"label": "ok"})
	})
	cfg, err := ParseSpec("url=" + srv.URL + ",rps=400,dur=500ms,mix=0.3,batch=4,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 || rep.OK != served.Load() || rep.OK != rep.Sent {
		t.Fatalf("sent=%d ok=%d served=%d", rep.Sent, rep.OK, served.Load())
	}
	if rep.Answered() != rep.OK {
		t.Fatalf("answered=%d want %d", rep.Answered(), rep.OK)
	}
	if rep.LatencyMS.Count != rep.OK || rep.LatencyMS.Max <= 0 {
		t.Fatalf("latency stats %+v", rep.LatencyMS)
	}
	if rep.ByStatus["200"] != rep.OK {
		t.Fatalf("byStatus = %v", rep.ByStatus)
	}
	if rep.Spec != cfg.Spec() {
		t.Fatalf("report spec %q != config spec %q", rep.Spec, cfg.Spec())
	}
}

func TestRunClassifiesStatuses(t *testing.T) {
	// Cycle deterministically through the status-code contract.
	var n atomic.Int64
	srv := stubTarget(t, func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 4 {
		case 0:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case 1:
			w.WriteHeader(http.StatusGatewayTimeout)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			json.NewEncoder(w).Encode(map[string]any{"label": "ok"})
		}
	})
	cfg, err := ParseSpec("url=" + srv.URL + ",rps=200,dur=400ms,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 || rep.Timeouts == 0 || rep.Unavailable == 0 || rep.OK == 0 {
		t.Fatalf("report %+v did not see every status", rep)
	}
	if rep.ShedWithoutRetryAfter != 0 {
		t.Fatalf("stub always sets Retry-After, yet %d flagged", rep.ShedWithoutRetryAfter)
	}
	if got := rep.OK + rep.Shed + rep.Timeouts + rep.Unavailable; got != rep.Sent {
		t.Fatalf("statuses %d != sent %d", got, rep.Sent)
	}
}

func TestRunFlagsMissingRetryAfter(t *testing.T) {
	srv := stubTarget(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests) // contract violation: no Retry-After
	})
	cfg, err := ParseSpec("url=" + srv.URL + ",rps=100,dur=200ms")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 || rep.ShedWithoutRetryAfter != rep.Shed {
		t.Fatalf("shed=%d flagged=%d, want all flagged", rep.Shed, rep.ShedWithoutRetryAfter)
	}
}

// TestRunDrivesMixedRoutes points a four-way mix at the stub and checks
// every driven route sees traffic while the schema GETs stay off the
// report.
func TestRunDrivesMixedRoutes(t *testing.T) {
	var mu sync.Mutex
	byPath := map[string]int{}
	srv := stubTarget(t, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		byPath[r.URL.Path]++
		mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"label": "ok"})
	})
	cfg, err := ParseSpec("url=" + srv.URL + ",rps=400,dur=500ms,mix=0.25,dmix=0.25,rmix=0.25,batch=4,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != rep.Sent || rep.Sent == 0 {
		t.Fatalf("sent=%d ok=%d", rep.Sent, rep.OK)
	}
	total := 0
	for _, path := range []string{"/api/classify", "/api/classify/batch", "/api/discover/assign", "/api/runtime-class"} {
		if byPath[path] == 0 {
			t.Errorf("route %s saw no traffic (%v)", path, byPath)
		}
		total += byPath[path]
	}
	if int64(total) != rep.Sent {
		t.Errorf("driven routes served %d, report sent %d (stray traffic?)", total, rep.Sent)
	}
}

// TestRunRefusesMissingDiscoveryFit checks the generator fails fast when
// dmix asks for discovery traffic but the target has no fit loaded.
func TestRunRefusesMissingDiscoveryFit(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/features", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"features": []string{"A"}})
	})
	mux.HandleFunc("GET /api/discover", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	cfg, err := ParseSpec("url=" + srv.URL + ",rps=1,dur=1s,dmix=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("Run succeeded with dmix against a fit-less target")
	}
}

func TestRunRefusesTargetWithoutModel(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/features", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	cfg, err := ParseSpec("url=" + srv.URL + ",rps=1,dur=1s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("Run succeeded against a model-less target")
	}
}

func TestRunHonoursContextCancel(t *testing.T) {
	srv := stubTarget(t, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"label": "ok"})
	})
	cfg, err := ParseSpec("url=" + srv.URL + ",rps=50,dur=30s")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	if rep.Sent == 0 {
		t.Fatal("cancelled run sent nothing")
	}
}
