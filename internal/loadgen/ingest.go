package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/ingest"
	"repro/internal/rng"
	"repro/internal/taccstats"
)

// IngestConfig parameterizes one ingest firehose run: a seeded
// simulated cluster workload (the same generator the batch pipeline
// uses) with its collection timeline compressed into Duration and
// replayed over Conns connections. As with Config, the canonical wire
// form is the spec string, recorded verbatim in the report.
type IngestConfig struct {
	// Addr is the ingest daemon's TCP address.
	Addr string
	// Jobs is how many cluster jobs to generate and stream.
	Jobs int
	// Conns is the number of client connections (simulated collector
	// hosts); a (job, host) stream always stays on one connection so
	// per-host sample order is preserved.
	Conns int
	// MaxHosts caps nodes per job (keeps record counts tractable).
	MaxHosts int
	// WallCap caps each job's wall seconds before collection.
	WallCap float64
	// Duration is the replay window the send schedule is compressed
	// into (open-loop pacing; sends behind schedule go immediately).
	Duration time.Duration
	// ChunkSize is samples per data frame.
	ChunkSize int
	// Seed drives workload generation and connection assignment; one
	// seed reproduces the exact frame sequence.
	Seed uint64
}

// Defaults for ingest spec keys the caller omits.
const (
	defIngestJobs     = 32
	defIngestConns    = 4
	defIngestMaxHosts = 4
	defIngestWallCap  = 4000
	defIngestChunk    = 4
	defIngestDur      = 2 * time.Second
)

// Validate checks the config for use by RunIngest.
func (c IngestConfig) Validate() error {
	switch {
	case c.Addr == "":
		return fmt.Errorf("loadgen: addr is required")
	case c.Jobs <= 0 || c.Jobs > 100000:
		return fmt.Errorf("loadgen: jobs %d outside [1,100000]", c.Jobs)
	case c.Conns <= 0 || c.Conns > 256:
		return fmt.Errorf("loadgen: conns %d outside [1,256]", c.Conns)
	case c.MaxHosts <= 0 || c.MaxHosts > 64:
		return fmt.Errorf("loadgen: hosts %d outside [1,64]", c.MaxHosts)
	case c.WallCap <= 0:
		return fmt.Errorf("loadgen: wall must be positive, got %v", c.WallCap)
	case c.Duration <= 0:
		return fmt.Errorf("loadgen: dur must be positive, got %v", c.Duration)
	case c.ChunkSize <= 0 || c.ChunkSize > 0xFFFF:
		return fmt.Errorf("loadgen: chunk %d outside [1,65535]", c.ChunkSize)
	}
	return nil
}

// ParseIngestSpec parses an ingest load spec: comma- or
// whitespace-separated k=v pairs, e.g.
//
//	addr=127.0.0.1:9301,jobs=64,conns=8,dur=10s,seed=7
//
// Keys: addr, jobs, conns, hosts, wall, dur, chunk, seed. addr is
// required; the rest default sanely.
func ParseIngestSpec(s string) (IngestConfig, error) {
	cfg := IngestConfig{
		Jobs:      defIngestJobs,
		Conns:     defIngestConns,
		MaxHosts:  defIngestMaxHosts,
		WallCap:   defIngestWallCap,
		ChunkSize: defIngestChunk,
		Duration:  defIngestDur,
	}
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n'
	})
	if len(fields) == 0 {
		return IngestConfig{}, fmt.Errorf("loadgen: empty ingest spec")
	}
	seen := map[string]bool{}
	for _, field := range fields {
		key, val, ok := strings.Cut(field, "=")
		if !ok || key == "" || val == "" {
			return IngestConfig{}, fmt.Errorf("loadgen: spec entry %q is not key=value", field)
		}
		if seen[key] {
			return IngestConfig{}, fmt.Errorf("loadgen: spec key %q given twice", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "addr":
			cfg.Addr = val
		case "jobs":
			cfg.Jobs, err = parseInt(key, val)
		case "conns":
			cfg.Conns, err = parseInt(key, val)
		case "hosts":
			cfg.MaxHosts, err = parseInt(key, val)
		case "wall":
			cfg.WallCap, err = parseFloat(key, val)
		case "dur":
			cfg.Duration, err = parseDuration(key, val)
		case "chunk":
			cfg.ChunkSize, err = parseInt(key, val)
		case "seed":
			cfg.Seed, err = parseUint(key, val)
		default:
			return IngestConfig{}, fmt.Errorf("loadgen: unknown ingest spec key %q", key)
		}
		if err != nil {
			return IngestConfig{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return IngestConfig{}, err
	}
	return cfg, nil
}

// IngestSpec renders the config canonically;
// ParseIngestSpec(c.IngestSpec()) returns an identical config.
func (c IngestConfig) IngestSpec() string {
	pairs := map[string]string{
		"addr":  c.Addr,
		"jobs":  strconv.Itoa(c.Jobs),
		"conns": strconv.Itoa(c.Conns),
		"hosts": strconv.Itoa(c.MaxHosts),
		"wall":  strconv.FormatFloat(c.WallCap, 'g', -1, 64),
		"dur":   c.Duration.String(),
		"chunk": strconv.Itoa(c.ChunkSize),
		"seed":  strconv.FormatUint(c.Seed, 10),
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+pairs[k])
	}
	return strings.Join(parts, ",")
}

// IngestReport is the firehose run's record of truth: exactly how many
// records were generated and how many the server acknowledged. Because
// the client retries until acked and the server dedups by sequence,
// RecordsAcked is an exact count of records the server accepted — the
// client side of the conservation join.
type IngestReport struct {
	Spec             string  `json:"spec"`
	Jobs             int     `json:"jobs"`
	Frames           uint64  `json:"frames"`
	RecordsGenerated uint64  `json:"recordsGenerated"`
	RecordsAcked     uint64  `json:"recordsAcked"`
	Reconnects       uint64  `json:"reconnects"`
	DurationSeconds  float64 `json:"durationSeconds"`
	RecordsPerSec    float64 `json:"recordsPerSec"`

	PerClient []ingest.ClientStats `json:"perClient"`

	// Reconcile is filled by ReconcileIngest when requested.
	Reconcile *IngestCheck `json:"reconcile,omitempty"`
}

// sendUnit is one scheduled frame: a meta or a chunk.
type sendUnit struct {
	meta  *ingest.JobMeta
	chunk *taccstats.Chunk
	due   time.Duration
}

// fnvStr hashes a string (FNV-1a) for connection assignment.
func fnvStr(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// RunIngest generates the seeded workload, compresses its collection
// timeline into cfg.Duration, and replays it over cfg.Conns retrying
// connections. It returns once every frame is acknowledged.
func RunIngest(ctx context.Context, cfg IngestConfig) (*IngestReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Generate the workload exactly like the batch pipeline would.
	gen := cluster.NewGenerator(cluster.Stampede(), cluster.DefaultConfig(cfg.Seed))
	col := taccstats.DefaultConfig()
	r := rng.NewStream(cfg.Seed, 0x16E57)
	queues := make([][]sendUnit, cfg.Conns)
	var generated uint64
	for i, j := range gen.Generate(cfg.Jobs) {
		if len(j.Hosts) > cfg.MaxHosts {
			j.Hosts = j.Hosts[:cfg.MaxHosts]
		}
		if j.Draw.WallSeconds > cfg.WallCap {
			j.Draw.WallSeconds = cfg.WallCap
		}
		arch := taccstats.Collect(col, taccstats.JobInfo{ID: j.ID, Start: j.Start, Hosts: j.Hosts},
			j.Draw, r.Split(uint64(i)))
		meta := &ingest.JobMeta{
			JobID:    j.ID,
			User:     j.User,
			AppLabel: j.App.Name,
			Category: string(j.App.Category),
			Pop:      j.Population.String(),
			Nodes:    len(j.Hosts),
			Cores:    len(j.Hosts) * col.CoresPerNode,
			Submit:   j.Submit,
			Start:    j.Start,
		}
		queues[fnvStr(j.ID)%uint64(cfg.Conns)] = append(queues[fnvStr(j.ID)%uint64(cfg.Conns)],
			sendUnit{meta: meta})
		for ni := range arch.Nodes {
			node := &arch.Nodes[ni]
			ci := fnvStr(j.ID+"/"+node.Host) % uint64(cfg.Conns)
			for off := 0; off < len(node.Samples); off += cfg.ChunkSize {
				end := off + cfg.ChunkSize
				if end > len(node.Samples) {
					end = len(node.Samples)
				}
				queues[ci] = append(queues[ci], sendUnit{chunk: &taccstats.Chunk{
					JobID: j.ID, Host: node.Host, Samples: node.Samples[off:end],
				}})
				generated += uint64(end - off)
			}
		}
	}
	// Open-loop schedule: spread each connection's units evenly across
	// the replay window.
	for ci := range queues {
		n := len(queues[ci])
		for ui := range queues[ci] {
			queues[ci][ui].due = time.Duration(float64(cfg.Duration) * float64(ui) / float64(n))
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	stats := make([]ingest.ClientStats, cfg.Conns)
	for ci := range queues {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			fail := func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("loadgen: conn %d: %w", ci, err)
				}
				mu.Unlock()
			}
			c, err := ingest.NewClient(ingest.ClientConfig{
				Addr: cfg.Addr,
				ID:   fmt.Sprintf("ingestload-%d-%d", cfg.Seed, ci),
			})
			if err != nil {
				fail(err)
				return
			}
			for _, u := range queues[ci] {
				if wait := u.due - time.Since(start); wait > 0 {
					select {
					case <-time.After(wait):
					case <-ctx.Done():
						fail(ctx.Err())
						return
					}
				}
				if u.meta != nil {
					err = c.SendMeta(ctx, u.meta)
				} else {
					err = c.SendChunk(ctx, u.chunk)
				}
				if err != nil {
					fail(err)
					return
				}
			}
			if err := c.Close(ctx); err != nil {
				fail(err)
				return
			}
			mu.Lock()
			stats[ci] = c.Stats()
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	rep := &IngestReport{
		Spec:             cfg.IngestSpec(),
		Jobs:             cfg.Jobs,
		RecordsGenerated: generated,
		DurationSeconds:  time.Since(start).Seconds(),
		PerClient:        stats,
	}
	for _, st := range stats {
		rep.Frames += st.FramesSent
		rep.RecordsAcked += st.RecordsAcked
		rep.Reconnects += st.Reconnects
	}
	if rep.DurationSeconds > 0 {
		rep.RecordsPerSec = float64(rep.RecordsAcked) / rep.DurationSeconds
	}
	if rep.RecordsAcked != rep.RecordsGenerated {
		return rep, fmt.Errorf("loadgen: generated %d records but only %d acked",
			rep.RecordsGenerated, rep.RecordsAcked)
	}
	return rep, nil
}

// IngestCheck is the exact reconciliation of a firehose run against the
// daemon's self-reports: the client's acked count, the /debug/ingest
// ledger, and the /metrics counters must all agree to the record.
type IngestCheck struct {
	Pending  int64   `json:"pending"`
	OpenJobs float64 `json:"openJobs"`

	Ledger ingest.Snapshot `json:"ledger"`

	MetricsReceived   uint64 `json:"metricsReceived"`
	MetricsSummarized uint64 `json:"metricsSummarized"`
	MetricsDropped    uint64 `json:"metricsDropped"`

	ClientAcked uint64 `json:"clientAcked"`

	// Mismatches is empty iff every join is exact.
	Mismatches []string `json:"mismatches"`
}

// ReconcileIngest polls base+/debug/ingest until the daemon is
// quiescent (no pending records, no open jobs), then joins the ledger,
// the /metrics counters, and the client-side acked count exactly.
func ReconcileIngest(ctx context.Context, base string, rep *IngestReport) (*IngestCheck, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	var st ingest.Status
	for {
		if err := getJSON(ctx, client, base+"/debug/ingest", &st); err != nil {
			return nil, err
		}
		if st.Pending == 0 && st.OpenJobs == 0 {
			break
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return nil, fmt.Errorf("loadgen: daemon never quiesced: pending=%d openJobs=%v: %w",
				st.Pending, st.OpenJobs, ctx.Err())
		}
	}
	metrics, err := getText(ctx, client, base+"/metrics")
	if err != nil {
		return nil, err
	}

	chk := &IngestCheck{
		Pending:     st.Pending,
		OpenJobs:    st.OpenJobs,
		Ledger:      st.Ledger,
		ClientAcked: rep.RecordsAcked,
	}
	chk.MetricsReceived = promSum(metrics, "ingest_records_total", `outcome="received"`)
	chk.MetricsSummarized = promSum(metrics, "ingest_records_total", `outcome="summarized"`)
	chk.MetricsDropped = promSum(metrics, "ingest_records_total", `outcome="dropped"`)

	mismatch := func(format string, args ...any) {
		chk.Mismatches = append(chk.Mismatches, fmt.Sprintf(format, args...))
	}
	if err := st.Ledger.Check(0); err != nil {
		mismatch("%v", err)
	}
	if chk.ClientAcked != st.Ledger.Received {
		mismatch("client acked %d records, ledger received %d", chk.ClientAcked, st.Ledger.Received)
	}
	if chk.MetricsReceived != st.Ledger.Received {
		mismatch("/metrics received %d, ledger %d", chk.MetricsReceived, st.Ledger.Received)
	}
	if chk.MetricsSummarized != st.Ledger.Summarized {
		mismatch("/metrics summarized %d, ledger %d", chk.MetricsSummarized, st.Ledger.Summarized)
	}
	if chk.MetricsDropped != st.Ledger.DroppedSum {
		mismatch("/metrics dropped %d, ledger %d", chk.MetricsDropped, st.Ledger.DroppedSum)
	}
	return chk, nil
}

// getJSON fetches and decodes a JSON endpoint.
func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// getText fetches a text endpoint.
func getText(ctx context.Context, client *http.Client, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("loadgen: GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// promSum sums every sample of a counter family whose label block
// contains the given label pair (Prometheus text exposition).
func promSum(text, family, labelPair string) uint64 {
	var sum uint64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if !strings.HasPrefix(rest, "{") {
			continue
		}
		end := strings.Index(rest, "}")
		if end < 0 {
			continue
		}
		if !strings.Contains(rest[1:end], labelPair) {
			continue
		}
		val := strings.TrimSpace(rest[end+1:])
		n, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		sum += uint64(n)
	}
	return sum
}
