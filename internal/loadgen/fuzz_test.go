package loadgen

import (
	"strings"
	"testing"
)

// FuzzLoadConfig drives the supremm-load spec parser with arbitrary
// input. Properties: the parser never panics; any accepted config
// passes Validate; and the canonical render re-parses to the identical
// config with a stable render (parse -> Spec -> parse is a fixed
// point). This is the same shape as the repo's other codec fuzzers:
// decode errors are fine, acceptance must be self-consistent.
func FuzzLoadConfig(f *testing.F) {
	f.Add("url=http://127.0.0.1:8080,rps=200,dur=30s")
	f.Add("url=http://127.0.0.1:8080,rps=200,dur=30s,ramp=5s,mix=0.25,batch=64,threshold=0.8,seed=7,timeout=2s,inflight=128")
	f.Add("url=http://h:1 rps=0.5\tdur=1500ms")
	f.Add("url=https://example.com,rps=1e3,dur=1m,ramp=1m")
	f.Add("rps=100,dur=5s")
	f.Add("url=http://h:1,rps=NaN,dur=5s")
	f.Add("url=http://h:1,rps=1,dur=5s,rps=2")
	f.Add("garbage")
	f.Add("")
	f.Add("url=http://h:1,rps=1,dur=5s,mix=0x1p-2")
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			return // rejection is always acceptable; panics are not
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted a config failing Validate: %v", spec, verr)
		}
		canon := cfg.Spec()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if back != cfg {
			t.Fatalf("round trip diverged for %q:\n cfg:  %+v\n back: %+v", spec, cfg, back)
		}
		if back.Spec() != canon {
			t.Fatalf("canonical render unstable for %q: %q vs %q", spec, canon, back.Spec())
		}
		if strings.TrimSpace(canon) == "" {
			t.Fatalf("accepted config rendered an empty spec from %q", spec)
		}
	})
}
