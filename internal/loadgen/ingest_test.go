package loadgen

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/warehouse"
)

func TestParseIngestSpecDefaults(t *testing.T) {
	cfg, err := ParseIngestSpec("addr=127.0.0.1:9301")
	if err != nil {
		t.Fatal(err)
	}
	want := IngestConfig{
		Addr:      "127.0.0.1:9301",
		Jobs:      defIngestJobs,
		Conns:     defIngestConns,
		MaxHosts:  defIngestMaxHosts,
		WallCap:   defIngestWallCap,
		ChunkSize: defIngestChunk,
		Duration:  defIngestDur,
	}
	if cfg != want {
		t.Fatalf("defaults: got %+v want %+v", cfg, want)
	}
}

func TestIngestSpecRoundTrip(t *testing.T) {
	specs := []string{
		"addr=127.0.0.1:9301",
		"addr=10.0.0.1:7,jobs=64,conns=8,hosts=2,wall=1200,dur=10s,chunk=16,seed=99",
		"addr=h:1 jobs=3\tseed=5", // mixed separators
	}
	for _, s := range specs {
		cfg, err := ParseIngestSpec(s)
		if err != nil {
			t.Fatalf("ParseIngestSpec(%q): %v", s, err)
		}
		canon := cfg.IngestSpec()
		again, err := ParseIngestSpec(canon)
		if err != nil {
			t.Fatalf("reparse canonical %q: %v", canon, err)
		}
		if again != cfg {
			t.Fatalf("spec %q: round trip drifted: %+v != %+v", s, again, cfg)
		}
	}
}

func TestParseIngestSpecErrors(t *testing.T) {
	bad := []string{
		"",                          // empty
		"jobs=3",                    // addr missing
		"addr=a,jobs=0",             // out of range
		"addr=a,conns=300",          // out of range
		"addr=a,chunk=70000",        // > u16
		"addr=a,dur=-1s",            // negative
		"addr=a,addr=b",             // dup key
		"addr=a,warp=9",             // unknown key
		"addr=a,jobs",               // not k=v
		"addr=a,wall=banana",        // bad float
		"addr=a,seed=-1",            // bad uint
		"addr=a,jobs=1,hosts=65",    // out of range
		"addr=a,jobs=1,wall=0",      // non-positive
		"addr=a,jobs=1,dur=0s",      // non-positive
		"addr=a,jobs=1,chunk=0",     // non-positive
		"addr=a,jobs=1,conns=0",     // non-positive
		"addr=a,jobs=1,hosts=0",     // non-positive
		"addr=a,jobs=100001",        // out of range
		"addr=a,jobs=1,seed=999==9", // mangled pair
	}
	for _, s := range bad {
		if _, err := ParseIngestSpec(s); err == nil {
			t.Errorf("ParseIngestSpec(%q): want error, got nil", s)
		}
	}
}

// TestRunIngestReconciles is the harness proving itself in-process: a
// real server behind a real TCP listener, the firehose replayed against
// it, and ReconcileIngest joining the client's acks, the /debug/ingest
// ledger, and the /metrics counters exactly.
func TestRunIngestReconciles(t *testing.T) {
	reg := obs.NewRegistry()
	sink := warehouse.NewSharded(warehouse.ShardedConfig{Shards: 4})
	srv, err := ingest.NewServer(ingest.Config{Shards: 4, Sink: sink, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/ingest", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(srv.Status())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg.WritePrometheus(w)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cfg, err := ParseIngestSpec("addr=" + ln.Addr().String() + ",jobs=6,conns=3,hosts=2,wall=1500,dur=200ms,chunk=4,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunIngest(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecordsAcked != rep.RecordsGenerated || rep.RecordsGenerated == 0 {
		t.Fatalf("acked %d of %d generated", rep.RecordsAcked, rep.RecordsGenerated)
	}
	if rep.Spec != cfg.IngestSpec() {
		t.Fatalf("report spec %q != config spec %q", rep.Spec, cfg.IngestSpec())
	}

	chk, err := ReconcileIngest(ctx, hs.URL, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(chk.Mismatches) != 0 {
		t.Fatalf("reconciliation mismatches: %v", chk.Mismatches)
	}
	if chk.Ledger.Received != rep.RecordsGenerated {
		t.Fatalf("ledger received %d, generated %d", chk.Ledger.Received, rep.RecordsGenerated)
	}
	// The sink holds exactly the jobs the workload generated.
	if got := sink.Len(); got != cfg.Jobs {
		t.Fatalf("warehouse holds %d jobs, want %d", got, cfg.Jobs)
	}
}

func TestPromSum(t *testing.T) {
	text := strings.Join([]string{
		`# HELP ingest_records_total records`,
		`ingest_records_total{outcome="received",shard="0"} 3`,
		`ingest_records_total{outcome="received",shard="1"} 4`,
		`ingest_records_total{outcome="dropped",reason="decode",shard="0"} 2`,
		`ingest_records_total_other{outcome="received"} 100`,
		`other_family{outcome="received"} 50`,
	}, "\n")
	// The _other family shares the prefix but not the label block start,
	// so only the two real samples count.
	if got := promSum(text, "ingest_records_total", `outcome="received"`); got != 7 {
		t.Fatalf("received sum = %d, want 7", got)
	}
	if got := promSum(text, "ingest_records_total", `outcome="dropped"`); got != 2 {
		t.Fatalf("dropped sum = %d, want 2", got)
	}
	if got := promSum(text, "ingest_records_total", `outcome="missing"`); got != 0 {
		t.Fatalf("missing sum = %d, want 0", got)
	}
}
