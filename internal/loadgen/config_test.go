package loadgen

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpecMinimal(t *testing.T) {
	cfg, err := ParseSpec("url=http://127.0.0.1:8080,rps=100,dur=5s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BaseURL != "http://127.0.0.1:8080" || cfg.RPS != 100 || cfg.Duration != 5*time.Second {
		t.Fatalf("cfg = %+v", cfg)
	}
	// Defaults fill in.
	if cfg.BatchSize != defBatchSize || cfg.Timeout != defTimeout ||
		cfg.MaxInFlight != defMaxInFlight || cfg.Threshold != defThreshold {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestParseSpecFull(t *testing.T) {
	spec := "url=http://h:1,rps=250.5,dur=30s,ramp=5s,mix=0.25,batch=64,threshold=0.8,seed=42,timeout=2s,inflight=128"
	cfg, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		BaseURL: "http://h:1", RPS: 250.5, Duration: 30 * time.Second,
		Ramp: 5 * time.Second, BatchMix: 0.25, BatchSize: 64,
		Threshold: 0.8, Seed: 42, Timeout: 2 * time.Second, MaxInFlight: 128,
	}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
}

func TestParseSpecWhitespaceSeparators(t *testing.T) {
	cfg, err := ParseSpec("url=http://h:1 rps=10\tdur=1s")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RPS != 10 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	orig, err := ParseSpec("url=http://h:1,rps=250.5,dur=30s,ramp=1500ms,mix=0.25,batch=64,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(orig.Spec())
	if err != nil {
		t.Fatalf("canonical spec %q does not re-parse: %v", orig.Spec(), err)
	}
	if back != orig {
		t.Fatalf("round trip diverged:\n orig: %+v\n back: %+v", orig, back)
	}
	if back.Spec() != orig.Spec() {
		t.Fatalf("spec render unstable: %q vs %q", back.Spec(), orig.Spec())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"   ",
		"rps=100,dur=5s",                        // missing url
		"url=ftp://h:1,rps=1,dur=1s",            // bad scheme
		"url=http://h:1,dur=5s",                 // missing rps
		"url=http://h:1,rps=0,dur=5s",           // zero rps
		"url=http://h:1,rps=NaN,dur=5s",         // NaN rps
		"url=http://h:1,rps=2e9,dur=5s",         // absurd rps
		"url=http://h:1,rps=1",                  // missing dur
		"url=http://h:1,rps=1,dur=0s",           // zero dur
		"url=http://h:1,rps=1,dur=5s,ramp=6s",   // ramp > dur
		"url=http://h:1,rps=1,dur=5s,ramp=-1s",  // negative ramp
		"url=http://h:1,rps=1,dur=5s,mix=1.5",   // mix > 1
		"url=http://h:1,rps=1,dur=5s,dmix=-0.1", // negative dmix
		"url=http://h:1,rps=1,dur=5s,rmix=2",    // rmix > 1
		"url=http://h:1,rps=1,dur=5s,mix=0.5,dmix=0.3,rmix=0.3", // mixes sum past 1
		"url=http://h:1,rps=1,dur=5s,batch=0",                   // zero batch
		"url=http://h:1,rps=1,dur=5s,batch=5000",                // batch above server cap
		"url=http://h:1,rps=1,dur=5s,threshold=2",               // bad threshold
		"url=http://h:1,rps=1,dur=5s,timeout=0s",                // zero timeout
		"url=http://h:1,rps=1,dur=5s,inflight=0",                // zero inflight
		"url=http://h:1,rps=1,dur=5s,rps=2",                     // duplicate key
		"url=http://h:1,rps=1,dur=5s,warp=9",                    // unknown key
		"url=http://h:1,rps=1,dur=5s,batch",                     // not k=v
		"url=http://h:1,rps=1,dur=5s,=x",                        // empty key
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q parsed, want error", spec)
		}
	}
}

func TestArrivalScheduleMonotoneAndExact(t *testing.T) {
	cfg := Config{RPS: 100, Duration: 10 * time.Second, Ramp: 4 * time.Second}
	var prev time.Duration = -1
	count := int64(0)
	for k := int64(0); ; k++ {
		at := arrivalTime(cfg, k)
		if at < prev {
			t.Fatalf("arrival %d at %v before arrival %d at %v", k, at, k-1, prev)
		}
		prev = at
		if at >= cfg.Duration {
			break
		}
		count++
	}
	// Expected arrivals: ramp contributes RPS*Ramp/2 = 200, steady state
	// contributes RPS*(Duration-Ramp) = 600.
	if count < 790 || count > 810 {
		t.Fatalf("schedule yields %d arrivals, want ~800", count)
	}
	// Without ramp the schedule is uniform.
	flat := Config{RPS: 50, Duration: 2 * time.Second}
	if got := arrivalTime(flat, 25); got != time.Second/2 {
		t.Fatalf("flat arrival 25 at %v, want 500ms", got)
	}
}

func TestBuildBodyDeterministicAndMixed(t *testing.T) {
	cfg := Config{Seed: 7, BatchMix: 0.5, BatchSize: 4, Threshold: 0.5}
	sch := routeSchemas{
		classify: []string{"A", "B", "C"},
		discover: []string{"A", "B", "C"},
		runtime:  []string{"A", "B", "C"},
	}
	batches, singles := 0, 0
	for k := int64(0); k < 200; k++ {
		p1, b1 := buildBody(cfg, sch, k)
		p2, b2 := buildBody(cfg, sch, k)
		if p1 != p2 || string(b1) != string(b2) {
			t.Fatalf("arrival %d not deterministic", k)
		}
		switch p1 {
		case "/api/classify/batch":
			batches++
		case "/api/classify":
			singles++
		default:
			t.Fatalf("unexpected path %q", p1)
		}
	}
	if batches == 0 || singles == 0 {
		t.Fatalf("mix=0.5 produced batches=%d singles=%d", batches, singles)
	}
	// mix=0 and mix=1 are pure.
	for k := int64(0); k < 50; k++ {
		if p, _ := buildBody(Config{Seed: 7, BatchMix: 0, BatchSize: 4}, sch, k); p != "/api/classify" {
			t.Fatal("mix=0 issued a batch")
		}
		if p, _ := buildBody(Config{Seed: 7, BatchMix: 1, BatchSize: 4}, sch, k); p != "/api/classify/batch" {
			t.Fatal("mix=1 issued a single")
		}
	}
}

// TestBuildBodyRouteMix pins the four-way dice: one draw buckets batch,
// discovery assignment, runtime class, and single classify in that
// order, so adding dmix/rmix=0 leaves historical traffic byte-identical
// and every route appears under a mixed spec.
func TestBuildBodyRouteMix(t *testing.T) {
	sch := routeSchemas{
		classify: []string{"A", "B", "C"},
		discover: []string{"D", "E"},
		runtime:  []string{"F"},
	}
	base := Config{Seed: 7, BatchMix: 0.25, BatchSize: 4, Threshold: 0.5}
	mixed := base
	mixed.DiscoverMix, mixed.RuntimeMix = 0.25, 0.25
	counts := map[string]int{}
	for k := int64(0); k < 400; k++ {
		pb, bb := buildBody(base, sch, k)
		pm, bm := buildBody(mixed, sch, k)
		counts[pm]++
		// Arrivals the dice route identically must carry identical bodies:
		// dmix/rmix reuse the one mix draw, never consume extra randomness.
		if pb == pm && string(bb) != string(bm) {
			t.Fatalf("arrival %d body diverges on shared route %s", k, pm)
		}
		switch pm {
		case "/api/discover/assign":
			if strings.Contains(string(bm), "threshold") || !strings.Contains(string(bm), `"D"`) {
				t.Fatalf("assign body %s: want discovery schema, no threshold", bm)
			}
		case "/api/runtime-class":
			if !strings.Contains(string(bm), "threshold") || !strings.Contains(string(bm), `"F"`) {
				t.Fatalf("runtime body %s: want runtime schema with threshold", bm)
			}
		}
	}
	for _, route := range []string{"/api/classify", "/api/classify/batch", "/api/discover/assign", "/api/runtime-class"} {
		if counts[route] == 0 {
			t.Errorf("equal four-way mix never produced %s (counts %v)", route, counts)
		}
	}
	// dmix=rmix=0 reproduces the pre-knob dice exactly: route choice is
	// batch iff the one draw lands under mix, regardless of the new knobs.
	for k := int64(0); k < 100; k++ {
		p, _ := buildBody(base, sch, k)
		if p != "/api/classify" && p != "/api/classify/batch" {
			t.Fatalf("dmix=rmix=0 issued %s", p)
		}
	}
}

func TestSummarize(t *testing.T) {
	if s := summarize(nil); s.Count != 0 {
		t.Fatalf("empty summarize = %+v", s)
	}
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(100 - i) // reversed, summarize must sort
	}
	s := summarize(ms)
	if s.Count != 100 || s.Max != 100 || s.P50 != 50 || s.P99 != 99 {
		t.Fatalf("summarize = %+v", s)
	}
	if s.Mean < 50 || s.Mean > 51 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestSpecContainsEveryKey(t *testing.T) {
	cfg, err := ParseSpec("url=http://h:1,rps=1,dur=1s")
	if err != nil {
		t.Fatal(err)
	}
	spec := cfg.Spec()
	for _, key := range []string{"url=", "rps=", "dur=", "ramp=", "mix=", "dmix=", "rmix=", "batch=", "threshold=", "seed=", "timeout=", "inflight="} {
		if !strings.Contains(spec, key) {
			t.Errorf("canonical spec %q missing %q", spec, key)
		}
	}
}
