package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Config parameterizes one open-loop load run. The canonical wire form
// is the spec string (ParseSpec / Spec), which supremm-load's flags
// compile down to and which the soak harness records verbatim in its
// JSON report so a run is reproducible from the artifact alone.
type Config struct {
	// BaseURL is the target server root, e.g. http://127.0.0.1:8080.
	BaseURL string
	// RPS is the steady-state arrival rate (arrivals per second).
	RPS float64
	// Duration is the total run length.
	Duration time.Duration
	// Ramp linearly grows the arrival rate from 0 to RPS over this
	// prefix of the run (0 = start at full rate).
	Ramp time.Duration
	// BatchMix is the fraction of arrivals sent to /api/classify/batch
	// instead of /api/classify, decided per arrival by seeded dice.
	BatchMix float64
	// DiscoverMix is the fraction of arrivals sent to
	// /api/discover/assign (requires the target to have a discovery fit
	// loaded). The same per-arrival dice decide the route, so
	// BatchMix + DiscoverMix + RuntimeMix must not exceed 1; the
	// remainder goes to /api/classify.
	DiscoverMix float64
	// RuntimeMix is the fraction of arrivals sent to /api/runtime-class.
	RuntimeMix float64
	// BatchSize is the row count of each batch request.
	BatchSize int
	// Threshold is the classification threshold sent with every request.
	Threshold float64
	// Seed drives every random decision (row values, batch/single mix),
	// so two runs with one seed issue byte-identical request bodies in
	// the same arrival order.
	Seed uint64
	// Timeout is the per-request client timeout.
	Timeout time.Duration
	// MaxInFlight caps concurrently outstanding requests client-side.
	// Open-loop arrivals beyond the cap are counted as dropped, not
	// silently serialized -- closed-loop backpressure would mask the
	// very overload behaviour the generator exists to measure.
	MaxInFlight int
}

// Defaults for spec keys the caller omits.
const (
	defBatchSize   = 32
	defThreshold   = 0.5
	defTimeout     = 10 * time.Second
	defMaxInFlight = 512
)

// Validate checks a config for use by Run.
func (c Config) Validate() error {
	switch {
	case c.BaseURL == "":
		return fmt.Errorf("loadgen: url is required")
	case !strings.HasPrefix(c.BaseURL, "http://") && !strings.HasPrefix(c.BaseURL, "https://"):
		return fmt.Errorf("loadgen: url %q must be http(s)://", c.BaseURL)
	case math.IsNaN(c.RPS) || c.RPS <= 0 || c.RPS > 1e6:
		return fmt.Errorf("loadgen: rps %v outside (0, 1e6]", c.RPS)
	case c.Duration <= 0:
		return fmt.Errorf("loadgen: dur must be positive, got %v", c.Duration)
	case c.Ramp < 0 || c.Ramp > c.Duration:
		return fmt.Errorf("loadgen: ramp %v outside [0, dur=%v]", c.Ramp, c.Duration)
	case math.IsNaN(c.BatchMix) || c.BatchMix < 0 || c.BatchMix > 1:
		return fmt.Errorf("loadgen: mix %v outside [0,1]", c.BatchMix)
	case math.IsNaN(c.DiscoverMix) || c.DiscoverMix < 0 || c.DiscoverMix > 1:
		return fmt.Errorf("loadgen: dmix %v outside [0,1]", c.DiscoverMix)
	case math.IsNaN(c.RuntimeMix) || c.RuntimeMix < 0 || c.RuntimeMix > 1:
		return fmt.Errorf("loadgen: rmix %v outside [0,1]", c.RuntimeMix)
	case c.BatchMix+c.DiscoverMix+c.RuntimeMix > 1:
		return fmt.Errorf("loadgen: mix+dmix+rmix = %v exceeds 1",
			c.BatchMix+c.DiscoverMix+c.RuntimeMix)
	case c.BatchSize <= 0 || c.BatchSize > 4096:
		return fmt.Errorf("loadgen: batch %d outside [1,4096]", c.BatchSize)
	case math.IsNaN(c.Threshold) || c.Threshold < 0 || c.Threshold > 1:
		return fmt.Errorf("loadgen: threshold %v outside [0,1]", c.Threshold)
	case c.Timeout <= 0:
		return fmt.Errorf("loadgen: timeout must be positive, got %v", c.Timeout)
	case c.MaxInFlight <= 0:
		return fmt.Errorf("loadgen: inflight must be positive, got %d", c.MaxInFlight)
	}
	return nil
}

// ParseSpec parses a load spec: comma- or whitespace-separated k=v
// pairs, e.g.
//
//	url=http://127.0.0.1:8080,rps=200,dur=30s,ramp=5s,mix=0.25,batch=64,seed=7
//
// Keys: url, rps, dur, ramp, mix, dmix, rmix, batch, threshold, seed,
// timeout, inflight. url, rps, and dur are required; the rest default
// sanely.
// The returned config always passes Validate.
func ParseSpec(s string) (Config, error) {
	cfg := Config{
		BatchSize:   defBatchSize,
		Threshold:   defThreshold,
		Timeout:     defTimeout,
		MaxInFlight: defMaxInFlight,
	}
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n'
	})
	if len(fields) == 0 {
		return Config{}, fmt.Errorf("loadgen: empty spec")
	}
	seen := map[string]bool{}
	for _, field := range fields {
		key, val, ok := strings.Cut(field, "=")
		if !ok || key == "" || val == "" {
			return Config{}, fmt.Errorf("loadgen: spec entry %q is not key=value", field)
		}
		if seen[key] {
			return Config{}, fmt.Errorf("loadgen: spec key %q given twice", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "url":
			cfg.BaseURL = val
		case "rps":
			cfg.RPS, err = parseFloat(key, val)
		case "dur":
			cfg.Duration, err = parseDuration(key, val)
		case "ramp":
			cfg.Ramp, err = parseDuration(key, val)
		case "mix":
			cfg.BatchMix, err = parseFloat(key, val)
		case "dmix":
			cfg.DiscoverMix, err = parseFloat(key, val)
		case "rmix":
			cfg.RuntimeMix, err = parseFloat(key, val)
		case "batch":
			cfg.BatchSize, err = parseInt(key, val)
		case "threshold":
			cfg.Threshold, err = parseFloat(key, val)
		case "seed":
			cfg.Seed, err = parseUint(key, val)
		case "timeout":
			cfg.Timeout, err = parseDuration(key, val)
		case "inflight":
			cfg.MaxInFlight, err = parseInt(key, val)
		default:
			return Config{}, fmt.Errorf("loadgen: unknown spec key %q", key)
		}
		if err != nil {
			return Config{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Spec renders the config canonically; ParseSpec(c.Spec()) returns an
// identical config (keys sorted, durations in Go syntax).
func (c Config) Spec() string {
	pairs := map[string]string{
		"url":       c.BaseURL,
		"rps":       strconv.FormatFloat(c.RPS, 'g', -1, 64),
		"dur":       c.Duration.String(),
		"ramp":      c.Ramp.String(),
		"mix":       strconv.FormatFloat(c.BatchMix, 'g', -1, 64),
		"dmix":      strconv.FormatFloat(c.DiscoverMix, 'g', -1, 64),
		"rmix":      strconv.FormatFloat(c.RuntimeMix, 'g', -1, 64),
		"batch":     strconv.Itoa(c.BatchSize),
		"threshold": strconv.FormatFloat(c.Threshold, 'g', -1, 64),
		"seed":      strconv.FormatUint(c.Seed, 10),
		"timeout":   c.Timeout.String(),
		"inflight":  strconv.Itoa(c.MaxInFlight),
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+pairs[k])
	}
	return strings.Join(parts, ",")
}

func parseFloat(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("loadgen: bad %s %q: %v", key, val, err)
	}
	return f, nil
}

func parseInt(key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("loadgen: bad %s %q: %v", key, val, err)
	}
	return n, nil
}

func parseUint(key, val string) (uint64, error) {
	n, err := strconv.ParseUint(val, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("loadgen: bad %s %q: %v", key, val, err)
	}
	return n, nil
}

func parseDuration(key, val string) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, fmt.Errorf("loadgen: bad %s %q: %v", key, val, err)
	}
	return d, nil
}
