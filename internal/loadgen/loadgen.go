// Package loadgen is the seeded open-loop load generator behind
// cmd/supremm-load, the soak CI job, and manual capacity runs against
// supremm-serve. Open-loop means arrivals follow the configured
// schedule regardless of how slowly the server answers -- the only
// honest way to measure shedding and deadline behaviour, since a
// closed loop slows down exactly when the server does and never
// produces the overload it is supposed to study.
//
// Determinism: the arrival schedule is a closed-form function of
// (RPS, Ramp, Duration), and request k's body -- row values, batch or
// single, batch rows -- is derived from rng.Split(k) off the config
// seed. Two runs with the same spec against the same server issue the
// same requests in the same arrival order; only timing and the
// server's admission decisions differ.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/obs/flight"
	"repro/internal/rng"
)

// Report is the JSON artifact of one load run: what was sent, how the
// server disposed of it, and the latency distribution of everything
// that got an answer. The soak job uploads it; the chaos walkthrough
// in EXPERIMENTS.md reads it.
type Report struct {
	Spec     string `json:"spec"`     // canonical config, reproduces the run
	Features int    `json:"features"` // model feature count discovered at start
	Sent     int64  `json:"sent"`     // requests actually issued
	Dropped  int64  `json:"dropped"`  // arrivals skipped at the client in-flight cap

	OK           int64 `json:"ok"`           // 200
	Shed         int64 `json:"shed"`         // 429 (admission control)
	Timeouts     int64 `json:"timeouts"`     // 504 (deadline exceeded)
	Unavailable  int64 `json:"unavailable"`  // 503 (no model / breaker open)
	ServerErrors int64 `json:"serverErrors"` // other 5xx (e.g. isolated panics)
	BadRequests  int64 `json:"badRequests"`  // 4xx other than 429
	ClientErrors int64 `json:"clientErrors"` // transport errors / client-side timeouts

	// ShedWithoutRetryAfter counts 429s missing the Retry-After header
	// -- a violation of the shedding contract, asserted zero by the
	// soak and chaos harnesses.
	ShedWithoutRetryAfter int64 `json:"shedWithoutRetryAfter"`

	ByStatus map[string]int64 `json:"byStatus"`

	DurationSeconds float64 `json:"durationSeconds"`
	AchievedRPS     float64 `json:"achievedRPS"`

	// Latency of answered requests, milliseconds.
	LatencyMS LatencyStats `json:"latencyMS"`

	// Recorder is the flight-recorder reconciliation result, set when
	// the run was cross-checked against the target's /debug/requests
	// ledger (ReconcileRecorder / supremm-load -reconcile).
	Recorder *RecorderCheck `json:"recorder,omitempty"`
}

// LatencyStats summarizes answered-request latency in milliseconds.
type LatencyStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Answered counts responses that carried any HTTP status.
func (r *Report) Answered() int64 {
	return r.OK + r.Shed + r.Timeouts + r.Unavailable + r.ServerErrors + r.BadRequests
}

// arrivalTime returns when (offset from run start) the k-th arrival
// fires. The rate ramps linearly from 0 at t=0 to RPS at t=Ramp, then
// holds; arrivals are the inverse of the cumulative-rate integral, so
// the schedule is exact and deterministic rather than tick-quantized.
func arrivalTime(cfg Config, k int64) time.Duration {
	ramp := cfg.Ramp.Seconds()
	n := float64(k)
	if ramp > 0 {
		inRamp := cfg.RPS * ramp / 2 // arrivals during the whole ramp
		if n < inRamp {
			return time.Duration(math.Sqrt(2*n*ramp/cfg.RPS) * float64(time.Second))
		}
		return time.Duration((ramp + (n-inRamp)/cfg.RPS) * float64(time.Second))
	}
	return time.Duration(n / cfg.RPS * float64(time.Second))
}

// routeSchemas holds the per-route feature schemas discovered at run
// start. The classify schema is always fetched; discovery and runtime
// schemas only when their mixes drive traffic at those routes.
type routeSchemas struct {
	classify []string
	discover []string
	runtime  []string
}

// buildBody renders arrival k's request body and path. Values are
// derived from the per-arrival RNG stream, so bodies are reproducible
// and distinct across arrivals. One dice roll picks the route -- batch,
// discovery assignment, runtime class, or single classify in that
// order -- so a spec with dmix=rmix=0 issues byte-identical traffic to
// one that predates those knobs.
func buildBody(cfg Config, sch routeSchemas, k int64) (path string, body []byte) {
	r := rng.New(cfg.Seed).Split(uint64(k))
	row := func(features []string) map[string]float64 {
		m := make(map[string]float64, len(features))
		for _, name := range features {
			m[name] = math.Round(r.Float64()*1e6) / 1e6
		}
		return m
	}
	u := r.Float64()
	switch {
	case u < cfg.BatchMix:
		rows := make([]map[string]float64, cfg.BatchSize)
		for i := range rows {
			rows[i] = row(sch.classify)
		}
		b, _ := json.Marshal(map[string]any{"rows": rows, "threshold": cfg.Threshold})
		return "/api/classify/batch", b
	case u < cfg.BatchMix+cfg.DiscoverMix:
		b, _ := json.Marshal(map[string]any{"features": row(sch.discover)})
		return "/api/discover/assign", b
	case u < cfg.BatchMix+cfg.DiscoverMix+cfg.RuntimeMix:
		b, _ := json.Marshal(map[string]any{"features": row(sch.runtime), "threshold": cfg.Threshold})
		return "/api/runtime-class", b
	}
	b, _ := json.Marshal(map[string]any{"features": row(sch.classify), "threshold": cfg.Threshold})
	return "/api/classify", b
}

// fetchFeatures asks the target for the feature schema served at path
// (a GET endpoint answering a JSON body with a "features" array).
func fetchFeatures(ctx context.Context, client *http.Client, base, path string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: cannot reach %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: %s%s answered %d (model or fit not loaded?)", base, path, resp.StatusCode)
	}
	var meta struct {
		Features []string `json:"features"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return nil, fmt.Errorf("loadgen: decoding %s: %w", path, err)
	}
	if len(meta.Features) == 0 {
		return nil, fmt.Errorf("loadgen: %s reports an empty feature schema", path)
	}
	return meta.Features, nil
}

// discoverSchemas fetches every schema the configured mixes need.
func discoverSchemas(ctx context.Context, client *http.Client, cfg Config) (routeSchemas, error) {
	classify, err := fetchFeatures(ctx, client, cfg.BaseURL, "/api/features")
	if err != nil {
		return routeSchemas{}, err
	}
	sch := routeSchemas{classify: classify, discover: classify, runtime: classify}
	if cfg.DiscoverMix > 0 {
		if sch.discover, err = fetchFeatures(ctx, client, cfg.BaseURL, "/api/discover"); err != nil {
			return routeSchemas{}, err
		}
	}
	if cfg.RuntimeMix > 0 {
		if sch.runtime, err = fetchFeatures(ctx, client, cfg.BaseURL, "/api/runtime-class/features"); err != nil {
			return routeSchemas{}, err
		}
	}
	return sch, nil
}

// Run executes the configured load against cfg.BaseURL and returns the
// report. ctx cancellation stops scheduling new arrivals and waits for
// in-flight requests (bounded by cfg.Timeout).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxInFlight,
			MaxIdleConnsPerHost: cfg.MaxInFlight,
		},
	}
	sch, err := discoverSchemas(ctx, client, cfg)
	if err != nil {
		return nil, err
	}

	rep := &Report{Spec: cfg.Spec(), Features: len(sch.classify), ByStatus: map[string]int64{}}
	var mu sync.Mutex // guards ByStatus and latencies
	var latencies []float64
	var sent, dropped atomic.Int64
	var ok, shed, timeouts, unavail, serverErrs, badReqs, clientErrs, shedNoRetry atomic.Int64

	inFlight := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()

	fire := func(k int64) {
		defer wg.Done()
		defer func() { <-inFlight }()
		path, body := buildBody(cfg, sch, k)
		req, err := http.NewRequest(http.MethodPost, cfg.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			clientErrs.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		sent.Add(1)
		reqStart := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			clientErrs.Add(1)
			return
		}
		lat := time.Since(reqStart)
		// Drain so the connection is reusable.
		var sink [512]byte
		for {
			if _, err := resp.Body.Read(sink[:]); err != nil {
				break
			}
		}
		resp.Body.Close()

		switch {
		case resp.StatusCode == http.StatusOK:
			ok.Add(1)
		case resp.StatusCode == http.StatusTooManyRequests:
			shed.Add(1)
			if resp.Header.Get("Retry-After") == "" {
				shedNoRetry.Add(1)
			}
		case resp.StatusCode == http.StatusGatewayTimeout:
			timeouts.Add(1)
		case resp.StatusCode == http.StatusServiceUnavailable:
			unavail.Add(1)
		case resp.StatusCode >= 500:
			serverErrs.Add(1)
		default:
			badReqs.Add(1)
		}
		mu.Lock()
		rep.ByStatus[fmt.Sprint(resp.StatusCode)]++
		latencies = append(latencies, lat.Seconds()*1e3)
		mu.Unlock()
	}

	for k := int64(0); ; k++ {
		at := arrivalTime(cfg, k)
		if at >= cfg.Duration {
			break
		}
		if d := time.Until(start.Add(at)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		select {
		case inFlight <- struct{}{}:
			wg.Add(1)
			go fire(k)
		default:
			dropped.Add(1) // open loop: never block the schedule
		}
	}
	wg.Wait()

	rep.Sent, rep.Dropped = sent.Load(), dropped.Load()
	rep.OK, rep.Shed, rep.Timeouts = ok.Load(), shed.Load(), timeouts.Load()
	rep.Unavailable, rep.ServerErrors = unavail.Load(), serverErrs.Load()
	rep.BadRequests, rep.ClientErrors = badReqs.Load(), clientErrs.Load()
	rep.ShedWithoutRetryAfter = shedNoRetry.Load()
	rep.DurationSeconds = time.Since(start).Seconds()
	if rep.DurationSeconds > 0 {
		rep.AchievedRPS = float64(rep.Sent) / rep.DurationSeconds
	}
	rep.LatencyMS = summarize(latencies)
	return rep, nil
}

// RecorderCheck is the result of joining a load run's client-observed
// status counts against the target flight recorder's ledger. The
// recorder counts observed events per route and status independently of
// tail sampling, so when the client saw every response
// (ClientErrors == 0) the join must be exact -- any drift means a
// request the middleware never finalized or counted twice.
type RecorderCheck struct {
	// Observed / Kept / SampledOut / Evicted echo the recorder's global
	// ledger at reconciliation time (Observed == Kept + SampledOut).
	Observed   uint64 `json:"observed"`
	Kept       uint64 `json:"kept"`
	SampledOut uint64 `json:"sampledOut"`
	Evicted    uint64 `json:"evicted"`
	// ByStatus is the recorder's driven-route event count per status.
	ByStatus map[string]uint64 `json:"byStatus"`
	// ShadowRows / ShadowAgree echo the recorder's shadow-scoring
	// tallies; Lifecycle carries the loop's own ledger when the target
	// has the closed loop armed (nil otherwise). The two books are kept
	// independently — the loop counts as it scores, the recorder sums
	// per-request wide events — so their exact agreement is asserted.
	ShadowRows  uint64            `json:"shadowRows,omitempty"`
	ShadowAgree uint64            `json:"shadowAgree,omitempty"`
	Lifecycle   *lifecycle.Ledger `json:"lifecycle,omitempty"`
	// Mismatches lists every reconciliation failure; empty means the
	// ledger agreed exactly with the client-observed counts.
	Mismatches []string `json:"mismatches"`
}

// drivenRoutes are the routes the load generator drives; the
// reconciliation join is restricted to them so the recorder's view of
// other traffic (the schema discovery calls, scrapes) stays out of the
// comparison. Note /api/runtime-class/features is deliberately absent:
// it is the schema GET, not driven traffic.
var drivenRoutes = []string{
	"/api/classify", "/api/classify/batch",
	"/api/discover/assign", "/api/runtime-class",
}

// debugRequests fetches the target's /debug/requests with the given
// query string.
func debugRequests(ctx context.Context, client *http.Client, base, query string) (flight.Stats, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/requests?"+query, nil)
	if err != nil {
		return flight.Stats{}, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return flight.Stats{}, 0, fmt.Errorf("loadgen: cannot reach %s/debug/requests: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return flight.Stats{}, 0, fmt.Errorf("loadgen: %s/debug/requests answered %d (flight recorder not armed?)", base, resp.StatusCode)
	}
	var out struct {
		Stats   flight.Stats `json:"stats"`
		Matched int          `json:"matched"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return flight.Stats{}, 0, fmt.Errorf("loadgen: decoding /debug/requests: %w", err)
	}
	return out.Stats, out.Matched, nil
}

// drivenByStatus sums the recorder's driven-route counts per status.
func drivenByStatus(st flight.Stats) map[string]uint64 {
	sum := map[string]uint64{}
	for _, route := range drivenRoutes {
		for status, n := range st.ByRoute[route] {
			sum[status] += n
		}
	}
	return sum
}

// ReconcileRecorder joins rep against the flight recorder at base and
// fills rep.Recorder. The server files a request's wide event after the
// response body is written, so the client's counts can briefly lead the
// ledger; reconciliation polls until the recorder has observed at least
// as many driven-route events as the client got answers (or ctx
// expires),
// then asserts:
//
//   - the ledger balances: Observed == Kept + SampledOut and
//     Kept == Live + Evicted;
//   - per status code, the recorder observed exactly as many driven
//     responses as the client received;
//   - every error-class response (status >= 400) is retrievable from
//     the ring, provided nothing was evicted during the run.
//
// An exact join requires the client to have seen every response; when
// rep.ClientErrors > 0 some answers died on the wire and per-status
// equality cannot hold, so those comparisons are skipped and noted.
func ReconcileRecorder(ctx context.Context, base string, rep *Report) (*RecorderCheck, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	answered := uint64(rep.Answered())

	var st flight.Stats
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _, err = debugRequests(ctx, client, base, "limit=0")
		if err != nil {
			return nil, err
		}
		var total uint64
		for _, n := range drivenByStatus(st) {
			total += n
		}
		if total >= answered || time.Now().After(deadline) || ctx.Err() != nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	chk := &RecorderCheck{
		Observed:   st.Observed,
		Kept:       st.Kept,
		SampledOut: st.SampledOut,
		Evicted:    st.Evicted,
		ByStatus:   drivenByStatus(st),
		Mismatches: []string{},
	}
	flag := func(format string, args ...any) {
		chk.Mismatches = append(chk.Mismatches, fmt.Sprintf(format, args...))
	}

	if st.Observed != st.Kept+st.SampledOut {
		flag("ledger unbalanced: observed %d != kept %d + sampledOut %d", st.Observed, st.Kept, st.SampledOut)
	}
	if st.Kept != uint64(st.Live)+st.Evicted {
		flag("ledger unbalanced: kept %d != live %d + evicted %d", st.Kept, st.Live, st.Evicted)
	}

	if rep.ClientErrors > 0 {
		flag("skipped per-status join: %d client-side errors mean the client missed responses the server recorded", rep.ClientErrors)
		rep.Recorder = chk
		return chk, nil
	}

	// Exact per-status join: the union of statuses either side saw.
	statuses := map[string]bool{}
	for status := range rep.ByStatus {
		statuses[status] = true
	}
	for status := range chk.ByStatus {
		statuses[status] = true
	}
	for status := range statuses {
		clientN := uint64(rep.ByStatus[status])
		if got := chk.ByStatus[status]; got != clientN {
			flag("status %s: recorder observed %d driven events, client received %d", status, got, clientN)
		}
	}

	// Tail-sampling contract: error-class responses are never sampled
	// out, so with no evictions every one must be retrievable.
	if st.Evicted == 0 {
		for status, clientN := range rep.ByStatus {
			if status < "400" || clientN == 0 { // statuses are 3-digit strings; lexicographic works
				continue
			}
			// The route filter is a prefix match, so "/api/classify"
			// covers the single and batch endpoints in one query; the
			// discovery and runtime routes are queried exactly.
			var matched int64
			for _, route := range []string{"/api/classify", "/api/discover/assign", "/api/runtime-class"} {
				_, m, err := debugRequests(ctx, client, base, "limit=0&status="+status+"&route="+route)
				if err != nil {
					return nil, err
				}
				matched += int64(m)
			}
			if matched != clientN {
				flag("status %s: only %d of %d error events retrievable from the ring", status, matched, clientN)
			}
		}
	}

	// Shadow-scoring reconciliation: when the target has the lifecycle
	// loop armed, its ledger must balance and agree exactly with the
	// flight recorder's independently-summed shadow tallies. A 503
	// means the loop is off; that is not a mismatch.
	chk.ShadowRows, chk.ShadowAgree = st.ShadowRows, st.ShadowAgree
	if lg, ok, err := lifecycleLedger(ctx, client, base); err != nil {
		flag("lifecycle ledger unavailable: %v", err)
	} else if ok {
		chk.Lifecycle = &lg
		if lg.Eligible != lg.Scored+lg.Errors || lg.Scored != lg.Agree+lg.Disagree {
			flag("lifecycle ledger unbalanced: %+v", lg)
		}
		if st.ShadowRows != lg.Scored || st.ShadowAgree != lg.Agree {
			flag("shadow books disagree: recorder rows=%d agree=%d, lifecycle ledger scored=%d agree=%d",
				st.ShadowRows, st.ShadowAgree, lg.Scored, lg.Agree)
		}
	} else if st.ShadowRows != 0 {
		flag("recorder saw %d shadow-scored rows but the target reports no lifecycle loop", st.ShadowRows)
	}

	rep.Recorder = chk
	return chk, nil
}

// lifecycleLedger fetches the target's lifecycle ledger; ok=false means
// the loop is not armed (the endpoint answered 503).
func lifecycleLedger(ctx context.Context, client *http.Client, base string) (lifecycle.Ledger, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/lifecycle", nil)
	if err != nil {
		return lifecycle.Ledger{}, false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return lifecycle.Ledger{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return lifecycle.Ledger{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return lifecycle.Ledger{}, false, fmt.Errorf("loadgen: GET /api/lifecycle: status %d", resp.StatusCode)
	}
	var st lifecycle.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return lifecycle.Ledger{}, false, fmt.Errorf("loadgen: decoding /api/lifecycle: %w", err)
	}
	return st.Ledger, true, nil
}

// summarize computes the latency stats from raw millisecond samples.
func summarize(ms []float64) LatencyStats {
	if len(ms) == 0 {
		return LatencyStats{}
	}
	sort.Float64s(ms)
	sum := 0.0
	for _, v := range ms {
		sum += v
	}
	pct := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return LatencyStats{
		Count: int64(len(ms)),
		Mean:  sum / float64(len(ms)),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Max:   ms[len(ms)-1],
	}
}
