// Package loadgen is the seeded open-loop load generator behind
// cmd/supremm-load, the soak CI job, and manual capacity runs against
// supremm-serve. Open-loop means arrivals follow the configured
// schedule regardless of how slowly the server answers -- the only
// honest way to measure shedding and deadline behaviour, since a
// closed loop slows down exactly when the server does and never
// produces the overload it is supposed to study.
//
// Determinism: the arrival schedule is a closed-form function of
// (RPS, Ramp, Duration), and request k's body -- row values, batch or
// single, batch rows -- is derived from rng.Split(k) off the config
// seed. Two runs with the same spec against the same server issue the
// same requests in the same arrival order; only timing and the
// server's admission decisions differ.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Report is the JSON artifact of one load run: what was sent, how the
// server disposed of it, and the latency distribution of everything
// that got an answer. The soak job uploads it; the chaos walkthrough
// in EXPERIMENTS.md reads it.
type Report struct {
	Spec     string `json:"spec"`     // canonical config, reproduces the run
	Features int    `json:"features"` // model feature count discovered at start
	Sent     int64  `json:"sent"`     // requests actually issued
	Dropped  int64  `json:"dropped"`  // arrivals skipped at the client in-flight cap

	OK           int64 `json:"ok"`           // 200
	Shed         int64 `json:"shed"`         // 429 (admission control)
	Timeouts     int64 `json:"timeouts"`     // 504 (deadline exceeded)
	Unavailable  int64 `json:"unavailable"`  // 503 (no model / breaker open)
	ServerErrors int64 `json:"serverErrors"` // other 5xx (e.g. isolated panics)
	BadRequests  int64 `json:"badRequests"`  // 4xx other than 429
	ClientErrors int64 `json:"clientErrors"` // transport errors / client-side timeouts

	// ShedWithoutRetryAfter counts 429s missing the Retry-After header
	// -- a violation of the shedding contract, asserted zero by the
	// soak and chaos harnesses.
	ShedWithoutRetryAfter int64 `json:"shedWithoutRetryAfter"`

	ByStatus map[string]int64 `json:"byStatus"`

	DurationSeconds float64 `json:"durationSeconds"`
	AchievedRPS     float64 `json:"achievedRPS"`

	// Latency of answered requests, milliseconds.
	LatencyMS LatencyStats `json:"latencyMS"`
}

// LatencyStats summarizes answered-request latency in milliseconds.
type LatencyStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Answered counts responses that carried any HTTP status.
func (r *Report) Answered() int64 {
	return r.OK + r.Shed + r.Timeouts + r.Unavailable + r.ServerErrors + r.BadRequests
}

// arrivalTime returns when (offset from run start) the k-th arrival
// fires. The rate ramps linearly from 0 at t=0 to RPS at t=Ramp, then
// holds; arrivals are the inverse of the cumulative-rate integral, so
// the schedule is exact and deterministic rather than tick-quantized.
func arrivalTime(cfg Config, k int64) time.Duration {
	ramp := cfg.Ramp.Seconds()
	n := float64(k)
	if ramp > 0 {
		inRamp := cfg.RPS * ramp / 2 // arrivals during the whole ramp
		if n < inRamp {
			return time.Duration(math.Sqrt(2*n*ramp/cfg.RPS) * float64(time.Second))
		}
		return time.Duration((ramp + (n-inRamp)/cfg.RPS) * float64(time.Second))
	}
	return time.Duration(n / cfg.RPS * float64(time.Second))
}

// buildBody renders arrival k's request body and path. Values are
// derived from the per-arrival RNG stream, so bodies are reproducible
// and distinct across arrivals.
func buildBody(cfg Config, features []string, k int64) (path string, body []byte) {
	r := rng.New(cfg.Seed).Split(uint64(k))
	row := func() map[string]float64 {
		m := make(map[string]float64, len(features))
		for _, name := range features {
			m[name] = math.Round(r.Float64()*1e6) / 1e6
		}
		return m
	}
	if r.Float64() < cfg.BatchMix {
		rows := make([]map[string]float64, cfg.BatchSize)
		for i := range rows {
			rows[i] = row()
		}
		b, _ := json.Marshal(map[string]any{"rows": rows, "threshold": cfg.Threshold})
		return "/api/classify/batch", b
	}
	b, _ := json.Marshal(map[string]any{"features": row(), "threshold": cfg.Threshold})
	return "/api/classify", b
}

// discoverFeatures asks the target for its model schema.
func discoverFeatures(ctx context.Context, client *http.Client, base string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/features", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: cannot reach %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: %s/api/features answered %d (no model loaded?)", base, resp.StatusCode)
	}
	var meta struct {
		Features []string `json:"features"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return nil, fmt.Errorf("loadgen: decoding features: %w", err)
	}
	if len(meta.Features) == 0 {
		return nil, fmt.Errorf("loadgen: target reports an empty feature schema")
	}
	return meta.Features, nil
}

// Run executes the configured load against cfg.BaseURL and returns the
// report. ctx cancellation stops scheduling new arrivals and waits for
// in-flight requests (bounded by cfg.Timeout).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxInFlight,
			MaxIdleConnsPerHost: cfg.MaxInFlight,
		},
	}
	features, err := discoverFeatures(ctx, client, cfg.BaseURL)
	if err != nil {
		return nil, err
	}

	rep := &Report{Spec: cfg.Spec(), Features: len(features), ByStatus: map[string]int64{}}
	var mu sync.Mutex // guards ByStatus and latencies
	var latencies []float64
	var sent, dropped atomic.Int64
	var ok, shed, timeouts, unavail, serverErrs, badReqs, clientErrs, shedNoRetry atomic.Int64

	inFlight := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()

	fire := func(k int64) {
		defer wg.Done()
		defer func() { <-inFlight }()
		path, body := buildBody(cfg, features, k)
		req, err := http.NewRequest(http.MethodPost, cfg.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			clientErrs.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		sent.Add(1)
		reqStart := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			clientErrs.Add(1)
			return
		}
		lat := time.Since(reqStart)
		// Drain so the connection is reusable.
		var sink [512]byte
		for {
			if _, err := resp.Body.Read(sink[:]); err != nil {
				break
			}
		}
		resp.Body.Close()

		switch {
		case resp.StatusCode == http.StatusOK:
			ok.Add(1)
		case resp.StatusCode == http.StatusTooManyRequests:
			shed.Add(1)
			if resp.Header.Get("Retry-After") == "" {
				shedNoRetry.Add(1)
			}
		case resp.StatusCode == http.StatusGatewayTimeout:
			timeouts.Add(1)
		case resp.StatusCode == http.StatusServiceUnavailable:
			unavail.Add(1)
		case resp.StatusCode >= 500:
			serverErrs.Add(1)
		default:
			badReqs.Add(1)
		}
		mu.Lock()
		rep.ByStatus[fmt.Sprint(resp.StatusCode)]++
		latencies = append(latencies, lat.Seconds()*1e3)
		mu.Unlock()
	}

	for k := int64(0); ; k++ {
		at := arrivalTime(cfg, k)
		if at >= cfg.Duration {
			break
		}
		if d := time.Until(start.Add(at)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		select {
		case inFlight <- struct{}{}:
			wg.Add(1)
			go fire(k)
		default:
			dropped.Add(1) // open loop: never block the schedule
		}
	}
	wg.Wait()

	rep.Sent, rep.Dropped = sent.Load(), dropped.Load()
	rep.OK, rep.Shed, rep.Timeouts = ok.Load(), shed.Load(), timeouts.Load()
	rep.Unavailable, rep.ServerErrors = unavail.Load(), serverErrs.Load()
	rep.BadRequests, rep.ClientErrors = badReqs.Load(), clientErrs.Load()
	rep.ShedWithoutRetryAfter = shedNoRetry.Load()
	rep.DurationSeconds = time.Since(start).Seconds()
	if rep.DurationSeconds > 0 {
		rep.AchievedRPS = float64(rep.Sent) / rep.DurationSeconds
	}
	rep.LatencyMS = summarize(latencies)
	return rep, nil
}

// summarize computes the latency stats from raw millisecond samples.
func summarize(ms []float64) LatencyStats {
	if len(ms) == 0 {
		return LatencyStats{}
	}
	sort.Float64s(ms)
	sum := 0.0
	for _, v := range ms {
		sum += v
	}
	pct := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return LatencyStats{
		Count: int64(len(ms)),
		Mean:  sum / float64(len(ms)),
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Max:   ms[len(ms)-1],
	}
}
