package compile

import (
	"fmt"
	"math"

	"repro/internal/ml/bayes"
)

// Bayes is a compiled Gaussian Naive Bayes model. The per-class
// Gaussian parameters are lowered into flat row-major lookup tables
// with the constant subexpressions — -0.5*log(2*pi*var) and 2*var —
// evaluated once at compile time, so the predict path performs no
// math.Log calls at all. Precomputing a constant subexpression yields
// the identical float64 the interpreted path computes inline, so
// likelihoods stay bit-identical.
type Bayes struct {
	classes  []string
	p        int       // features
	priors   []float64 // log priors, len k
	means    []float64 // [k*p] row-major
	twoVars  []float64 // [k*p] 2*var
	logConst []float64 // [k*p] -0.5*log(2*pi*var)
	trained  []bool
}

// CompileBayes lowers an NB spec, validating table shapes up front.
func CompileBayes(spec *bayes.Spec) (*Bayes, error) {
	k := len(spec.Classes)
	if k == 0 {
		return nil, fmt.Errorf("compile: nb has no classes")
	}
	if len(spec.Priors) != k || len(spec.Means) != k || len(spec.Vars) != k || len(spec.Trained) != k {
		return nil, fmt.Errorf("compile: nb tables disagree on class count (%d classes, %d priors, %d means, %d vars, %d trained)",
			k, len(spec.Priors), len(spec.Means), len(spec.Vars), len(spec.Trained))
	}
	p := len(spec.Means[0])
	m := &Bayes{
		classes:  spec.Classes,
		p:        p,
		priors:   spec.Priors,
		means:    make([]float64, 0, k*p),
		twoVars:  make([]float64, 0, k*p),
		logConst: make([]float64, 0, k*p),
		trained:  spec.Trained,
	}
	for c := 0; c < k; c++ {
		if len(spec.Means[c]) != p || len(spec.Vars[c]) != p {
			return nil, fmt.Errorf("compile: nb class %d has ragged parameter rows (%d means, %d vars, expected %d)",
				c, len(spec.Means[c]), len(spec.Vars[c]), p)
		}
		m.means = append(m.means, spec.Means[c]...)
		for _, v := range spec.Vars[c] {
			m.twoVars = append(m.twoVars, 2*v)
			m.logConst = append(m.logConst, -0.5*math.Log(2*math.Pi*v))
		}
	}
	return m, nil
}

// Classes returns the class vocabulary.
func (m *Bayes) Classes() []string { return m.classes }

// NewScratch allocates a scratch sized for this model.
func (m *Bayes) NewScratch() *Scratch {
	k := len(m.classes)
	return &Scratch{lls: make([]float64, k), probs: make([]float64, k)}
}

// logLikelihood returns log P(x | class c) + log prior, bit-identical
// to the interpreted model: each feature contributes the same
// (logConst - d*d/twoVars) term in the same order.
func (m *Bayes) logLikelihood(c int, x []float64) float64 {
	ll := m.priors[c]
	base := c * m.p
	means := m.means[base : base+m.p]
	twoVars := m.twoVars[base : base+m.p]
	logConst := m.logConst[base : base+m.p]
	for f, v := range x {
		d := v - means[f]
		ll += logConst[f] - d*d/twoVars[f]
	}
	return ll
}

// Predict returns the maximum-posterior class index, bit-identical to
// the interpreted Model.Predict (-1 when no class trained).
func (m *Bayes) Predict(row []float64, s *Scratch) int {
	best, bestLL := -1, math.Inf(-1)
	for c := range m.classes {
		if !m.trained[c] {
			continue
		}
		if ll := m.logLikelihood(c, row); ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best
}

// PredictProb returns the winning class and the softmax-normalized
// posterior, bit-identical to the interpreted Model.PredictProb. The
// slice aliases scratch memory.
func (m *Bayes) PredictProb(row []float64, s *Scratch) (int, []float64) {
	k := len(m.classes)
	lls := s.lls
	maxLL := math.Inf(-1)
	for c := 0; c < k; c++ {
		if !m.trained[c] {
			lls[c] = math.Inf(-1)
			continue
		}
		lls[c] = m.logLikelihood(c, row)
		if lls[c] > maxLL {
			maxLL = lls[c]
		}
	}
	probs := s.probs
	for i := range probs {
		probs[i] = 0
	}
	var z float64
	for c := 0; c < k; c++ {
		if math.IsInf(lls[c], -1) {
			continue
		}
		probs[c] = math.Exp(lls[c] - maxLL)
		z += probs[c]
	}
	best := 0
	for c := 0; c < k; c++ {
		probs[c] /= z
		if probs[c] > probs[best] {
			best = c
		}
	}
	return best, probs
}
