//go:build race

package compile_test

// The race detector instruments memory operations and allocates on its
// own, so testing.AllocsPerRun counts are meaningless under -race. The
// alloc gate runs in its own CI job without -race; here we only skip.
const raceEnabled = true
