package compile_test

import (
	"sync"
	"testing"

	"repro/internal/ml/bayes"
	"repro/internal/ml/compile"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/testkit"
)

// The interpreted-vs-compiled microbenchmarks back the supremm-bench
// compiled leg with `go test -bench`-native numbers; compare revisions
// with `make bench BENCH_COUNT=10` plus benchstat (see EXPERIMENTS.md).

var benchModels struct {
	once  sync.Once
	err   error
	rows  [][]float64
	pairs map[string]*fuzzPair
}

func benchSetup(b *testing.B) (map[string]*fuzzPair, [][]float64) {
	b.Helper()
	benchModels.once.Do(func() {
		d := testkit.SynthClassification(testkit.SynthConfig{Seed: 42, Classes: 4, Features: 8, RowsPerCls: 30})
		benchModels.rows = d.X[:64]
		benchModels.pairs = make(map[string]*fuzzPair, 3)
		rf, err := forest.TrainClassifier(d, forest.Config{Trees: 60, Seed: 42})
		if err != nil {
			benchModels.err = err
			return
		}
		sv, err := svm.Train(d, svm.Config{Kernel: svm.RBF{Gamma: 0.1}, C: 10, Probability: true, Seed: 42})
		if err != nil {
			benchModels.err = err
			return
		}
		nb, err := bayes.Train(d)
		if err != nil {
			benchModels.err = err
			return
		}
		for name, im := range map[string]interpreted{"Forest": rf, "SVM": sv, "Bayes": nb} {
			cm, err := compile.Compile(im)
			if err != nil {
				benchModels.err = err
				return
			}
			benchModels.pairs[name] = &fuzzPair{im: im, cm: cm}
		}
	})
	if benchModels.err != nil {
		b.Fatal(benchModels.err)
	}
	return benchModels.pairs, benchModels.rows
}

func BenchmarkPredictProb(b *testing.B) {
	pairs, rows := benchSetup(b)
	for _, name := range []string{"Forest", "SVM", "Bayes"} {
		p := pairs[name]
		b.Run(name+"/interpreted", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = p.im.PredictProb(rows[i%len(rows)])
			}
		})
		b.Run(name+"/compiled", func(b *testing.B) {
			s := p.cm.NewScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = p.cm.PredictProb(rows[i%len(rows)], s)
			}
		})
	}
}

func BenchmarkPredict(b *testing.B) {
	pairs, rows := benchSetup(b)
	for _, name := range []string{"Forest", "SVM", "Bayes"} {
		p := pairs[name]
		b.Run(name+"/interpreted", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = p.im.Predict(rows[i%len(rows)])
			}
		})
		b.Run(name+"/compiled", func(b *testing.B) {
			s := p.cm.NewScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = p.cm.Predict(rows[i%len(rows)], s)
			}
		})
	}
}
