package compile_test

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml/bayes"
	"repro/internal/ml/compile"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/testkit"
)

// interpreted is the subset of the trained-model API the parity checks
// exercise; all three families satisfy it.
type interpreted interface {
	Predict(x []float64) int
	PredictProb(x []float64) (int, []float64)
	Classes() []string
}

// parityData builds a deterministic training set plus probe rows that
// include the training rows, perturbed rows, an all-zero row, and a row
// with NaN/Inf values (the compiled forest's branch arithmetic must
// take the same side of every split as the interpreted walk, NaN
// included).
func parityData(seed uint64) (*dataset.Dataset, [][]float64) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: seed, Classes: 3, Features: 5, RowsPerCls: 20})
	probes := make([][]float64, 0, d.Len()+3)
	probes = append(probes, d.X...)
	for i := 0; i < 8; i++ {
		row := append([]float64(nil), d.X[i*3]...)
		for f := range row {
			row[f] *= 1.0 + 0.37*float64(f-i)
		}
		probes = append(probes, row)
	}
	probes = append(probes, make([]float64, d.NumFeatures()))
	odd := make([]float64, d.NumFeatures())
	odd[0] = math.NaN()
	odd[1] = math.Inf(1)
	odd[2] = math.Inf(-1)
	probes = append(probes, odd)
	return d, probes
}

// assertParity checks Predict and PredictProb bit-for-bit over every
// probe row.
func assertParity(t *testing.T, im interpreted, cm compile.Model, probes [][]float64) {
	t.Helper()
	s := cm.NewScratch()
	for ri, row := range probes {
		wantCls := im.Predict(row)
		if got := cm.Predict(row, s); got != wantCls {
			t.Fatalf("row %d: Predict diverged: compiled %d, interpreted %d", ri, got, wantCls)
		}
		wantBest, wantProbs := im.PredictProb(row)
		gotBest, gotProbs := cm.PredictProb(row, s)
		if gotBest != wantBest {
			t.Fatalf("row %d: PredictProb class diverged: compiled %d, interpreted %d", ri, gotBest, wantBest)
		}
		if len(gotProbs) != len(wantProbs) {
			t.Fatalf("row %d: posterior length diverged: compiled %d, interpreted %d", ri, len(gotProbs), len(wantProbs))
		}
		for c := range wantProbs {
			if math.Float64bits(gotProbs[c]) != math.Float64bits(wantProbs[c]) {
				t.Fatalf("row %d: posterior[%d] diverged: compiled %x (%g), interpreted %x (%g)",
					ri, c, math.Float64bits(gotProbs[c]), gotProbs[c],
					math.Float64bits(wantProbs[c]), wantProbs[c])
			}
		}
	}
}

func TestForestParity(t *testing.T) {
	d, probes := parityData(11)
	m, err := forest.TrainClassifier(d, forest.Config{Trees: 40, Seed: 11, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := compile.Compile(m)
	if err != nil {
		t.Fatalf("compile forest: %v", err)
	}
	assertParity(t, m, cm, probes)
}

func TestForestParityAfterRestore(t *testing.T) {
	d, probes := parityData(12)
	m, err := forest.TrainClassifier(d, forest.Config{Trees: 25, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &forest.Classifier{}
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	cm, err := compile.Compile(restored)
	if err != nil {
		t.Fatalf("compile restored forest: %v", err)
	}
	assertParity(t, restored, cm, probes)
}

func TestSVMParity(t *testing.T) {
	kernels := map[string]svm.Kernel{
		"rbf":    svm.RBF{Gamma: 0.1},
		"linear": svm.Linear{},
		"poly":   svm.Poly{Gamma: 0.5, Coef0: 1, Degree: 3},
	}
	for name, kernel := range kernels {
		t.Run(name, func(t *testing.T) {
			d, probes := parityData(21)
			cfg := svm.Config{Kernel: kernel, C: 10, Probability: true, Seed: 21, Workers: 2}
			m, err := svm.Train(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cm, err := compile.Compile(m)
			if err != nil {
				t.Fatalf("compile svm (%s): %v", name, err)
			}
			assertParity(t, m, cm, probes)
		})
	}
}

func TestSVMParityUncalibrated(t *testing.T) {
	// Probability off exercises the steep-logistic fallback in pairProb.
	d, probes := parityData(22)
	m, err := svm.Train(d, svm.Config{Kernel: svm.RBF{Gamma: 0.2}, C: 5, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := compile.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, m, cm, probes)
}

func TestSVMParityAfterRestore(t *testing.T) {
	d, probes := parityData(23)
	m, err := svm.Train(d, svm.Config{Kernel: svm.RBF{Gamma: 0.1}, C: 10, Probability: true, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &svm.Model{}
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	cm, err := compile.Compile(restored)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, restored, cm, probes)
}

func TestBayesParity(t *testing.T) {
	d, probes := parityData(31)
	m, err := bayes.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := compile.Compile(m)
	if err != nil {
		t.Fatalf("compile nb: %v", err)
	}
	assertParity(t, m, cm, probes)
}

func TestBayesParityAfterRestore(t *testing.T) {
	d, probes := parityData(32)
	m, err := bayes.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &bayes.Model{}
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	cm, err := compile.Compile(restored)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, restored, cm, probes)
}

func TestCompileRejectsUnknownType(t *testing.T) {
	if _, err := compile.Compile(struct{}{}); err == nil {
		t.Fatal("expected an error compiling an unknown model type")
	}
}

func TestCompileForestRejectsMalformed(t *testing.T) {
	cases := map[string]*forest.Spec{
		"no trees":   {Classes: []string{"a", "b"}},
		"no classes": {Trees: [][]forest.NodeSpec{{{Feature: -1}}}},
		"empty tree": {Classes: []string{"a"}, Trees: [][]forest.NodeSpec{{}}},
		"child out of range": {Classes: []string{"a"}, Trees: [][]forest.NodeSpec{{
			{Feature: 0, Threshold: 1, Left: 1, Right: 9},
			{Feature: -1, Pred: 0},
		}}},
		"cycle": {Classes: []string{"a"}, Trees: [][]forest.NodeSpec{{
			{Feature: 0, Threshold: 1, Left: 0, Right: 1},
			{Feature: -1, Pred: 0},
		}}},
		"shared child": {Classes: []string{"a"}, Trees: [][]forest.NodeSpec{{
			{Feature: 0, Threshold: 1, Left: 1, Right: 1},
			{Feature: -1, Pred: 0},
		}}},
		"leaf class out of vocabulary": {Classes: []string{"a"}, Trees: [][]forest.NodeSpec{{
			{Feature: -1, Pred: 5},
		}}},
	}
	for name, spec := range cases {
		if _, err := compile.CompileForest(spec); err == nil {
			t.Errorf("%s: expected a compile error", name)
		}
	}
}

func TestCompileSVMRejectsMalformed(t *testing.T) {
	kernel := svm.RBF{Gamma: 0.1}
	cases := map[string]*svm.Spec{
		"no classes":   {Features: 2, Kernel: kernel},
		"bad features": {Classes: []string{"a", "b"}, Features: 0, Kernel: kernel},
		"nil kernel":   {Classes: []string{"a", "b"}, Features: 2},
		"pair class out of range": {Classes: []string{"a", "b"}, Features: 2, Kernel: kernel,
			Pairs: []svm.PairSpec{{I: 0, J: 7}}},
		"sv/coef mismatch": {Classes: []string{"a", "b"}, Features: 2, Kernel: kernel,
			Pairs: []svm.PairSpec{{I: 0, J: 1, SV: [][]float64{{1, 2}}, Coef: []float64{1, 2}}}},
		"ragged sv": {Classes: []string{"a", "b"}, Features: 2, Kernel: kernel,
			Pairs: []svm.PairSpec{{I: 0, J: 1, SV: [][]float64{{1}}, Coef: []float64{1}}}},
	}
	for name, spec := range cases {
		if _, err := compile.CompileSVM(spec); err == nil {
			t.Errorf("%s: expected a compile error", name)
		}
	}
}

func TestCompileBayesRejectsMalformed(t *testing.T) {
	cases := map[string]*bayes.Spec{
		"no classes": {},
		"table class mismatch": {Classes: []string{"a", "b"}, Priors: []float64{1},
			Means: [][]float64{{1}, {1}}, Vars: [][]float64{{1}, {1}}, Trained: []bool{true, true}},
		"ragged rows": {Classes: []string{"a", "b"}, Priors: []float64{1, 1},
			Means: [][]float64{{1, 2}, {1}}, Vars: [][]float64{{1, 1}, {1, 1}}, Trained: []bool{true, true}},
	}
	for name, spec := range cases {
		if _, err := compile.CompileBayes(spec); err == nil {
			t.Errorf("%s: expected a compile error", name)
		}
	}
}
