package compile

import (
	"fmt"
	"sort"

	"repro/internal/ml/forest"
)

// forestNode is one compiled tree node. Split nodes carry the feature,
// threshold and the index of their left child; the right child is
// always first+1 (the breadth-first relayout enqueues both children
// together), so descent needs no right pointer. Leaves have feature -1
// and carry the majority class.
type forestNode struct {
	threshold float64
	feature   int32 // -1 for leaves
	first     int32 // left child; right child is first+1
	pred      int32 // majority class at the node
}

// Forest is a compiled random-forest classifier: every tree's nodes
// relaid breadth-first into one contiguous array.
type Forest struct {
	classes []string
	nodes   []forestNode
	roots   []int32
	depths  []int32 // max node depth per tree (root = 0)
	trees   int
}

// CompileForest lowers a forest spec, validating that every tree is a
// well-formed binary tree (indices in range, no shared or revisited
// nodes, class predictions inside the vocabulary).
func CompileForest(spec *forest.Spec) (*Forest, error) {
	if len(spec.Trees) == 0 {
		return nil, fmt.Errorf("compile: forest has no trees")
	}
	k := len(spec.Classes)
	if k == 0 {
		return nil, fmt.Errorf("compile: forest has no classes")
	}
	total := 0
	for _, ts := range spec.Trees {
		total += len(ts)
	}
	f := &Forest{
		classes: spec.Classes,
		nodes:   make([]forestNode, 0, total),
		roots:   make([]int32, 0, len(spec.Trees)),
		trees:   len(spec.Trees),
	}
	f.depths = make([]int32, 0, len(spec.Trees))
	for t, ts := range spec.Trees {
		root, depth, err := f.layoutTree(ts, k)
		if err != nil {
			return nil, fmt.Errorf("compile: tree %d: %w", t, err)
		}
		f.roots = append(f.roots, root)
		f.depths = append(f.depths, depth)
	}
	// Visit trees in depth order so each interleaved group of four spans
	// similar depths: a group descends to its deepest member, so mixing a
	// deep tree with shallow ones wastes lane steps. Reordering is free
	// parity-wise — votes are commutative integer increments.
	sort.Sort(byDepth{f.depths, f.roots})
	return f, nil
}

// byDepth sorts the parallel (depths, roots) slices by descending depth.
type byDepth struct {
	depths []int32
	roots  []int32
}

func (s byDepth) Len() int           { return len(s.depths) }
func (s byDepth) Less(i, j int) bool { return s.depths[i] > s.depths[j] }
func (s byDepth) Swap(i, j int) {
	s.depths[i], s.depths[j] = s.depths[j], s.depths[i]
	s.roots[i], s.roots[j] = s.roots[j], s.roots[i]
}

// layoutTree appends one tree breadth-first and returns its root index
// in the global node array plus its maximum depth. BFS enqueues a
// split's children together, which is what guarantees they land in
// adjacent slots.
func (f *Forest) layoutTree(ts []forest.NodeSpec, numClasses int) (int32, int32, error) {
	if len(ts) == 0 {
		return 0, 0, fmt.Errorf("empty tree")
	}
	base := int32(len(f.nodes))
	// order[i] is the old index of the node at new position base+i.
	order := make([]int32, 0, len(ts))
	seen := make([]bool, len(ts))
	order = append(order, 0)
	seen[0] = true
	// newIndex[old] is only valid once old has been enqueued.
	newIndex := make([]int32, len(ts))
	depth := make([]int32, 0, len(ts)) // by BFS position, root = 0
	depth = append(depth, 0)
	maxDepth := int32(0)
	for qi := 0; qi < len(order); qi++ {
		old := order[qi]
		n := &ts[old]
		if n.Feature < 0 {
			if n.Pred < 0 || n.Pred >= numClasses {
				return 0, 0, fmt.Errorf("leaf %d predicts class %d outside vocabulary of %d", old, n.Pred, numClasses)
			}
			continue
		}
		l, r := n.Left, n.Right
		if l < 0 || int(l) >= len(ts) || r < 0 || int(r) >= len(ts) {
			return 0, 0, fmt.Errorf("node %d has child indices (%d, %d) outside [0, %d)", old, l, r, len(ts))
		}
		if seen[l] || seen[r] || l == r {
			return 0, 0, fmt.Errorf("node %d shares or revisits children (%d, %d): not a tree", old, l, r)
		}
		seen[l], seen[r] = true, true
		newIndex[l] = base + int32(len(order))
		newIndex[r] = base + int32(len(order)) + 1
		order = append(order, l, r)
		d := depth[qi] + 1
		depth = append(depth, d, d)
		if d > maxDepth {
			maxDepth = d
		}
	}
	for _, old := range order {
		n := &ts[old]
		fn := forestNode{threshold: n.Threshold, feature: -1, pred: int32(n.Pred)}
		if n.Feature >= 0 {
			fn.feature = int32(n.Feature)
			fn.first = newIndex[n.Left]
		}
		f.nodes = append(f.nodes, fn)
	}
	return base, maxDepth, nil
}

// Classes returns the class vocabulary.
func (f *Forest) Classes() []string { return f.classes }

// NewScratch allocates a scratch sized for this forest.
func (f *Forest) NewScratch() *Scratch {
	k := len(f.classes)
	return &Scratch{votes: make([]int, k), probs: make([]float64, k)}
}

// leafPred descends one tree and returns the leaf's class. The split
// test mirrors the interpreted walk exactly — "go left when
// x[feature] <= threshold" — written as its negation so NaN feature
// values take the same (right) branch in both forms; the taken branch
// is then just an index add.
func (f *Forest) leafPred(root int32, row []float64) int32 {
	nodes := f.nodes
	i := root
	for {
		n := &nodes[i]
		if n.feature < 0 {
			return n.pred
		}
		b := int32(0)
		if !(row[n.feature] <= n.threshold) {
			b = 1
		}
		i = n.first + b
	}
}

// votesInto tallies per-class tree votes into votes (len k). Trees are
// descended four at a time: each descent is a serial load-to-use
// dependency chain (node fetch -> compare -> child index -> next
// fetch), so four independent chains overlap in the pipeline where one
// would stall. Every lane runs for its group's maximum depth, stepping
// only while on a split node; a lane that reaches its leaf early just
// re-tests feature < 0. Vote tallies are integer increments, which
// commute exactly, so the final counts — and everything derived from
// them — are bit-identical to the one-tree-at-a-time walk.
func (f *Forest) votesInto(row []float64, votes []int) {
	for i := range votes {
		votes[i] = 0
	}
	nodes := f.nodes
	roots := f.roots
	t := 0
	for ; t+4 <= len(roots); t += 4 {
		i0, i1, i2, i3 := roots[t], roots[t+1], roots[t+2], roots[t+3]
		for {
			active := false
			if n := &nodes[i0]; n.feature >= 0 {
				active = true
				b := int32(0)
				if !(row[n.feature] <= n.threshold) {
					b = 1
				}
				i0 = n.first + b
			}
			if n := &nodes[i1]; n.feature >= 0 {
				active = true
				b := int32(0)
				if !(row[n.feature] <= n.threshold) {
					b = 1
				}
				i1 = n.first + b
			}
			if n := &nodes[i2]; n.feature >= 0 {
				active = true
				b := int32(0)
				if !(row[n.feature] <= n.threshold) {
					b = 1
				}
				i2 = n.first + b
			}
			if n := &nodes[i3]; n.feature >= 0 {
				active = true
				b := int32(0)
				if !(row[n.feature] <= n.threshold) {
					b = 1
				}
				i3 = n.first + b
			}
			if !active {
				break
			}
		}
		votes[nodes[i0].pred]++
		votes[nodes[i1].pred]++
		votes[nodes[i2].pred]++
		votes[nodes[i3].pred]++
	}
	for ; t < len(roots); t++ {
		votes[f.leafPred(roots[t], row)]++
	}
}

// Predict returns the majority-vote class index, bit-identical to the
// interpreted Classifier.Predict.
func (f *Forest) Predict(row []float64, s *Scratch) int {
	f.votesInto(row, s.votes)
	best := 0
	for i, v := range s.votes {
		if v > s.votes[best] {
			best = i
		}
	}
	return best
}

// PredictProb returns the winning class and vote-fraction posterior,
// bit-identical to the interpreted Classifier.PredictProb. The slice
// aliases scratch memory.
func (f *Forest) PredictProb(row []float64, s *Scratch) (int, []float64) {
	f.votesInto(row, s.votes)
	probs := s.probs
	best := 0
	for i, v := range s.votes {
		probs[i] = float64(v) / float64(f.trees)
		if v > s.votes[best] {
			best = i
		}
	}
	return best, probs
}
