// Package compile lowers trained classifiers into flat, cache-friendly
// serving forms that classify a feature row with zero heap allocations:
//
//   - random forests become one contiguous breadth-first node array with
//     a branch-minimal descent (children of every split occupy adjacent
//     slots, so the walk is an add of the comparison result);
//   - SVMs become a contiguous row-major support-vector matrix with the
//     kernel evaluated inline (no interface dispatch) and the pairwise
//     coupling solved in a reusable scratch buffer;
//   - Gaussian NB becomes precomputed log-space lookup tables, removing
//     every math.Log from the predict path.
//
// The contract is absolute bit parity: a compiled model performs the
// same floating-point operations in the same order as its interpreted
// source, so predicted classes AND posterior vectors are byte-identical
// — the golden corpus, the metamorphic suite, and the HTTP parity tests
// all hold unchanged when serving switches to the compiled form.
//
// Compile validates model structure up front (index bounds, tree
// acyclicity, matrix shapes) and returns an error instead of lowering a
// malformed model; callers fall back to the interpreted path. This
// keeps hostile or truncated snapshots — which the persistence fuzzers
// feed the loader — from panicking inside the compiler.
package compile

import (
	"fmt"

	"repro/internal/ml/bayes"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
)

// Model is a compiled classifier. Predict and PredictProb perform zero
// heap allocations; the scratch carries all per-request working memory
// and the posterior slice returned by PredictProb is owned by the
// scratch (valid until its next use). A scratch must not be shared by
// concurrent calls; the compiled model itself is immutable and safe for
// any number of goroutines.
type Model interface {
	// Classes returns the class vocabulary (aliases model storage).
	Classes() []string
	// NewScratch allocates a scratch sized for this model.
	NewScratch() *Scratch
	// Predict returns the plain predicted class index (majority vote /
	// max posterior), bit-identical to the interpreted model's Predict.
	Predict(row []float64, s *Scratch) int
	// PredictProb returns the winning class and the posterior vector,
	// bit-identical to the interpreted model's PredictProb. The slice
	// aliases scratch memory.
	PredictProb(row []float64, s *Scratch) (int, []float64)
}

// Scratch holds every per-request buffer a compiled model needs. One
// scratch serves any number of sequential rows; pool them (or keep one
// per worker) for concurrent serving.
type Scratch struct {
	votes []int     // RF tree votes / SVM pair votes, len k
	probs []float64 // posterior output buffer, len k
	lls   []float64 // NB per-class log likelihoods, len k
	sub   []float64 // SVM pairwise probability matrix, ka*ka (active-class space)
	p     []float64 // coupling posterior, len ka
	q     []float64 // coupling quadratic form, ka*ka
	qp    []float64 // coupling Q*p product, len ka
	kv    []float64 // SVM per-row kernel values, one per unique support vector
}

// Compile lowers a trained model into its compiled serving form. It
// accepts the three classifier families the paper evaluates; any other
// type (or a structurally invalid model) returns an error and the
// caller keeps serving the interpreted form.
func Compile(model any) (Model, error) {
	switch m := model.(type) {
	case *forest.Classifier:
		return CompileForest(m.Spec())
	case *svm.Model:
		return CompileSVM(m.Spec())
	case *bayes.Model:
		return CompileBayes(m.Spec())
	default:
		return nil, fmt.Errorf("compile: no compiled form for model type %T", model)
	}
}
