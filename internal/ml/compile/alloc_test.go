package compile_test

import (
	"sync"
	"testing"

	"repro/internal/ml/bayes"
	"repro/internal/ml/compile"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/testkit"
)

// allocModels trains and compiles one model per family once; the alloc
// tests share them so the gate stays fast.
var allocModels struct {
	once   sync.Once
	err    error
	rows   [][]float64
	models map[string]compile.Model
}

func compiledModels(t *testing.T) (map[string]compile.Model, [][]float64) {
	t.Helper()
	allocModels.once.Do(func() {
		d := testkit.SynthClassification(testkit.SynthConfig{Seed: 7, Classes: 3, Features: 6, RowsPerCls: 15})
		allocModels.rows = d.X[:16]
		allocModels.models = make(map[string]compile.Model, 3)
		rf, err := forest.TrainClassifier(d, forest.Config{Trees: 20, Seed: 7})
		if err != nil {
			allocModels.err = err
			return
		}
		sv, err := svm.Train(d, svm.Config{Kernel: svm.RBF{Gamma: 0.1}, C: 10, Probability: true, Seed: 7})
		if err != nil {
			allocModels.err = err
			return
		}
		nb, err := bayes.Train(d)
		if err != nil {
			allocModels.err = err
			return
		}
		for name, m := range map[string]any{"forest": rf, "svm": sv, "bayes": nb} {
			cm, err := compile.Compile(m)
			if err != nil {
				allocModels.err = err
				return
			}
			allocModels.models[name] = cm
		}
	})
	if allocModels.err != nil {
		t.Fatal(allocModels.err)
	}
	return allocModels.models, allocModels.rows
}

// assertZeroAllocs fails unless fn performs zero heap allocations per
// invocation (AllocsPerRun warms fn up once first, so lazily-grown
// internals are fine; steady-state must be clean).
func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, fn); avg != 0 {
		t.Errorf("%s: %.2f allocs per run, want 0", name, avg)
	}
}

// TestAllocCompiledPredict gates the tentpole invariant: every compiled
// model family classifies a row — label and posterior — with zero heap
// allocations, both for a single row and across a batch of rows.
func TestAllocCompiledPredict(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector allocations; the alloc gate runs without -race")
	}
	models, rows := compiledModels(t)
	for name, cm := range models {
		s := cm.NewScratch()
		row := rows[0]
		assertZeroAllocs(t, name+"/Predict/single", func() {
			_ = cm.Predict(row, s)
		})
		assertZeroAllocs(t, name+"/PredictProb/single", func() {
			_, _ = cm.PredictProb(row, s)
		})
		assertZeroAllocs(t, name+"/Predict/batch", func() {
			for _, r := range rows {
				_ = cm.Predict(r, s)
			}
		})
		assertZeroAllocs(t, name+"/PredictProb/batch", func() {
			for _, r := range rows {
				_, _ = cm.PredictProb(r, s)
			}
		})
	}
}
