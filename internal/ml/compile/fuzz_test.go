package compile_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/ml/bayes"
	"repro/internal/ml/compile"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/testkit"
)

// fuzzPair is one interpreted model with its compiled lowering.
type fuzzPair struct {
	im interpreted
	cm compile.Model
}

// fuzzModelCache trains a small model per (family, seed) pair on demand
// and caches it; the fuzzer then only pays training cost once per
// distinct model while exploring the row space freely.
var fuzzModelCache struct {
	mu sync.Mutex
	m  map[[2]uint64]*fuzzPair
}

const fuzzFeatures = 4

func fuzzModel(t *testing.T, algo uint8, seed uint64) *fuzzPair {
	t.Helper()
	key := [2]uint64{uint64(algo % 3), seed % 4}
	fuzzModelCache.mu.Lock()
	defer fuzzModelCache.mu.Unlock()
	if fuzzModelCache.m == nil {
		fuzzModelCache.m = make(map[[2]uint64]*fuzzPair)
	}
	if p, ok := fuzzModelCache.m[key]; ok {
		return p
	}
	d := testkit.SynthClassification(testkit.SynthConfig{
		Seed: key[1] + 100, Classes: 3, Features: fuzzFeatures, RowsPerCls: 12,
	})
	var im interpreted
	var err error
	switch key[0] {
	case 0:
		im, err = forest.TrainClassifier(d, forest.Config{Trees: 10, Seed: key[1]})
	case 1:
		im, err = svm.Train(d, svm.Config{Kernel: svm.RBF{Gamma: 0.2}, C: 5, Probability: true, Seed: key[1]})
	default:
		im, err = bayes.Train(d)
	}
	if err != nil {
		t.Fatalf("train fuzz model (algo %d, seed %d): %v", key[0], key[1], err)
	}
	cm, err := compile.Compile(im)
	if err != nil {
		t.Fatalf("compile fuzz model (algo %d, seed %d): %v", key[0], key[1], err)
	}
	p := &fuzzPair{im: im, cm: cm}
	fuzzModelCache.m[key] = p
	return p
}

// FuzzCompileParity drives arbitrary feature rows — including NaN, the
// infinities, subnormals, and wild magnitudes — through both the
// interpreted model and its compiled form and requires bit-identical
// labels and posteriors. Any divergence means the lowering changed an
// operation or its order.
func FuzzCompileParity(f *testing.F) {
	f.Add(uint8(0), uint64(0), 1.0, 2.0, 3.0, 4.0)
	f.Add(uint8(1), uint64(1), -1.5, 0.0, 2.5, 1e9)
	f.Add(uint8(2), uint64(2), math.Inf(1), math.Inf(-1), math.NaN(), 0.0)
	f.Add(uint8(0), uint64(3), math.NaN(), -3.25, 5.5, math.SmallestNonzeroFloat64)
	f.Add(uint8(1), uint64(0), 0.1, 0.2, 0.3, 0.4)
	f.Add(uint8(2), uint64(1), -1e300, 1e300, 1e-300, -0.0)
	f.Fuzz(func(t *testing.T, algo uint8, seed uint64, a, b, c, d float64) {
		p := fuzzModel(t, algo, seed)
		row := []float64{a, b, c, d}
		s := p.cm.NewScratch()
		if got, want := p.cm.Predict(row, s), p.im.Predict(row); got != want {
			t.Fatalf("Predict diverged on %v: compiled %d, interpreted %d", row, got, want)
		}
		gotBest, gotProbs := p.cm.PredictProb(row, s)
		wantBest, wantProbs := p.im.PredictProb(row)
		if gotBest != wantBest {
			t.Fatalf("PredictProb class diverged on %v: compiled %d, interpreted %d", row, gotBest, wantBest)
		}
		if len(gotProbs) != len(wantProbs) {
			t.Fatalf("posterior length diverged on %v: compiled %d, interpreted %d", row, len(gotProbs), len(wantProbs))
		}
		for i := range wantProbs {
			if math.Float64bits(gotProbs[i]) != math.Float64bits(wantProbs[i]) {
				t.Fatalf("posterior[%d] diverged on %v: compiled %g (%x), interpreted %g (%x)",
					i, row, gotProbs[i], math.Float64bits(gotProbs[i]),
					wantProbs[i], math.Float64bits(wantProbs[i]))
			}
		}
	})
}
