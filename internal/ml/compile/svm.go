package compile

import (
	"fmt"
	"math"

	"repro/internal/ml/svm"
)

// kernelKind selects the inlined kernel evaluation. Only the three
// persistable kernels compile; an unknown kernel keeps the model on the
// interpreted path.
type kernelKind uint8

const (
	kernelRBF kernelKind = iota
	kernelLinear
	kernelPoly
)

// svmPair is one compiled one-vs-one machine: a window into the shared
// (id, coefficient) arrays plus the decision threshold and Platt
// sigmoid.
type svmPair struct {
	svOff, svNum int // entries [svOff, svOff+svNum) in svID/coef
	rho          float64
	a, b         float64
	hasAB        bool
	i, j         int // class indices; positive decision votes for i
	ai, aj       int // the same classes in active-space (coupling matrix row/col)
}

// SVM is a compiled one-vs-one multiclass SVM. Support vectors are
// deduplicated across pairs into one contiguous row-major matrix: a
// training row that serves as a support vector in several pairs (common
// in one-vs-one, where each row can appear in k-1 machines) has its
// kernel value computed once per classified row and reused by every
// pair that references it. Each pair keeps its own (id, coefficient)
// window in the original support-vector order, so its decision sum
// accumulates the exact same float64 values in the exact same order as
// the interpreted machine — bit parity holds while the dominant kernel
// work drops by the duplication factor.
type SVM struct {
	classes  []string
	features int
	kind     kernelKind
	gamma    float64
	coef0    float64
	degree   int
	pairs    []svmPair
	uniq     []float64 // [numUniq * features] row-major unique support vectors
	numUniq  int
	svID     []int32   // per-pair support-vector ids into uniq (concatenated windows)
	coef     []float64 // per-pair coefficients, aligned with svID
	active   []int     // ascending class indices that trained in >=1 pair
}

// CompileSVM lowers an SVM spec, validating matrix shapes and class
// indices up front.
func CompileSVM(spec *svm.Spec) (*SVM, error) {
	k := len(spec.Classes)
	if k == 0 {
		return nil, fmt.Errorf("compile: svm has no classes")
	}
	if spec.Features <= 0 {
		return nil, fmt.Errorf("compile: svm reports %d features", spec.Features)
	}
	m := &SVM{classes: spec.Classes, features: spec.Features}
	switch kk := spec.Kernel.(type) {
	case svm.RBF:
		m.kind, m.gamma = kernelRBF, kk.Gamma
	case svm.Linear:
		m.kind = kernelLinear
	case svm.Poly:
		m.kind, m.gamma, m.coef0, m.degree = kernelPoly, kk.Gamma, kk.Coef0, kk.Degree
	default:
		return nil, fmt.Errorf("compile: svm kernel %T has no compiled form", spec.Kernel)
	}

	totalSV := 0
	for pi, p := range spec.Pairs {
		if p.I < 0 || p.I >= k || p.J < 0 || p.J >= k {
			return nil, fmt.Errorf("compile: pair %d classes (%d, %d) outside vocabulary of %d", pi, p.I, p.J, k)
		}
		if len(p.SV) != len(p.Coef) {
			return nil, fmt.Errorf("compile: pair %d has %d support vectors but %d coefficients", pi, len(p.SV), len(p.Coef))
		}
		for _, sv := range p.SV {
			if len(sv) != spec.Features {
				return nil, fmt.Errorf("compile: pair %d support vector has %d features, model has %d", pi, len(sv), spec.Features)
			}
		}
		totalSV += len(p.SV)
	}

	m.svID = make([]int32, 0, totalSV)
	m.coef = make([]float64, 0, totalSV)
	m.pairs = make([]svmPair, 0, len(spec.Pairs))
	seen := make([]bool, k)
	// Deduplicate support vectors by exact bit content. Equal-valued rows
	// map to one kernel evaluation; since K(sv, x) is a pure function of
	// the support vector's bits, sharing it is invisible to the result.
	uid := make(map[string]int32)
	key := make([]byte, 0, spec.Features*8)
	off := 0
	for _, p := range spec.Pairs {
		for _, sv := range p.SV {
			key = key[:0]
			for _, v := range sv {
				bits := math.Float64bits(v)
				key = append(key, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
					byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
			}
			id, ok := uid[string(key)]
			if !ok {
				id = int32(len(uid))
				uid[string(key)] = id
				m.uniq = append(m.uniq, sv...)
			}
			m.svID = append(m.svID, id)
		}
		m.coef = append(m.coef, p.Coef...)
		m.pairs = append(m.pairs, svmPair{
			svOff: off, svNum: len(p.SV),
			rho: p.Rho, a: p.A, b: p.B, hasAB: p.HasAB,
			i: p.I, j: p.J,
		})
		off += len(p.SV)
		seen[p.I], seen[p.J] = true, true
	}
	m.numUniq = len(uid)
	// The coupling problem's class set is a pure function of the pair
	// structure, so the active list and every pair's position in it are
	// resolved once here instead of per request. The scan order matches
	// the interpreted PredictProb exactly (ascending class index).
	activeAt := make([]int, k)
	for c, ok := range seen {
		if ok {
			activeAt[c] = len(m.active)
			m.active = append(m.active, c)
		}
	}
	for pi := range m.pairs {
		m.pairs[pi].ai = activeAt[m.pairs[pi].i]
		m.pairs[pi].aj = activeAt[m.pairs[pi].j]
	}
	return m, nil
}

// Classes returns the class vocabulary.
func (m *SVM) Classes() []string { return m.classes }

// NewScratch allocates a scratch sized for this model.
func (m *SVM) NewScratch() *Scratch {
	k := len(m.classes)
	ka := len(m.active)
	return &Scratch{
		votes: make([]int, k),
		probs: make([]float64, k),
		sub:   make([]float64, ka*ka),
		p:     make([]float64, ka),
		q:     make([]float64, ka*ka),
		qp:    make([]float64, ka),
		kv:    make([]float64, m.numUniq),
	}
}

// kernelInto evaluates K(sv, x) for every unique support vector into
// kv. The kernel arithmetic matches the interpreted Kernel.Eval exactly
// (same expressions, same accumulation order over features); evaluating
// each unique vector once instead of once per pair is pure reuse of an
// identical float64.
func (m *SVM) kernelInto(x []float64, kv []float64) {
	nf := m.features
	base := 0
	switch m.kind {
	case kernelRBF:
		for u := range kv {
			sv := m.uniq[base : base+nf : base+nf]
			base += nf
			var d2 float64
			for i, v := range sv {
				d := v - x[i]
				d2 += d * d
			}
			kv[u] = math.Exp(-m.gamma * d2)
		}
	case kernelLinear:
		for u := range kv {
			sv := m.uniq[base : base+nf : base+nf]
			base += nf
			var dot float64
			for i, v := range sv {
				dot += v * x[i]
			}
			kv[u] = dot
		}
	case kernelPoly:
		for u := range kv {
			sv := m.uniq[base : base+nf : base+nf]
			base += nf
			var dot float64
			for i, v := range sv {
				dot += v * x[i]
			}
			kv[u] = math.Pow(m.gamma*dot+m.coef0, float64(m.degree))
		}
	}
}

// decision evaluates one pair machine, sum_t coef_t K(sv_t, x) - rho,
// from the precomputed kernel values. The accumulation order matches
// the interpreted binaryMachine.decision exactly.
func (m *SVM) decision(p *svmPair, kv []float64) float64 {
	var s float64
	for t := p.svOff; t < p.svOff+p.svNum; t++ {
		s += m.coef[t] * kv[m.svID[t]]
	}
	return s - p.rho
}

// pairProb is the calibrated P(y=+1 | decision value f), identical to
// the interpreted binaryMachine.prob.
func (p *svmPair) pairProb(f float64) float64 {
	if !p.hasAB {
		return 1 / (1 + math.Exp(-2*f))
	}
	fApB := p.a*f + p.b
	if fApB >= 0 {
		return math.Exp(-fApB) / (1 + math.Exp(-fApB))
	}
	return 1 / (1 + math.Exp(fApB))
}

func clampProb(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Predict returns the one-vs-one voting winner, bit-identical to the
// interpreted Model.Predict (ties break toward the lower class index).
func (m *SVM) Predict(row []float64, s *Scratch) int {
	m.kernelInto(row, s.kv)
	votes := s.votes
	for i := range votes {
		votes[i] = 0
	}
	for pi := range m.pairs {
		p := &m.pairs[pi]
		if m.decision(p, s.kv) > 0 {
			votes[p.i]++
		} else {
			votes[p.j]++
		}
	}
	best := 0
	for c := 1; c < len(votes); c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}

// PredictProb returns the coupled posterior, bit-identical to the
// interpreted Model.PredictProb: per-pair Platt probabilities are
// clipped and coupled with the Wu-Lin-Weng fixed point over the active
// classes, in the same operation order, but entirely inside the
// scratch. The returned slice aliases scratch memory.
func (m *SVM) PredictProb(row []float64, s *Scratch) (int, []float64) {
	ka := len(m.active)
	probs := s.probs
	for i := range probs {
		probs[i] = 0
	}
	if ka == 0 {
		return 0, probs
	}
	// Fill the pairwise matrix directly in active-class space. The
	// interpreted path routes the same values through a full k x k
	// matrix first; entries no pair writes stay zero there, so the
	// scratch matrix is zeroed to match.
	m.kernelInto(row, s.kv)
	sub := s.sub
	for i := range sub {
		sub[i] = 0
	}
	for pi := range m.pairs {
		p := &m.pairs[pi]
		pr := clampProb(p.pairProb(m.decision(p, s.kv)), 1e-7, 1-1e-7)
		sub[p.ai*ka+p.aj] = pr
		sub[p.aj*ka+p.ai] = 1 - pr
	}
	coupleInto(sub, ka, s.p, s.q, s.qp)
	best := m.active[0]
	bestP := -1.0
	for a, ca := range m.active {
		probs[ca] = s.p[a]
		if s.p[a] > bestP {
			bestP = s.p[a]
			best = ca
		}
	}
	return best, probs
}

// coupleInto is the Wu-Lin-Weng (2004) pairwise-coupling fixed point on
// a flattened k x k matrix r, writing the posterior into p using q and
// qp as work areas. Operation for operation this is the interpreted
// coupleProbabilities with the allocations hoisted into the scratch.
func coupleInto(r []float64, k int, p, q, qp []float64) {
	if k == 1 {
		p[0] = 1
		return
	}
	for i := range q {
		q[i] = 0
	}
	for t := 0; t < k; t++ {
		p[t] = 1 / float64(k)
		for j := 0; j < k; j++ {
			if j == t {
				continue
			}
			q[t*k+t] += r[j*k+t] * r[j*k+t]
			q[t*k+j] = -r[j*k+t] * r[t*k+j]
		}
	}
	const maxIter = 100
	eps := 0.005 / float64(k)
	for iter := 0; iter < maxIter*k; iter++ {
		pQp := 0.0
		for t := 0; t < k; t++ {
			qp[t] = 0
			for j := 0; j < k; j++ {
				qp[t] += q[t*k+j] * p[j]
			}
			pQp += p[t] * qp[t]
		}
		maxErr := 0.0
		for t := 0; t < k; t++ {
			if e := math.Abs(qp[t] - pQp); e > maxErr {
				maxErr = e
			}
		}
		if maxErr < eps {
			break
		}
		for t := 0; t < k; t++ {
			diff := (-qp[t] + pQp) / q[t*k+t]
			p[t] += diff
			pQp = (pQp + diff*(diff*q[t*k+t]+2*qp[t])) / ((1 + diff) * (1 + diff))
			for j := 0; j < k; j++ {
				qp[j] = (qp[j] + diff*q[t*k+j]) / (1 + diff)
				p[j] /= 1 + diff
			}
		}
	}
}
