//go:build !race

package compile_test

const raceEnabled = false
