// Package pca implements principal component analysis via cyclic Jacobi
// eigendecomposition of the covariance matrix — the dimensionality-
// reduction technique the paper's Section II lists among the methods
// suited to SUPReMM data. At SUPReMM's attribute counts (tens of columns)
// Jacobi is exact, simple and fast.
package pca

import (
	"fmt"
	"math"
	"sort"
)

// Model is a fitted PCA basis.
type Model struct {
	Means      []float64   // per-feature means removed before projection
	Components [][]float64 // [k][p] principal axes, largest variance first
	Variances  []float64   // eigenvalues per retained component
	TotalVar   float64     // trace of the covariance matrix
}

// Fit computes the top-k principal components of rows.
func Fit(rows [][]float64, k int) (*Model, error) {
	n := len(rows)
	if n < 2 {
		return nil, fmt.Errorf("pca: need at least 2 rows, got %d", n)
	}
	p := len(rows[0])
	if k <= 0 || k > p {
		return nil, fmt.Errorf("pca: k=%d invalid for %d features", k, p)
	}

	means := make([]float64, p)
	for _, row := range rows {
		if len(row) != p {
			return nil, fmt.Errorf("pca: ragged rows")
		}
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}

	// Covariance matrix (sample, divide by n-1).
	cov := make([][]float64, p)
	for i := range cov {
		cov[i] = make([]float64, p)
	}
	for _, row := range rows {
		for i := 0; i < p; i++ {
			di := row[i] - means[i]
			for j := i; j < p; j++ {
				cov[i][j] += di * (row[j] - means[j])
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			cov[i][j] /= float64(n - 1)
			cov[j][i] = cov[i][j]
		}
	}

	evals, evecs := jacobiEigen(cov)
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return evals[order[a]] > evals[order[b]] })

	m := &Model{Means: means, Components: make([][]float64, k), Variances: make([]float64, k)}
	for i := 0; i < p; i++ {
		m.TotalVar += evals[i]
	}
	for c := 0; c < k; c++ {
		col := order[c]
		m.Variances[c] = evals[col]
		comp := make([]float64, p)
		for i := 0; i < p; i++ {
			comp[i] = evecs[i][col]
		}
		pinSign(comp)
		m.Components[c] = comp
	}
	return m, nil
}

// pinSign fixes an eigenvector's sign convention: the largest-magnitude
// coordinate (first on ties) is made positive. Eigenvectors are only
// defined up to sign, and the Jacobi rotation order can flip one without
// changing the subspace — pinning keeps fitted components, projections
// and golden files stable.
func pinSign(comp []float64) {
	pin := 0
	for i, v := range comp {
		if math.Abs(v) > math.Abs(comp[pin]) {
			pin = i
		}
	}
	if comp[pin] < 0 {
		for i := range comp {
			comp[i] = -comp[i]
		}
	}
}

// Transform projects a row onto the retained components. The row must
// carry exactly the feature count the model was fitted on: longer rows
// used to panic with index-out-of-range and shorter ones were silently
// truncated — both now return an error instead.
func (m *Model) Transform(row []float64) ([]float64, error) {
	if len(row) != len(m.Means) {
		return nil, fmt.Errorf("pca: row has %d features, model fitted on %d", len(row), len(m.Means))
	}
	out := make([]float64, len(m.Components))
	for c, comp := range m.Components {
		var s float64
		for j, v := range row {
			s += (v - m.Means[j]) * comp[j]
		}
		out[c] = s
	}
	return out, nil
}

// TransformAll projects every row, failing on the first length mismatch.
func (m *Model) TransformAll(rows [][]float64) ([][]float64, error) {
	out := make([][]float64, len(rows))
	for i, row := range rows {
		proj, err := m.Transform(row)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		out[i] = proj
	}
	return out, nil
}

// ExplainedVariance returns the fraction of total variance captured by
// the first c retained components.
func (m *Model) ExplainedVariance(c int) float64 {
	if m.TotalVar == 0 {
		return 0
	}
	if c > len(m.Variances) {
		c = len(m.Variances)
	}
	var s float64
	for i := 0; i < c; i++ {
		s += m.Variances[i]
	}
	return s / m.TotalVar
}

// jacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi
// rotations, returning eigenvalues and the matrix of column eigenvectors.
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	p := len(a)
	// Work on a copy.
	m := make([][]float64, p)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := make([][]float64, p)
	for i := range v {
		v[i] = make([]float64, p)
		v[i][i] = 1
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				if m[i][j] == 0 {
					continue
				}
				// Rotation angle zeroing m[i][j].
				theta := (m[j][j] - m[i][i]) / (2 * m[i][j])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				for k := 0; k < p; k++ {
					mik, mjk := m[i][k], m[j][k]
					m[i][k] = c*mik - s*mjk
					m[j][k] = s*mik + c*mjk
				}
				for k := 0; k < p; k++ {
					mki, mkj := m[k][i], m[k][j]
					m[k][i] = c*mki - s*mkj
					m[k][j] = s*mki + c*mkj
				}
				for k := 0; k < p; k++ {
					vki, vkj := v[k][i], v[k][j]
					v[k][i] = c*vki - s*vkj
					v[k][j] = s*vki + c*vkj
				}
			}
		}
	}
	evals := make([]float64, p)
	for i := 0; i < p; i++ {
		evals[i] = m[i][i]
	}
	return evals, v
}
