package pca

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestFitRecoversDominantAxis(t *testing.T) {
	// Data stretched along (1,1)/sqrt(2): first component must align.
	r := rng.New(1)
	rows := make([][]float64, 500)
	for i := range rows {
		a := r.NormalAt(0, 5)
		b := r.NormalAt(0, 0.3)
		rows[i] = []float64{a + b, a - b}
	}
	m, err := Fit(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	c0 := m.Components[0]
	align := math.Abs(c0[0]*1/math.Sqrt2 + c0[1]*1/math.Sqrt2)
	if align < 0.99 {
		t.Errorf("first component alignment = %v", align)
	}
	if m.Variances[0] <= m.Variances[1] {
		t.Error("variances not sorted")
	}
	if ev := m.ExplainedVariance(1); ev < 0.99 {
		t.Errorf("explained variance by first component = %v", ev)
	}
	if ev := m.ExplainedVariance(2); math.Abs(ev-1) > 1e-9 {
		t.Errorf("total explained variance = %v", ev)
	}
}

func TestTransformCentersData(t *testing.T) {
	r := rng.New(2)
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = []float64{r.NormalAt(10, 2), r.NormalAt(-5, 1), r.NormalAt(3, 0.5)}
	}
	m, err := Fit(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj := m.TransformAll(rows)
	for c := 0; c < 2; c++ {
		var mean float64
		for _, p := range proj {
			mean += p[c]
		}
		mean /= float64(len(proj))
		if math.Abs(mean) > 1e-9 {
			t.Errorf("projected component %d mean = %v, want 0", c, mean)
		}
	}
	// Projected variance of component c matches the eigenvalue.
	for c := 0; c < 2; c++ {
		var ss float64
		for _, p := range proj {
			ss += p[c] * p[c]
		}
		got := ss / float64(len(proj)-1)
		if math.Abs(got-m.Variances[c]) > 0.05*m.Variances[c] {
			t.Errorf("component %d variance %v vs eigenvalue %v", c, got, m.Variances[c])
		}
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	r := rng.New(3)
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{r.Normal(), r.Normal(), r.Normal(), r.Normal()}
	}
	m, err := Fit(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		for b := a; b < 4; b++ {
			var dot float64
			for j := range m.Components[a] {
				dot += m.Components[a][j] * m.Components[b][j]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Errorf("components %d.%d dot = %v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 1); err == nil {
		t.Error("empty input not rejected")
	}
	if _, err := Fit([][]float64{{1}, {2}}, 2); err == nil {
		t.Error("k > p not rejected")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, 1); err == nil {
		t.Error("ragged rows not rejected")
	}
}

func TestConstantData(t *testing.T) {
	rows := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	m, err := Fit(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Variances[0] != 0 {
		t.Errorf("constant data variance = %v", m.Variances[0])
	}
	if m.ExplainedVariance(1) != 0 {
		t.Error("explained variance of zero-variance data should be 0")
	}
}

func BenchmarkFit36(b *testing.B) {
	r := rng.New(1)
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = make([]float64, 36)
		for j := range rows[i] {
			rows[i][j] = r.Normal()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(rows, 5); err != nil {
			b.Fatal(err)
		}
	}
}
