package pca

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestFitRecoversDominantAxis(t *testing.T) {
	// Data stretched along (1,1)/sqrt(2): first component must align.
	r := rng.New(1)
	rows := make([][]float64, 500)
	for i := range rows {
		a := r.NormalAt(0, 5)
		b := r.NormalAt(0, 0.3)
		rows[i] = []float64{a + b, a - b}
	}
	m, err := Fit(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	c0 := m.Components[0]
	align := math.Abs(c0[0]*1/math.Sqrt2 + c0[1]*1/math.Sqrt2)
	if align < 0.99 {
		t.Errorf("first component alignment = %v", align)
	}
	if m.Variances[0] <= m.Variances[1] {
		t.Error("variances not sorted")
	}
	if ev := m.ExplainedVariance(1); ev < 0.99 {
		t.Errorf("explained variance by first component = %v", ev)
	}
	if ev := m.ExplainedVariance(2); math.Abs(ev-1) > 1e-9 {
		t.Errorf("total explained variance = %v", ev)
	}
}

func TestTransformCentersData(t *testing.T) {
	r := rng.New(2)
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = []float64{r.NormalAt(10, 2), r.NormalAt(-5, 1), r.NormalAt(3, 0.5)}
	}
	m, err := Fit(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := m.TransformAll(rows)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		var mean float64
		for _, p := range proj {
			mean += p[c]
		}
		mean /= float64(len(proj))
		if math.Abs(mean) > 1e-9 {
			t.Errorf("projected component %d mean = %v, want 0", c, mean)
		}
	}
	// Projected variance of component c matches the eigenvalue.
	for c := 0; c < 2; c++ {
		var ss float64
		for _, p := range proj {
			ss += p[c] * p[c]
		}
		got := ss / float64(len(proj)-1)
		if math.Abs(got-m.Variances[c]) > 0.05*m.Variances[c] {
			t.Errorf("component %d variance %v vs eigenvalue %v", c, got, m.Variances[c])
		}
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	r := rng.New(3)
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{r.Normal(), r.Normal(), r.Normal(), r.Normal()}
	}
	m, err := Fit(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		for b := a; b < 4; b++ {
			var dot float64
			for j := range m.Components[a] {
				dot += m.Components[a][j] * m.Components[b][j]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Errorf("components %d.%d dot = %v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 1); err == nil {
		t.Error("empty input not rejected")
	}
	if _, err := Fit([][]float64{{1}, {2}}, 2); err == nil {
		t.Error("k > p not rejected")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, 1); err == nil {
		t.Error("ragged rows not rejected")
	}
}

// TestTransformLengthValidation pins the serving-path bug: rows longer
// than the fitted feature count used to panic (Means index out of
// range) and shorter ones were silently truncated. Both must error.
func TestTransformLengthValidation(t *testing.T) {
	r := rng.New(4)
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{r.Normal(), r.Normal(), r.Normal()}
	}
	m, err := Fit(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transform([]float64{1, 2}); err == nil {
		t.Error("short row not rejected")
	}
	if _, err := m.Transform([]float64{1, 2, 3, 4}); err == nil {
		t.Error("long row not rejected (used to panic)")
	}
	if _, err := m.Transform([]float64{1, 2, 3}); err != nil {
		t.Errorf("exact-length row rejected: %v", err)
	}
	if _, err := m.TransformAll([][]float64{{1, 2, 3}, {1, 2}}); err == nil {
		t.Error("TransformAll did not propagate the length error")
	}
}

// TestSignConvention: eigenvectors are defined up to sign, so Fit pins
// each component's largest-magnitude coordinate positive. Refits are
// bit-identical, keeping golden files stable.
func TestSignConvention(t *testing.T) {
	r := rng.New(5)
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{r.NormalAt(2, 3), r.NormalAt(-1, 2), r.Normal(), r.NormalAt(4, 0.5)}
	}
	m, err := Fit(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	for c, comp := range m.Components {
		pin := 0
		for i, v := range comp {
			if math.Abs(v) > math.Abs(comp[pin]) {
				pin = i
			}
		}
		if comp[pin] < 0 {
			t.Errorf("component %d: largest-magnitude coordinate %v is negative", c, comp[pin])
		}
	}
	m2, err := Fit(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	for c := range m.Components {
		for j := range m.Components[c] {
			if math.Float64bits(m.Components[c][j]) != math.Float64bits(m2.Components[c][j]) {
				t.Fatalf("component %d[%d] differs between identical fits", c, j)
			}
		}
	}
}

func TestConstantData(t *testing.T) {
	rows := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	m, err := Fit(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Variances[0] != 0 {
		t.Errorf("constant data variance = %v", m.Variances[0])
	}
	if m.ExplainedVariance(1) != 0 {
		t.Error("explained variance of zero-variance data should be 0")
	}
}

func BenchmarkFit36(b *testing.B) {
	r := rng.New(1)
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = make([]float64, 36)
		for j := range rows[i] {
			rows[i][j] = r.Normal()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(rows, 5); err != nil {
			b.Fatal(err)
		}
	}
}
