package ensemble

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/ml/bayes"
	"repro/internal/ml/eval"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
)

// Persistence reuses each base learner's own wire format: the snapshot
// stores the canonical base names plus their MarshalBinary payloads and
// the meta weights, so a restored stack predicts bit-identically.

type modelSnapshot struct {
	Classes  []string
	Features int
	Bases    []string
	BaseBlob [][]byte
	Meta     [][]float64
}

// MarshalBinary serializes the trained ensemble.
func (m *Model) MarshalBinary() ([]byte, error) {
	snap := modelSnapshot{
		Classes:  m.classes,
		Features: m.features,
		Bases:    m.baseName,
		Meta:     m.meta,
	}
	for i, base := range m.bases {
		enc, ok := base.(interface{ MarshalBinary() ([]byte, error) })
		if !ok {
			return nil, fmt.Errorf("ensemble: base %s is not serializable", m.baseName[i])
		}
		blob, err := enc.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("ensemble: base %s: %w", m.baseName[i], err)
		}
		snap.BaseBlob = append(snap.BaseBlob, blob)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores an ensemble saved with MarshalBinary.
func (m *Model) UnmarshalBinary(data []byte) error {
	var snap modelSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return err
	}
	if len(snap.Bases) != len(snap.BaseBlob) {
		return fmt.Errorf("ensemble: snapshot names %d bases but carries %d payloads",
			len(snap.Bases), len(snap.BaseBlob))
	}
	bases := make([]eval.ProbClassifier, len(snap.Bases))
	for i, name := range snap.Bases {
		var base interface {
			eval.ProbClassifier
			UnmarshalBinary([]byte) error
		}
		switch name {
		case BaseBayes:
			base = &bayes.Model{}
		case BaseForest:
			base = &forest.Classifier{}
		case BaseSVM:
			base = &svm.Model{}
		default:
			return fmt.Errorf("ensemble: unknown base learner %q in snapshot", name)
		}
		if err := base.UnmarshalBinary(snap.BaseBlob[i]); err != nil {
			return fmt.Errorf("ensemble: base %s: %w", name, err)
		}
		bases[i] = base
	}
	m.classes = snap.Classes
	m.features = snap.Features
	m.baseName = snap.Bases
	m.bases = bases
	m.meta = snap.Meta
	return nil
}
