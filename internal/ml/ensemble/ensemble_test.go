package ensemble

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/testkit"
)

func synthSmall(t *testing.T) *dataset.Dataset {
	t.Helper()
	return testkit.SynthClassification(testkit.SynthConfig{
		Seed: 11, Classes: 3, Features: 4, RowsPerCls: 24, Spread: 0.4,
	})
}

func trainSmall(t *testing.T, cfg Config) *Model {
	t.Helper()
	m, err := Train(synthSmall(t), cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

// digest renders every posterior the model produces on d, losslessly.
func digest(t *testing.T, m *Model, d *dataset.Dataset) string {
	t.Helper()
	rows := make([][]float64, d.Len())
	for i, x := range d.X {
		_, probs := m.PredictProb(x)
		testkit.CheckProbRow(t, probs, 1e-9, "ensemble posterior")
		rows[i] = probs
	}
	return testkit.HashFloats(rows...)
}

func TestStackBeatsChance(t *testing.T) {
	d := synthSmall(t)
	m := trainSmall(t, Config{Seed: 7})
	if got := m.Accuracy(d); got < 0.9 {
		t.Fatalf("stacked training accuracy = %v, want >= 0.9", got)
	}
	if got, want := len(m.Classes()), d.NumClasses(); got != want {
		t.Fatalf("Classes() = %d, want %d", got, want)
	}
	if got, want := m.NumFeatures(), d.NumFeatures(); got != want {
		t.Fatalf("NumFeatures() = %d, want %d", got, want)
	}
}

// TestStackPermutedBasesBitIdentical is the stacking metamorphic
// invariant: the configured base order is presentation, not semantics.
// Every permutation of Bases must produce a bit-identical model.
func TestStackPermutedBasesBitIdentical(t *testing.T) {
	d := synthSmall(t)
	perms := [][]string{
		{"nb", "rf", "svm"},
		{"svm", "nb", "rf"},
		{"rf", "svm", "nb"},
		{"svm", "rf", "nb"},
	}
	var want string
	for i, bases := range perms {
		m := trainSmall(t, Config{Seed: 7, Bases: bases})
		got := digest(t, m, d)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("base order %v digest %s != canonical %s", bases, got, want)
		}
	}
}

func TestStackDeterministicAcrossRuns(t *testing.T) {
	d := synthSmall(t)
	a := digest(t, trainSmall(t, Config{Seed: 7}), d)
	b := digest(t, trainSmall(t, Config{Seed: 7}), d)
	if a != b {
		t.Fatalf("same-seed digests differ: %s vs %s", a, b)
	}
	c := digest(t, trainSmall(t, Config{Seed: 8}), d)
	if a == c {
		t.Fatalf("different seeds produced identical digests (%s)", a)
	}
}

func TestStackSubsetOfBases(t *testing.T) {
	d := synthSmall(t)
	m := trainSmall(t, Config{Seed: 3, Bases: []string{"rf", "nb"}})
	if got := m.Bases(); len(got) != 2 || got[0] != "nb" || got[1] != "rf" {
		t.Fatalf("Bases() = %v, want canonical [nb rf]", got)
	}
	if acc := m.Accuracy(d); acc < 0.85 {
		t.Fatalf("two-base stack accuracy = %v, want >= 0.85", acc)
	}
}

func TestStackConfigErrors(t *testing.T) {
	d := synthSmall(t)
	if _, err := Train(d, Config{Bases: []string{"nb", "nb"}}); err == nil {
		t.Fatal("duplicate base accepted")
	}
	if _, err := Train(d, Config{Bases: []string{"xgboost"}}); err == nil {
		t.Fatal("unknown base accepted")
	}
	tiny := testkit.SynthClassification(testkit.SynthConfig{
		Seed: 1, Classes: 2, Features: 2, RowsPerCls: 1,
	})
	if _, err := Train(tiny, Config{Folds: 5}); err == nil {
		t.Fatal("2 rows across 5 folds accepted")
	}
}

func TestStackRoundTripBitIdentical(t *testing.T) {
	d := synthSmall(t)
	m := trainSmall(t, Config{Seed: 7})
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var back Model
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if a, b := digest(t, m, d), digest(t, &back, d); a != b {
		t.Fatalf("round-trip digest %s != original %s", b, a)
	}
}

func TestStackRejectsCorruptSnapshot(t *testing.T) {
	var m Model
	if err := m.UnmarshalBinary([]byte("not a gob stream")); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestSoftmaxIntoSumsToOne(t *testing.T) {
	w := [][]float64{{1, -2, 0.5}, {-1, 3, 0}, {0, 0, -0.5}}
	out := make([]float64, 3)
	softmaxInto(w, []float64{0.2, 0.8}, out)
	var sum float64
	for _, p := range out {
		if p <= 0 || math.IsNaN(p) {
			t.Fatalf("non-positive softmax output %v", out)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sum = %v, want 1", sum)
	}
}
