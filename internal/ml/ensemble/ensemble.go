// Package ensemble implements a stacked "SuperLearner"-style classifier
// over the paper's three model families: naive Bayes, a random forest
// and a one-vs-one SVM as base learners, with a softmax meta-learner
// trained on out-of-fold base posteriors. Stacking is the natural
// challenger family for the closed-loop lifecycle: it can only match or
// beat its strongest base on the training objective, so a drift-trained
// stack is a credible promotion candidate without hand-tuning which
// single family copes best with the shifted distribution.
//
// Determinism: base learners train sequentially in canonical name order
// (nb, rf, svm -- the Bases config is sorted before use), fold
// assignment is a pure function of (Seed, rows), and the meta fit is
// fixed-iteration full-batch gradient descent from zero weights. The
// same config on the same dataset produces a bit-identical model at any
// worker count, and permuting the configured base order cannot change a
// single output bit.
package ensemble

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/ml/bayes"
	"repro/internal/ml/eval"
	"repro/internal/ml/forest"
	"repro/internal/ml/svm"
	"repro/internal/obs"
)

// Base-learner names accepted in Config.Bases.
const (
	BaseBayes  = "nb"
	BaseForest = "rf"
	BaseSVM    = "svm"
)

// Config holds stacked-ensemble training options.
type Config struct {
	// Bases names the base learners to stack (any subset of nb, rf,
	// svm; default all three). Order is irrelevant: the trainer sorts
	// the set canonically, so permuted configs are bit-identical.
	Bases []string

	// Folds is the cross-validation fold count used to obtain unbiased
	// (out-of-fold) base posteriors for the meta fit (default 3).
	Folds int

	// Seed drives fold assignment and is forwarded to the base
	// learners' own seeds.
	Seed uint64

	// SVM and Forest tune those base learners; the zero values take
	// svm.PaperConfig and a 60-tree forest. Bayes has no knobs.
	SVM    svm.Config
	Forest forest.Config

	// MetaIters/MetaRate/MetaL2 tune the softmax meta-learner's
	// full-batch gradient descent (defaults 300, 0.5, 1e-3).
	MetaIters int
	MetaRate  float64
	MetaL2    float64

	// Span, when set, receives a "stack" child span covering the fit.
	Span *obs.Span
}

func (c Config) withDefaults() Config {
	if len(c.Bases) == 0 {
		c.Bases = []string{BaseBayes, BaseForest, BaseSVM}
	}
	if c.Folds <= 0 {
		c.Folds = 3
	}
	if c.SVM.Kernel == nil {
		sc := svm.PaperConfig()
		sc.Seed = c.Seed
		c.SVM = sc
	}
	if !c.SVM.Probability {
		// The meta features are posteriors; an uncalibrated SVM has none.
		c.SVM.Probability = true
	}
	if c.Forest.Trees <= 0 {
		c.Forest = forest.Config{Trees: 60, Seed: c.Seed}
	}
	if c.MetaIters <= 0 {
		c.MetaIters = 300
	}
	if c.MetaRate <= 0 {
		c.MetaRate = 0.5
	}
	if c.MetaL2 <= 0 {
		c.MetaL2 = 1e-3
	}
	return c
}

// canonicalBases validates and sorts the base set; duplicates and
// unknown names are rejected.
func canonicalBases(names []string) ([]string, error) {
	seen := map[string]bool{}
	out := make([]string, 0, len(names))
	for _, n := range names {
		switch n {
		case BaseBayes, BaseForest, BaseSVM:
		default:
			return nil, fmt.Errorf("ensemble: unknown base learner %q", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("ensemble: base learner %q listed twice", n)
		}
		seen[n] = true
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// Model is a trained stacked ensemble: the base learners (in canonical
// name order) plus the softmax meta-learner over their concatenated
// posteriors. It satisfies eval.ProbClassifier.
type Model struct {
	classes  []string
	features int
	baseName []string
	bases    []eval.ProbClassifier
	// meta holds the softmax weights: classes x (len(bases)*classes + 1),
	// the final column being the bias.
	meta [][]float64
}

// Train fits the stacked ensemble on d.
func Train(d *dataset.Dataset, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	sp := cfg.Span.Child("stack")
	defer sp.End()
	bases, err := canonicalBases(cfg.Bases)
	if err != nil {
		return nil, err
	}
	if d.Len() < cfg.Folds {
		return nil, fmt.Errorf("ensemble: %d rows cannot fill %d folds", d.Len(), cfg.Folds)
	}
	if d.NumClasses() < 2 {
		return nil, fmt.Errorf("ensemble: need at least 2 classes, have %d", d.NumClasses())
	}
	sp.SetAttr("rows", d.Len())
	sp.SetAttr("bases", len(bases))

	// Out-of-fold posteriors: for each fold, train every base on the
	// complement and score the held-out rows, so the meta-learner never
	// sees a posterior a base produced for its own training row.
	nc := d.NumClasses()
	width := len(bases) * nc
	z := make([][]float64, d.Len())
	for i := range z {
		z[i] = make([]float64, width)
	}
	folds := foldAssign(d, cfg.Folds, cfg.Seed)
	for f := 0; f < cfg.Folds; f++ {
		var trainIdx, testIdx []int
		for i, fi := range folds {
			if fi == f {
				testIdx = append(testIdx, i)
			} else {
				trainIdx = append(trainIdx, i)
			}
		}
		if len(testIdx) == 0 {
			continue
		}
		part := d.Subset(trainIdx)
		if part.NumClasses() != nc {
			return nil, fmt.Errorf("ensemble: fold %d lost a class; use more rows or fewer folds", f)
		}
		for b, name := range bases {
			m, err := trainBase(name, part, cfg)
			if err != nil {
				return nil, fmt.Errorf("ensemble: fold %d base %s: %w", f, name, err)
			}
			for _, i := range testIdx {
				_, probs := m.PredictProb(d.X[i])
				copy(z[i][b*nc:(b+1)*nc], probs)
			}
		}
	}

	meta, err := fitSoftmax(z, d.Y, nc, cfg)
	if err != nil {
		return nil, err
	}

	// Final bases retrain on the full dataset (the standard stacking
	// recipe: CV posteriors shape the meta weights, full-data bases
	// serve).
	full := make([]eval.ProbClassifier, len(bases))
	for b, name := range bases {
		m, err := trainBase(name, d, cfg)
		if err != nil {
			return nil, fmt.Errorf("ensemble: base %s: %w", name, err)
		}
		full[b] = m
	}
	return &Model{
		classes:  append([]string(nil), d.ClassNames...),
		features: d.NumFeatures(),
		baseName: bases,
		bases:    full,
		meta:     meta,
	}, nil
}

// trainBase fits one named base learner.
func trainBase(name string, d *dataset.Dataset, cfg Config) (eval.ProbClassifier, error) {
	switch name {
	case BaseBayes:
		return bayes.Train(d)
	case BaseForest:
		fc := cfg.Forest
		fc.Seed = cfg.Seed
		return forest.TrainClassifier(d, fc)
	case BaseSVM:
		sc := cfg.SVM
		sc.Seed = cfg.Seed
		return svm.Train(d, sc)
	}
	return nil, fmt.Errorf("ensemble: unknown base learner %q", name)
}

// foldAssign deterministically assigns rows to folds, stratified by
// class (same rotation scheme as eval's CV folds).
func foldAssign(d *dataset.Dataset, k int, seed uint64) []int {
	folds := make([]int, d.Len())
	byClass := make([][]int, d.NumClasses())
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	offset := int(seed % uint64(k))
	for _, idx := range byClass {
		for j, i := range idx {
			folds[i] = (j + offset) % k
		}
	}
	return folds
}

// fitSoftmax trains the multinomial-logistic meta-learner by
// fixed-iteration full-batch gradient descent from zero weights:
// deterministic, order-independent within an iteration (rows accumulate
// in index order), and convex so the fixed budget lands in a stable
// neighbourhood.
func fitSoftmax(z [][]float64, y []int, nc int, cfg Config) ([][]float64, error) {
	if len(z) == 0 {
		return nil, fmt.Errorf("ensemble: no meta-training rows")
	}
	width := len(z[0])
	w := make([][]float64, nc)
	grad := make([][]float64, nc)
	for c := range w {
		w[c] = make([]float64, width+1)
		grad[c] = make([]float64, width+1)
	}
	probs := make([]float64, nc)
	n := float64(len(z))
	for it := 0; it < cfg.MetaIters; it++ {
		for c := range grad {
			for j := range grad[c] {
				grad[c][j] = 0
			}
		}
		for i, row := range z {
			softmaxInto(w, row, probs)
			for c := 0; c < nc; c++ {
				delta := probs[c]
				if c == y[i] {
					delta -= 1
				}
				g := grad[c]
				for j, v := range row {
					g[j] += delta * v
				}
				g[width] += delta
			}
		}
		for c := 0; c < nc; c++ {
			for j := 0; j <= width; j++ {
				l2 := cfg.MetaL2 * w[c][j]
				if j == width {
					l2 = 0 // bias is unregularized
				}
				w[c][j] -= cfg.MetaRate * (grad[c][j]/n + l2)
			}
		}
	}
	return w, nil
}

// softmaxInto evaluates the meta-learner on one posterior row.
func softmaxInto(w [][]float64, row []float64, out []float64) {
	width := len(row)
	maxScore := math.Inf(-1)
	for c := range w {
		s := w[c][width] // bias
		for j, v := range row {
			s += w[c][j] * v
		}
		out[c] = s
		if s > maxScore {
			maxScore = s
		}
	}
	var sum float64
	for c := range out {
		out[c] = math.Exp(out[c] - maxScore)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}

// Classes returns the class vocabulary.
func (m *Model) Classes() []string { return m.classes }

// Bases returns the canonical base-learner names.
func (m *Model) Bases() []string { return append([]string(nil), m.baseName...) }

// NumFeatures returns the trained feature width.
func (m *Model) NumFeatures() int { return m.features }

// metaRow concatenates the base posteriors for x in canonical order.
func (m *Model) metaRow(x []float64) []float64 {
	nc := len(m.classes)
	row := make([]float64, len(m.bases)*nc)
	for b, base := range m.bases {
		_, probs := base.PredictProb(x)
		copy(row[b*nc:(b+1)*nc], probs)
	}
	return row
}

// PredictProb returns the winning class index and the meta-learner's
// posterior vector (satisfies eval.ProbClassifier). The returned slice
// is caller-owned.
func (m *Model) PredictProb(x []float64) (int, []float64) {
	row := m.metaRow(x)
	probs := make([]float64, len(m.classes))
	softmaxInto(m.meta, row, probs)
	best := 0
	for c := 1; c < len(probs); c++ {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return best, probs
}

// Predict returns the plain predicted class index.
func (m *Model) Predict(x []float64) int {
	cls, _ := m.PredictProb(x)
	return cls
}

// Accuracy is the fraction of d's rows the ensemble labels correctly.
func (m *Model) Accuracy(d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, row := range d.X {
		if m.Predict(row) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}
