package forest_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml/eval"
	"repro/internal/ml/forest"
	"repro/internal/rng"
	"repro/internal/testkit"
)

func synthForestData(t *testing.T) (train, test *dataset.Dataset) {
	t.Helper()
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 53})
	tr, te := d.Split(rng.New(53), 0.7)
	return tr, te
}

// TestGoldenForest pins the random forest's observable behavior: OOB
// error, accuracies, the permutation-importance ranking, the prediction
// vector, and the serialized model bytes. The model is trained at two
// worker counts and must digest identically before the golden compare —
// parallel tree construction may not perturb results.
func TestGoldenForest(t *testing.T) {
	train, test := synthForestData(t)
	cfg := forest.Config{Trees: 60, Seed: 9, Workers: 1}
	m1, err := forest.TrainClassifier(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	m4, err := forest.TrainClassifier(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := m1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b4, err := m4.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if testkit.HashBytes(b1) != testkit.HashBytes(b4) {
		t.Fatal("worker count changed the serialized forest")
	}
	if m1.OOBError() != m4.OOBError() {
		t.Fatalf("worker count changed OOB error: %v vs %v", m1.OOBError(), m4.OOBError())
	}
	if !reflect.DeepEqual(m1.Importance(), m4.Importance()) {
		t.Fatal("worker count changed permutation importance")
	}

	preds := eval.Score(m1, test)
	classes := make([]int, len(preds))
	for i := range preds {
		classes[i] = preds[i].Pred
	}
	imp := m1.Importance()
	ranked := rankNames(train.FeatureNames, imp)

	// Round trip: a restored model must predict identically. The raw gob
	// bytes are deliberately NOT golden-hashed: encoding/gob assigns wire
	// type IDs from a process-global counter, so the stream depends on
	// what else has been gob-encoded earlier in the process (i.e. on test
	// execution order). The restored model's full-precision vote profile
	// pins the serialized parameters canonically instead.
	var back forest.Classifier
	if err := back.UnmarshalBinary(b1); err != nil {
		t.Fatal(err)
	}
	var restored []float64
	for i, row := range test.X {
		pred, probs := back.PredictProb(row)
		if pred != classes[i] {
			t.Fatalf("row %d: restored model disagrees", i)
		}
		restored = append(restored, probs...)
	}

	var b strings.Builder
	testkit.Section(&b, "random forest / synth seed 53, 60 trees")
	b.WriteString(testkit.KeyVals(map[string]float64{
		"oob_error":      m1.OOBError(),
		"train_accuracy": m1.Accuracy(train),
		"test_accuracy":  eval.Accuracy(preds),
	}))
	testkit.Section(&b, "importance ranking")
	for _, r := range ranked {
		fmt.Fprintf(&b, "%s = %s\n", r.name, testkit.Float(r.imp))
	}
	testkit.Section(&b, "digests")
	b.WriteString("predictions    = " + testkit.HashInts(classes) + "\n")
	b.WriteString("restored_probs = " + testkit.HashFloats(restored) + "\n")
	testkit.GoldenString(t, "forest.golden", b.String())
}

type rankedName struct {
	name string
	imp  float64
}

// rankNames sorts features by descending importance (ties by name), the
// same ordering core.RankFeatures uses for the Table 3 reproduction.
func rankNames(names []string, imp []float64) []rankedName {
	out := make([]rankedName, len(names))
	for i := range names {
		out[i] = rankedName{names[i], imp[i]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].imp != out[j].imp {
			return out[i].imp > out[j].imp
		}
		return out[i].name < out[j].name
	})
	return out
}
