package forest

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// Regressor is a trained random-forest regressor (variance-reduction
// splits, mean-leaf prediction), used for the paper's application-kernel
// wall-time regression extension.
type Regressor struct {
	cfg   Config
	trees []*tree
	oob   [][]int
	x     [][]float64
	y     []float64
}

// TrainRegressor fits a regression forest on rows x with targets y.
func TrainRegressor(x [][]float64, y []float64, cfg Config) (*Regressor, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("forest: bad regression inputs (%d rows, %d targets)", len(x), len(y))
	}
	cfg = cfg.withDefaults(len(x[0]), true)
	m := &Regressor{
		cfg:   cfg,
		trees: make([]*tree, cfg.Trees),
		oob:   make([][]int, cfg.Trees),
		x:     x,
		y:     y,
	}
	root := rng.New(cfg.Seed)
	if err := parallel.ForEachSeeded(root, cfg.Workers, cfg.Trees, func(t int, r *rng.Rand) error {
		rows, oob := bootstrap(r, len(x))
		b := &treeBuilder{
			x: x, target: y, regression: true,
			mtry: cfg.MTry, minLeaf: cfg.MinLeaf, maxDepth: cfg.MaxDepth, r: r,
		}
		m.trees[t] = b.build(rows)
		m.oob[t] = oob
		return nil
	}); err != nil {
		return nil, err
	}
	return m, nil
}

// Predict returns the ensemble-mean prediction.
func (m *Regressor) Predict(x []float64) float64 {
	var sum float64
	for _, t := range m.trees {
		sum += t.predictValue(x)
	}
	return sum / float64(len(m.trees))
}

// OOBR2 returns the out-of-bag R-squared ("% variance explained" in the R
// package's summary).
func (m *Regressor) OOBR2() float64 {
	n := len(m.x)
	sums := make([]float64, n)
	counts := make([]int, n)
	for t, tr := range m.trees {
		for _, i := range m.oob[t] {
			sums[i] += tr.predictValue(m.x[i])
			counts[i]++
		}
	}
	var mean float64
	for _, v := range m.y {
		mean += v
	}
	mean /= float64(n)
	var ssRes, ssTot float64
	for i := range m.y {
		if counts[i] == 0 {
			continue
		}
		pred := sums[i] / float64(counts[i])
		ssRes += (m.y[i] - pred) * (m.y[i] - pred)
		ssTot += (m.y[i] - mean) * (m.y[i] - mean)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
