package forest

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// Config holds forest training options.
type Config struct {
	// Trees is the ensemble size (default 200; R's default is 500).
	Trees int
	// MTry is the number of features tried per split (default sqrt(p)
	// for classification, p/3 for regression).
	MTry int
	// MinLeaf is the minimum rows per leaf (default 1).
	MinLeaf int
	// MaxDepth caps tree depth (0 = unlimited).
	MaxDepth int
	// Workers bounds concurrent tree construction (default GOMAXPROCS).
	Workers int
	// Seed drives bootstrap and feature sampling.
	Seed uint64
	// Span, when set, receives an "rf.trees" child span covering tree
	// construction; nil is a no-op and timing never touches the RNG.
	Span *obs.Span
}

func (c Config) withDefaults(p int, regression bool) Config {
	if c.Trees <= 0 {
		c.Trees = 200
	}
	if c.MTry <= 0 {
		if regression {
			c.MTry = p / 3
		} else {
			c.MTry = int(math.Sqrt(float64(p)))
		}
		if c.MTry < 1 {
			c.MTry = 1
		}
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Classifier is a trained random-forest classifier.
type Classifier struct {
	cfg     Config
	classes []string
	trees   []*tree
	oob     [][]int // per tree: training-row indices not in its bootstrap
	train   *dataset.Dataset
}

// TrainClassifier fits a random forest on the dataset. The returned model
// retains a reference to the training data for OOB-based estimates.
func TrainClassifier(d *dataset.Dataset, cfg Config) (*Classifier, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("forest: empty training set")
	}
	cfg = cfg.withDefaults(d.NumFeatures(), false)
	tsp := cfg.Span.Child("rf.trees")
	tsp.SetAttr("trees", cfg.Trees)
	defer tsp.End()
	cfg.Span = nil // keep trained models from retaining the trace tree
	c := &Classifier{
		cfg:     cfg,
		classes: d.ClassNames,
		trees:   make([]*tree, cfg.Trees),
		oob:     make([][]int, cfg.Trees),
		train:   d,
	}
	// Tree t's randomness comes from Split(t), so the ensemble is
	// identical at any worker count.
	root := rng.New(cfg.Seed)
	if err := parallel.ForEachSeeded(root, cfg.Workers, cfg.Trees, func(t int, r *rng.Rand) error {
		rows, oob := bootstrap(r, d.Len())
		b := &treeBuilder{
			x: d.X, y: d.Y, numClasses: d.NumClasses(),
			mtry: cfg.MTry, minLeaf: cfg.MinLeaf, maxDepth: cfg.MaxDepth, r: r,
		}
		c.trees[t] = b.build(rows)
		c.oob[t] = oob
		return nil
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// bootstrap samples n rows with replacement and returns the in-bag row
// list plus the out-of-bag indices.
func bootstrap(r *rng.Rand, n int) (rows, oob []int) {
	rows = make([]int, n)
	in := make([]bool, n)
	for i := range rows {
		j := r.Intn(n)
		rows[i] = j
		in[j] = true
	}
	for i, ok := range in {
		if !ok {
			oob = append(oob, i)
		}
	}
	return rows, oob
}

// Classes returns the class vocabulary.
func (c *Classifier) Classes() []string { return c.classes }

// Predict returns the majority-vote class index.
func (c *Classifier) Predict(x []float64) int {
	votes := c.Votes(x)
	best := 0
	for i, v := range votes {
		if v > votes[best] {
			best = i
		}
	}
	return best
}

// Votes returns per-class tree vote counts.
func (c *Classifier) Votes(x []float64) []int {
	votes := make([]int, len(c.classes))
	for _, t := range c.trees {
		votes[t.predictClass(x)]++
	}
	return votes
}

// PredictProb returns the winning class and the vote-fraction probability
// vector, the randomForest analogue of the SVM's coupled posteriors.
func (c *Classifier) PredictProb(x []float64) (int, []float64) {
	votes := c.Votes(x)
	probs := make([]float64, len(votes))
	best := 0
	for i, v := range votes {
		probs[i] = float64(v) / float64(len(c.trees))
		if v > votes[best] {
			best = i
		}
	}
	return best, probs
}

// Accuracy evaluates vote accuracy on a dataset with the same vocabulary.
func (c *Classifier) Accuracy(d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, row := range d.X {
		if c.Predict(row) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// OOBError returns the out-of-bag misclassification rate, the forest's
// internal generalization estimate.
func (c *Classifier) OOBError() float64 {
	if c.train == nil {
		return 0 // restored from a snapshot
	}
	n := c.train.Len()
	votes := make([][]int, n)
	for i := range votes {
		votes[i] = make([]int, len(c.classes))
	}
	for t, tr := range c.trees {
		for _, i := range c.oob[t] {
			votes[i][tr.predictClass(c.train.X[i])]++
		}
	}
	wrong, counted := 0, 0
	for i, v := range votes {
		best, total := 0, 0
		for cl, n := range v {
			total += n
			if n > v[best] {
				best = cl
			}
		}
		if total == 0 {
			continue // never out of bag
		}
		counted++
		if best != c.train.Y[i] {
			wrong++
		}
	}
	if counted == 0 {
		return 0
	}
	return float64(wrong) / float64(counted)
}

// Importance computes permutation importance: for every feature, the mean
// over trees of (OOB accuracy) - (OOB accuracy after permuting that
// feature among the tree's OOB rows). This is randomForest's
// MeanDecreaseAccuracy, the quantity plotted in the paper's Figure 5.
func (c *Classifier) Importance() []float64 {
	if c.train == nil {
		return nil // restored from a snapshot: no training data retained
	}
	p := c.train.NumFeatures()
	root := rng.New(c.cfg.Seed ^ 0x1a9e57ac) // distinct stream from training
	// Collect per-tree contributions in tree order and reduce serially:
	// summing floats in completion order would make the importance vector
	// drift across runs at worker count > 1.
	locals, _ := parallel.MapSeeded(root, c.cfg.Workers, len(c.trees), func(t int, r *rng.Rand) ([]float64, error) {
		return c.treeImportance(t, r), nil
	})
	imp := make([]float64, p)
	for _, local := range locals {
		for f := range imp {
			imp[f] += local[f]
		}
	}
	for f := range imp {
		imp[f] /= float64(len(c.trees))
	}
	return imp
}

// treeImportance computes one tree's per-feature OOB accuracy decrease.
func (c *Classifier) treeImportance(t int, r *rng.Rand) []float64 {
	oob := c.oob[t]
	tr := c.trees[t]
	p := c.train.NumFeatures()
	out := make([]float64, p)
	if len(oob) == 0 {
		return out
	}
	base := 0
	for _, i := range oob {
		if tr.predictClass(c.train.X[i]) == c.train.Y[i] {
			base++
		}
	}
	row := make([]float64, p)
	perm := make([]int, len(oob))
	for f := 0; f < p; f++ {
		copy(perm, oob)
		r.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		correct := 0
		for k, i := range oob {
			copy(row, c.train.X[i])
			row[f] = c.train.X[perm[k]][f] // permuted feature value
			if tr.predictClass(row) == c.train.Y[i] {
				correct++
			}
		}
		out[f] = float64(base-correct) / float64(len(oob))
	}
	return out
}
