// Package forest implements Breiman-style random forests equivalent to the
// R randomForest package the paper used: CART trees grown on bootstrap
// samples with sqrt(p) feature subsampling, out-of-bag error estimation,
// permutation importance (the paper's Figure 5 "mean decrease in accuracy"),
// class-probability votes, and regression forests for the
// application-kernel wall-time extension.
package forest

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// node is one tree node in the flattened representation.
type node struct {
	feature   int     // split feature; -1 for leaves
	threshold float64 // go left if x[feature] <= threshold
	left      int32   // child indices
	right     int32
	pred      int     // majority class at the node (classification)
	value     float64 // mean target at the node (regression)
}

// tree is a trained CART tree.
type tree struct {
	nodes []node
}

// predictIndex walks to a leaf and returns its index.
func (t *tree) predictIndex(x []float64) int {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return i
		}
		if x[n.feature] <= n.threshold {
			i = int(n.left)
		} else {
			i = int(n.right)
		}
	}
}

// predictClass returns the leaf's majority class.
func (t *tree) predictClass(x []float64) int { return t.nodes[t.predictIndex(x)].pred }

// predictValue returns the leaf's mean target.
func (t *tree) predictValue(x []float64) float64 { return t.nodes[t.predictIndex(x)].value }

// treeBuilder grows one tree on a sample of rows.
type treeBuilder struct {
	x          [][]float64
	y          []int     // class indices (classification)
	target     []float64 // regression targets
	numClasses int
	mtry       int
	minLeaf    int
	maxDepth   int
	regression bool
	r          *rng.Rand

	nodes []node
	// scratch buffers reused across splits
	featOrder []int
}

func (b *treeBuilder) build(rows []int) *tree {
	b.featOrder = make([]int, len(b.x[0]))
	for i := range b.featOrder {
		b.featOrder[i] = i
	}
	b.grow(rows, 0)
	return &tree{nodes: b.nodes}
}

// grow recursively grows the subtree over rows and returns its node index.
func (b *treeBuilder) grow(rows []int, depth int) int32 {
	idx := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{feature: -1})

	if b.regression {
		var sum float64
		for _, r := range rows {
			sum += b.target[r]
		}
		b.nodes[idx].value = sum / float64(len(rows))
	} else {
		counts := make([]int, b.numClasses)
		for _, r := range rows {
			counts[b.y[r]]++
		}
		best := 0
		for c, n := range counts {
			if n > counts[best] {
				best = c
			}
		}
		b.nodes[idx].pred = best
	}

	if len(rows) < 2*b.minLeaf || (b.maxDepth > 0 && depth >= b.maxDepth) || b.pure(rows) {
		return idx
	}

	feature, threshold, ok := b.bestSplit(rows)
	if !ok {
		return idx
	}

	var left, right []int
	for _, r := range rows {
		if b.x[r][feature] <= threshold {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < b.minLeaf || len(right) < b.minLeaf {
		return idx
	}

	l := b.grow(left, depth+1)
	rt := b.grow(right, depth+1)
	b.nodes[idx].feature = feature
	b.nodes[idx].threshold = threshold
	b.nodes[idx].left = l
	b.nodes[idx].right = rt
	return idx
}

// pure reports whether all rows share one class / identical target.
func (b *treeBuilder) pure(rows []int) bool {
	if b.regression {
		first := b.target[rows[0]]
		for _, r := range rows[1:] {
			if b.target[r] != first {
				return false
			}
		}
		return true
	}
	first := b.y[rows[0]]
	for _, r := range rows[1:] {
		if b.y[r] != first {
			return false
		}
	}
	return true
}

// splitCandidate pairs a feature value with its row for sorting.
type splitCandidate struct {
	v   float64
	row int
}

// bestSplit searches mtry random features for the impurity-minimizing
// threshold.
func (b *treeBuilder) bestSplit(rows []int) (feature int, threshold float64, ok bool) {
	// Sample mtry features without replacement (partial Fisher-Yates).
	nf := len(b.featOrder)
	for i := 0; i < b.mtry && i < nf; i++ {
		j := i + b.r.Intn(nf-i)
		b.featOrder[i], b.featOrder[j] = b.featOrder[j], b.featOrder[i]
	}

	bestScore := math.Inf(1)
	cands := make([]splitCandidate, len(rows))
	for fi := 0; fi < b.mtry && fi < nf; fi++ {
		f := b.featOrder[fi]
		for i, r := range rows {
			cands[i] = splitCandidate{v: b.x[r][f], row: r}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].v < cands[j].v })
		var score, thr float64
		var found bool
		if b.regression {
			score, thr, found = b.scanVariance(cands)
		} else {
			score, thr, found = b.scanGini(cands)
		}
		if found && score < bestScore {
			bestScore = score
			feature = f
			threshold = thr
			ok = true
		}
	}
	return feature, threshold, ok
}

// scanGini scans sorted candidates for the weighted-Gini-minimizing split.
func (b *treeBuilder) scanGini(cands []splitCandidate) (best, thr float64, ok bool) {
	n := len(cands)
	leftCounts := make([]int, b.numClasses)
	rightCounts := make([]int, b.numClasses)
	for _, c := range cands {
		rightCounts[b.y[c.row]]++
	}
	var leftSq, rightSq float64
	for _, c := range rightCounts {
		rightSq += float64(c) * float64(c)
	}
	best = math.Inf(1)
	for i := 0; i < n-1; i++ {
		cls := b.y[cands[i].row]
		// Move candidate i from right to left, updating sums of squares.
		leftSq += float64(2*leftCounts[cls] + 1)
		rightSq -= float64(2*rightCounts[cls] - 1)
		leftCounts[cls]++
		rightCounts[cls]--
		if cands[i].v == cands[i+1].v {
			continue // cannot split between equal values
		}
		nl, nr := float64(i+1), float64(n-i-1)
		// Weighted Gini = nl*(1 - leftSq/nl^2) + nr*(1 - rightSq/nr^2);
		// dropping the constant n, minimize -(leftSq/nl + rightSq/nr).
		score := -(leftSq/nl + rightSq/nr)
		if score < best {
			best = score
			thr = (cands[i].v + cands[i+1].v) / 2
			ok = true
		}
	}
	return best, thr, ok
}

// scanVariance scans sorted candidates for the variance-minimizing split.
func (b *treeBuilder) scanVariance(cands []splitCandidate) (best, thr float64, ok bool) {
	n := len(cands)
	var rightSum, rightSq float64
	for _, c := range cands {
		t := b.target[c.row]
		rightSum += t
		rightSq += t * t
	}
	var leftSum float64
	best = math.Inf(1)
	for i := 0; i < n-1; i++ {
		t := b.target[cands[i].row]
		leftSum += t
		rightSum -= t
		if cands[i].v == cands[i+1].v {
			continue
		}
		nl, nr := float64(i+1), float64(n-i-1)
		// Total within-split variance*n = sum(sq) - (sumL^2/nl + sumR^2/nr);
		// sum(sq) is constant, so minimize -(sumL^2/nl + sumR^2/nr).
		score := -(leftSum*leftSum/nl + rightSum*rightSum/nr)
		if score < best {
			best = score
			thr = (cands[i].v + cands[i+1].v) / 2
			ok = true
		}
	}
	return best, thr, ok
}
