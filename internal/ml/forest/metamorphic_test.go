package forest_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ml/forest"
	"repro/internal/testkit"
)

// TestForestPredictionPurity checks that prediction carries no hidden
// mutable state: scoring rows twice, in reverse, and from many goroutines
// at once must produce bit-identical posteriors.
func TestForestPredictionPurity(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 23})
	m, err := forest.TrainClassifier(d, forest.Config{Trees: 30, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, d.Len())
	wantCls := make([]int, d.Len())
	for i, row := range d.X {
		wantCls[i], want[i] = m.PredictProb(row)
	}
	// Reverse order.
	for i := d.Len() - 1; i >= 0; i-- {
		cls, probs := m.PredictProb(d.X[i])
		if cls != wantCls[i] || testkit.MaxAbsDiff(probs, want[i]) != 0 {
			t.Fatalf("row %d: reverse-order prediction differs", i)
		}
	}
	// Concurrent.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, row := range d.X {
				cls, probs := m.PredictProb(row)
				if cls != wantCls[i] || testkit.MaxAbsDiff(probs, want[i]) != 0 {
					errs[g] = fmt.Errorf("goroutine %d row %d: concurrent prediction differs", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestForestLabelPermutationConsistency retrains on a relabeled dataset;
// the forest's split criterion and votes are symmetric in class identity,
// so every prediction must map through the relabeling.
func TestForestLabelPermutationConsistency(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 29, Classes: 3, RowsPerCls: 30})
	m, err := forest.TrainClassifier(d, forest.Config{Trees: 30, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	rename := map[string]string{"class00": "zz", "class01": "mm", "class02": "aa"}
	rd, oldToNew := testkit.RelabelClasses(d, rename)
	rm, err := forest.TrainClassifier(rd, forest.Config{Trees: 30, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range d.X {
		if got, want := rm.Predict(row), oldToNew[m.Predict(row)]; got != want {
			t.Fatalf("row %d: relabeled forest predicts %d, want %d", i, got, want)
		}
	}
}

// TestForestVoteSimplex checks the vote-share posterior is a probability
// distribution and agrees with the raw vote counts.
func TestForestVoteSimplex(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 31})
	m, err := forest.TrainClassifier(d, forest.Config{Trees: 30, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range d.X {
		_, probs := m.PredictProb(row)
		testkit.CheckProbRow(t, probs, 1e-12, fmt.Sprintf("forest row %d", i))
		votes := m.Votes(row)
		total := 0
		for _, v := range votes {
			total += v
		}
		if total != 30 {
			t.Fatalf("row %d: %d votes from 30 trees", i, total)
		}
		for c, v := range votes {
			if want := float64(v) / 30; probs[c] != want {
				t.Fatalf("row %d class %d: prob %v != vote share %v", i, c, probs[c], want)
			}
		}
	}
}
