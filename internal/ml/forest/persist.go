package forest

import (
	"bytes"
	"encoding/gob"
)

// Persistence snapshots the decision trees and vocabulary; the training
// data reference is not retained, so OOB estimates and permutation
// importance are unavailable on a restored model (predictions are
// identical).

type nodeSnapshot struct {
	Feature   int
	Threshold float64
	Left      int32
	Right     int32
	Pred      int
	Value     float64
}

type classifierSnapshot struct {
	Classes []string
	Trees   [][]nodeSnapshot
}

func snapshotTree(t *tree) []nodeSnapshot {
	out := make([]nodeSnapshot, len(t.nodes))
	for i, n := range t.nodes {
		out[i] = nodeSnapshot{
			Feature: n.feature, Threshold: n.threshold,
			Left: n.left, Right: n.right, Pred: n.pred, Value: n.value,
		}
	}
	return out
}

func restoreTree(snap []nodeSnapshot) *tree {
	t := &tree{nodes: make([]node, len(snap))}
	for i, n := range snap {
		t.nodes[i] = node{
			feature: n.Feature, threshold: n.Threshold,
			left: n.Left, right: n.Right, pred: n.Pred, value: n.Value,
		}
	}
	return t
}

// MarshalBinary serializes the trained classifier.
func (c *Classifier) MarshalBinary() ([]byte, error) {
	snap := classifierSnapshot{Classes: c.classes}
	for _, t := range c.trees {
		snap.Trees = append(snap.Trees, snapshotTree(t))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a classifier saved with MarshalBinary.
func (c *Classifier) UnmarshalBinary(data []byte) error {
	var snap classifierSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return err
	}
	c.classes = snap.Classes
	c.trees = c.trees[:0]
	for _, ts := range snap.Trees {
		c.trees = append(c.trees, restoreTree(ts))
	}
	c.oob = nil
	c.train = nil
	return nil
}
