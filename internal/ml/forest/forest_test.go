package forest

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
)

func blobs(seed uint64, centers [][]float64, spread float64, perClass int) *dataset.Dataset {
	r := rng.New(seed)
	var rows [][]float64
	var labels []string
	for c, ctr := range centers {
		for i := 0; i < perClass; i++ {
			row := make([]float64, len(ctr))
			for j := range row {
				row[j] = ctr[j] + spread*r.Normal()
			}
			rows = append(rows, row)
			labels = append(labels, fmt.Sprintf("c%d", c))
		}
	}
	d, err := dataset.New(featNames(len(centers[0])), rows, labels)
	if err != nil {
		panic(err)
	}
	return d
}

func featNames(p int) []string {
	names := make([]string, p)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	return names
}

func TestClassifierBlobs(t *testing.T) {
	centers := [][]float64{{0, 3}, {3, 0}, {-3, 0}}
	train := blobs(1, centers, 0.7, 100)
	test := blobs(2, centers, 0.7, 50)
	c, err := TrainClassifier(train, Config{Trees: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := c.Accuracy(test); acc < 0.97 {
		t.Errorf("test accuracy = %v", acc)
	}
	if oob := c.OOBError(); oob > 0.05 {
		t.Errorf("OOB error = %v", oob)
	}
}

func TestClassifierXOR(t *testing.T) {
	r := rng.New(4)
	var rows [][]float64
	var labels []string
	for i := 0; i < 600; i++ {
		x := r.Float64()*2 - 1
		y := r.Float64()*2 - 1
		rows = append(rows, []float64{x, y})
		if (x > 0) == (y > 0) {
			labels = append(labels, "same")
		} else {
			labels = append(labels, "diff")
		}
	}
	d, _ := dataset.New([]string{"x", "y"}, rows, labels)
	c, err := TrainClassifier(d, Config{Trees: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := c.Accuracy(d); acc < 0.95 {
		t.Errorf("XOR accuracy = %v", acc)
	}
}

func TestPredictProb(t *testing.T) {
	centers := [][]float64{{0, 3}, {3, 0}}
	train := blobs(6, centers, 0.6, 100)
	c, _ := TrainClassifier(train, Config{Trees: 100, Seed: 7})
	cls, probs := c.PredictProb(centers[0])
	if c.Classes()[cls] != "c0" {
		t.Errorf("center 0 predicted %s", c.Classes()[cls])
	}
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if probs[cls] < 0.9 {
		t.Errorf("center confidence = %v", probs[cls])
	}
	// Midpoint should be uncertain.
	_, mid := c.PredictProb([]float64{1.5, 1.5})
	if mid[0] > 0.95 || mid[1] > 0.95 {
		t.Errorf("midpoint should be uncertain: %v", mid)
	}
}

func TestImportanceFindsInformativeFeatures(t *testing.T) {
	// Feature 0 carries all the signal, features 1-3 are noise.
	r := rng.New(8)
	var rows [][]float64
	var labels []string
	for i := 0; i < 400; i++ {
		cls := i % 2
		row := []float64{float64(cls)*3 + r.Normal()*0.5, r.Normal(), r.Normal(), r.Normal()}
		rows = append(rows, row)
		labels = append(labels, fmt.Sprintf("c%d", cls))
	}
	d, _ := dataset.New(featNames(4), rows, labels)
	c, err := TrainClassifier(d, Config{Trees: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	imp := c.Importance()
	if len(imp) != 4 {
		t.Fatalf("importance length %d", len(imp))
	}
	for f := 1; f < 4; f++ {
		if imp[0] <= imp[f]+0.05 {
			t.Errorf("informative feature importance %v not above noise feature %d (%v)", imp[0], f, imp[f])
		}
	}
}

func TestImportanceDeterminism(t *testing.T) {
	d := blobs(10, [][]float64{{0, 2}, {2, 0}}, 0.8, 60)
	c1, _ := TrainClassifier(d, Config{Trees: 50, Seed: 11})
	c2, _ := TrainClassifier(d, Config{Trees: 50, Seed: 11})
	i1 := c1.Importance()
	i2 := c2.Importance()
	for f := range i1 {
		if i1[f] != i2[f] {
			t.Fatal("importance not deterministic")
		}
	}
}

func TestTrainDeterminism(t *testing.T) {
	d := blobs(12, [][]float64{{0, 2}, {2, 0}}, 0.8, 60)
	c1, _ := TrainClassifier(d, Config{Trees: 60, Seed: 13})
	c2, _ := TrainClassifier(d, Config{Trees: 60, Seed: 13})
	probe := []float64{1, 1}
	v1, v2 := c1.Votes(probe), c2.Votes(probe)
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("votes not deterministic")
		}
	}
}

func TestEmptyTraining(t *testing.T) {
	d, _ := dataset.New([]string{"x"}, nil, nil)
	if _, err := TrainClassifier(d, Config{}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := TrainRegressor(nil, nil, Config{}); err == nil {
		t.Fatal("expected regression error")
	}
}

func TestBootstrapProperties(t *testing.T) {
	r := rng.New(14)
	rows, oob := bootstrap(r, 1000)
	if len(rows) != 1000 {
		t.Fatalf("bootstrap size %d", len(rows))
	}
	// OOB fraction should be near 1/e ~ 0.368.
	frac := float64(len(oob)) / 1000
	if frac < 0.3 || frac > 0.44 {
		t.Errorf("OOB fraction = %v", frac)
	}
	in := map[int]bool{}
	for _, i := range rows {
		in[i] = true
	}
	for _, i := range oob {
		if in[i] {
			t.Fatal("OOB index appears in bag")
		}
	}
}

func TestRegressorLearnsFunction(t *testing.T) {
	r := rng.New(15)
	n := 1500
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b := r.Float64()*4-2, r.Float64()*4-2
		x[i] = []float64{a, b}
		y[i] = a*a + 0.5*b + r.Normal()*0.1
	}
	m, err := TrainRegressor(x, y, Config{Trees: 100, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r2 := m.OOBR2(); r2 < 0.9 {
		t.Errorf("OOB R2 = %v", r2)
	}
	// Spot predictions.
	for _, probe := range [][]float64{{0, 0}, {1, 1}, {-1.5, 0.5}} {
		want := probe[0]*probe[0] + 0.5*probe[1]
		got := m.Predict(probe)
		if math.Abs(got-want) > 0.35 {
			t.Errorf("Predict(%v) = %v, want ~%v", probe, got, want)
		}
	}
}

func TestMinLeafLimitsDepth(t *testing.T) {
	d := blobs(17, [][]float64{{0, 0}, {0.5, 0.5}}, 1.0, 200)
	deep, _ := TrainClassifier(d, Config{Trees: 20, Seed: 18, MinLeaf: 1})
	shallow, _ := TrainClassifier(d, Config{Trees: 20, Seed: 18, MinLeaf: 50})
	deepNodes, shallowNodes := 0, 0
	for i := range deep.trees {
		deepNodes += len(deep.trees[i].nodes)
		shallowNodes += len(shallow.trees[i].nodes)
	}
	if shallowNodes >= deepNodes {
		t.Errorf("MinLeaf did not shrink trees: %d vs %d", shallowNodes, deepNodes)
	}
}

func TestMaxDepth(t *testing.T) {
	d := blobs(19, [][]float64{{0, 0}, {0.3, 0.3}}, 1.0, 300)
	c, _ := TrainClassifier(d, Config{Trees: 5, Seed: 20, MaxDepth: 2})
	for _, tr := range c.trees {
		// Depth-2 binary tree has at most 7 nodes.
		if len(tr.nodes) > 7 {
			t.Fatalf("tree has %d nodes, exceeds depth 2", len(tr.nodes))
		}
	}
}

func TestConstantFeatures(t *testing.T) {
	// All-constant features: tree cannot split; predicts the majority.
	rows := make([][]float64, 12)
	labels := make([]string, 12)
	for i := range rows {
		rows[i] = []float64{1, 1}
		if i < 10 {
			labels[i] = "a"
		} else {
			labels[i] = "b"
		}
	}
	d, _ := dataset.New([]string{"x", "y"}, rows, labels)
	c, err := TrainClassifier(d, Config{Trees: 50, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Classes()[c.Predict([]float64{1, 1})]; got != "a" {
		t.Errorf("majority prediction = %q", got)
	}
}

func BenchmarkTrainClassifier(b *testing.B) {
	d := blobs(1, [][]float64{{0, 3}, {3, 0}, {-3, 0}}, 0.8, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainClassifier(d, Config{Trees: 50, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	d := blobs(1, [][]float64{{0, 3}, {3, 0}}, 0.8, 300)
	c, _ := TrainClassifier(d, Config{Trees: 100, Seed: 2})
	probe := []float64{1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Predict(probe)
	}
}
