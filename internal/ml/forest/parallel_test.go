package forest

import (
	"runtime"
	"testing"
)

// TestWorkerCountParity: the ensemble, its OOB error and its permutation
// importance are bit-identical whether trees are built serially or on
// many workers, at GOMAXPROCS 1 and 8. This is the guarantee the bench
// gate (cmd/supremm-bench) enforces end-to-end.
func TestWorkerCountParity(t *testing.T) {
	d := blobs(5, [][]float64{{0, 0, 0}, {3, 1, 0}, {0, 3, 2}}, 0.8, 40)
	ref, err := TrainClassifier(d, Config{Trees: 40, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refErr := ref.OOBError()
	refImp := ref.Importance()
	for _, procs := range []int{1, 8} {
		old := runtime.GOMAXPROCS(procs)
		for _, w := range []int{0, 3, 16} {
			c, err := TrainClassifier(d, Config{Trees: 40, Seed: 9, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if e := c.OOBError(); e != refErr {
				t.Errorf("GOMAXPROCS=%d workers=%d: OOB error %v != serial %v", procs, w, e, refErr)
			}
			imp := c.Importance()
			for f := range refImp {
				if imp[f] != refImp[f] {
					t.Errorf("GOMAXPROCS=%d workers=%d: importance[%d] = %v != serial %v",
						procs, w, f, imp[f], refImp[f])
				}
			}
			for i := range d.X {
				if c.Predict(d.X[i]) != ref.Predict(d.X[i]) {
					t.Fatalf("GOMAXPROCS=%d workers=%d: prediction diverged on row %d", procs, w, i)
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestRegressorWorkerParity mirrors the classifier check for the
// regression forest.
func TestRegressorWorkerParity(t *testing.T) {
	d := blobs(11, [][]float64{{0, 0}, {2, 2}}, 0.5, 50)
	y := make([]float64, d.Len())
	for i, row := range d.X {
		y[i] = row[0] + 2*row[1]
	}
	ref, err := TrainRegressor(d.X, y, Config{Trees: 30, Seed: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 4} {
		m, err := TrainRegressor(d.X, y, Config{Trees: 30, Seed: 4, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := m.OOBR2(), ref.OOBR2(); a != b {
			t.Errorf("workers=%d: OOB R2 %v != serial %v", w, a, b)
		}
		for i := range d.X {
			if m.Predict(d.X[i]) != ref.Predict(d.X[i]) {
				t.Fatalf("workers=%d: prediction diverged on row %d", w, i)
			}
		}
	}
}
