package forest

// NodeSpec is one tree node in the exported flat representation, the
// read-only view internal/ml/compile lowers into its breadth-first
// serving form. Feature < 0 marks a leaf.
type NodeSpec struct {
	Feature   int
	Threshold float64
	Left      int32
	Right     int32
	Pred      int
}

// Spec is the exported read-only structure of a trained classifier:
// class vocabulary plus every tree's node array in builder (preorder)
// layout, node 0 being the root. Callers must not mutate the returned
// slices of shared data (Classes aliases the model's vocabulary).
type Spec struct {
	Classes []string
	Trees   [][]NodeSpec
}

// Spec exposes the trained trees for the compile step. The node arrays
// are fresh copies; mutating them does not affect the classifier.
func (c *Classifier) Spec() *Spec {
	s := &Spec{Classes: c.classes, Trees: make([][]NodeSpec, len(c.trees))}
	for t, tr := range c.trees {
		ns := make([]NodeSpec, len(tr.nodes))
		for i, n := range tr.nodes {
			ns[i] = NodeSpec{
				Feature:   n.feature,
				Threshold: n.threshold,
				Left:      n.left,
				Right:     n.right,
				Pred:      n.pred,
			}
		}
		s.Trees[t] = ns
	}
	return s
}
