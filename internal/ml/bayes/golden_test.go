package bayes_test

import (
	"strings"
	"testing"

	"repro/internal/ml/bayes"
	"repro/internal/ml/eval"
	"repro/internal/rng"
	"repro/internal/testkit"
)

// TestGoldenBayes pins the naive Bayes classifier's observable behavior on
// a fixed synthetic dataset: accuracies to full float precision, the exact
// prediction vector, the posterior matrix digest, and the confusion
// matrix. Any change to the model's arithmetic shows up as a digest diff.
func TestGoldenBayes(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 41})
	train, test := d.Split(rng.New(41), 0.7)
	m, err := bayes.Train(train)
	if err != nil {
		t.Fatal(err)
	}

	preds := eval.Score(m, test)
	classes := make([]int, len(preds))
	probRows := make([][]float64, len(preds))
	for i, row := range test.X {
		cls, probs := m.PredictProb(row)
		classes[i] = cls
		probRows[i] = probs
		if cls != preds[i].Pred {
			t.Fatalf("row %d: PredictProb class %d disagrees with Score %d", i, cls, preds[i].Pred)
		}
	}
	cm := eval.NewConfusionMatrix(m.Classes(), preds)

	var b strings.Builder
	testkit.Section(&b, "gaussian naive bayes / synth seed 41")
	b.WriteString(testkit.KeyVals(map[string]float64{
		"train_accuracy": m.Accuracy(train),
		"test_accuracy":  eval.Accuracy(preds),
	}))
	testkit.Section(&b, "digests")
	b.WriteString("predictions = " + testkit.HashInts(classes) + "\n")
	b.WriteString("posteriors  = " + testkit.HashFloats(probRows...) + "\n")
	testkit.Section(&b, "confusion matrix")
	b.WriteString(cm.String())
	testkit.GoldenString(t, "bayes.golden", b.String())
}
