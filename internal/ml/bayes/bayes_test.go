package bayes

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
)

func gaussians(seed uint64, n int) *dataset.Dataset {
	r := rng.New(seed)
	var rows [][]float64
	var labels []string
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			rows = append(rows, []float64{r.NormalAt(-2, 1), r.NormalAt(0, 1)})
			labels = append(labels, "neg")
		} else {
			rows = append(rows, []float64{r.NormalAt(2, 1), r.NormalAt(0, 1)})
			labels = append(labels, "pos")
		}
	}
	d, _ := dataset.New([]string{"x", "y"}, rows, labels)
	return d
}

func TestGaussianSeparation(t *testing.T) {
	train := gaussians(1, 600)
	test := gaussians(2, 400)
	m, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(test); acc < 0.95 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestPredictProbSane(t *testing.T) {
	m, _ := Train(gaussians(3, 600))
	cls, probs := m.PredictProb([]float64{-2, 0})
	if m.Classes()[cls] != "neg" {
		t.Errorf("predicted %s", m.Classes()[cls])
	}
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probs sum to %v", sum)
	}
	if probs[cls] < 0.9 {
		t.Errorf("deep-region confidence = %v", probs[cls])
	}
	_, mid := m.PredictProb([]float64{0, 0})
	if mid[0] > 0.8 || mid[1] > 0.8 {
		t.Errorf("boundary point should be uncertain: %v", mid)
	}
}

func TestNBFailsOnXOR(t *testing.T) {
	// Naive Bayes cannot represent XOR: per-class marginals are identical.
	r := rng.New(4)
	var rows [][]float64
	var labels []string
	for i := 0; i < 800; i++ {
		x := r.Float64()*2 - 1
		y := r.Float64()*2 - 1
		rows = append(rows, []float64{x, y})
		if (x > 0) == (y > 0) {
			labels = append(labels, "same")
		} else {
			labels = append(labels, "diff")
		}
	}
	d, _ := dataset.New([]string{"x", "y"}, rows, labels)
	m, _ := Train(d)
	if acc := m.Accuracy(d); acc > 0.65 {
		t.Errorf("NB on XOR should be near chance, got %v", acc)
	}
}

func TestConstantFeature(t *testing.T) {
	rows := [][]float64{{1, 0}, {1, 1}, {1, 0}, {1, 5}, {1, 6}, {1, 5}}
	labels := []string{"a", "a", "a", "b", "b", "b"}
	d, _ := dataset.New([]string{"const", "sig"}, rows, labels)
	m, err := Train(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Classes()[m.Predict([]float64{1, 5.5})]; got != "b" {
		t.Errorf("prediction with constant feature = %q", got)
	}
}

func TestEmptyTraining(t *testing.T) {
	d, _ := dataset.New([]string{"x"}, nil, nil)
	if _, err := Train(d); err == nil {
		t.Fatal("expected error")
	}
}

func TestMissingClassInTraining(t *testing.T) {
	// Class vocabulary includes "c" but training subset has only a, b.
	rows := [][]float64{{0}, {1}, {0.1}, {0.9}, {5}}
	labels := []string{"a", "b", "a", "b", "c"}
	d, _ := dataset.New([]string{"x"}, rows, labels)
	sub := d.Subset([]int{0, 1, 2, 3})
	m, err := Train(sub)
	if err != nil {
		t.Fatal(err)
	}
	cls, probs := m.PredictProb([]float64{0})
	if m.Classes()[cls] != "a" {
		t.Errorf("prediction = %q", m.Classes()[cls])
	}
	if probs[d.ClassIndex("c")] != 0 {
		t.Error("untrained class should carry zero probability")
	}
}

func BenchmarkTrain(b *testing.B) {
	d := gaussians(1, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(d); err != nil {
			b.Fatal(err)
		}
	}
}
