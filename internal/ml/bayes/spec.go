package bayes

// Spec is the exported read-only structure of a trained Gaussian NB
// model, the view internal/ml/compile lowers into its precomputed
// log-space serving form. All slices alias the model's own storage;
// callers must not mutate them.
type Spec struct {
	Classes []string
	Priors  []float64   // log priors
	Means   [][]float64 // [class][feature]
	Vars    [][]float64 // [class][feature], already floored
	Trained []bool
}

// Spec exposes the trained parameters for the compile step.
func (m *Model) Spec() *Spec {
	return &Spec{
		Classes: m.classes,
		Priors:  m.priors,
		Means:   m.means,
		Vars:    m.vars,
		Trained: m.trained,
	}
}
