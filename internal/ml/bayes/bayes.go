// Package bayes implements the Gaussian Naive Bayes classifier the paper
// evaluated first (and found to perform very poorly on SUPReMM data, whose
// attributes are neither normal nor independent -- a result the synthetic
// benchmark reproduces).
package bayes

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// Model is a trained Gaussian Naive Bayes classifier.
type Model struct {
	classes []string
	priors  []float64   // log priors
	means   [][]float64 // [class][feature]
	vars    [][]float64 // [class][feature]
	trained []bool
}

// varFloor keeps degenerate (constant) features from producing zero
// variances and infinite likelihoods.
const varFloor = 1e-9

// Train fits per-class feature means and variances with Laplace-smoothed
// priors.
func Train(d *dataset.Dataset) (*Model, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("bayes: empty training set")
	}
	k, p := d.NumClasses(), d.NumFeatures()
	m := &Model{
		classes: d.ClassNames,
		priors:  make([]float64, k),
		means:   make([][]float64, k),
		vars:    make([][]float64, k),
		trained: make([]bool, k),
	}
	counts := make([]int, k)
	for c := 0; c < k; c++ {
		m.means[c] = make([]float64, p)
		m.vars[c] = make([]float64, p)
	}
	for i, row := range d.X {
		c := d.Y[i]
		counts[c]++
		for f, v := range row {
			m.means[c][f] += v
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		m.trained[c] = true
		for f := 0; f < p; f++ {
			m.means[c][f] /= float64(counts[c])
		}
	}
	for i, row := range d.X {
		c := d.Y[i]
		for f, v := range row {
			dlt := v - m.means[c][f]
			m.vars[c][f] += dlt * dlt
		}
	}
	for c := 0; c < k; c++ {
		if !m.trained[c] {
			continue
		}
		m.priors[c] = math.Log(float64(counts[c]+1) / float64(d.Len()+k))
		for f := 0; f < p; f++ {
			m.vars[c][f] = m.vars[c][f]/float64(counts[c]) + varFloor
		}
	}
	return m, nil
}

// Classes returns the class vocabulary.
func (m *Model) Classes() []string { return m.classes }

// logLikelihood returns log P(x | class c) + log prior.
func (m *Model) logLikelihood(c int, x []float64) float64 {
	ll := m.priors[c]
	for f, v := range x {
		d := v - m.means[c][f]
		ll += -0.5*math.Log(2*math.Pi*m.vars[c][f]) - d*d/(2*m.vars[c][f])
	}
	return ll
}

// Predict returns the maximum-posterior class index.
func (m *Model) Predict(x []float64) int {
	best, bestLL := -1, math.Inf(-1)
	for c := range m.classes {
		if !m.trained[c] {
			continue
		}
		if ll := m.logLikelihood(c, x); ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best
}

// PredictProb returns the winning class and normalized posteriors
// (softmax over log likelihoods, computed stably).
func (m *Model) PredictProb(x []float64) (int, []float64) {
	k := len(m.classes)
	lls := make([]float64, k)
	maxLL := math.Inf(-1)
	for c := 0; c < k; c++ {
		if !m.trained[c] {
			lls[c] = math.Inf(-1)
			continue
		}
		lls[c] = m.logLikelihood(c, x)
		if lls[c] > maxLL {
			maxLL = lls[c]
		}
	}
	probs := make([]float64, k)
	var z float64
	for c := 0; c < k; c++ {
		if math.IsInf(lls[c], -1) {
			continue
		}
		probs[c] = math.Exp(lls[c] - maxLL)
		z += probs[c]
	}
	best := 0
	for c := 0; c < k; c++ {
		probs[c] /= z
		if probs[c] > probs[best] {
			best = c
		}
	}
	return best, probs
}

// Accuracy evaluates on a dataset with the same class vocabulary.
func (m *Model) Accuracy(d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, row := range d.X {
		if m.Predict(row) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}
