package bayes

import (
	"bytes"
	"encoding/gob"
)

type modelSnapshot struct {
	Classes []string
	Priors  []float64
	Means   [][]float64
	Vars    [][]float64
	Trained []bool
}

// MarshalBinary serializes the trained model.
func (m *Model) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(modelSnapshot{
		Classes: m.classes, Priors: m.priors, Means: m.means, Vars: m.vars, Trained: m.trained,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a model saved with MarshalBinary.
func (m *Model) UnmarshalBinary(data []byte) error {
	var snap modelSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return err
	}
	m.classes = snap.Classes
	m.priors = snap.Priors
	m.means = snap.Means
	m.vars = snap.Vars
	m.trained = snap.Trained
	return nil
}
