package bayes_test

import (
	"fmt"
	"testing"

	"repro/internal/ml/bayes"
	"repro/internal/testkit"
)

// Naive Bayes training is a per-class moment computation, so it must be
// invariant (to float tolerance: summation order moves) under every data
// presentation that does not change the data itself.

const nbTol = 1e-9

func TestBayesRowPermutationInvariance(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 11})
	m, err := bayes.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	pd := testkit.PermuteRows(d, testkit.RandPerm(5, d.Len()))
	pm, err := bayes.Train(pd)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range d.X {
		c1, p1 := m.PredictProb(row)
		c2, p2 := pm.PredictProb(row)
		if c1 != c2 {
			t.Fatalf("row %d: prediction changed under training-row permutation (%d vs %d)", i, c1, c2)
		}
		if diff := testkit.MaxAbsDiff(p1, p2); diff > nbTol {
			t.Fatalf("row %d: posterior moved %v under training-row permutation", i, diff)
		}
	}
}

func TestBayesFeatureOrderInvariance(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 13})
	m, err := bayes.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	perm := testkit.RandPerm(7, d.NumFeatures())
	pm, err := bayes.Train(testkit.PermuteFeatures(d, perm))
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range d.X {
		c1, p1 := m.PredictProb(row)
		c2, p2 := pm.PredictProb(testkit.PermuteRow(row, perm))
		if c1 != c2 {
			t.Fatalf("row %d: prediction changed under feature permutation", i)
		}
		if diff := testkit.MaxAbsDiff(p1, p2); diff > nbTol {
			t.Fatalf("row %d: posterior moved %v under feature permutation", i, diff)
		}
	}
}

func TestBayesLabelPermutationConsistency(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 17, Classes: 3})
	m, err := bayes.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	// Renaming reverses the vocabulary sort order, so class indices move.
	rename := map[string]string{"class00": "zz", "class01": "mm", "class02": "aa"}
	rd, oldToNew := testkit.RelabelClasses(d, rename)
	rm, err := bayes.Train(rd)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range d.X {
		c1, p1 := m.PredictProb(row)
		c2, p2 := rm.PredictProb(row)
		if c2 != oldToNew[c1] {
			t.Fatalf("row %d: predicted class %d, want mapped %d", i, c2, oldToNew[c1])
		}
		for c := range p1 {
			if diff := p1[c] - p2[oldToNew[c]]; diff > nbTol || diff < -nbTol {
				t.Fatalf("row %d class %d: posterior moved %v under relabeling", i, c, diff)
			}
		}
	}
}

func TestBayesPosteriorSimplex(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 19})
	m, err := bayes.Train(d)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range d.X {
		_, probs := m.PredictProb(row)
		testkit.CheckProbRow(t, probs, 1e-9, fmt.Sprintf("bayes row %d", i))
	}
}
