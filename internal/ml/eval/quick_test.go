package eval

import (
	"math"
	"testing"
	"testing/quick"
)

// randomPreds converts fuzz input into a valid prediction list.
func randomPreds(raw []struct {
	True, Pred uint8
	Prob       float64
}) []Prediction {
	preds := make([]Prediction, 0, len(raw))
	for _, r := range raw {
		p := math.Abs(r.Prob)
		p -= math.Floor(p) // into [0,1)
		preds = append(preds, Prediction{
			True:    int(r.True % 5),
			Pred:    int(r.Pred % 5),
			MaxProb: p,
		})
	}
	return preds
}

func TestThresholdCurvePropertyMonotone(t *testing.T) {
	f := func(raw []struct {
		True, Pred uint8
		Prob       float64
	}) bool {
		preds := randomPreds(raw)
		pts := ThresholdCurve(preds, DefaultThresholds())
		prevCls, prevCor := -1.0, -1.0
		for _, p := range pts { // thresholds decrease
			if p.Classified < prevCls || p.CorrectlyClassified < prevCor {
				return false
			}
			if p.CorrectlyClassified > p.Classified+1e-12 {
				return false
			}
			if p.Classified < 0 || p.Classified > 1 {
				return false
			}
			prevCls, prevCor = p.Classified, p.CorrectlyClassified
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestROCLikePropertyBounded(t *testing.T) {
	f := func(raw []struct {
		True, Pred uint8
		Prob       float64
	}) bool {
		preds := randomPreds(raw)
		pts := ROCLike(preds, DefaultThresholds())
		prevX, prevY := -1.0, -1.0
		for _, p := range pts {
			if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
				return false
			}
			// Both coordinates grow as the threshold falls.
			if p.X < prevX || p.Y < prevY {
				return false
			}
			prevX, prevY = p.X, p.Y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConfusionMatrixPropertyTotals(t *testing.T) {
	f := func(raw []struct {
		True, Pred uint8
		Prob       float64
	}) bool {
		preds := randomPreds(raw)
		m := NewConfusionMatrix([]string{"a", "b", "c", "d", "e"}, preds)
		labeled := 0
		for _, p := range preds {
			if p.True >= 0 {
				labeled++
			}
		}
		total := 0
		for _, n := range m.RowTotals() {
			total += n
		}
		if total != labeled {
			return false
		}
		for _, a := range m.ClassAccuracy() {
			if a < 0 || a > 1 {
				return false
			}
		}
		acc := m.Accuracy()
		return acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccuracyConsistentWithMatrix(t *testing.T) {
	f := func(raw []struct {
		True, Pred uint8
		Prob       float64
	}) bool {
		preds := randomPreds(raw)
		if len(preds) == 0 {
			return true
		}
		m := NewConfusionMatrix([]string{"a", "b", "c", "d", "e"}, preds)
		return math.Abs(m.Accuracy()-Accuracy(preds)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
