package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// fakeClassifier predicts class = round(x[0]) with probability x[1].
type fakeClassifier struct{ classes []string }

func (f fakeClassifier) Classes() []string { return f.classes }
func (f fakeClassifier) PredictProb(x []float64) (int, []float64) {
	cls := int(x[0])
	probs := make([]float64, len(f.classes))
	rest := (1 - x[1]) / float64(len(f.classes)-1)
	for i := range probs {
		probs[i] = rest
	}
	probs[cls] = x[1]
	return cls, probs
}

func TestScoreAndAccuracy(t *testing.T) {
	d, _ := dataset.New([]string{"pred", "conf"},
		[][]float64{{0, 0.9}, {1, 0.8}, {0, 0.7}, {1, 0.6}},
		[]string{"a", "b", "b", "b"})
	preds := Score(fakeClassifier{d.ClassNames}, d)
	if len(preds) != 4 {
		t.Fatal("wrong count")
	}
	if acc := Accuracy(preds); math.Abs(acc-0.75) > 1e-12 {
		t.Errorf("accuracy = %v", acc)
	}
	if Accuracy(nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestConfusionMatrix(t *testing.T) {
	preds := []Prediction{
		{True: 0, Pred: 0}, {True: 0, Pred: 0}, {True: 0, Pred: 1},
		{True: 1, Pred: 1}, {True: 1, Pred: 0},
		{True: -1, Pred: 0}, // unlabeled: excluded
	}
	m := NewConfusionMatrix([]string{"a", "b"}, preds)
	if m.Counts[0][0] != 2 || m.Counts[0][1] != 1 || m.Counts[1][1] != 1 || m.Counts[1][0] != 1 {
		t.Fatalf("counts = %v", m.Counts)
	}
	if acc := m.Accuracy(); math.Abs(acc-0.6) > 1e-12 {
		t.Errorf("matrix accuracy = %v", acc)
	}
	ca := m.ClassAccuracy()
	if math.Abs(ca[0]-2.0/3.0) > 1e-12 || math.Abs(ca[1]-0.5) > 1e-12 {
		t.Errorf("class accuracy = %v", ca)
	}
	rt := m.RowTotals()
	if rt[0] != 3 || rt[1] != 2 {
		t.Errorf("row totals = %v", rt)
	}
	s := m.String()
	if !strings.Contains(s, "a (2): b (1)") {
		t.Errorf("rendered matrix missing row: %q", s)
	}
}

func TestThresholdCurve(t *testing.T) {
	preds := []Prediction{
		{True: 0, Pred: 0, MaxProb: 0.95},
		{True: 0, Pred: 1, MaxProb: 0.90}, // wrong but confident
		{True: 1, Pred: 1, MaxProb: 0.60},
		{True: 1, Pred: 1, MaxProb: 0.30},
	}
	pts := ThresholdCurve(preds, []float64{0.9, 0.5, 0.1})
	if pts[0].Classified != 0.5 || pts[0].CorrectlyClassified != 0.25 {
		t.Errorf("t=0.9 point = %+v", pts[0])
	}
	if pts[1].Classified != 0.75 || pts[1].CorrectlyClassified != 0.5 {
		t.Errorf("t=0.5 point = %+v", pts[1])
	}
	if pts[2].Classified != 1 || pts[2].CorrectlyClassified != 0.75 {
		t.Errorf("t=0.1 point = %+v", pts[2])
	}
	// Classified is monotone non-decreasing as threshold falls.
	for i := 1; i < len(pts); i++ {
		if pts[i].Classified < pts[i-1].Classified {
			t.Error("classified fraction not monotone")
		}
	}
}

func TestThresholdCurveUnlabeled(t *testing.T) {
	preds := []Prediction{
		{True: -1, Pred: 0, MaxProb: 0.9},
		{True: -1, Pred: 1, MaxProb: 0.4},
	}
	pts := ThresholdCurve(preds, []float64{0.5})
	if pts[0].Classified != 0.5 {
		t.Errorf("classified = %v", pts[0].Classified)
	}
	if pts[0].CorrectlyClassified != 0 {
		t.Error("unlabeled data cannot have correct classifications")
	}
}

func TestDefaultThresholds(t *testing.T) {
	ts := DefaultThresholds()
	if len(ts) != 20 || ts[0] != 1.0 || math.Abs(ts[19]-0.05) > 1e-12 {
		t.Errorf("thresholds = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] >= ts[i-1] {
			t.Error("thresholds must decrease")
		}
	}
}

func TestROCLike(t *testing.T) {
	preds := []Prediction{
		{True: 0, Pred: 0, MaxProb: 0.99},
		{True: 0, Pred: 0, MaxProb: 0.80},
		{True: 1, Pred: 0, MaxProb: 0.95}, // incorrect, confident
		{True: 1, Pred: 0, MaxProb: 0.20}, // incorrect, unconfident
	}
	pts := ROCLike(preds, []float64{0.9, 0.5, 0.1})
	// t=0.9: correct passing = 1/2, incorrect passing = 1/2.
	if pts[0].X != 0.5 || pts[0].Y != 0.5 {
		t.Errorf("t=0.9 = %+v", pts[0])
	}
	// t=0.1: everything passes.
	if pts[2].X != 1 || pts[2].Y != 1 {
		t.Errorf("t=0.1 = %+v", pts[2])
	}
}

func TestAUCLikeOrdering(t *testing.T) {
	// Ideal: correct all pass, incorrect never pass -> area near 0.
	ideal := []ROCPoint{{Threshold: 0.9, X: 1, Y: 0}, {Threshold: 0.5, X: 1, Y: 0}}
	// Useless: thresholds cannot separate correct from incorrect.
	useless := []ROCPoint{{Threshold: 0.9, X: 0.5, Y: 0.5}, {Threshold: 0.5, X: 1, Y: 1}}
	if a, b := AUCLike(ideal), AUCLike(useless); a >= b {
		t.Errorf("ideal AUC %v should beat useless %v", a, b)
	}
}

func TestCrossValidate(t *testing.T) {
	// Trivially learnable data; the fake classifier ignores training and
	// predicts from the row itself, so CV accuracy is deterministic.
	rows := [][]float64{
		{0, 0.9}, {0, 0.9}, {0, 0.9}, {0, 0.9},
		{1, 0.9}, {1, 0.9}, {1, 0.9}, {1, 0.9},
	}
	labels := []string{"a", "a", "a", "a", "b", "b", "b", "b"}
	d, _ := dataset.New([]string{"pred", "conf"}, rows, labels)
	acc, err := CrossValidate(d, 4, 1, func(train *dataset.Dataset) (ProbClassifier, error) {
		return fakeClassifier{train.ClassNames}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Errorf("CV accuracy = %v", acc)
	}
	if _, err := CrossValidate(d, 1, 1, nil); err == nil {
		t.Error("k=1 should error")
	}
}

func TestScoreUnlabeled(t *testing.T) {
	preds := ScoreUnlabeled(fakeClassifier{[]string{"a", "b"}}, [][]float64{{1, 0.7}})
	if preds[0].True != -1 || preds[0].Pred != 1 || preds[0].MaxProb != 0.7 {
		t.Errorf("unlabeled prediction = %+v", preds[0])
	}
}

func TestTopConfusions(t *testing.T) {
	preds := []Prediction{
		{True: 0, Pred: 0}, {True: 0, Pred: 0}, {True: 0, Pred: 1}, {True: 0, Pred: 1},
		{True: 1, Pred: 0},
		{True: 2, Pred: 0}, {True: 2, Pred: 0}, {True: 2, Pred: 0},
	}
	m := NewConfusionMatrix([]string{"a", "b", "c"}, preds)
	top := m.TopConfusions(2)
	if len(top) != 2 {
		t.Fatalf("top = %d pairs", len(top))
	}
	if top[0].True != "c" || top[0].Pred != "a" || top[0].Count != 3 {
		t.Errorf("top pair = %+v", top[0])
	}
	if math.Abs(top[0].Rate-1.0) > 1e-12 {
		t.Errorf("rate = %v", top[0].Rate)
	}
	if top[1].True != "a" || top[1].Pred != "b" || top[1].Count != 2 {
		t.Errorf("second pair = %+v", top[1])
	}
	// n = 0 returns everything.
	if got := m.TopConfusions(0); len(got) != 3 {
		t.Errorf("all pairs = %d", len(got))
	}
}
