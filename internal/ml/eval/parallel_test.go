package eval

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/dataset"
)

// fakeModel predicts class y = round(x[0]) mod k, with a confidence that
// depends on the row, so confusion tallies and accuracies are nontrivial.
type fakeModel struct{ classes []string }

func (f *fakeModel) Classes() []string { return f.classes }
func (f *fakeModel) PredictProb(x []float64) (int, []float64) {
	k := len(f.classes)
	cls := int(x[0]+0.5) % k
	if cls < 0 {
		cls += k
	}
	probs := make([]float64, k)
	probs[cls] = 0.5 + x[1]/2
	return cls, probs
}

func parityData(n, k int) *dataset.Dataset {
	names := []string{"f0", "f1"}
	rows := make([][]float64, n)
	labels := make([]string, n)
	for i := range rows {
		rows[i] = []float64{float64(i % (k + 1)), float64(i%7) / 7}
		labels[i] = fmt.Sprintf("c%d", i%k)
	}
	d, err := dataset.New(names, rows, labels)
	if err != nil {
		panic(err)
	}
	return d
}

// TestCrossValidateWorkerParity: the fold-mean accuracy is bit-identical
// at every worker count and GOMAXPROCS.
func TestCrossValidateWorkerParity(t *testing.T) {
	d := parityData(240, 4)
	trainFn := func(train *dataset.Dataset) (ProbClassifier, error) {
		return &fakeModel{classes: train.ClassNames}, nil
	}
	want, err := CrossValidateWorkers(d, 6, 3, 1, trainFn)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 8} {
		old := runtime.GOMAXPROCS(procs)
		for _, w := range []int{0, 2, 6} {
			got, err := CrossValidateWorkers(d, 6, 3, w, trainFn)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("GOMAXPROCS=%d workers=%d: accuracy %v != serial %v", procs, w, got, want)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestCrossValidateErrorPropagation: a failing fold surfaces its error.
func TestCrossValidateErrorPropagation(t *testing.T) {
	d := parityData(60, 3)
	calls := 0
	_, err := CrossValidateWorkers(d, 3, 1, 2, func(train *dataset.Dataset) (ProbClassifier, error) {
		calls++
		return nil, fmt.Errorf("train failed")
	})
	if err == nil || err.Error() != "train failed" {
		t.Fatalf("err = %v, want train failed", err)
	}
	if calls == 0 {
		t.Fatal("trainFn never called")
	}
}

// TestConfusionMatrixWorkerParity: the chunked parallel tally matches the
// serial tally exactly, including above the parallel threshold.
func TestConfusionMatrixWorkerParity(t *testing.T) {
	classes := []string{"a", "b", "c"}
	n := confusionParallelMin + 1000
	preds := make([]Prediction, n)
	for i := range preds {
		preds[i] = Prediction{True: i % 3, Pred: (i * 7) % 3}
		if i%11 == 0 {
			preds[i].True = -1 // unlabeled rows must be skipped identically
		}
	}
	want := NewConfusionMatrixWorkers(classes, preds, 1)
	for _, w := range []int{0, 2, 5, 16} {
		got := NewConfusionMatrixWorkers(classes, preds, w)
		for i := range want.Counts {
			for j := range want.Counts[i] {
				if got.Counts[i][j] != want.Counts[i][j] {
					t.Fatalf("workers=%d: counts[%d][%d] = %d, want %d",
						w, i, j, got.Counts[i][j], want.Counts[i][j])
				}
			}
		}
	}
}
