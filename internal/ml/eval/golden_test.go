package eval_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml/bayes"
	"repro/internal/ml/eval"
	"repro/internal/rng"
	"repro/internal/testkit"
)

// TestGoldenEval pins the evaluation toolchain itself — confusion matrix,
// threshold curve, ROC-like sweep and its AUC, and cross-validated
// accuracy — on a fixed classifier over fixed data. Cross-validation runs
// at two worker counts and must agree exactly.
func TestGoldenEval(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 71})
	train, test := d.Split(rng.New(71), 0.7)
	m, err := bayes.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	preds := eval.Score(m, test)
	cm := eval.NewConfusionMatrix(m.Classes(), preds)

	trainFn := func(tr *dataset.Dataset) (eval.ProbClassifier, error) { return bayes.Train(tr) }
	cv1, err := eval.CrossValidateWorkers(d, 5, 71, 1, trainFn)
	if err != nil {
		t.Fatal(err)
	}
	cv4, err := eval.CrossValidateWorkers(d, 5, 71, 4, trainFn)
	if err != nil {
		t.Fatal(err)
	}
	if cv1 != cv4 {
		t.Fatalf("cross-validation accuracy depends on worker count: %v vs %v", cv1, cv4)
	}

	roc := eval.ROCLike(preds, eval.DefaultThresholds())

	var b strings.Builder
	testkit.Section(&b, "evaluation toolchain / bayes on synth seed 71")
	b.WriteString(testkit.KeyVals(map[string]float64{
		"accuracy":    eval.Accuracy(preds),
		"cm_accuracy": cm.Accuracy(),
		"cv5":         cv1,
		"auc_like":    eval.AUCLike(roc),
	}))
	testkit.Section(&b, "confusion matrix")
	b.WriteString(cm.String())
	testkit.Section(&b, "per-class accuracy")
	b.WriteString(testkit.Floats(cm.ClassAccuracy()) + "\n")
	testkit.Section(&b, "threshold curve")
	for _, p := range eval.ThresholdCurve(preds, eval.DefaultThresholds()) {
		fmt.Fprintf(&b, "t=%s classified=%s correct=%s\n",
			testkit.Float(p.Threshold), testkit.Float(p.Classified), testkit.Float(p.CorrectlyClassified))
	}
	testkit.Section(&b, "roc-like sweep")
	for _, p := range roc {
		fmt.Fprintf(&b, "t=%s x=%s y=%s\n",
			testkit.Float(p.Threshold), testkit.Float(p.X), testkit.Float(p.Y))
	}
	testkit.GoldenString(t, "eval.golden", b.String())
}
