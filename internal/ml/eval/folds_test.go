package eval

import (
	"testing"

	"repro/internal/testkit"
)

// TestStratifiedFoldsPartition checks the CV fold assignment is a true
// partition: every row lands in exactly one fold in [0, k), and within
// every class the fold sizes differ by at most one (stratification).
func TestStratifiedFoldsPartition(t *testing.T) {
	for _, k := range []int{2, 3, 5, 7} {
		for _, seed := range []uint64{0, 1, 99} {
			d := testkit.SynthClassification(testkit.SynthConfig{Seed: seed + 1, Classes: 3, RowsPerCls: 17})
			folds := stratifiedFolds(d, k, seed)
			if len(folds) != d.Len() {
				t.Fatalf("k=%d: %d assignments for %d rows", k, len(folds), d.Len())
			}
			perClassFold := make([][]int, d.NumClasses())
			for c := range perClassFold {
				perClassFold[c] = make([]int, k)
			}
			for i, f := range folds {
				if f < 0 || f >= k {
					t.Fatalf("k=%d: row %d assigned fold %d", k, i, f)
				}
				perClassFold[d.Y[i]][f]++
			}
			for c, counts := range perClassFold {
				min, max := counts[0], counts[0]
				for _, n := range counts[1:] {
					if n < min {
						min = n
					}
					if n > max {
						max = n
					}
				}
				if max-min > 1 {
					t.Errorf("k=%d seed=%d class %d: fold sizes %v not balanced", k, seed, c, counts)
				}
			}
		}
	}
}

// TestConfusionRowSumsAreClassCounts checks the structural invariant the
// paper's tables rely on: each confusion-matrix row sums to the true
// class's row count, no matter how wrong the predictions are.
func TestConfusionRowSumsAreClassCounts(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 47})
	// Deliberately terrible predictions: always class 0, varying prob.
	preds := make([]Prediction, d.Len())
	for i := range preds {
		preds[i] = Prediction{True: d.Y[i], Pred: (d.Y[i] + i) % d.NumClasses(), MaxProb: 0.5}
	}
	for _, workers := range []int{1, 4} {
		cm := NewConfusionMatrixWorkers(d.ClassNames, preds, workers)
		totals := cm.RowTotals()
		counts := d.ClassCounts()
		for c := range counts {
			if totals[c] != counts[c] {
				t.Errorf("workers=%d class %d: row total %d, class count %d", workers, c, totals[c], counts[c])
			}
		}
	}
}
