// Package eval provides the evaluation machinery behind the paper's tables
// and figures: confusion matrices (Table 2), per-class accuracy summaries
// (Table 3), probability-threshold classification curves (Figures 1, 3, 4),
// the Equation-1 ROC-like comparison curve (Figure 2), and k-fold
// cross-validation.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// ProbClassifier is any classifier producing class posteriors; the SVM,
// random forest and naive Bayes models all satisfy it.
type ProbClassifier interface {
	PredictProb(x []float64) (int, []float64)
	Classes() []string
}

// Prediction is one scored test-set prediction.
type Prediction struct {
	True    int     // true class index (-1 when unknown, e.g. NA jobs)
	Pred    int     // predicted class index
	MaxProb float64 // probability of the predicted class
}

// Score runs the classifier over a dataset and collects predictions. The
// dataset's class vocabulary must match the classifier's.
func Score(c ProbClassifier, d *dataset.Dataset) []Prediction {
	out := make([]Prediction, d.Len())
	for i, row := range d.X {
		cls, probs := c.PredictProb(row)
		out[i] = Prediction{True: d.Y[i], Pred: cls, MaxProb: probs[cls]}
	}
	return out
}

// ScoreUnlabeled runs the classifier over rows with no ground truth
// (True = -1), as for the Uncategorized and NA job sets.
func ScoreUnlabeled(c ProbClassifier, rows [][]float64) []Prediction {
	out := make([]Prediction, len(rows))
	for i, row := range rows {
		cls, probs := c.PredictProb(row)
		out[i] = Prediction{True: -1, Pred: cls, MaxProb: probs[cls]}
	}
	return out
}

// Accuracy returns the fraction of predictions whose Pred matches True.
func Accuracy(preds []Prediction) float64 {
	if len(preds) == 0 {
		return 0
	}
	correct := 0
	for _, p := range preds {
		if p.Pred == p.True {
			correct++
		}
	}
	return float64(correct) / float64(len(preds))
}

// ConfusionMatrix counts predictions by (true, predicted) class.
type ConfusionMatrix struct {
	Classes []string
	Counts  [][]int // [true][pred]
}

// confusionParallelMin is the prediction count below which the parallel
// tally is not worth the fan-out overhead.
const confusionParallelMin = 8192

// NewConfusionMatrix tallies predictions into a matrix, fanning the count
// accumulation out over all cores for large prediction sets.
func NewConfusionMatrix(classes []string, preds []Prediction) *ConfusionMatrix {
	return NewConfusionMatrixWorkers(classes, preds, 0)
}

// NewConfusionMatrixWorkers tallies predictions on at most workers
// goroutines (<= 0 means GOMAXPROCS). Each worker counts a contiguous
// chunk into its own matrix and the integer partials are merged, so the
// result is identical to the serial tally at any worker count.
func NewConfusionMatrixWorkers(classes []string, preds []Prediction, workers int) *ConfusionMatrix {
	m := &ConfusionMatrix{Classes: classes, Counts: make([][]int, len(classes))}
	for i := range m.Counts {
		m.Counts[i] = make([]int, len(classes))
	}
	w := parallel.Workers(workers)
	if len(preds) < confusionParallelMin || w == 1 {
		tallyConfusion(m.Counts, preds)
		return m
	}
	chunk := (len(preds) + w - 1) / w
	nChunks := (len(preds) + chunk - 1) / chunk
	partials, _ := parallel.Map(w, nChunks, func(c int) ([][]int, error) {
		counts := make([][]int, len(classes))
		for i := range counts {
			counts[i] = make([]int, len(classes))
		}
		lo, hi := c*chunk, (c+1)*chunk
		if hi > len(preds) {
			hi = len(preds)
		}
		tallyConfusion(counts, preds[lo:hi])
		return counts, nil
	})
	for _, counts := range partials {
		for i, row := range counts {
			for j, n := range row {
				m.Counts[i][j] += n
			}
		}
	}
	return m
}

func tallyConfusion(counts [][]int, preds []Prediction) {
	for _, p := range preds {
		if p.True >= 0 {
			counts[p.True][p.Pred]++
		}
	}
}

// Accuracy returns the trace fraction.
func (m *ConfusionMatrix) Accuracy() float64 {
	diag, total := 0, 0
	for i, row := range m.Counts {
		for j, n := range row {
			total += n
			if i == j {
				diag += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// ClassAccuracy returns per-class recall (the paper's "% correct").
func (m *ConfusionMatrix) ClassAccuracy() []float64 {
	out := make([]float64, len(m.Classes))
	for i, row := range m.Counts {
		total := 0
		for _, n := range row {
			total += n
		}
		if total > 0 {
			out[i] = float64(row[i]) / float64(total)
		}
	}
	return out
}

// RowTotals returns per-true-class prediction counts.
func (m *ConfusionMatrix) RowTotals() []int {
	out := make([]int, len(m.Classes))
	for i, row := range m.Counts {
		for _, n := range row {
			out[i] += n
		}
	}
	return out
}

// String renders the matrix in the paper's Table 2 style: one row per true
// class with its correct count in parentheses, followed by the non-zero
// off-diagonal entries.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	for i, name := range m.Classes {
		fmt.Fprintf(&b, "%s (%d): ", name, m.Counts[i][i])
		var mis []string
		for j, n := range m.Counts[i] {
			if j != i && n > 0 {
				mis = append(mis, fmt.Sprintf("%s (%d)", m.Classes[j], n))
			}
		}
		sort.Strings(mis)
		b.WriteString(strings.Join(mis, ", "))
		b.WriteByte('\n')
	}
	return b.String()
}

// ThresholdPoint is one point of the paper's probability-threshold plots.
type ThresholdPoint struct {
	Threshold           float64
	Classified          float64 // fraction with MaxProb >= Threshold
	CorrectlyClassified float64 // fraction with MaxProb >= Threshold AND correct
}

// ThresholdCurve evaluates classified / correctly-classified fractions at
// each threshold (Figures 1, 3 and 4). For unlabeled predictions the
// CorrectlyClassified component is zero.
func ThresholdCurve(preds []Prediction, thresholds []float64) []ThresholdPoint {
	out := make([]ThresholdPoint, len(thresholds))
	n := float64(len(preds))
	for k, t := range thresholds {
		var cls, correct int
		for _, p := range preds {
			if p.MaxProb >= t {
				cls++
				if p.True >= 0 && p.Pred == p.True {
					correct++
				}
			}
		}
		out[k] = ThresholdPoint{Threshold: t}
		if n > 0 {
			out[k].Classified = float64(cls) / n
			out[k].CorrectlyClassified = float64(correct) / n
		}
	}
	return out
}

// DefaultThresholds returns 1.00, 0.95, ..., 0.05, the grid of Figure 2.
func DefaultThresholds() []float64 {
	var out []float64
	for t := 100; t >= 5; t -= 5 {
		out = append(out, float64(t)/100)
	}
	return out
}

// ROCPoint is one point of the paper's Equation 1 curve.
type ROCPoint struct {
	Threshold float64
	X         float64 // fraction of correct classifications passing t
	Y         float64 // fraction of incorrect classifications passing t
}

// ROCLike computes the paper's Equation 1: for each threshold t,
// x = |{passing t AND correct}| / N_correct and
// y = |{passing t AND incorrect}| / N_incorrect. A good classifier's curve
// hugs (x, y) = (1, 0): nearly all correct classifications survive high
// thresholds while incorrect ones are filtered out.
func ROCLike(preds []Prediction, thresholds []float64) []ROCPoint {
	var nCorrect, nIncorrect int
	for _, p := range preds {
		if p.Pred == p.True {
			nCorrect++
		} else {
			nIncorrect++
		}
	}
	out := make([]ROCPoint, len(thresholds))
	for k, t := range thresholds {
		var pc, pi int
		for _, p := range preds {
			if p.MaxProb < t {
				continue
			}
			if p.Pred == p.True {
				pc++
			} else {
				pi++
			}
		}
		out[k] = ROCPoint{Threshold: t}
		if nCorrect > 0 {
			out[k].X = float64(pc) / float64(nCorrect)
		}
		if nIncorrect > 0 {
			out[k].Y = float64(pi) / float64(nIncorrect)
		}
	}
	return out
}

// AUCLike integrates an ROCLike curve by the trapezoid rule over x,
// yielding a scalar for comparing classifiers (0 is ideal: no incorrect
// classifications pass any threshold; 1 is worst).
func AUCLike(points []ROCPoint) float64 {
	pts := append([]ROCPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	var auc float64
	prevX, prevY := 0.0, 0.0
	for _, p := range pts {
		auc += (p.X - prevX) * (p.Y + prevY) / 2
		prevX, prevY = p.X, p.Y
	}
	auc += (1 - prevX) * (1 + prevY) / 2 // extend to x=1 at y=1
	return auc
}

// TrainFunc builds a classifier from a training set, for cross-validation.
type TrainFunc func(train *dataset.Dataset) (ProbClassifier, error)

// CrossValidate returns the mean accuracy over k stratified folds, with
// folds trained and scored concurrently on all cores.
func CrossValidate(d *dataset.Dataset, k int, seed uint64, trainFn TrainFunc) (float64, error) {
	return CrossValidateWorkers(d, k, seed, 0, trainFn)
}

// CrossValidateWorkers runs at most workers folds concurrently (<= 0
// means GOMAXPROCS). Fold contents depend only on (d, k, seed) and the
// per-fold accuracies are reduced in fold order, so the mean is
// bit-identical to the serial loop at any worker count. trainFn must be
// safe to call from multiple goroutines.
func CrossValidateWorkers(d *dataset.Dataset, k int, seed uint64, workers int, trainFn TrainFunc) (float64, error) {
	return CrossValidateObs(nil, d, k, seed, workers, trainFn)
}

// CrossValidateObs is CrossValidateWorkers with per-fold tracing: each
// fold gets a "fold.<i>" child span under sp (train + score, with the
// fold's accuracy as an attribute). A nil span is a no-op and the fold
// results are bit-identical either way — tracing never touches the fold
// assignment or any RNG stream.
func CrossValidateObs(sp *obs.Span, d *dataset.Dataset, k int, seed uint64, workers int, trainFn TrainFunc) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("eval: need k >= 2 folds")
	}
	folds := stratifiedFolds(d, k, seed)
	accs, err := parallel.Map(workers, k, func(f int) (float64, error) {
		fsp := sp.Child(fmt.Sprintf("fold.%d", f))
		defer fsp.End()
		var trainIdx, testIdx []int
		for i, fi := range folds {
			if fi == f {
				testIdx = append(testIdx, i)
			} else {
				trainIdx = append(trainIdx, i)
			}
		}
		model, err := trainFn(d.Subset(trainIdx))
		if err != nil {
			return 0, err
		}
		acc := Accuracy(Score(model, d.Subset(testIdx)))
		fsp.SetAttr("accuracy", acc)
		fsp.SetAttr("test_rows", len(testIdx))
		return acc, nil
	})
	if err != nil {
		return 0, err
	}
	var total float64
	for _, a := range accs {
		total += a
	}
	return total / float64(k), nil
}

// stratifiedFolds assigns each row a fold, stratified by class.
func stratifiedFolds(d *dataset.Dataset, k int, seed uint64) []int {
	folds := make([]int, d.Len())
	byClass := make([][]int, d.NumClasses())
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	// Simple deterministic rotation keyed by seed: adequate stratification
	// without pulling in the rng package.
	offset := int(seed % uint64(k))
	for _, idx := range byClass {
		for j, i := range idx {
			folds[i] = (j + offset) % k
		}
	}
	return folds
}

// ConfusedPair is one directed misclassification flow.
type ConfusedPair struct {
	True, Pred string
	Count      int
	// Rate is Count divided by the true class's total.
	Rate float64
}

// TopConfusions returns the n largest off-diagonal flows of the matrix,
// ordered by count -- the paper's reading of Table 2 (VASP absorbing
// QC-ES errors, GROMACS <-> LAMMPS within molecular dynamics).
func (m *ConfusionMatrix) TopConfusions(n int) []ConfusedPair {
	totals := m.RowTotals()
	var out []ConfusedPair
	for i, row := range m.Counts {
		for j, c := range row {
			if i == j || c == 0 {
				continue
			}
			p := ConfusedPair{True: m.Classes[i], Pred: m.Classes[j], Count: c}
			if totals[i] > 0 {
				p.Rate = float64(c) / float64(totals[i])
			}
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		if out[a].True != out[b].True {
			return out[a].True < out[b].True
		}
		return out[a].Pred < out[b].Pred
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
