package svm

import "math"

// tau is the numerical floor for second-derivative terms, as in LIBSVM.
const tau = 1e-12

// smoProblem is one binary C-SVC training problem. Box constraints are
// per-sample (cvec), which is how per-class cost weighting -- the paper's
// suggested remedy for mixture-share-driven misclassification -- is
// realized: C_i = C * weight[class(i)].
type smoProblem struct {
	x      [][]float64
	y      []float64 // +1 / -1
	cvec   []float64 // per-sample upper bound C_i
	kernel Kernel
	tol    float64
	maxIt  int
	cache  *rowCache
	diag   []float64 // K(i,i)
}

// smoResult is the solved dual.
type smoResult struct {
	alpha []float64
	rho   float64
	iters int
}

// solveSMO minimizes (1/2) a'Qa + p'a subject to 0 <= a <= C, y'a = 0,
// with Q_ij = y_i y_j K(x_i, x_j), using maximal-violating-pair selection
// with LIBSVM's second-order refinement for the second index. A nil p
// means the C-SVC linear term -e.
func solveSMO(x [][]float64, y []float64, c float64, kernel Kernel, tol float64, maxIt, cacheBytes int) smoResult {
	return solveSMOGeneral(x, y, nil, uniformC(len(x), c), kernel, tol, maxIt, cacheBytes)
}

// uniformC builds a constant box-constraint vector.
func uniformC(n int, c float64) []float64 {
	cv := make([]float64, n)
	for i := range cv {
		cv[i] = c
	}
	return cv
}

func solveSMOGeneral(x [][]float64, y, p0 []float64, cvec []float64, kernel Kernel, tol float64, maxIt, cacheBytes int) smoResult {
	n := len(x)
	p := &smoProblem{x: x, y: y, cvec: cvec, kernel: kernel, tol: tol, maxIt: maxIt}
	if p.tol <= 0 {
		p.tol = 1e-3
	}
	if p.maxIt <= 0 {
		p.maxIt = 10_000_000 / (n + 1) * 10 // generous; scaled by size
		if p.maxIt < 10000 {
			p.maxIt = 10000
		}
	}
	if cacheBytes <= 0 {
		cacheBytes = 64 << 20
	}
	p.cache = newRowCache(n, cacheBytes, p.kernelRow)
	p.diag = make([]float64, n)
	for i := range p.diag {
		p.diag[i] = kernel.Compute(x[i], x[i])
	}

	alpha := make([]float64, n)
	grad := make([]float64, n) // G_i = sum_j Q_ij a_j + p_i
	for i := range grad {
		if p0 != nil {
			grad[i] = p0[i]
		} else {
			grad[i] = -1
		}
	}

	iters := 0
	for ; iters < p.maxIt; iters++ {
		i, j, gap := p.selectWorkingSet(alpha, grad)
		if j < 0 || gap < p.tol {
			break
		}
		p.update(alpha, grad, i, j)
	}
	return smoResult{alpha: alpha, rho: p.computeRho(alpha, grad), iters: iters}
}

func (p *smoProblem) kernelRow(i int) []float64 {
	row := make([]float64, len(p.x))
	xi := p.x[i]
	for t := range p.x {
		row[t] = p.kernel.Compute(xi, p.x[t])
	}
	return row
}

// selectWorkingSet returns the maximal violating pair (i, j) and the KKT
// gap m(a) - M(a); j is chosen by the second-order rule.
func (p *smoProblem) selectWorkingSet(alpha, grad []float64) (int, int, float64) {
	n := len(alpha)
	gmax := math.Inf(-1)
	gmin := math.Inf(1)
	i := -1
	for t := 0; t < n; t++ {
		if p.inUp(t, alpha) {
			if v := -p.y[t] * grad[t]; v > gmax {
				gmax = v
				i = t
			}
		}
	}
	if i < 0 {
		return -1, -1, 0
	}
	rowI := p.cache.get(i)
	j := -1
	best := math.Inf(1) // most negative objective decrease
	for t := 0; t < n; t++ {
		if !p.inLow(t, alpha) {
			continue
		}
		v := -p.y[t] * grad[t]
		if v < gmin {
			gmin = v
		}
		b := gmax - v
		if b <= 0 {
			continue
		}
		// Second derivative along the feasible pair direction is
		// ||phi(x_i) - phi(x_t)||^2 regardless of label signs.
		a := p.diag[i] + p.diag[t] - 2*rowI[t]
		if a <= 0 {
			a = tau
		}
		if obj := -(b * b) / a; obj < best {
			best = obj
			j = t
		}
	}
	return i, j, gmax - gmin
}

func (p *smoProblem) inUp(t int, alpha []float64) bool {
	if p.y[t] > 0 {
		return alpha[t] < p.cvec[t]
	}
	return alpha[t] > 0
}

func (p *smoProblem) inLow(t int, alpha []float64) bool {
	if p.y[t] > 0 {
		return alpha[t] > 0
	}
	return alpha[t] < p.cvec[t]
}

// update optimizes the (i, j) pair analytically and refreshes the gradient.
func (p *smoProblem) update(alpha, grad []float64, i, j int) {
	rowI := p.cache.get(i)
	rowJ := p.cache.get(j)
	yi, yj := p.y[i], p.y[j]

	a := p.diag[i] + p.diag[j] - 2*rowI[j]
	if a <= 0 {
		a = tau
	}
	b := -yi*grad[i] + yj*grad[j]

	oldAi, oldAj := alpha[i], alpha[j]
	alpha[i] += yi * b / a
	alpha[j] -= yj * b / a

	// Project back to the feasible box preserving y_i a_i + y_j a_j.
	sum := yi*oldAi + yj*oldAj
	alpha[i] = clamp(alpha[i], 0, p.cvec[i])
	alpha[j] = yj * (sum - yi*alpha[i])
	alpha[j] = clamp(alpha[j], 0, p.cvec[j])
	alpha[i] = yi * (sum - yj*alpha[j])
	alpha[i] = clamp(alpha[i], 0, p.cvec[i])

	dAi, dAj := alpha[i]-oldAi, alpha[j]-oldAj
	if dAi == 0 && dAj == 0 {
		return
	}
	for t := range grad {
		grad[t] += p.y[t] * (yi*rowI[t]*dAi + yj*rowJ[t]*dAj)
	}
}

// computeRho recovers the threshold from the KKT conditions: the average
// of y_t G_t over free vectors, or the midpoint of the bound-derived range.
func (p *smoProblem) computeRho(alpha, grad []float64) float64 {
	var sum float64
	nFree := 0
	ub, lb := math.Inf(1), math.Inf(-1)
	for t := range alpha {
		yg := p.y[t] * grad[t]
		switch {
		case alpha[t] > 0 && alpha[t] < p.cvec[t]:
			sum += yg
			nFree++
		case p.inUp(t, alpha):
			if -yg > lb {
				lb = -yg
			}
		default:
			if -yg < ub {
				ub = -yg
			}
		}
	}
	if nFree > 0 {
		return sum / float64(nFree)
	}
	return -(ub + lb) / 2
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// binaryMachine is a trained two-class decision function.
type binaryMachine struct {
	sv    [][]float64 // support vectors
	coef  []float64   // alpha_i * y_i
	rho   float64
	a, b  float64 // Platt sigmoid parameters (probability calibration)
	hasAB bool
}

// decision returns sum_i coef_i K(sv_i, x) - rho; positive means class +1.
func (m *binaryMachine) decision(kernel Kernel, x []float64) float64 {
	var s float64
	for i, sv := range m.sv {
		s += m.coef[i] * kernel.Compute(sv, x)
	}
	return s - m.rho
}

// prob returns the calibrated P(y=+1 | decision value f).
func (m *binaryMachine) prob(f float64) float64 {
	if !m.hasAB {
		// Uncalibrated fallback: a steep logistic on the margin.
		return 1 / (1 + math.Exp(-2*f))
	}
	// Numerically careful sigmoid 1/(1+exp(A f + B)).
	fApB := m.a*f + m.b
	if fApB >= 0 {
		return math.Exp(-fApB) / (1 + math.Exp(-fApB))
	}
	return 1 / (1 + math.Exp(fApB))
}

// newBinaryMachine compacts an SMO solution into the SV representation.
func newBinaryMachine(x [][]float64, y []float64, res smoResult) *binaryMachine {
	m := &binaryMachine{rho: res.rho}
	for i, a := range res.alpha {
		if a > 0 {
			m.sv = append(m.sv, x[i])
			m.coef = append(m.coef, a*y[i])
		}
	}
	return m
}
