package svm_test

import (
	"strings"
	"testing"

	"repro/internal/ml/eval"
	"repro/internal/ml/svm"
	"repro/internal/rng"
	"repro/internal/testkit"
)

// TestGoldenSVM pins the one-vs-one SMO SVM under the paper's
// configuration (RBF gamma=0.1, C=1000, Platt-calibrated probabilities)
// on a fixed synthetic dataset. The model is trained at two worker
// counts and must agree bit-exactly before the golden compare.
func TestGoldenSVM(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 67, Classes: 3, RowsPerCls: 30})
	train, test := d.Split(rng.New(67), 0.7)
	// The paper pipeline standardizes on training statistics and applies
	// the identical transform to test rows.
	test.Apply(train.Standardize())

	cfg := svm.PaperConfig()
	cfg.Seed = 67
	cfg.Workers = 1
	m1, err := svm.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	m4, err := svm.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}

	classes := make([]int, test.Len())
	probRows := make([][]float64, test.Len())
	for i, row := range test.X {
		cls, probs := m1.PredictProb(row)
		classes[i] = cls
		probRows[i] = probs
		cls4, probs4 := m4.PredictProb(row)
		if cls4 != cls {
			t.Fatalf("row %d: worker count changed the prediction", i)
		}
		if testkit.MaxAbsDiff(probs, probs4) != 0 {
			t.Fatalf("row %d: worker count perturbed the posterior", i)
		}
	}
	preds := eval.Score(m1, test)

	var b strings.Builder
	testkit.Section(&b, "one-vs-one SVM / RBF gamma=0.1 C=1000 / synth seed 67")
	b.WriteString(testkit.KeyVals(map[string]float64{
		"train_accuracy":  m1.Accuracy(train),
		"test_accuracy":   eval.Accuracy(preds),
		"support_vectors": float64(m1.NumSupportVectors()),
	}))
	testkit.Section(&b, "digests")
	b.WriteString("predictions = " + testkit.HashInts(classes) + "\n")
	b.WriteString("posteriors  = " + testkit.HashFloats(probRows...) + "\n")
	testkit.GoldenString(t, "svm.golden", b.String())
}
