package svm

import "math"

// fitSigmoid fits Platt's probability sigmoid P(y=1|f) = 1/(1+exp(A f + B))
// to decision values dec with labels y (+1/-1), using the Newton method
// with backtracking line search of Lin, Lin & Weng ("A note on Platt's
// probabilistic outputs for support vector machines", 2007) -- the same
// procedure LIBSVM (and therefore R e1071) uses.
func fitSigmoid(dec []float64, y []float64) (a, b float64) {
	prior1, prior0 := 0.0, 0.0
	for _, yi := range y {
		if yi > 0 {
			prior1++
		} else {
			prior0++
		}
	}
	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12
		eps     = 1e-5
	)
	hiTarget := (prior1 + 1) / (prior1 + 2)
	loTarget := 1 / (prior0 + 2)
	n := len(dec)
	t := make([]float64, n)
	for i := range t {
		if y[i] > 0 {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}

	a = 0
	b = math.Log((prior0 + 1) / (prior1 + 1))
	fval := 0.0
	for i := 0; i < n; i++ {
		fApB := dec[i]*a + b
		if fApB >= 0 {
			fval += t[i]*fApB + math.Log(1+math.Exp(-fApB))
		} else {
			fval += (t[i]-1)*fApB + math.Log(1+math.Exp(fApB))
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		// Gradient and Hessian.
		h11, h22 := sigma, sigma
		h21, g1, g2 := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			fApB := dec[i]*a + b
			var p, q float64
			if fApB >= 0 {
				p = math.Exp(-fApB) / (1 + math.Exp(-fApB))
				q = 1 / (1 + math.Exp(-fApB))
			} else {
				p = 1 / (1 + math.Exp(fApB))
				q = math.Exp(fApB) / (1 + math.Exp(fApB))
			}
			d2 := p * q
			h11 += dec[i] * dec[i] * d2
			h22 += d2
			h21 += dec[i] * d2
			d1 := t[i] - p
			g1 += dec[i] * d1
			g2 += d1
		}
		if math.Abs(g1) < eps && math.Abs(g2) < eps {
			break
		}
		// Newton direction.
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB

		stepsize := 1.0
		for stepsize >= minStep {
			newA := a + stepsize*dA
			newB := b + stepsize*dB
			newf := 0.0
			for i := 0; i < n; i++ {
				fApB := dec[i]*newA + newB
				if fApB >= 0 {
					newf += t[i]*fApB + math.Log(1+math.Exp(-fApB))
				} else {
					newf += (t[i]-1)*fApB + math.Log(1+math.Exp(fApB))
				}
			}
			if newf < fval+1e-4*stepsize*gd {
				a, b, fval = newA, newB, newf
				break
			}
			stepsize /= 2
		}
		if stepsize < minStep {
			break
		}
	}
	return a, b
}

// coupleProbabilities solves the Wu-Lin-Weng (2004) "second approach"
// pairwise coupling problem: given pairwise probabilities r[i][j] ~
// P(class i | class i or j), find the class posterior p minimizing
// sum_{i<j} (r[j][i] p_i - r[i][j] p_j)^2 subject to sum p = 1, using the
// fixed-point iteration from LIBSVM's multiclass_probability.
func coupleProbabilities(r [][]float64) []float64 {
	k := len(r)
	p := make([]float64, k)
	if k == 1 {
		p[0] = 1
		return p
	}
	q := make([][]float64, k)
	qp := make([]float64, k)
	for t := 0; t < k; t++ {
		p[t] = 1 / float64(k)
		q[t] = make([]float64, k)
		for j := 0; j < k; j++ {
			if j == t {
				continue
			}
			q[t][t] += r[j][t] * r[j][t]
			q[t][j] = -r[j][t] * r[t][j]
		}
	}
	const maxIter = 100
	eps := 0.005 / float64(k) // LIBSVM's tolerance scales with class count
	for iter := 0; iter < maxIter*k; iter++ {
		pQp := 0.0
		for t := 0; t < k; t++ {
			qp[t] = 0
			for j := 0; j < k; j++ {
				qp[t] += q[t][j] * p[j]
			}
			pQp += p[t] * qp[t]
		}
		maxErr := 0.0
		for t := 0; t < k; t++ {
			if e := math.Abs(qp[t] - pQp); e > maxErr {
				maxErr = e
			}
		}
		if maxErr < eps {
			break
		}
		for t := 0; t < k; t++ {
			diff := (-qp[t] + pQp) / q[t][t]
			p[t] += diff
			pQp = (pQp + diff*(diff*q[t][t]+2*qp[t])) / ((1 + diff) * (1 + diff))
			for j := 0; j < k; j++ {
				qp[j] = (qp[j] + diff*q[t][j]) / (1 + diff)
				p[j] /= 1 + diff
			}
		}
	}
	return p
}
