package svm

import (
	"runtime"
	"testing"
)

// TestTrainWorkerParity: the calibrated multiclass model is bit-identical
// whether pair machines are trained serially or on many workers — every
// binary problem is seeded by its pair index, not by scheduling order.
func TestTrainWorkerParity(t *testing.T) {
	d := blobs(3, [][]float64{{0, 0}, {3, 0}, {0, 3}, {3, 3}}, 0.5, 25)
	cfg := Config{Kernel: RBF{Gamma: 0.5}, C: 10, Probability: true, Seed: 7}
	cfg.Workers = 1
	ref, err := Train(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 8} {
		old := runtime.GOMAXPROCS(procs)
		for _, w := range []int{0, 3} {
			cfg.Workers = w
			m, err := Train(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, row := range d.X {
				ca, pa := ref.PredictProb(row)
				cb, pb := m.PredictProb(row)
				if ca != cb {
					t.Fatalf("GOMAXPROCS=%d workers=%d: class diverged on row %d", procs, w, i)
				}
				for c := range pa {
					if pa[c] != pb[c] {
						t.Fatalf("GOMAXPROCS=%d workers=%d: posterior[%d] diverged on row %d: %v vs %v",
							procs, w, c, i, pa[c], pb[c])
					}
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestTuneWorkerParity: the grid search returns identical scores and
// ordering at any worker count.
func TestTuneWorkerParity(t *testing.T) {
	d := blobs(9, [][]float64{{0, 0}, {2.5, 2.5}}, 0.7, 30)
	grid := Grid{Gammas: []float64{0.1, 1}, Cs: []float64{1, 10}}
	ref, err := TuneWorkers(d, grid, 3, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 4} {
		got, err := TuneWorkers(d, grid, 3, 5, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d results, want %d", w, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d: result[%d] = %+v, want %+v", w, i, got[i], ref[i])
			}
		}
	}
}
