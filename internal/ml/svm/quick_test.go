package svm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestCouplePropertySimplex: for any valid pairwise-probability matrix,
// the coupled posteriors form a probability simplex point.
func TestCouplePropertySimplex(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%5) + 2 // 2..6 classes
		r := rng.New(seed)
		m := make([][]float64, k)
		for i := range m {
			m[i] = make([]float64, k)
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				p := 1e-7 + (1-2e-7)*r.Float64()
				m[i][j] = p
				m[j][i] = 1 - p
			}
		}
		probs := coupleProbabilities(m)
		var sum float64
		for _, p := range probs {
			if p < -1e-9 || p > 1+1e-9 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestKernelPropertyPSDish: RBF kernel values lie in (0, 1] with
// K(x,x) = 1 and symmetry.
func TestKernelPropertySymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := []float64{r.Normal(), r.Normal(), r.Normal()}
		b := []float64{r.Normal(), r.Normal(), r.Normal()}
		k := RBF{Gamma: 0.5}
		kab, kba := k.Compute(a, b), k.Compute(b, a)
		if kab != kba {
			return false
		}
		if kab <= 0 || kab > 1 {
			return false
		}
		return math.Abs(k.Compute(a, a)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSigmoidPropertyCalibration: fitSigmoid output maps decision values
// into (0,1) monotonically for any labeled sample with both classes.
func TestSigmoidPropertyRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 10
		r := rng.New(seed)
		dec := make([]float64, n)
		y := make([]float64, n)
		for i := range dec {
			dec[i] = r.NormalAt(0, 3)
			if i%2 == 0 {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		a, b := fitSigmoid(dec, y)
		if math.IsNaN(a) || math.IsNaN(b) {
			return false
		}
		m := &binaryMachine{a: a, b: b, hasAB: true}
		for _, fv := range []float64{-10, -1, 0, 1, 10} {
			p := m.prob(fv)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
