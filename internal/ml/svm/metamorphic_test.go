package svm_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ml/svm"
	"repro/internal/rng"
	"repro/internal/testkit"
)

// TestSVMPredictionPurity checks the trained SVM for hidden prediction
// state (the kernel row cache is the obvious hazard): scoring in reverse
// order and from many goroutines must match the sequential posteriors
// bit for bit.
func TestSVMPredictionPurity(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 37, Classes: 3, RowsPerCls: 25})
	train, test := d.Split(rng.New(37), 0.7)
	test.Apply(train.Standardize())
	cfg := svm.PaperConfig()
	cfg.Seed = 37
	m, err := svm.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, test.Len())
	wantCls := make([]int, test.Len())
	for i, row := range test.X {
		wantCls[i], want[i] = m.PredictProb(row)
	}
	for i := test.Len() - 1; i >= 0; i-- {
		cls, probs := m.PredictProb(test.X[i])
		if cls != wantCls[i] || testkit.MaxAbsDiff(probs, want[i]) != 0 {
			t.Fatalf("row %d: reverse-order prediction differs", i)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, row := range test.X {
				cls, probs := m.PredictProb(row)
				if cls != wantCls[i] || testkit.MaxAbsDiff(probs, want[i]) != 0 {
					errs[g] = fmt.Errorf("goroutine %d row %d: concurrent prediction differs", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSVMPosteriorSimplex checks the Platt/pairwise-coupled posterior is
// a probability distribution on every row, including rows far from the
// training distribution.
func TestSVMPosteriorSimplex(t *testing.T) {
	d := testkit.SynthClassification(testkit.SynthConfig{Seed: 43, Classes: 3, RowsPerCls: 25})
	train, test := d.Split(rng.New(43), 0.7)
	test.Apply(train.Standardize())
	cfg := svm.PaperConfig()
	cfg.Seed = 43
	m, err := svm.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range test.X {
		_, probs := m.PredictProb(row)
		testkit.CheckProbRow(t, probs, 1e-6, fmt.Sprintf("svm row %d", i))
	}
	// An outlier row (far outside the standardized cloud) still yields a
	// valid distribution.
	outlier := make([]float64, test.NumFeatures())
	for j := range outlier {
		outlier[j] = 50
	}
	_, probs := m.PredictProb(outlier)
	testkit.CheckProbRow(t, probs, 1e-6, "svm outlier row")
}
