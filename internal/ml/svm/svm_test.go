package svm

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// blobs builds a k-class Gaussian-blob dataset with the given per-class
// centers and spread.
func blobs(seed uint64, centers [][]float64, spread float64, perClass int) *dataset.Dataset {
	r := rng.New(seed)
	var rows [][]float64
	var labels []string
	for c, ctr := range centers {
		for i := 0; i < perClass; i++ {
			row := make([]float64, len(ctr))
			for j := range row {
				row[j] = ctr[j] + spread*r.Normal()
			}
			rows = append(rows, row)
			labels = append(labels, fmt.Sprintf("c%d", c))
		}
	}
	d, err := dataset.New([]string{"x", "y"}, rows, labels)
	if err != nil {
		panic(err)
	}
	return d
}

func TestKernels(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	if got := (Linear{}).Compute(a, b); got != 11 {
		t.Errorf("linear = %v", got)
	}
	rbf := RBF{Gamma: 0.5}
	want := math.Exp(-0.5 * 8) // ||a-b||^2 = 8
	if got := rbf.Compute(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("rbf = %v, want %v", got, want)
	}
	if got := rbf.Compute(a, a); got != 1 {
		t.Errorf("rbf self = %v", got)
	}
	poly := Poly{Gamma: 1, Coef0: 1, Degree: 2}
	if got := poly.Compute(a, b); got != 144 {
		t.Errorf("poly = %v", got)
	}
}

func TestRowCacheLRU(t *testing.T) {
	computes := 0
	c := newRowCache(4, 8*4*2, func(i int) []float64 { // budget: 2 rows
		computes++
		return []float64{float64(i)}
	})
	c.get(0)
	c.get(1)
	c.get(0) // hit
	if computes != 2 {
		t.Fatalf("computes = %d", computes)
	}
	c.get(2) // evicts 1 (LRU)
	c.get(0) // still cached
	if computes != 3 {
		t.Fatalf("computes = %d after eviction pattern", computes)
	}
	c.get(1) // recompute
	if computes != 4 {
		t.Fatalf("computes = %d", computes)
	}
}

func TestBinaryLinearlySeparable(t *testing.T) {
	d := blobs(1, [][]float64{{-2, -2}, {2, 2}}, 0.5, 100)
	m, err := Train(d, Config{Kernel: Linear{}, C: 10})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(d); acc < 0.99 {
		t.Errorf("separable accuracy = %v", acc)
	}
}

func TestBinaryXORNeedsRBF(t *testing.T) {
	// XOR: linearly inseparable, RBF must solve it.
	r := rng.New(2)
	var rows [][]float64
	var labels []string
	for i := 0; i < 400; i++ {
		x := r.Float64()*2 - 1
		y := r.Float64()*2 - 1
		rows = append(rows, []float64{x, y})
		if (x > 0) == (y > 0) {
			labels = append(labels, "same")
		} else {
			labels = append(labels, "diff")
		}
	}
	d, _ := dataset.New([]string{"x", "y"}, rows, labels)
	rbf, err := Train(d, Config{Kernel: RBF{Gamma: 2}, C: 100})
	if err != nil {
		t.Fatal(err)
	}
	if acc := rbf.Accuracy(d); acc < 0.95 {
		t.Errorf("RBF XOR accuracy = %v", acc)
	}
	lin, err := Train(d, Config{Kernel: Linear{}, C: 100})
	if err != nil {
		t.Fatal(err)
	}
	if acc := lin.Accuracy(d); acc > 0.75 {
		t.Errorf("linear XOR accuracy suspiciously high: %v", acc)
	}
}

func TestMulticlassBlobs(t *testing.T) {
	centers := [][]float64{{0, 4}, {4, 0}, {-4, 0}, {0, -4}}
	train := blobs(3, centers, 0.8, 80)
	test := blobs(4, centers, 0.8, 40)
	m, err := Train(train, Config{Kernel: RBF{Gamma: 0.5}, C: 10})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(test); acc < 0.97 {
		t.Errorf("multiclass test accuracy = %v", acc)
	}
	if len(m.Classes()) != 4 {
		t.Errorf("classes = %d", len(m.Classes()))
	}
	if m.NumSupportVectors() == 0 {
		t.Error("no support vectors")
	}
}

func TestPredictProb(t *testing.T) {
	centers := [][]float64{{0, 4}, {4, 0}, {-4, 0}}
	train := blobs(5, centers, 0.7, 100)
	m, err := Train(train, Config{Kernel: RBF{Gamma: 0.5}, C: 10, Probability: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Probabilities sum to 1 and the argmax matches the confident region.
	for c, ctr := range centers {
		cls, probs := m.PredictProb(ctr)
		var sum float64
		for _, p := range probs {
			if p < 0 || p > 1 {
				t.Fatalf("probability out of range: %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("probabilities sum to %v", sum)
		}
		if m.Classes()[cls] != fmt.Sprintf("c%d", c) {
			t.Errorf("center %d predicted as %s", c, m.Classes()[cls])
		}
		if probs[cls] < 0.8 {
			t.Errorf("center %d confidence = %v, want high", c, probs[cls])
		}
	}
	// A point equidistant from all centers should be less confident than
	// a center point.
	_, probsMid := m.PredictProb([]float64{0, 0})
	maxMid := 0.0
	for _, p := range probsMid {
		if p > maxMid {
			maxMid = p
		}
	}
	_, probsCtr := m.PredictProb(centers[0])
	if maxMid >= probsCtr[0] {
		t.Errorf("ambiguous point confidence %v >= center confidence %v", maxMid, probsCtr[0])
	}
}

func TestTrainDeterminism(t *testing.T) {
	d := blobs(6, [][]float64{{-2, 0}, {2, 0}}, 0.8, 60)
	m1, _ := Train(d, Config{Kernel: RBF{Gamma: 1}, C: 10, Probability: true, Seed: 4})
	m2, _ := Train(d, Config{Kernel: RBF{Gamma: 1}, C: 10, Probability: true, Seed: 4})
	probe := []float64{0.3, -0.1}
	c1, p1 := m1.PredictProb(probe)
	c2, p2 := m2.PredictProb(probe)
	if c1 != c2 {
		t.Fatal("nondeterministic prediction")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nondeterministic probabilities")
		}
	}
}

func TestEmptyTrainingSet(t *testing.T) {
	d, _ := dataset.New([]string{"x"}, nil, nil)
	if _, err := Train(d, Config{}); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestFitSigmoidRecoversMonotone(t *testing.T) {
	// Labels generated from a known sigmoid of the decision value: the
	// fit must produce a decreasing fApB in f (A < 0) and calibrated
	// mid-point probability.
	r := rng.New(7)
	n := 2000
	dec := make([]float64, n)
	y := make([]float64, n)
	for i := range dec {
		dec[i] = r.NormalAt(0, 2)
		p := 1 / (1 + math.Exp(-1.5*dec[i]))
		if r.Float64() < p {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	a, b := fitSigmoid(dec, y)
	if a >= 0 {
		t.Fatalf("A = %v, want negative", a)
	}
	mid := 1 / (1 + math.Exp(a*0+b))
	if math.Abs(mid-0.5) > 0.05 {
		t.Errorf("P(y=1|f=0) = %v, want ~0.5", mid)
	}
	hi := 1 / (1 + math.Exp(a*3+b))
	if hi < 0.9 {
		t.Errorf("P(y=1|f=3) = %v, want high", hi)
	}
}

func TestCoupleProbabilities(t *testing.T) {
	// Perfectly confident pairwise wins for class 0.
	r := [][]float64{
		{0, 0.9, 0.9},
		{0.1, 0, 0.5},
		{0.1, 0.5, 0},
	}
	p := coupleProbabilities(r)
	var sum float64
	for _, v := range p {
		sum += v
		if v < 0 {
			t.Fatalf("negative probability %v", v)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if !(p[0] > p[1] && p[0] > p[2]) {
		t.Errorf("class 0 should dominate: %v", p)
	}
	if math.Abs(p[1]-p[2]) > 1e-3 {
		t.Errorf("symmetric classes should tie: %v", p)
	}
}

func TestCoupleProbabilitiesUniform(t *testing.T) {
	r := [][]float64{
		{0, 0.5, 0.5},
		{0.5, 0, 0.5},
		{0.5, 0.5, 0},
	}
	p := coupleProbabilities(r)
	for _, v := range p {
		if math.Abs(v-1.0/3.0) > 1e-3 {
			t.Errorf("uniform coupling = %v", p)
		}
	}
}

func TestCoupleSingleClass(t *testing.T) {
	p := coupleProbabilities([][]float64{{0}})
	if len(p) != 1 || p[0] != 1 {
		t.Errorf("single class coupling = %v", p)
	}
}

func TestImbalancedPair(t *testing.T) {
	// Heavy class imbalance in a pair must still train.
	r := rng.New(8)
	var rows [][]float64
	var labels []string
	for i := 0; i < 190; i++ {
		rows = append(rows, []float64{r.NormalAt(-2, 0.5), r.NormalAt(0, 0.5)})
		labels = append(labels, "big")
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{r.NormalAt(2, 0.5), r.NormalAt(0, 0.5)})
		labels = append(labels, "small")
	}
	d, _ := dataset.New([]string{"x", "y"}, rows, labels)
	m, err := Train(d, Config{Kernel: RBF{Gamma: 1}, C: 10, Probability: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Classes()[m.Predict([]float64{2, 0})]; got != "small" {
		t.Errorf("minority center predicted as %q", got)
	}
}

func BenchmarkTrainBinary500(b *testing.B) {
	d := blobs(1, [][]float64{{-1, 0}, {1, 0}}, 1.0, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(d, Config{Kernel: RBF{Gamma: 0.5}, C: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	d := blobs(1, [][]float64{{-1, 0}, {1, 0}, {0, 2}}, 1.0, 200)
	m, _ := Train(d, Config{Kernel: RBF{Gamma: 0.5}, C: 10})
	probe := []float64{0.2, 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(probe)
	}
}

func BenchmarkPredictProb(b *testing.B) {
	d := blobs(1, [][]float64{{-1, 0}, {1, 0}, {0, 2}}, 1.0, 200)
	m, _ := Train(d, Config{Kernel: RBF{Gamma: 0.5}, C: 10, Probability: true})
	probe := []float64{0.2, 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = m.PredictProb(probe)
	}
}
