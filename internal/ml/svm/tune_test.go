package svm

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
)

func TestTuneFindsWorkingRegion(t *testing.T) {
	// Two tight blobs: any reasonable (gamma, C) separates them, but
	// extreme gamma overfits badly on CV folds. Tune must rank a sane
	// point first and return the full grid.
	d := blobs(1, [][]float64{{-2, 0}, {2, 0}}, 0.6, 80)
	grid := Grid{Gammas: []float64{0.1, 50}, Cs: []float64{10}}
	results, err := Tune(d, grid, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Gamma != 0.1 {
		t.Errorf("best gamma = %v, want 0.1 (gamma=50 should overfit)", results[0].Gamma)
	}
	if results[0].Accuracy < 0.95 {
		t.Errorf("best accuracy = %v", results[0].Accuracy)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Accuracy > results[i-1].Accuracy {
			t.Fatal("results not sorted")
		}
	}
}

func TestTuneDefaults(t *testing.T) {
	d := blobs(2, [][]float64{{-2, 0}, {2, 0}}, 0.5, 30)
	results, err := Tune(d, Grid{}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := len(DefaultGrid().Gammas) * len(DefaultGrid().Cs)
	if len(results) != want {
		t.Errorf("default grid evaluated %d points, want %d", len(results), want)
	}
}

func TestTuneEmptyData(t *testing.T) {
	d, _ := dataset.New([]string{"x"}, nil, nil)
	if _, err := Tune(d, Grid{}, 3, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestTuneDeterminism(t *testing.T) {
	d := blobs(3, [][]float64{{-2, 0}, {2, 0}}, 0.7, 40)
	g := Grid{Gammas: []float64{0.5}, Cs: []float64{10}}
	r1, _ := Tune(d, g, 3, 5)
	r2, _ := Tune(d, g, 3, 5)
	if r1[0].Accuracy != r2[0].Accuracy {
		t.Fatal("Tune not deterministic")
	}
}

func TestClassWeightsShiftBoundary(t *testing.T) {
	// Overlapping blobs: up-weighting one class must increase its recall.
	r := rng.New(9)
	var rows [][]float64
	var labels []string
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			rows = append(rows, []float64{r.NormalAt(-0.5, 1)})
			labels = append(labels, "neg")
		} else {
			rows = append(rows, []float64{r.NormalAt(0.5, 1)})
			labels = append(labels, "pos")
		}
	}
	d, _ := dataset.New([]string{"x"}, rows, labels)
	recall := func(weights map[string]float64) float64 {
		m, err := Train(d, Config{Kernel: RBF{Gamma: 0.5}, C: 1, ClassWeights: weights})
		if err != nil {
			t.Fatal(err)
		}
		pos, correct := 0, 0
		for i, row := range d.X {
			if d.Label(i) != "pos" {
				continue
			}
			pos++
			if m.Classes()[m.Predict(row)] == "pos" {
				correct++
			}
		}
		return float64(correct) / float64(pos)
	}
	plain := recall(nil)
	boosted := recall(map[string]float64{"pos": 8})
	if boosted <= plain {
		t.Errorf("up-weighted recall %v not above plain %v", boosted, plain)
	}
}
